(* Benchmark and reproduction harness.

   Usage:
     dune exec bench/main.exe                  # every experiment + timings
     dune exec bench/main.exe -- fig2a fig3    # selected experiments only
     dune exec bench/main.exe -- catalog       # just the Table-1 catalog
     dune exec bench/main.exe -- --quick       # fast mode (fewer seeds)
     dune exec bench/main.exe -- --json F      # machine-readable summary to F
     dune exec bench/main.exe -- --jobs N      # N sweep domains (same output)

   For every table and figure of the paper's evaluation (see DESIGN.md
   §4) this prints the regenerated series as a text table plus a CSV
   block, then runs one bechamel micro-benchmark per experiment timing
   the code that backs it. *)

open Bechamel
open Toolkit

let line title =
  Printf.printf "\n======== %s ========\n%!" title

(* ------------------------------------------------------------------ *)
(* Experiment reproduction                                             *)

let catalog_table () =
  Format.printf "%a@." Insp.Catalog.pp Insp.Catalog.dell_2008

(* Each experiment runs under its own observability sink and wall-clock
   timer; the per-experiment recorders feed the text reports and the
   --json summary. *)
let run_experiment ~quick ~jobs id =
  line ("experiment " ^ id);
  match id with
  | "catalog" ->
    catalog_table ();
    None
  | _ -> (
    let t0 = Unix.gettimeofday () in
    let out, recorder =
      Insp.Obs.with_sink (fun () -> Insp.Suite.run_by_id ~quick ~jobs id)
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    match out with
    | Some output ->
      print_string output;
      Printf.printf "\n-- observability (%s, %.2f s) --\n%s" id wall_s
        (Insp.Obs_export.text_report recorder);
      Some (id, wall_s, recorder)
    | None ->
      Printf.printf "unknown experiment: %s\n" id;
      None)

(* BENCH_insp.json: headline wall time and recorded counters/gauges per
   experiment, for trend tracking across commits. *)
let bench_json ~quick results =
  let b = Buffer.create 4096 in
  let esc s =
    String.concat ""
      (List.map
         (function
           | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"insp-bench-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string b "  \"experiments\": [";
  List.iteri
    (fun i (id, wall_s, (recorder : Insp.Obs.t)) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n    {\"id\": \"%s\", \"wall_s\": %.3f" (esc id)
           wall_s);
      let snapshot = Insp.Obs_metrics.snapshot recorder.Insp.Obs.metrics in
      let fields kind select =
        let entries = List.filter_map select snapshot in
        if entries <> [] then begin
          Buffer.add_string b (Printf.sprintf ",\n     \"%s\": {" kind);
          List.iteri
            (fun j (name, v) ->
              if j > 0 then Buffer.add_string b ", ";
              Buffer.add_string b (Printf.sprintf "\"%s\": %s" (esc name) v))
            entries;
          Buffer.add_char b '}'
        end
      in
      fields "counters" (function
        | name, Insp.Obs_metrics.Counter_v c -> Some (name, string_of_int c)
        | _ -> None);
      fields "gauges" (function
        | name, Insp.Obs_metrics.Gauge_v g ->
          Some (name, Printf.sprintf "%.6g" g)
        | _ -> None);
      Buffer.add_string b "}")
    results;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let summarize_rankings ~quick () =
  line "ranking summary (lowest mean cost per x point)";
  let figures =
    if quick then
      [ Insp.Suite.fig2a ~seeds:[ 1; 2 ] ~ns:[ 20; 60 ] () ]
    else
      [
        Insp.Suite.fig2a ();
        Insp.Suite.fig2b ();
        Insp.Suite.fig3 ();
        Insp.Suite.large_objects ();
      ]
  in
  List.iter
    (fun fig ->
      let wins = Insp.Figure.winner_counts fig in
      Printf.printf "%-6s: %s\n" fig.Insp.Figure.id
        (String.concat ", "
           (List.map (fun (n, w) -> Printf.sprintf "%s=%d" n w) wins)))
    figures

let run_ablations ~quick () =
  line "ablation studies (design choices, DESIGN.md)";
  List.iter
    (fun (id, render) ->
      Printf.printf "\n-- %s --\n%!" id;
      print_string (render ~quick))
    Insp_experiments.Ablations.all

(* ------------------------------------------------------------------ *)
(* Feasibility-probe throughput: ledger vs from-scratch                *)

(* The pre-ledger prober, kept here as the baseline: every probe
   recomputes [Demand.of_group] over the candidate member set and the
   pairwise flow towards *every* live group with [List.mem] membership
   scans. *)
module Naive_probe = struct
  module App = Insp.App
  module Optree = Insp.Optree

  type group = { mutable members : int list; cfg : Insp.Catalog.config }

  let tolerance = 1e-9
  let leq v cap = v <= (cap *. (1.0 +. tolerance)) +. tolerance

  let flow_between app g h =
    let tree = App.tree app and rho = App.rho app in
    List.fold_left
      (fun acc m ->
        let acc =
          List.fold_left
            (fun acc c ->
              if List.mem c h then acc +. (rho *. App.output_size app c)
              else acc)
            acc (Optree.children tree m)
        in
        match Optree.parent tree m with
        | Some p when List.mem p h -> acc +. (rho *. App.output_size app m)
        | Some _ | None -> acc)
      0.0 g

  let can_host app platform groups ~self ~cfg ~members =
    Insp.Demand.fits cfg (Insp.Demand.of_group app members)
    && List.for_all
         (fun g ->
           g == self
           || leq (flow_between app members g.members)
                platform.Insp.Platform.proc_link)
         groups
end

(* Identical greedy first-fit constructions, one per prober, counting
   feasibility probes.  Returns (probes, groups built). *)
let greedy_naive app platform =
  let best = Insp.Catalog.best platform.Insp.Platform.catalog in
  let dummy = { Naive_probe.members = []; cfg = best } in
  let groups = ref [] in
  let probes = ref 0 in
  for i = 0 to Insp.App.n_operators app - 1 do
    let placed =
      List.exists
        (fun g ->
          incr probes;
          if
            Naive_probe.can_host app platform !groups ~self:g
              ~cfg:g.Naive_probe.cfg
              ~members:(i :: g.Naive_probe.members)
          then begin
            g.Naive_probe.members <- i :: g.Naive_probe.members;
            true
          end
          else false)
        !groups
    in
    if not placed then begin
      incr probes;
      if
        Naive_probe.can_host app platform !groups ~self:dummy ~cfg:best
          ~members:[ i ]
      then groups := !groups @ [ { Naive_probe.members = [ i ]; cfg = best } ]
    end
  done;
  (!probes, List.length !groups)

let greedy_ledger app platform =
  let best = Insp.Catalog.best platform.Insp.Platform.catalog in
  let b = Insp.Builder.create app platform in
  let probes = ref 0 in
  for i = 0 to Insp.App.n_operators app - 1 do
    let placed =
      List.exists
        (fun gid ->
          incr probes;
          Insp.Builder.try_add b gid i)
        (Insp.Builder.group_ids b)
    in
    if not placed then begin
      incr probes;
      ignore (Insp.Builder.acquire b ~config:best ~members:[ i ])
    end
  done;
  (!probes, List.length (Insp.Builder.group_ids b))

let run_probe_bench ~quick () =
  line "feasibility-probe throughput (ledger vs from-scratch)";
  let inst =
    Insp.Instance.generate
      (Insp.Config.make ~n_operators:100 ~alpha:0.9 ~seed:1 ())
  in
  let app = inst.Insp.Instance.app in
  let platform = inst.Insp.Instance.platform in
  let reps = if quick then 5 else 30 in
  let time f =
    let t0 = Sys.time () in
    let probes = ref 0 and groups = ref 0 in
    for _ = 1 to reps do
      let p, g = f app platform in
      probes := p;
      groups := g
    done;
    let dt = Sys.time () -. t0 in
    (float_of_int (!probes * reps) /. Float.max dt 1e-9, !probes, !groups)
  in
  let tput_naive, probes_n, groups_n = time greedy_naive in
  let tput_ledger, probes_l, groups_l = time greedy_ledger in
  Printf.printf
    "from-scratch: %9.0f probes/s  (%d probes, %d groups per build)\n\
     ledger:       %9.0f probes/s  (%d probes, %d groups per build)\n\
     speedup:      %9.1fx\n%!"
    tput_naive probes_n groups_n tput_ledger probes_l groups_l
    (tput_ledger /. tput_naive);
  if groups_n <> groups_l || probes_n <> probes_l then
    Printf.printf
      "WARNING: probers diverged (probes %d vs %d, groups %d vs %d)\n%!"
      probes_n probes_l groups_n groups_l

(* ------------------------------------------------------------------ *)
(* Scale rows: the candidate-queue greedy on 10k/100k-operator trees    *)

(* Each scale row generates a Config.scale instance (tiny objects, so
   the unchanged dell_2008 catalog still hosts the tree) and runs the
   queue-based Comp-Greedy pipeline end to end — placement, server
   selection, downgrade and the full checker.  The row records a hard
   wall-clock budget (gauge "wall_budget_s"); bench/compare.exe fails
   when a scale.* row exceeds its own budget (DESIGN.md §16). *)
let scale_entry ~n ~budget_s name () =
  line (Printf.sprintf "%s (%d-operator scale instance)" name n);
  let inst =
    match
      Insp.Instance.generate_checked (Insp.Config.scale ~n_operators:n ())
    with
    | Ok t -> t
    | Error e -> failwith (Insp.Instance.gen_error_message e)
  in
  let t0 = Unix.gettimeofday () in
  let outcome, recorder =
    Insp.Obs.with_sink (fun () ->
        Insp.Solve.run ~seed:1
          (Option.get (Insp.Solve.find "comp"))
          inst.Insp.Instance.app inst.Insp.Instance.platform)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let m = recorder.Insp.Obs.metrics in
  Insp.Obs_metrics.set_gauge m "wall_budget_s" budget_s;
  Insp.Obs_metrics.set_gauge m "scale.ops_per_s"
    (float_of_int n /. Float.max wall_s 1e-9);
  (match outcome with
  | Ok o ->
    Insp.Obs_metrics.incr ~by:o.Insp.Solve.n_procs m "scale.procs";
    Printf.printf
      "N=%d: %d processors, $%.0f in %.2f s (%.0f operators/s, budget %.1f s)\n%!"
      n o.Insp.Solve.n_procs o.Insp.Solve.cost wall_s
      (float_of_int n /. Float.max wall_s 1e-9)
      budget_s
  | Error f ->
    Printf.printf "N=%d: FAILED: %s\n%!" n (Insp.Solve.failure_message f));
  (name, wall_s, recorder)

(* ------------------------------------------------------------------ *)
(* Allocation rows: minor words per solve, attributed via Obs.Prof      *)

(* Run the scale-preset solve under a profiling sink and report the
   profiler's totals as gauges.  "alloc.minor_words" is a hard-gated
   row: bench/compare.exe fails when it exceeds the committed
   "alloc_budget_words" (DESIGN.md §17) — the allocation analogue of
   the scale rows' wall budget.  Minor words are a deterministic
   function of the (deterministic) solve, so unlike wall gauges the
   value is byte-stable run-to-run and any change is a code change. *)
let prof_totals recorder =
  match recorder.Insp.Obs.prof with
  | Some p -> (Insp.Obs_prof.totals p, Insp.Obs_prof.rows p)
  | None -> failwith "alloc row: sink has no profiler"

(* Share of the commit path's self minor words that carries a
   "ledger.*" span — the acceptance bar for attribution granularity:
   anonymous phase self cannot direct flattening work, ledger spans
   can.  The commit path is the placement phase subtree. *)
let commit_ledger_share rows =
  let segs (r : Insp.Obs_prof.row) =
    String.split_on_char '/' r.Insp.Obs_prof.path
  in
  let in_commit r = List.mem "placement" (segs r) in
  let is_ledger r =
    List.exists
      (fun seg -> String.length seg >= 7 && String.sub seg 0 7 = "ledger.")
      (segs r)
  in
  let total, ledger =
    List.fold_left
      (fun (t, l) r ->
        if in_commit r then
          ( t +. r.Insp.Obs_prof.self_minor,
            if is_ledger r then l +. r.Insp.Obs_prof.self_minor else l )
        else (t, l))
      (0.0, 0.0) rows
  in
  ledger /. Float.max total 1.0

let alloc_entry ~n ~budget_words name () =
  line (Printf.sprintf "%s (minor words, %d-operator scale solve)" name n);
  let inst =
    match
      Insp.Instance.generate_checked (Insp.Config.scale ~n_operators:n ())
    with
    | Ok t -> t
    | Error e -> failwith (Insp.Instance.gen_error_message e)
  in
  let t0 = Unix.gettimeofday () in
  let outcome, recorder =
    Insp.Obs.with_sink ~profile:true (fun () ->
        Insp.Solve.run ~seed:1
          (Option.get (Insp.Solve.find "comp"))
          inst.Insp.Instance.app inst.Insp.Instance.platform)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  (match outcome with
  | Ok _ -> ()
  | Error f -> failwith (Insp.Solve.failure_message f));
  let totals, rows = prof_totals recorder in
  let minor = totals.Insp.Obs_prof.t_minor in
  let share = commit_ledger_share rows in
  let m = recorder.Insp.Obs.metrics in
  Insp.Obs_metrics.set_gauge m "alloc.minor_words" minor;
  Insp.Obs_metrics.set_gauge m "alloc_budget_words" budget_words;
  Insp.Obs_metrics.set_gauge m "alloc.words_per_op" (minor /. float_of_int n);
  Insp.Obs_metrics.set_gauge m "alloc.commit_ledger_share" share;
  Printf.printf
    "N=%d: %.0f minor words (%.1f per operator, commit-path ledger share \
     %.1f%%, budget %.0f)\n\
     %!"
    n minor
    (minor /. float_of_int n)
    (100.0 *. share) budget_words;
  print_string (Insp.Obs_export.prof_report ~top:8 recorder);
  (name, wall_s, recorder)

(* Same contract for the online service: minor words across the serve
   event loop, gated per event so --quick (120 apps) and full (1000)
   runs share one budget constant. *)
let alloc_serve_entry ~quick () =
  line "alloc.serve_1k (minor words, serve event loop)";
  let n_apps = if quick then 120 else 1000 in
  (* ~11.3k words/event measured (admission solve + ledger probe per
     arrival); per-event budget so --quick (120 apps) and full (1000)
     runs share one constant. *)
  let per_event_budget = 16_000.0 in
  let spec = Insp.Serve_stream.make ~n_apps ~seed:1 () in
  let events = Insp.Serve_stream.events spec in
  let params =
    Insp.Serve.make_params
      ~base:(Insp.Config.make ~n_operators:60 ~seed:1 ())
      ~proc_budget:128 ~card_scale:0.08 ()
  in
  let t0 = Unix.gettimeofday () in
  let _state, recorder =
    Insp.Obs.with_sink ~profile:true (fun () -> Insp.Serve.run params events)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let totals, _rows = prof_totals recorder in
  let minor = totals.Insp.Obs_prof.t_minor in
  let n_events = List.length events in
  let m = recorder.Insp.Obs.metrics in
  Insp.Obs_metrics.set_gauge m "alloc.minor_words" minor;
  Insp.Obs_metrics.set_gauge m "alloc_budget_words"
    (per_event_budget *. float_of_int n_events);
  Insp.Obs_metrics.set_gauge m "alloc.words_per_event"
    (minor /. float_of_int (max 1 n_events));
  Printf.printf "%d events: %.0f minor words (%.0f per event)\n%!" n_events
    minor
    (minor /. float_of_int (max 1 n_events));
  ("alloc.serve_1k", wall_s, recorder)

(* Ledger probe throughput at scale, as a tracked JSON row
   (run_probe_bench below prints the ledger-vs-naive comparison on a
   paper-sized instance; this row sizes the ledger path alone on a
   scale-preset tree). *)
let probe_throughput_entry ~quick () =
  line "probe throughput (ledger greedy first-fit, scale preset)";
  let n = if quick then 500 else 2000 in
  let inst =
    match
      Insp.Instance.generate_checked (Insp.Config.scale ~n_operators:n ())
    with
    | Ok t -> t
    | Error e -> failwith (Insp.Instance.gen_error_message e)
  in
  let t0 = Unix.gettimeofday () in
  let probes, groups =
    greedy_ledger inst.Insp.Instance.app inst.Insp.Instance.platform
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let tput = float_of_int probes /. Float.max wall_s 1e-9 in
  Printf.printf "N=%d: %d probes, %d groups in %.3f s (%.0f probes/s)\n%!" n
    probes groups wall_s tput;
  let recorder = Insp.Obs.create () in
  let m = recorder.Insp.Obs.metrics in
  Insp.Obs_metrics.incr ~by:probes m "probe.probes";
  Insp.Obs_metrics.incr ~by:groups m "probe.groups";
  Insp.Obs_metrics.set_gauge m "probe.probes_per_s" tput;
  ("probe.throughput", wall_s, recorder)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment             *)

let fixed_instance ?(n = 60) ?(alpha = 0.9) ?sizes ?freq () =
  Insp.Instance.generate
    (Insp.Config.make ~n_operators:n ~alpha ?sizes ?freq ~seed:1 ())

(* ------------------------------------------------------------------ *)
(* Journal recording overhead: the zero-cost-when-off claim             *)

(* Same heuristic-suite workload with no sink installed and with a
   journaling sink; the delta is what `Obs.event` guards plus event
   construction cost.  Reported as a synthetic BENCH_insp.json row so
   bench-compare tracks it across commits. *)
let journal_overhead_entry ~quick () =
  line "journal overhead (no sink vs recording)";
  let inst = fixed_instance ~n:30 () in
  let work () =
    ignore
      (Insp.Solve.run_all ~seed:1 inst.Insp.Instance.app
         inst.Insp.Instance.platform)
  in
  let reps = if quick then 5 else 30 in
  let time f =
    (* one warmup rep keeps allocator state comparable between regimes *)
    f ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let off_s = time work in
  let events = ref 0 in
  let on_s =
    time (fun () ->
        let (), r = Insp.Obs.with_sink ~journal:true work in
        events := Insp.Obs_journal.length r.Insp.Obs.journal)
  in
  let overhead_pct = 100.0 *. ((on_s /. Float.max off_s 1e-9) -. 1.0) in
  Printf.printf
    "no sink:   %8.2f ms/run\n\
     recording: %8.2f ms/run  (%d journal events per run)\n\
     overhead:  %+7.1f%%\n\
     %!"
    (off_s *. 1e3) (on_s *. 1e3) !events overhead_pct;
  let recorder = Insp.Obs.create () in
  let m = recorder.Insp.Obs.metrics in
  Insp.Obs_metrics.incr ~by:!events m "journal.events";
  (* the _ms suffix marks these as wall-time gauges: bench-compare
     reports them but exempts them from the --strict drift check *)
  Insp.Obs_metrics.set_gauge m "journal.wall_off_ms" (off_s *. 1e3);
  Insp.Obs_metrics.set_gauge m "journal.wall_on_ms" (on_s *. 1e3);
  ("journal.overhead", on_s *. float_of_int reps, recorder)

(* ------------------------------------------------------------------ *)
(* Online service throughput: the serve event loop                      *)

(* One shared-substrate pass over the default 1000-application stream
   (admission solve + ledger probe per arrival, reclamation per
   departure).  The admitted/rejected counters ride along in the JSON
   row so bench-compare flags behavioural drift, not just wall time. *)
let serve_entry ~quick () =
  line "serve loop (shared substrate, 1k-application stream)";
  let n_apps = if quick then 120 else 1000 in
  let spec = Insp.Serve_stream.make ~n_apps ~seed:1 () in
  let events = Insp.Serve_stream.events spec in
  let params =
    Insp.Serve.make_params
      ~base:(Insp.Config.make ~n_operators:60 ~seed:1 ())
      ~proc_budget:128 ~card_scale:0.08 ()
  in
  let t0 = Unix.gettimeofday () in
  let state, recorder =
    Insp.Obs.with_sink (fun () -> Insp.Serve.run params events)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let totals = Insp.Serve.totals state in
  Printf.printf "%d events: admitted %d, rejected %d (%.1f%%) in %.2f s\n%!"
    (List.length events) totals.Insp.Serve.admitted totals.Insp.Serve.rejected
    (100.0 *. Insp.Serve.rejection_rate totals)
    wall_s;
  ("serve.1k_events", wall_s, recorder)

(* ------------------------------------------------------------------ *)
(* Fault repair loop: sustained crash/repair throughput                 *)

(* An all-crash timeline (bursty, ~2 victims per event) driven through
   the fault engine with DES measurement off: every cycle is one
   builder rebuild + displaced-operator re-placement + checker pass.
   The repair counters (migrations, rebuys) ride along in the JSON row
   so bench-compare flags behavioural drift in the repair policy, not
   just wall time. *)
let faults_repair_entry ~quick () =
  line "fault repair loop (crash/repair cycles, no DES)";
  let n_events = if quick then 60 else 500 in
  let inst = fixed_instance ~n:40 () in
  let alloc =
    match
      Insp.Solve.run ~seed:1
        (Option.get (Insp.Solve.find "sbu"))
        inst.Insp.Instance.app inst.Insp.Instance.platform
    with
    | Ok o -> o.Insp.Solve.alloc
    | Error f -> failwith (Insp.Solve.failure_message f)
  in
  let timeline =
    Insp.Fault_scenario.generate
      (Insp.Fault_scenario.make ~seed:1 ~horizon:100000.0 ~n_events
         ~mean_burst:2 ~crash_w:1 ~degrade_w:0 ~outage_w:0 ~jitter_w:0
         ~rho_w:0 ())
  in
  let spec = Insp.Fault_engine.make_spec ~measure:false () in
  let t0 = Unix.gettimeofday () in
  let report, recorder =
    Insp.Obs.with_sink (fun () ->
        Insp.Fault_engine.run spec inst.Insp.Instance.app
          inst.Insp.Instance.platform alloc timeline)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let total_mig =
    List.fold_left
      (fun a (e : Insp.Fault_engine.episode) -> a + e.Insp.Fault_engine.ep_migrations)
      0 report.Insp.Fault_engine.episodes
  in
  Printf.printf
    "%d crashes repaired (%d migrations, %.0f $ re-allocated) in %.2f s \
     (%.0f repairs/s)\n%!"
    report.Insp.Fault_engine.n_crashes total_mig
    report.Insp.Fault_engine.total_realloc_cost wall_s
    (float_of_int report.Insp.Fault_engine.n_crashes /. Float.max wall_s 1e-9);
  ("faults.repair_1k", wall_s, recorder)

(* ------------------------------------------------------------------ *)
(* Redundancy hardening: the K=1 cost-of-resilience point               *)

let faults_frontier_entry ~quick () =
  line "redundancy frontier (K=1 hardening)";
  let n = if quick then 20 else 40 in
  let inst = fixed_instance ~n () in
  let alloc =
    match
      Insp.Solve.run ~seed:1
        (Option.get (Insp.Solve.find "sbu"))
        inst.Insp.Instance.app inst.Insp.Instance.platform
    with
    | Ok o -> o.Insp.Solve.alloc
    | Error f -> failwith (Insp.Solve.failure_message f)
  in
  let t0 = Unix.gettimeofday () in
  let hardened, recorder =
    Insp.Obs.with_sink (fun () ->
        match
          Insp.Redundancy.harden ~k:1 inst.Insp.Instance.app
            inst.Insp.Instance.platform alloc
        with
        | Ok hd ->
          Insp.Obs.gauge "faults.frontier.base_cost" hd.Insp.Redundancy.base_cost;
          Insp.Obs.gauge "faults.frontier.cost" hd.Insp.Redundancy.cost;
          Some hd
        | Error _ -> None)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  (match hardened with
  | Some hd ->
    Printf.printf "K=1: %d spare(s), $%.0f over $%.0f base in %.2f s\n%!"
      hd.Insp.Redundancy.spares hd.Insp.Redundancy.cost
      hd.Insp.Redundancy.base_cost wall_s
  | None -> Printf.printf "K=1: hardening failed in %.2f s\n%!" wall_s);
  ("faults.k1_frontier", wall_s, recorder)

(* ------------------------------------------------------------------ *)
(* Lint wall time: per-file rules plus the whole-program deep pass      *)

(* A synthetic row so bench-compare catches analysis slowdowns — the
   deep pass (cmt load, call graph, effects, T1–T3) is bounded at ~2 s
   for the whole repo (DESIGN.md §14).  The finding count rides along:
   nonzero means the tree no longer lints clean.  Runs on whatever
   typedtrees the surrounding build left under _build; without any
   (bare source checkout) the deep half is skipped. *)
let lint_entry ~quick:_ () =
  line "lint (per-file rules + whole-program T1-T3)";
  let roots = List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "test" ] in
  let t0 = Unix.gettimeofday () in
  let shallow = Insp_lint.Driver.lint_roots roots in
  let deep, units =
    match Insp_lint.Cmt_loader.load ~root:"_build/default" () with
    | loaded ->
      let findings =
        Insp_lint.Deep.analyze (Insp_lint.Callgraph.build loaded)
        |> List.filter (fun f ->
               List.exists
                 (fun r ->
                   String.starts_with ~prefix:(r ^ "/") f.Insp_lint.Rule.file)
                 roots)
      in
      (findings, List.length loaded.Insp_lint.Cmt_loader.units)
    | exception Insp_lint.Cmt_loader.Cmt_error _ -> ([], 0)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let findings = List.length shallow + List.length deep in
  Printf.printf "%d finding(s) over %d compilation units in %.2f s\n%!"
    findings units wall_s;
  let recorder = Insp.Obs.create () in
  let m = recorder.Insp.Obs.metrics in
  Insp.Obs_metrics.incr ~by:findings m "lint.findings";
  Insp.Obs_metrics.incr ~by:units m "lint.units";
  ("lint.full_repo", wall_s, recorder)

let solve_suite inst () =
  ignore
    (Insp.Solve.run_all ~seed:1 inst.Insp.Instance.app
       inst.Insp.Instance.platform)

let bench_tests () =
  let fig2a_inst = fixed_instance () in
  let fig2b_inst = fixed_instance ~alpha:1.7 () in
  let fig3_inst = fixed_instance ~alpha:1.5 () in
  let large_inst = fixed_instance ~n:30 ~sizes:Insp.Config.Large () in
  let lowfreq_inst = fixed_instance ~freq:Insp.Config.Low () in
  let rates_inst = Insp.Instance.with_frequency (fixed_instance ()) 0.1 in
  let ilp_inst =
    Insp.Instance.homogeneous (fixed_instance ~n:10 ()) ~cpu_index:4
      ~nic_index:3
  in
  let sim_alloc =
    let inst = fixed_instance ~n:30 () in
    match
      Insp.Solve.run ~seed:1
        (Option.get (Insp.Solve.find "sbu"))
        inst.Insp.Instance.app inst.Insp.Instance.platform
    with
    | Ok o -> (inst, o.Insp.Solve.alloc)
    | Error f -> failwith (Insp.Solve.failure_message f)
  in
  [
    Test.make ~name:"fig2a: heuristic suite, N=60 a=0.9"
      (Staged.stage (solve_suite fig2a_inst));
    Test.make ~name:"fig2b: heuristic suite, N=60 a=1.7"
      (Staged.stage (solve_suite fig2b_inst));
    Test.make ~name:"fig3: heuristic suite, N=60 a=1.5"
      (Staged.stage (solve_suite fig3_inst));
    Test.make ~name:"large: heuristic suite, N=30 large objects"
      (Staged.stage (solve_suite large_inst));
    Test.make ~name:"lowfreq: heuristic suite, N=60 f=1/50"
      (Staged.stage (solve_suite lowfreq_inst));
    Test.make ~name:"rates: heuristic suite, N=60 f=1/10"
      (Staged.stage (solve_suite rates_inst));
    Test.make ~name:"ilp: exact B&B, N=10 homogeneous"
      (Staged.stage (fun () ->
           ignore
             (Insp.Exact.solve ~node_limit:200_000 ilp_inst.Insp.Instance.app
                ilp_inst.Insp.Instance.platform)));
    Test.make ~name:"sharing: CSE + DAG placement, 3 apps of N=20"
      (Staged.stage (fun () ->
           let apps, platform =
             Insp.Multi_workload.instance ~seed:1 ~n_apps:3 ~n_operators:20
           in
           ignore (Insp.Dag_place.run (Insp.Cse.share_apps apps) platform)));
    Test.make ~name:"rewrite: hill-climb over shapes, N=12"
      (Staged.stage (fun () ->
           let inst =
             Insp.Instance.generate
               (Insp.Config.make ~n_operators:12 ~alpha:1.4 ~seed:1 ())
           in
           let evaluate tree =
             let app =
               Insp.App.make ~base_work:8000.0 ~work_factor:0.19 ~tree
                 ~objects:(Insp.App.objects inst.Insp.Instance.app)
                 ~alpha:1.4 ()
             in
             match
               Insp.Solve.run ~seed:1
                 (Option.get (Insp.Solve.find "sbu"))
                 app inst.Insp.Instance.platform
             with
             | Ok o -> Some o.Insp.Solve.cost
             | Error _ -> None
           in
           ignore
             (Insp.Rewrite.optimize (Insp.Prng.create 1) ~evaluate
                (Insp.App.tree inst.Insp.Instance.app))));
    Test.make ~name:"replication: heuristic suite, 2 copies"
      (Staged.stage (fun () ->
           let inst =
             Insp.Instance.generate
               (Insp.Config.make ~n_operators:40 ~min_copies:2 ~max_copies:2
                  ~seed:1 ())
           in
           ignore
             (Insp.Solve.run_all ~seed:1 inst.Insp.Instance.app
                inst.Insp.Instance.platform)));
    Test.make ~name:"simcheck: DES run, N=30, 20 s horizon"
      (Staged.stage (fun () ->
           let inst, alloc = sim_alloc in
           ignore
             (Insp.Runtime.run ~horizon:20.0 ~warmup:5.0
                inst.Insp.Instance.app inst.Insp.Instance.platform alloc)));
    Test.make ~name:"catalog: cheapest_satisfying lookup"
      (Staged.stage (fun () ->
           ignore
             (Insp.Catalog.cheapest_satisfying Insp.Catalog.dell_2008
                ~speed:20000.0 ~bandwidth:400.0)));
  ]

let run_benchmarks () =
  line "bechamel micro-benchmarks (one per experiment)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ time_per_run ] ->
            Printf.printf "%-45s %12.1f us/run\n%!" name (time_per_run /. 1e3)
          | Some _ | None -> Printf.printf "%-45s (no estimate)\n%!" name)
        results)
    (bench_tests ())

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let rec split_opt flag acc = function
    | f :: v :: rest when f = flag -> (Some v, List.rev_append acc rest)
    | a :: rest -> split_opt flag (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json_file, args = split_opt "--json" [] args in
  let jobs_arg, args = split_opt "--jobs" [] args in
  let jobs =
    match jobs_arg with
    | None -> 1
    | Some v -> (
      match int_of_string_opt v with
      | Some j when j >= 1 -> j
      | Some _ | None ->
        prerr_endline "bench: --jobs must be a positive integer";
        exit 2)
  in
  let ids = List.filter (fun a -> a <> "--quick") args in
  let ids =
    if ids = [] then Insp.Suite.all_ids @ [ "catalog" ] else ids
  in
  let results = List.filter_map (run_experiment ~quick ~jobs) ids in
  let results =
    results
    @ [
        journal_overhead_entry ~quick ();
        serve_entry ~quick ();
        faults_repair_entry ~quick ();
        faults_frontier_entry ~quick ();
        lint_entry ~quick ();
        probe_throughput_entry ~quick ();
        scale_entry ~n:10_000 ~budget_s:1.0 "scale.10k" ();
        (* the alloc rows DO run under --quick (unlike scale.100k):
           minor words are deterministic, so the hard alloc gate
           belongs in the committed BENCH_insp.json *)
        (* 59.9M measured at the candidate-queue baseline; ~1.35x
           headroom, tightened as the commit path flattens *)
        alloc_entry ~n:100_000 ~budget_words:81_000_000.0 "alloc.100k" ();
        alloc_serve_entry ~quick ();
      ]
    (* the 100k row is capped out of --quick runs: it is the acceptance
       row for the candidate-queue refactor (< 1 s single-threaded),
       not a per-commit smoke check *)
    @ (if quick then []
       else [ scale_entry ~n:100_000 ~budget_s:1.0 "scale.100k" () ])
  in
  (match json_file with
  | Some file ->
    Insp.Obs_export.save file (bench_json ~quick results);
    Printf.printf "\nwrote %s\n%!" file
  | None -> ());
  if List.length ids > 1 then begin
    summarize_rankings ~quick ();
    run_ablations ~quick ()
  end;
  run_probe_bench ~quick ();
  run_benchmarks ();
  print_newline ()

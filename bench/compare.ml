(* Diff two BENCH_insp.json summaries (schema insp-bench-v1).

   Usage:
     dune exec bench/compare.exe -- BASELINE CURRENT [--strict]

   Reports, per experiment: the wall-time delta, and every recorded
   counter or gauge whose value drifted between the two runs, plus
   counters that appeared or vanished.  Wall time is timing-only and
   only informational; counter/gauge values are part of the determinism
   contract (DESIGN.md §10), so with [--strict] any value drift makes
   the exit status 1 — `make bench-compare` stays advisory.

   The parser below is the same dependency-free recursive-descent JSON
   reader idiom as test/test_obs.ml: the repo deliberately carries no
   JSON library. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let rec skip_ws () =
    if
      !pos < n
      && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false)
    then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' ->
        advance ();
        Buffer.contents buf
      | '\\' ->
        advance ();
        let c = peek () in
        advance ();
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          pos := !pos + 4;
          Buffer.add_char buf '?'
        | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numeric c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while !pos < n && numeric s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> J_num f
    | None -> fail "bad number"
  in
  let literal text v =
    let l = String.length text in
    if !pos + l <= n && String.sub s !pos l = text then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (
        advance ();
        J_obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((key, v) :: acc)
          | '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        J_obj (members [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (
        advance ();
        J_arr [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        J_arr (elements [])
      end
    | '"' -> J_str (parse_string ())
    | 't' -> literal "true" (J_bool true)
    | 'f' -> literal "false" (J_bool false)
    | 'n' -> literal "null" J_null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* insp-bench-v1 model                                                  *)

type experiment = {
  wall_s : float;
  counters : (string * float) list;  (* insertion order preserved *)
  gauges : (string * float) list;
}

let field key = function
  | J_obj members -> List.assoc_opt key members
  | _ -> None

let numbers = function
  | Some (J_obj members) ->
    List.filter_map
      (fun (k, v) -> match v with J_num f -> Some (k, f) | _ -> None)
      members
  | _ -> []

let load path =
  let source =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let root = parse_json source in
  (match field "schema" root with
  | Some (J_str "insp-bench-v1") -> ()
  | _ -> failwith (path ^ ": not an insp-bench-v1 summary"));
  match field "experiments" root with
  | Some (J_arr exps) ->
    List.filter_map
      (fun e ->
        match field "id" e with
        | Some (J_str id) ->
          let wall_s =
            match field "wall_s" e with Some (J_num f) -> f | _ -> 0.0
          in
          Some
            ( id,
              {
                wall_s;
                counters = numbers (field "counters" e);
                gauges = numbers (field "gauges" e);
              } )
        | _ -> None)
      exps
  | _ -> failwith (path ^ ": missing experiments array")

(* ------------------------------------------------------------------ *)
(* Diff                                                                 *)

let drift = ref 0

(* Gauges named *_ms or *_per_s are wall-time measurements or rates
   derived from them (e.g. the journal.overhead and scale.* rows):
   informational like wall_s, so value changes are reported but never
   counted as drift.  Appearing or vanishing still drifts — the *set*
   of recorded metrics is part of the contract. *)
let timing_gauge name =
  let has_suffix suffix =
    let n = String.length name and l = String.length suffix in
    n >= l && String.sub name (n - l) l = suffix
  in
  has_suffix "_ms" || has_suffix "_per_s"

let diff_values ~kind ~fmt old_vs new_vs =
  List.iter
    (fun (name, ov) ->
      match List.assoc_opt name new_vs with
      | None ->
        incr drift;
        Printf.printf "    %-10s %-40s %s -> (gone)\n" kind name (fmt ov)
      | Some nv when nv <> ov ->
        if not (kind = "gauge" && timing_gauge name) then incr drift;
        Printf.printf "    %-10s %-40s %s -> %s\n" kind name (fmt ov) (fmt nv)
      | Some _ -> ())
    old_vs;
  List.iter
    (fun (name, nv) ->
      if List.assoc_opt name old_vs = None then begin
        incr drift;
        Printf.printf "    %-10s %-40s (new) -> %s\n" kind name (fmt nv)
      end)
    new_vs

let fmt_count v = Printf.sprintf "%.0f" v
let fmt_gauge v = Printf.sprintf "%.6g" v

(* Rows that record a "wall_budget_s" gauge (the scale.* rows) carry a
   hard wall-clock threshold: unlike ordinary wall-time drift, blowing
   the budget in the CURRENT run fails the comparison even without
   [--strict] — near-linear scaling is an acceptance criterion of the
   candidate-queue data path (DESIGN.md §16), not advisory timing. *)
let over_budget = ref 0

let check_budget id (c : experiment) =
  (match List.assoc_opt "wall_budget_s" c.gauges with
  | Some budget when c.wall_s > budget ->
    incr over_budget;
    Printf.printf "    %-10s %-40s wall %.2f s EXCEEDS budget %.2f s\n" "BUDGET"
      id c.wall_s budget
  | Some _ | None -> ());
  (* Alloc rows carry the same discipline on minor words: the profiled
     solve's "alloc.minor_words" gauge must stay within the row's own
     "alloc_budget_words" (DESIGN.md §17).  Unlike wall time the value
     is deterministic, so an exceeded budget is always a code change,
     never machine noise. *)
  match
    ( List.assoc_opt "alloc_budget_words" c.gauges,
      List.assoc_opt "alloc.minor_words" c.gauges )
  with
  | Some budget, Some words when words > budget ->
    incr over_budget;
    Printf.printf
      "    %-10s %-40s %.0f minor words EXCEEDS budget %.0f\n" "BUDGET" id
      words budget
  | _ -> ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let strict = List.mem "--strict" args in
  match List.filter (fun a -> a <> "--strict") args with
  | [ old_path; new_path ] ->
    let old_exps = load old_path and new_exps = load new_path in
    Printf.printf "bench-compare: %s (baseline) vs %s (current)\n" old_path
      new_path;
    List.iter
      (fun (id, o) ->
        match List.assoc_opt id new_exps with
        | None ->
          incr drift;
          Printf.printf "  %-10s only in baseline\n" id
        | Some c ->
          let ratio = if o.wall_s > 0.0 then c.wall_s /. o.wall_s else 1.0 in
          Printf.printf "  %-10s wall %6.2f s -> %6.2f s  (%.2fx)\n" id
            o.wall_s c.wall_s ratio;
          diff_values ~kind:"counter" ~fmt:fmt_count o.counters c.counters;
          diff_values ~kind:"gauge" ~fmt:fmt_gauge o.gauges c.gauges)
      old_exps;
    List.iter
      (fun (id, _) ->
        if List.assoc_opt id old_exps = None then begin
          incr drift;
          Printf.printf "  %-10s only in current\n" id
        end)
      new_exps;
    List.iter (fun (id, c) -> check_budget id c) new_exps;
    if !drift = 0 then
      print_endline "no recorded-value drift (wall time is informational)"
    else Printf.printf "%d recorded value(s) drifted\n" !drift;
    if !over_budget > 0 then begin
      Printf.printf "%d row(s) over their wall-clock or allocation budget\n"
        !over_budget;
      exit 1
    end;
    if strict && !drift > 0 then exit 1
  | _ ->
    prerr_endline "usage: compare.exe BASELINE.json CURRENT.json [--strict]";
    exit 2

(* insp — command-line front end for the in-network stream processing
   resource-allocation toolkit. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)

let n_operators =
  let doc = "Number of operators in the random tree." in
  Arg.(value & opt int 60 & info [ "n"; "operators" ] ~docv:"N" ~doc)

let alpha =
  let doc = "Computation factor alpha (w = base + factor*(dl+dr)^alpha)." in
  Arg.(value & opt float 0.9 & info [ "a"; "alpha" ] ~docv:"ALPHA" ~doc)

let seed =
  let doc = "Random seed (instance and randomized heuristics)." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let sizes =
  let doc = "Object size regime: $(b,small) (5-30 MB) or $(b,large) \
             (450-530 MB)." in
  let regime =
    Arg.enum [ ("small", Insp.Config.Small); ("large", Insp.Config.Large) ]
  in
  Arg.(
    value & opt regime Insp.Config.Small & info [ "sizes" ] ~docv:"REGIME" ~doc)

let freq =
  let doc = "Download frequency: $(b,high) (1/2s), $(b,low) (1/50s) or a \
             float in 1/s." in
  let parse s =
    match String.lowercase_ascii s with
    | "high" -> Ok Insp.Config.High
    | "low" -> Ok Insp.Config.Low
    | other -> (
      match float_of_string_opt other with
      | Some f when f > 0.0 -> Ok (Insp.Config.Custom f)
      | Some _ | None -> Error (`Msg "expected high, low or a positive float"))
  in
  let print ppf = function
    | Insp.Config.High -> Format.pp_print_string ppf "high"
    | Insp.Config.Low -> Format.pp_print_string ppf "low"
    | Insp.Config.Custom f -> Format.fprintf ppf "%g" f
  in
  Arg.(
    value
    & opt (conv (parse, print)) Insp.Config.High
    & info [ "freq" ] ~docv:"FREQ" ~doc)

let heuristic_arg =
  let doc =
    "Heuristic: random, comp, comm, sbu, objgroup, objavail or $(b,all)."
  in
  Arg.(value & opt string "all" & info [ "H"; "heuristic" ] ~docv:"NAME" ~doc)

let make_instance n alpha sizes freq seed =
  Insp.Instance.generate
    (Insp.Config.make ~n_operators:n ~alpha ~sizes ~freq ~seed ())

(* ------------------------------------------------------------------ *)
(* Observability and exit codes                                        *)

let trace_arg =
  let doc =
    "Write the run's span tree as Chrome trace_event JSON (open in \
     chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Write the run's counters, gauges and histograms as CSV." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Profile allocation by span and write $(docv).report (top span paths \
     by self minor words), $(docv).csv (all GC metrics), and \
     $(docv).alloc.folded / $(docv).time.folded flamegraph folded stacks \
     (inferno, speedscope, flamegraph.pl).  Off = zero cost: spans skip \
     the Gc reads entirely."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"BASE" ~doc)

let exit_infeasible = 1
let exit_unknown_name = 2

let exits =
  Cmd.Exit.info exit_infeasible ~doc:"no feasible mapping was found."
  :: Cmd.Exit.info exit_unknown_name
       ~doc:"an unknown heuristic or experiment name was given."
  :: Cmd.Exit.defaults

let write_prof base recorder =
  Insp.Obs_export.save (base ^ ".report")
    (Insp.Obs_export.prof_report recorder);
  Insp.Obs_export.save (base ^ ".csv") (Insp.Obs_export.prof_csv recorder);
  Insp.Obs_export.save (base ^ ".alloc.folded")
    (Insp.Obs_export.prof_folded_alloc recorder);
  Insp.Obs_export.save (base ^ ".time.folded")
    (Insp.Obs_export.prof_folded_time recorder);
  Format.printf
    "wrote allocation profile to %s.{report,csv,alloc.folded,time.folded}@."
    base

(* Run [f] under a fresh observability sink when an export was requested;
   otherwise the engines' instrumentation stays a no-op. *)
let with_obs ~trace ~metrics ?(profile = None) f =
  if trace = None && metrics = None && profile = None then f ()
  else begin
    let code, recorder =
      Insp.Obs.with_sink ~profile:(profile <> None) f
    in
    Option.iter
      (fun path ->
        Insp.Obs_export.save path (Insp.Obs_export.chrome_trace recorder);
        Format.printf "wrote Chrome trace to %s@." path)
      trace;
    Option.iter
      (fun path ->
        Insp.Obs_export.save path (Insp.Obs_export.metrics_csv recorder);
        Format.printf "wrote metrics CSV to %s@." path)
      metrics;
    Option.iter (fun base -> write_prof base recorder) profile;
    code
  end

(* ------------------------------------------------------------------ *)
(* Decision journal helpers                                            *)

module Journal = Insp.Obs_journal

let journal_depth_arg =
  let doc =
    "Cap per hot event category (DES scheduling, LP branching) in the \
     decision journal; the cutoff is marked with a truncated event."
  in
  Arg.(
    value
    & opt int Journal.default_depth
    & info [ "journal-depth" ] ~docv:"N" ~doc)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run every requested heuristic under a journaling sink and return the
   outcomes plus the canonical JSONL (manifest first).  The manifest
   makes the journal self-describing: same file, years later, still
   names the instance it explains. *)
let journaled_solve ~n ~alpha ~sizes ~freq ~seed ~heuristic ~depth () =
  let cfg = Insp.Config.make ~n_operators:n ~alpha ~sizes ~freq ~seed () in
  let heuristics =
    if heuristic = "all" then Some Insp.Solve.all
    else Option.map (fun h -> [ h ]) (Insp.Solve.find heuristic)
  in
  match heuristics with
  | None -> None
  | Some hs ->
    let inst = Insp.Instance.generate cfg in
    let results, recorder =
      Insp.Obs.with_sink ~journal:true ~journal_depth:depth (fun () ->
          List.map
            (fun (h : Insp.Solve.heuristic) ->
              ( h,
                Insp.Solve.run ~seed h inst.Insp.Instance.app
                  inst.Insp.Instance.platform ))
            hs)
    in
    Journal.set_manifest recorder.Insp.Obs.journal
      {
        Journal.m_seed = seed;
        m_config_hash =
          Journal.hash_hex (Format.asprintf "%a" Insp.Config.pp cfg);
        m_heuristic = heuristic;
        m_args =
          [
            ("n", string_of_int n);
            ("alpha", Printf.sprintf "%g" alpha);
            ( "sizes",
              match sizes with
              | Insp.Config.Small -> "small"
              | Insp.Config.Large -> "large"
              | Insp.Config.Custom_sizes (lo, hi) ->
                Printf.sprintf "custom(%g..%g)" lo hi );
            ( "freq",
              match freq with
              | Insp.Config.High -> "high"
              | Insp.Config.Low -> "low"
              | Insp.Config.Custom f -> Printf.sprintf "%g" f );
            ("journal-depth", string_of_int depth);
          ];
      };
    Some (results, recorder)

let solve_exit_code results =
  if List.exists (fun (_, r) -> Result.is_ok r) results then 0
  else exit_infeasible

let print_divergence (d : Journal.divergence) =
  List.iter (fun l -> Format.printf "  %s@." l) d.Journal.div_context;
  let side tag = function
    | Some l -> Format.printf "%s %s@." tag l
    | None -> Format.printf "%s <end of journal>@." tag
  in
  side "<" d.Journal.div_left;
  side ">" d.Journal.div_right;
  Format.printf "first divergence at line %d@." d.Journal.div_line

(* ------------------------------------------------------------------ *)
(* solve                                                               *)

let print_outcomes inst results verbose =
  let table =
    Insp.Table.create
      [
        ("heuristic", Insp.Table.Left);
        ("cost ($)", Insp.Table.Right);
        ("processors", Insp.Table.Right);
        ("status", Insp.Table.Left);
      ]
  in
  List.iter
    (fun ((h : Insp.Solve.heuristic), r) ->
      match r with
      | Ok (o : Insp.Solve.outcome) ->
        Insp.Table.add_row table
          [
            h.name;
            Printf.sprintf "%.0f" o.cost;
            string_of_int o.n_procs;
            "feasible";
          ]
      | Error f ->
        Insp.Table.add_row table
          [ h.name; "-"; "-"; Insp.Solve.failure_message f ])
    results;
  Insp.Table.print table;
  if verbose then
    List.iter
      (fun ((h : Insp.Solve.heuristic), r) ->
        match r with
        | Ok (o : Insp.Solve.outcome) ->
          Format.printf "@.%s:@.%a@." h.name Insp.Alloc.pp o.alloc
        | Error _ -> ())
      results;
  ignore inst

(* With a sink installed, also drive the simulator and the LP relaxation
   on the solved instance, so one `solve --trace/--metrics` run records
   all three engines (heuristics, LP, simulator). *)
let obs_diagnostics inst results =
  let feasible =
    List.filter_map
      (fun (_, r) -> match r with Ok o -> Some o | Error _ -> None)
      results
  in
  match feasible with
  | [] -> ()
  | first :: rest ->
    let best =
      List.fold_left
        (fun (b : Insp.Solve.outcome) o ->
          if o.Insp.Solve.cost < b.Insp.Solve.cost then o else b)
        first rest
    in
    ignore (Insp.simulate ~horizon:40.0 inst best.Insp.Solve.alloc);
    if Insp.App.n_operators inst.Insp.Instance.app <= 30 then
      Insp.Obs.span "lp.relaxation" (fun () ->
          let homog =
            Insp.Instance.homogeneous inst ~cpu_index:4 ~nic_index:3
          in
          let model =
            Insp.Ilp_model.build homog.Insp.Instance.app
              homog.Insp.Instance.platform
              ~max_procs:best.Insp.Solve.n_procs
          in
          Option.iter (Insp.Obs.gauge "lp.relaxation.bound")
            (Insp.Ilp_model.lower_bound model))

let solve_cmd =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print allocations.")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the operator tree as DOT.")
  in
  let scale =
    Arg.(
      value & flag
      & info [ "scale" ]
          ~doc:
            "Generate the 100k-class scale preset (tiny objects, \
             Config.scale) instead of the paper generator; $(b,-n) still \
             sets the operator count.  This is the instance family behind \
             the scale.* and alloc.* bench rows, so $(b,--scale \
             --profile) reproduces their allocation profile.")
  in
  let run n alpha sizes freq seed heuristic verbose dot trace metrics profile
      scale =
    with_obs ~trace ~metrics ~profile @@ fun () ->
    let inst =
      if scale then
        Insp.Instance.generate (Insp.Config.scale ~seed ~n_operators:n ())
      else make_instance n alpha sizes freq seed
    in
    Format.printf "%a@.@." Insp.Instance.pp inst;
    (match dot with
    | Some path ->
      Insp.Dot.save (Insp.Dot.of_app inst.Insp.Instance.app) path;
      Format.printf "wrote %s@." path
    | None -> ());
    let results =
      if heuristic = "all" then
        Some
          (Insp.Solve.run_all ~seed inst.Insp.Instance.app
             inst.Insp.Instance.platform)
      else
        Option.map
          (fun h ->
            [
              ( h,
                Insp.Solve.run ~seed h inst.Insp.Instance.app
                  inst.Insp.Instance.platform );
            ])
          (Insp.Solve.find heuristic)
    in
    match results with
    | None ->
      prerr_endline ("unknown heuristic: " ^ heuristic);
      exit_unknown_name
    | Some results ->
      print_outcomes inst results verbose;
      (* Scale-preset runs skip the simulator/LP diagnostics: a DES pass
         over a 10k-operator allocation allocates ~1000x the solve
         itself and would drown the allocation profile `make prof` is
         after. *)
      if Insp.Obs.enabled () && not scale then obs_diagnostics inst results;
      if List.exists (fun (_, r) -> Result.is_ok r) results then 0
      else exit_infeasible
  in
  let term =
    Term.(
      const run $ n_operators $ alpha $ sizes $ freq $ seed $ heuristic_arg
      $ verbose $ dot $ trace_arg $ metrics_arg $ profile_arg $ scale)
  in
  Cmd.v
    (Cmd.info "solve" ~exits
       ~doc:"Run placement heuristics on a random instance.")
    term

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let simulate_cmd =
  let horizon =
    Arg.(
      value & opt float 80.0
      & info [ "horizon" ] ~docv:"SECONDS" ~doc:"Simulated seconds.")
  in
  let run n alpha sizes freq seed heuristic horizon trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let inst = make_instance n alpha sizes freq seed in
    let key = if heuristic = "all" then "sbu" else heuristic in
    match Insp.Solve.find key with
    | None ->
      prerr_endline ("unknown heuristic: " ^ key);
      exit_unknown_name
    | Some h -> (
      match
        Insp.Solve.run ~seed h inst.Insp.Instance.app
          inst.Insp.Instance.platform
      with
      | Error f ->
        prerr_endline (Insp.Solve.failure_message f);
        exit_infeasible
      | Ok o ->
        Format.printf "%s found %d processors for $%.0f@." h.name o.n_procs
          o.cost;
        let report = Insp.simulate ~horizon inst o.alloc in
        Format.printf "%a@." Insp.Runtime.pp_report report;
        Format.printf "sustains target: %b@."
          (Insp.Runtime.sustains_target report);
        0)
  in
  let term =
    Term.(
      const run $ n_operators $ alpha $ sizes $ freq $ seed $ heuristic_arg
      $ horizon $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "simulate" ~exits
       ~doc:"Solve, then execute the mapping in the discrete-event runtime.")
    term

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)

let sweep_cmd =
  let experiment =
    let doc =
      "Experiment id: " ^ String.concat ", " Insp.Suite.all_ids ^ ", or all."
    in
    Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Fewer seeds and points.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run sweep cells on $(docv) domains.  Output is identical for \
             every value (deterministic static partition).")
  in
  let run experiment quick seed jobs trace metrics profile =
    if jobs < 1 then begin
      prerr_endline "insp: --jobs must be >= 1";
      exit_unknown_name
    end
    else
      with_obs ~trace ~metrics ~profile @@ fun () ->
      let ids =
        if experiment = "all" then Insp.Suite.all_ids else [ experiment ]
      in
      List.fold_left
        (fun code id ->
          if code <> 0 then code
          else
            match Insp.Suite.run_by_id ~quick ~seed ~jobs id with
            | Some s ->
              print_string s;
              print_newline ();
              0
            | None ->
              prerr_endline ("unknown experiment: " ^ id);
              exit_unknown_name)
        0 ids
  in
  let term =
    Term.(
      const run $ experiment $ quick $ seed $ jobs $ trace_arg $ metrics_arg
      $ profile_arg)
  in
  Cmd.v
    (Cmd.info "sweep" ~exits
       ~doc:"Reproduce a paper experiment (table/figure).")
    term

(* ------------------------------------------------------------------ *)
(* exact                                                               *)

let exact_cmd =
  let cpu =
    Arg.(
      value & opt int 4
      & info [ "cpu" ] ~docv:"IDX" ~doc:"Homogeneous CPU option (0-4).")
  in
  let nic =
    Arg.(
      value & opt int 3
      & info [ "nic" ] ~docv:"IDX" ~doc:"Homogeneous NIC option (0-4).")
  in
  let run n alpha seed cpu nic trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let inst =
      Insp.Instance.homogeneous
        (make_instance n alpha Insp.Config.Small Insp.Config.High seed)
        ~cpu_index:cpu ~nic_index:nic
    in
    let exact_code =
      match
        Insp.Exact.solve inst.Insp.Instance.app inst.Insp.Instance.platform
      with
      | Ok r ->
        Format.printf
          "exact optimum: %d processors, $%.0f (%s, %d nodes explored)@."
          r.Insp.Exact.n_procs r.cost
          (if r.proven then "proven" else "node limit hit")
          r.nodes;
        0
      | Error e ->
        Format.printf "exact: %s@." e;
        exit_infeasible
    in
    List.iter
      (fun ((h : Insp.Solve.heuristic), r) ->
        match r with
        | Ok (o : Insp.Solve.outcome) ->
          Format.printf "%-20s %d processors, $%.0f@." h.name o.n_procs o.cost
        | Error f ->
          Format.printf "%-20s %s@." h.name (Insp.Solve.failure_message f))
      (Insp.Solve.run_all ~seed inst.Insp.Instance.app
         inst.Insp.Instance.platform);
    exact_code
  in
  let term =
    Term.(
      const run $ n_operators $ alpha $ seed $ cpu $ nic $ trace_arg
      $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "exact" ~exits
       ~doc:
         "Exact branch-and-bound optimum on a homogeneous platform, compared \
          with the heuristics.")
    term

(* ------------------------------------------------------------------ *)
(* multi                                                               *)

let multi_cmd =
  let n_apps =
    Arg.(
      value & opt int 3
      & info [ "apps" ] ~docv:"Q" ~doc:"Number of concurrent applications.")
  in
  let run n seed n_apps =
    let apps, platform =
      Insp.Multi_workload.instance ~seed ~n_apps ~n_operators:n
    in
    Format.printf "%a@.@." Insp.Cse.pp_savings (Insp.Cse.savings apps);
    let provision name dag =
      match Insp.Dag_place.run dag platform with
      | Ok o ->
        Format.printf "%-12s $%-9.0f (%d processors)@." name o.cost o.n_procs
      | Error f ->
        Format.printf "%-12s %s@." name (Insp.Dag_place.failure_message f)
    in
    provision "no sharing" (Insp.Dag.of_apps apps);
    provision "CSE sharing" (Insp.Cse.share_apps apps);
    0
  in
  let term = Term.(const run $ n_operators $ seed $ n_apps) in
  Cmd.v
    (Cmd.info "multi"
       ~doc:
         "Provision several concurrent applications, with and without \
          common-subexpression sharing.")
    term

(* ------------------------------------------------------------------ *)
(* rewrite                                                             *)

let rewrite_cmd =
  let restarts =
    Arg.(
      value & opt int 3
      & info [ "restarts" ] ~docv:"R" ~doc:"Hill-climbing random restarts.")
  in
  let run n alpha seed restarts =
    let inst =
      Insp.Instance.generate (Insp.Config.make ~n_operators:n ~alpha ~seed ())
    in
    let platform = inst.Insp.Instance.platform in
    let objects = Insp.App.objects inst.Insp.Instance.app in
    let sbu = Option.get (Insp.Solve.find "sbu") in
    let evaluate tree =
      let app =
        Insp.App.make ~base_work:8000.0 ~work_factor:0.19 ~tree ~objects
          ~alpha ()
      in
      match Insp.Solve.run ~seed sbu app platform with
      | Ok o -> Some o.Insp.Solve.cost
      | Error _ -> None
    in
    let show name tree =
      match evaluate tree with
      | Some c ->
        Format.printf "%-12s height %-3d $%.0f@." name
          (Insp.Optree.height tree) c
      | None ->
        Format.printf "%-12s height %-3d infeasible@." name
          (Insp.Optree.height tree)
    in
    let original = Insp.App.tree inst.Insp.Instance.app in
    show "original" original;
    show "left-deep" (Insp.Rewrite.left_deep_of original);
    show "balanced" (Insp.Rewrite.balanced_of original);
    let best, cost =
      Insp.Rewrite.optimize (Insp.Prng.create seed) ~evaluate ~restarts
        original
    in
    (match cost with
    | Some c ->
      Format.printf "%-12s height %-3d $%.0f@." "optimized"
        (Insp.Optree.height best) c
    | None -> Format.printf "optimized    infeasible@.");
    0
  in
  let term = Term.(const run $ n_operators $ alpha $ seed $ restarts) in
  Cmd.v
    (Cmd.info "rewrite"
       ~doc:
         "Search equivalent operator-tree shapes (associativity/\
          commutativity) for a cheaper provisioning.")
    term

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let print_serve_summary state =
  let table =
    Insp.Table.create
      ~title:
        (Printf.sprintf "serve: %s tenancy"
           (Insp.Serve.tenancy_label (Insp.Serve.params state).Insp.Serve.tenancy))
      [
        ("tenant", Insp.Table.Left);
        ("admitted", Insp.Table.Right);
        ("rejected", Insp.Table.Right);
        ("reject %", Insp.Table.Right);
        ("departed", Insp.Table.Right);
        ("live", Insp.Table.Right);
        ("purchased ($)", Insp.Table.Right);
        ("refunded ($)", Insp.Table.Right);
        ("net ($)", Insp.Table.Right);
      ]
  in
  let row label (s : Insp.Serve.tenant_summary) =
    Insp.Table.add_row table
      [
        label;
        string_of_int s.Insp.Serve.admitted;
        string_of_int s.rejected;
        Printf.sprintf "%.1f" (100.0 *. Insp.Serve.rejection_rate s);
        string_of_int s.departed;
        string_of_int s.live;
        Printf.sprintf "%.0f" s.purchased;
        Printf.sprintf "%.0f" s.refunded;
        Printf.sprintf "%.0f" s.net_cost;
      ]
  in
  List.iter
    (fun (s : Insp.Serve.tenant_summary) ->
      row (string_of_int s.Insp.Serve.tenant) s)
    (Insp.Serve.summary state);
  Insp.Table.add_separator table;
  row "all" (Insp.Serve.totals state);
  Insp.Table.print table

let serve_cmd =
  let apps =
    Arg.(
      value & opt int 1000
      & info [ "apps" ] ~docv:"N" ~doc:"Applications in the event stream.")
  in
  let tenants =
    Arg.(value & opt int 4 & info [ "tenants" ] ~docv:"T" ~doc:"Tenant count.")
  in
  let tenancy =
    let doc =
      "Tenancy model: $(b,shared) (one pool) or $(b,static) (fixed 1/T \
       partition of processors and server cards per tenant)."
    in
    let model =
      Arg.enum
        [ ("shared", Insp.Serve.Shared); ("static", Insp.Serve.Static_slicing) ]
    in
    Arg.(value & opt model Insp.Serve.Shared & info [ "tenancy" ] ~docv:"MODEL" ~doc)
  in
  let proc_budget =
    Arg.(
      value & opt int 96
      & info [ "proc-budget" ] ~docv:"P"
          ~doc:"Platform-wide cap on concurrently allocated processors.")
  in
  let card_scale =
    Arg.(
      value & opt float 1.0
      & info [ "card-scale" ] ~docv:"F"
          ~doc:"Scale server card bandwidths (values below 1 make cards a \
                contended resource under co-tenancy).")
  in
  let resale =
    Arg.(
      value & opt float 0.5
      & info [ "resale" ] ~docv:"F"
          ~doc:"Fraction of an application's cost refunded on departure.")
  in
  let reopt =
    Arg.(
      value & flag
      & info [ "reopt" ]
          ~doc:"Re-optimize the departing tenant's survivors after each \
                departure.")
  in
  let journal_out =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Write the admit/reject/depart decision journal (canonical \
                JSONL).")
  in
  let dump_out =
    Arg.(
      value & opt (some string) None
      & info [ "dump" ] ~docv:"FILE"
          ~doc:"Write the canonical final-state dump (live applications, \
                residual capacity, accounts).")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Run the stream twice and require byte-identical journals and \
                state dumps.")
  in
  let run seed apps tenants tenancy proc_budget card_scale resale reopt
      heuristic journal_out dump_out verify trace metrics profile =
    let key = if heuristic = "all" then "sbu" else heuristic in
    match Insp.Solve.find key with
    | None ->
      prerr_endline ("unknown heuristic: " ^ key);
      exit_unknown_name
    | Some h ->
      let spec =
        Insp.Serve_stream.make ~n_apps:apps ~n_tenants:tenants ~seed ()
      in
      let params =
        Insp.Serve.make_params
          ~base:(Insp.Config.make ~n_operators:60 ~seed ())
          ~tenancy ~n_tenants:tenants ~proc_budget ~card_scale ~heuristic:h
          ~resale ~reoptimize:reopt ()
      in
      let events = Insp.Serve_stream.events spec in
      let once () =
        let state, recorder =
          Insp.Obs.with_sink ~journal:true ~profile:(profile <> None)
            (fun () -> Insp.Serve.run params events)
        in
        Journal.set_manifest recorder.Insp.Obs.journal
          {
            Journal.m_seed = seed;
            m_config_hash =
              Journal.hash_hex
                (Format.asprintf "%a" Insp.Config.pp params.Insp.Serve.base);
            m_heuristic = key;
            m_args =
              [
                ("apps", string_of_int apps);
                ("tenants", string_of_int tenants);
                ("tenancy", Insp.Serve.tenancy_label tenancy);
                ("proc-budget", string_of_int proc_budget);
                ("card-scale", Printf.sprintf "%g" card_scale);
                ("resale", Printf.sprintf "%g" resale);
                ("reopt", string_of_bool reopt);
              ];
          };
        (state, recorder)
      in
      let state, recorder = once () in
      let jsonl = Journal.to_jsonl recorder.Insp.Obs.journal in
      let dump = Insp.Serve.dump_state state in
      let verify_code =
        if not verify then 0
        else begin
          let state2, recorder2 = once () in
          let jsonl2 = Journal.to_jsonl recorder2.Insp.Obs.journal in
          match Journal.diff jsonl jsonl2 with
          | Some d ->
            Format.printf "serve verify: FAILED (journal)@.";
            print_divergence d;
            exit_infeasible
          | None -> (
            match Journal.diff dump (Insp.Serve.dump_state state2) with
            | Some d ->
              Format.printf "serve verify: FAILED (state dump)@.";
              print_divergence d;
              exit_infeasible
            | None ->
              Format.printf
                "serve verify: OK (%d journal events, byte-identical)@."
                (Journal.length recorder.Insp.Obs.journal);
              0)
        end
      in
      print_serve_summary state;
      Option.iter
        (fun path ->
          Insp.Obs_export.save path jsonl;
          Format.printf "wrote decision journal to %s (%d events)@." path
            (Journal.length recorder.Insp.Obs.journal))
        journal_out;
      Option.iter
        (fun path ->
          Insp.Obs_export.save path dump;
          Format.printf "wrote state dump to %s@." path)
        dump_out;
      Option.iter
        (fun path ->
          Insp.Obs_export.save path (Insp.Obs_export.chrome_trace recorder);
          Format.printf "wrote Chrome trace to %s@." path)
        trace;
      Option.iter
        (fun path ->
          Insp.Obs_export.save path (Insp.Obs_export.metrics_csv recorder);
          Format.printf "wrote metrics CSV to %s@." path)
        metrics;
      Option.iter (fun base -> write_prof base recorder) profile;
      verify_code
  in
  let term =
    Term.(
      const run $ seed $ apps $ tenants $ tenancy $ proc_budget $ card_scale
      $ resale $ reopt $ heuristic_arg $ journal_out $ dump_out $ verify
      $ trace_arg $ metrics_arg $ profile_arg)
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Run the persistent multi-tenant allocation service over a \
          deterministic stream of application arrivals and departures \
          (admission control, sell-back, per-tenant accounting).")
    term

(* ------------------------------------------------------------------ *)
(* faults                                                              *)

let print_fault_episodes (report : Insp.Fault_engine.report) =
  let table =
    Insp.Table.create ~title:"fault timeline"
      [
        ("t", Insp.Table.Right);
        ("fault", Insp.Table.Left);
        ("downtime (s)", Insp.Table.Right);
        ("realloc ($)", Insp.Table.Right);
        ("mig", Insp.Table.Right);
        ("rebuy", Insp.Table.Right);
        ("dip", Insp.Table.Right);
        ("recovery (s)", Insp.Table.Right);
      ]
  in
  List.iter
    (fun (ep : Insp.Fault_engine.episode) ->
      Insp.Table.add_row table
        [
          Printf.sprintf "%.1f" ep.Insp.Fault_engine.ep_t;
          ep.ep_label;
          Printf.sprintf "%.1f" ep.ep_downtime;
          Printf.sprintf "%.0f" ep.ep_cost;
          string_of_int ep.ep_migrations;
          string_of_int ep.ep_rebuys;
          (match ep.ep_dip with
          | Some d -> Printf.sprintf "%.0f%%" (100.0 *. d)
          | None -> "-");
          (match ep.ep_recovery with
          | Some r -> Printf.sprintf "%.1f" r
          | None -> "-");
        ])
    report.Insp.Fault_engine.episodes;
  Insp.Table.print table

let faults_cmd =
  let events =
    Arg.(
      value & opt int 10
      & info [ "events" ] ~docv:"E"
          ~doc:"Scheduled fault events in the timeline (crash bursts may \
                expand them).")
  in
  let mean_burst =
    Arg.(
      value & opt int 2
      & info [ "mean-burst" ] ~docv:"B"
          ~doc:"Mean crash-burst size (1 = independent crashes).")
  in
  let no_measure =
    Arg.(
      value & flag
      & info [ "no-measure" ]
          ~doc:"Skip the discrete-event replay of capacity faults (repair \
                accounting only).")
  in
  let max_procs =
    Arg.(
      value & opt (some int) None
      & info [ "max-procs" ] ~docv:"P"
          ~doc:"Cap on the repaired processor count — a deliberately tight \
                cap makes overloaded post-crash platforms report as \
                infeasible.")
  in
  let no_rebuy =
    Arg.(
      value & flag
      & info [ "no-rebuy" ]
          ~doc:"Migration-only repair: never buy replacement processors.")
  in
  let harden_k =
    Arg.(
      value & opt (some int) None
      & info [ "harden" ] ~docv:"K"
          ~doc:"Before the run, buy spare capacity so any K simultaneous \
                processor failures are repairable by migration alone.")
  in
  let journal_out =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Write the fault/repair decision journal (canonical JSONL).")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Replay the crash/repair timeline twice and require \
                byte-identical journals and reports.")
  in
  let run seed n alpha sizes freq events mean_burst no_measure max_procs
      no_rebuy harden_k heuristic journal_out verify trace metrics profile =
    let key = if heuristic = "all" then "sbu" else heuristic in
    match Insp.Solve.find key with
    | None ->
      prerr_endline ("unknown heuristic: " ^ key);
      exit_unknown_name
    | Some h -> (
      let inst = make_instance n alpha sizes freq seed in
      match Insp.Solve.run ~seed h inst.Insp.Instance.app inst.Insp.Instance.platform with
      | Error f ->
        prerr_endline ("initial solve failed: " ^ Insp.Solve.failure_message f);
        exit_infeasible
      | Ok o -> (
        let hardened =
          match harden_k with
          | None -> Ok None
          | Some k ->
            Result.map
              (fun hd -> Some hd)
              (Insp.Redundancy.harden ~k inst.Insp.Instance.app
                 inst.Insp.Instance.platform o.Insp.Solve.alloc)
        in
        match hardened with
        | Error msg ->
          prerr_endline ("harden failed: " ^ msg);
          exit_infeasible
        | Ok hardened ->
          let base_alloc =
            match hardened with
            | Some hd -> hd.Insp.Redundancy.alloc
            | None -> o.Insp.Solve.alloc
          in
          let timeline =
            Insp.Fault_scenario.generate
              (Insp.Fault_scenario.make ~seed ~n_events:events ~mean_burst ())
          in
          let spec =
            Insp.Fault_engine.make_spec ?max_procs
              ~allow_rebuy:(not no_rebuy) ~measure:(not no_measure)
              ~heuristic:h ()
          in
          let once () =
            let report, recorder =
              Insp.Obs.with_sink ~journal:true ~profile:(profile <> None)
                (fun () ->
                  Insp.Fault_engine.run spec inst.Insp.Instance.app
                    inst.Insp.Instance.platform base_alloc timeline)
            in
            Journal.set_manifest recorder.Insp.Obs.journal
              {
                Journal.m_seed = seed;
                m_config_hash =
                  Journal.hash_hex
                    (Format.asprintf "%a" Insp.Config.pp
                       (Insp.Config.make ~n_operators:n ~alpha ~sizes ~freq
                          ~seed ()));
                m_heuristic = key;
                m_args =
                  [
                    ("events", string_of_int events);
                    ("mean-burst", string_of_int mean_burst);
                    ("measure", string_of_bool (not no_measure));
                    ("rebuy", string_of_bool (not no_rebuy));
                    ( "max-procs",
                      match max_procs with
                      | Some p -> string_of_int p
                      | None -> "none" );
                    ( "harden",
                      match harden_k with
                      | Some k -> string_of_int k
                      | None -> "none" );
                  ];
              };
            (report, recorder)
          in
          let report, recorder = once () in
          let jsonl = Journal.to_jsonl recorder.Insp.Obs.journal in
          let rendered = Format.asprintf "%a" Insp.Fault_engine.pp_report report in
          let verify_code =
            if not verify then 0
            else begin
              let report2, recorder2 = once () in
              let jsonl2 = Journal.to_jsonl recorder2.Insp.Obs.journal in
              match Journal.diff jsonl jsonl2 with
              | Some d ->
                Format.printf "faults verify: FAILED (journal)@.";
                print_divergence d;
                exit_infeasible
              | None -> (
                match
                  Journal.diff rendered
                    (Format.asprintf "%a" Insp.Fault_engine.pp_report report2)
                with
                | Some d ->
                  Format.printf "faults verify: FAILED (report)@.";
                  print_divergence d;
                  exit_infeasible
                | None ->
                  Format.printf
                    "faults verify: OK (%d journal events, byte-identical)@."
                    (Journal.length recorder.Insp.Obs.journal);
                  0)
            end
          in
          print_fault_episodes report;
          Format.printf "%a@." Insp.Fault_engine.pp_report report;
          Option.iter
            (fun (hd : Insp.Redundancy.hardened) ->
              Format.printf
                "hardened for K=%d: %d spare(s), cost $%.0f (base $%.0f)@."
                hd.Insp.Redundancy.k hd.spares hd.cost hd.base_cost)
            hardened;
          Option.iter
            (fun path ->
              Insp.Obs_export.save path jsonl;
              Format.printf "wrote decision journal to %s (%d events)@." path
                (Journal.length recorder.Insp.Obs.journal))
            journal_out;
          Option.iter
            (fun path ->
              Insp.Obs_export.save path (Insp.Obs_export.chrome_trace recorder);
              Format.printf "wrote Chrome trace to %s@." path)
            trace;
          Option.iter
            (fun path ->
              Insp.Obs_export.save path (Insp.Obs_export.metrics_csv recorder);
              Format.printf "wrote metrics CSV to %s@." path)
            metrics;
          Option.iter (fun base -> write_prof base recorder) profile;
          if verify_code <> 0 then verify_code
          else
            match report.Insp.Fault_engine.infeasible_at with
            | Some _ -> exit_infeasible
            | None -> 0))
  in
  let term =
    Term.(
      const run $ seed $ n_operators $ alpha $ sizes $ freq $ events
      $ mean_burst $ no_measure $ max_procs $ no_rebuy $ harden_k
      $ heuristic_arg $ journal_out $ verify $ trace_arg $ metrics_arg
      $ profile_arg)
  in
  Cmd.v
    (Cmd.info "faults" ~exits
       ~doc:
         "Drive a deployed mapping through a deterministic seed-driven fault \
          timeline: crashes are repaired against residual capacity \
          (migrate/upgrade/rebuy), capacity faults are replayed in the \
          discrete-event runtime (throughput dip, recovery time) and demand \
          shifts trigger redeploys.  Exits with status 1 when the timeline \
          hits an irreparable fault.")
    term

(* ------------------------------------------------------------------ *)
(* catalog                                                             *)

let catalog_cmd =
  (* The catalog is a fixed table; --seed is accepted so every subcommand
     takes it uniformly, and ignored. *)
  let run _seed =
    Format.printf "%a@." Insp.Catalog.pp Insp.Catalog.dell_2008;
    0
  in
  Cmd.v
    (Cmd.info "catalog"
       ~doc:
         "Print the Table-1 processor purchase catalog.  $(b,--seed) is \
          accepted for interface uniformity and ignored.")
    Term.(const run $ seed)

(* ------------------------------------------------------------------ *)
(* journal dump / diff / verify, explain                               *)

let journal_dump_cmd =
  let out =
    Arg.(
      value
      & opt string "journal.jsonl"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Decision journal destination (canonical JSONL).")
  in
  let run n alpha sizes freq seed heuristic depth out trace metrics =
    match journaled_solve ~n ~alpha ~sizes ~freq ~seed ~heuristic ~depth () with
    | None ->
      prerr_endline ("unknown heuristic: " ^ heuristic);
      exit_unknown_name
    | Some (results, recorder) ->
      Insp.Obs_export.save out (Journal.to_jsonl recorder.Insp.Obs.journal);
      Format.printf "wrote decision journal to %s (%d events)@." out
        (Journal.length recorder.Insp.Obs.journal);
      Option.iter
        (fun path ->
          Insp.Obs_export.save path (Insp.Obs_export.chrome_trace recorder);
          Format.printf "wrote Chrome trace to %s@." path)
        trace;
      Option.iter
        (fun path ->
          Insp.Obs_export.save path (Insp.Obs_export.metrics_csv recorder);
          Format.printf "wrote metrics CSV to %s@." path)
        metrics;
      solve_exit_code results
  in
  let term =
    Term.(
      const run $ n_operators $ alpha $ sizes $ freq $ seed $ heuristic_arg
      $ journal_depth_arg $ out $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "dump" ~exits
       ~doc:
         "Solve an instance with decision journaling on and write the \
          canonical JSONL journal (manifest line first).")
    term

let journal_diff_cmd =
  let file_a =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"A" ~doc:"Journal A.")
  in
  let file_b =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"B" ~doc:"Journal B.")
  in
  let context =
    Arg.(
      value & opt int 3
      & info [ "context" ] ~docv:"K"
          ~doc:"Common lines printed before the divergence.")
  in
  let run a b context =
    match Journal.diff ~context (read_file a) (read_file b) with
    | None ->
      Format.printf "journals are identical@.";
      0
    | Some d ->
      print_divergence d;
      exit_infeasible
  in
  Cmd.v
    (Cmd.info "diff" ~exits
       ~doc:
         "First divergent decision event between two journal files, with \
          context — the \"why did seed 7 cost two more processors\" answer.")
    Term.(const run $ file_a $ file_b $ context)

let journal_verify_cmd =
  let run n alpha sizes freq seed heuristic depth =
    let once () =
      Option.map
        (fun (results, recorder) ->
          (results, Journal.to_jsonl recorder.Insp.Obs.journal))
        (journaled_solve ~n ~alpha ~sizes ~freq ~seed ~heuristic ~depth ())
    in
    match once () with
    | None ->
      prerr_endline ("unknown heuristic: " ^ heuristic);
      exit_unknown_name
    | Some (results, first) -> (
      match once () with
      | None -> exit_unknown_name
      | Some (_, second) -> (
        match Journal.diff first second with
        | None ->
          Format.printf "journal verify: OK (%d lines, byte-identical)@."
            (List.length (String.split_on_char '\n' first) - 1);
          solve_exit_code results
        | Some d ->
          Format.printf "journal verify: FAILED@.";
          print_divergence d;
          exit_infeasible))
  in
  let term =
    Term.(
      const run $ n_operators $ alpha $ sizes $ freq $ seed $ heuristic_arg
      $ journal_depth_arg)
  in
  Cmd.v
    (Cmd.info "verify" ~exits
       ~doc:
         "Run the scenario twice and require byte-identical journals — a \
          determinism gate over every recorded allocation decision.")
    term

let journal_cmd =
  Cmd.group
    (Cmd.info "journal" ~exits
       ~doc:"Deterministic decision journal: dump, diff, verify.")
    [ journal_dump_cmd; journal_diff_cmd; journal_verify_cmd ]

let explain_cmd =
  let proc =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"PROC" ~doc:"Final processor index to explain.")
  in
  let run n alpha sizes freq seed heuristic depth proc =
    (* "all" would interleave six pipelines; explain one heuristic's
       choice — default to the paper's best performer. *)
    let heuristic = if heuristic = "all" then "sbu" else heuristic in
    match journaled_solve ~n ~alpha ~sizes ~freq ~seed ~heuristic ~depth () with
    | None ->
      prerr_endline ("unknown heuristic: " ^ heuristic);
      exit_unknown_name
    | Some (_, recorder) -> (
      let events = Journal.events recorder.Insp.Obs.journal in
      match Journal.explain ~proc events with
      | [] ->
        Format.printf
          "no decision chain for processor %d (infeasible run or index out \
           of range)@."
          proc;
        exit_infeasible
      | chain ->
        List.iter
          (fun ev -> print_endline (Journal.event_to_json ev))
          chain;
        0)
  in
  let term =
    Term.(
      const run $ n_operators $ alpha $ sizes $ freq $ seed $ heuristic_arg
      $ journal_depth_arg $ proc)
  in
  Cmd.v
    (Cmd.info "explain" ~exits
       ~doc:
         "Filter the decision journal to the chain of decisions that led to \
          one purchased processor (its group's probes, merges, downloads and \
          downgrades).")
    term

let main =
  let doc = "resource allocation for constructive in-network stream processing" in
  let info = Cmd.info "insp" ~version:Insp.version ~doc in
  Cmd.group info
    [
      solve_cmd; simulate_cmd; sweep_cmd; exact_cmd; multi_cmd; rewrite_cmd;
      serve_cmd; faults_cmd; catalog_cmd; journal_cmd; explain_cmd;
    ]

let () = exit (Cmd.eval' main)

(* CLI for the project linter (DESIGN.md §9 and, for the deep pass, §14).

     insp_lint [--format text|csv|json] [--baseline FILE] [--update-baseline]
               [--quick] [--deep] [--cmt-root DIR] [--allow-stale]
               [DIR|FILE ...]

   Exit 0: clean (possibly via baseline); 1: new findings; 2: errors
   (including missing or stale typedtrees with --deep). *)

module Driver = Insp_lint.Driver
module Rule = Insp_lint.Rule

let usage =
  "insp_lint — determinism & float-hygiene analyzer for this repo\n\
   usage: insp_lint [options] [dir|file ...]   (default: lib bin bench test)\n\n\
   Rules:\n"
  ^ String.concat "\n"
      (List.map
         (fun r -> Printf.sprintf "  %s  %s" (Rule.id r) (Rule.synopsis r))
         Rule.all)
  ^ "\n\n\
     The T rules need typedtrees: build with `dune build @check` (or\n\
     `make lint-deep`) and pass --deep.\n\n\
     Options:"

(* Files touched per git, for --quick: one `git status --porcelain`
   covers staged edits, unstaged edits and untracked files (including
   whole untracked directories) in a single parseable form. *)
let changed_files () =
  let ic = Unix.open_process_in "git status --porcelain 2>/dev/null" in
  let rec go acc =
    match In_channel.input_line ic with
    | Some l -> go (l :: acc)
    | None -> acc
  in
  let lines = go [] in
  ignore (Unix.close_process_in ic);
  Driver.paths_of_porcelain (List.rev lines)

let () =
  let format = ref Driver.Text in
  let baseline = ref None in
  let update = ref false in
  let quick = ref false in
  let deep = ref false in
  let cmt_root = ref "_build/default" in
  let allow_stale = ref false in
  let roots = ref [] in
  let specs =
    [
      ( "--format",
        Arg.Symbol
          ( [ "text"; "csv"; "json" ],
            fun s ->
              format :=
                match s with
                | "csv" -> Driver.Csv
                | "json" -> Driver.Json
                | _ -> Driver.Text ),
        " report format (default text; json = one canonical object/line)" );
      ( "--baseline",
        Arg.String (fun s -> baseline := Some s),
        "FILE grandfathered findings; only new ones fail the run" );
      ( "--update-baseline",
        Arg.Set update,
        " rewrite the baseline file with the current findings" );
      ( "--quick",
        Arg.Set quick,
        " only lint files changed per git status --porcelain" );
      ( "--deep",
        Arg.Set deep,
        " add the whole-program T1-T3 pass over .cmt typedtrees" );
      ( "--cmt-root",
        Arg.Set_string cmt_root,
        "DIR where to find .cmt files (default _build/default)" );
      ( "--allow-stale",
        Arg.Set allow_stale,
        " tolerate sources newer than their .cmt (else exit 2)" );
    ]
  in
  Arg.parse specs (fun d -> roots := d :: !roots) usage;
  let roots =
    match List.rev !roots with
    | [] -> [ "lib"; "bin"; "bench"; "test" ]
    | rs -> rs
  in
  let only = if !quick then Some (changed_files ()) else None in
  exit
    (Driver.run
       {
         Driver.format = !format;
         baseline = !baseline;
         update_baseline = !update;
         roots;
         only;
         deep = !deep;
         cmt_root = !cmt_root;
         allow_stale = !allow_stale;
       })

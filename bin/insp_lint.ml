(* CLI for the project linter (DESIGN.md §9).

     insp_lint [--format text|csv] [--baseline FILE] [--update-baseline]
               [--quick] [DIR|FILE ...]

   Exit 0: clean (possibly via baseline); 1: new findings; 2: errors. *)

module Driver = Insp_lint.Driver
module Rule = Insp_lint.Rule

let usage =
  "insp_lint — determinism & float-hygiene analyzer for this repo\n\
   usage: insp_lint [options] [dir|file ...]   (default: lib bin bench test)\n\n\
   Rules:\n"
  ^ String.concat "\n"
      (List.map
         (fun r -> Printf.sprintf "  %s  %s" (Rule.id r) (Rule.synopsis r))
         Rule.all)
  ^ "\n\nOptions:"

(* Files touched per git, for --quick.  Diff against HEAD so staged and
   unstaged edits are both covered; untracked files are picked up too. *)
let changed_files () =
  let read cmd =
    let ic = Unix.open_process_in cmd in
    let rec go acc =
      match In_channel.input_line ic with
      | Some l when String.trim l <> "" -> go (String.trim l :: acc)
      | Some _ -> go acc
      | None -> acc
    in
    let lines = go [] in
    ignore (Unix.close_process_in ic);
    List.rev lines
  in
  read "git diff --name-only HEAD 2>/dev/null"
  @ read "git ls-files --others --exclude-standard 2>/dev/null"
  |> List.map Driver.normalize
  |> List.sort_uniq String.compare

let () =
  let format = ref Driver.Text in
  let baseline = ref None in
  let update = ref false in
  let quick = ref false in
  let roots = ref [] in
  let specs =
    [
      ( "--format",
        Arg.Symbol
          ( [ "text"; "csv" ],
            fun s -> format := if s = "csv" then Driver.Csv else Driver.Text ),
        " report format (default text)" );
      ( "--baseline",
        Arg.String (fun s -> baseline := Some s),
        "FILE grandfathered findings; only new ones fail the run" );
      ( "--update-baseline",
        Arg.Set update,
        " rewrite the baseline file with the current findings" );
      ( "--quick",
        Arg.Set quick,
        " only lint files changed per git diff --name-only" );
    ]
  in
  Arg.parse specs (fun d -> roots := d :: !roots) usage;
  let roots =
    match List.rev !roots with
    | [] -> [ "lib"; "bin"; "bench"; "test" ]
    | rs -> rs
  in
  let only = if !quick then Some (changed_files ()) else None in
  exit
    (Driver.run
       {
         Driver.format = !format;
         baseline = !baseline;
         update_baseline = !update;
         roots;
         only;
       })

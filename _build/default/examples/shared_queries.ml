(* Multiple concurrent continuous queries (paper §6, future work):
   several dashboards watch the same sensor deployment and share
   sub-expressions; evaluating the shared parts once and reusing them
   lowers the platform bill.

     dune exec examples/shared_queries.exe *)

let () =
  (* Three correlated 25-operator queries over the paper platform. *)
  let apps, platform =
    Insp.Multi_workload.instance ~seed:11 ~n_apps:3 ~n_operators:25
  in

  (* How much is sharable? *)
  let savings = Insp.Cse.savings apps in
  Format.printf "sharable structure:@.%a@.@." Insp.Cse.pp_savings savings;

  (* Provision without sharing: each tree keeps its own operators. *)
  let unshared = Insp.Dag.of_apps apps in
  (* ...and with hash-consed common sub-expressions. *)
  let shared = Insp.Cse.share_apps apps in
  Format.printf "DAG nodes: %d unshared vs %d shared@.@."
    (Insp.Dag.n_nodes unshared) (Insp.Dag.n_nodes shared);

  let provision name dag =
    match Insp.Dag_place.run dag platform with
    | Ok o ->
      Format.printf "%-12s $%-8.0f (%d processors)@." name o.cost o.n_procs;
      Some o.cost
    | Error f ->
      Format.printf "%-12s %s@." name (Insp.Dag_place.failure_message f);
      None
  in
  let a = provision "no sharing" unshared in
  let b = provision "CSE sharing" shared in
  match (a, b) with
  | Some a, Some b ->
    Format.printf "@.sharing saves $%.0f (%.1f%%) on the platform bill@."
      (a -. b)
      (100.0 *. (a -. b) /. a)
  | _ -> ()

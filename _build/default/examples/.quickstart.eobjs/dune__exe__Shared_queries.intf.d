examples/shared_queries.mli:

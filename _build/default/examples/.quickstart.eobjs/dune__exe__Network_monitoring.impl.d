examples/network_monitoring.ml: Array Format Insp List

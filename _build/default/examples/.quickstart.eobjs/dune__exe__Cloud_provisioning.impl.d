examples/cloud_provisioning.ml: Insp List Option Printf

examples/query_rewriting.mli:

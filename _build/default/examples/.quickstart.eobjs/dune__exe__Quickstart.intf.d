examples/quickstart.mli:

examples/cloud_provisioning.mli:

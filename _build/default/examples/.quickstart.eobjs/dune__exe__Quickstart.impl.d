examples/quickstart.ml: Format Insp List

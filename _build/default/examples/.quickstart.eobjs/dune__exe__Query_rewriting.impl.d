examples/query_rewriting.ml: Format Insp Option

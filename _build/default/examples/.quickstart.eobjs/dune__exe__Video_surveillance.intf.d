examples/video_surveillance.mli:

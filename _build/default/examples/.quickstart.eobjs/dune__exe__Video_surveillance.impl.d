examples/video_surveillance.ml: Array Format Insp Option

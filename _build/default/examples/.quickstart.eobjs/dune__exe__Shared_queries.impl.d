examples/shared_queries.ml: Format Insp

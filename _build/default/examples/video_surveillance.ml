(* Video surveillance (paper §1): cameras spread over a site produce
   frame streams; the application detects motion per camera, checks
   lighting conditions, and correlates neighbouring zones, producing one
   site-wide alert stream.

   We build the operator tree BY HAND (not randomly) to show the
   application-model API, place the cameras' streams on edge recording
   servers, and let the toolkit provision the processing cluster.

     dune exec examples/video_surveillance.exe *)

let () =
  (* Eight cameras; frames are ~12-25 MB and refresh every 2 s. *)
  let camera_sizes = [| 25.0; 18.0; 22.0; 12.0; 16.0; 24.0; 14.0; 20.0 |] in
  let objects = Insp.Objects.uniform_freq ~sizes:camera_sizes ~freq:0.5 in

  (* Operator tree, bottom-up:
       motion_i    = motion detection on cameras 2i and 2i+1
       lighting_01 = lighting analysis across zones 0-1 (needs raw cam 0)
       zone_a      = correlate motion_0 with motion_1
       zone_b      = correlate motion_2 with motion_3
       alert       = site-wide correlation of both zones.               *)
  let open Insp.Optree in
  let motion a b = Op (Obj a, Obj b) in
  let spec =
    Op
      ( Op (motion 0 1, motion 2 3) (* zone A *),
        Op (motion 4 5, motion 6 7) (* zone B *) )
  in
  let tree = of_spec ~n_object_types:8 spec in
  let app =
    Insp.App.make ~rho:1.0 ~base_work:8000.0 ~work_factor:0.19 ~tree ~objects
      ~alpha:1.1 ()
  in
  Format.printf "operator tree:@.%a@." Insp.Optree.pp tree;

  (* Two recording servers at the site, each holding half the cameras
     (camera k on server k mod 2), 10 GB/s cards. *)
  let holds =
    Array.init 2 (fun l -> Array.init 8 (fun k -> k mod 2 = l))
  in
  let servers = Insp.Servers.make ~cards:(Array.make 2 10000.0) ~holds in
  let platform =
    Insp.Platform.make ~catalog:Insp.Catalog.dell_2008 ~servers ()
  in

  (* Provision with the paper's best heuristic. *)
  let sbu = Option.get (Insp.Solve.find "sbu") in
  match Insp.Solve.run sbu app platform with
  | Error f -> failwith (Insp.Solve.failure_message f)
  | Ok o ->
    Format.printf "@.provisioned %d processors for $%.0f:@.%a@." o.n_procs
      o.cost Insp.Alloc.pp o.alloc;
    let report = Insp.Runtime.run app platform o.alloc in
    Format.printf "@.%a@." Insp.Runtime.pp_report report;
    Format.printf "alert stream sustained at %.2f results/s (target %.1f)@."
      report.achieved_throughput report.target_throughput

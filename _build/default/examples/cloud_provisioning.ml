(* Cloud provisioning what-if analysis (paper §1: "computing and network
   units are rented by a cloud provider"): for one fixed application,
   how does the platform bill react to the required result rate (rho)
   and to the data refresh frequency?

   Shows the downgrade step at work: lighter QoS lets the same operator
   placement run on cheaper CPU and NIC models.

     dune exec examples/cloud_provisioning.exe *)

let provision app platform =
  let sbu = Option.get (Insp.Solve.find "sbu") in
  Insp.Solve.run sbu app platform

let () =
  let config = Insp.Config.make ~n_operators:50 ~alpha:1.2 ~seed:21 () in
  let base = Insp.Instance.generate config in
  let tree = Insp.App.tree base.Insp.Instance.app in
  let objects = Insp.App.objects base.Insp.Instance.app in
  let platform = base.Insp.Instance.platform in

  (* --- sweep the required throughput --- *)
  let table =
    Insp.Table.create ~title:"platform bill vs required result rate"
      [
        ("rho (results/s)", Insp.Table.Right);
        ("processors", Insp.Table.Right);
        ("bill ($)", Insp.Table.Right);
        ("$ per result/s", Insp.Table.Right);
      ]
  in
  List.iter
    (fun rho ->
      let app =
        Insp.App.make ~rho ~base_work:8000.0 ~work_factor:0.19 ~tree ~objects
          ~alpha:1.2 ()
      in
      match provision app platform with
      | Ok o ->
        Insp.Table.add_row table
          [
            Printf.sprintf "%.2f" rho;
            string_of_int o.n_procs;
            Printf.sprintf "%.0f" o.cost;
            Printf.sprintf "%.0f" (o.cost /. rho);
          ]
      | Error _ ->
        Insp.Table.add_row table
          [ Printf.sprintf "%.2f" rho; "-"; "-"; "unachievable" ])
    [ 0.25; 0.5; 1.0; 1.5; 2.0; 3.0 ];
  Insp.Table.print table;

  (* --- sweep the refresh frequency at rho = 1 --- *)
  let table =
    Insp.Table.create
      ~title:"platform bill vs data refresh period (same application)"
      [
        ("refresh period (s)", Insp.Table.Right);
        ("processors", Insp.Table.Right);
        ("bill ($)", Insp.Table.Right);
      ]
  in
  List.iter
    (fun period ->
      let inst = Insp.Instance.with_frequency base (1.0 /. period) in
      match provision inst.Insp.Instance.app inst.Insp.Instance.platform with
      | Ok o ->
        Insp.Table.add_row table
          [
            Printf.sprintf "%.0f" period;
            string_of_int o.n_procs;
            Printf.sprintf "%.0f" o.cost;
          ]
      | Error _ ->
        Insp.Table.add_row table [ Printf.sprintf "%.0f" period; "-"; "-" ])
    [ 2.0; 5.0; 10.0; 20.0; 50.0 ];
  Insp.Table.print table

(* Mutable applications (paper §6, future work): the same continuous
   query can be evaluated under many operator-tree shapes (operators are
   associative and commutative); shapes differ in intermediate result
   sizes and therefore in platform cost.

   This example takes a pathological left-deep chain (the classic shape
   of naive query plans, paper Fig. 1(b)), provisions it, and then lets
   the rewriter search for a cheaper equivalent shape.

     dune exec examples/query_rewriting.exe *)

let () =
  let inst =
    Insp.Instance.generate
      (Insp.Config.make ~n_operators:16 ~alpha:1.5 ~seed:13 ())
  in
  let platform = inst.Insp.Instance.platform in
  let objects = Insp.App.objects inst.Insp.Instance.app in
  let alpha = Insp.App.alpha inst.Insp.Instance.app in
  let sbu = Option.get (Insp.Solve.find "sbu") in

  let evaluate tree =
    let app =
      Insp.App.make ~base_work:8000.0 ~work_factor:0.19 ~tree ~objects ~alpha
        ()
    in
    match Insp.Solve.run sbu app platform with
    | Ok o -> Some o.Insp.Solve.cost
    | Error _ -> None
  in
  let show name tree =
    match evaluate tree with
    | Some c ->
      Format.printf "%-12s height %-2d  $%.0f@." name (Insp.Optree.height tree)
        c;
      c
    | None ->
      Format.printf "%-12s height %-2d  infeasible@." name
        (Insp.Optree.height tree);
      infinity
  in

  (* The query as a worst-case left-deep chain over the same leaves. *)
  let chain = Insp.Rewrite.left_deep_of (Insp.App.tree inst.Insp.Instance.app) in
  let worst = show "left-deep" chain in
  ignore (show "balanced" (Insp.Rewrite.balanced_of chain));

  (* Hill-climb from the chain using associativity rotations. *)
  let best_tree, best_cost =
    Insp.Rewrite.optimize (Insp.Prng.create 1) ~evaluate ~restarts:3 chain
  in
  (match best_cost with
  | Some c ->
    Format.printf "%-12s height %-2d  $%.0f@." "optimized"
      (Insp.Optree.height best_tree) c;
    Format.printf "@.rewriting recovered $%.0f (%.1f%%)@." (worst -. c)
      (100.0 *. (worst -. c) /. worst)
  | None -> Format.printf "no feasible shape found@.");
  Format.printf "@.optimized shape:@.%a@." Insp.Optree.pp best_tree

(* Network monitoring (paper §1): routers export flow summaries; a
   continuous query joins them against a slowly-changing prefix table —
   a classic LEFT-DEEP join tree, the shape the paper's NP-hardness
   proof uses.  We compare all heuristics against the exact
   branch-and-bound optimum on a homogeneous platform (the paper's §5
   CPLEX comparison, at example scale).

     dune exec examples/network_monitoring.exe *)

let () =
  (* Object types: 0 = prefix table (reused by every join stage),
     1..6 = per-router flow summaries. *)
  let sizes = [| 8.0; 20.0; 24.0; 18.0; 26.0; 15.0; 22.0 |] in
  let objects = Insp.Objects.uniform_freq ~sizes ~freq:0.5 in

  (* Left-deep join chain: each stage joins the running result with one
     router stream; the prefix table (object 0) is consulted by three of
     the stages, so its placement is shared work. *)
  let leaf_objects = [| 0; 1; 2; 0; 3; 0; 4 |] in
  let tree = Insp.Optree.left_deep ~n_operators:6 ~objects:leaf_objects in
  let app =
    Insp.App.make ~rho:1.0 ~base_work:8000.0 ~work_factor:0.19 ~tree ~objects
      ~alpha:0.9 ()
  in
  Format.printf "left-deep continuous query:@.%a@." Insp.Optree.pp tree;
  Format.printf "prefix table popularity: %d operators use it@.@."
    (Insp.Optree.object_popularity tree).(0);

  (* Homogeneous platform: one processor model (CONSTR-HOM), three
     collectors each exporting a subset of the streams. *)
  let holds =
    [|
      (* collector 0: prefix table + routers 1-2 *)
      [| true; true; true; false; false; false; false |];
      (* collector 1: routers 3-4 *)
      [| false; false; false; true; true; false; false |];
      (* collector 2: prefix table + routers 5-6 *)
      [| true; false; false; false; false; true; true |];
    |]
  in
  let servers = Insp.Servers.make ~cards:(Array.make 3 10000.0) ~holds in
  let catalog =
    Insp.Catalog.homogeneous Insp.Catalog.dell_2008 ~cpu_index:4 ~nic_index:3
  in
  let platform = Insp.Platform.make ~catalog ~servers () in

  (* Exact optimum (the role CPLEX plays in the paper). *)
  (match Insp.Exact.solve app platform with
  | Ok r ->
    Format.printf "exact optimum: %d processors ($%.0f), %s@."
      r.Insp.Exact.n_procs r.cost
      (if r.proven then "proven optimal" else "search truncated")
  | Error e -> Format.printf "exact solver: %s@." e);

  (* Heuristics. *)
  List.iter
    (fun ((h : Insp.Solve.heuristic), result) ->
      match result with
      | Ok (o : Insp.Solve.outcome) ->
        Format.printf "%-20s %d processors ($%.0f)@." h.name o.n_procs o.cost
      | Error f ->
        Format.printf "%-20s %s@." h.name (Insp.Solve.failure_message f))
    (Insp.Solve.run_all ~seed:3 app platform)

(* Quickstart: generate a random instance following the paper's
   methodology, run all six placement heuristics, validate the best
   mapping and execute it in the discrete-event runtime.

     dune exec examples/quickstart.exe *)

let () =
  (* A 40-operator application, computation factor 0.9, small objects
     refreshed every 2 s, on the paper's 6-server platform. *)
  let config = Insp.Config.make ~n_operators:40 ~alpha:0.9 ~seed:7 () in
  let inst = Insp.Instance.generate config in
  Format.printf "instance:@.%a@.@." Insp.Instance.pp inst;

  (* Run every heuristic from the paper. *)
  List.iter
    (fun ((h : Insp.Solve.heuristic), result) ->
      match result with
      | Ok (o : Insp.Solve.outcome) ->
        Format.printf "%-20s $%-8.0f (%d processors)@." h.name o.cost o.n_procs
      | Error f ->
        Format.printf "%-20s %s@." h.name (Insp.Solve.failure_message f))
    (Insp.Solve.run_all ~seed:7 inst.Insp.Instance.app
       inst.Insp.Instance.platform);

  (* Pick the cheapest feasible mapping. *)
  match Insp.solve ~seed:7 inst with
  | Error f -> failwith (Insp.Solve.failure_message f)
  | Ok best ->
    Format.printf "@.best mapping ($%.0f):@.%a@." best.Insp.Solve.cost
      Insp.Alloc.pp best.Insp.Solve.alloc;

    (* The checker proves the mapping satisfies constraints (1)-(5)... *)
    let violations =
      Insp.Check.check inst.Insp.Instance.app inst.Insp.Instance.platform
        best.Insp.Solve.alloc
    in
    Format.printf "checker: %s@." (Insp.Check.explain violations);

    (* ...and the simulator shows it actually sustains the target
       throughput. *)
    let report = Insp.simulate inst best.Insp.Solve.alloc in
    Format.printf "@.%a@." Insp.Runtime.pp_report report;
    Format.printf "sustains rho = %.1f results/s: %b@."
      report.Insp.Runtime.target_throughput
      (Insp.Runtime.sustains_target report)

(* Tests for the multi-application extension: DAG model, common-
   subexpression sharing, DAG constraint checking and DAG placement. *)

module Dag = Insp.Dag
module Cse = Insp.Cse
module Dag_check = Insp.Dag_check
module Dag_place = Insp.Dag_place
module MW = Insp.Multi_workload
module Optree = Insp.Optree
module Objects = Insp.Objects
module App = Insp.App
module Alloc = Insp.Alloc
module Check = Insp.Check
module Prng = Insp.Prng

let qtest = Helpers.qtest

let objects3 () =
  Objects.uniform_freq ~sizes:[| 10.0; 20.0; 40.0 |] ~freq:0.5

(* ------------------------------------------------------------------ *)
(* Dag construction                                                    *)

let test_builder_basic () =
  let b = Dag.create_builder ~n_object_types:3 in
  let a = Dag.add_node b ~inputs:[ Dag.Object 0; Dag.Object 1 ] in
  let c = Dag.add_node b ~inputs:[ Dag.Node a; Dag.Object 2 ] in
  let dag =
    Dag.finish b ~objects:(objects3 ()) ~alpha:1.0
      ~roots:[ (c, 2.0); (a, 0.5) ]
      ()
  in
  Alcotest.(check int) "2 nodes" 2 (Dag.n_nodes dag);
  (* a output = 30; c input = 30 + 40 *)
  Helpers.alco_float "a output" 30.0 (Dag.node dag a).Dag.output;
  Helpers.alco_float "c work (alpha=1)" 70.0 (Dag.node dag c).Dag.work;
  (* a feeds c (rate 2.0) and a sink at 0.5 -> max 2.0 *)
  Helpers.alco_float "a rate is max of consumers" 2.0 (Dag.node dag a).Dag.rate;
  Alcotest.(check (list int)) "consumers of a" [ c ] (Dag.consumers dag a);
  Alcotest.(check bool) "validates" true (Dag.validate dag = Ok ());
  Alcotest.(check bool) "a is al" true (Dag.is_al_node dag a);
  Alcotest.(check (list int)) "o2 users" [ c ] (Dag.object_users dag 2)

let test_builder_validation () =
  let b = Dag.create_builder ~n_object_types:1 in
  Alcotest.check_raises "dangling input"
    (Invalid_argument "Dag.add_node: dangling node") (fun () ->
      ignore (Dag.add_node b ~inputs:[ Dag.Node 5 ]));
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Dag.add_node: arity must be 1-2") (fun () ->
      ignore (Dag.add_node b ~inputs:[]));
  let a = Dag.add_node b ~inputs:[ Dag.Object 0 ] in
  let _c = Dag.add_node b ~inputs:[ Dag.Node a ] in
  (* node a feeds c, but c feeds nothing and is not a root *)
  Alcotest.check_raises "unconsumed node"
    (Invalid_argument "Dag.finish: node 1 feeds nothing") (fun () ->
      ignore
        (Dag.finish b ~objects:(objects3 ()) ~alpha:1.0 ~roots:[ (a, 1.0) ] ()))

let test_of_apps () =
  let app = Helpers.tiny_app () in
  let dag = Dag.of_apps [ app; app ] in
  Alcotest.(check int) "nodes duplicated" 8 (Dag.n_nodes dag);
  Alcotest.(check int) "two roots" 2 (List.length (Dag.roots dag));
  Alcotest.(check bool) "validates" true (Dag.validate dag = Ok ());
  (* work/output copied from the tree model *)
  let (r0, rho0) = List.hd (Dag.roots dag) in
  Helpers.alco_float "rho" (App.rho app) rho0;
  Helpers.alco_float "root output" 80.0 (Dag.node dag r0).Dag.output

(* ------------------------------------------------------------------ *)
(* CSE                                                                 *)

let test_cse_identical_apps_collapse () =
  let app = Helpers.tiny_app () in
  let dag = Cse.share_apps [ app; app; app ] in
  (* Identical trees share every node. *)
  Alcotest.(check int) "fully shared" (App.n_operators app) (Dag.n_nodes dag);
  Alcotest.(check int) "three sinks" 3 (List.length (Dag.roots dag));
  Alcotest.(check bool) "validates" true (Dag.validate dag = Ok ())

let test_cse_commutative () =
  (* (o0 + o1) and (o1 + o0) are the same computation. *)
  let t1 = Optree.of_spec ~n_object_types:2 (Optree.Op (Optree.Obj 0, Optree.Obj 1)) in
  let t2 = Optree.of_spec ~n_object_types:2 (Optree.Op (Optree.Obj 1, Optree.Obj 0)) in
  let objects = Objects.uniform_freq ~sizes:[| 5.0; 6.0 |] ~freq:0.5 in
  let dag =
    Cse.share ~objects ~alpha:1.0 ~trees:[ (t1, 1.0); (t2, 2.0) ] ()
  in
  Alcotest.(check int) "one shared node" 1 (Dag.n_nodes dag);
  (* the shared node must run at the faster consumer's rate *)
  Helpers.alco_float "max rate" 2.0 (Dag.node dag 0).Dag.rate

let test_cse_distinct_stay_distinct () =
  let t1 = Optree.of_spec ~n_object_types:2 (Optree.Op (Optree.Obj 0, Optree.Obj 0)) in
  let t2 = Optree.of_spec ~n_object_types:2 (Optree.Op (Optree.Obj 1, Optree.Obj 1)) in
  let objects = Objects.uniform_freq ~sizes:[| 5.0; 6.0 |] ~freq:0.5 in
  let dag = Cse.share ~objects ~alpha:1.0 ~trees:[ (t1, 1.0); (t2, 1.0) ] () in
  Alcotest.(check int) "two nodes" 2 (Dag.n_nodes dag)

let cse_never_grows =
  qtest ~count:50 "sharing never increases nodes, work or downloads"
    QCheck.(pair (int_range 0 500) (int_range 1 4))
    (fun (seed, n_apps) ->
      let apps, _ = MW.instance ~seed ~n_apps ~n_operators:20 in
      let s = Cse.savings apps in
      s.Cse.shared_nodes <= s.Cse.unshared_nodes
      && s.Cse.shared_work <= s.Cse.unshared_work +. 1e-6
      && s.Cse.shared_downloads <= s.Cse.unshared_downloads +. 1e-6)

let cse_preserves_roots =
  qtest ~count:50 "shared DAG keeps one sink per application"
    QCheck.(pair (int_range 0 500) (int_range 1 4))
    (fun (seed, n_apps) ->
      let apps, _ = MW.instance ~seed ~n_apps ~n_operators:15 in
      let dag = Cse.share_apps apps in
      Dag.validate dag = Ok ()
      && List.length (Dag.roots dag) = n_apps)

(* ------------------------------------------------------------------ *)
(* Dag_check                                                           *)

let two_proc_dag () =
  (* a (objects) on P0; b consuming a twice... single consumer here:
     a -> b, b is root. *)
  let b = Dag.create_builder ~n_object_types:3 in
  let a = Dag.add_node b ~inputs:[ Dag.Object 0; Dag.Object 1 ] in
  let c = Dag.add_node b ~inputs:[ Dag.Node a; Dag.Object 2 ] in
  let dag = Dag.finish b ~objects:(objects3 ()) ~alpha:1.0 ~roots:[ (c, 1.0) ] () in
  (dag, a, c)

let cfg ?(cpu = 4) ?(nic = 4) () =
  let c = Insp.Catalog.dell_2008 in
  { Insp.Catalog.cpu = (Insp.Catalog.cpus c).(cpu); nic = (Insp.Catalog.nics c).(nic) }

let test_dag_check_feasible () =
  let dag, a, c = two_proc_dag () in
  let platform = Helpers.tiny_platform () in
  let alloc =
    Alloc.make
      [|
        { Alloc.config = cfg (); operators = [ a ]; downloads = [ (0, 0); (1, 0) ] };
        { Alloc.config = cfg (); operators = [ c ]; downloads = [ (2, 1) ] };
      |]
  in
  Alcotest.(check string) "feasible" "feasible"
    (Check.explain (Dag_check.check dag platform alloc));
  (* a's output (30 MB at rate 1) crosses the pair link *)
  Helpers.alco_float "pair flow" 30.0 (Dag_check.pair_flow dag alloc 0 1)

let test_dag_check_stream_dedup () =
  (* Node a consumed by two nodes on the SAME remote processor: one
     stream, not two. *)
  let b = Dag.create_builder ~n_object_types:3 in
  let a = Dag.add_node b ~inputs:[ Dag.Object 0; Dag.Object 1 ] in
  let c1 = Dag.add_node b ~inputs:[ Dag.Node a; Dag.Object 2 ] in
  let c2 = Dag.add_node b ~inputs:[ Dag.Node a ] in
  let dag =
    Dag.finish b ~objects:(objects3 ()) ~alpha:1.0
      ~roots:[ (c1, 1.0); (c2, 2.0) ]
      ()
  in
  let platform = Helpers.tiny_platform () in
  let alloc =
    Alloc.make
      [|
        { Alloc.config = cfg (); operators = [ a ]; downloads = [ (0, 0); (1, 0) ] };
        { Alloc.config = cfg (); operators = [ c1; c2 ]; downloads = [ (2, 1) ] };
      |]
  in
  Alcotest.(check string) "feasible" "feasible"
    (Check.explain (Dag_check.check dag platform alloc));
  (* one stream at the fastest consuming rate: 30 MB * max(1,2) = 60 *)
  Helpers.alco_float "dedup at max rate" 60.0 (Dag_check.pair_flow dag alloc 0 1);
  let d = Dag_check.proc_demand dag alloc 0 in
  Helpers.alco_float "comm_out deduped" 60.0 d.Dag_check.comm_out;
  (* conservative group demand counts both consumers *)
  let g = Dag_check.group_demand dag [ a ] in
  Helpers.alco_float "conservative comm_out" 90.0 g.Dag_check.comm_out

let test_dag_check_rate_weighted_compute () =
  let dag, a, c = two_proc_dag () in
  ignore c;
  let platform = Helpers.tiny_platform () in
  (* put everything on one tiny CPU and scale rates via a faster root *)
  let alloc =
    Alloc.make
      [|
        {
          Alloc.config = cfg ~cpu:0 ();
          operators = [ 0; 1 ];
          downloads = [ (0, 0); (1, 0); (2, 1) ];
        };
      |]
  in
  ignore a;
  let d = Dag_check.proc_demand dag alloc 0 in
  (* w_a = 30, w_c = 70, rates 1 -> 100 Mops/s *)
  Helpers.alco_float "compute" 100.0 d.Dag_check.compute;
  Alcotest.(check string) "fits cheapest" "feasible"
    (Check.explain (Dag_check.check dag platform alloc))

(* ------------------------------------------------------------------ *)
(* Dag_place                                                           *)

let place_outcomes_feasible =
  qtest ~count:40 "DAG placement outcomes pass the DAG checker"
    QCheck.(triple (int_range 0 500) (int_range 1 4) (int_range 5 25))
    (fun (seed, n_apps, n) ->
      let apps, platform = MW.instance ~seed ~n_apps ~n_operators:n in
      List.for_all
        (fun dag ->
          match Dag_place.run dag platform with
          | Ok o -> Dag_check.check dag platform o.Dag_place.alloc = []
          | Error _ -> true)
        [ Dag.of_apps apps; Cse.share_apps apps ])

let sharing_never_costs_more_often =
  qtest ~count:30 "sharing is not systematically worse"
    QCheck.(int_range 0 300)
    (fun seed ->
      let apps, platform = MW.instance ~seed ~n_apps:3 ~n_operators:20 in
      match
        ( Dag_place.run (Dag.of_apps apps) platform,
          Dag_place.run (Cse.share_apps apps) platform )
      with
      | Ok unshared, Ok shared ->
        (* Allow heuristic noise of one chassis. *)
        shared.Dag_place.cost
        <= unshared.Dag_place.cost +. 8000.0
      | _ -> true)

let test_single_app_dag_close_to_tree_sbu () =
  (* On a single application the DAG placer and the tree SBU should give
     costs in the same ballpark (identical model). *)
  let inst = Helpers.instance ~n:25 ~seed:4 () in
  let app = inst.Insp.Instance.app in
  let platform = inst.Insp.Instance.platform in
  let dag = Dag.of_apps [ app ] in
  let tree_cost =
    match
      Insp.Solve.run ~seed:4
        (Option.get (Insp.Solve.find "sbu"))
        app platform
    with
    | Ok o -> o.Insp.Solve.cost
    | Error f -> Alcotest.fail (Insp.Solve.failure_message f)
  in
  match Dag_place.run dag platform with
  | Error f -> Alcotest.fail (Dag_place.failure_message f)
  | Ok o ->
    let ratio = o.Dag_place.cost /. tree_cost in
    Alcotest.(check bool)
      (Printf.sprintf "within 2x (ratio %.2f)" ratio)
      true
      (ratio > 0.5 && ratio < 2.0)

(* ------------------------------------------------------------------ *)
(* Dag_runtime                                                         *)

let test_dag_runtime_rejects_mixed_rates () =
  let b = Dag.create_builder ~n_object_types:3 in
  let a = Dag.add_node b ~inputs:[ Dag.Object 0; Dag.Object 1 ] in
  let c = Dag.add_node b ~inputs:[ Dag.Node a; Dag.Object 2 ] in
  let dag =
    Dag.finish b ~objects:(objects3 ()) ~alpha:1.0
      ~roots:[ (c, 1.0); (a, 2.0) ]
      ()
  in
  let platform = Helpers.tiny_platform () in
  match Insp.Dag_place.run dag platform with
  | Error f -> Alcotest.fail (Insp.Dag_place.failure_message f)
  | Ok o ->
    Alcotest.check_raises "mixed rates rejected"
      (Invalid_argument "Dag_runtime.run: mixed node rates are not supported")
      (fun () ->
        ignore (Insp.Dag_runtime.run dag platform o.Insp.Dag_place.alloc))

let dag_mappings_sustain_in_execution =
  qtest ~count:12 "feasible DAG mappings sustain every application's rho"
    QCheck.(pair (int_range 0 200) (int_range 1 3))
    (fun (seed, n_apps) ->
      let apps, platform = MW.instance ~seed ~n_apps ~n_operators:15 in
      let dag = Cse.share_apps apps in
      match Insp.Dag_place.run dag platform with
      | Error _ -> true
      | Ok o ->
        let r =
          Insp.Dag_runtime.run ~horizon:240.0 dag platform
            o.Insp.Dag_place.alloc
        in
        Insp.Dag_runtime.sustains_target r
        && r.Insp.Runtime.results_completed > 0
        && r.Insp.Runtime.download_delivered
           >= 0.9 *. r.Insp.Runtime.download_ideal)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)

let correlated_trees_valid =
  qtest ~count:60 "correlated trees are valid and sized"
    QCheck.(triple (int_range 0 1000) (int_range 1 5) (int_range 4 40))
    (fun (seed, n_apps, n) ->
      let trees =
        MW.correlated_trees (Prng.create seed) ~n_apps ~n_operators:n
          ~n_object_types:15 ()
      in
      List.length trees = n_apps
      && List.for_all
           (fun t ->
             Optree.validate t = Ok () && Optree.n_operators t = n)
           trees)

let test_correlated_share_more_than_independent () =
  (* With share_prob 1.0 vs 0.0, the hash-consed DAG must be smaller. *)
  let mk prob seed =
    let rng = Prng.create seed in
    let trees =
      MW.correlated_trees rng ~n_apps:3 ~n_operators:21 ~n_object_types:15
        ~share_prob:prob ()
    in
    let objects =
      Objects.uniform_freq ~sizes:(Array.make 15 10.0) ~freq:0.5
    in
    let dag =
      Cse.share ~objects ~alpha:1.0 ~trees:(List.map (fun t -> (t, 1.0)) trees) ()
    in
    Dag.n_nodes dag
  in
  let shared = mk 1.0 7 and independent = mk 0.0 7 in
  Alcotest.(check bool)
    (Printf.sprintf "more sharing -> smaller DAG (%d < %d)" shared independent)
    true (shared < independent)

let () =
  Alcotest.run "multi"
    [
      ( "dag",
        [
          Alcotest.test_case "builder basic" `Quick test_builder_basic;
          Alcotest.test_case "builder validation" `Quick
            test_builder_validation;
          Alcotest.test_case "of_apps" `Quick test_of_apps;
        ] );
      ( "cse",
        [
          Alcotest.test_case "identical apps collapse" `Quick
            test_cse_identical_apps_collapse;
          Alcotest.test_case "commutative" `Quick test_cse_commutative;
          Alcotest.test_case "distinct stay distinct" `Quick
            test_cse_distinct_stay_distinct;
          cse_never_grows;
          cse_preserves_roots;
        ] );
      ( "dag_check",
        [
          Alcotest.test_case "feasible two-proc" `Quick test_dag_check_feasible;
          Alcotest.test_case "stream dedup" `Quick test_dag_check_stream_dedup;
          Alcotest.test_case "rate-weighted compute" `Quick
            test_dag_check_rate_weighted_compute;
        ] );
      ( "dag_place",
        [
          Alcotest.test_case "single app vs tree SBU" `Quick
            test_single_app_dag_close_to_tree_sbu;
          place_outcomes_feasible;
          sharing_never_costs_more_often;
        ] );
      ( "dag_runtime",
        [
          Alcotest.test_case "mixed rates rejected" `Quick
            test_dag_runtime_rejects_mixed_rates;
          dag_mappings_sustain_in_execution;
        ] );
      ( "workload",
        [
          Alcotest.test_case "share prob effect" `Quick
            test_correlated_share_more_than_independent;
          correlated_trees_valid;
        ] );
    ]

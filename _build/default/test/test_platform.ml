(* Tests for the platform model: purchase catalog (paper Table 1), data
   servers and the assembled platform. *)

module Catalog = Insp.Catalog
module Servers = Insp.Servers
module Platform = Insp.Platform
module Prng = Insp.Prng

let qtest = Helpers.qtest

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)

let test_table1_constants () =
  let c = Catalog.dell_2008 in
  Helpers.alco_float "chassis" 7548.0 (Catalog.chassis_cost c);
  let cpus = Catalog.cpus c and nics = Catalog.nics c in
  Alcotest.(check int) "5 cpu options" 5 (Array.length cpus);
  Alcotest.(check int) "5 nic options" 5 (Array.length nics);
  Helpers.alco_float "slowest cpu" 11720.0 cpus.(0).Catalog.speed;
  Helpers.alco_float "fastest cpu" 46880.0 cpus.(4).Catalog.speed;
  Helpers.alco_float "fastest cpu upgrade" 5299.0 cpus.(4).Catalog.cpu_cost;
  Helpers.alco_float "narrowest nic" 125.0 nics.(0).Catalog.bandwidth;
  Helpers.alco_float "widest nic" 2500.0 nics.(4).Catalog.bandwidth;
  Helpers.alco_float "widest nic upgrade" 5999.0 nics.(4).Catalog.nic_cost

let test_config_cost () =
  let c = Catalog.dell_2008 in
  Helpers.alco_float "cheapest" 7548.0
    (Catalog.config_cost c (Catalog.cheapest c));
  Helpers.alco_float "best" (7548.0 +. 5299.0 +. 5999.0)
    (Catalog.config_cost c (Catalog.best c))

let test_configs_sorted () =
  let c = Catalog.dell_2008 in
  let configs = Catalog.configs c in
  Alcotest.(check int) "25 combos" 25 (List.length configs);
  let costs = List.map (Catalog.config_cost c) configs in
  Alcotest.(check bool) "sorted by cost" true
    (List.sort compare costs = costs)

let test_cheapest_satisfying () =
  let c = Catalog.dell_2008 in
  (match Catalog.cheapest_satisfying c ~speed:0.0 ~bandwidth:0.0 with
  | Some cfg ->
    Helpers.alco_float "trivial demand -> cheapest" 7548.0
      (Catalog.config_cost c cfg)
  | None -> Alcotest.fail "should exist");
  (match Catalog.cheapest_satisfying c ~speed:20000.0 ~bandwidth:300.0 with
  | Some cfg ->
    Helpers.alco_float "speed tier" 25600.0 cfg.Catalog.cpu.Catalog.speed;
    Helpers.alco_float "nic tier" 500.0 cfg.Catalog.nic.Catalog.bandwidth
  | None -> Alcotest.fail "should exist");
  Alcotest.(check bool) "impossible demand" true
    (Catalog.cheapest_satisfying c ~speed:1e9 ~bandwidth:0.0 = None)

let cheapest_satisfying_is_optimal =
  qtest "cheapest_satisfying = brute force"
    QCheck.(pair (float_bound_exclusive 50000.0) (float_bound_exclusive 3000.0))
    (fun (speed, bandwidth) ->
      let c = Catalog.dell_2008 in
      let brute =
        List.filter (fun cfg -> Catalog.fits cfg ~speed ~bandwidth)
          (Catalog.configs c)
        |> List.map (Catalog.config_cost c)
        |> function [] -> None | l -> Some (List.fold_left Float.min infinity l)
      in
      match (Catalog.cheapest_satisfying c ~speed ~bandwidth, brute) with
      | None, None -> true
      | Some cfg, Some cost ->
        Helpers.float_eq (Catalog.config_cost c cfg) cost
      | _ -> false)

let test_homogeneous () =
  let c = Catalog.homogeneous Catalog.dell_2008 ~cpu_index:2 ~nic_index:1 in
  Alcotest.(check bool) "is homogeneous" true (Catalog.is_homogeneous c);
  Alcotest.(check bool) "full is not" false
    (Catalog.is_homogeneous Catalog.dell_2008);
  Helpers.alco_float "single speed" 25600.0
    (Catalog.best c).Catalog.cpu.Catalog.speed;
  Helpers.alco_float "best = cheapest"
    (Catalog.config_cost c (Catalog.best c))
    (Catalog.config_cost c (Catalog.cheapest c));
  Alcotest.check_raises "bad index"
    (Invalid_argument "Catalog.homogeneous: cpu_index out of range") (fun () ->
      ignore (Catalog.homogeneous Catalog.dell_2008 ~cpu_index:9 ~nic_index:0))

let test_catalog_validation () =
  Alcotest.check_raises "decreasing speed"
    (Invalid_argument "Catalog.make: CPU capacities must increase") (fun () ->
      ignore
        (Catalog.make ~chassis_cost:1.0
           ~cpus:
             [|
               { Catalog.speed = 2.0; cpu_cost = 0.0 };
               { Catalog.speed = 1.0; cpu_cost = 1.0 };
             |]
           ~nics:[| { Catalog.bandwidth = 1.0; nic_cost = 0.0 } |]))

(* ------------------------------------------------------------------ *)
(* Servers                                                             *)

let test_servers_basic () =
  let holds = [| [| true; true; false |]; [| true; false; true |] |] in
  let s = Servers.make ~cards:[| 100.0; 200.0 |] ~holds in
  Alcotest.(check int) "servers" 2 (Servers.n_servers s);
  Alcotest.(check int) "objects" 3 (Servers.n_object_types s);
  Helpers.alco_float "card" 200.0 (Servers.card s 1);
  Alcotest.(check (list int)) "providers o0" [ 0; 1 ] (Servers.providers s 0);
  Alcotest.(check (list int)) "providers o1" [ 0 ] (Servers.providers s 1);
  Alcotest.(check int) "availability o0" 2 (Servers.availability s 0);
  Alcotest.(check (list int)) "objects on S1" [ 0; 2 ] (Servers.objects_on s 1);
  Alcotest.(check (list (pair int int))) "exclusive"
    [ (1, 0); (2, 1) ]
    (Servers.exclusive_objects s)

let test_servers_single_object () =
  let holds = [| [| true; true |]; [| false; true |]; [| true; false |] |] in
  let s = Servers.make ~cards:[| 1.0; 1.0; 1.0 |] ~holds in
  Alcotest.(check (list int)) "single-object servers" [ 1; 2 ]
    (Servers.single_object_servers s)

let test_servers_validation () =
  Alcotest.check_raises "unheld object"
    (Invalid_argument "Servers.make: object type 1 is held by no server")
    (fun () ->
      ignore
        (Servers.make ~cards:[| 1.0 |] ~holds:[| [| true; false |] |]))

let placement_covers_objects =
  qtest "random placement covers all objects"
    QCheck.(int_range 0 2000)
    (fun seed ->
      let s =
        Servers.random_placement (Prng.create seed) ~n_servers:6
          ~n_object_types:15 ~card:10000.0 ~min_copies:1 ~max_copies:3 ()
      in
      List.for_all
        (fun k ->
          let av = Servers.availability s k in
          av >= 1 && av <= 3)
        (List.init 15 Fun.id))

let placement_respects_exact_copies =
  qtest "replication bounds honoured"
    QCheck.(int_range 0 2000)
    (fun seed ->
      let s =
        Servers.random_placement (Prng.create seed) ~n_servers:4
          ~n_object_types:10 ~card:1.0 ~min_copies:2 ~max_copies:2 ()
      in
      List.for_all
        (fun k -> Servers.availability s k = 2)
        (List.init 10 Fun.id))

(* ------------------------------------------------------------------ *)
(* Platform                                                            *)

let test_platform_defaults () =
  let p = Platform.paper_default (Prng.create 3) () in
  Alcotest.(check int) "6 servers" 6 (Servers.n_servers p.Platform.servers);
  Alcotest.(check int) "15 objects" 15
    (Servers.n_object_types p.Platform.servers);
  Helpers.alco_float "server cards" 10000.0 (Servers.card p.Platform.servers 0);
  Helpers.alco_float "server link" 1000.0 p.Platform.server_link;
  Helpers.alco_float "proc link" 1000.0 p.Platform.proc_link

let test_platform_validation () =
  let servers =
    Servers.make ~cards:[| 1.0 |] ~holds:[| [| true |] |]
  in
  Alcotest.check_raises "bad link"
    (Invalid_argument "Platform.make: non-positive link bandwidth") (fun () ->
      ignore
        (Platform.make ~catalog:Catalog.dell_2008 ~servers ~server_link:0.0 ()))

let () =
  Alcotest.run "platform"
    [
      ( "catalog",
        [
          Alcotest.test_case "Table 1 constants" `Quick test_table1_constants;
          Alcotest.test_case "config cost" `Quick test_config_cost;
          Alcotest.test_case "configs sorted" `Quick test_configs_sorted;
          Alcotest.test_case "cheapest_satisfying" `Quick
            test_cheapest_satisfying;
          Alcotest.test_case "homogeneous" `Quick test_homogeneous;
          Alcotest.test_case "validation" `Quick test_catalog_validation;
          cheapest_satisfying_is_optimal;
        ] );
      ( "servers",
        [
          Alcotest.test_case "basic" `Quick test_servers_basic;
          Alcotest.test_case "single-object servers" `Quick
            test_servers_single_object;
          Alcotest.test_case "validation" `Quick test_servers_validation;
          placement_covers_objects;
          placement_respects_exact_copies;
        ] );
      ( "platform",
        [
          Alcotest.test_case "paper defaults" `Quick test_platform_defaults;
          Alcotest.test_case "validation" `Quick test_platform_validation;
        ] );
    ]

test/test_tree.ml: Alcotest Array Float Helpers Insp List QCheck String

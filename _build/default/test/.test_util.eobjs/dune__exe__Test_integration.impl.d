test/test_integration.ml: Alcotest Insp List Option Result String

test/test_mapping.ml: Alcotest Array Fun Helpers Insp List

test/test_multi.ml: Alcotest Array Helpers Insp List Option Printf QCheck

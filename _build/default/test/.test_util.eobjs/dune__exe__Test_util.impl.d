test/test_util.ml: Alcotest Array Float Fun Gen Helpers Insp List Option QCheck String

test/test_lp.ml: Alcotest Array Float Fun Helpers Insp List Option Printf QCheck

test/test_platform.ml: Alcotest Array Float Fun Helpers Insp List QCheck

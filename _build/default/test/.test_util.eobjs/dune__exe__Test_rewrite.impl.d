test/test_rewrite.ml: Alcotest Array Float Helpers Insp List Printf QCheck

test/test_sim.ml: Alcotest Array Helpers Insp List Printf QCheck

test/test_workload.ml: Alcotest Fun Helpers Insp List QCheck

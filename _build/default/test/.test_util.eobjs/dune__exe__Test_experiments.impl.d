test/test_experiments.ml: Alcotest Float Insp Insp_experiments List Printf String

test/test_heuristics.ml: Alcotest Array Helpers Insp Insp_heuristics List Printf Result

test/helpers.ml: Alcotest Array Float Insp Printf QCheck QCheck_alcotest

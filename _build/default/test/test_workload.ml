(* Tests for workload configuration and instance generation (the paper's
   §5 methodology). *)

module Config = Insp.Config
module Instance = Insp.Instance
module App = Insp.App
module Objects = Insp.Objects
module Optree = Insp.Optree
module Servers = Insp.Servers
module Platform = Insp.Platform

let qtest = Helpers.qtest

let test_config_defaults () =
  let c = Config.default in
  Alcotest.(check int) "N" 60 c.Config.n_operators;
  Alcotest.(check int) "15 object types" 15 c.Config.n_object_types;
  Alcotest.(check int) "6 servers" 6 c.Config.n_servers;
  Helpers.alco_float "rho" 1.0 c.Config.rho;
  Helpers.alco_float "base work" 8000.0 c.Config.base_work;
  Helpers.alco_float "work factor" 0.19 c.Config.work_factor

let test_config_large_rho_rule () =
  let c = Config.make ~n_operators:10 ~sizes:Config.Large () in
  Helpers.alco_float "large implies rho 0.1" 0.1 c.Config.rho;
  let c = Config.make ~n_operators:10 ~sizes:Config.Large ~rho:2.0 () in
  Helpers.alco_float "explicit rho wins" 2.0 c.Config.rho;
  let c = Config.make ~n_operators:10 () in
  Helpers.alco_float "small implies rho 1" 1.0 c.Config.rho

let test_config_frequency () =
  Helpers.alco_float "high" 0.5 (Config.frequency Config.High);
  Helpers.alco_float "low" 0.02 (Config.frequency Config.Low);
  Helpers.alco_float "custom" 0.25 (Config.frequency (Config.Custom 0.25));
  Alcotest.check_raises "bad custom"
    (Invalid_argument "Config.frequency: non-positive frequency") (fun () ->
      ignore (Config.frequency (Config.Custom 0.0)))

let test_size_ranges () =
  Alcotest.(check (pair (float 0.0) (float 0.0))) "small" (5.0, 30.0)
    (Config.size_range Config.Small);
  Alcotest.(check (pair (float 0.0) (float 0.0))) "large" (450.0, 530.0)
    (Config.size_range Config.Large)

let instance_gen = QCheck.(pair (int_range 0 3000) (int_range 1 60))

let instance_matches_config =
  qtest "generated instance matches its configuration" instance_gen
    (fun (seed, n) ->
      let config = Config.make ~n_operators:n ~alpha:1.1 ~seed () in
      let inst = Instance.generate config in
      let app = inst.Instance.app in
      App.n_operators app = n
      && Helpers.float_eq (App.alpha app) 1.1
      && Helpers.float_eq (App.rho app) 1.0
      && Objects.count (App.objects app) = 15
      && Servers.n_servers inst.Instance.platform.Platform.servers = 6)

let instance_deterministic =
  qtest "same seed, same instance" instance_gen (fun (seed, n) ->
      let config = Config.make ~n_operators:n ~seed () in
      let a = Instance.generate config and b = Instance.generate config in
      let costs inst =
        List.map
          (fun (_, r) ->
            match r with
            | Ok (o : Insp.Solve.outcome) -> Some o.cost
            | Error _ -> None)
          (Insp.Solve.run_all ~seed inst.Instance.app inst.Instance.platform)
      in
      costs a = costs b)

let instance_sizes_follow_regime =
  qtest "object sizes follow the regime" instance_gen (fun (seed, n) ->
      let small =
        Instance.generate (Config.make ~n_operators:n ~seed ())
      in
      let large =
        Instance.generate
          (Config.make ~n_operators:n ~sizes:Config.Large ~seed ())
      in
      let ok inst lo hi =
        let objects = App.objects inst.Instance.app in
        List.for_all
          (fun k ->
            let s = Objects.size objects k in
            s >= lo && s < hi)
          (List.init (Objects.count objects) Fun.id)
      in
      ok small 5.0 30.0 && ok large 450.0 530.0)

let with_frequency_keeps_structure =
  qtest "with_frequency keeps the tree and sizes" instance_gen
    (fun (seed, n) ->
      let inst = Instance.generate (Config.make ~n_operators:n ~seed ()) in
      let inst' = Instance.with_frequency inst 0.1 in
      let t = App.tree inst.Instance.app and t' = App.tree inst'.Instance.app in
      Optree.preorder t = Optree.preorder t'
      && List.for_all2
           (fun i i' ->
             Optree.leaves t i = Optree.leaves t' i')
           (Optree.preorder t) (Optree.preorder t')
      && Helpers.float_eq
           (Objects.size (App.objects inst.Instance.app) 0)
           (Objects.size (App.objects inst'.Instance.app) 0)
      && Helpers.float_eq
           (Objects.rate (App.objects inst'.Instance.app) 0)
           (0.1 *. Objects.size (App.objects inst'.Instance.app) 0))

let test_generate_batch () =
  let config = Config.make ~n_operators:10 () in
  let batch = Instance.generate_batch config ~seeds:[ 1; 2; 3 ] in
  Alcotest.(check int) "three instances" 3 (List.length batch);
  let seeds =
    List.map (fun i -> i.Instance.config.Config.seed) batch
  in
  Alcotest.(check (list int)) "seeds recorded" [ 1; 2; 3 ] seeds

let test_homogeneous_restriction () =
  let inst = Helpers.instance ~n:10 ~seed:1 () in
  let h = Instance.homogeneous inst ~cpu_index:2 ~nic_index:2 in
  Alcotest.(check bool) "homogeneous" true
    (Insp.Catalog.is_homogeneous h.Instance.platform.Platform.catalog);
  (* Tree untouched *)
  Alcotest.(check bool) "same app" true
    (App.n_operators inst.Instance.app = App.n_operators h.Instance.app)

let () =
  Alcotest.run "workload"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "large rho rule" `Quick test_config_large_rho_rule;
          Alcotest.test_case "frequency" `Quick test_config_frequency;
          Alcotest.test_case "size ranges" `Quick test_size_ranges;
        ] );
      ( "instance",
        [
          Alcotest.test_case "batch" `Quick test_generate_batch;
          Alcotest.test_case "homogeneous restriction" `Quick
            test_homogeneous_restriction;
          instance_matches_config;
          instance_deterministic;
          instance_sizes_follow_regime;
          with_frequency_keeps_structure;
        ] );
    ]

(* Tests for the mutable-application extension: associativity/
   commutativity rewriting of operator trees. *)

module Rewrite = Insp.Rewrite
module Optree = Insp.Optree
module App = Insp.App
module Objects = Insp.Objects
module Generate = Insp.Generate
module Prng = Insp.Prng

let qtest = Helpers.qtest

let chain4 () =
  (* ((o0 . o1) . o2) . o3 — the classic left-deep chain. *)
  Optree.left_deep ~n_operators:3 ~objects:[| 2; 1; 0; 3 |]

let test_leaf_multiset () =
  let t = chain4 () in
  Alcotest.(check (list int)) "sorted with duplicates" [ 0; 1; 2; 3 ]
    (Rewrite.leaf_multiset t);
  let t2 =
    Optree.of_spec ~n_object_types:2
      Optree.(Op (Op (Obj 1, Obj 1), Obj 0))
  in
  Alcotest.(check (list int)) "duplicates kept" [ 0; 1; 1 ]
    (Rewrite.leaf_multiset t2)

let test_neighbors_preserve_leaves () =
  let t = chain4 () in
  let ns = Rewrite.neighbors t in
  Alcotest.(check bool) "has rotations" true (List.length ns >= 2);
  List.iter
    (fun t' ->
      Alcotest.(check (list int)) "leaf multiset preserved"
        (Rewrite.leaf_multiset t) (Rewrite.leaf_multiset t');
      Alcotest.(check bool) "valid" true (Optree.validate t' = Ok ());
      Alcotest.(check int) "operator count preserved" (Optree.n_operators t)
        (Optree.n_operators t'))
    ns

let neighbors_preserve_multiset =
  qtest ~count:80 "rotations preserve the leaf multiset"
    QCheck.(pair (int_range 0 2000) (int_range 2 15))
    (fun (seed, n) ->
      let t =
        Generate.random_shape (Prng.create seed) ~n_operators:n
          ~n_object_types:6
      in
      List.for_all
        (fun t' ->
          Rewrite.leaf_multiset t' = Rewrite.leaf_multiset t
          && Optree.validate t' = Ok ())
        (Rewrite.neighbors t))

let test_balanced_and_left_deep () =
  let t =
    Generate.random_shape (Prng.create 3) ~n_operators:14 ~n_object_types:5
  in
  let b = Rewrite.balanced_of t in
  let l = Rewrite.left_deep_of t in
  Alcotest.(check (list int)) "balanced leaves" (Rewrite.leaf_multiset t)
    (Rewrite.leaf_multiset b);
  Alcotest.(check (list int)) "left-deep leaves" (Rewrite.leaf_multiset t)
    (Rewrite.leaf_multiset l);
  Alcotest.(check int) "left-deep height" (Optree.n_operators l - 1)
    (Optree.height l);
  Alcotest.(check bool) "balanced shallower" true
    (Optree.height b < Optree.height l)

let test_enumerate_counts () =
  (* Distinct leaves: #shapes = (2n-3)!! — 3 leaves -> 3, 4 leaves -> 15. *)
  let shapes3 = Rewrite.enumerate ~n_object_types:3 ~leaves:[ 0; 1; 2 ] in
  Alcotest.(check int) "3 distinct leaves" 3 (List.length shapes3);
  let shapes4 = Rewrite.enumerate ~n_object_types:4 ~leaves:[ 0; 1; 2; 3 ] in
  Alcotest.(check int) "4 distinct leaves" 15 (List.length shapes4);
  (* Identical leaves collapse shapes: 3 equal leaves -> 1 shape. *)
  let same3 = Rewrite.enumerate ~n_object_types:1 ~leaves:[ 0; 0; 0 ] in
  Alcotest.(check int) "3 equal leaves" 1 (List.length same3)

let test_enumerate_all_valid () =
  List.iter
    (fun t ->
      Alcotest.(check bool) "valid" true (Optree.validate t = Ok ());
      Alcotest.(check (list int)) "leaves" [ 0; 1; 1; 2 ]
        (Rewrite.leaf_multiset t))
    (Rewrite.enumerate ~n_object_types:3 ~leaves:[ 0; 1; 1; 2 ])

(* The work model is shape-sensitive: balanced minimises total work
   among shapes for alpha > 1 (convexity), left-deep maximises it. *)
let total_work tree alpha =
  let n_object_types = Optree.n_object_types tree in
  let objects =
    Objects.uniform_freq ~sizes:(Array.make n_object_types 10.0) ~freq:0.5
  in
  App.total_work (App.make ~tree ~objects ~alpha ())

let balanced_minimises_work =
  qtest ~count:50 "balanced <= random <= left-deep total work (alpha > 1)"
    QCheck.(pair (int_range 0 1000) (int_range 3 12))
    (fun (seed, n) ->
      let t =
        Generate.random_shape (Prng.create seed) ~n_operators:n
          ~n_object_types:4
      in
      let w_b = total_work (Rewrite.balanced_of t) 1.5 in
      let w_t = total_work t 1.5 in
      let w_l = total_work (Rewrite.left_deep_of t) 1.5 in
      w_b <= w_t +. 1e-6 && w_t <= w_l +. 1e-6)

let test_optimize_improves () =
  (* Hill climbing from a left-deep chain must not end worse, and the
     returned tree must stay equivalent. *)
  let t = Rewrite.left_deep_of
      (Generate.random_shape (Prng.create 9) ~n_operators:10 ~n_object_types:5)
  in
  let evaluate tree = Some (total_work tree 1.5) in
  let best, cost = Rewrite.optimize (Prng.create 1) ~evaluate t in
  Alcotest.(check (list int)) "equivalent computation"
    (Rewrite.leaf_multiset t) (Rewrite.leaf_multiset best);
  match (cost, evaluate t) with
  | Some c, Some c0 -> Alcotest.(check bool) "improved or equal" true (c <= c0)
  | _ -> Alcotest.fail "evaluation failed"

let test_optimize_matches_enumeration_on_small () =
  (* With exhaustive enumeration as ground truth on 5 leaves. *)
  let t =
    Generate.random_shape (Prng.create 5) ~n_operators:4 ~n_object_types:5
  in
  let evaluate tree = Some (total_work tree 1.6) in
  let exhaustive =
    Rewrite.enumerate ~n_object_types:5 ~leaves:(Rewrite.leaf_multiset t)
    |> List.filter_map evaluate
    |> List.fold_left Float.min infinity
  in
  let _, cost = Rewrite.optimize (Prng.create 2) ~restarts:4 ~evaluate t in
  match cost with
  | None -> Alcotest.fail "no cost"
  | Some c ->
    Alcotest.(check bool)
      (Printf.sprintf "within 5%% of exhaustive optimum (%.1f vs %.1f)" c
         exhaustive)
      true
      (c <= exhaustive *. 1.05 +. 1e-6)

let optimize_never_worse =
  qtest ~count:30 "hill climbing never ends above its start"
    QCheck.(pair (int_range 0 500) (int_range 3 10))
    (fun (seed, n) ->
      let t =
        Generate.random_shape (Prng.create seed) ~n_operators:n
          ~n_object_types:4
      in
      let evaluate tree = Some (total_work tree 1.4) in
      let _, cost = Rewrite.optimize (Prng.create seed) ~evaluate t in
      match (cost, evaluate t) with
      | Some c, Some c0 -> c <= c0 +. 1e-6
      | _ -> false)

let () =
  Alcotest.run "rewrite"
    [
      ( "structure",
        [
          Alcotest.test_case "leaf multiset" `Quick test_leaf_multiset;
          Alcotest.test_case "neighbors preserve leaves" `Quick
            test_neighbors_preserve_leaves;
          Alcotest.test_case "balanced / left-deep" `Quick
            test_balanced_and_left_deep;
          neighbors_preserve_multiset;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "shape counts" `Quick test_enumerate_counts;
          Alcotest.test_case "all valid" `Quick test_enumerate_all_valid;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "improves left-deep" `Quick test_optimize_improves;
          Alcotest.test_case "matches enumeration" `Quick
            test_optimize_matches_enumeration_on_small;
          balanced_minimises_work;
          optimize_never_worse;
        ] );
    ]

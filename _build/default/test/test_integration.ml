(* End-to-end integration tests: the full pipeline across regimes, the
   library facade, and cross-layer consistency (heuristics vs checker vs
   exact solver vs simulator). *)

module Config = Insp.Config
module Instance = Insp.Instance
module Solve = Insp.Solve
module Check = Insp.Check
module Alloc = Insp.Alloc
module Runtime = Insp.Runtime
module Exact = Insp.Exact
module Suite = Insp.Suite

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* One full pass: generate -> solve (all heuristics) -> validate -> pick
   best -> simulate. *)
let full_pipeline config =
  let inst = Instance.generate config in
  let app = inst.Instance.app in
  let platform = inst.Instance.platform in
  let results = Solve.run_all ~seed:config.Config.seed app platform in
  List.iter
    (fun ((h : Solve.heuristic), r) ->
      match r with
      | Ok o ->
        Alcotest.(check string)
          (h.name ^ " passes checker")
          "feasible"
          (Check.explain (Check.check app platform o.Solve.alloc))
      | Error _ -> ())
    results;
  match Insp.solve ~seed:config.Config.seed inst with
  | Error _ -> ()
  | Ok best ->
    (* Long horizon: the measurement must dominate the pipeline-fill
       transient (see Runtime.run's window documentation). *)
    let report = Insp.simulate ~horizon:240.0 inst best.Solve.alloc in
    Alcotest.(check bool) "best mapping sustains rho" true
      (Runtime.sustains_target report)

let test_pipeline_small_high () =
  full_pipeline (Config.make ~n_operators:30 ~alpha:0.9 ~seed:2 ())

let test_pipeline_small_low () =
  full_pipeline
    (Config.make ~n_operators:30 ~alpha:0.9 ~freq:Config.Low ~seed:2 ())

let test_pipeline_high_alpha () =
  full_pipeline (Config.make ~n_operators:25 ~alpha:1.6 ~seed:4 ())

let test_pipeline_large_objects () =
  full_pipeline
    (Config.make ~n_operators:20 ~alpha:0.9 ~sizes:Config.Large ~seed:6 ())

let test_large_objects_cliff () =
  (* Beyond the large-object feasibility cliff no heuristic may claim a
     feasible mapping that the checker rejects; most should simply
     fail. *)
  let config =
    Config.make ~n_operators:80 ~alpha:0.9 ~sizes:Config.Large ~seed:3 ()
  in
  let inst = Instance.generate config in
  List.iter
    (fun ((h : Solve.heuristic), r) ->
      match r with
      | Ok o ->
        Alcotest.(check string) (h.name ^ " claims feasible") "feasible"
          (Check.explain
             (Check.check inst.Instance.app inst.Instance.platform
                o.Solve.alloc))
      | Error _ -> ())
    (Solve.run_all ~seed:3 inst.Instance.app inst.Instance.platform)

let test_facade_solve_picks_cheapest () =
  let inst = Instance.generate (Config.make ~n_operators:25 ~seed:8 ()) in
  let all =
    Solve.run_all ~seed:8 inst.Instance.app inst.Instance.platform
    |> List.filter_map (fun (_, r) -> Result.to_option r)
  in
  match Insp.solve ~seed:8 inst with
  | Error _ -> Alcotest.fail "expected feasible"
  | Ok best ->
    List.iter
      (fun (o : Solve.outcome) ->
        Alcotest.(check bool) "facade <= each heuristic" true
          (best.Solve.cost <= o.cost +. 1e-6))
      all

let test_exact_consistency_homogeneous () =
  (* On a homogeneous platform: exact <= SBU and both validate. *)
  let inst =
    Instance.homogeneous
      (Instance.generate (Config.make ~n_operators:12 ~seed:5 ()))
      ~cpu_index:4 ~nic_index:3
  in
  let app = inst.Instance.app and platform = inst.Instance.platform in
  match Exact.solve app platform with
  | Error e -> Alcotest.fail e
  | Ok exact -> (
    Alcotest.(check string) "exact validates" "feasible"
      (Check.explain (Check.check app platform exact.Exact.alloc));
    let sbu = List.find (fun h -> h.Solve.key = "sbu") Solve.all in
    match Solve.run ~seed:5 sbu app platform with
    | Error _ -> ()
    | Ok o ->
      Alcotest.(check bool) "exact <= SBU" true
        (exact.Exact.cost <= o.Solve.cost +. 1e-6))

let test_all_experiments_quick () =
  List.iter
    (fun id ->
      match Suite.run_by_id ~quick:true id with
      | Some s ->
        Alcotest.(check bool) (id ^ " output") true (String.length s > 100)
      | None -> Alcotest.fail ("missing experiment " ^ id))
    Suite.all_ids

let test_version () =
  Alcotest.(check bool) "semver-ish" true
    (String.length Insp.version >= 5 && String.contains Insp.version '.')

let test_paper_ranking_on_average () =
  (* The paper's headline ranking at N=60, alpha=0.9, averaged over a
     few seeds: SBU cheapest among the deterministic heuristics; Random
     most expensive overall. *)
  let seeds = [ 1; 2; 3 ] in
  let mean name =
    let costs =
      List.filter_map
        (fun seed ->
          let inst =
            Instance.generate (Config.make ~n_operators:60 ~alpha:0.9 ~seed ())
          in
          match
            Solve.run ~seed
              (Option.get (Solve.find name))
              inst.Instance.app inst.Instance.platform
          with
          | Ok o -> Some o.Solve.cost
          | Error _ -> None)
        seeds
    in
    Insp.Stats.mean costs
  in
  let sbu = mean "sbu" in
  Alcotest.(check bool) "SBU <= Comp-Greedy" true (sbu <= mean "comp" +. 1.0);
  Alcotest.(check bool) "SBU <= Comm-Greedy" true (sbu <= mean "comm");
  Alcotest.(check bool) "SBU <= Object-Grouping" true (sbu <= mean "objgroup");
  Alcotest.(check bool) "SBU <= Object-Availability" true
    (sbu <= mean "objavail");
  Alcotest.(check bool) "Random worst" true (mean "random" >= mean "objavail")

let test_simcheck_report () =
  let s = Suite.sim_validation ~seeds:[ 2 ] ~ns:[ 30 ] () in
  Alcotest.(check bool) "rendered" true (contains s "achieved")

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "small objects, high freq" `Quick
            test_pipeline_small_high;
          Alcotest.test_case "small objects, low freq" `Quick
            test_pipeline_small_low;
          Alcotest.test_case "high alpha" `Quick test_pipeline_high_alpha;
          Alcotest.test_case "large objects" `Quick test_pipeline_large_objects;
          Alcotest.test_case "large-object cliff" `Quick
            test_large_objects_cliff;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "facade picks cheapest" `Quick
            test_facade_solve_picks_cheapest;
          Alcotest.test_case "exact vs heuristics" `Quick
            test_exact_consistency_homogeneous;
          Alcotest.test_case "paper ranking (mean over seeds)" `Quick
            test_paper_ranking_on_average;
        ] );
      ( "harness",
        [
          Alcotest.test_case "all experiments quick" `Slow
            test_all_experiments_quick;
          Alcotest.test_case "simcheck report" `Quick test_simcheck_report;
          Alcotest.test_case "version" `Quick test_version;
        ] );
    ]

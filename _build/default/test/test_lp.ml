(* Tests for the LP substrate: simplex, branch-and-bound MILP, the
   paper's ILP model and the exact combinatorial solver. *)

module Simplex = Insp.Simplex
module Milp = Insp.Milp
module Ilp_model = Insp.Ilp_model
module Exact = Insp.Exact
module Solve = Insp.Solve
module Check = Insp.Check
module Instance = Insp.Instance
module Config = Insp.Config

let qtest = Helpers.qtest

let le coeffs bound = { Simplex.coeffs; relation = Simplex.Le; bound }
let ge coeffs bound = { Simplex.coeffs; relation = Simplex.Ge; bound }
let eq coeffs bound = { Simplex.coeffs; relation = Simplex.Eq; bound }

(* ------------------------------------------------------------------ *)
(* Simplex on known problems                                           *)

let test_lp_max_basic () =
  (* max 3x+2y st x+y<=4, x+3y<=6 -> (4,0), 12 *)
  let p =
    {
      Simplex.objective = [| 3.0; 2.0 |];
      constraints = [ le [| 1.0; 1.0 |] 4.0; le [| 1.0; 3.0 |] 6.0 ];
      maximize = true;
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal s ->
    Helpers.alco_float "objective" 12.0 s.Simplex.objective_value;
    Helpers.alco_float "x" 4.0 s.Simplex.values.(0);
    Helpers.alco_float "y" 0.0 s.Simplex.values.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_min_with_ge () =
  (* min x+y st x+2y>=4, 3x+y>=6 -> intersection (1.6,1.2), 2.8 *)
  let p =
    {
      Simplex.objective = [| 1.0; 1.0 |];
      constraints = [ ge [| 1.0; 2.0 |] 4.0; ge [| 3.0; 1.0 |] 6.0 ];
      maximize = false;
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal s ->
    Helpers.alco_float ~eps:1e-6 "objective" 2.8 s.Simplex.objective_value
  | _ -> Alcotest.fail "expected optimal"

let test_lp_equality () =
  (* min 2x+y st x+y=3, x<=2 -> (2,1), 5?? check: minimize => prefer y:
     x=0,y=3 gives 3. *)
  let p =
    {
      Simplex.objective = [| 2.0; 1.0 |];
      constraints = [ eq [| 1.0; 1.0 |] 3.0; le [| 1.0; 0.0 |] 2.0 ];
      maximize = false;
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal s ->
    Helpers.alco_float "objective" 3.0 s.Simplex.objective_value;
    Helpers.alco_float "y" 3.0 s.Simplex.values.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_infeasible () =
  let p =
    {
      Simplex.objective = [| 1.0 |];
      constraints = [ le [| 1.0 |] 1.0; ge [| 1.0 |] 2.0 ];
      maximize = false;
    }
  in
  Alcotest.(check bool) "infeasible" true (Simplex.solve p = Simplex.Infeasible)

let test_lp_unbounded () =
  let p =
    {
      Simplex.objective = [| 1.0 |];
      constraints = [ ge [| 1.0 |] 1.0 ];
      maximize = true;
    }
  in
  Alcotest.(check bool) "unbounded" true (Simplex.solve p = Simplex.Unbounded)

let test_lp_negative_rhs () =
  (* min x st -x <= -3  (i.e. x >= 3) *)
  let p =
    {
      Simplex.objective = [| 1.0 |];
      constraints = [ le [| -1.0 |] (-3.0) ];
      maximize = false;
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal s -> Helpers.alco_float "x" 3.0 s.Simplex.values.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_degenerate () =
  (* Classic cycling-prone instance; Bland's rule must terminate. *)
  let p =
    {
      Simplex.objective = [| -0.75; 150.0; -0.02; 6.0 |];
      constraints =
        [
          le [| 0.25; -60.0; -0.04; 9.0 |] 0.0;
          le [| 0.5; -90.0; -0.02; 3.0 |] 0.0;
          le [| 0.0; 0.0; 1.0; 0.0 |] 1.0;
        ];
      maximize = false;
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal s ->
    Helpers.alco_float ~eps:1e-6 "beale optimum" (-0.05)
      s.Simplex.objective_value
  | _ -> Alcotest.fail "expected optimal"

(* Random feasible-by-construction LPs: point x0 >= 0 satisfies Ax <= b
   by construction, so the LP is feasible, and the simplex optimum for
   minimisation is <= c.x0. *)
let lp_gen =
  QCheck.make
    ~print:(fun (n, m, seed) -> Printf.sprintf "n=%d m=%d seed=%d" n m seed)
    QCheck.Gen.(triple (1 -- 6) (1 -- 6) (0 -- 10_000))

let random_lp (n, m, seed) =
  let rng = Insp.Prng.create seed in
  let x0 = Array.init n (fun _ -> Insp.Prng.float_range rng 0.0 5.0) in
  let rows =
    List.init m (fun _ ->
        let coeffs = Array.init n (fun _ -> Insp.Prng.float_range rng (-3.0) 3.0) in
        let lhs = ref 0.0 in
        Array.iteri (fun j c -> lhs := !lhs +. (c *. x0.(j))) coeffs;
        le coeffs (!lhs +. Insp.Prng.float_range rng 0.0 2.0))
  in
  let objective = Array.init n (fun _ -> Insp.Prng.float_range rng (-2.0) 2.0) in
  ({ Simplex.objective; constraints = rows; maximize = false }, x0)

let lp_random_feasible =
  qtest ~count:200 "random feasible LPs solved soundly" lp_gen (fun params ->
      let p, x0 = random_lp params in
      match Simplex.solve p with
      | Simplex.Infeasible -> false (* x0 is feasible *)
      | Simplex.Unbounded -> true (* possible with negative costs *)
      | Simplex.Optimal s ->
        let obj_x0 =
          Array.to_list x0
          |> List.mapi (fun j v -> p.Simplex.objective.(j) *. v)
          |> List.fold_left ( +. ) 0.0
        in
        Simplex.check_feasible p s.Simplex.values
        && s.Simplex.objective_value <= obj_x0 +. 1e-6)

(* ------------------------------------------------------------------ *)
(* MILP                                                                *)

let test_milp_knapsack () =
  (* max 5x+4y st 6x+5y <= 10, x,y integer (implicitly bounded by the
     capacity row) -> y=2: 8 *)
  let p =
    {
      Simplex.objective = [| 5.0; 4.0 |];
      constraints = [ le [| 6.0; 5.0 |] 10.0 ];
      maximize = true;
    }
  in
  let r = Milp.solve { Milp.problem = p; integer_vars = [ 0; 1 ] } in
  match r.Milp.solution with
  | Some s ->
    Helpers.alco_float "objective" 8.0 s.Simplex.objective_value;
    Alcotest.(check bool) "proven" true (r.Milp.status = Milp.Proven)
  | None -> Alcotest.fail "expected solution"

let test_milp_integrality () =
  (* max x st 2x <= 3 -> LP 1.5, MILP 1 *)
  let p =
    {
      Simplex.objective = [| 1.0 |];
      constraints = [ le [| 2.0 |] 3.0 ];
      maximize = true;
    }
  in
  let t = { Milp.problem = p; integer_vars = [ 0 ] } in
  (match Milp.relaxation_bound t with
  | Some b -> Helpers.alco_float "relaxation" 1.5 b
  | None -> Alcotest.fail "relaxation should be optimal");
  match (Milp.solve t).Milp.solution with
  | Some s -> Helpers.alco_float "integral" 1.0 s.Simplex.values.(0)
  | None -> Alcotest.fail "expected solution"

let test_milp_infeasible_integer () =
  (* 0.4 <= x <= 0.6 has no integer point. *)
  let p =
    {
      Simplex.objective = [| 1.0 |];
      constraints = [ ge [| 1.0 |] 0.4; le [| 1.0 |] 0.6 ];
      maximize = false;
    }
  in
  let r = Milp.solve { Milp.problem = p; integer_vars = [ 0 ] } in
  Alcotest.(check bool) "no solution" true (r.Milp.solution = None);
  Alcotest.(check bool) "proven" true (r.Milp.status = Milp.Proven)

let milp_solution_is_integral =
  qtest ~count:100 "MILP solutions are integral and feasible" lp_gen
    (fun params ->
      let p, _ = random_lp params in
      let n = Array.length p.Simplex.objective in
      (* Bound variables so the MILP cannot be unbounded. *)
      let bounds =
        List.init n (fun j ->
            let coeffs = Array.make n 0.0 in
            coeffs.(j) <- 1.0;
            le coeffs 10.0)
      in
      let p = { p with Simplex.constraints = p.Simplex.constraints @ bounds } in
      let t = { Milp.problem = p; integer_vars = List.init n Fun.id } in
      let r = Milp.solve ~node_limit:5000 t in
      match r.Milp.solution with
      | None -> true
      | Some s ->
        Simplex.check_feasible p s.Simplex.values
        && Array.for_all
             (fun v -> Float.abs (v -. Float.round v) < 1e-5)
             s.Simplex.values)

(* ------------------------------------------------------------------ *)
(* ILP model + exact solver on instances                               *)

let homog inst = Instance.homogeneous inst ~cpu_index:4 ~nic_index:3

let test_ilp_tiny () =
  let inst = homog (Helpers.instance ~n:5 ~seed:3 ()) in
  let model =
    Ilp_model.build inst.Instance.app inst.Instance.platform ~max_procs:3
  in
  (match Ilp_model.lower_bound model with
  | Some b -> Alcotest.(check bool) "bound positive" true (b > 0.0)
  | None -> Alcotest.fail "relaxation should be feasible");
  match Ilp_model.solve ~node_limit:5000 model with
  | Some (n_procs, groups) ->
    Alcotest.(check bool) "few procs" true (n_procs >= 1 && n_procs <= 3);
    let all = Array.to_list groups |> List.concat |> List.sort compare in
    Alcotest.(check (list int)) "partition" [ 0; 1; 2; 3; 4 ] all
  | None -> Alcotest.fail "expected ILP solution"

let test_ilp_requires_homogeneous () =
  let inst = Helpers.instance ~n:5 ~seed:3 () in
  Alcotest.check_raises "heterogeneous rejected"
    (Invalid_argument "Ilp_model.build: platform must be homogeneous \
                       (CONSTR-HOM)") (fun () ->
      ignore (Ilp_model.build inst.Instance.app inst.Instance.platform ~max_procs:2))

let test_exact_requires_homogeneous () =
  let inst = Helpers.instance ~n:5 ~seed:3 () in
  match Exact.solve inst.Instance.app inst.Instance.platform with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "heterogeneous platform must be rejected"

let exact_gen =
  QCheck.map
    (fun (seed, n) -> (seed, n))
    QCheck.(pair (int_range 0 500) (int_range 3 12))

let exact_beats_heuristics =
  qtest ~count:25 "exact optimum <= every heuristic (homogeneous)" exact_gen
    (fun (seed, n) ->
      let inst = homog (Helpers.instance ~n ~seed ()) in
      match Exact.solve ~node_limit:300_000 inst.Instance.app inst.Instance.platform with
      | Error _ -> true (* infeasible or truncated: nothing to compare *)
      | Ok r ->
        (not r.Exact.proven)
        || List.for_all
             (fun (_, res) ->
               match res with
               | Ok (o : Solve.outcome) -> r.Exact.cost <= o.cost +. 1e-6
               | Error _ -> true)
             (Solve.run_all ~seed inst.Instance.app inst.Instance.platform))

let exact_solution_feasible =
  qtest ~count:25 "exact solutions pass the checker" exact_gen
    (fun (seed, n) ->
      let inst = homog (Helpers.instance ~n ~seed ()) in
      match Exact.solve ~node_limit:300_000 inst.Instance.app inst.Instance.platform with
      | Error _ -> true
      | Ok r ->
        Check.check inst.Instance.app inst.Instance.platform r.Exact.alloc = [])

let exact_respects_lower_bound =
  qtest ~count:25 "exact >= quick lower bound" exact_gen (fun (seed, n) ->
      let inst = homog (Helpers.instance ~n ~seed ()) in
      match Exact.solve ~node_limit:300_000 inst.Instance.app inst.Instance.platform with
      | Error _ -> true
      | Ok r ->
        r.Exact.n_procs
        >= Exact.lower_bound_procs inst.Instance.app inst.Instance.platform)

let test_exact_matches_ilp_on_small () =
  (* Cross-validate the two exact methods on a handful of tiny
     instances. *)
  List.iter
    (fun seed ->
      let inst = homog (Helpers.instance ~n:5 ~seed ()) in
      let exact =
        match Exact.solve inst.Instance.app inst.Instance.platform with
        | Ok r -> Some r.Exact.n_procs
        | Error _ -> None
      in
      let ilp =
        let model =
          Ilp_model.build inst.Instance.app inst.Instance.platform ~max_procs:4
        in
        Option.map fst (Ilp_model.solve ~node_limit:20_000 model)
      in
      match (exact, ilp) with
      | Some a, Some b ->
        (* The ILP omits constraint (5); it may be at most lower. *)
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: ilp (%d) <= exact (%d)" seed b a)
          true (b <= a)
      | _ -> ())
    [ 1; 2; 3 ]

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "max basic" `Quick test_lp_max_basic;
          Alcotest.test_case "min with >=" `Quick test_lp_min_with_ge;
          Alcotest.test_case "equality" `Quick test_lp_equality;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_lp_negative_rhs;
          Alcotest.test_case "degenerate (Beale)" `Quick test_lp_degenerate;
          lp_random_feasible;
        ] );
      ( "milp",
        [
          Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
          Alcotest.test_case "integrality" `Quick test_milp_integrality;
          Alcotest.test_case "integer-infeasible" `Quick
            test_milp_infeasible_integer;
          milp_solution_is_integral;
        ] );
      ( "ilp+exact",
        [
          Alcotest.test_case "ilp tiny" `Quick test_ilp_tiny;
          Alcotest.test_case "ilp needs CONSTR-HOM" `Quick
            test_ilp_requires_homogeneous;
          Alcotest.test_case "exact needs CONSTR-HOM" `Quick
            test_exact_requires_homogeneous;
          Alcotest.test_case "exact vs ilp" `Quick test_exact_matches_ilp_on_small;
          exact_beats_heuristics;
          exact_solution_feasible;
          exact_respects_lower_bound;
        ] );
    ]

(* Tests for the placement builder, the six heuristics, server selection
   and the downgrade step.

   The central property (the paper's correctness requirement): every
   outcome a heuristic returns passes the full constraint checker. *)

module Builder = Insp.Builder
module Common = Insp_heuristics.Common
module Solve = Insp.Solve
module Server_select = Insp.Server_select
module Downgrade = Insp.Downgrade
module Alloc = Insp.Alloc
module Check = Insp.Check
module Cost = Insp.Cost
module Catalog = Insp.Catalog
module Platform = Insp.Platform
module Demand = Insp.Demand
module Prng = Insp.Prng

let qtest = Helpers.qtest

let tiny_env () = (Helpers.tiny_app (), Helpers.tiny_platform ())

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)

let test_builder_acquire_and_add () =
  let app, platform = tiny_env () in
  let b = Builder.create app platform in
  Alcotest.(check (list int)) "all unassigned" [ 0; 1; 2; 3 ]
    (Builder.unassigned b);
  let best = Catalog.best platform.Platform.catalog in
  (match Builder.acquire b ~config:best ~members:[ 0 ] with
  | Ok gid ->
    Alcotest.(check (list int)) "member" [ 0 ] (Builder.members b gid);
    Alcotest.(check (option int)) "assigned" (Some gid)
      (Builder.assignment b 0);
    Alcotest.(check bool) "add n1" true (Builder.try_add b gid 1);
    Alcotest.(check (list int)) "two members" [ 0; 1 ] (Builder.members b gid)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "not done yet" false (Builder.all_assigned b)

let test_builder_sell_releases () =
  let app, platform = tiny_env () in
  let b = Builder.create app platform in
  let best = Catalog.best platform.Platform.catalog in
  let gid = Result.get_ok (Builder.acquire b ~config:best ~members:[ 0; 1 ]) in
  Builder.sell b gid;
  Alcotest.(check (list int)) "released" [ 0; 1; 2; 3 ] (Builder.unassigned b);
  Alcotest.(check (list int)) "no groups" [] (Builder.group_ids b)

let test_builder_absorb () =
  let app, platform = tiny_env () in
  let b = Builder.create app platform in
  let best = Catalog.best platform.Platform.catalog in
  let g1 = Result.get_ok (Builder.acquire b ~config:best ~members:[ 0; 1 ]) in
  let g2 = Result.get_ok (Builder.acquire b ~config:best ~members:[ 2; 3 ]) in
  Alcotest.(check bool) "absorb ok" true (Builder.try_absorb b g1 g2);
  Alcotest.(check (list int)) "merged" [ 0; 1; 2; 3 ] (Builder.members b g1);
  Alcotest.(check (list int)) "one group" [ g1 ] (Builder.group_ids b)

let test_builder_rejects_pair_flow () =
  (* Shrink the inter-processor link below the n2->n0 edge (50 MB/s):
     splitting that edge must be rejected. *)
  let app = Helpers.tiny_app () in
  let holds = [| [| true; true; false |]; [| true; false; true |] |] in
  let servers = Insp.Servers.make ~cards:[| 10000.0; 10000.0 |] ~holds in
  let platform =
    Platform.make ~catalog:Catalog.dell_2008 ~servers ~proc_link:40.0 ()
  in
  let b = Builder.create app platform in
  let best = Catalog.best platform.Platform.catalog in
  let g1 = Result.get_ok (Builder.acquire b ~config:best ~members:[ 0; 1 ]) in
  (match Builder.acquire b ~config:best ~members:[ 2; 3 ] with
  | Ok _ -> Alcotest.fail "should reject: edge n2->n0 exceeds the link"
  | Error _ -> ());
  (* But placing all four together is fine (the heavy edge becomes
     internal); the overlapping group must be excluded from the
     pair-flow check. *)
  Alcotest.(check bool) "co-located ok" true
    (Builder.can_host b ~config:best ~members:[ 0; 1; 2; 3 ]
       ~ignore_groups:[ g1 ] ())

let test_builder_finalize_incomplete () =
  let app, platform = tiny_env () in
  let b = Builder.create app platform in
  match Builder.finalize b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "finalize must fail with unassigned operators"

let test_builder_upgrade_variants () =
  let app, platform = tiny_env () in
  let b = Builder.create app platform in
  let cheapest = Catalog.cheapest platform.Platform.catalog in
  let gid = Result.get_ok (Builder.acquire b ~config:cheapest ~members:[ 3 ]) in
  (* tiny app is light: plain add already fits, upgrade keeps it cheap *)
  Alcotest.(check bool) "add upgrade" true (Builder.try_add_upgrade b gid 2);
  Alcotest.(check (list int)) "members" [ 2; 3 ] (Builder.members b gid)

(* ------------------------------------------------------------------ *)
(* Heuristic correctness on random instances                           *)

let heuristic_outcomes_pass_checker =
  qtest ~count:60 "every heuristic outcome passes the checker"
    Helpers.small_instance_gen (fun inst ->
      List.for_all
        (fun (_, r) ->
          match r with
          | Ok (o : Solve.outcome) -> Helpers.check_feasible inst o.alloc = []
          | Error _ -> true)
        (Solve.run_all ~seed:11 inst.Insp.Instance.app
           inst.Insp.Instance.platform))

let heuristic_outcomes_complete =
  qtest ~count:60 "outcomes assign every operator"
    Helpers.small_instance_gen (fun inst ->
      let n = Insp.App.n_operators inst.Insp.Instance.app in
      List.for_all
        (fun (_, r) ->
          match r with
          | Ok (o : Solve.outcome) -> Alloc.n_operators_assigned o.alloc = n
          | Error _ -> true)
        (Solve.run_all ~seed:3 inst.Insp.Instance.app
           inst.Insp.Instance.platform))

let heuristic_cost_matches_alloc =
  qtest ~count:40 "reported cost matches the allocation"
    Helpers.small_instance_gen (fun inst ->
      let catalog = inst.Insp.Instance.platform.Platform.catalog in
      List.for_all
        (fun (_, r) ->
          match r with
          | Ok (o : Solve.outcome) ->
            Helpers.float_eq o.cost (Cost.of_alloc catalog o.alloc)
            && o.n_procs = Alloc.n_procs o.alloc
          | Error _ -> true)
        (Solve.run_all ~seed:5 inst.Insp.Instance.app
           inst.Insp.Instance.platform))

let deterministic_heuristics_stable =
  qtest ~count:30 "deterministic heuristics ignore the seed"
    Helpers.small_instance_gen (fun inst ->
      let app = inst.Insp.Instance.app in
      let platform = inst.Insp.Instance.platform in
      List.for_all
        (fun h ->
          h.Solve.randomized
          ||
          let a = Solve.run ~seed:1 h app platform in
          let b = Solve.run ~seed:99 h app platform in
          match (a, b) with
          | Ok oa, Ok ob ->
            Helpers.float_eq oa.Solve.cost ob.Solve.cost
            && oa.Solve.n_procs = ob.Solve.n_procs
          | Error _, Error _ -> true
          | _ -> false)
        Solve.all)

let random_heuristic_reproducible =
  qtest ~count:30 "Random heuristic reproducible per seed"
    Helpers.small_instance_gen (fun inst ->
      let app = inst.Insp.Instance.app in
      let platform = inst.Insp.Instance.platform in
      let h = List.find (fun h -> h.Solve.key = "random") Solve.all in
      match (Solve.run ~seed:42 h app platform, Solve.run ~seed:42 h app platform) with
      | Ok a, Ok b -> Helpers.float_eq a.Solve.cost b.Solve.cost
      | Error _, Error _ -> true
      | _ -> false)

let test_find_heuristics () =
  Alcotest.(check int) "six heuristics" 6 (List.length Solve.all);
  Alcotest.(check bool) "find by key" true (Solve.find "sbu" <> None);
  Alcotest.(check bool) "find by name" true
    (Solve.find "subtree-bottom-up" <> None);
  Alcotest.(check bool) "unknown" true (Solve.find "nope" = None)

let test_heuristics_tiny_instance () =
  (* On the tiny app everything fits one processor; every deterministic
     heuristic should find a feasible (not necessarily 1-proc)
     solution. *)
  let app, platform = tiny_env () in
  List.iter
    (fun h ->
      match Solve.run ~seed:1 h app platform with
      | Ok o ->
        Alcotest.(check bool)
          (h.Solve.name ^ " feasible") true
          (Check.check app platform o.Solve.alloc = [])
      | Error f ->
        Alcotest.fail (h.Solve.name ^ ": " ^ Solve.failure_message f))
    Solve.all

(* ------------------------------------------------------------------ *)
(* Server selection                                                    *)

let test_server_selection_covers_needs () =
  let app, platform = tiny_env () in
  let groups = [| [ 0; 1 ]; [ 2; 3 ] |] in
  match Server_select.sophisticated app platform ~groups with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Alcotest.(check int) "two plans" 2 (Array.length plan);
    Alcotest.(check (list int)) "P0 needs o0 o1" [ 0; 1 ]
      (List.map fst plan.(0));
    Alcotest.(check (list int)) "P1 needs o0 o2" [ 0; 2 ]
      (List.map fst plan.(1));
    (* o1 only on S0; o2 only on S1 (exclusive loop). *)
    Alcotest.(check (option int)) "o1 from S0" (Some 0)
      (List.assoc_opt 1 plan.(0));
    Alcotest.(check (option int)) "o2 from S1" (Some 1)
      (List.assoc_opt 2 plan.(1))

let test_server_selection_fails_when_exclusive_saturated () =
  (* o1 exclusively on S0 whose card cannot even carry it. *)
  let app = Helpers.tiny_app () in
  let holds = [| [| true; true; false |]; [| true; false; true |] |] in
  let servers = Insp.Servers.make ~cards:[| 8.0; 10000.0 |] ~holds in
  let platform = Platform.make ~catalog:Catalog.dell_2008 ~servers () in
  (* o1 rate = 10 > 8 *)
  match Server_select.sophisticated app platform ~groups:[| [ 0; 1; 2; 3 ] |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must fail: exclusive server saturated"

let test_random_selection_valid () =
  let app, platform = tiny_env () in
  let groups = [| [ 0; 1 ]; [ 2; 3 ] |] in
  match Server_select.random (Prng.create 4) app platform ~groups with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Array.iteri
      (fun u per_proc ->
        List.iter
          (fun (k, l) ->
            Alcotest.(check bool)
              (Printf.sprintf "P%d o%d held by S%d" u k l)
              true
              (Insp.Servers.holds platform.Platform.servers l k))
          per_proc)
      plan

let selection_respects_capacities =
  qtest ~count:40 "sophisticated selection respects server capacities"
    Helpers.small_instance_gen (fun inst ->
      let app = inst.Insp.Instance.app in
      let platform = inst.Insp.Instance.platform in
      (* Build a plausible grouping with the SBU heuristic's placement. *)
      let h = List.find (fun h -> h.Solve.key = "sbu") Solve.all in
      match h.Solve.run (Prng.create 0) app platform with
      | Error _ -> true
      | Ok builder -> (
        match Builder.finalize builder with
        | Error _ -> true
        | Ok (groups, configs) -> (
          match Server_select.sophisticated app platform ~groups with
          | Error _ -> true
          | Ok downloads ->
            let alloc = Alloc.of_groups ~configs ~groups ~downloads in
            (* No server-side violation may remain. *)
            List.for_all
              (function
                | Check.Server_card_overload _
                | Check.Server_link_overload _
                | Check.Missing_download _
                | Check.Not_held _ -> false
                | _ -> true)
              (Check.check app platform alloc))))

(* ------------------------------------------------------------------ *)
(* Downgrade                                                           *)

let downgrade_preserves_feasibility_and_cost =
  qtest ~count:40 "downgrade keeps feasibility and never raises cost"
    Helpers.small_instance_gen (fun inst ->
      let app = inst.Insp.Instance.app in
      let platform = inst.Insp.Instance.platform in
      let catalog = platform.Platform.catalog in
      let h = List.find (fun h -> h.Solve.key = "comp") Solve.all in
      match h.Solve.run (Prng.create 0) app platform with
      | Error _ -> true
      | Ok builder -> (
        match Builder.finalize builder with
        | Error _ -> true
        | Ok (groups, configs) -> (
          match Server_select.sophisticated app platform ~groups with
          | Error _ -> true
          | Ok downloads ->
            let alloc = Alloc.of_groups ~configs ~groups ~downloads in
            let before = Cost.of_alloc catalog alloc in
            let down = Downgrade.run app platform alloc in
            let after = Cost.of_alloc catalog down in
            after <= before +. 1e-6
            && (Check.check app platform alloc <> []
               || Check.check app platform down = []))))

let test_downgrade_tiny () =
  let app, platform = tiny_env () in
  let alloc =
    Alloc.make
      [|
        {
          Alloc.config = Catalog.best platform.Platform.catalog;
          operators = [ 0; 1; 2; 3 ];
          downloads = [ (0, 0); (1, 0); (2, 1) ];
        };
      |]
  in
  let down = Downgrade.run app platform alloc in
  (* 170 Mops/s and 35 MB/s fit the cheapest model. *)
  Helpers.alco_float "downgraded to chassis price" 7548.0
    (Cost.of_alloc platform.Platform.catalog down);
  Alcotest.(check string) "still feasible" "feasible"
    (Check.explain (Check.check app platform down))

(* ------------------------------------------------------------------ *)
(* Ablation knobs                                                      *)

let test_collapse_rounds_scoped () =
  (* The knob must restore its previous value, even on exceptions. *)
  let probe () =
    (* observable effect: a 3-op heavy chain needs > 1 round *)
    ()
  in
  Common.with_collapse_rounds 1 probe;
  (try
     Common.with_collapse_rounds 2 (fun () -> failwith "boom")
   with Failure _ -> ());
  (* No direct getter; instead verify behaviour is back to default by
     solving a chain instance that *requires* multi-round collapse. *)
  let inst = Helpers.instance ~n:100 ~alpha:0.9 ~seed:1 () in
  let sbu = List.find (fun h -> h.Solve.key = "sbu") Solve.all in
  let with_default =
    Solve.run ~seed:1 sbu inst.Insp.Instance.app inst.Insp.Instance.platform
  in
  let with_one =
    Common.with_collapse_rounds 1 (fun () ->
        Solve.run ~seed:1 sbu inst.Insp.Instance.app
          inst.Insp.Instance.platform)
  in
  (* Default must do at least as well as the single-round variant. *)
  match (with_default, with_one) with
  | Ok a, Ok b ->
    Alcotest.(check bool) "default no worse" true
      (a.Solve.cost <= b.Solve.cost +. 1e-6)
  | Ok _, Error _ -> () (* single round failed where default succeeded *)
  | Error _, Ok _ -> Alcotest.fail "default failed where 1 round succeeded"
  | Error _, Error _ -> ()

let test_merge_sweeps_scoped () =
  let comm = List.find (fun h -> h.Solve.key = "comm") Solve.all in
  let inst =
    Insp.Instance.generate
      (Insp.Config.make ~n_operators:30 ~alpha:0.9 ~sizes:Insp.Config.Large
         ~seed:1 ())
  in
  let run () =
    Solve.run ~seed:1 comm inst.Insp.Instance.app inst.Insp.Instance.platform
  in
  let with_sweeps = run () in
  let without =
    Insp_heuristics.H_comm_greedy.with_merge_sweeps false run
  in
  let again = run () in
  (match (with_sweeps, without) with
  | Ok a, Ok b ->
    Alcotest.(check bool) "sweeps never hurt" true
      (a.Solve.cost <= b.Solve.cost +. 1e-6)
  | _ -> ());
  match (with_sweeps, again) with
  | Ok a, Ok c ->
    Helpers.alco_float "flag restored (same cost again)" a.Solve.cost
      c.Solve.cost
  | Error _, Error _ -> ()
  | _ -> Alcotest.fail "flag not restored"

let () =
  Alcotest.run "heuristics"
    [
      ( "builder",
        [
          Alcotest.test_case "acquire/add" `Quick test_builder_acquire_and_add;
          Alcotest.test_case "sell releases" `Quick test_builder_sell_releases;
          Alcotest.test_case "absorb" `Quick test_builder_absorb;
          Alcotest.test_case "pair-flow rejection" `Quick
            test_builder_rejects_pair_flow;
          Alcotest.test_case "finalize incomplete" `Quick
            test_builder_finalize_incomplete;
          Alcotest.test_case "upgrade variants" `Quick
            test_builder_upgrade_variants;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "registry" `Quick test_find_heuristics;
          Alcotest.test_case "tiny instance all feasible" `Quick
            test_heuristics_tiny_instance;
          heuristic_outcomes_pass_checker;
          heuristic_outcomes_complete;
          heuristic_cost_matches_alloc;
          deterministic_heuristics_stable;
          random_heuristic_reproducible;
        ] );
      ( "server_selection",
        [
          Alcotest.test_case "covers needs" `Quick
            test_server_selection_covers_needs;
          Alcotest.test_case "exclusive saturated fails" `Quick
            test_server_selection_fails_when_exclusive_saturated;
          Alcotest.test_case "random selection valid" `Quick
            test_random_selection_valid;
          selection_respects_capacities;
        ] );
      ( "downgrade",
        [
          Alcotest.test_case "tiny" `Quick test_downgrade_tiny;
          downgrade_preserves_feasibility_and_cost;
        ] );
      ( "ablation_knobs",
        [
          Alcotest.test_case "collapse rounds scoped" `Quick
            test_collapse_rounds_scoped;
          Alcotest.test_case "merge sweeps scoped" `Quick
            test_merge_sweeps_scoped;
        ] );
    ]

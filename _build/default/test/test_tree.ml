(* Tests for the application model: object catalog, operator trees,
   generators, cost propagation, metrics and DOT export. *)

module Objects = Insp.Objects
module Optree = Insp.Optree
module App = Insp.App
module Generate = Insp.Generate
module Prng = Insp.Prng

let qtest = Helpers.qtest

(* ------------------------------------------------------------------ *)
(* Objects                                                             *)

let test_objects_basic () =
  let o = Objects.make ~sizes:[| 10.0; 20.0 |] ~freqs:[| 0.5; 0.02 |] in
  Alcotest.(check int) "count" 2 (Objects.count o);
  Helpers.alco_float "size" 20.0 (Objects.size o 1);
  Helpers.alco_float "rate = size*freq" 5.0 (Objects.rate o 0);
  Helpers.alco_float "low rate" 0.4 (Objects.rate o 1);
  let o' = Objects.with_freq o 0.1 in
  Helpers.alco_float "with_freq keeps size" 10.0 (Objects.size o' 0);
  Helpers.alco_float "with_freq rate" 1.0 (Objects.rate o' 0)

let test_objects_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Objects.make: empty catalog")
    (fun () -> ignore (Objects.make ~sizes:[||] ~freqs:[||]));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Objects.make: sizes and freqs length mismatch")
    (fun () -> ignore (Objects.make ~sizes:[| 1.0 |] ~freqs:[| 1.0; 2.0 |]));
  Alcotest.check_raises "bad size"
    (Invalid_argument "Objects.make: non-positive size") (fun () ->
      ignore (Objects.make ~sizes:[| 0.0 |] ~freqs:[| 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Optree structure                                                    *)

let fig1a_tree () =
  (* The paper's Figure 1(a) shape; our ids are preorder, so they differ
     from the paper's labels. *)
  let open Optree in
  of_spec ~n_object_types:3
    (Op (Op (Op1 (Obj 0), Op (Obj 0, Obj 1)), Op (Obj 1, Obj 2)))

let test_preorder_ids () =
  let t = fig1a_tree () in
  Alcotest.(check int) "n_operators" 5 (Optree.n_operators t);
  Alcotest.(check int) "root" 0 (Optree.root t);
  Alcotest.(check (list int)) "preorder" [ 0; 1; 2; 3; 4 ] (Optree.preorder t);
  Alcotest.(check (list int)) "postorder" [ 2; 3; 1; 4; 0 ]
    (Optree.postorder t);
  Alcotest.(check (list int)) "root children" [ 1; 4 ] (Optree.children t 0);
  Alcotest.(check (option int)) "parent of 3" (Some 1) (Optree.parent t 3);
  Alcotest.(check (option int)) "root has no parent" None (Optree.parent t 0)

let test_leaves_and_al () =
  let t = fig1a_tree () in
  Alcotest.(check (list int)) "n2 leaves" [ 0 ] (Optree.leaves t 2);
  Alcotest.(check (list int)) "n3 leaves" [ 0; 1 ] (Optree.leaves t 3);
  Alcotest.(check (list int)) "root leaves" [] (Optree.leaves t 0);
  Alcotest.(check (list int)) "al operators" [ 2; 3; 4 ] (Optree.al_operators t);
  Alcotest.(check bool) "n0 not al" false (Optree.is_al_operator t 0);
  Alcotest.(check bool) "n4 al" true (Optree.is_al_operator t 4)

let test_depth_height_subtree () =
  let t = fig1a_tree () in
  Alcotest.(check int) "depth root" 0 (Optree.depth t 0);
  Alcotest.(check int) "depth n2" 2 (Optree.depth t 2);
  Alcotest.(check int) "height" 2 (Optree.height t);
  Alcotest.(check (list int)) "subtree of 1" [ 1; 2; 3 ] (Optree.subtree t 1);
  Alcotest.(check (list int)) "subtree of leaf op" [ 4 ] (Optree.subtree t 4)

let test_popularity () =
  let t = fig1a_tree () in
  (* o0 used by n2 and n3; o1 by n3 and n4; o2 by n4. *)
  Alcotest.(check (array int)) "popularity" [| 2; 2; 1 |]
    (Optree.object_popularity t)

let test_leaf_instances () =
  let t = fig1a_tree () in
  Alcotest.(check (list (pair int int))) "instances"
    [ (2, 0); (3, 0); (3, 1); (4, 1); (4, 2) ]
    (List.sort compare (Optree.leaf_instances t))

let test_of_spec_validation () =
  Alcotest.check_raises "bare object root"
    (Invalid_argument "Optree.of_spec: root must be an operator") (fun () ->
      ignore (Optree.of_spec ~n_object_types:1 (Optree.Obj 0)));
  Alcotest.check_raises "object out of range"
    (Invalid_argument "Optree.of_spec: object type out of range") (fun () ->
      ignore (Optree.of_spec ~n_object_types:1 (Optree.Op1 (Optree.Obj 3))))

let test_validate_ok () =
  match Optree.validate (fig1a_tree ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_left_deep () =
  let t = Optree.left_deep ~n_operators:4 ~objects:[| 0; 1; 2; 3; 4 |] in
  Alcotest.(check int) "ops" 4 (Optree.n_operators t);
  (* Every operator is an al-operator in a left-deep tree. *)
  Alcotest.(check (list int)) "all al" [ 0; 1; 2; 3 ] (Optree.al_operators t);
  Alcotest.(check int) "height = chain" 3 (Optree.height t);
  Alcotest.(check (list int)) "root leaf is objects[0]" [ 0 ]
    (Optree.leaves t 0);
  Alcotest.(check (list int)) "deepest has two leaves" [ 3; 4 ]
    (Optree.leaves t 3)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let gen_params = QCheck.(pair (int_range 0 5000) (int_range 1 80))

let gen_shape_valid =
  qtest "random_shape structurally valid" gen_params (fun (seed, n) ->
      let t =
        Generate.random_shape (Prng.create seed) ~n_operators:n
          ~n_object_types:15
      in
      Optree.validate t = Ok ())

let gen_shape_counts =
  qtest "random_shape has N ops and N+1 leaf instances" gen_params
    (fun (seed, n) ->
      let t =
        Generate.random_shape (Prng.create seed) ~n_operators:n
          ~n_object_types:15
      in
      Optree.n_operators t = n
      && List.length (Optree.leaf_instances t) = n + 1)

let gen_shape_binary =
  qtest "random_shape operators have exactly two inputs" gen_params
    (fun (seed, n) ->
      let t =
        Generate.random_shape (Prng.create seed) ~n_operators:n
          ~n_object_types:15
      in
      List.for_all
        (fun i ->
          List.length (Optree.children t i) + List.length (Optree.leaves t i)
          = 2)
        (Optree.preorder t))

let gen_balanced_height =
  qtest "balanced_shape has logarithmic height"
    QCheck.(int_range 1 200)
    (fun n ->
      let t = Generate.balanced_shape ~n_operators:n ~n_object_types:5 in
      let limit =
        2 + int_of_float (Float.ceil (Float.log2 (float_of_int (n + 1))))
      in
      Optree.validate t = Ok () && Optree.height t <= limit)

let gen_left_deep_valid =
  qtest "random_left_deep valid and all-al" gen_params (fun (seed, n) ->
      let t =
        Generate.random_left_deep (Prng.create seed) ~n_operators:n
          ~n_object_types:15
      in
      Optree.validate t = Ok () && List.length (Optree.al_operators t) = n)

let gen_sizes_in_range =
  qtest "random_sizes in range"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let sizes =
        Generate.random_sizes (Prng.create seed) ~n_object_types:15 ~lo:5.0
          ~hi:30.0
      in
      Array.length sizes = 15
      && Array.for_all (fun s -> s >= 5.0 && s < 30.0) sizes)

(* ------------------------------------------------------------------ *)
(* App cost propagation                                                *)

let test_app_tiny_values () =
  let app = Helpers.tiny_app () in
  Helpers.alco_float "w1" 30.0 (App.work app 1);
  Helpers.alco_float "w3" 10.0 (App.work app 3);
  Helpers.alco_float "w2" 50.0 (App.work app 2);
  Helpers.alco_float "w0" 80.0 (App.work app 0);
  Helpers.alco_float "d0" 80.0 (App.output_size app 0);
  Helpers.alco_float "total leaf mass = root output" (App.total_leaf_mass app)
    (App.output_size app 0);
  Helpers.alco_float "edge weight n2" 50.0 (App.edge_weight app 2);
  Helpers.alco_float "edge weight root" 0.0 (App.edge_weight app 0);
  Alcotest.(check int) "heaviest is root" 0 (App.heaviest_operator app);
  Helpers.alco_float "download rate o2" 20.0 (App.download_rate app 2)

let test_app_alpha_and_base () =
  let tree =
    Optree.of_spec ~n_object_types:1 (Optree.Op (Optree.Obj 0, Optree.Obj 0))
  in
  let objects = Objects.uniform_freq ~sizes:[| 4.0 |] ~freq:1.0 in
  let app = App.make ~tree ~objects ~alpha:2.0 () in
  Helpers.alco_float "w = (4+4)^2" 64.0 (App.work app 0);
  let app =
    App.make ~base_work:100.0 ~work_factor:0.5 ~tree ~objects ~alpha:2.0 ()
  in
  Helpers.alco_float "w = 100 + 0.5*64" 132.0 (App.work app 0);
  let app = App.make ~rho:3.0 ~tree ~objects ~alpha:1.0 () in
  Helpers.alco_float "comm_volume scales with rho" 24.0 (App.comm_volume app 0)

let test_app_validation () =
  let tree =
    Optree.of_spec ~n_object_types:2 (Optree.Op (Optree.Obj 0, Optree.Obj 1))
  in
  let objects = Objects.uniform_freq ~sizes:[| 1.0 |] ~freq:1.0 in
  Alcotest.check_raises "catalog too small"
    (Invalid_argument
       "App.make: tree references more object types than catalog") (fun () ->
      ignore (App.make ~tree ~objects ~alpha:1.0 ()))

let app_output_additive =
  qtest "root output = total leaf mass (additive outputs)" gen_params
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let tree = Generate.random_shape rng ~n_operators:n ~n_object_types:15 in
      let sizes =
        Generate.random_sizes rng ~n_object_types:15 ~lo:5.0 ~hi:30.0
      in
      let objects = Objects.uniform_freq ~sizes ~freq:0.5 in
      let app = App.make ~tree ~objects ~alpha:0.9 () in
      Helpers.float_eq ~eps:1e-6 (App.total_leaf_mass app)
        (App.output_size app 0))

let app_work_monotone_in_alpha =
  qtest "work grows with alpha (inputs > 1 MB)" gen_params (fun (seed, n) ->
      let rng = Prng.create seed in
      let tree = Generate.random_shape rng ~n_operators:n ~n_object_types:15 in
      let sizes =
        Generate.random_sizes rng ~n_object_types:15 ~lo:5.0 ~hi:30.0
      in
      let objects = Objects.uniform_freq ~sizes ~freq:0.5 in
      let lo = App.make ~tree ~objects ~alpha:0.9 () in
      let hi = App.make ~tree ~objects ~alpha:1.4 () in
      List.for_all
        (fun i -> App.work hi i >= App.work lo i)
        (Optree.preorder tree))

(* ------------------------------------------------------------------ *)
(* Metrics and DOT                                                     *)

let test_metrics () =
  let app = Helpers.tiny_app () in
  let m = Insp.Tree_metrics.compute app in
  Alcotest.(check int) "ops" 4 m.Insp.Tree_metrics.n_operators;
  Alcotest.(check int) "al ops" 3 m.Insp.Tree_metrics.n_al_operators;
  Alcotest.(check int) "leaf instances" 4 m.Insp.Tree_metrics.n_leaf_instances;
  Alcotest.(check int) "objects used" 3
    m.Insp.Tree_metrics.distinct_objects_used;
  Helpers.alco_float "total work" 170.0 m.Insp.Tree_metrics.total_work;
  (* downloads: n1 needs o0+o1 (5+10), n3 needs o0 (5), n2 needs o2 (20) *)
  Helpers.alco_float "download demand" 40.0
    m.Insp.Tree_metrics.total_download_rate

let test_dot () =
  let app = Helpers.tiny_app () in
  let dot = Insp.Dot.of_app app in
  let contains sub =
    let n = String.length dot and m = String.length sub in
    let rec go i = i + m <= n && (String.sub dot i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph");
  Alcotest.(check bool) "has n3" true (contains "n3");
  Alcotest.(check bool) "has leaf" true (contains "leaf0");
  Alcotest.(check bool) "edge" true (contains "n1 -> n0")

let () =
  Alcotest.run "tree"
    [
      ( "objects",
        [
          Alcotest.test_case "basic" `Quick test_objects_basic;
          Alcotest.test_case "validation" `Quick test_objects_validation;
        ] );
      ( "optree",
        [
          Alcotest.test_case "preorder ids" `Quick test_preorder_ids;
          Alcotest.test_case "leaves and al-ops" `Quick test_leaves_and_al;
          Alcotest.test_case "depth/height/subtree" `Quick
            test_depth_height_subtree;
          Alcotest.test_case "popularity" `Quick test_popularity;
          Alcotest.test_case "leaf instances" `Quick test_leaf_instances;
          Alcotest.test_case "of_spec validation" `Quick
            test_of_spec_validation;
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "left-deep" `Quick test_left_deep;
        ] );
      ( "generate",
        [
          gen_shape_valid;
          gen_shape_counts;
          gen_shape_binary;
          gen_balanced_height;
          gen_left_deep_valid;
          gen_sizes_in_range;
        ] );
      ( "app",
        [
          Alcotest.test_case "tiny values" `Quick test_app_tiny_values;
          Alcotest.test_case "alpha/base/factor/rho" `Quick
            test_app_alpha_and_base;
          Alcotest.test_case "validation" `Quick test_app_validation;
          app_output_additive;
          app_work_monotone_in_alpha;
        ] );
      ( "metrics+dot",
        [
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "dot export" `Quick test_dot;
        ] );
    ]

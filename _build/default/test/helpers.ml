(* Shared fixtures and generators for the test suites. *)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name gen prop)

(* A tiny hand-built application used by many mapping tests:

     n0
     +- n1 [o0, o1]
     +- n2
        +- n3 [o0]
        +- leaf o2

   sizes: o0 = 10 MB, o1 = 20 MB, o2 = 40 MB; freq 0.5/s; alpha = 1;
   no base work, factor 1.  So (bottom-up):
     w3 = 10,  d3 = 10
     w1 = 30,  d1 = 30
     w2 = 50,  d2 = 50   (inputs: n3 output 10 + o2 40)
     w0 = 80,  d0 = 80 *)
let tiny_app () =
  let open Insp.Optree in
  let spec = Op (Op (Obj 0, Obj 1), Op (Op1 (Obj 0), Obj 2)) in
  let tree = of_spec ~n_object_types:3 spec in
  let objects =
    Insp.Objects.uniform_freq ~sizes:[| 10.0; 20.0; 40.0 |] ~freq:0.5
  in
  Insp.App.make ~tree ~objects ~alpha:1.0 ()

(* A platform with two servers: S0 holds {o0, o1}, S1 holds {o0, o2}. *)
let tiny_platform () =
  let holds = [| [| true; true; false |]; [| true; false; true |] |] in
  let servers = Insp.Servers.make ~cards:[| 10000.0; 10000.0 |] ~holds in
  Insp.Platform.make ~catalog:Insp.Catalog.dell_2008 ~servers ()

(* Paper-style random instance. *)
let instance ?(n = 30) ?(alpha = 0.9) ?(sizes = Insp.Config.Small) ~seed () =
  Insp.Instance.generate (Insp.Config.make ~n_operators:n ~alpha ~sizes ~seed ())

(* QCheck generator of small paper-style instance *parameters*: keeping
   the raw (seed, n-index, alpha-index) triple as the test input
   preserves printing and shrinking; build the instance in the property
   with [instance_of_case]. *)
let instance_case =
  QCheck.(triple (int_range 0 2000) (int_range 0 3) (int_range 0 3))

let instance_of_case (seed, n_idx, a_idx) =
  let n = [| 5; 10; 20; 35 |].(n_idx) in
  let alpha = [| 0.7; 0.9; 1.2; 1.5 |].(a_idx) in
  instance ~n ~alpha ~seed ()

let small_instance_gen =
  QCheck.map instance_of_case instance_case

let check_feasible inst alloc =
  Insp.Check.check inst.Insp.Instance.app inst.Insp.Instance.platform alloc

let float_eq ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let alco_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" name expected actual)
    true (float_eq ~eps expected actual)

type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable length : int;
  mutable next_seq : int;
}

let create () = { data = [||]; length = 0; next_seq = 0 }

let is_empty h = h.length = 0

let size h = h.length

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < h.length && less h.data.(left) h.data.(!smallest) then smallest := left;
  if right < h.length && less h.data.(right) h.data.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let grow h =
  let capacity = Array.length h.data in
  if h.length = capacity then begin
    let new_capacity = max 8 (2 * capacity) in
    (* Placeholder slot reuses an existing entry; it is overwritten before
       becoming reachable. *)
    let filler =
      if capacity = 0 then None else Some h.data.(0)
    in
    match filler with
    | None -> h.data <- [||]
    | Some f ->
      let data = Array.make new_capacity f in
      Array.blit h.data 0 data 0 h.length;
      h.data <- data
  end

let push h key value =
  let entry = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.data = 0 then h.data <- Array.make 8 entry else grow h;
  h.data.(h.length) <- entry;
  h.length <- h.length + 1;
  sift_up h (h.length - 1)

let peek h =
  if h.length = 0 then None
  else begin
    let e = h.data.(0) in
    Some (e.key, e.value)
  end

let pop h =
  if h.length = 0 then None
  else begin
    let e = h.data.(0) in
    h.length <- h.length - 1;
    if h.length > 0 then begin
      h.data.(0) <- h.data.(h.length);
      sift_down h 0
    end;
    Some (e.key, e.value)
  end

let clear h =
  h.data <- [||];
  h.length <- 0;
  h.next_seq <- 0

let to_sorted_list h =
  let entries = Array.sub h.data 0 h.length in
  let copy = Array.to_list entries in
  let sorted =
    List.sort (fun a b -> if less a b then -1 else if less b a then 1 else 0) copy
  in
  List.map (fun e -> (e.key, e.value)) sorted

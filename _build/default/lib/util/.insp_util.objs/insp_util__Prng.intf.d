lib/util/prng.mli:

lib/util/table.mli:

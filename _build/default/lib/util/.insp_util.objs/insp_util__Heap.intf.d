lib/util/heap.mli:

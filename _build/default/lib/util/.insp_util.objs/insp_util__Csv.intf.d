lib/util/csv.mli:

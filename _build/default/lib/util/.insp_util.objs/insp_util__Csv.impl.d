lib/util/csv.ml: Buffer Float Fun List Printf String

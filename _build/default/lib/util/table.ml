type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : (string * align) list;
  mutable rows : row list;  (* reverse order *)
}

let create ?title headers = { title; headers; rows = [] }

let add_row t cells =
  let width = List.length t.headers in
  let n = List.length cells in
  if n > width then invalid_arg "Table.add_row: too many cells";
  let padded =
    if n = width then cells else cells @ List.init (width - n) (fun _ -> "")
  in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let missing = width - n in
    match align with
    | Left -> s ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ s
    | Center ->
      let left = missing / 2 in
      String.make left ' ' ^ s ^ String.make (missing - left) ' '

let render t =
  let headers = List.map fst t.headers in
  let aligns = List.map snd t.headers in
  let rows = List.rev t.rows in
  let cell_rows =
    List.filter_map (function Cells c -> Some c | Separator -> None) rows
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc cells -> max acc (String.length (List.nth cells i)))
          (String.length h) cell_rows)
      headers
  in
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_cells cells aligns =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        let a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a w cell);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | None -> ()
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n');
  rule ();
  emit_cells headers (List.map (fun _ -> Center) headers);
  rule ();
  List.iter
    (function
      | Cells cells -> emit_cells cells aligns
      | Separator -> rule ())
    rows;
  rule ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_float ?(decimals = 2) x =
  if Float.is_finite x then Printf.sprintf "%.*f" decimals x else "-"

let cell_opt_float ?(decimals = 2) = function
  | None -> "-"
  | Some x -> cell_float ~decimals x

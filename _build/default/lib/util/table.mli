(** Plain-text table rendering for experiment reports.

    The experiment harness prints every reproduced paper figure as an
    aligned text table (one row per x-axis point, one column per
    heuristic), so the output can be read in a terminal and diffed. *)

type align = Left | Right | Center

type t

val create : ?title:string -> (string * align) list -> t
(** [create headers] starts a table with the given column headers and
    alignments. *)

val add_row : t -> string list -> unit
(** Appends a row.  Rows shorter than the header are right-padded with
    empty cells; longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Inserts a horizontal rule at the current position. *)

val render : t -> string
(** Renders the table with box-drawing in ASCII. *)

val print : t -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val cell_float : ?decimals:int -> float -> string
(** Formats a float for a table cell; non-finite values render as ["-"]. *)

val cell_opt_float : ?decimals:int -> float option -> string
(** [None] renders as ["-"] (used for infeasible heuristic runs). *)

(** Union–find (disjoint sets) with path compression and union by rank.

    Used by the Comm-Greedy heuristic to track which operators have been
    merged onto the same processor group. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> int
(** [union t a b] merges the two sets and returns the representative of
    the merged set.  Merging an element with itself is a no-op. *)

val same : t -> int -> int -> bool

val size : t -> int -> int
(** Number of elements in the element's set. *)

val groups : t -> int list list
(** All sets, each as a sorted list of members; group order is by
    smallest member. *)

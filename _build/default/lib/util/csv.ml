type t = { header : string list; mutable rows : string list list }

let create header = { header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let float_cell x =
  if Float.is_nan x then "" else Printf.sprintf "%.6g" x

let add_floats t row = add_row t (List.map float_cell row)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_string t =
  let buf = Buffer.create 1024 in
  let emit row =
    Buffer.add_string buf (String.concat "," (List.map quote row));
    Buffer.add_char buf '\n'
  in
  emit t.header;
  List.iter emit (List.rev t.rows);
  Buffer.contents buf

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

(** Random application generation following the paper's methodology (§5):
    random binary operator trees whose leaves are basic objects drawn
    uniformly among a fixed number of object types. *)

val random_shape : Insp_util.Prng.t -> n_operators:int -> n_object_types:int -> Optree.t
(** [random_shape rng ~n_operators ~n_object_types] builds a uniformly
    recursive random binary tree with exactly [n_operators] internal
    nodes; every operator has exactly two inputs (operator children or
    object leaves), so the tree has [n_operators + 1] leaf instances.
    Leaf object types are drawn uniformly.  Requires [n_operators >= 1]
    and [n_object_types >= 1]. *)

val balanced_shape : n_operators:int -> n_object_types:int -> Optree.t
(** Deterministic near-complete binary tree, leaves labelled round-robin
    over object types.  Handy for tests and examples. *)

val random_left_deep : Insp_util.Prng.t -> n_operators:int -> n_object_types:int -> Optree.t
(** Left-deep chain with random leaf types (the shape used in the paper's
    NP-hardness discussion). *)

val random_sizes : Insp_util.Prng.t -> n_object_types:int -> lo:float -> hi:float -> float array
(** One uniformly drawn size per object type, in MB. *)

type t = { sizes : float array; freqs : float array }

let make ~sizes ~freqs =
  let n = Array.length sizes in
  if n = 0 then invalid_arg "Objects.make: empty catalog";
  if Array.length freqs <> n then
    invalid_arg "Objects.make: sizes and freqs length mismatch";
  Array.iter
    (fun s -> if s <= 0.0 then invalid_arg "Objects.make: non-positive size")
    sizes;
  Array.iter
    (fun f -> if f <= 0.0 then invalid_arg "Objects.make: non-positive freq")
    freqs;
  { sizes = Array.copy sizes; freqs = Array.copy freqs }

let uniform_freq ~sizes ~freq =
  make ~sizes ~freqs:(Array.make (Array.length sizes) freq)

let count t = Array.length t.sizes
let size t k = t.sizes.(k)
let freq t k = t.freqs.(k)
let rate t k = t.sizes.(k) *. t.freqs.(k)

let with_freq t freq =
  uniform_freq ~sizes:t.sizes ~freq

let sizes t = Array.copy t.sizes

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun k s ->
      Format.fprintf ppf "o%d: %.1f MB @ %.3f/s (rate %.2f MB/s)@ " k s
        t.freqs.(k) (rate t k))
    t.sizes;
  Format.fprintf ppf "@]"

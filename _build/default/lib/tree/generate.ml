module Prng = Insp_util.Prng

let random_shape rng ~n_operators ~n_object_types =
  if n_operators < 1 then invalid_arg "Generate.random_shape: n_operators >= 1";
  if n_object_types < 1 then
    invalid_arg "Generate.random_shape: n_object_types >= 1";
  let leaf () = Optree.Obj (Prng.int rng n_object_types) in
  (* [build n] produces a subtree with exactly [n] operators.  With n = 0
     the input is a bare object leaf.  The split point is uniform, which
     yields a healthy mix of skewed and balanced shapes. *)
  let rec build n =
    if n = 0 then leaf ()
    else begin
      let left_ops = Prng.int rng n in
      let right_ops = n - 1 - left_ops in
      Optree.Op (build left_ops, build right_ops)
    end
  in
  Optree.of_spec ~n_object_types (build n_operators)

let balanced_shape ~n_operators ~n_object_types =
  if n_operators < 1 then invalid_arg "Generate.balanced_shape: n_operators >= 1";
  if n_object_types < 1 then
    invalid_arg "Generate.balanced_shape: n_object_types >= 1";
  let next_obj = ref 0 in
  let leaf () =
    let k = !next_obj mod n_object_types in
    incr next_obj;
    Optree.Obj k
  in
  let rec build n =
    if n = 0 then leaf ()
    else begin
      let left_ops = (n - 1) / 2 in
      Optree.Op (build left_ops, build (n - 1 - left_ops))
    end
  in
  Optree.of_spec ~n_object_types (build n_operators)

let random_left_deep rng ~n_operators ~n_object_types =
  if n_operators < 1 then
    invalid_arg "Generate.random_left_deep: n_operators >= 1";
  let objects =
    Array.init (n_operators + 1) (fun _ -> Prng.int rng n_object_types)
  in
  (* left_deep infers the object-type count from the labels; rebuild the
     spec here so the declared catalog keeps its full width. *)
  let rec build i =
    if i = n_operators - 1 then
      Optree.Op (Optree.Obj objects.(i), Optree.Obj objects.(i + 1))
    else Optree.Op (build (i + 1), Optree.Obj objects.(i))
  in
  Optree.of_spec ~n_object_types (build 0)

let random_sizes rng ~n_object_types ~lo ~hi =
  if lo <= 0.0 || hi < lo then invalid_arg "Generate.random_sizes: bad range";
  Array.init n_object_types (fun _ -> Prng.float_range rng lo hi)

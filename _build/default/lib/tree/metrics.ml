type t = {
  n_operators : int;
  n_leaf_instances : int;
  n_al_operators : int;
  height : int;
  total_work : float;
  max_work : float;
  root_output : float;
  total_download_rate : float;
  distinct_objects_used : int;
}

let compute app =
  let tree = App.tree app in
  let leaf_instances = Optree.leaf_instances tree in
  let distinct =
    List.sort_uniq compare (List.map snd leaf_instances) |> List.length
  in
  let total_download_rate =
    (* One download per (operator, object type) pair: an operator needing
       the same object type twice downloads it once. *)
    List.sort_uniq compare leaf_instances
    |> List.fold_left (fun acc (_, k) -> acc +. App.download_rate app k) 0.0
  in
  {
    n_operators = App.n_operators app;
    n_leaf_instances = List.length leaf_instances;
    n_al_operators = List.length (Optree.al_operators tree);
    height = Optree.height tree;
    total_work = App.total_work app;
    max_work = App.work app (App.heaviest_operator app);
    root_output = App.output_size app (Optree.root tree);
    total_download_rate;
    distinct_objects_used = distinct;
  }

let pp ppf m =
  Format.fprintf ppf
    "@[<v>operators: %d (al: %d), leaf instances: %d, height: %d@ \
     work: total %.1f Mops, max %.1f Mops@ \
     root output: %.1f MB, max download demand: %.1f MB/s, objects used: %d@]"
    m.n_operators m.n_al_operators m.n_leaf_instances m.height m.total_work
    m.max_work m.root_output m.total_download_rate m.distinct_objects_used

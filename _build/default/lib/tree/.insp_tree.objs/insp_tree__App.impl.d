lib/tree/app.ml: Array Format List Objects Optree

lib/tree/dot.ml: App Buffer Fun List Optree Printf

lib/tree/generate.mli: Insp_util Optree

lib/tree/app.mli: Format Objects Optree

lib/tree/optree.mli: Format

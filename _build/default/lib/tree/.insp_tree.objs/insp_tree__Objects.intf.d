lib/tree/objects.mli: Format

lib/tree/generate.ml: Array Insp_util Optree

lib/tree/dot.mli: App Optree

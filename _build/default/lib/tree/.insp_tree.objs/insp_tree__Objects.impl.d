lib/tree/objects.ml: Array Format

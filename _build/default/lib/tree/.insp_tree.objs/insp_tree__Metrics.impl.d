lib/tree/metrics.ml: App Format List Optree

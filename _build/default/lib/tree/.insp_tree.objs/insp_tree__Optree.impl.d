lib/tree/optree.ml: Array Format List Printf String

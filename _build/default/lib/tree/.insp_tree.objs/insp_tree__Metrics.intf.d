lib/tree/metrics.mli: App Format

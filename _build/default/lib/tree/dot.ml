let emit ?app tree =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph operator_tree {\n";
  Buffer.add_string buf "  rankdir=BT;\n";
  let n = Optree.n_operators tree in
  for i = 0 to n - 1 do
    let label =
      match app with
      | None -> Printf.sprintf "n%d" i
      | Some a ->
        Printf.sprintf "n%d\\nw=%.1f\\nd=%.1f" i (App.work a i)
          (App.output_size a i)
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [shape=box, label=\"%s\"];\n" i label)
  done;
  let leaf_counter = ref 0 in
  for i = 0 to n - 1 do
    (match Optree.parent tree i with
    | None -> ()
    | Some p -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" i p));
    List.iter
      (fun k ->
        let id = !leaf_counter in
        incr leaf_counter;
        Buffer.add_string buf
          (Printf.sprintf "  leaf%d [shape=ellipse, label=\"o%d\"];\n" id k);
        Buffer.add_string buf (Printf.sprintf "  leaf%d -> n%d;\n" id i))
      (Optree.leaves tree i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_tree tree = emit tree
let of_app app = emit ~app (App.tree app)

let save dot path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc dot)

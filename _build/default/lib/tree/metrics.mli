(** Structural and cost metrics over an application. *)

type t = {
  n_operators : int;
  n_leaf_instances : int;
  n_al_operators : int;
  height : int;
  total_work : float;  (** Mops per result *)
  max_work : float;  (** heaviest single operator, Mops *)
  root_output : float;  (** MB per result *)
  total_download_rate : float;
      (** MB/s if every leaf instance were downloaded by a distinct
          processor (upper bound on download traffic) *)
  distinct_objects_used : int;
}

val compute : App.t -> t

val pp : Format.formatter -> t -> unit

type t = {
  tree : Optree.t;
  objects : Objects.t;
  alpha : float;
  rho : float;
  base_work : float;
  work_factor : float;
  work : float array;
  output : float array;
}

let make ?(rho = 1.0) ?(base_work = 0.0) ?(work_factor = 1.0) ~tree ~objects
    ~alpha () =
  if alpha <= 0.0 then invalid_arg "App.make: alpha must be positive";
  if rho <= 0.0 then invalid_arg "App.make: rho must be positive";
  if base_work < 0.0 then invalid_arg "App.make: base_work must be >= 0";
  if work_factor <= 0.0 then invalid_arg "App.make: work_factor must be positive";
  if Optree.n_object_types tree > Objects.count objects then
    invalid_arg "App.make: tree references more object types than catalog";
  let n = Optree.n_operators tree in
  let work = Array.make n 0.0 in
  let output = Array.make n 0.0 in
  (* Postorder guarantees children are sized before their parent. *)
  List.iter
    (fun i ->
      let leaf_mass =
        List.fold_left
          (fun acc k -> acc +. Objects.size objects k)
          0.0 (Optree.leaves tree i)
      in
      let child_mass =
        List.fold_left
          (fun acc c -> acc +. output.(c))
          0.0 (Optree.children tree i)
      in
      let input = leaf_mass +. child_mass in
      work.(i) <- base_work +. (work_factor *. (input ** alpha));
      output.(i) <- input)
    (Optree.postorder tree);
  { tree; objects; alpha; rho; base_work; work_factor; work; output }

let tree t = t.tree
let objects t = t.objects
let alpha t = t.alpha
let base_work t = t.base_work
let work_factor t = t.work_factor
let rho t = t.rho
let n_operators t = Optree.n_operators t.tree
let work t i = t.work.(i)
let output_size t i = t.output.(i)
let input_size t i = t.output.(i)
let comm_volume t i = t.rho *. t.output.(i)
let download_rate t k = Objects.rate t.objects k

let edge_weight t i =
  match Optree.parent t.tree i with
  | None -> 0.0
  | Some _ -> t.rho *. t.output.(i)

let total_work t = Array.fold_left ( +. ) 0.0 t.work

let total_leaf_mass t =
  List.fold_left
    (fun acc (_, k) -> acc +. Objects.size t.objects k)
    0.0
    (Optree.leaf_instances t.tree)

let heaviest_operator t =
  let best = ref 0 in
  Array.iteri (fun i w -> if w > t.work.(!best) then best := i) t.work;
  !best

let pp ppf t =
  Format.fprintf ppf "@[<v>application: %d operators, alpha=%.2f, rho=%.2f@ "
    (n_operators t) t.alpha t.rho;
  Format.fprintf ppf "total work %.1f Mops, root output %.1f MB@ "
    (total_work t) t.output.(0);
  Optree.pp ppf t.tree;
  Format.fprintf ppf "@]"

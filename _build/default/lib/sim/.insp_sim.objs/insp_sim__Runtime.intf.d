lib/sim/runtime.mli: Format Insp_mapping Insp_platform Insp_tree

lib/sim/fair_share.ml: Array Float List

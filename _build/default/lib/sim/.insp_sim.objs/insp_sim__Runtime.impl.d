lib/sim/runtime.ml: Array Fair_share Float Format Hashtbl Insp_mapping Insp_platform Insp_tree Insp_util List Option Printf String

(** Max-min fair bandwidth allocation under the bounded multi-port model
    (paper §2.2).

    Each flow crosses a set of capacity constraints (its sender's network
    card, its receiver's network card, the point-to-point link).  The
    allocation is computed by progressive filling: repeatedly find the
    constraint with the smallest fair share among its unfrozen flows,
    freeze those flows at that share, and continue — the classic max-min
    fixpoint.  A resource can serve many flows at once (multi-port), but
    the sum of its flows' rates never exceeds its capacity (bounded). *)

val compute : caps:float array -> membership:int list array -> float array
(** [compute ~caps ~membership] returns one rate per flow.
    [membership.(f)] lists the constraint indices flow [f] crosses (at
    least one, each a valid index into [caps]; capacities must be
    non-negative).  Rates are non-negative and saturate at least one
    constraint of every flow unless every constraint still has slack
    (which cannot happen: filling stops only when all flows are
    frozen). *)

val is_max_min : caps:float array -> membership:int list array -> rates:float array -> bool
(** Independent verifier used by property tests: every constraint is
    respected (tolerance 1e-6) and every flow is bottlenecked — it
    crosses at least one constraint that is saturated and where the flow
    has a maximal rate among the constraint's flows. *)

module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Catalog = Insp_platform.Catalog

let of_alloc catalog alloc =
  Array.fold_left
    (fun acc (p : Alloc.proc) -> acc +. Catalog.config_cost catalog p.config)
    0.0 (Alloc.procs alloc)

let per_proc catalog alloc =
  Array.map
    (fun (p : Alloc.proc) -> Catalog.config_cost catalog p.config)
    (Alloc.procs alloc)

let ceil_div x y = int_of_float (Float.ceil (x /. y))

let lower_bound_processors app catalog =
  let best = Catalog.best catalog in
  let rho = App.rho app in
  let total_compute = rho *. App.total_work app in
  let compute_lb = ceil_div total_compute best.cpu.speed in
  (* Every distinct object type used by the tree must be downloaded by at
     least one processor, whatever the grouping. *)
  let tree = App.tree app in
  let distinct_types =
    Optree.leaf_instances tree |> List.map snd |> List.sort_uniq compare
  in
  let total_download =
    List.fold_left
      (fun acc k -> acc +. App.download_rate app k)
      0.0 distinct_types
  in
  let nic_lb = ceil_div total_download best.nic.bandwidth in
  max 1 (max compute_lb nic_lb)

let lower_bound_cost app catalog =
  let cheapest = Catalog.cheapest catalog in
  float_of_int (lower_bound_processors app catalog)
  *. Catalog.config_cost catalog cheapest

lib/mapping/demand.mli: Format Insp_platform Insp_tree

lib/mapping/alloc.ml: Array Format Hashtbl Insp_platform List Printf String

lib/mapping/check.ml: Alloc Demand Format Insp_platform Insp_tree List String

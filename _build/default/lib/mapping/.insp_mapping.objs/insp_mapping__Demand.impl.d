lib/mapping/demand.ml: Float Format Insp_platform Insp_tree List

lib/mapping/cost.ml: Alloc Array Float Insp_platform Insp_tree List

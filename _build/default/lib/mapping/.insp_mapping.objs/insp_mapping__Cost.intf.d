lib/mapping/cost.mli: Alloc Insp_platform Insp_tree

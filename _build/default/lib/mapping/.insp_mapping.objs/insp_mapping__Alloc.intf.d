lib/mapping/alloc.mli: Format Insp_platform

lib/mapping/check.mli: Alloc Demand Format Insp_platform Insp_tree

module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Catalog = Insp_platform.Catalog

type t = {
  compute : float;
  download : float;
  comm_in : float;
  comm_out : float;
}

let zero = { compute = 0.0; download = 0.0; comm_in = 0.0; comm_out = 0.0 }

let nic t = t.download +. t.comm_in +. t.comm_out

let distinct_objects app group =
  let tree = App.tree app in
  List.concat_map (Optree.leaves tree) group |> List.sort_uniq compare

let of_group app group =
  let group = List.sort_uniq compare group in
  let tree = App.tree app in
  let in_group i = List.mem i group in
  let rho = App.rho app in
  let compute =
    List.fold_left (fun acc i -> acc +. (rho *. App.work app i)) 0.0 group
  in
  let download =
    List.fold_left
      (fun acc k -> acc +. App.download_rate app k)
      0.0
      (distinct_objects app group)
  in
  let comm_in =
    List.fold_left
      (fun acc i ->
        List.fold_left
          (fun acc j ->
            if in_group j then acc else acc +. (rho *. App.output_size app j))
          acc (Optree.children tree i))
      0.0 group
  in
  let comm_out =
    List.fold_left
      (fun acc i ->
        match Optree.parent tree i with
        | Some p when not (in_group p) -> acc +. (rho *. App.output_size app i)
        | Some _ | None -> acc)
      0.0 group
  in
  { compute; download; comm_in; comm_out }

let of_operator app i = of_group app [ i ]

let tolerance = 1e-9

let leq value capacity = value <= capacity *. (1.0 +. tolerance) +. tolerance

let fits (config : Catalog.config) t =
  leq t.compute config.cpu.speed && leq (nic t) config.nic.bandwidth

let max_crossing_edge app group =
  let group = List.sort_uniq compare group in
  let tree = App.tree app in
  let in_group i = List.mem i group in
  let rho = App.rho app in
  List.fold_left
    (fun acc i ->
      let acc =
        List.fold_left
          (fun acc j ->
            if in_group j then acc
            else Float.max acc (rho *. App.output_size app j))
          acc (Optree.children tree i)
      in
      match Optree.parent tree i with
      | Some p when not (in_group p) ->
        Float.max acc (rho *. App.output_size app i)
      | Some _ | None -> acc)
    0.0 group

let pp ppf t =
  Format.fprintf ppf
    "compute %.1f Mops/s, nic %.1f MB/s (dl %.1f, in %.1f, out %.1f)" t.compute
    (nic t) t.download t.comm_in t.comm_out

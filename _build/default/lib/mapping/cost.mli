(** Platform cost accounting — the objective function. *)

val of_alloc : Insp_platform.Catalog.t -> Alloc.t -> float
(** Total purchase price: sum over processors of chassis + CPU upgrade +
    NIC upgrade. *)

val per_proc : Insp_platform.Catalog.t -> Alloc.t -> float array

val lower_bound_processors : Insp_tree.App.t -> Insp_platform.Catalog.t -> int
(** A simple lower bound on the number of processors any feasible
    solution needs: total compute divided by the fastest CPU, and total
    mandatory download traffic divided by the widest NIC (each rounded
    up), whichever is larger.  Used to sanity-check heuristic results
    and to seed the exact solver. *)

val lower_bound_cost : Insp_tree.App.t -> Insp_platform.Catalog.t -> float
(** [lower_bound_processors] times the cheapest configuration price — a
    valid (weak) lower bound on the optimal platform cost. *)

lib/rewrite/rewrite.mli: Insp_tree Insp_util

lib/rewrite/rewrite.ml: Array Hashtbl Insp_tree Insp_util List

(** Mutable applications (paper §6, future work): "the study of
    applications that are mutable, i.e., whose operators can be
    rearranged based on operator associativity and commutativity rules"
    (after Chen, DeWitt & Naughton [5]).

    Operators are associative and commutative aggregations, so any
    binary tree over the same multiset of basic-object leaves computes
    the same final result — but intermediate input sizes, and therefore
    the per-operator work [w_i = base + factor*(input)^alpha] and the
    communication volumes, differ by shape.  Left-deep chains accumulate
    mass early (the paper's Fig. 1(b) shape); balanced trees keep
    intermediate inputs small.  This module searches the shape space for
    the cheapest-to-provision equivalent tree. *)

val leaf_multiset : Insp_tree.Optree.t -> int list
(** Object types of all leaf instances, sorted (with duplicates). *)

val neighbors : Insp_tree.Optree.t -> Insp_tree.Optree.t list
(** All trees one associativity rotation away:
    [(a . b) . c -> a . (b . c)] and its mirror, applied at every
    binary operator whose child is binary.  Leaf multiset is
    preserved.  Unary operators are left untouched. *)

val enumerate : n_object_types:int -> leaves:int list -> Insp_tree.Optree.t list
(** All structurally distinct (up to commutativity) binary trees over
    the leaf multiset.  Exponential: requires [2 <= |leaves| <= 10]. *)

val balanced_of : Insp_tree.Optree.t -> Insp_tree.Optree.t
(** The balanced tree over the same leaf multiset. *)

val left_deep_of : Insp_tree.Optree.t -> Insp_tree.Optree.t
(** The left-deep chain over the same leaf multiset. *)

val optimize :
  Insp_util.Prng.t ->
  evaluate:(Insp_tree.Optree.t -> float option) ->
  ?steps:int ->
  ?restarts:int ->
  Insp_tree.Optree.t ->
  Insp_tree.Optree.t * float option
(** Hill-climbing over {!neighbors}: [evaluate] returns the provisioning
    cost of a shape ([None] = infeasible).  Starting from the given tree
    (and [restarts] extra random-rotation starts, default 2), repeatedly
    moves to the best strictly-improving neighbour, up to [steps]
    (default 50) moves per start.  Returns the best shape found and its
    cost ([None] if every evaluated shape was infeasible). *)

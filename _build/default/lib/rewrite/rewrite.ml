module Optree = Insp_tree.Optree
module Prng = Insp_util.Prng

let leaf_multiset tree =
  Optree.leaf_instances tree |> List.map snd |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Rotations over specs                                                *)

(* All single-rotation rewrites of a spec.  At a binary node (x . y):
   - if x = (a . b):  (a . b) . y -> a . (b . y)  and  b . (a . y)
   - if y = (a . b):  x . (a . b) -> (x . a) . b  and  (x . b) . a
   (the two variants per side cover commutativity of the rotated pair,
   which matters because shapes are what we search over). *)
let rec spec_rotations (spec : Optree.spec) : Optree.spec list =
  match spec with
  | Optree.Obj _ -> []
  | Optree.Op1 a ->
    List.map (fun a' -> Optree.Op1 a') (spec_rotations a)
  | Optree.Op (x, y) ->
    let here =
      (match x with
      | Optree.Op (a, b) ->
        [ Optree.Op (a, Optree.Op (b, y)); Optree.Op (b, Optree.Op (a, y)) ]
      | Optree.Obj _ | Optree.Op1 _ -> [])
      @
      match y with
      | Optree.Op (a, b) ->
        [ Optree.Op (Optree.Op (x, a), b); Optree.Op (Optree.Op (x, b), a) ]
      | Optree.Obj _ | Optree.Op1 _ -> []
    in
    here
    @ List.map (fun x' -> Optree.Op (x', y)) (spec_rotations x)
    @ List.map (fun y' -> Optree.Op (x, y')) (spec_rotations y)

(* Canonical key modulo commutativity, to deduplicate shapes. *)
type key = KLeaf of int | KOp1 of key | KOp of key * key

let rec canon (spec : Optree.spec) : key =
  match spec with
  | Optree.Obj k -> KLeaf k
  | Optree.Op1 a -> KOp1 (canon a)
  | Optree.Op (a, b) ->
    let ka = canon a and kb = canon b in
    if ka <= kb then KOp (ka, kb) else KOp (kb, ka)

let dedup specs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      let k = canon s in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    specs

let neighbors tree =
  let n_object_types = Optree.n_object_types tree in
  let spec = Optree.to_spec tree in
  spec_rotations spec
  |> List.filter (fun s -> canon s <> canon spec)
  |> dedup
  |> List.map (Optree.of_spec ~n_object_types)

(* ------------------------------------------------------------------ *)
(* Canonical shapes                                                    *)

let spec_of_leaves build leaves =
  match leaves with
  | [] | [ _ ] -> invalid_arg "Rewrite: need at least two leaves"
  | _ -> build (Array.of_list leaves)

let balanced_build leaves =
  let rec go lo hi =
    (* [lo, hi) with hi - lo >= 1 *)
    if hi - lo = 1 then Optree.Obj leaves.(lo)
    else begin
      let mid = (lo + hi) / 2 in
      Optree.Op (go lo mid, go mid hi)
    end
  in
  go 0 (Array.length leaves)

let left_deep_build leaves =
  let n = Array.length leaves in
  let rec go acc i =
    if i >= n then acc else go (Optree.Op (acc, Optree.Obj leaves.(i))) (i + 1)
  in
  go (Optree.Op (Optree.Obj leaves.(0), Optree.Obj leaves.(1))) 2

let balanced_of tree =
  Optree.of_spec ~n_object_types:(Optree.n_object_types tree)
    (spec_of_leaves balanced_build (leaf_multiset tree))

let left_deep_of tree =
  Optree.of_spec ~n_object_types:(Optree.n_object_types tree)
    (spec_of_leaves left_deep_build (leaf_multiset tree))

(* ------------------------------------------------------------------ *)
(* Exhaustive enumeration                                              *)

let enumerate ~n_object_types ~leaves =
  let n = List.length leaves in
  if n < 2 || n > 10 then invalid_arg "Rewrite.enumerate: 2-10 leaves";
  (* All distinct-shape specs over a sorted leaf multiset: split into an
     unordered pair of non-empty sub-multisets and recurse; dedup by
     canonical key at every level. *)
  let table = Hashtbl.create 64 in
  let rec shapes leaves =
    match Hashtbl.find_opt table leaves with
    | Some r -> r
    | None ->
      let r =
        match leaves with
        | [ k ] -> [ Optree.Obj k ]
        | _ ->
          let n = List.length leaves in
          (* enumerate sub-multisets by bitmask over positions, dedup by
             the resulting (left, right) leaf multisets *)
          let arr = Array.of_list leaves in
          let seen = Hashtbl.create 16 in
          let acc = ref [] in
          for mask = 1 to (1 lsl n) - 2 do
            let left = ref [] and right = ref [] in
            for i = 0 to n - 1 do
              if mask land (1 lsl i) <> 0 then left := arr.(i) :: !left
              else right := arr.(i) :: !right
            done;
            let l = List.sort compare !left and r = List.sort compare !right in
            (* unordered pair: keep l <= r *)
            let pair = if l <= r then (l, r) else (r, l) in
            if not (Hashtbl.mem seen pair) then begin
              Hashtbl.replace seen pair ();
              let ls, rs = pair in
              List.iter
                (fun a ->
                  List.iter (fun b -> acc := Optree.Op (a, b) :: !acc)
                    (shapes rs))
                (shapes ls)
            end
          done;
          dedup !acc
      in
      Hashtbl.replace table leaves r;
      r
  in
  shapes (List.sort compare leaves)
  |> dedup
  |> List.map (Optree.of_spec ~n_object_types)

(* ------------------------------------------------------------------ *)
(* Hill climbing                                                       *)

let random_walk rng tree steps =
  let rec go tree i =
    if i = 0 then tree
    else
      match neighbors tree with
      | [] -> tree
      | ns -> go (Prng.choose_list rng ns) (i - 1)
  in
  go tree steps

let optimize rng ~evaluate ?(steps = 50) ?(restarts = 2) tree =
  let better a b =
    match (a, b) with
    | Some x, Some y -> x < y -. 1e-9
    | Some _, None -> true
    | None, _ -> false
  in
  let climb start =
    let rec go current cost fuel =
      if fuel = 0 then (current, cost)
      else begin
        let scored =
          List.map (fun t -> (t, evaluate t)) (neighbors current)
        in
        let best =
          List.fold_left
            (fun (bt, bc) (t, c) -> if better c bc then (t, c) else (bt, bc))
            (current, cost) scored
        in
        if fst best == current then (current, cost)
        else go (fst best) (snd best) (fuel - 1)
      end
    in
    go start (evaluate start) steps
  in
  let starts =
    tree :: List.init restarts (fun i -> random_walk rng tree (3 + (2 * i)))
  in
  List.fold_left
    (fun (bt, bc) start ->
      let t, c = climb start in
      if better c bc then (t, c) else (bt, bc))
    (tree, evaluate tree)
    starts

(** Common-subexpression sharing across applications (paper §6 future
    work, after Pandit & Ji [14] and Munagala et al. [13]).

    Operators are aggregation/combination operators, treated as
    associative-commutative: two subtrees are the {e same computation}
    when their canonical forms coincide — an object leaf is canonical by
    its type, an operator by the multiset of its inputs' canonical
    forms.  Hash-consing every subtree across all applications yields a
    DAG in which each distinct computation appears once; a shared node
    runs at the fastest consumer's rate. *)

val share :
  objects:Insp_tree.Objects.t ->
  alpha:float ->
  ?base_work:float ->
  ?work_factor:float ->
  trees:(Insp_tree.Optree.t * float) list ->
  unit ->
  Dag.t
(** [share ~objects ~alpha ~trees ()] hash-conses the given [(tree,
    rho)] applications into a shared DAG.  All trees must draw objects
    from the given catalog. *)

val share_apps : Insp_tree.App.t list -> Dag.t
(** Convenience wrapper: extracts the catalog, alpha, work constants and
    rho from each application (they must all agree on catalog, alpha and
    work constants). *)

type savings = {
  unshared_nodes : int;
  shared_nodes : int;
  unshared_work : float;  (** sum of rate * work, Mops/s *)
  shared_work : float;
  unshared_downloads : float;
      (** MB/s if every tree downloads its own objects (one download per
          (node, object)) *)
  shared_downloads : float;
}

val savings : Insp_tree.App.t list -> savings
(** Compare the unshared DAG ({!Dag.of_apps}) with the hash-consed one. *)

val pp_savings : Format.formatter -> savings -> unit

module Prng = Insp_util.Prng
module Optree = Insp_tree.Optree
module App = Insp_tree.App
module Objects = Insp_tree.Objects
module Generate = Insp_tree.Generate
module Config = Insp_workload.Config
module Platform = Insp_platform.Platform

(* A random sub-expression spec with exactly [n] operators. *)
let rec random_spec rng ~n ~n_object_types =
  let leaf () = Optree.Obj (Prng.int rng n_object_types) in
  if n = 0 then leaf ()
  else begin
    let left = Prng.int rng n in
    let right = n - 1 - left in
    Optree.Op
      ( random_spec rng ~n:left ~n_object_types,
        random_spec rng ~n:right ~n_object_types )
  end

let spec_operators spec =
  let rec count = function
    | Optree.Obj _ -> 0
    | Optree.Op1 a -> 1 + count a
    | Optree.Op (a, b) -> 1 + count a + count b
  in
  count spec

let correlated_trees rng ~n_apps ~n_operators ~n_object_types ?(n_pool = 4)
    ?(pool_operators = 3) ?(share_prob = 0.5) () =
  if n_apps < 1 then invalid_arg "Multi_workload.correlated_trees: n_apps >= 1";
  if share_prob < 0.0 || share_prob > 1.0 then
    invalid_arg "Multi_workload.correlated_trees: share_prob in [0,1]";
  if pool_operators < 1 || pool_operators >= max 2 n_operators then
    invalid_arg "Multi_workload.correlated_trees: bad pool_operators";
  let pool =
    Array.init n_pool (fun _ ->
        random_spec rng ~n:pool_operators ~n_object_types)
  in
  (* Build one tree of exactly [n_operators] operators; leaves may be
     grafts from the pool (consuming pool_operators of the budget). *)
  let rec build n =
    if n = 0 then Optree.Obj (Prng.int rng n_object_types)
    else if n = pool_operators && Prng.float rng < share_prob then
      Prng.choose rng pool
    else begin
      let left = Prng.int rng n in
      Optree.Op (build left, build (n - 1 - left))
    end
  in
  List.init n_apps (fun _ ->
      let spec = build n_operators in
      assert (spec_operators spec = n_operators);
      Optree.of_spec ~n_object_types spec)

let correlated_apps rng ~config ~n_apps =
  let trees =
    correlated_trees rng ~n_apps
      ~n_operators:config.Config.n_operators
      ~n_object_types:config.Config.n_object_types ()
  in
  let lo, hi = Config.size_range config.Config.sizes in
  let sizes =
    Generate.random_sizes rng ~n_object_types:config.Config.n_object_types ~lo
      ~hi
  in
  let objects =
    Objects.uniform_freq ~sizes ~freq:(Config.frequency config.Config.freq)
  in
  List.map
    (fun tree ->
      App.make ~rho:config.Config.rho ~base_work:config.Config.base_work
        ~work_factor:config.Config.work_factor ~tree ~objects
        ~alpha:config.Config.alpha ())
    trees

let instance ~seed ~n_apps ~n_operators =
  let master = Prng.create seed in
  let app_rng = Prng.split master in
  let server_rng = Prng.split master in
  let config = Config.make ~n_operators ~seed () in
  let apps = correlated_apps app_rng ~config ~n_apps in
  let platform =
    Platform.paper_default server_rng
      ~n_object_types:config.Config.n_object_types ()
  in
  (apps, platform)

(** Placement of a shared operator DAG onto purchasable processors — the
    Subtree-Bottom-Up strategy generalised to DAGs.

    Algorithm: every al-node (node downloading at least one basic
    object) gets its own most-expensive processor, deepest (most remote
    from the sinks) first; processors then repeatedly absorb the
    consumers of their nodes (adding unassigned consumers, or merging in
    the consumer's whole processor); leftover nodes take fresh
    processors with an iterative grouping fallback; a final
    consolidation pass folds small processors into neighbours; then
    server selection (the paper's three-loop heuristic over the DAG's
    needs), downgrade, and full validation. *)

type outcome = {
  alloc : Insp_mapping.Alloc.t;
  cost : float;
  n_procs : int;
}

type failure =
  | Placement of string
  | Server_selection of string
  | Validation of string

val failure_message : failure -> string

val run :
  Dag.t -> Insp_platform.Platform.t -> (outcome, failure) result
(** Deterministic.  Every returned outcome passes {!Dag_check.check}. *)

lib/multi/dag_runtime.ml: Array Dag Float Hashtbl Insp_mapping Insp_platform Insp_sim Insp_tree Insp_util List

lib/multi/dag.ml: Array Float Format Fun Hashtbl Insp_tree List Option Printf String

lib/multi/dag.mli: Format Insp_tree

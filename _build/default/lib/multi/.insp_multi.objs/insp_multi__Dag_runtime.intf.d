lib/multi/dag_runtime.mli: Dag Insp_mapping Insp_platform Insp_sim

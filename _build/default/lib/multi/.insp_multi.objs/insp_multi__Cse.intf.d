lib/multi/cse.mli: Dag Format Insp_tree

lib/multi/dag_check.ml: Dag Float Insp_mapping Insp_platform Insp_tree List

lib/multi/dag_check.mli: Dag Insp_mapping Insp_platform

lib/multi/dag_place.mli: Dag Insp_mapping Insp_platform

lib/multi/multi_workload.ml: Array Insp_platform Insp_tree Insp_util Insp_workload List

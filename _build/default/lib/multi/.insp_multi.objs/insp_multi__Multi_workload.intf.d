lib/multi/multi_workload.mli: Insp_platform Insp_tree Insp_util Insp_workload

lib/multi/dag_place.ml: Array Dag Dag_check Float Hashtbl Insp_heuristics Insp_mapping Insp_platform Insp_tree List Option Printf String

lib/multi/cse.ml: Dag Format Hashtbl Insp_tree List

(** Discrete-event execution of a DAG allocation — the multi-application
    analogue of {!Insp_sim.Runtime}.

    Shared nodes are evaluated once per result and their output streams
    to each consuming processor once (one flow per destination, however
    many consumers live there), exactly as {!Dag_check} accounts
    bandwidth.  Every application sink's completion rate is measured;
    the report's achieved throughput is the {e slowest} sink's rate, so
    [sustains] means every application meets its target.

    Limitation: all node rates must be equal (which {!Dag.finish}
    guarantees whenever all applications share one rho — the case our
    correlated workloads generate).  Mixed-rate DAGs would need
    subsampled consumption semantics and are rejected with
    [Invalid_argument]. *)

val run :
  ?window:int ->
  ?horizon:float ->
  ?warmup:float ->
  Dag.t ->
  Insp_platform.Platform.t ->
  Insp_mapping.Alloc.t ->
  Insp_sim.Runtime.report
(** Defaults as in {!Insp_sim.Runtime.run}; the report's
    [achieved_throughput] is the minimum over application sinks. *)

val sustains_target : Insp_sim.Runtime.report -> bool
(** Re-exported {!Insp_sim.Runtime.sustains_target}. *)

module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Objects = Insp_tree.Objects

(* Canonical form of a computation: an object type, or the sorted list
   of its inputs' canonical forms (commutativity = order-insensitivity;
   the binary tree shape itself is preserved, so this is hash-consing of
   equal subtrees, not full associative reassociation — see
   Insp_rewrite for shape changes). *)
type key = Leaf of int | Combine of key list

let rec compare_key a b =
  match (a, b) with
  | Leaf x, Leaf y -> compare x y
  | Leaf _, Combine _ -> -1
  | Combine _, Leaf _ -> 1
  | Combine xs, Combine ys -> List.compare compare_key xs ys

let share ~objects ~alpha ?(base_work = 0.0) ?(work_factor = 1.0) ~trees () =
  (match trees with
  | [] -> invalid_arg "Cse.share: no applications"
  | _ -> ());
  let n_object_types = Objects.count objects in
  let builder = Dag.create_builder ~n_object_types in
  let table : (key, int) Hashtbl.t = Hashtbl.create 64 in
  let intern key inputs =
    match Hashtbl.find_opt table key with
    | Some id -> id
    | None ->
      let id = Dag.add_node builder ~inputs in
      Hashtbl.replace table key id;
      id
  in
  let share_tree tree =
    (* Bottom-up: children interned before parents. *)
    let node_key = Hashtbl.create 32 in
    let node_id = Hashtbl.create 32 in
    List.iter
      (fun op ->
        let leaf_inputs =
          List.map (fun k -> (Leaf k, Dag.Object k)) (Optree.leaves tree op)
        in
        let child_inputs =
          List.map
            (fun c ->
              (Hashtbl.find node_key c, Dag.Node (Hashtbl.find node_id c)))
            (Optree.children tree op)
        in
        let all = leaf_inputs @ child_inputs in
        let key = Combine (List.sort compare_key (List.map fst all)) in
        let id = intern key (List.map snd all) in
        Hashtbl.replace node_key op key;
        Hashtbl.replace node_id op id)
      (Optree.postorder tree);
    Hashtbl.find node_id (Optree.root tree)
  in
  let roots =
    List.map (fun (tree, rho) -> (share_tree tree, rho)) trees
  in
  Dag.finish builder ~objects ~alpha ~base_work ~work_factor ~roots ()

let share_apps apps =
  match apps with
  | [] -> invalid_arg "Cse.share_apps: no applications"
  | first :: rest ->
    let same_setup a =
      App.alpha a = App.alpha first
      && App.base_work a = App.base_work first
      && App.work_factor a = App.work_factor first
    in
    if not (List.for_all same_setup rest) then
      invalid_arg "Cse.share_apps: applications disagree on work model";
    share
      ~objects:(App.objects first)
      ~alpha:(App.alpha first) ~base_work:(App.base_work first)
      ~work_factor:(App.work_factor first)
      ~trees:(List.map (fun a -> (App.tree a, App.rho a)) apps)
      ()

type savings = {
  unshared_nodes : int;
  shared_nodes : int;
  unshared_work : float;
  shared_work : float;
  unshared_downloads : float;
  shared_downloads : float;
}

let dag_work dag =
  List.fold_left
    (fun acc i ->
      let n = Dag.node dag i in
      acc +. (n.Dag.rate *. n.Dag.work))
    0.0 (Dag.topological dag)

let dag_downloads dag objects =
  (* One download per (node, distinct object input). *)
  List.fold_left
    (fun acc i ->
      Dag.inputs dag i
      |> List.filter_map (function Dag.Object k -> Some k | Dag.Node _ -> None)
      |> List.sort_uniq compare
      |> List.fold_left (fun acc k -> acc +. Objects.rate objects k) acc)
    0.0 (Dag.topological dag)

let savings apps =
  match apps with
  | [] -> invalid_arg "Cse.savings: no applications"
  | first :: _ ->
    let objects = App.objects first in
    let unshared = Dag.of_apps apps in
    let shared = share_apps apps in
    {
      unshared_nodes = Dag.n_nodes unshared;
      shared_nodes = Dag.n_nodes shared;
      unshared_work = dag_work unshared;
      shared_work = dag_work shared;
      unshared_downloads = dag_downloads unshared objects;
      shared_downloads = dag_downloads shared objects;
    }

let pp_savings ppf s =
  let pct a b = if a > 0.0 then 100.0 *. (a -. b) /. a else 0.0 in
  Format.fprintf ppf
    "@[<v>nodes: %d -> %d (-%.0f%%)@ compute: %.0f -> %.0f Mops/s \
     (-%.1f%%)@ downloads: %.1f -> %.1f MB/s (-%.1f%%)@]"
    s.unshared_nodes s.shared_nodes
    (pct (float_of_int s.unshared_nodes) (float_of_int s.shared_nodes))
    s.unshared_work s.shared_work
    (pct s.unshared_work s.shared_work)
    s.unshared_downloads s.shared_downloads
    (pct s.unshared_downloads s.shared_downloads)

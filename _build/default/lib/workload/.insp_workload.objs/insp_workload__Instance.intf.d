lib/workload/instance.mli: Config Format Insp_platform Insp_tree

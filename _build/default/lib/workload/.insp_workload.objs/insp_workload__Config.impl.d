lib/workload/config.ml: Format

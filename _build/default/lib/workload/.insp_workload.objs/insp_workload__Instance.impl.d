lib/workload/instance.ml: Config Format Insp_platform Insp_tree Insp_util List

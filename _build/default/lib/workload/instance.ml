module Prng = Insp_util.Prng
module App = Insp_tree.App
module Objects = Insp_tree.Objects
module Generate = Insp_tree.Generate
module Platform = Insp_platform.Platform

type t = {
  config : Config.t;
  app : App.t;
  platform : Platform.t;
}

let build_app config ~tree ~sizes ~freq =
  let objects = Objects.uniform_freq ~sizes ~freq in
  App.make ~rho:config.Config.rho ~base_work:config.Config.base_work
    ~work_factor:config.Config.work_factor ~tree ~objects
    ~alpha:config.Config.alpha ()

let generate (config : Config.t) =
  let master = Prng.create config.seed in
  let tree_rng = Prng.split master in
  let size_rng = Prng.split master in
  let server_rng = Prng.split master in
  let tree =
    Generate.random_shape tree_rng ~n_operators:config.n_operators
      ~n_object_types:config.n_object_types
  in
  let lo, hi = Config.size_range config.sizes in
  let sizes =
    Generate.random_sizes size_rng ~n_object_types:config.n_object_types ~lo
      ~hi
  in
  let app = build_app config ~tree ~sizes ~freq:(Config.frequency config.freq) in
  let platform =
    Platform.paper_default server_rng ~n_servers:config.n_servers
      ~n_object_types:config.n_object_types ~min_copies:config.min_copies
      ~max_copies:config.max_copies ()
  in
  { config; app; platform }

let generate_batch config ~seeds =
  List.map (fun seed -> generate { config with Config.seed }) seeds

let with_frequency t freq =
  if freq <= 0.0 then invalid_arg "Instance.with_frequency: non-positive";
  let objects = Objects.with_freq (App.objects t.app) freq in
  let app =
    App.make ~rho:t.config.Config.rho ~base_work:t.config.Config.base_work
      ~work_factor:t.config.Config.work_factor ~tree:(App.tree t.app) ~objects
      ~alpha:t.config.Config.alpha ()
  in
  { t with app; config = { t.config with Config.freq = Config.Custom freq } }

let homogeneous t ~cpu_index ~nic_index =
  { t with platform = Platform.homogeneous t.platform ~cpu_index ~nic_index }

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@ %a@]" Config.pp t.config
    Insp_tree.Metrics.pp
    (Insp_tree.Metrics.compute t.app)

(** A generated problem instance: application plus platform. *)

type t = {
  config : Config.t;
  app : Insp_tree.App.t;
  platform : Insp_platform.Platform.t;
}

val generate : Config.t -> t
(** Deterministic in [config.seed]: the seed is split into independent
    streams for tree shape, object sizes and server placement, so e.g.
    changing the frequency regime does not perturb the generated tree. *)

val generate_batch : Config.t -> seeds:int list -> t list
(** Same configuration across several seeds (for averaging). *)

val with_frequency : t -> float -> t
(** Same tree, same sizes, same servers; only the download frequency
    changes (the paper's download-rate sweep). *)

val homogeneous : t -> cpu_index:int -> nic_index:int -> t
(** Restrict the platform catalog (CONSTR-HOM) keeping everything else. *)

val pp : Format.formatter -> t -> unit

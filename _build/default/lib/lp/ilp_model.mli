(** The paper's integer-linear-programming formulation (§3), for
    homogeneous platforms (CONSTR-HOM), built over {!Simplex}/{!Milp}.

    Given an application, a homogeneous platform and a processor budget
    [max_procs], the model chooses an operator assignment and a download
    plan minimising the number of processors bought:

    - binaries [x_{i,u}] (operator [i] on processor [u]) and [y_u]
      (processor [u] is bought);
    - continuous crossing indicators [a_{i,u} >= x_{i,u} - x_{p(i),u}]
      and [b_{i,u} >= x_{p(i),u} - x_{i,u}] linearise the communication
      terms of constraint (2);
    - continuous [n_{u,k} >= x_{i,u}] (for every al-operator [i] needing
      [k]) and download split [d_{u,k,l}] with
      [sum_l d_{u,k,l} = n_{u,k}] tie the plan to server capacities
      (constraints (3) and (4)).

    The pairwise processor-link constraint (5) is not linearisable
    without quadratically many extra variables and is omitted; the model
    therefore yields a valid *lower bound* (and on the paper's platform,
    where NIC bandwidth never exceeds 2.5x the link bandwidth, its
    solutions are almost always feasible — the exact solver re-validates
    them). *)

type t = {
  milp : Milp.t;
  n_operators : int;
  max_procs : int;
  x_index : int -> int -> int;  (** [x_index i u] *)
  y_index : int -> int;
}

val build :
  Insp_tree.App.t -> Insp_platform.Platform.t -> max_procs:int -> t
(** Raises [Invalid_argument] when the platform catalog is not
    homogeneous. *)

val lower_bound : t -> float option
(** LP-relaxation bound on the number of processors. *)

val solve : ?node_limit:int -> t -> (int * int list array) option
(** Optimal processor count and operator groups (empty groups pruned),
    or [None] when infeasible within [max_procs] / the node limit. *)

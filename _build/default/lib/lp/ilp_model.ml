module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform
module Servers = Insp_platform.Servers

type t = {
  milp : Milp.t;
  n_operators : int;
  max_procs : int;
  x_index : int -> int -> int;
  y_index : int -> int;
}

(* Variable layout:
     x_{i,u} : n*u_max                     binaries
     y_u     : u_max                       binaries
     a_{i,u} : n*u_max  (out-crossing)     continuous in [0,1]
     b_{i,u} : n*u_max  (in-crossing)      continuous in [0,1]
     n_{u,k} : u_max*k_used                continuous in [0,1]
     d_{u,k,l} : one per (u, k, holder l)  continuous in [0,1]            *)
let build app platform ~max_procs =
  let catalog = platform.Platform.catalog in
  if not (Catalog.is_homogeneous catalog) then
    invalid_arg "Ilp_model.build: platform must be homogeneous (CONSTR-HOM)";
  let config = Catalog.cheapest catalog in
  let speed = config.Catalog.cpu.Catalog.speed in
  let nic_bw = config.Catalog.nic.Catalog.bandwidth in
  let servers = platform.Platform.servers in
  let tree = App.tree app in
  let n = App.n_operators app in
  let u_max = max_procs in
  let rho = App.rho app in
  let used_objects =
    Optree.leaf_instances tree |> List.map snd |> List.sort_uniq compare
  in
  let k_used = List.length used_objects in
  let obj_pos k =
    let rec find idx = function
      | [] -> invalid_arg "Ilp_model: unknown object"
      | k' :: rest -> if k' = k then idx else find (idx + 1) rest
    in
    find 0 used_objects
  in
  let holders k = Servers.providers servers k in
  let x_index i u = (i * u_max) + u in
  let y_index u = (n * u_max) + u in
  let a_index i u = ((n + 1) * u_max) + (i * u_max) + u in
  let b_index i u = (((2 * n) + 1) * u_max) + (i * u_max) + u in
  let n_index u k = (((3 * n) + 1) * u_max) + (u * k_used) + obj_pos k in
  let d_base = (((3 * n) + 1) * u_max) + (u_max * k_used) in
  (* Download variables exist only for servers actually holding the
     object. *)
  let d_table = Hashtbl.create 64 in
  let n_vars = ref d_base in
  for u = 0 to u_max - 1 do
    List.iter
      (fun k ->
        List.iter
          (fun l ->
            Hashtbl.replace d_table (u, k, l) !n_vars;
            incr n_vars)
          (holders k))
      used_objects
  done;
  let n_vars = !n_vars in
  let d_index u k l = Hashtbl.find d_table (u, k, l) in
  let constraints = ref [] in
  let add coeffs relation bound =
    constraints := { Simplex.coeffs; relation; bound } :: !constraints
  in
  let row () = Array.make n_vars 0.0 in
  (* Every operator on exactly one processor. *)
  for i = 0 to n - 1 do
    let r = row () in
    for u = 0 to u_max - 1 do
      r.(x_index i u) <- 1.0
    done;
    add r Simplex.Eq 1.0
  done;
  (* Binaries and indicator variables live in [0,1]. *)
  for v = 0 to d_base - 1 do
    let r = row () in
    r.(v) <- 1.0;
    add r Simplex.Le 1.0
  done;
  (* Constraint (1): compute capacity. *)
  for u = 0 to u_max - 1 do
    let r = row () in
    for i = 0 to n - 1 do
      r.(x_index i u) <- rho *. App.work app i
    done;
    r.(y_index u) <- -.speed;
    add r Simplex.Le 0.0
  done;
  (* Crossing-indicator definitions for every non-root operator. *)
  for i = 0 to n - 1 do
    match Optree.parent tree i with
    | None -> ()
    | Some p ->
      for u = 0 to u_max - 1 do
        (* a_{i,u} >= x_{i,u} - x_{p,u} *)
        let r = row () in
        r.(x_index i u) <- 1.0;
        r.(x_index p u) <- -1.0;
        r.(a_index i u) <- -1.0;
        add r Simplex.Le 0.0;
        (* b_{i,u} >= x_{p,u} - x_{i,u} *)
        let r = row () in
        r.(x_index p u) <- 1.0;
        r.(x_index i u) <- -1.0;
        r.(b_index i u) <- -1.0;
        add r Simplex.Le 0.0
      done
  done;
  (* n_{u,k} >= x_{i,u} for every al-operator i needing k. *)
  List.iter
    (fun i ->
      let needs = List.sort_uniq compare (Optree.leaves tree i) in
      List.iter
        (fun k ->
          for u = 0 to u_max - 1 do
            let r = row () in
            r.(x_index i u) <- 1.0;
            r.(n_index u k) <- -1.0;
            add r Simplex.Le 0.0
          done)
        needs)
    (Optree.al_operators tree);
  (* Download split: sum_l d_{u,k,l} = n_{u,k}. *)
  for u = 0 to u_max - 1 do
    List.iter
      (fun k ->
        let r = row () in
        List.iter (fun l -> r.(d_index u k l) <- 1.0) (holders k);
        r.(n_index u k) <- -1.0;
        add r Simplex.Eq 0.0)
      used_objects
  done;
  (* Constraint (2): NIC capacity. *)
  for u = 0 to u_max - 1 do
    let r = row () in
    List.iter
      (fun k -> r.(n_index u k) <- App.download_rate app k)
      used_objects;
    for i = 0 to n - 1 do
      match Optree.parent tree i with
      | None -> ()
      | Some _ ->
        let w = rho *. App.output_size app i in
        r.(a_index i u) <- w;
        r.(b_index i u) <- w
    done;
    r.(y_index u) <- -.nic_bw;
    add r Simplex.Le 0.0
  done;
  (* Constraints (3) and (4): server card and server-processor links. *)
  for l = 0 to Servers.n_servers servers - 1 do
    let card = row () in
    for u = 0 to u_max - 1 do
      let link = row () in
      List.iter
        (fun k ->
          if Servers.holds servers l k then begin
            let rate = App.download_rate app k in
            card.(d_index u k l) <- rate;
            link.(d_index u k l) <- rate
          end)
        used_objects;
      add link Simplex.Le platform.Platform.server_link
    done;
    add card Simplex.Le (Servers.card servers l)
  done;
  (* Symmetry breaking: processors are opened in order. *)
  for u = 0 to u_max - 2 do
    let r = row () in
    r.(y_index u) <- -1.0;
    r.(y_index (u + 1)) <- 1.0;
    add r Simplex.Le 0.0
  done;
  let objective = Array.make n_vars 0.0 in
  for u = 0 to u_max - 1 do
    objective.(y_index u) <- 1.0
  done;
  let integer_vars = List.init ((n + 1) * u_max) (fun v -> v) in
  {
    milp =
      {
        Milp.problem =
          {
            Simplex.objective;
            constraints = List.rev !constraints;
            maximize = false;
          };
        integer_vars;
      };
    n_operators = n;
    max_procs = u_max;
    x_index;
    y_index;
  }

let lower_bound t = Milp.relaxation_bound t.milp

let solve ?(node_limit = 20_000) t =
  let result = Milp.solve ~node_limit t.milp in
  match result.Milp.solution with
  | None -> None
  | Some sol ->
    let groups = Array.make t.max_procs [] in
    for i = t.n_operators - 1 downto 0 do
      let u = ref (-1) in
      for cand = 0 to t.max_procs - 1 do
        if sol.Simplex.values.(t.x_index i cand) > 0.5 then u := cand
      done;
      if !u >= 0 then groups.(!u) <- i :: groups.(!u)
    done;
    let used = Array.to_list groups |> List.filter (fun g -> g <> []) in
    Some (List.length used, Array.of_list used)

(** Dense two-phase primal simplex.

    Substitute for the commercial CPLEX solver the paper uses (§5): large
    enough for the LP relaxations of the paper's small homogeneous
    instances, written from scratch with no external dependencies.

    Problems are given in the form

    {v minimize    c . x
       subject to  row_i . x  (<= | = | >=)  b_i     for each row
                   x >= 0 v}

    Maximisation is [solve ~maximize:true].  Bland's rule guards against
    cycling; a small tolerance (1e-9) is used for pivoting decisions. *)

type relation = Le | Eq | Ge

type constr = { coeffs : float array; relation : relation; bound : float }

type problem = {
  objective : float array;
  constraints : constr list;
  maximize : bool;
}

type solution = {
  values : float array;  (** optimal assignment, length = #variables *)
  objective_value : float;
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded

val solve : problem -> outcome
(** Raises [Invalid_argument] on ragged input (a constraint row whose
    width differs from the objective). *)

val check_feasible : problem -> float array -> bool
(** Does the given point satisfy every constraint (tolerance 1e-6) and
    non-negativity?  Used by tests as an independent oracle. *)

(** Branch-and-bound mixed-integer solver over {!Simplex} relaxations.

    Depth-first branch and bound: each node solves the LP relaxation,
    prunes on bound or infeasibility, otherwise branches on the first
    integer-constrained variable with a fractional value by adding
    [x <= floor(v)] / [x >= ceil(v)] constraints.

    Intended for the small homogeneous instances the paper solves with
    CPLEX; node and time limits make it safe to call on anything. *)

type t = {
  problem : Simplex.problem;
  integer_vars : int list;  (** indices that must be integral *)
}

type status = Proven | NodeLimit

type result = {
  solution : Simplex.solution option;
      (** best integral solution found, if any *)
  bound : float;
      (** proven bound on the optimum: lower bound when minimising, upper
          when maximising (the root relaxation when the search was
          truncated) *)
  status : status;
  nodes_explored : int;
}

val solve : ?node_limit:int -> t -> result
(** [node_limit] defaults to 100_000. *)

val relaxation_bound : t -> float option
(** Objective of the root LP relaxation; [None] when infeasible or
    unbounded. *)

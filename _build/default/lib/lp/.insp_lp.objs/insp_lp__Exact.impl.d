lib/lp/exact.ml: Array Float Insp_heuristics Insp_mapping Insp_platform Insp_tree List

lib/lp/simplex.mli:

lib/lp/ilp_model.ml: Array Hashtbl Insp_platform Insp_tree List Milp Simplex

lib/lp/ilp_model.mli: Insp_platform Insp_tree Milp

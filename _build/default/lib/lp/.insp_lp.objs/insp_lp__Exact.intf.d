lib/lp/exact.mli: Insp_mapping Insp_platform Insp_tree Stdlib

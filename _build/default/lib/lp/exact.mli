(** Exact branch-and-bound solver for the homogeneous (CONSTR-HOM)
    operator-mapping problem — the role CPLEX plays in the paper's §5
    comparison, restricted as the paper is to small instances.

    The search assigns operators in preorder, each either to an existing
    group or to one fresh group (canonical first-fit ordering removes
    processor symmetry).  A group must satisfy its compute and NIC
    capacity ({!Insp_mapping.Demand}) and the pairwise link constraint
    at every step; complete assignments additionally go through server
    selection and the full constraint checker before being accepted.
    The bound is [groups_used + ceil(remaining_work / speed)]. *)

type result = {
  n_procs : int;
  cost : float;
  alloc : Insp_mapping.Alloc.t;
  proven : bool;  (** false when the node limit truncated the search *)
  nodes : int;
}

val solve :
  ?node_limit:int ->
  ?max_groups:int ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  (result, string) Stdlib.result
(** [node_limit] defaults to 2_000_000; [max_groups] defaults to the
    number of operators.  Errors when the platform is not homogeneous or
    no feasible solution exists within the limits. *)

val lower_bound_procs : Insp_tree.App.t -> Insp_platform.Platform.t -> int
(** [ceil(rho * total_work / speed)] combined with the download-traffic
    bound — a quick valid lower bound on the processor count. *)

lib/experiments/suite.mli: Figure

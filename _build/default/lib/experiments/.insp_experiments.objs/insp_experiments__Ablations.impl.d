lib/experiments/ablations.ml: Figure Fun Insp_heuristics Insp_mapping Insp_platform Insp_util Insp_workload List Printf

lib/experiments/suite.ml: Ablations Figure Insp_heuristics Insp_lp Insp_mapping Insp_multi Insp_platform Insp_rewrite Insp_sim Insp_tree Insp_util Insp_workload List Option Printf

lib/experiments/figure.ml: Buffer Float Insp_util List Printf

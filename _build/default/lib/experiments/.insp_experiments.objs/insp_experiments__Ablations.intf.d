lib/experiments/ablations.mli: Figure Insp_workload

lib/experiments/figure.mli: Insp_util

module Table = Insp_util.Table
module Csv = Insp_util.Csv

type cell = {
  mean_cost : float option;
  successes : int;
  attempts : int;
}

type point = { x : float; cells : (string * cell) list }

type t = {
  id : string;
  title : string;
  xlabel : string;
  points : point list;
  notes : string list;
}

let cell_of_costs ~attempts costs =
  let successes = List.length costs in
  let mean_cost =
    if 2 * successes < attempts || successes = 0 then None
    else Some (Insp_util.Stats.mean costs)
  in
  { mean_cost; successes; attempts }

let series_names t =
  match t.points with [] -> [] | p :: _ -> List.map fst p.cells

let fmt_x x =
  if Float.is_integer x then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.2f" x

let to_csv t =
  let names = series_names t in
  let csv = Csv.create (t.xlabel :: names) in
  List.iter
    (fun p ->
      Csv.add_floats csv
        (p.x
        :: List.map
             (fun n ->
               match List.assoc_opt n p.cells with
               | Some { mean_cost = Some c; _ } -> c
               | _ -> Float.nan)
             names))
    t.points;
  csv

let render t =
  let names = series_names t in
  let table =
    Table.create
      ~title:(Printf.sprintf "[%s] %s" t.id t.title)
      ((t.xlabel, Table.Right)
      :: List.map (fun n -> (n, Table.Right)) names)
  in
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun n ->
            match List.assoc_opt n p.cells with
            | Some { mean_cost = Some c; successes; attempts } ->
              if successes = attempts then Printf.sprintf "%.0f" c
              else Printf.sprintf "%.0f (%d/%d)" c successes attempts
            | Some { mean_cost = None; successes; attempts } ->
              if successes = 0 then "-"
              else Printf.sprintf "- (%d/%d)" successes attempts
            | None -> "?")
          names
      in
      Table.add_row table (fmt_x p.x :: cells))
    t.points;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Table.render table);
  List.iter
    (fun note ->
      Buffer.add_string buf ("note: " ^ note);
      Buffer.add_char buf '\n')
    t.notes;
  Buffer.add_string buf "csv:\n";
  Buffer.add_string buf (Csv.to_string (to_csv t));
  Buffer.contents buf

let winner_counts t =
  let names = series_names t in
  let wins = List.map (fun n -> (n, ref 0)) names in
  List.iter
    (fun p ->
      let plotted =
        List.filter_map
          (fun (n, c) ->
            match c.mean_cost with Some v -> Some (n, v) | None -> None)
          p.cells
      in
      match plotted with
      | [] -> ()
      | (n0, v0) :: rest ->
        let best_name, best_val =
          List.fold_left
            (fun (bn, bv) (n, v) -> if v < bv then (n, v) else (bn, bv))
            (n0, v0) rest
        in
        let strictly =
          List.for_all
            (fun (n, v) -> n = best_name || v > best_val)
            plotted
        in
        if strictly then
          match List.assoc_opt best_name wins with
          | Some r -> incr r
          | None -> ())
    t.points;
  List.map (fun (n, r) -> (n, !r)) wins

type t = {
  catalog : Catalog.t;
  servers : Servers.t;
  server_link : float;
  proc_link : float;
}

let make ~catalog ~servers ?(server_link = 1000.0) ?(proc_link = 1000.0) () =
  if server_link <= 0.0 || proc_link <= 0.0 then
    invalid_arg "Platform.make: non-positive link bandwidth";
  { catalog; servers; server_link; proc_link }

let paper_default rng ?(n_servers = 6) ?(n_object_types = 15) ?(min_copies = 1)
    ?max_copies () =
  let servers =
    Servers.random_placement rng ~n_servers ~n_object_types ~card:10000.0
      ~min_copies ?max_copies ()
  in
  make ~catalog:Catalog.dell_2008 ~servers ()

let homogeneous t ~cpu_index ~nic_index =
  { t with catalog = Catalog.homogeneous t.catalog ~cpu_index ~nic_index }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>platform: links server->proc %.0f MB/s, proc<->proc %.0f MB/s@ %a%a@]"
    t.server_link t.proc_link Servers.pp t.servers Catalog.pp t.catalog

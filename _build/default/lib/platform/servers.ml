module Prng = Insp_util.Prng

type t = { cards : float array; holds : bool array array }

let make ~cards ~holds =
  let n_servers = Array.length cards in
  if n_servers = 0 then invalid_arg "Servers.make: no servers";
  if Array.length holds <> n_servers then
    invalid_arg "Servers.make: holds row count mismatch";
  let n_objects = Array.length holds.(0) in
  if n_objects = 0 then invalid_arg "Servers.make: no object types";
  Array.iter
    (fun row ->
      if Array.length row <> n_objects then
        invalid_arg "Servers.make: ragged holds matrix")
    holds;
  Array.iter
    (fun c -> if c <= 0.0 then invalid_arg "Servers.make: non-positive card")
    cards;
  for k = 0 to n_objects - 1 do
    let held = Array.exists (fun row -> row.(k)) holds in
    if not held then
      invalid_arg
        (Printf.sprintf "Servers.make: object type %d is held by no server" k)
  done;
  { cards = Array.copy cards; holds = Array.map Array.copy holds }

let random_placement rng ~n_servers ~n_object_types ~card ?(min_copies = 1)
    ?max_copies () =
  let max_copies =
    match max_copies with Some m -> m | None -> min 2 n_servers
  in
  if n_servers < 1 then invalid_arg "Servers.random_placement: n_servers >= 1";
  if n_object_types < 1 then
    invalid_arg "Servers.random_placement: n_object_types >= 1";
  if min_copies < 1 || max_copies < min_copies || max_copies > n_servers then
    invalid_arg "Servers.random_placement: bad replication range";
  let holds = Array.make_matrix n_servers n_object_types false in
  for k = 0 to n_object_types - 1 do
    let copies = Prng.int_range rng min_copies max_copies in
    let chosen = Prng.sample_without_replacement rng copies n_servers in
    List.iter (fun l -> holds.(l).(k) <- true) chosen
  done;
  make ~cards:(Array.make n_servers card) ~holds

let n_servers t = Array.length t.cards
let n_object_types t = Array.length t.holds.(0)
let card t l = t.cards.(l)
let holds t l k = t.holds.(l).(k)

let providers t k =
  let acc = ref [] in
  for l = n_servers t - 1 downto 0 do
    if t.holds.(l).(k) then acc := l :: !acc
  done;
  !acc

let availability t k = List.length (providers t k)

let objects_on t l =
  let acc = ref [] in
  for k = n_object_types t - 1 downto 0 do
    if t.holds.(l).(k) then acc := k :: !acc
  done;
  !acc

let exclusive_objects t =
  let acc = ref [] in
  for k = n_object_types t - 1 downto 0 do
    match providers t k with
    | [ l ] -> acc := (k, l) :: !acc
    | _ -> ()
  done;
  !acc

let single_object_servers t =
  let acc = ref [] in
  for l = n_servers t - 1 downto 0 do
    if List.length (objects_on t l) = 1 then acc := l :: !acc
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for l = 0 to n_servers t - 1 do
    Format.fprintf ppf "S%d (card %.0f MB/s): {%s}@ " l t.cards.(l)
      (String.concat ", "
         (List.map (fun k -> Printf.sprintf "o%d" k) (objects_on t l)))
  done;
  Format.fprintf ppf "@]"

lib/platform/servers.ml: Array Format Insp_util List Printf String

lib/platform/servers.mli: Format Insp_util

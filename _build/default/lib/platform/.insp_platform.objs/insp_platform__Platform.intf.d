lib/platform/platform.mli: Catalog Format Insp_util Servers

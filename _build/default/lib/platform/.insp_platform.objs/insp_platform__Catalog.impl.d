lib/platform/catalog.ml: Array Format List

lib/platform/catalog.mli: Format

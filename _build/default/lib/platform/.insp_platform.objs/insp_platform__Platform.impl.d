lib/platform/platform.ml: Catalog Format Servers

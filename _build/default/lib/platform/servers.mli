(** Fixed data servers holding the basic objects (paper §2.2).

    Servers are given, not purchased.  Server [S_l] has a network card of
    bandwidth [Bs_l] (MB/s) and holds a subset of the object types; a
    processor downloading object [o_k] from [S_l] consumes [rate_k] on
    the server's card and on the server-to-processor link. *)

type t

val make : cards:float array -> holds:bool array array -> t
(** [holds.(l).(k)] says server [l] carries object type [k].  All rows
    must have the same width; every object type must be held by at least
    one server; cards must be strictly positive. *)

val random_placement :
  Insp_util.Prng.t ->
  n_servers:int ->
  n_object_types:int ->
  card:float ->
  ?min_copies:int ->
  ?max_copies:int ->
  unit ->
  t
(** Paper §5 setup: object types distributed randomly over the servers.
    Each object type is placed on a uniformly drawn number of distinct
    servers between [min_copies] (default 1) and [max_copies] (default
    [min 2 n_servers]). *)

val n_servers : t -> int
val n_object_types : t -> int

val card : t -> int -> float
(** Network-card bandwidth of a server (MB/s). *)

val holds : t -> int -> int -> bool
(** [holds t l k]: does server [l] carry object type [k]? *)

val providers : t -> int -> int list
(** Servers holding object type [k], increasing order.  Never empty. *)

val availability : t -> int -> int
(** [av_k]: number of servers holding object type [k] (paper's
    Object-Availability metric). *)

val objects_on : t -> int -> int list
(** Object types carried by a server, increasing order. *)

val exclusive_objects : t -> (int * int) list
(** Pairs [(k, l)] where object [k] is held only by server [l] (the
    server-selection heuristic's first loop). *)

val single_object_servers : t -> int list
(** Servers that carry exactly one object type (second loop). *)

val pp : Format.formatter -> t -> unit

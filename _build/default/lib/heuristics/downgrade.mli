(** The downgrade step (paper §4.2, end): once operators and download
    sources are fixed, each processor is replaced by the cheapest
    catalog configuration that still satisfies its CPU and network-card
    requirements.  A no-op on homogeneous catalogs. *)

val run :
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  Insp_mapping.Alloc.t ->
  Insp_mapping.Alloc.t
(** Never changes the operator assignment or the download plan; never
    increases cost; preserves feasibility. *)

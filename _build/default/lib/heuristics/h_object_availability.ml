module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Platform = Insp_platform.Platform
module Servers = Insp_platform.Servers

(* Comp-Greedy style placement of whatever operators remain; bounded
   because the grouping fallback can release operators. *)
let place_rest b app =
  let budget = ref ((App.n_operators app * App.n_operators app) + 16) in
  let rec loop () =
    match Common.by_work_desc app (Builder.unassigned b) with
    | [] -> Ok b
    | heaviest :: _ ->
      decr budget;
      if !budget <= 0 then
        Error "placement did not converge (grouping fallback oscillates)"
      else (
        match Common.acquire_with_grouping b ~style:`Best heaviest with
        | Error e -> Error e
        | Ok gid ->
          Common.fill b gid (Common.by_work_desc app (Builder.unassigned b));
          loop ())
  in
  loop ()

let run _rng app platform =
  let b = Builder.create app platform in
  let tree = App.tree app in
  let servers = platform.Platform.servers in
  let used_objects =
    Optree.leaf_instances tree |> List.map snd |> List.sort_uniq compare
  in
  let by_availability_asc =
    List.sort
      (fun a b ->
        let c = compare (Servers.availability servers a)
                  (Servers.availability servers b) in
        if c <> 0 then c else compare a b)
      used_objects
  in
  let needs_object i k = List.mem k (Common.object_set app i) in
  let budget = ref ((App.n_operators app * App.n_operators app) + 16) in
  let rec pack_object k =
    decr budget;
    if !budget <= 0 then
      Error "placement did not converge (grouping fallback oscillates)"
    else
    let pending =
      List.filter
        (fun i -> Optree.is_al_operator tree i && needs_object i k)
        (Builder.unassigned b)
      |> Common.by_work_desc app
    in
    match pending with
    | [] -> Ok ()
    | first :: others -> (
      match Common.acquire_with_grouping b ~style:`Best first with
      | Error e -> Error e
      | Ok gid ->
        Common.fill b gid others;
        pack_object k)
  in
  let rec objects = function
    | [] -> place_rest b app
    | k :: rest -> (
      match pack_object k with Error e -> Error e | Ok () -> objects rest)
  in
  objects by_availability_asc

module App = Insp_tree.App
module Platform = Insp_platform.Platform
module Alloc = Insp_mapping.Alloc
module Check = Insp_mapping.Check
module Cost = Insp_mapping.Cost
module Prng = Insp_util.Prng

type heuristic = {
  name : string;
  key : string;
  run :
    Prng.t -> App.t -> Platform.t -> (Builder.t, string) result;
  randomized : bool;
}

let all =
  [
    { name = "Random"; key = "random"; run = H_random.run; randomized = true };
    {
      name = "Comp-Greedy";
      key = "comp";
      run = H_comp_greedy.run;
      randomized = false;
    };
    {
      name = "Comm-Greedy";
      key = "comm";
      run = H_comm_greedy.run;
      randomized = false;
    };
    {
      name = "Subtree-bottom-up";
      key = "sbu";
      run = H_subtree.run;
      randomized = false;
    };
    {
      name = "Object-Grouping";
      key = "objgroup";
      run = H_object_grouping.run;
      randomized = false;
    };
    {
      name = "Object-Availability";
      key = "objavail";
      run = H_object_availability.run;
      randomized = false;
    };
  ]

let find ident =
  let ident = String.lowercase_ascii ident in
  List.find_opt
    (fun h -> h.key = ident || String.lowercase_ascii h.name = ident)
    all

type outcome = { alloc : Alloc.t; cost : float; n_procs : int }

type failure =
  | Placement of string
  | Server_selection of string
  | Validation of string

let failure_message = function
  | Placement m -> "placement failed: " ^ m
  | Server_selection m -> "server selection failed: " ^ m
  | Validation m -> "validation failed: " ^ m

let run ?(seed = 0) heuristic app platform =
  let rng = Prng.create seed in
  match heuristic.run rng app platform with
  | Error msg -> Error (Placement msg)
  | Ok builder -> (
    match Builder.finalize builder with
    | Error msg -> Error (Placement msg)
    | Ok (groups, configs) -> (
      let selection =
        if heuristic.randomized then
          Server_select.random rng app platform ~groups
        else Server_select.sophisticated app platform ~groups
      in
      match selection with
      | Error msg -> Error (Server_selection msg)
      | Ok downloads -> (
        let alloc = Alloc.of_groups ~configs ~groups ~downloads in
        let alloc = Downgrade.run app platform alloc in
        match Check.check app platform alloc with
        | [] ->
          Ok
            {
              alloc;
              cost = Cost.of_alloc platform.Platform.catalog alloc;
              n_procs = Alloc.n_procs alloc;
            }
        | violations -> Error (Validation (Check.explain violations)))))

let run_all ?(seed = 0) app platform =
  List.map (fun h -> (h, run ~seed h app platform)) all

(** The Comp-Greedy operator-placement heuristic (paper §4.1).

    Operators are treated in non-increasing computational demand [w_i].
    Each round buys the most expensive processor for the heaviest
    unassigned operator (with the Random heuristic's grouping fallback if
    it does not fit), then fills the remaining capacity with further
    unassigned operators in non-increasing [w_i] order. *)

val run :
  Insp_util.Prng.t ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  (Builder.t, string) result

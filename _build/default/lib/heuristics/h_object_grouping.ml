module App = Insp_tree.App
module Optree = Insp_tree.Optree

let popularity_sum pop app i =
  List.fold_left (fun acc k -> acc +. float_of_int pop.(k)) 0.0
    (Common.object_set app i)

let shares_object app a b =
  List.exists (fun k -> List.mem k (Common.object_set app b))
    (Common.object_set app a)

(* Comp-Greedy style placement of whatever operators remain; bounded
   because the grouping fallback can release operators. *)
let place_rest b app =
  let budget = ref ((App.n_operators app * App.n_operators app) + 16) in
  let rec loop () =
    match Common.by_work_desc app (Builder.unassigned b) with
    | [] -> Ok b
    | heaviest :: _ ->
      decr budget;
      if !budget <= 0 then
        Error "placement did not converge (grouping fallback oscillates)"
      else (
        match Common.acquire_with_grouping b ~style:`Best heaviest with
        | Error e -> Error e
        | Ok gid ->
          Common.fill b gid (Common.by_work_desc app (Builder.unassigned b));
          loop ())
  in
  loop ()

let run _rng app platform =
  let b = Builder.create app platform in
  let tree = App.tree app in
  let pop = Optree.object_popularity tree in
  let by_popularity_desc ops =
    List.sort
      (fun a b ->
        let c = compare (popularity_sum pop app b) (popularity_sum pop app a) in
        if c <> 0 then c else compare a b)
      ops
  in
  let budget = ref ((App.n_operators app * App.n_operators app) + 16) in
  let rec rounds () =
    decr budget;
    if !budget <= 0 then
      Error "placement did not converge (grouping fallback oscillates)"
    else
    let al_pending =
      List.filter (Optree.is_al_operator tree) (Builder.unassigned b)
      |> by_popularity_desc
    in
    match al_pending with
    | [] -> place_rest b app
    | first :: others -> (
      match Common.acquire_with_grouping b ~style:`Best first with
      | Error e -> Error e
      | Ok gid ->
        let sharing = List.filter (shares_object app first) others in
        Common.fill b gid (by_popularity_desc sharing);
        let non_al =
          List.filter
            (fun i -> not (Optree.is_al_operator tree i))
            (Builder.unassigned b)
        in
        Common.fill b gid (Common.by_work_desc app non_al);
        rounds ())
  in
  rounds ()

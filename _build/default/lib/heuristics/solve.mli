(** End-to-end heuristic solver: operator placement, then server
    selection, then downgrade, then validation (paper §4).

    Every returned {!outcome} has passed the full constraint checker
    ({!Insp_mapping.Check}); a heuristic that cannot produce a feasible
    allocation reports a {!failure} with the stage that gave up. *)

type heuristic = {
  name : string;  (** paper name, e.g. "Subtree-bottom-up" *)
  key : string;  (** short CLI identifier, e.g. "sbu" *)
  run :
    Insp_util.Prng.t ->
    Insp_tree.App.t ->
    Insp_platform.Platform.t ->
    (Builder.t, string) result;
  randomized : bool;
      (** true when results depend on the PRNG (Random heuristic and its
          random server selection) *)
}

val all : heuristic list
(** The paper's six heuristics, in the paper's order: Random,
    Comp-Greedy, Comm-Greedy, Subtree-bottom-up, Object-Grouping,
    Object-Availability. *)

val find : string -> heuristic option
(** Lookup by [key] or [name] (case-insensitive). *)

type outcome = {
  alloc : Insp_mapping.Alloc.t;
  cost : float;
  n_procs : int;
}

type failure =
  | Placement of string
  | Server_selection of string
  | Validation of string
      (** internal invariant breach: placement and selection succeeded
          but the checker rejected the allocation *)

val failure_message : failure -> string

val run :
  ?seed:int ->
  heuristic ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  (outcome, failure) result
(** Runs the full pipeline.  [seed] (default 0) feeds the PRNG of
    randomized stages; deterministic heuristics ignore it. *)

val run_all :
  ?seed:int ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  (heuristic * (outcome, failure) result) list
(** Every heuristic on the same instance. *)

module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform
module Demand = Insp_mapping.Demand

type group_id = int

type group = { mutable members : int list; mutable cfg : Catalog.config }

type t = {
  app : App.t;
  platform : Platform.t;
  groups : (group_id, group) Hashtbl.t;
  mutable order : group_id list;  (* acquisition order, reversed *)
  mutable next_id : group_id;
  assign : group_id option array;  (* operator -> group *)
}

let create app platform =
  {
    app;
    platform;
    groups = Hashtbl.create 32;
    order = [];
    next_id = 0;
    assign = Array.make (App.n_operators app) None;
  }

let app t = t.app
let platform t = t.platform

let group_ids t = List.rev t.order

let group t gid =
  match Hashtbl.find_opt t.groups gid with
  | Some g -> g
  | None -> invalid_arg "Builder: dead group id"

let members t gid = (group t gid).members
let config t gid = (group t gid).cfg
let assignment t i = t.assign.(i)

let unassigned t =
  let acc = ref [] in
  for i = Array.length t.assign - 1 downto 0 do
    if t.assign.(i) = None then acc := i :: !acc
  done;
  !acc

let all_assigned t = Array.for_all Option.is_some t.assign

let demand t gid = Demand.of_group t.app (members t gid)

(* Flow (MB/s) over the link between two disjoint member sets: tree edges
   with one endpoint in each. *)
let flow_between app g h =
  let tree = App.tree app in
  let rho = App.rho app in
  let in_set set i = List.mem i set in
  let one_way src dst =
    List.fold_left
      (fun acc i ->
        match Optree.parent tree i with
        | Some p when in_set dst p -> acc +. (rho *. App.output_size app i)
        | Some _ | None -> acc)
      0.0 src
  in
  one_way g h +. one_way h g

let tolerance = 1e-9
let leq value capacity = value <= capacity *. (1.0 +. tolerance) +. tolerance

let can_host t ~config ~members ?(ignore_groups = []) () =
  let d = Demand.of_group t.app members in
  Demand.fits config d
  && Hashtbl.fold
       (fun gid g ok ->
         ok
         && (List.mem gid ignore_groups
            || leq
                 (flow_between t.app members g.members)
                 t.platform.Platform.proc_link))
       t.groups true

let cheapest_hosting t ~members ?(ignore_groups = []) () =
  let catalog = t.platform.Platform.catalog in
  List.find_opt
    (fun cfg -> can_host t ~config:cfg ~members ~ignore_groups ())
    (Catalog.configs catalog)

let acquire t ~config ~members =
  List.iter
    (fun i ->
      if t.assign.(i) <> None then
        invalid_arg "Builder.acquire: operator already assigned")
    members;
  if not (can_host t ~config ~members ()) then
    Error
      (Printf.sprintf "cannot host operators {%s} on the requested processor"
         (String.concat ", " (List.map string_of_int members)))
  else begin
    let gid = t.next_id in
    t.next_id <- t.next_id + 1;
    Hashtbl.replace t.groups gid
      { members = List.sort compare members; cfg = config };
    t.order <- gid :: t.order;
    List.iter (fun i -> t.assign.(i) <- Some gid) members;
    Ok gid
  end

let try_add t gid op =
  if t.assign.(op) <> None then
    invalid_arg "Builder.try_add: operator already assigned";
  let g = group t gid in
  let candidate = List.sort compare (op :: g.members) in
  if can_host t ~config:g.cfg ~members:candidate ~ignore_groups:[ gid ] () then begin
    g.members <- candidate;
    t.assign.(op) <- Some gid;
    true
  end
  else false

let sell t gid =
  let g = group t gid in
  List.iter (fun i -> t.assign.(i) <- None) g.members;
  Hashtbl.remove t.groups gid;
  t.order <- List.filter (fun id -> id <> gid) t.order

let try_absorb t winner loser =
  if winner = loser then invalid_arg "Builder.try_absorb: same group";
  let gw = group t winner in
  let gl = group t loser in
  let candidate = List.sort compare (gw.members @ gl.members) in
  if
    can_host t ~config:gw.cfg ~members:candidate
      ~ignore_groups:[ winner; loser ] ()
  then begin
    let absorbed = gl.members in
    sell t loser;
    gw.members <- candidate;
    List.iter (fun i -> t.assign.(i) <- Some winner) absorbed;
    true
  end
  else false

let try_add_upgrade t gid op =
  if t.assign.(op) <> None then
    invalid_arg "Builder.try_add_upgrade: operator already assigned";
  let g = group t gid in
  let candidate = List.sort compare (op :: g.members) in
  match cheapest_hosting t ~members:candidate ~ignore_groups:[ gid ] () with
  | None -> false
  | Some cfg ->
    g.members <- candidate;
    g.cfg <- cfg;
    t.assign.(op) <- Some gid;
    true

let try_absorb_upgrade t winner loser =
  if winner = loser then invalid_arg "Builder.try_absorb_upgrade: same group";
  let gw = group t winner in
  let gl = group t loser in
  let candidate = List.sort compare (gw.members @ gl.members) in
  match
    cheapest_hosting t ~members:candidate ~ignore_groups:[ winner; loser ] ()
  with
  | None -> false
  | Some cfg ->
    let absorbed = gl.members in
    sell t loser;
    gw.members <- candidate;
    gw.cfg <- cfg;
    List.iter (fun i -> t.assign.(i) <- Some winner) absorbed;
    true

let sell_if_empty t gid =
  match Hashtbl.find_opt t.groups gid with
  | Some g when g.members = [] -> sell t gid
  | Some _ | None -> ()

let release_operator t op =
  match t.assign.(op) with
  | None -> ()
  | Some gid ->
    let g = group t gid in
    g.members <- List.filter (fun i -> i <> op) g.members;
    t.assign.(op) <- None;
    sell_if_empty t gid

let set_config t gid cfg = (group t gid).cfg <- cfg

let finalize t =
  if not (all_assigned t) then
    Error "placement incomplete: some operators remain unassigned"
  else begin
    let ids = group_ids t in
    let groups = Array.of_list (List.map (members t) ids) in
    let configs = Array.of_list (List.map (config t) ids) in
    Ok (groups, configs)
  end

(** The Object-Grouping operator-placement heuristic (paper §4.1).

    The popularity of a basic object is the number of operators needing
    it.  Al-operators are treated in non-increasing total popularity of
    their objects: each round buys a most-expensive processor for the
    first remaining al-operator, packs onto it the other al-operators
    sharing basic objects with it (by non-increasing popularity), then as
    many non-al operators as possible.  Leftover non-al operators are
    placed Comp-Greedy style. *)

val run :
  Insp_util.Prng.t ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  (Builder.t, string) result

module App = Insp_tree.App

let run _rng app platform =
  let b = Builder.create app platform in
  (* The grouping fallback can sell a processor and release its
     operators, so bound the number of rounds to guarantee
     termination. *)
  let budget = ref ((App.n_operators app * App.n_operators app) + 16) in
  let rec loop () =
    match Common.by_work_desc app (Builder.unassigned b) with
    | [] -> Ok b
    | heaviest :: _ ->
      decr budget;
      if !budget <= 0 then
        Error "placement did not converge (grouping fallback oscillates)"
      else (
        match Common.acquire_with_grouping b ~style:`Best heaviest with
        | Error e -> Error e
        | Ok gid ->
          Common.fill b gid (Common.by_work_desc app (Builder.unassigned b));
          loop ())
  in
  loop ()

(** Server-selection heuristics (paper §4.2).

    After placement, each processor must pick which server to download
    each of its basic objects from, respecting server card capacity
    (constraint (3)) and server-to-processor link capacity (constraint
    (4)).

    {!random} (used with the Random placement heuristic) draws a server
    uniformly among the capable providers of each object.

    {!sophisticated} (used with all the others) runs the paper's three
    loops: (1) downloads of objects held by a single server are forced —
    failure here aborts the heuristic; (2) servers carrying exactly one
    object type absorb as many of that object's downloads as possible;
    (3) remaining downloads are assigned treating objects in decreasing
    [nbP/nbS] (processors still needing the object over servers still
    able to provide it) and choosing, per download, the server with the
    largest remaining [min(card, link)] capacity. *)

type plan = (int * int) list array
(** Per processor group: one (object type, server) pair per distinct
    object type the group needs. *)

val random :
  Insp_util.Prng.t ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  groups:int list array ->
  (plan, string) result

val sophisticated :
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  groups:int list array ->
  (plan, string) result

val sophisticated_generic :
  n_groups:int ->
  rate:(int -> float) ->
  servers:Insp_platform.Servers.t ->
  server_link:float ->
  needs:(int * int) list ->
  (plan, string) result
(** Application-independent core of {!sophisticated}: [needs] lists the
    [(group, object type)] downloads to source, [rate k] is the
    bandwidth each download of object [k] consumes.  Used by the
    multi-application DAG extension. *)

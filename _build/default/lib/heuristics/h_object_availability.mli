(** The Object-Availability operator-placement heuristic (paper §4.1).

    For each basic object [k], [av_k] is the number of servers holding
    it.  Objects are treated in increasing [av_k] (scarcest first); for
    each, the heuristic packs as many al-operators downloading that
    object as possible onto most-expensive processors.  Remaining
    operators are placed Comp-Greedy style (non-increasing [w_i]). *)

val run :
  Insp_util.Prng.t ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  (Builder.t, string) result

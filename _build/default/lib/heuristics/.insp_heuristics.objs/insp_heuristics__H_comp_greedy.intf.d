lib/heuristics/h_comp_greedy.mli: Builder Insp_platform Insp_tree Insp_util

lib/heuristics/common.mli: Builder Insp_tree

lib/heuristics/builder.ml: Array Hashtbl Insp_mapping Insp_platform Insp_tree List Option Printf String

lib/heuristics/h_comp_greedy.ml: Builder Common Insp_tree

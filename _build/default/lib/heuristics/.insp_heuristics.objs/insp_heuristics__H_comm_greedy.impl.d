lib/heuristics/h_comm_greedy.ml: Builder Common Fun Insp_tree List

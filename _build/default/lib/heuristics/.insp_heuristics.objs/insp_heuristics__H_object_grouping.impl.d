lib/heuristics/h_object_grouping.ml: Array Builder Common Insp_tree List

lib/heuristics/server_select.ml: Array Float Insp_mapping Insp_platform Insp_tree Insp_util List Printf

lib/heuristics/h_subtree.mli: Builder Insp_platform Insp_tree Insp_util

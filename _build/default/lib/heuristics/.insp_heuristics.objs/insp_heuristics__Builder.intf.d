lib/heuristics/builder.mli: Insp_mapping Insp_platform Insp_tree

lib/heuristics/h_subtree.ml: Builder Common Float Insp_tree List Option

lib/heuristics/h_random.ml: Builder Common Insp_tree Insp_util

lib/heuristics/h_random.mli: Builder Insp_platform Insp_tree Insp_util

lib/heuristics/common.ml: Builder Fun Insp_platform Insp_tree List Option Printf String

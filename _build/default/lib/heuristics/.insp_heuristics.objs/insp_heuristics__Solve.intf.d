lib/heuristics/solve.mli: Builder Insp_mapping Insp_platform Insp_tree Insp_util

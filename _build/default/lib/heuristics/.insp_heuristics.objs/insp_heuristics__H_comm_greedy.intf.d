lib/heuristics/h_comm_greedy.mli: Builder Insp_platform Insp_tree Insp_util

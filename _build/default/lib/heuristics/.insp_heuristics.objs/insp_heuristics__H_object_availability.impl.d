lib/heuristics/h_object_availability.ml: Builder Common Insp_platform Insp_tree List

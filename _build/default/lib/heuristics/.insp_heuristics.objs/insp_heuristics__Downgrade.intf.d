lib/heuristics/downgrade.mli: Insp_mapping Insp_platform Insp_tree

lib/heuristics/h_object_availability.mli: Builder Insp_platform Insp_tree Insp_util

lib/heuristics/server_select.mli: Insp_platform Insp_tree Insp_util

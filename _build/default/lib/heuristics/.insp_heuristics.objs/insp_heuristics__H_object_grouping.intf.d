lib/heuristics/h_object_grouping.mli: Builder Insp_platform Insp_tree Insp_util

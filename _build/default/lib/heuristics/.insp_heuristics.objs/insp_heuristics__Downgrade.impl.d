lib/heuristics/downgrade.ml: Insp_mapping Insp_platform

module Prng = Insp_util.Prng
module App = Insp_tree.App

let run rng app platform =
  let b = Builder.create app platform in
  (* The grouping fallback can sell a processor and release its
     operators, so bound the number of rounds to guarantee
     termination. *)
  let budget = ref ((App.n_operators app * App.n_operators app) + 16) in
  let rec loop () =
    match Builder.unassigned b with
    | [] -> Ok b
    | pending ->
      decr budget;
      if !budget <= 0 then
        Error "placement did not converge (grouping fallback oscillates)"
      else (
        let op = Prng.choose_list rng pending in
        match Common.acquire_with_grouping b ~style:`Cheapest op with
        | Ok _ -> loop ()
        | Error e -> Error e)
  in
  loop ()

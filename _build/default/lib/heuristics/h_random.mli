(** The Random operator-placement heuristic (paper §4.1).

    While operators remain unassigned, pick one uniformly at random and
    buy the cheapest processor able to host it at the target throughput.
    If none exists, group it with the neighbour (child or parent) sharing
    its most demanding communication edge — selling the neighbour's
    processor if it had one — and buy the cheapest processor for the
    pair; fail if even that is impossible. *)

val run :
  Insp_util.Prng.t ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  (Builder.t, string) result

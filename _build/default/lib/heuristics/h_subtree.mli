(** The Subtree-Bottom-Up operator-placement heuristic (paper §4.1) —
    the paper's overall winner.

    Buys one most-expensive processor per al-operator (operator with at
    least one object leaf) and assigns each al-operator to its own
    processor.  Then merges bottom-up: each processor, deepest first,
    repeatedly allocates the parents of its operators to itself — adding
    an unassigned parent directly, or absorbing the parent's current
    processor wholesale and returning it to the store.  Rounds repeat
    until no processor grows.  Operators that could not be merged
    anywhere get fresh most-expensive processors (children first, each
    trying its children's processors before buying). *)

val run :
  Insp_util.Prng.t ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  (Builder.t, string) result

# Development entry points.  `make check` is the tier-1 gate.

.PHONY: check build test bench clean

check:
	dune build && dune runtest

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe -- --quick

clean:
	dune clean

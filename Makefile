# Development entry points.  `make check` is the tier-1 gate.

.PHONY: check build test bench bench-json bench-compare lint lint-quick lint-deep prof clean

check:
	dune build && dune runtest && $(MAKE) lint

build:
	dune build

test:
	dune runtest

# Static analysis (DESIGN.md §9): determinism & float-hygiene rules
# D1-D6, F1, P1, P2 over the whole tree.  `lint-quick` restricts to
# files changed or untracked per `git status --porcelain`.
lint:
	dune build bin/insp_lint.exe
	dune exec bin/insp_lint.exe -- --baseline lint.baseline lib bin bench test

lint-quick:
	dune build bin/insp_lint.exe
	dune exec bin/insp_lint.exe -- --baseline lint.baseline --quick lib bin bench test

# Whole-program pass (DESIGN.md §14): builds the typedtrees first, then
# runs T1 (static races), T2 (determinism taint) and T3 (dead exports)
# on top of the per-file rules.  Without a fresh build the driver exits
# 2 with a diagnostic pointing back here.
lint-deep:
	dune build @check bin/insp_lint.exe
	dune exec bin/insp_lint.exe -- --deep --cmt-root _build/default --baseline lint.baseline lib bin bench test

bench:
	dune exec bench/main.exe -- --quick

# Machine-readable benchmark summary (wall time + headline counters per
# experiment), for trend tracking across commits.
bench-json:
	dune exec bench/main.exe -- --quick --json BENCH_insp.json

# Regenerate the quick summary into a scratch file (git-ignored) and
# diff it against the committed BENCH_insp.json: wall-time deltas plus
# any counter/gauge drift.  Advisory; add --strict to fail on drift.
bench-compare:
	dune exec bench/main.exe -- --quick --json BENCH_insp.current.json
	dune exec bench/compare.exe -- BENCH_insp.json BENCH_insp.current.json

# Allocation profile of the scale preset (the scale.10k bench row):
# writes prof.report / prof.csv / prof.{alloc,time}.folded under
# _build/prof/.  Feed the .folded files to any folded-stack flamegraph
# renderer (e.g. flamegraph.pl or speedscope).
prof:
	dune build bin/insp_cli.exe
	mkdir -p _build/prof
	dune exec bin/insp_cli.exe -- solve --scale -n 10000 -H comp --seed 1 --profile _build/prof/prof

clean:
	dune clean

let compute ~caps ~membership =
  Insp_obs.Obs.incr "sim.fair_share.call";
  let n_flows = Array.length membership in
  let n_caps = Array.length caps in
  Array.iter
    (fun ms ->
      if ms = [] then invalid_arg "Fair_share.compute: flow with no constraint";
      List.iter
        (fun c ->
          if c < 0 || c >= n_caps then
            invalid_arg "Fair_share.compute: bad constraint index")
        ms)
    membership;
  Array.iter
    (fun c -> if c < 0.0 then invalid_arg "Fair_share.compute: negative cap")
    caps;
  let rates = Array.make n_flows 0.0 in
  let frozen = Array.make n_flows false in
  let remaining = Array.copy caps in
  (* Counted once up front and decremented as flows freeze — the counts
     are integers, so this is exactly equivalent to the per-round rescan
     it replaces, at O(membership) total instead of O(rounds * flows *
     caps). *)
  let unfrozen_count = Array.make n_caps 0 in
  Array.iter
    (fun ms ->
      List.iter (fun c -> unfrozen_count.(c) <- unfrozen_count.(c) + 1) ms)
    membership;
  let n_frozen = ref 0 in
  let rounds = ref 0 in
  while !n_frozen < n_flows do
    incr rounds;
    (* Bottleneck constraint: smallest fair share among its unfrozen
       flows. *)
    let best_c = ref (-1) in
    let best_share = ref infinity in
    for c = 0 to n_caps - 1 do
      if unfrozen_count.(c) > 0 then begin
        let share = remaining.(c) /. float_of_int unfrozen_count.(c) in
        if share < !best_share then begin
          best_share := share;
          best_c := c
        end
      end
    done;
    assert (!best_c >= 0);
    let share = Float.max 0.0 !best_share in
    Array.iteri
      (fun f ms ->
        if (not frozen.(f)) && List.mem !best_c ms then begin
          rates.(f) <- share;
          frozen.(f) <- true;
          incr n_frozen;
          (* Clamp at the constraint level: float rounding when a frozen
             flow spans several near-saturated constraints can push
             [remaining] slightly negative, which would later surface as
             a negative best_share for an unrelated flow. *)
          List.iter
            (fun c ->
              remaining.(c) <- Float.max 0.0 (remaining.(c) -. share);
              unfrozen_count.(c) <- unfrozen_count.(c) - 1)
            ms
        end)
      membership
  done;
  Insp_obs.Obs.add "sim.fair_share.round" !rounds;
  rates

let tolerance = 1e-6

let is_max_min ~caps ~membership ~rates =
  let n_caps = Array.length caps in
  let load = Array.make n_caps 0.0 in
  Array.iteri
    (fun f ms -> List.iter (fun c -> load.(c) <- load.(c) +. rates.(f)) ms)
    membership;
  let respected =
    Array.for_all (fun r -> r >= -.tolerance) rates
    && Array.for_all2 (fun l cap -> l <= cap +. tolerance) load caps
  in
  (* Each flow must be bottlenecked somewhere: one of its constraints is
     saturated and no flow crossing that constraint gets strictly more. *)
  let indexed = Array.to_list membership |> List.mapi (fun f ms -> (f, ms)) in
  respected
  && List.for_all
       (fun (f, ms) ->
         List.exists
           (fun c ->
             load.(c) >= caps.(c) -. tolerance
             && List.for_all
                  (fun (g, gs) ->
                    (not (List.mem c gs))
                    || rates.(g) <= rates.(f) +. tolerance)
                  indexed)
           ms)
       indexed

(** Incremental max-min fair-share kernel.

    Maintains a persistent flow/constraint bipartite incidence structure
    so that the event loop can add and remove flows cheaply and only pay
    for re-solving the connected component that actually changed.
    Constraints (port capacities, link capacities) are registered once
    and keep their index for the lifetime of the kernel; flows come and
    go, with slots reused so the working set stays proportional to the
    number of {e concurrently} active flows.

    Two kernels sit behind the same interface:

    - [`Full] — the oracle: every {!refresh} rebuilds the dense
      caps/membership arrays over all active flows and calls
      {!Fair_share.compute}.
    - [`Incremental] — tracks connected components of the incidence
      graph with {!Insp_util.Union_find} and re-waterfills only the dirty
      components, selecting each round's bottleneck through a
      lazy-deletion {!Insp_util.Heap} keyed by fair share with the
      constraint index as tie-break.

    Both kernels are deterministic and produce {e bit-identical} rates:
    max-min water-filling decomposes over connected components, and the
    incremental path replicates the oracle's tie-breaking (lowest
    constraint index) and its flow iteration order (ascending flow id)
    exactly.  See DESIGN.md §11 for the invariants. *)

type kernel = [ `Full | `Incremental ]

type t

type stats = {
  refreshes : int;  (** {!refresh} calls that did any work *)
  components_recomputed : int;  (** components re-waterfilled *)
  flows_recomputed : int;  (** flow rates recomputed across those *)
  rounds : int;  (** water-filling rounds executed *)
  rebuilds : int;  (** union-find rebuilds (after removals/growth) *)
}

val create : ?kernel:kernel -> unit -> t
(** Fresh empty kernel.  [kernel] defaults to [`Incremental]. *)

(* lint: allow t3 — incremental-kernel introspection kept for diagnostics *)
val kernel : t -> kernel

val add_constraint : t -> float -> int
(** [add_constraint t cap] registers a capacity and returns its
    constraint index.  Indices are dense, starting at 0, and never
    recycled.  Raises [Invalid_argument] on a negative cap. *)

(* lint: allow t3 — incremental-kernel introspection kept for diagnostics *)
val n_constraints : t -> int

val set_capacity : t -> int -> float -> unit
(** [set_capacity t cid cap] replaces the registered capacity of
    constraint [cid] — the fault-injection entry point (processor card
    jitter, link degradation, server outage).  Takes effect on rates at
    the next {!refresh}: the incremental kernel re-waterfills only the
    constraint's component, the full oracle recomputes as always.
    Raises [Invalid_argument] on an unknown index or a negative cap. *)

val add_flow : t -> int list -> int
(** [add_flow t ms] registers a flow crossing constraints [ms] (in the
    order the caller wants capacity subtracted, normally as built) and
    returns its flow id.  Ids are reused LIFO after {!remove_flow}.  The
    new flow's rate is 0 until the next {!refresh}.  Raises
    [Invalid_argument] if [ms] is empty or contains an unknown
    constraint index. *)

val remove_flow : t -> int -> unit
(** Deregisters an active flow.  Raises [Invalid_argument] if the id is
    not currently active.  Takes effect on rates at the next
    {!refresh}. *)

val refresh : t -> unit
(** Recomputes rates to reflect all {!add_flow} / {!remove_flow} calls
    since the previous refresh.  Batching is free: any number of
    adds/removals is absorbed by a single refresh.  With the
    [`Incremental] kernel, a refresh with no pending changes is a
    no-op. *)

val rate : t -> int -> float
(** Current max-min rate of an active flow, as of the last {!refresh}.
    Raises [Invalid_argument] on an inactive id. *)

(* lint: allow t3 — incremental-kernel introspection kept for diagnostics *)
val n_active : t -> int

val active_flows : t -> int list
(** Active flow ids, ascending. *)

val iter_active : t -> (int -> float -> unit) -> unit
(** [iter_active t f] calls [f fid rate] for every active flow in
    ascending id order. *)

(* lint: allow t3 — incremental-kernel introspection kept for diagnostics *)
val membership : t -> int -> int list
(** Constraint indices of an active flow, as given to {!add_flow}. *)

val components : t -> int list list
(** Connected components of the constraint graph, each a sorted list of
    constraint indices, ordered by smallest member — the
    {!Insp_util.Union_find.groups} canonical order.  Constraints with no
    active flows appear as singletons.  Forces a rebuild if the
    component structure is stale, so this is a test/debug helper, not a
    hot-path call.  Raises [Invalid_argument] on a [`Full] kernel, which
    does not track components. *)

val stats : t -> stats
(** Cumulative counters since {!create}.  The simulator flushes these
    into [sim.component.*] observability counters at the end of a
    run. *)

(** Flow-level discrete-event execution of a deployed mapping.

    The paper evaluates mappings analytically (constraints (1)–(5)); this
    runtime actually {e executes} them in simulation and measures the
    throughput the deployment sustains, validating the analytic model:

    - each processor runs its operators' evaluations one at a time
      (evaluation of operator [i] takes [w_i / s_u] seconds);
    - an evaluation of result [t] starts once every operator-child's
      result [t] is available locally (co-located children) or has
      arrived over the network (remote children);
    - cross-processor results travel as flows of [delta_i] MB sharing
      bandwidth max-min fairly under the bounded multi-port model
      ({!Fair_share}): sender card, receiver card and the point-to-point
      link constrain each flow;
    - every processor re-downloads each basic object in its plan from its
      chosen server once per refresh period ([1/f_k]), as competing
      flows;
    - the pipeline free-runs with a bounded work-ahead window, so the
      measured completion rate at the root converges to the deployment's
      maximum sustainable throughput.

    A mapping accepted by {!Insp_mapping.Check} sustains at least the
    target [rho]; an overloaded mapping falls measurably short — tests
    assert both directions. *)

type report = {
  sim_time : float;  (** simulated seconds *)
  results_completed : int;  (** root results over the whole run *)
  achieved_throughput : float;
      (** root results per second over the post-warmup window *)
  target_throughput : float;  (** the application's rho *)
  proc_busy : float array;  (** per-processor busy fraction *)
  download_delivered : float;  (** MB of basic-object refresh delivered *)
  download_ideal : float;
      (** MB that would be delivered at the nominal refresh rates *)
  events : int;  (** discrete events processed *)
  root_completions : float array;
      (** ascending timestamps of every root-result completion — the
          raw signal the fault engine turns into throughput dips and
          recovery times *)
}

val sustains_target : report -> bool
(** [achieved_throughput >= 0.95 * rho] — the 5% margin absorbs pipeline
    fill and scheduling granularity, which the paper's fluid model does
    not account for. *)

(** {1 Capacity disruptions (fault injection)}

    A disruption multiplies the nominal capacity of every matching
    bandwidth constraint by [d_factor] over the window
    [[d_from, d_until)]: card jitter ([Proc_card]), a data-server
    outage ([Server_card] with factor ~0) or a degraded link.  Windows
    may overlap (factors multiply) and are applied through
    {!Fair_share_inc.set_capacity}, so only the affected component is
    re-waterfilled.  An empty disruption list leaves the run
    bit-identical to one without the parameter. *)

type scope =
  | Proc_card of int  (** processor [u]'s network card *)
  | Server_card of int  (** data server [l]'s card *)
  | Proc_link of int * int
      (** the processor pair's link, both directions *)
  | Server_link of int * int  (** the (server, processor) link *)

type disruption = {
  d_scope : scope;
  d_from : float;
  d_until : float;  (** capacity restored at this instant *)
  d_factor : float;  (** multiplier on the nominal capacity, >= 0 *)
}

val run :
  ?window:int ->
  ?horizon:float ->
  ?warmup:float ->
  ?kernel:Fair_share_inc.kernel ->
  ?disruptions:disruption list ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  Insp_mapping.Alloc.t ->
  report
(** [window] bounds the pipeline work-ahead (results in flight beyond
    the last root completion); the default scales with the number of
    processors ([max 8 (2 * n_procs)]) so the bound never throttles a
    deep pipeline.  [horizon] (default 80 simulated seconds) and
    [warmup] (default a quarter of the horizon) frame the measurement.
    [kernel] selects the fair-share solver (default [`Incremental]);
    both kernels are deterministic and produce identical reports — the
    [`Full] oracle exists for equivalence testing and debugging (see
    {!Fair_share_inc}).  [disruptions] (default none) injects capacity
    faults mid-run; see {!disruption}.  Requires every operator
    assigned (checker-valid structure); capacity violations are allowed
    and simply show up as reduced throughput. *)

val pp_report : Format.formatter -> report -> unit

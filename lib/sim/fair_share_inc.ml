module Union_find = Insp_util.Union_find

type kernel = [ `Full | `Incremental ]

type stats = {
  refreshes : int;
  components_recomputed : int;
  flows_recomputed : int;
  rounds : int;
  rebuilds : int;
}

type t = {
  kernel : kernel;
  (* Constraints, dense and never recycled: index order is the
     tie-break order, so it must be stable across the kernel's
     lifetime. *)
  mutable caps : float array;
  mutable n_caps : int;
  (* Flows, indexed by fid.  Slots are reused LIFO so the arrays stay
     sized by the number of concurrently active flows, not the total
     ever started. *)
  mutable membership : int list array;
  mutable flow_active : bool array;
  mutable rates : float array;
  mutable frozen : bool array;  (* water-fill scratch *)
  mutable n_slots : int;
  mutable free_fids : int list;
  mutable n_active : int;
  (* Reverse incidence: cid -> active fids crossing it. *)
  mutable flows_of : int list array;
  (* Component tracking over constraint indices ([`Incremental] only).
     Union-find cannot split, so after a removal it over-approximates
     the true components.  That is sound: water-filling a union of
     disconnected components yields the same rates as filling each
     alone (the projection argument below), so the stale structure only
     widens the recompute scope, never changes a rate.  Rebuilds are
     therefore amortized — every [rebuild_threshold] removals, not on
     each one — with [members] caching each root's component so a
     water-fill never scans the whole cid range. *)
  mutable uf : Union_find.t;
  mutable uf_capacity : int;
  mutable members : int list array;  (* root cid -> component cids *)
  mutable removals : int;  (* removals since the last rebuild *)
  mutable dirty : int list;  (* cids touched since the last refresh *)
  (* Water-fill scratch.  Flat, reused across refreshes and grown on
     demand: the hot path must not allocate, or the incremental kernel
     loses its constant-factor race against the full oracle's plain
     array scans (measured; see DESIGN.md §11). *)
  mutable remaining : float array;  (* by cid *)
  mutable unfrozen : int array;  (* by cid *)
  mutable wf_caps : int array;  (* component cids, flattened *)
  mutable wf_flows : int array;  (* component fids, any order *)
  mutable wf_round : int array;  (* fids frozen this round, ascending *)
  mutable wf_roots : int array;  (* deduped dirty roots *)
  mutable flow_mark : int array;  (* by fid: generation stamp *)
  mutable cap_mark : int array;  (* by cid: generation stamp *)
  mutable mark : int;
  mutable s_refreshes : int;
  mutable s_components : int;
  mutable s_flows : int;
  mutable s_rounds : int;
  mutable s_rebuilds : int;
}

let create ?(kernel = `Incremental) () =
  {
    kernel;
    caps = [||];
    n_caps = 0;
    membership = [||];
    flow_active = [||];
    rates = [||];
    frozen = [||];
    n_slots = 0;
    free_fids = [];
    n_active = 0;
    flows_of = [||];
    uf = Union_find.create 0;
    uf_capacity = 0;
    members = [||];
    removals = 0;
    dirty = [];
    remaining = [||];
    unfrozen = [||];
    wf_caps = [||];
    wf_flows = [||];
    wf_round = [||];
    wf_roots = [||];
    flow_mark = [||];
    cap_mark = [||];
    mark = 0;
    s_refreshes = 0;
    s_components = 0;
    s_flows = 0;
    s_rounds = 0;
    s_rebuilds = 0;
  }

let kernel t = t.kernel

let grown a n v =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max 8 (max n (2 * Array.length a))) v in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let add_constraint t cap =
  if cap < 0.0 then invalid_arg "Fair_share_inc.add_constraint: negative cap";
  let cid = t.n_caps in
  t.n_caps <- cid + 1;
  t.caps <- grown t.caps t.n_caps 0.0;
  t.caps.(cid) <- cap;
  t.flows_of <- grown t.flows_of t.n_caps [];
  t.flows_of.(cid) <- [];
  t.remaining <- grown t.remaining t.n_caps 0.0;
  t.unfrozen <- grown t.unfrozen t.n_caps 0;
  t.wf_caps <- grown t.wf_caps t.n_caps 0;
  t.wf_roots <- grown t.wf_roots t.n_caps 0;
  t.cap_mark <- grown t.cap_mark t.n_caps 0;
  (* In-capacity cids join the live union-find as singletons; an
     out-of-capacity cid forces a rebuild at the next refresh. *)
  if cid < t.uf_capacity then t.members.(cid) <- [ cid ];
  cid

let n_constraints t = t.n_caps

let set_capacity t cid cap =
  if cid < 0 || cid >= t.n_caps then
    invalid_arg "Fair_share_inc.set_capacity: bad constraint index";
  if cap < 0.0 then invalid_arg "Fair_share_inc.set_capacity: negative cap";
  t.caps.(cid) <- cap;
  match t.kernel with
  | `Full -> ()
  | `Incremental ->
    (* The component's rates are stale until the next refresh, exactly
       like after an add/remove on one of its flows. *)
    t.dirty <- cid :: t.dirty

(* Merge two cids' components, folding the losing root's member list
   into the winner's so component membership stays O(1) to look up. *)
let union_members t a b =
  let ra = Union_find.find t.uf a and rb = Union_find.find t.uf b in
  if ra <> rb then begin
    let nr = Union_find.union t.uf ra rb in
    let loser = if nr = ra then rb else ra in
    t.members.(nr) <- List.rev_append t.members.(loser) t.members.(nr);
    t.members.(loser) <- []
  end

let add_flow t ms =
  if ms = [] then invalid_arg "Fair_share_inc.add_flow: flow with no constraint";
  List.iter
    (fun c ->
      if c < 0 || c >= t.n_caps then
        invalid_arg "Fair_share_inc.add_flow: bad constraint index")
    ms;
  let fid =
    match t.free_fids with
    | fid :: rest ->
      t.free_fids <- rest;
      fid
    | [] ->
      let fid = t.n_slots in
      t.n_slots <- fid + 1;
      t.membership <- grown t.membership t.n_slots [];
      t.flow_active <- grown t.flow_active t.n_slots false;
      t.rates <- grown t.rates t.n_slots 0.0;
      t.frozen <- grown t.frozen t.n_slots false;
      t.wf_flows <- grown t.wf_flows t.n_slots 0;
      t.wf_round <- grown t.wf_round t.n_slots 0;
      t.flow_mark <- grown t.flow_mark t.n_slots 0;
      fid
  in
  t.membership.(fid) <- ms;
  t.flow_active.(fid) <- true;
  t.rates.(fid) <- 0.0;
  t.n_active <- t.n_active + 1;
  List.iter (fun c -> t.flows_of.(c) <- fid :: t.flows_of.(c)) ms;
  (match t.kernel with
  | `Full -> ()
  | `Incremental ->
    t.dirty <- List.rev_append ms t.dirty;
    if t.uf_capacity >= t.n_caps then begin
      match ms with
      | c0 :: rest -> List.iter (fun c -> union_members t c0 c) rest
      | [] -> ()
    end);
  fid

let remove_flow t fid =
  if fid < 0 || fid >= t.n_slots || not t.flow_active.(fid) then
    invalid_arg "Fair_share_inc.remove_flow: inactive flow";
  let ms = t.membership.(fid) in
  List.iter
    (fun c -> t.flows_of.(c) <- List.filter (fun f -> f <> fid) t.flows_of.(c))
    ms;
  t.membership.(fid) <- [];
  t.flow_active.(fid) <- false;
  t.rates.(fid) <- 0.0;
  t.n_active <- t.n_active - 1;
  t.free_fids <- fid :: t.free_fids;
  match t.kernel with
  | `Full -> ()
  | `Incremental ->
    t.dirty <- List.rev_append ms t.dirty;
    t.removals <- t.removals + 1

(* A rebuild costs O(n_caps + active membership); spreading it over
   this many removals makes the amortized cost per removal O(1) while
   bounding how far the merged-only union-find can drift above the true
   components. *)
let rebuild_threshold t = max 16 (t.n_caps / 4)

let rebuild_components t =
  (* Headroom so constraints registered after the rebuild are still
     in-range singletons and don't force another rebuild by
     themselves. *)
  let capacity = max 8 (2 * t.n_caps) in
  t.uf <- Union_find.create capacity;
  t.uf_capacity <- capacity;
  t.members <- Array.make capacity [];
  for c = 0 to t.n_caps - 1 do
    t.members.(c) <- [ c ]
  done;
  t.removals <- 0;
  t.s_rebuilds <- t.s_rebuilds + 1;
  for fid = 0 to t.n_slots - 1 do
    if t.flow_active.(fid) then begin
      match t.membership.(fid) with
      | c0 :: rest -> List.iter (fun c -> union_members t c0 c) rest
      | [] -> ()
    end
  done

(* Water-fill one (possibly over-merged) component from scratch.

   The root's member set is allowed to cover SEVERAL true components:
   removals since the last rebuild cannot split the union-find, so the
   set is a union of components plus constraints whose flows all left.
   That never changes a rate — water-filling a disjoint union picks the
   global (share, cid)-minimum bottleneck each round, and projecting
   its rounds onto one true component gives exactly that component's
   own fill sequence; the parts only interleave, they never interact.
   Constraints with no unfrozen flows never win a round.

   Bit-equality with the [`Full] oracle rests on three properties that
   must not drift (test_sim's randomized suite pins them):
   - the bottleneck each round is the constraint with the smallest
     [remaining/unfrozen], ties to the LOWEST constraint index — the
     oracle scans cids in ascending order with strict [<]; the scan
     below visits the member list in arbitrary order but minimizes
     (share, cid) lexicographically, which picks the same winner;
   - flows freeze in ascending fid order ([wf_round] is sorted per
     round), so each constraint sees the same float subtractions;
   - shares clamp at 0 exactly like the oracle ([Float.max 0.0]).

   The rounds use the oracle's direct min-scan rather than a priority
   queue: components are small (tens of constraints in the paper's
   platforms), where a heap's per-push allocation and sift traffic
   costs more than rescanning a flat int/float array (measured ~2x;
   see DESIGN.md §11). *)
let waterfill_component t root =
  t.mark <- t.mark + 1;
  let mark = t.mark in
  let nc = ref 0 and nf = ref 0 in
  List.iter
    (fun c ->
      let n = ref 0 in
      List.iter
        (fun f ->
          incr n;
          if t.flow_mark.(f) <> mark then begin
            t.flow_mark.(f) <- mark;
            (* Order is irrelevant here: [wf_flows] only resets frozen
               flags; freeze order comes from [wf_round] below. *)
            t.wf_flows.(!nf) <- f;
            incr nf
          end)
        t.flows_of.(c);
      (* A constraint no active flow crosses cannot bottleneck anything:
         leave it out of the round scans entirely. *)
      if !n > 0 then begin
        t.wf_caps.(!nc) <- c;
        incr nc;
        t.remaining.(c) <- t.caps.(c);
        t.unfrozen.(c) <- !n
      end)
    t.members.(root);
  let nf = !nf in
  if nf > 0 then begin
    t.s_components <- t.s_components + 1;
    t.s_flows <- t.s_flows + nf;
    for i = 0 to nf - 1 do
      t.frozen.(t.wf_flows.(i)) <- false
    done;
    let live = ref !nc in
    let n_frozen = ref 0 in
    while !n_frozen < nf do
      t.s_rounds <- t.s_rounds + 1;
      let best_c = ref (-1) in
      let best_share = ref infinity in
      (* Scan the still-constraining caps, swap-dropping exhausted
         ones.  The (share, cid) lexicographic minimum is
         order-independent, so the compaction cannot change the
         winner. *)
      let i = ref 0 in
      while !i < !live do
        let c = t.wf_caps.(!i) in
        if t.unfrozen.(c) = 0 then begin
          decr live;
          t.wf_caps.(!i) <- t.wf_caps.(!live);
          t.wf_caps.(!live) <- c
        end
        else begin
          let share = t.remaining.(c) /. float_of_int t.unfrozen.(c) in
          if share < !best_share || (share = !best_share && c < !best_c)
          then begin
            best_share := share;
            best_c := c
          end;
          incr i
        end
      done;
      assert (!best_c >= 0);
      let share = Float.max 0.0 !best_share in
      let bc = !best_c in
      (* Freeze the unfrozen flows crossing [bc] — exactly the flows
         the oracle's whole-set scan would freeze this round — in
         ascending fid order, so each constraint sees the identical
         float subtraction sequence. *)
      let nb = ref 0 in
      List.iter
        (fun f ->
          if not t.frozen.(f) then begin
            let i = ref !nb in
            while !i > 0 && t.wf_round.(!i - 1) > f do
              t.wf_round.(!i) <- t.wf_round.(!i - 1);
              decr i
            done;
            t.wf_round.(!i) <- f;
            incr nb
          end)
        t.flows_of.(bc);
      for j = 0 to !nb - 1 do
        let f = t.wf_round.(j) in
        t.rates.(f) <- share;
        t.frozen.(f) <- true;
        incr n_frozen;
        List.iter
          (fun c ->
            t.remaining.(c) <- Float.max 0.0 (t.remaining.(c) -. share);
            t.unfrozen.(c) <- t.unfrozen.(c) - 1)
          t.membership.(f)
      done
    done
  end

let active_flows t =
  let fids = ref [] in
  for fid = t.n_slots - 1 downto 0 do
    if t.flow_active.(fid) then fids := fid :: !fids
  done;
  !fids

let refresh t =
  match t.kernel with
  | `Full ->
    t.s_refreshes <- t.s_refreshes + 1;
    if t.n_active > 0 then begin
      let fids = Array.of_list (active_flows t) in
      let membership = Array.map (fun fid -> t.membership.(fid)) fids in
      let caps = Array.sub t.caps 0 t.n_caps in
      let r = Fair_share.compute ~caps ~membership in
      Array.iteri (fun i fid -> t.rates.(fid) <- r.(i)) fids
    end
  | `Incremental ->
    if t.dirty <> [] then begin
      t.s_refreshes <- t.s_refreshes + 1;
      if t.uf_capacity < t.n_caps || t.removals >= rebuild_threshold t then
        rebuild_components t;
      (* Dedup dirty cids down to component roots with a generation
         mark — no allocation.  Fill order across roots is free to
         vary: distinct components share no constraint or flow, so
         their fills commute bit-for-bit. *)
      t.mark <- t.mark + 1;
      let m = t.mark in
      let nr = ref 0 in
      List.iter
        (fun c ->
          let r = Union_find.find t.uf c in
          if t.cap_mark.(r) <> m then begin
            t.cap_mark.(r) <- m;
            t.wf_roots.(!nr) <- r;
            incr nr
          end)
        t.dirty;
      t.dirty <- [];
      for i = 0 to !nr - 1 do
        waterfill_component t t.wf_roots.(i)
      done
    end

let check_active t fid who =
  if fid < 0 || fid >= t.n_slots || not t.flow_active.(fid) then
    invalid_arg ("Fair_share_inc." ^ who ^ ": inactive flow")

let rate t fid =
  check_active t fid "rate";
  t.rates.(fid)

let n_active t = t.n_active

let iter_active t f =
  for fid = 0 to t.n_slots - 1 do
    if t.flow_active.(fid) then f fid t.rates.(fid)
  done

let membership t fid =
  check_active t fid "membership";
  t.membership.(fid)

let components t =
  (match t.kernel with
  | `Full -> invalid_arg "Fair_share_inc.components: full kernel"
  | `Incremental -> ());
  (* Any removal may have split a true component the merged-only
     union-find still shows fused, so reporting demands a rebuild. *)
  if t.uf_capacity < t.n_caps || t.removals > 0 then rebuild_components t;
  Union_find.groups t.uf
  |> List.filter_map (fun g ->
         let g = List.filter (fun c -> c < t.n_caps) g in
         if g = [] then None else Some g)

let stats t =
  {
    refreshes = t.s_refreshes;
    components_recomputed = t.s_components;
    flows_recomputed = t.s_flows;
    rounds = t.s_rounds;
    rebuilds = t.s_rebuilds;
  }

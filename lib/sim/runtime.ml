module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform
module Servers = Insp_platform.Servers
module Alloc = Insp_mapping.Alloc
module Heap = Insp_util.Heap
module Obs = Insp_obs.Obs

type report = {
  sim_time : float;
  results_completed : int;
  achieved_throughput : float;
  target_throughput : float;
  proc_busy : float array;
  download_delivered : float;
  download_ideal : float;
  events : int;
}

(* The analytic model is fluid; the packetized simulation adds pipeline
   fill and scheduling granularity, so allow a 5% margin. *)
let sustains_target r =
  r.achieved_throughput >= 0.95 *. r.target_throughput

type endpoint = Proc of int | Server of int

type flow_kind =
  | Message of { child : int }  (* result of operator [child] to parent *)
  | Download of { proc : int; object_type : int }

type flow = {
  kind : flow_kind;
  src : endpoint;
  dst : int;  (* processor *)
  size : float;
  mutable remaining : float;
}

type event =
  | Compute_done of { op : int; result : int }
  | Download_due of { proc : int; object_type : int; server : int }

let epsilon = 1e-9

let run_impl ?window ?(horizon = 80.0) ?warmup app platform alloc =
  (* The pipeline needs enough results in flight to cover its depth in
     processor hops, otherwise the work-ahead bound (not a resource)
     throttles throughput. *)
  let window =
    match window with
    | Some w -> w
    | None -> max 8 (2 * Alloc.n_procs alloc)
  in
  let warmup = match warmup with Some w -> w | None -> horizon /. 4.0 in
  if warmup >= horizon then invalid_arg "Runtime.run: warmup >= horizon";
  let tree = App.tree app in
  let n_ops = App.n_operators app in
  let n_procs = Alloc.n_procs alloc in
  let proc_of = Array.make n_ops (-1) in
  for i = 0 to n_ops - 1 do
    match Alloc.assignment alloc i with
    | Some u -> proc_of.(i) <- u
    | None -> invalid_arg "Runtime.run: unassigned operator"
  done;
  let speed u = (Alloc.proc alloc u).Alloc.config.Catalog.cpu.Catalog.speed in
  let nic u =
    (Alloc.proc alloc u).Alloc.config.Catalog.nic.Catalog.bandwidth
  in
  let servers = platform.Platform.servers in
  (* --- operator pipeline state --- *)
  let completed = Array.make n_ops (-1) in
  (* arrived.(i) maps each remote operator-child of i to its arrival
     count *)
  let children = Array.init n_ops (fun i -> Array.of_list (Optree.children tree i)) in
  let arrived = Array.map (fun cs -> Array.map (fun _ -> 0) cs) children in
  let computing = Array.make n_procs false in
  let busy_until_accum = Array.make n_procs 0.0 in
  let root_completions = ref [] in
  (* --- flows --- *)
  let flows : flow list ref = ref [] in
  let rates : (flow * float) list ref = ref [] in
  let events = Heap.create () in
  let n_events = ref 0 in
  let download_delivered = ref 0.0 in
  (* Hot-loop instrumentation goes through local refs and is flushed to
     the observability sink once per run, so the event loop never pays
     more than integer increments. *)
  let n_recomputes = ref 0 in
  let n_flows_started = ref 0 in
  let n_flows_completed = ref 0 in
  (* Fair-share recomputation over the active flows. *)
  let recompute_rates () =
    incr n_recomputes;
    let fl = Array.of_list !flows in
    if Array.length fl = 0 then rates := []
    else begin
      (* Constraints: proc cards (in+out), server cards, active pair
         links. *)
      let caps = ref [] in
      let n_caps = ref 0 in
      let cap_index = Hashtbl.create 16 in
      let constraint_of key cap =
        match Hashtbl.find_opt cap_index key with
        | Some idx -> idx
        | None ->
          let idx = !n_caps in
          incr n_caps;
          Hashtbl.replace cap_index key idx;
          caps := cap :: !caps;
          idx
      in
      let membership =
        Array.map
          (fun f ->
            let dst_card = constraint_of (`Proc_card f.dst) (nic f.dst) in
            match f.src with
            | Proc u ->
              let src_card = constraint_of (`Proc_card u) (nic u) in
              let link =
                constraint_of (`Plink (u, f.dst)) platform.Platform.proc_link
              in
              [ src_card; dst_card; link ]
            | Server l ->
              let src_card =
                constraint_of (`Server_card l) (Servers.card servers l)
              in
              let link =
                constraint_of (`Slink (l, f.dst)) platform.Platform.server_link
              in
              [ src_card; dst_card; link ])
          fl
      in
      let caps = Array.of_list (List.rev !caps) in
      let r = Fair_share.compute ~caps ~membership in
      rates := Array.to_list (Array.mapi (fun i f -> (f, r.(i))) fl)
    end
  in
  (* --- pipeline readiness --- *)
  let child_slot i c =
    let cs = children.(i) in
    let rec find k = if cs.(k) = c then k else find (k + 1) in
    find 0
  in
  let ready op =
    let t = completed.(op) + 1 in
    t <= completed.(0) + window
    && Array.for_all
         (fun c ->
           if proc_of.(c) = proc_of.(op) then completed.(c) >= t
           else arrived.(op).(child_slot op c) > t)
         children.(op)
  in
  let now = ref 0.0 in
  let dispatch () =
    (* Start an evaluation on every idle processor that has a ready
       operator (lowest pending result first, then operator id). *)
    for u = 0 to n_procs - 1 do
      if not computing.(u) then begin
        let best = ref None in
        List.iter
          (fun op ->
            if ready op then
              match !best with
              | Some b
                when (completed.(b), b) <= (completed.(op), op) -> ()
              | _ -> best := Some op)
          (Alloc.operators_of alloc u);
        match !best with
        | None -> ()
        | Some op ->
          computing.(u) <- true;
          let duration = App.work app op /. speed u in
          busy_until_accum.(u) <- busy_until_accum.(u) +. duration;
          Heap.push events (!now +. duration)
            (Compute_done { op; result = completed.(op) + 1 })
      end
    done
  in
  let finish_compute op result =
    completed.(op) <- result;
    computing.(proc_of.(op)) <- false;
    if op = Optree.root tree then root_completions := !now :: !root_completions;
    match Optree.parent tree op with
    | Some p when proc_of.(p) <> proc_of.(op) ->
      let size = App.output_size app op in
      incr n_flows_started;
      flows :=
        {
          kind = Message { child = op };
          src = Proc proc_of.(op);
          dst = proc_of.(p);
          size;
          remaining = size;
        }
        :: !flows;
      recompute_rates ()
    | Some _ | None -> ()
  in
  let finish_flow f =
    (match f.kind with
    | Message { child } ->
      let p =
        match Optree.parent tree child with
        | Some p -> p
        | None -> assert false (* no Message flow is ever sent for the root *)
      in
      let slot = child_slot p child in
      arrived.(p).(slot) <- arrived.(p).(slot) + 1
    | Download _ -> ());
    incr n_flows_completed;
    flows := List.filter (fun g -> g != f) !flows
  in
  (* Seed periodic downloads. *)
  List.iter
    (fun (u, k, l) ->
      Heap.push events 0.0 (Download_due { proc = u; object_type = k; server = l }))
    (Alloc.all_downloads alloc);
  dispatch ();
  (* --- main loop --- *)
  let continue_ = ref true in
  while !continue_ do
    let t_heap = match Heap.peek events with Some (t, _) -> t | None -> infinity in
    let t_flow =
      List.fold_left
        (fun acc (f, r) ->
          if r > epsilon then Float.min acc (!now +. (f.remaining /. r)) else acc)
        infinity !rates
    in
    let t_next = Float.min horizon (Float.min t_heap t_flow) in
    (* Advance all flows to t_next. *)
    let dt = t_next -. !now in
    if dt > 0.0 then
      List.iter
        (fun (f, r) ->
          let moved = Float.min f.remaining (r *. dt) in
          f.remaining <- f.remaining -. moved;
          match f.kind with
          | Download _ -> download_delivered := !download_delivered +. moved
          | Message _ -> ())
        !rates;
    now := t_next;
    if t_next >= horizon then continue_ := false
    else if t_flow <= t_heap then begin
      (* One or more flows completed. *)
      incr n_events;
      let done_flows = List.filter (fun f -> f.remaining <= epsilon) !flows in
      List.iter finish_flow done_flows;
      recompute_rates ();
      dispatch ()
    end
    else begin
      incr n_events;
      match Heap.pop events with
      | None -> continue_ := false
      | Some (_, Compute_done { op; result }) ->
        finish_compute op result;
        dispatch ()
      | Some (_, Download_due { proc; object_type; server }) ->
        let size = Insp_tree.Objects.size (App.objects app) object_type in
        let freq = Insp_tree.Objects.freq (App.objects app) object_type in
        incr n_flows_started;
        flows :=
          {
            kind = Download { proc; object_type };
            src = Server server;
            dst = proc;
            size;
            remaining = size;
          }
          :: !flows;
        Heap.push events (!now +. (1.0 /. freq))
          (Download_due { proc; object_type; server });
        recompute_rates ();
        dispatch ()
    end
  done;
  (* --- measurement --- *)
  let completions = List.rev !root_completions in
  let after_warmup = List.filter (fun t -> t >= warmup) completions in
  let achieved =
    float_of_int (List.length after_warmup) /. (horizon -. warmup)
  in
  let ideal =
    List.fold_left
      (fun acc (_, k, _) -> acc +. (App.download_rate app k *. horizon))
      0.0
      (Alloc.all_downloads alloc)
  in
  let report =
    {
      sim_time = horizon;
      results_completed = List.length completions;
      achieved_throughput = achieved;
      target_throughput = App.rho app;
      proc_busy =
        Array.map (fun b -> Float.min 1.0 (b /. horizon)) busy_until_accum;
      download_delivered = !download_delivered;
      download_ideal = ideal;
      events = !n_events;
    }
  in
  Obs.add "sim.event" !n_events;
  Obs.add "sim.rate_recompute" !n_recomputes;
  Obs.add "sim.flow.started" !n_flows_started;
  Obs.add "sim.flow.completed" !n_flows_completed;
  Obs.add "sim.result" report.results_completed;
  Obs.gauge "sim.throughput.achieved" report.achieved_throughput;
  let busy = report.proc_busy in
  if Array.length busy > 0 then begin
    Obs.gauge "sim.busy.max" (Array.fold_left Float.max 0.0 busy);
    Obs.gauge "sim.busy.mean"
      (Array.fold_left ( +. ) 0.0 busy /. float_of_int (Array.length busy))
  end;
  report

let run ?window ?horizon ?warmup app platform alloc =
  Obs.span "sim.run" (fun () ->
      run_impl ?window ?horizon ?warmup app platform alloc)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>simulated %.1f s, %d events@ root results: %d (%.3f/s vs target \
     %.3f/s)@ downloads: %.0f / %.0f MB delivered@ busy: [%s]@]"
    r.sim_time r.events r.results_completed r.achieved_throughput
    r.target_throughput r.download_delivered r.download_ideal
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.2f") r.proc_busy)))

module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform
module Servers = Insp_platform.Servers
module Alloc = Insp_mapping.Alloc
module Heap = Insp_util.Heap
module Obs = Insp_obs.Obs
module Journal = Insp_obs.Journal

type report = {
  sim_time : float;
  results_completed : int;
  achieved_throughput : float;
  target_throughput : float;
  proc_busy : float array;
  download_delivered : float;
  download_ideal : float;
  events : int;
  root_completions : float array;
}

(* The analytic model is fluid; the packetized simulation adds pipeline
   fill and scheduling granularity, so allow a 5% margin. *)
let sustains_target r =
  r.achieved_throughput >= 0.95 *. r.target_throughput

type endpoint = Proc of int | Server of int

type flow_kind =
  | Message of { child : int }  (* result of operator [child] to parent *)
  | Download of { proc : int; object_type : int }

type flow = {
  kind : flow_kind;
  src : endpoint;
  dst : int;  (* processor *)
  size : float;
  mutable remaining : float;
}

type scope =
  | Proc_card of int
  | Server_card of int
  | Proc_link of int * int  (* undirected: hits both flow directions *)
  | Server_link of int * int  (* (server, processor) *)

type disruption = {
  d_scope : scope;
  d_from : float;
  d_until : float;
  d_factor : float;  (* multiplier on the nominal capacity, >= 0 *)
}

type event =
  | Compute_done of { op : int; result : int }
  | Download_due of { proc : int; object_type : int; server : int }
  | Disrupt of { index : int; on : bool }

let epsilon = 1e-9

let run_impl ?window ?(horizon = 80.0) ?warmup ?(kernel = `Incremental)
    ?(disruptions = []) app platform alloc =
  (* The pipeline needs enough results in flight to cover its depth in
     processor hops, otherwise the work-ahead bound (not a resource)
     throttles throughput. *)
  let window =
    match window with
    | Some w -> w
    | None -> max 8 (2 * Alloc.n_procs alloc)
  in
  let warmup = match warmup with Some w -> w | None -> horizon /. 4.0 in
  if warmup >= horizon then invalid_arg "Runtime.run: warmup >= horizon";
  let tree = App.tree app in
  let n_ops = App.n_operators app in
  let n_procs = Alloc.n_procs alloc in
  let proc_of = Array.make n_ops (-1) in
  for i = 0 to n_ops - 1 do
    match Alloc.assignment alloc i with
    | Some u -> proc_of.(i) <- u
    | None -> invalid_arg "Runtime.run: unassigned operator"
  done;
  let speed u = (Alloc.proc alloc u).Alloc.config.Catalog.cpu.Catalog.speed in
  let nic u =
    (Alloc.proc alloc u).Alloc.config.Catalog.nic.Catalog.bandwidth
  in
  let servers = platform.Platform.servers in
  (* --- operator pipeline state --- *)
  let completed = Array.make n_ops (-1) in
  (* arrived.(i) maps each remote operator-child of i to its arrival
     count *)
  let children = Array.init n_ops (fun i -> Array.of_list (Optree.children tree i)) in
  let arrived = Array.map (fun cs -> Array.map (fun _ -> 0) cs) children in
  let computing = Array.make n_procs false in
  let busy_until_accum = Array.make n_procs 0.0 in
  let n_root_completions = ref 0 in
  let n_after_warmup = ref 0 in
  let root_times = ref [] in
  (* --- flows ---
     Both kernel variants drive the same persistent registry in
     [Fair_share_inc], so constraint indices (and therefore bottleneck
     tie-breaks) coincide and the two paths produce bit-identical
     rates. *)
  let fs = Fair_share_inc.create ~kernel () in
  (* --- capacity disruptions (fault injection) ---
     Each disruption multiplies the nominal capacity of every matching
     constraint by [d_factor] over [d_from, d_until).  With an empty
     list the whole machinery is inert: no heap events, no factor
     application, bit-identical trajectories. *)
  let disr = Array.of_list disruptions in
  let n_disr = Array.length disr in
  Array.iter
    (fun d ->
      if d.d_factor < 0.0 then
        invalid_arg "Runtime.run: negative disruption factor";
      if d.d_until < d.d_from then
        invalid_arg "Runtime.run: disruption ends before it starts")
    disr;
  let disr_active = Array.make (max 1 n_disr) false in
  let scope_matches scope key =
    match (scope, key) with
    | Proc_card u, `Proc_card v -> u = v
    | Server_card l, `Server_card m -> l = m
    | Proc_link (a, b), `Plink (u, v) -> (a = u && b = v) || (a = v && b = u)
    | Server_link (l, p), `Slink (m, q) -> l = m && p = q
    | _ -> false
  in
  let eff_factor key =
    let f = ref 1.0 in
    for i = 0 to n_disr - 1 do
      if disr_active.(i) && scope_matches disr.(i).d_scope key then
        f := !f *. disr.(i).d_factor
    done;
    !f
  in
  (* Constraints: proc cards (in+out), server cards, pair links.
     Registered once, on the first flow that crosses them.  With live
     disruptions the registration list is kept (in registration order,
     most recent first) so boundary events can re-derive every affected
     effective capacity from the nominal one — no drift from repeated
     multiply/divide. *)
  let cap_index = Hashtbl.create 16 in
  let registered = ref [] in
  let constraint_of key cap =
    match Hashtbl.find_opt cap_index key with
    | Some cid -> cid
    | None ->
      let eff = if n_disr = 0 then cap else cap *. eff_factor key in
      let cid = Fair_share_inc.add_constraint fs eff in
      Hashtbl.replace cap_index key cid;
      if n_disr > 0 then registered := (key, cap, cid) :: !registered;
      cid
  in
  (* fid -> flow payload; fids are slot-reused, so this stays sized by
     the concurrently active flows. *)
  let flow_by_fid = ref (Array.make 16 None) in
  let flow_at fid =
    match !flow_by_fid.(fid) with Some f -> f | None -> assert false
  in
  let events = Heap.create () in
  let n_events = ref 0 in
  let download_delivered = ref 0.0 in
  (* Hot-loop instrumentation goes through local refs and is flushed to
     the observability sink once per run, so the event loop never pays
     more than integer increments. *)
  let n_recomputes = ref 0 in
  let n_flows_started = ref 0 in
  let n_flows_completed = ref 0 in
  (* Rates are refreshed lazily: flow arrivals/departures only mark
     them dirty, and the water-filling kernel runs once per loop
     iteration that actually reads rates.  Bursts of same-instant
     events (periodic downloads firing together, completions cascading
     at one timestamp) then share a single recompute instead of paying
     one each — the dominant cost of a run (see DESIGN.md §11). *)
  let rates_dirty = ref false in
  (* Active flows with [remaining <= epsilon].  Only such flows can
     complete "now", so when the list is empty a heap event due at the
     current instant can be processed without consulting rates at all.
     Flows are recorded as they cross the threshold, so the completion
     branch needs no rescan of the active set. *)
  let tiny = ref (Array.make 16 0) in
  let n_tiny = ref 0 in
  let push_tiny fid =
    if !n_tiny >= Array.length !tiny then begin
      let b = Array.make (2 * Array.length !tiny) 0 in
      Array.blit !tiny 0 b 0 !n_tiny;
      tiny := b
    end;
    !tiny.(!n_tiny) <- fid;
    incr n_tiny
  in
  (* Scheduling events are journaled only when a journaling sink is
     installed; the flag is read once so the hot loop pays a single
     boolean test per candidate site.  The "sim" category is depth
     bounded (--journal-depth): only the opening of a run is recorded. *)
  let jn = Obs.journaling () in
  let now = ref 0.0 in
  let flow_labels f =
    ( (match f.kind with Message _ -> "msg" | Download _ -> "dl"),
      match f.src with
      | Proc u -> Printf.sprintf "p%d" u
      | Server l -> Printf.sprintf "s%d" l )
  in
  let start_flow f =
    incr n_flows_started;
    if jn then begin
      let kind, src = flow_labels f in
      Obs.event_bounded ~category:"sim"
        (Journal.Sim_flow_start
           { t = !now; kind; src; dst = f.dst; size = f.size })
    end;
    rates_dirty := true;
    let dst_card = constraint_of (`Proc_card f.dst) (nic f.dst) in
    let ms =
      match f.src with
      | Proc u ->
        let src_card = constraint_of (`Proc_card u) (nic u) in
        let link =
          constraint_of (`Plink (u, f.dst)) platform.Platform.proc_link
        in
        [ src_card; dst_card; link ]
      | Server l ->
        let src_card = constraint_of (`Server_card l) (Servers.card servers l) in
        let link =
          constraint_of (`Slink (l, f.dst)) platform.Platform.server_link
        in
        [ src_card; dst_card; link ]
    in
    let fid = Fair_share_inc.add_flow fs ms in
    if fid >= Array.length !flow_by_fid then begin
      let b = Array.make (max (fid + 1) (2 * Array.length !flow_by_fid)) None in
      Array.blit !flow_by_fid 0 b 0 (Array.length !flow_by_fid);
      flow_by_fid := b
    end;
    !flow_by_fid.(fid) <- Some f;
    if f.remaining <= epsilon then push_tiny fid
  in
  let recompute_rates () =
    incr n_recomputes;
    Fair_share_inc.refresh fs
  in
  (* --- pipeline readiness --- *)
  let child_slot i c =
    let cs = children.(i) in
    let rec find k = if cs.(k) = c then k else find (k + 1) in
    find 0
  in
  let ready op =
    let t = completed.(op) + 1 in
    t <= completed.(0) + window
    && Array.for_all
         (fun c ->
           if proc_of.(c) = proc_of.(op) then completed.(c) >= t
           else arrived.(op).(child_slot op c) > t)
         children.(op)
  in
  let dispatch () =
    (* Start an evaluation on every idle processor that has a ready
       operator (lowest pending result first, then operator id). *)
    for u = 0 to n_procs - 1 do
      if not computing.(u) then begin
        let best = ref None in
        List.iter
          (fun op ->
            if ready op then
              match !best with
              | Some b
                when (completed.(b), b) <= (completed.(op), op) -> ()
              | _ -> best := Some op)
          (Alloc.operators_of alloc u);
        match !best with
        | None -> ()
        | Some op ->
          computing.(u) <- true;
          if jn then
            Obs.event_bounded ~category:"sim"
              (Journal.Sim_dispatch
                 { t = !now; proc = u; op; result = completed.(op) + 1 });
          let duration = App.work app op /. speed u in
          busy_until_accum.(u) <- busy_until_accum.(u) +. duration;
          Heap.push events (!now +. duration)
            (Compute_done { op; result = completed.(op) + 1 })
      end
    done
  in
  let finish_compute op result =
    completed.(op) <- result;
    computing.(proc_of.(op)) <- false;
    if op = Optree.root tree then begin
      incr n_root_completions;
      root_times := !now :: !root_times;
      if !now >= warmup then incr n_after_warmup
    end;
    match Optree.parent tree op with
    | Some p when proc_of.(p) <> proc_of.(op) ->
      let size = App.output_size app op in
      start_flow
        {
          kind = Message { child = op };
          src = Proc proc_of.(op);
          dst = proc_of.(p);
          size;
          remaining = size;
        }
    | Some _ | None -> ()
  in
  (* Set when a finished Message flow bumped an arrival count — the
     only way a flow completion can make an operator ready.  Download
     completions leave readiness untouched, so an all-download batch
     can skip the dispatch scan: every readiness mutation elsewhere is
     already followed by its own [dispatch ()], meaning the scan would
     find nothing to start. *)
  let arrival_bumped = ref false in
  let finish_flow fid =
    let f = flow_at fid in
    (match f.kind with
    | Message { child } ->
      let p =
        match Optree.parent tree child with
        | Some p -> p
        | None -> assert false (* no Message flow is ever sent for the root *)
      in
      let slot = child_slot p child in
      arrived.(p).(slot) <- arrived.(p).(slot) + 1;
      arrival_bumped := true
    | Download _ -> ());
    incr n_flows_completed;
    if jn then begin
      let kind, src = flow_labels f in
      Obs.event_bounded ~category:"sim"
        (Journal.Sim_flow_done { t = !now; kind; src; dst = f.dst })
    end;
    !flow_by_fid.(fid) <- None;
    rates_dirty := true;
    Fair_share_inc.remove_flow fs fid
  in
  (* Seed periodic downloads. *)
  List.iter
    (fun (u, k, l) ->
      Heap.push events 0.0 (Download_due { proc = u; object_type = k; server = l }))
    (Alloc.all_downloads alloc);
  dispatch ();
  let handle_event = function
    | Compute_done { op; result } ->
      finish_compute op result;
      dispatch ()
    | Download_due { proc; object_type; server } ->
      let size = Insp_tree.Objects.size (App.objects app) object_type in
      let freq = Insp_tree.Objects.freq (App.objects app) object_type in
      start_flow
        {
          kind = Download { proc; object_type };
          src = Server server;
          dst = proc;
          size;
          remaining = size;
        };
      Heap.push events (!now +. (1.0 /. freq))
        (Download_due { proc; object_type; server })
      (* No dispatch: starting a download cannot make an operator
         ready, so the scan would be a guaranteed no-op. *)
    | Disrupt { index; on } ->
      (* Toggle the window and re-derive every matching constraint's
         effective capacity from its nominal value.  Marking rates
         dirty is enough: the slow path refreshes (and invalidates the
         completion-time cache) before any rate is read again. *)
      disr_active.(index) <- on;
      List.iter
        (fun (key, nominal, cid) ->
          if scope_matches disr.(index).d_scope key then
            Fair_share_inc.set_capacity fs cid (nominal *. eff_factor key))
        !registered;
      rates_dirty := true
  in
  (* Schedule disruption boundaries.  Windows opening at or past the
     horizon never fire; a close past the horizon is simply never
     processed. *)
  for i = 0 to n_disr - 1 do
    if disr.(i).d_from < horizon then begin
      Heap.push events disr.(i).d_from (Disrupt { index = i; on = true });
      Heap.push events disr.(i).d_until (Disrupt { index = i; on = false })
    end
  done;
  (* --- main loop --- *)
  let t_flow_cache = ref infinity in
  let t_flow_valid = ref false in
  let continue_ = ref true in
  while !continue_ do
    let t_heap = match Heap.peek events with Some (t, _) -> t | None -> infinity in
    if t_heap <= !now && !now < horizon && !n_tiny = 0 then begin
      (* Fast path: a heap event is due at the current instant and no
         flow can complete before it (a completion "now" requires an
         active flow with [remaining <= epsilon], and there is none).
         Time does not advance, so no rate is read — process the event
         without refreshing.  This collapses a burst of same-instant
         events into a single deferred recompute at the next real read,
         with bit-identical trajectories: the slow path below would
         take its heap branch with dt = 0 for each of them anyway. *)
      incr n_events;
      match Heap.pop events with
      | None -> assert false (* t_heap is finite, so the heap is non-empty *)
      | Some (_, ev) -> handle_event ev
    end
    else begin
      if !rates_dirty then begin
        rates_dirty := false;
        recompute_rates ();
        (* Rates moved under the cached prediction's feet. *)
        t_flow_valid := false
      end;
      (* Next flow completion.  [now +. (remaining /. r)] depends only
         on each flow's rate and residual size, both unchanged since
         the advance pass that cached it (any start/finish or refresh
         cleared the flag), so reuse is bit-exact and the scan is
         skipped on iterations whose rates stayed clean. *)
      let t_flow =
        if !t_flow_valid then !t_flow_cache
        else begin
          let tf = ref infinity in
          Fair_share_inc.iter_active fs (fun fid r ->
              if r > epsilon then begin
                let f = flow_at fid in
                tf := Float.min !tf (!now +. (f.remaining /. r))
              end);
          !tf
        end
      in
      let t_next = Float.min horizon (Float.min t_heap t_flow) in
      (* Advance all flows to t_next, predicting the next completion
         time as a side product: with [now] about to become [t_next],
         the candidate below is the same float expression the scan
         above would evaluate next iteration. *)
      let dt = t_next -. !now in
      if dt > 0.0 then begin
        let tf = ref infinity in
        Fair_share_inc.iter_active fs (fun fid r ->
            let f = flow_at fid in
            let before = f.remaining in
            let moved = Float.min f.remaining (r *. dt) in
            f.remaining <- f.remaining -. moved;
            if before > epsilon && f.remaining <= epsilon then push_tiny fid;
            if r > epsilon then
              tf := Float.min !tf (t_next +. (f.remaining /. r));
            match f.kind with
            | Download _ -> download_delivered := !download_delivered +. moved
            | Message _ -> ());
        t_flow_cache := !tf;
        t_flow_valid := true
      end;
      now := t_next;
      if t_next >= horizon then continue_ := false
      else if t_flow <= t_heap then begin
        (* One or more flows completed.  The tiny list holds exactly
           the active flows with [remaining <= epsilon] (a flow crosses
           the threshold once and is only ever removed here), so no
           rescan is needed — just finish them in ascending fid order,
           the order the scan this replaces used to yield. *)
        incr n_events;
        let k = !n_tiny in
        let a = !tiny in
        for i = 1 to k - 1 do
          let v = a.(i) in
          let j = ref i in
          while !j > 0 && a.(!j - 1) > v do
            a.(!j) <- a.(!j - 1);
            decr j
          done;
          a.(!j) <- v
        done;
        n_tiny := 0;
        arrival_bumped := false;
        for i = 0 to k - 1 do
          finish_flow a.(i)
        done;
        if !arrival_bumped then dispatch ()
      end
      else begin
        incr n_events;
        match Heap.pop events with
        | None -> continue_ := false
        | Some (_, ev) -> handle_event ev
      end
    end
  done;
  (* --- measurement --- *)
  let achieved = float_of_int !n_after_warmup /. (horizon -. warmup) in
  let ideal =
    List.fold_left
      (fun acc (_, k, _) -> acc +. (App.download_rate app k *. horizon))
      0.0
      (Alloc.all_downloads alloc)
  in
  let report =
    {
      sim_time = horizon;
      results_completed = !n_root_completions;
      achieved_throughput = achieved;
      target_throughput = App.rho app;
      proc_busy =
        Array.map (fun b -> Float.min 1.0 (b /. horizon)) busy_until_accum;
      download_delivered = !download_delivered;
      download_ideal = ideal;
      events = !n_events;
      root_completions = Array.of_list (List.rev !root_times);
    }
  in
  Obs.add "sim.event" !n_events;
  Obs.add "sim.rate_recompute" !n_recomputes;
  Obs.add "sim.flow.started" !n_flows_started;
  Obs.add "sim.flow.completed" !n_flows_completed;
  Obs.add "sim.result" report.results_completed;
  (match kernel with
  | `Incremental ->
    let ks = Fair_share_inc.stats fs in
    Obs.add "sim.component.recompute" ks.Fair_share_inc.components_recomputed;
    Obs.add "sim.component.flow" ks.Fair_share_inc.flows_recomputed;
    Obs.add "sim.component.round" ks.Fair_share_inc.rounds;
    Obs.add "sim.component.rebuild" ks.Fair_share_inc.rebuilds
  | `Full -> ());
  Obs.gauge "sim.throughput.achieved" report.achieved_throughput;
  let busy = report.proc_busy in
  if Array.length busy > 0 then begin
    Obs.gauge "sim.busy.max" (Array.fold_left Float.max 0.0 busy);
    Obs.gauge "sim.busy.mean"
      (Array.fold_left ( +. ) 0.0 busy /. float_of_int (Array.length busy))
  end;
  report

let run ?window ?horizon ?warmup ?kernel ?disruptions app platform alloc =
  Obs.span "sim.run" (fun () ->
      run_impl ?window ?horizon ?warmup ?kernel ?disruptions app platform alloc)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>simulated %.1f s, %d events@ root results: %d (%.3f/s vs target \
     %.3f/s)@ downloads: %.0f / %.0f MB delivered@ busy: [%s]@]"
    r.sim_time r.events r.results_completed r.achieved_throughput
    r.target_throughput r.download_delivered r.download_ideal
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.2f") r.proc_busy)))

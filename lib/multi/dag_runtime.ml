module Objects = Insp_tree.Objects
module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform
module Servers = Insp_platform.Servers
module Alloc = Insp_mapping.Alloc
module Heap = Insp_util.Heap
module Runtime = Insp_sim.Runtime
module Fair_share = Insp_sim.Fair_share

let sustains_target = Runtime.sustains_target

type endpoint = Proc of int | Server of int

type flow_kind =
  | Stream of { producer : int }  (* node output towards dst's consumers *)
  | Download of { object_type : int }

type flow = {
  kind : flow_kind;
  src : endpoint;
  dst : int;
  mutable remaining : float;
}

type event =
  | Compute_done of { node : int }
  | Download_due of { proc : int; object_type : int; server : int }

let epsilon = 1e-9

let run ?window ?(horizon = 80.0) ?warmup dag platform alloc =
  let window =
    match window with
    | Some w -> w
    | None -> max 8 (2 * Alloc.n_procs alloc)
  in
  let warmup = match warmup with Some w -> w | None -> horizon /. 4.0 in
  if warmup >= horizon then invalid_arg "Dag_runtime.run: warmup >= horizon";
  let n = Dag.n_nodes dag in
  let rho = (Dag.node dag 0).Dag.rate in
  for i = 0 to n - 1 do
    if Float.abs ((Dag.node dag i).Dag.rate -. rho) > 1e-9 then
      invalid_arg "Dag_runtime.run: mixed node rates are not supported"
  done;
  let proc_of = Array.make n (-1) in
  for i = 0 to n - 1 do
    match Alloc.assignment alloc i with
    | Some u -> proc_of.(i) <- u
    | None -> invalid_arg "Dag_runtime.run: unassigned node"
  done;
  let n_procs = Alloc.n_procs alloc in
  let speed u = (Alloc.proc alloc u).Alloc.config.Catalog.cpu.Catalog.speed in
  let nic u = (Alloc.proc alloc u).Alloc.config.Catalog.nic.Catalog.bandwidth in
  let servers = platform.Platform.servers in
  let objects = Dag.objects dag in
  (* Remote destinations of every node's output stream. *)
  let remote_dests =
    Array.init n (fun i ->
        Dag.consumers dag i
        |> List.map (fun c -> proc_of.(c))
        |> List.filter (fun v -> v <> proc_of.(i))
        |> List.sort_uniq compare)
  in
  let node_inputs =
    Array.init n (fun i ->
        List.filter_map
          (function Dag.Node j -> Some j | Dag.Object _ -> None)
          (Dag.inputs dag i))
  in
  let completed = Array.make n (-1) in
  (* arrivals.(v) maps producer node -> results received at proc v *)
  let arrivals = Array.init n_procs (fun _ -> Hashtbl.create 16) in
  let arrived v j =
    match Hashtbl.find_opt arrivals.(v) j with Some c -> c | None -> 0
  in
  let computing = Array.make n_procs false in
  let busy_accum = Array.make n_procs 0.0 in
  let roots = Dag.roots dag in
  let root_completions = Array.make (List.length roots) [] in
  let flows : flow list ref = ref [] in
  let rates : (flow * float) list ref = ref [] in
  let events = Heap.create () in
  let n_events = ref 0 in
  let download_delivered = ref 0.0 in
  let recompute_rates () =
    let fl = Array.of_list !flows in
    if Array.length fl = 0 then rates := []
    else begin
      let caps = ref [] in
      let n_caps = ref 0 in
      let cap_index = Hashtbl.create 16 in
      let constraint_of key cap =
        match Hashtbl.find_opt cap_index key with
        | Some idx -> idx
        | None ->
          let idx = !n_caps in
          incr n_caps;
          Hashtbl.replace cap_index key idx;
          caps := cap :: !caps;
          idx
      in
      let membership =
        Array.map
          (fun f ->
            let dst_card = constraint_of (`Proc_card f.dst) (nic f.dst) in
            match f.src with
            | Proc u ->
              [
                constraint_of (`Proc_card u) (nic u);
                dst_card;
                constraint_of (`Plink (u, f.dst)) platform.Platform.proc_link;
              ]
            | Server l ->
              [
                constraint_of (`Server_card l) (Servers.card servers l);
                dst_card;
                constraint_of (`Slink (l, f.dst)) platform.Platform.server_link;
              ])
          fl
      in
      let caps = Array.of_list (List.rev !caps) in
      let r = Fair_share.compute ~caps ~membership in
      rates := Array.to_list (Array.mapi (fun i f -> (f, r.(i))) fl)
    end
  in
  let min_root_completed () =
    List.fold_left
      (fun acc (r, _) -> min acc completed.(r))
      max_int roots
  in
  let ready node =
    let t = completed.(node) + 1 in
    t <= min_root_completed () + window
    && List.for_all
         (fun j ->
           if proc_of.(j) = proc_of.(node) then completed.(j) >= t
           else arrived proc_of.(node) j > t)
         node_inputs.(node)
  in
  let now = ref 0.0 in
  let dispatch () =
    for u = 0 to n_procs - 1 do
      if not computing.(u) then begin
        let best = ref None in
        List.iter
          (fun node ->
            if ready node then
              match !best with
              | Some b when (completed.(b), b) <= (completed.(node), node) -> ()
              | _ -> best := Some node)
          (Alloc.operators_of alloc u);
        match !best with
        | None -> ()
        | Some node ->
          computing.(u) <- true;
          let duration = (Dag.node dag node).Dag.work /. speed u in
          busy_accum.(u) <- busy_accum.(u) +. duration;
          Heap.push events (!now +. duration) (Compute_done { node })
      end
    done
  in
  let finish_compute node =
    completed.(node) <- completed.(node) + 1;
    computing.(proc_of.(node)) <- false;
    List.iteri
      (fun idx (r, _) ->
        if r = node then
          root_completions.(idx) <- !now :: root_completions.(idx))
      roots;
    if remote_dests.(node) <> [] then begin
      let size = (Dag.node dag node).Dag.output in
      List.iter
        (fun v ->
          flows :=
            {
              kind = Stream { producer = node };
              src = Proc proc_of.(node);
              dst = v;
              remaining = size;
            }
            :: !flows)
        remote_dests.(node);
      recompute_rates ()
    end
  in
  let finish_flow f =
    (match f.kind with
    | Stream { producer } ->
      Hashtbl.replace arrivals.(f.dst) producer (arrived f.dst producer + 1)
    | Download _ -> ());
    flows := List.filter (fun g -> g != f) !flows
  in
  List.iter
    (fun (u, k, l) ->
      Heap.push events 0.0 (Download_due { proc = u; object_type = k; server = l }))
    (Alloc.all_downloads alloc);
  dispatch ();
  let continue_ = ref true in
  while !continue_ do
    let t_heap =
      match Heap.peek events with Some (t, _) -> t | None -> infinity
    in
    let t_flow =
      List.fold_left
        (fun acc (f, r) ->
          if r > epsilon then Float.min acc (!now +. (f.remaining /. r)) else acc)
        infinity !rates
    in
    let t_next = Float.min horizon (Float.min t_heap t_flow) in
    let dt = t_next -. !now in
    if dt > 0.0 then
      List.iter
        (fun (f, r) ->
          let moved = Float.min f.remaining (r *. dt) in
          f.remaining <- f.remaining -. moved;
          match f.kind with
          | Download _ -> download_delivered := !download_delivered +. moved
          | Stream _ -> ())
        !rates;
    now := t_next;
    if t_next >= horizon then continue_ := false
    else if t_flow <= t_heap then begin
      incr n_events;
      let done_flows = List.filter (fun f -> f.remaining <= epsilon) !flows in
      List.iter finish_flow done_flows;
      recompute_rates ();
      dispatch ()
    end
    else begin
      incr n_events;
      match Heap.pop events with
      | None -> continue_ := false
      | Some (_, Compute_done { node }) ->
        finish_compute node;
        dispatch ()
      | Some (_, Download_due { proc; object_type; server }) ->
        let size = Objects.size objects object_type in
        let freq = Objects.freq objects object_type in
        flows :=
          {
            kind = Download { object_type };
            src = Server server;
            dst = proc;
            remaining = size;
          }
          :: !flows;
        Heap.push events (!now +. (1.0 /. freq))
          (Download_due { proc; object_type; server });
        recompute_rates ();
        dispatch ()
    end
  done;
  let per_root_rate completions =
    let after = List.filter (fun t -> t >= warmup) completions in
    float_of_int (List.length after) /. (horizon -. warmup)
  in
  let achieved =
    Array.fold_left
      (fun acc completions -> Float.min acc (per_root_rate completions))
      infinity root_completions
  in
  let total_completed =
    Array.fold_left
      (fun acc completions -> min acc (List.length completions))
      max_int root_completions
  in
  let ideal =
    List.fold_left
      (fun acc (_, k, _) -> acc +. (Objects.rate objects k *. horizon))
      0.0 (Alloc.all_downloads alloc)
  in
  {
    Runtime.sim_time = horizon;
    results_completed = total_completed;
    achieved_throughput = achieved;
    target_throughput = rho;
    proc_busy = Array.map (fun b -> Float.min 1.0 (b /. horizon)) busy_accum;
    download_delivered = !download_delivered;
    download_ideal = ideal;
    events = !n_events;
    root_completions =
      (* merged over every root, ascending *)
      (let all =
         Array.fold_left
           (fun acc completions -> List.rev_append completions acc)
           [] root_completions
       in
       let a = Array.of_list all in
       Array.sort Float.compare a;
       a);
  }

module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Objects = Insp_tree.Objects

type input = Object of int | Node of int

type node = {
  id : int;
  inputs : input list;
  rate : float;
  work : float;
  output : float;
}

type t = {
  nodes : node array;
  objects : Objects.t;
  n_object_types : int;
  roots : (int * float) list;
  consumers : int list array;
}

let n_nodes t = Array.length t.nodes
let objects t = t.objects
let node t i = t.nodes.(i)
let inputs t i = t.nodes.(i).inputs
let consumers t i = t.consumers.(i)
let roots t = t.roots
let n_object_types t = t.n_object_types

let object_users t k =
  let acc = ref [] in
  for i = n_nodes t - 1 downto 0 do
    if List.mem (Object k) t.nodes.(i).inputs then acc := i :: !acc
  done;
  !acc

let topological t = List.init (n_nodes t) Fun.id

let is_al_node t i =
  List.exists (function Object _ -> true | Node _ -> false) t.nodes.(i).inputs

let compute_consumers nodes =
  let consumers = Array.make (Array.length nodes) [] in
  Array.iter
    (fun n ->
      List.iter
        (function
          | Node j -> consumers.(j) <- n.id :: consumers.(j)
          | Object _ -> ())
        n.inputs)
    nodes;
  Array.map (List.sort_uniq compare) consumers

let validate t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let n = n_nodes t in
  let rec check i =
    if i >= n then Ok ()
    else begin
      let nd = t.nodes.(i) in
      let arity = List.length nd.inputs in
      if nd.id <> i then fail "node %d stores id %d" i nd.id
      else if arity < 1 || arity > 2 then fail "node %d has arity %d" i arity
      else if
        List.exists
          (function
            | Node j -> j < 0 || j >= i (* topological: inputs precede *)
            | Object k -> k < 0 || k >= t.n_object_types)
          nd.inputs
      then fail "node %d has an invalid or non-topological input" i
      else begin
        let consumer_rates =
          List.map (fun j -> t.nodes.(j).rate) t.consumers.(i)
        in
        let sink_rates =
          List.filter_map
            (fun (r, rho) -> if r = i then Some rho else None)
            t.roots
        in
        match consumer_rates @ sink_rates with
        | [] -> fail "node %d feeds nothing" i
        | rates ->
          let expected = List.fold_left Float.max 0.0 rates in
          if Float.abs (nd.rate -. expected) > 1e-9 then
            fail "node %d rate %.3f, expected %.3f" i nd.rate expected
          else check (i + 1)
      end
    end
  in
  if t.roots = [] then Error "no applications"
  else if
    List.exists (fun (r, rho) -> r < 0 || r >= n || rho <= 0.0) t.roots
  then Error "invalid root"
  else check 0

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)

type builder = {
  b_n_object_types : int;
  mutable rev_inputs : input list list;  (* newest first *)
  mutable count : int;
}

let create_builder ~n_object_types =
  if n_object_types < 1 then
    invalid_arg "Dag.create_builder: need at least one object type";
  { b_n_object_types = n_object_types; rev_inputs = []; count = 0 }

let add_node b ~inputs =
  let arity = List.length inputs in
  if arity < 1 || arity > 2 then invalid_arg "Dag.add_node: arity must be 1-2";
  List.iter
    (function
      | Node j ->
        if j < 0 || j >= b.count then invalid_arg "Dag.add_node: dangling node"
      | Object k ->
        if k < 0 || k >= b.b_n_object_types then
          invalid_arg "Dag.add_node: unknown object type")
    inputs;
  let id = b.count in
  b.rev_inputs <- inputs :: b.rev_inputs;
  b.count <- b.count + 1;
  id

let finish b ~objects ~alpha ?(base_work = 0.0) ?(work_factor = 1.0) ~roots () =
  if roots = [] then invalid_arg "Dag.finish: no applications";
  List.iter
    (fun (r, rho) ->
      if r < 0 || r >= b.count then invalid_arg "Dag.finish: dangling root";
      if rho <= 0.0 then invalid_arg "Dag.finish: non-positive rho")
    roots;
  let all_inputs = Array.of_list (List.rev b.rev_inputs) in
  let n = b.count in
  let output = Array.make n 0.0 in
  let work = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let mass =
      List.fold_left
        (fun acc -> function
          | Object k -> acc +. Objects.size objects k
          | Node j -> acc +. output.(j))
        0.0 all_inputs.(i)
    in
    output.(i) <- mass;
    work.(i) <- base_work +. (work_factor *. (mass ** alpha))
  done;
  (* Rates flow downward: process in reverse topological order. *)
  let rate = Array.make n 0.0 in
  List.iter (fun (r, rho) -> rate.(r) <- Float.max rate.(r) rho) roots;
  for i = n - 1 downto 0 do
    List.iter
      (function
        | Node j -> rate.(j) <- Float.max rate.(j) rate.(i)
        | Object _ -> ())
      all_inputs.(i)
  done;
  let nodes =
    Array.init n (fun i ->
        {
          id = i;
          inputs = all_inputs.(i);
          rate = rate.(i);
          work = work.(i);
          output = output.(i);
        })
  in
  let t =
    {
      nodes;
      objects;
      n_object_types = b.b_n_object_types;
      roots;
      consumers = compute_consumers nodes;
    }
  in
  (match validate t with
  | Ok () -> ()
  | Error e -> invalid_arg ("Dag.finish: " ^ e));
  t

let of_apps apps =
  match apps with
  | [] -> invalid_arg "Dag.of_apps: no applications"
  | first :: _ ->
    let n_object_types = Objects.count (App.objects first) in
    let total = List.fold_left (fun acc a -> acc + App.n_operators a) 0 apps in
    let nodes = Array.make total None in
    let next = ref 0 in
    let roots = ref [] in
    List.iter
      (fun app ->
        let tree = App.tree app in
        let mapping = Hashtbl.create 32 in
        List.iter
          (fun op ->
            let id = !next in
            incr next;
            Hashtbl.replace mapping op id;
            let inputs =
              List.map (fun k -> Object k) (Optree.leaves tree op)
              @ List.map
                  (fun c -> Node (Hashtbl.find mapping c))
                  (Optree.children tree op)
            in
            nodes.(id) <-
              Some
                {
                  id;
                  inputs;
                  rate = App.rho app;
                  work = App.work app op;
                  output = App.output_size app op;
                })
          (Optree.postorder tree);
        roots :=
          (Hashtbl.find mapping (Optree.root tree), App.rho app) :: !roots)
      apps;
    let nodes =
      Array.map
        (function
          | Some n -> n
          | None -> assert false (* every id is filled by the postorder pass *))
        nodes
    in
    {
      nodes;
      objects = App.objects first;
      n_object_types;
      roots = List.rev !roots;
      consumers = compute_consumers nodes;
    }

let pp ppf t =
  Format.fprintf ppf "@[<v>DAG: %d nodes, %d applications@ " (n_nodes t)
    (List.length t.roots);
  Array.iter
    (fun n ->
      let show = function
        | Object k -> Printf.sprintf "o%d" k
        | Node j -> Printf.sprintf "n%d" j
      in
      Format.fprintf ppf "n%d <- [%s]  rate=%.2f w=%.1f out=%.1f@ " n.id
        (String.concat ", " (List.map show n.inputs))
        n.rate n.work n.output)
    t.nodes;
  List.iter
    (fun (r, rho) -> Format.fprintf ppf "sink: n%d @ %.2f/s@ " r rho)
    t.roots;
  Format.fprintf ppf "@]"

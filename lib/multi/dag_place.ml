module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform
module Alloc = Insp_mapping.Alloc
module Cost = Insp_mapping.Cost
module Server_select = Insp_heuristics.Server_select
module Objects = Insp_tree.Objects

type outcome = { alloc : Alloc.t; cost : float; n_procs : int }

type failure =
  | Placement of string
  | Server_selection of string
  | Validation of string

let failure_message = function
  | Placement m -> "placement failed: " ^ m
  | Server_selection m -> "server selection failed: " ^ m
  | Validation m -> "validation failed: " ^ m

let tolerance = 1e-9
let leq v cap = v <= cap *. (1.0 +. tolerance) +. tolerance

(* ------------------------------------------------------------------ *)
(* Mutable placement state (the DAG analogue of Insp.Builder)          *)

type group = { mutable members : int list; mutable cfg : Catalog.config }

type state = {
  dag : Dag.t;
  platform : Platform.t;
  groups : (int, group) Hashtbl.t;
  mutable order : int list;  (* reversed acquisition order *)
  mutable next_id : int;
  assign : int option array;
}

let create dag platform =
  {
    dag;
    platform;
    groups = Hashtbl.create 32;
    order = [];
    next_id = 0;
    assign = Array.make (Dag.n_nodes dag) None;
  }

let group_ids st = List.rev st.order
let members st gid = (Hashtbl.find st.groups gid).members

let demand_fits st config members =
  let d = Dag_check.group_demand st.dag members in
  leq d.Dag_check.compute config.Catalog.cpu.Catalog.speed
  && leq (Dag_check.nic d) config.Catalog.nic.Catalog.bandwidth

(* Flow between two member sets: one stream per (producer, consuming
   set) at the fastest consuming rate.  Membership is answered through a
   marker array instead of [List.mem] per consumer. *)
let flow_between dag g h =
  let in_h = Array.make (Dag.n_nodes dag) false in
  List.iter (fun i -> in_h.(i) <- true) h;
  let in_g = Array.make (Dag.n_nodes dag) false in
  List.iter (fun i -> in_g.(i) <- true) g;
  let one_way src in_dst =
    List.fold_left
      (fun acc j ->
        let rate =
          List.fold_left
            (fun m c ->
              if in_dst.(c) then Float.max m (Dag.node dag c).Dag.rate else m)
            0.0 (Dag.consumers dag j)
        in
        acc +. ((Dag.node dag j).Dag.output *. rate))
      0.0 src
  in
  one_way g in_h +. one_way h in_g

(* Groups reachable from [members] through one stream edge, read off the
   assignment array.  Only these can carry flow towards [members], so
   constraint (5) is checked against them alone — the previous
   implementation recomputed the flow towards every live group per
   probe.  (DAG flow semantics — one stream per producer at the fastest
   consuming rate — make exact incremental pair-flow maintenance à la
   [Insp_mapping.Ledger] impractical; restricting the recomputation to
   adjacent groups gives the same decisions, since non-adjacent groups
   carry zero flow.) *)
let adjacent_groups st ~members ~ignore_groups =
  let marked = Array.make (Dag.n_nodes st.dag) false in
  List.iter (fun i -> marked.(i) <- true) members;
  let adj = ref [] in
  let note i =
    if not marked.(i) then
      match st.assign.(i) with
      | Some gid when (not (List.mem gid ignore_groups))
                      && not (List.mem gid !adj) ->
        adj := gid :: !adj
      | Some _ | None -> ()
  in
  List.iter
    (fun m ->
      List.iter
        (function Dag.Node j -> note j | Dag.Object _ -> ())
        (Dag.inputs st.dag m);
      List.iter note (Dag.consumers st.dag m))
    members;
  !adj

let can_host st ~config ~members ?(ignore_groups = []) () =
  demand_fits st config members
  && List.for_all
       (fun gid ->
         leq
           (flow_between st.dag members (Hashtbl.find st.groups gid).members)
           st.platform.Platform.proc_link)
       (adjacent_groups st ~members ~ignore_groups)

let acquire st ~config ~members =
  if can_host st ~config ~members () then begin
    let gid = st.next_id in
    st.next_id <- st.next_id + 1;
    Hashtbl.replace st.groups gid
      { members = List.sort compare members; cfg = config };
    st.order <- gid :: st.order;
    List.iter (fun i -> st.assign.(i) <- Some gid) members;
    Some gid
  end
  else None

let sell st gid =
  let g = Hashtbl.find st.groups gid in
  List.iter (fun i -> st.assign.(i) <- None) g.members;
  Hashtbl.remove st.groups gid;
  st.order <- List.filter (fun id -> id <> gid) st.order

let try_add st gid node =
  let g = Hashtbl.find st.groups gid in
  let candidate = List.sort compare (node :: g.members) in
  if can_host st ~config:g.cfg ~members:candidate ~ignore_groups:[ gid ] ()
  then begin
    g.members <- candidate;
    st.assign.(node) <- Some gid;
    true
  end
  else false

let try_absorb st winner loser =
  let gw = Hashtbl.find st.groups winner in
  let gl = Hashtbl.find st.groups loser in
  let candidate = List.sort compare (gw.members @ gl.members) in
  if
    can_host st ~config:gw.cfg ~members:candidate
      ~ignore_groups:[ winner; loser ] ()
  then begin
    let absorbed = gl.members in
    sell st loser;
    gw.members <- candidate;
    List.iter (fun i -> st.assign.(i) <- Some winner) absorbed;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* SBU-style placement                                                 *)

(* Depth of a node = longest path to any sink (roots have depth 0). *)
let depths dag =
  let n = Dag.n_nodes dag in
  let depth = Array.make n 0 in
  (* ids are topological: consumers have higher ids; walk down. *)
  for i = n - 1 downto 0 do
    List.iter
      (function
        | Dag.Node j -> depth.(j) <- max depth.(j) (depth.(i) + 1)
        | Dag.Object _ -> ())
      (Dag.inputs dag i)
  done;
  depth

let absorb_consumers st gid =
  let dag = st.dag in
  let progressed = ref false in
  let rec pass () =
    let changed =
      List.exists
        (fun m ->
          List.exists
            (fun c ->
              match st.assign.(c) with
              | None -> try_add st gid c
              | Some other when other <> gid -> try_absorb st gid other
              | Some _ -> false)
            (Dag.consumers dag m))
        (members st gid)
    in
    if changed then begin
      progressed := true;
      pass ()
    end
  in
  pass ();
  !progressed

(* Iterative grouping fallback: grow the member set along its heaviest
   stream edge until a processor can host it. *)
let acquire_with_grouping st node =
  let dag = st.dag in
  let best_cfg = Catalog.best st.platform.Platform.catalog in
  let heaviest_neighbor members =
    let in_set i = List.mem i members in
    let best = ref None in
    let consider cand w =
      match !best with
      | Some (_, bw) when bw >= w -> ()
      | Some _ | None -> best := Some (cand, w)
    in
    List.iter
      (fun m ->
        let nm = Dag.node dag m in
        List.iter
          (function
            | Dag.Node j when not (in_set j) ->
              consider j ((Dag.node dag j).Dag.output *. nm.Dag.rate)
            | Dag.Node _ | Dag.Object _ -> ())
          nm.Dag.inputs;
        List.iter
          (fun c ->
            if not (in_set c) then
              consider c (nm.Dag.output *. (Dag.node dag c).Dag.rate))
          (Dag.consumers dag m))
      members;
    Option.map fst !best
  in
  let rec grow members rounds =
    match acquire st ~config:best_cfg ~members with
    | Some gid -> Ok gid
    | None ->
      if rounds <= 0 then
        Error
          (Printf.sprintf "no processor can host nodes {%s}"
             (String.concat ", " (List.map string_of_int members)))
      else (
        match heaviest_neighbor members with
        | None -> Error "isolated node fits no processor"
        | Some nb ->
          (match st.assign.(nb) with
          | Some gid -> sell st gid
          | None -> ());
          grow (nb :: members) (rounds - 1))
  in
  grow [ node ] 8

let consolidate st =
  let adjacent ga gb =
    flow_between st.dag (members st ga) (members st gb) > 0.0
  in
  let rec pass () =
    let by_size =
      List.sort
        (fun a b ->
          compare (List.length (members st a)) (List.length (members st b)))
        (group_ids st)
    in
    let merged =
      List.exists
        (fun loser ->
          Hashtbl.mem st.groups loser
          &&
          let hosts = List.filter (fun g -> g <> loser) (group_ids st) in
          let adj, rest = List.partition (fun g -> adjacent g loser) hosts in
          List.exists (fun winner -> try_absorb st winner loser) (adj @ rest))
        by_size
    in
    if merged then pass ()
  in
  pass ()

let place dag platform =
  let st = create dag platform in
  let best_cfg = Catalog.best platform.Platform.catalog in
  let depth = depths dag in
  let al_nodes =
    List.filter (Dag.is_al_node dag) (Dag.topological dag)
    |> List.sort (fun a b ->
           let c = compare depth.(b) depth.(a) in
           if c <> 0 then c else compare a b)
  in
  let rec seed = function
    | [] -> Ok ()
    | node :: rest ->
      if st.assign.(node) <> None then seed rest
      else (
        match acquire st ~config:best_cfg ~members:[ node ] with
        | Some _ -> seed rest
        | None -> (
          match acquire_with_grouping st node with
          | Ok _ -> seed rest
          | Error e -> Error e))
  in
  match seed al_nodes with
  | Error e -> Error e
  | Ok () ->
    (* bottom-up merge rounds *)
    let deepest gid =
      List.fold_left (fun acc m -> max acc depth.(m)) 0 (members st gid)
    in
    let rec merge_rounds () =
      let by_depth =
        List.sort (fun a b -> compare (deepest b) (deepest a)) (group_ids st)
      in
      let changed =
        List.fold_left
          (fun acc gid ->
            if Hashtbl.mem st.groups gid then absorb_consumers st gid || acc
            else acc)
          false by_depth
      in
      if changed then merge_rounds ()
    in
    merge_rounds ();
    (* leftovers, inputs before consumers, bounded against oscillation *)
    let budget = ref ((Dag.n_nodes dag * Dag.n_nodes dag) + 16) in
    let rec leftovers () =
      match
        List.filter (fun i -> st.assign.(i) = None) (Dag.topological dag)
      with
      | [] ->
        consolidate st;
        Ok ()
      | node :: _ ->
        decr budget;
        if !budget <= 0 then Error "placement did not converge"
        else begin
          let input_groups =
            List.filter_map
              (function
                | Dag.Node j -> st.assign.(j)
                | Dag.Object _ -> None)
              (Dag.inputs dag node)
            |> List.sort_uniq compare
          in
          let hosted = List.exists (fun gid -> try_add st gid node) input_groups in
          if hosted then leftovers ()
          else
            match acquire_with_grouping st node with
            | Ok gid ->
              ignore (absorb_consumers st gid);
              leftovers ()
            | Error e -> Error e
        end
    in
    (match leftovers () with
    | Error e -> Error e
    | Ok () ->
      let ids = group_ids st in
      let groups = Array.of_list (List.map (members st) ids) in
      let configs =
        Array.of_list
          (List.map (fun gid -> (Hashtbl.find st.groups gid).cfg) ids)
      in
      Ok (groups, configs))

(* ------------------------------------------------------------------ *)
(* Downgrade and full pipeline                                         *)

let downgrade dag platform alloc =
  let catalog = platform.Platform.catalog in
  let objects = Dag.objects dag in
  let n = Alloc.n_procs alloc in
  let rec shrink alloc u =
    if u >= n then alloc
    else begin
      let d = Dag_check.proc_demand dag alloc u in
      let planned_rate =
        List.fold_left
          (fun acc (k, _) -> acc +. Objects.rate objects k)
          0.0 (Alloc.downloads_of alloc u)
      in
      let nic_load = planned_rate +. d.Dag_check.comm_in +. d.Dag_check.comm_out in
      let alloc =
        match
          Catalog.cheapest_satisfying catalog ~speed:d.Dag_check.compute
            ~bandwidth:nic_load
        with
        | Some config -> Alloc.with_config alloc u config
        | None -> alloc
      in
      shrink alloc (u + 1)
    end
  in
  shrink alloc 0

let run dag platform =
  match place dag platform with
  | Error e -> Error (Placement e)
  | Ok (groups, configs) -> (
    let needs =
      Array.to_list
        (Array.mapi
           (fun u g -> List.map (fun k -> (u, k)) (Dag_check.distinct_objects dag g))
           groups)
      |> List.concat
    in
    match
      Server_select.sophisticated_generic ~n_groups:(Array.length groups)
        ~rate:(Objects.rate (Dag.objects dag))
        ~servers:platform.Platform.servers
        ~server_link:platform.Platform.server_link ~needs
    with
    | Error e -> Error (Server_selection e)
    | Ok downloads -> (
      let alloc = Alloc.of_groups ~configs ~groups ~downloads in
      let alloc = downgrade dag platform alloc in
      match Dag_check.check dag platform alloc with
      | [] ->
        Ok
          {
            alloc;
            cost = Cost.of_alloc platform.Platform.catalog alloc;
            n_procs = Alloc.n_procs alloc;
          }
      | violations ->
        Error (Validation (Insp_mapping.Check.explain violations))))

(** Constraint checking for DAG allocations — the paper's constraints
    (1)–(5) generalised to shared operators.

    Differences from the tree checker ({!Insp_mapping.Check}):
    - compute load of a node is [rate_i * w_i] (its own required rate,
      not one global rho);
    - a node's output crossing to another processor is ONE stream per
      destination processor, at the fastest rate any consumer there
      needs: a processor hosting two consumers of the same remote node
      receives the stream once;
    - download plans and server constraints are unchanged.

    Allocations reuse {!Insp_mapping.Alloc} with node ids in place of
    operator ids, and violations reuse {!Insp_mapping.Check.violation}. *)

type demand = {
  compute : float;  (** Mops/s *)
  download : float;  (** MB/s over the group's distinct object inputs *)
  comm_in : float;  (** MB/s from external producer nodes (dedup) *)
  comm_out : float;
      (** MB/s to external consumers — exact per-destination dedup when
          computed from an allocation, conservative per-consumer when
          computed from a bare group *)
}

val nic : demand -> float

val group_demand : Dag.t -> int list -> demand
(** Conservative demand of co-locating the given nodes: external
    consumers are each assumed to live on distinct processors.  Only
    decreases when other nodes join neighbouring groups, making it safe
    for incremental placement. *)

val proc_demand : Dag.t -> Insp_mapping.Alloc.t -> int -> demand
(** Exact demand of processor [u] under a complete allocation
    (per-destination stream dedup). *)

val pair_flow : Dag.t -> Insp_mapping.Alloc.t -> int -> int -> float
(** MB/s over the link between two processors (both directions, one
    stream per (producer, destination) pair). *)

val distinct_objects : Dag.t -> int list -> int list
(** Distinct object types the group downloads. *)

val check :
  Dag.t ->
  Insp_platform.Platform.t ->
  Insp_mapping.Alloc.t ->
  Insp_mapping.Check.violation list

(* lint: allow t3 — documented oracle entry point for external validity checks *)
val is_feasible :
  Dag.t -> Insp_platform.Platform.t -> Insp_mapping.Alloc.t -> bool

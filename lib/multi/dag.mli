(** Operator DAGs for concurrent applications (paper §6, future work):
    "the study of the case when multiple applications must be executed
    simultaneously so that a given throughput must be achieved for each
    application.  In this case a clear opportunity for higher performance
    with a reduced cost is the reuse of common sub-expressions between
    trees."

    A DAG node is an operator with up to two inputs (basic objects or
    other nodes) and {e one or more} consumers: other nodes and/or
    application roots.  Each application demands its own throughput; a
    shared node must therefore be evaluated at the {e maximum} rate of
    its consumers (a faster consumer cannot reuse stale slower-rate
    results, while a slower consumer can subsample a faster stream).

    Nodes are identified by dense ids; ids are in topological order
    (inputs before consumers). *)

type input = Object of int | Node of int

type node = private {
  id : int;
  inputs : input list;  (** 1 or 2 entries *)
  rate : float;  (** evaluations per second this node must sustain *)
  work : float;  (** Mops per evaluation *)
  output : float;  (** MB per evaluation *)
}

type t

val n_nodes : t -> int

val objects : t -> Insp_tree.Objects.t
(** The shared basic-object catalog. *)

val node : t -> int -> node
val inputs : t -> int -> input list

val consumers : t -> int -> int list
(** Node ids consuming this node's output (excluding application
    sinks). *)

val roots : t -> (int * float) list
(** One [(node, rho)] per application, in application order. *)

val object_users : t -> int -> int list
(** Nodes that download object type [k] directly. *)

(* lint: allow t3 — cardinality accessor completing the DAG API *)
val n_object_types : t -> int

val topological : t -> int list
(** All ids, inputs before consumers. *)

val is_al_node : t -> int -> bool

val validate : t -> (unit, string) result
(** Checks arity, topological id order, rate consistency (every node's
    rate equals the max over its consumers' rates and the rhos of the
    applications it feeds) and acyclicity. *)

(** {2 Construction} *)

type builder

val create_builder : n_object_types:int -> builder

val add_node : builder -> inputs:input list -> int
(** Appends a node (mutating the builder) and returns its id.  Inputs
    must reference existing nodes or valid object types; 1 or 2 inputs. *)

val finish :
  builder ->
  objects:Insp_tree.Objects.t ->
  alpha:float ->
  ?base_work:float ->
  ?work_factor:float ->
  roots:(int * float) list ->
  unit ->
  t
(** Computes output sizes and work bottom-up with the standard model
    [w = base_work + work_factor * (sum of input sizes)^alpha], and each
    node's rate as the maximum over its consumers' rates and the rhos of
    the applications it feeds.  Raises [Invalid_argument] on dangling
    ids, empty or non-positive-rho roots, or nodes feeding nothing. *)

val of_apps : Insp_tree.App.t list -> t
(** Translate independent applications into one DAG {e without} any
    sharing (each tree keeps its own nodes).  All applications must use
    the same object catalog, alpha and work constants.  Baseline for the
    CSE comparison. *)

(* lint: allow t3 — debugging printer *)
val pp : Format.formatter -> t -> unit

(** Generation of {e correlated} application sets: several continuous
    queries over the same object catalog that share common
    sub-expressions (the realistic setting for the paper's §6 multi-
    application future work — e.g. several dashboards over the same
    sensor deployment). *)

val correlated_trees :
  Insp_util.Prng.t ->
  n_apps:int ->
  n_operators:int ->
  n_object_types:int ->
  ?n_pool:int ->
  ?pool_operators:int ->
  ?share_prob:float ->
  unit ->
  Insp_tree.Optree.t list
(** Builds [n_apps] random binary trees of [n_operators] operators each.
    A pool of [n_pool] (default 4) random sub-expressions of
    [pool_operators] (default 3) operators is drawn first; whenever a
    generated tree needs a leaf, with probability [share_prob] (default
    0.5) it instead grafts a pool sub-expression (identical across all
    grafts, hence sharable).  Each graft counts towards the tree's
    operator budget. *)

(* lint: allow t3 — workload preset kept for manual experiments *)
val correlated_apps :
  Insp_util.Prng.t ->
  config:Insp_workload.Config.t ->
  n_apps:int ->
  Insp_tree.App.t list
(** Trees from {!correlated_trees} with sizes, frequencies, alpha, work
    constants and rho taken from [config]. *)

val instance :
  seed:int ->
  n_apps:int ->
  n_operators:int ->
  (Insp_tree.App.t list * Insp_platform.Platform.t)
(** Paper-default platform plus a correlated application set, all
    deterministic in [seed]. *)

module Objects = Insp_tree.Objects
module Platform = Insp_platform.Platform
module Servers = Insp_platform.Servers
module Catalog = Insp_platform.Catalog
module Alloc = Insp_mapping.Alloc
module Check = Insp_mapping.Check

type demand = {
  compute : float;
  download : float;
  comm_in : float;
  comm_out : float;
}

let nic d = d.download +. d.comm_in +. d.comm_out

let distinct_objects dag group =
  List.concat_map
    (fun i ->
      List.filter_map
        (function Dag.Object k -> Some k | Dag.Node _ -> None)
        (Dag.inputs dag i))
    group
  |> List.sort_uniq compare

(* Producers outside the group feeding members, with the fastest
   consuming rate inside the group. *)
let external_sources dag group =
  let in_group i = List.mem i group in
  List.fold_left
    (fun acc i ->
      let rate_i = (Dag.node dag i).Dag.rate in
      List.fold_left
        (fun acc input ->
          match input with
          | Dag.Object _ -> acc
          | Dag.Node j ->
            if in_group j then acc
            else
              let prev = try List.assoc j acc with Not_found -> 0.0 in
              (j, Float.max rate_i prev) :: List.remove_assoc j acc)
        acc (Dag.inputs dag i))
    [] group

let group_demand dag group =
  let group = List.sort_uniq compare group in
  let in_group i = List.mem i group in
  let objects = Dag.objects dag in
  let compute =
    List.fold_left
      (fun acc i ->
        let n = Dag.node dag i in
        acc +. (n.Dag.rate *. n.Dag.work))
      0.0 group
  in
  let download =
    List.fold_left
      (fun acc k -> acc +. Objects.rate objects k)
      0.0 (distinct_objects dag group)
  in
  let comm_in =
    List.fold_left
      (fun acc (j, rate) -> acc +. ((Dag.node dag j).Dag.output *. rate))
      0.0 (external_sources dag group)
  in
  (* Conservative: one stream per external consumer. *)
  let comm_out =
    List.fold_left
      (fun acc i ->
        let out = (Dag.node dag i).Dag.output in
        List.fold_left
          (fun acc c ->
            if in_group c then acc
            else acc +. (out *. (Dag.node dag c).Dag.rate))
          acc (Dag.consumers dag i))
      0.0 group
  in
  { compute; download; comm_in; comm_out }

(* Streams leaving processor [u]: one per (producer on u, destination
   processor), at the max rate of the destination's consumers. *)
let outgoing_streams dag alloc u =
  List.concat_map
    (fun i ->
      let out = (Dag.node dag i).Dag.output in
      let per_dest =
        List.fold_left
          (fun acc c ->
            match Alloc.assignment alloc c with
            | Some v when v <> u ->
              let rate = (Dag.node dag c).Dag.rate in
              let prev = try List.assoc v acc with Not_found -> 0.0 in
              (v, Float.max rate prev) :: List.remove_assoc v acc
            | Some _ | None -> acc)
          [] (Dag.consumers dag i)
      in
      List.map (fun (v, rate) -> (i, v, out *. rate)) per_dest)
    (Alloc.operators_of alloc u)

let proc_demand dag alloc u =
  let group = Alloc.operators_of alloc u in
  let d = group_demand dag group in
  let comm_out =
    List.fold_left (fun acc (_, _, f) -> acc +. f) 0.0
      (outgoing_streams dag alloc u)
  in
  { d with comm_out }

let pair_flow dag alloc u v =
  let one_way src dst =
    List.fold_left
      (fun acc (_, dest, f) -> if dest = dst then acc +. f else acc)
      0.0
      (outgoing_streams dag alloc src)
  in
  one_way u v +. one_way v u

let tolerance = 1e-9
let exceeds load cap = load > cap *. (1.0 +. tolerance) +. tolerance

let check dag platform alloc =
  let servers = platform.Platform.servers in
  let objects = Dag.objects dag in
  let n_procs = Alloc.n_procs alloc in
  let acc = ref [] in
  let add v = acc := v :: !acc in
  (* structural *)
  for i = 0 to Dag.n_nodes dag - 1 do
    if Alloc.assignment alloc i = None then add (Check.Unassigned_operator i)
  done;
  for u = 0 to n_procs - 1 do
    let needed = distinct_objects dag (Alloc.operators_of alloc u) in
    let planned = Alloc.downloads_of alloc u in
    let planned_types = List.map fst planned in
    List.iter
      (fun k ->
        if not (List.mem k planned_types) then
          add (Check.Missing_download { proc = u; object_type = k }))
      needed;
    List.iter
      (fun (k, l) ->
        if not (List.mem k needed) then
          add (Check.Extraneous_download { proc = u; object_type = k });
        if l < 0 || l >= Servers.n_servers servers || not (Servers.holds servers l k)
        then add (Check.Not_held { proc = u; object_type = k; server = l }))
      planned;
    List.iter
      (fun k ->
        if List.length (List.filter (fun k' -> k' = k) planned_types) > 1
        then add (Check.Duplicate_download { proc = u; object_type = k }))
      (List.sort_uniq compare planned_types)
  done;
  (* (1) and (2) *)
  for u = 0 to n_procs - 1 do
    let config = (Alloc.proc alloc u).Alloc.config in
    let d = proc_demand dag alloc u in
    if exceeds d.compute config.Catalog.cpu.Catalog.speed then
      add
        (Check.Compute_overload
           { proc = u; load = d.compute; capacity = config.Catalog.cpu.Catalog.speed });
    let planned_rate =
      List.fold_left
        (fun acc (k, _) -> acc +. Objects.rate objects k)
        0.0 (Alloc.downloads_of alloc u)
    in
    let nic_load = planned_rate +. d.comm_in +. d.comm_out in
    if exceeds nic_load config.Catalog.nic.Catalog.bandwidth then
      add
        (Check.Nic_overload
           {
             proc = u;
             load = nic_load;
             capacity = config.Catalog.nic.Catalog.bandwidth;
           })
  done;
  (* (3) and (4) *)
  for l = 0 to Servers.n_servers servers - 1 do
    let total = ref 0.0 in
    for u = 0 to n_procs - 1 do
      let link_load =
        List.fold_left
          (fun acc (k, l') ->
            if l' = l then acc +. Objects.rate objects k else acc)
          0.0 (Alloc.downloads_of alloc u)
      in
      total := !total +. link_load;
      if exceeds link_load platform.Platform.server_link then
        add
          (Check.Server_link_overload
             {
               server = l;
               proc = u;
               load = link_load;
               capacity = platform.Platform.server_link;
             })
    done;
    if exceeds !total (Servers.card servers l) then
      add
        (Check.Server_card_overload
           { server = l; load = !total; capacity = Servers.card servers l })
  done;
  (* (5) *)
  for u = 0 to n_procs - 1 do
    for v = u + 1 to n_procs - 1 do
      let flow = pair_flow dag alloc u v in
      if exceeds flow platform.Platform.proc_link then
        add
          (Check.Proc_link_overload
             {
               proc_a = u;
               proc_b = v;
               load = flow;
               capacity = platform.Platform.proc_link;
             })
    done
  done;
  List.rev !acc

let is_feasible dag platform alloc = check dag platform alloc = []

(* Canonical JSON fragment encoders shared by every JSON-emitting
   exporter (Export.chrome_trace, Journal.to_jsonl).  "Canonical" means
   the rendering is a pure function of the value: strings always escape
   the same bytes the same way, floats render integers without an
   exponent and everything else with the shortest %g form that
   round-trips (falling back to the exact 17-digit form), so two
   journals of the same decision sequence are byte-identical
   (DESIGN.md §12). *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let string s = "\"" ^ escape s ^ "\""

let int = string_of_int

let bool b = if b then "true" else "false"

(* JSON has no literal for non-finite floats; encode them as tagged
   strings so the line stays parseable and the encoding deterministic. *)
let float v =
  if Float.is_nan v then "\"nan\""
  else if not (Float.is_finite v) then
    if v > 0.0 then "\"inf\"" else "\"-inf\""
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else begin
    let short = Printf.sprintf "%.12g" v in
    (* Bit-exact round-trip test, not a tolerance: the short form is
       kept only when it denotes the very same float. *)
    if Int64.equal (Int64.bits_of_float (float_of_string short))
         (Int64.bits_of_float v)
    then short
    else Printf.sprintf "%.17g" v
  end

let int_list l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

let obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ v) fields)
  ^ "}"

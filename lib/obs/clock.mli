(** The single blessed monotonic clock of the observability layer.

    All wall-clock reads outside [bench/] live here (lint rule D3,
    DESIGN.md §9/§10).  Readings are clamped to be non-decreasing even
    if the system clock steps backwards, and are reported relative to
    the first read of the process, so raw epoch times never leak into
    recorded data. *)

val elapsed_us : unit -> float
(** Monotonic elapsed time in microseconds since the process's first
    clock read.  Timing-only: never compare or persist these values in
    deterministic outputs. *)

(* lint: allow t3 — convenience over the sanctioned clock, kept for bench scripts *)
val elapsed_s : unit -> float
(** [elapsed_us () /. 1e6]. *)

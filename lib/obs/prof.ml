(* Span-attributed allocation/GC profiler (DESIGN.md §17).

   Structure-of-arrays on both axes, matching the arena idiom of
   DESIGN.md §16: the frame stack and the row table are parallel
   columns (unboxed float arrays for word counters), so opening and
   closing a fine frame allocates nothing beyond the boxed float that
   [Gc.minor_words] itself returns (~3 words), and a row is a dense
   int id interned once per distinct path.

   Snapshot placement: the GC read is the LAST thing enter does and
   the FIRST thing exit does, so the profiler's own bookkeeping words
   land in the parent frame's self time, never in the measured span.

   This module is the one sanctioned reader of GC state outside
   bench/ (lint rule D7); engines must route attribution through
   Obs.prof_enter/prof_exit. *)

type row = {
  path : string;
  depth : int;
  count : int;
  self_minor : float;
  cum_minor : float;
  self_promoted : float;
  cum_promoted : float;
  self_major : float;
  cum_major : float;
  self_minor_collections : int;
  cum_minor_collections : int;
  self_major_collections : int;
  cum_major_collections : int;
}

type totals = {
  t_minor : float;
  t_promoted : float;
  t_major : float;
  t_minor_collections : int;
  t_major_collections : int;
}

type t = {
  (* row table: one entry per distinct span path, in first-enter order *)
  mutable rows : int;
  mutable r_name : string array;
  mutable r_parent : int array; (* row id, -1 for roots *)
  mutable r_path : string array;
  mutable r_depth : int array;
  mutable r_count : int array;
  mutable r_self_minor : float array;
  mutable r_cum_minor : float array;
  mutable r_self_promoted : float array;
  mutable r_cum_promoted : float array;
  mutable r_self_major : float array;
  mutable r_cum_major : float array;
  mutable r_self_mcol : int array;
  mutable r_cum_mcol : int array;
  mutable r_self_jcol : int array;
  mutable r_cum_jcol : int array;
  mutable r_children : (string, int) Hashtbl.t array;
  roots : (string, int) Hashtbl.t;
  (* frame stack *)
  mutable depth : int;
  mutable f_row : int array;
  mutable f_detailed : bool array;
  mutable f_minor0 : float array;
  mutable f_promoted0 : float array;
  mutable f_major0 : float array;
  mutable f_mcol0 : int array;
  mutable f_jcol0 : int array;
  (* per-frame accumulators: direct-child minor deltas, and detailed
     deltas of detailed descendants not yet claimed by a detailed
     ancestor (fine frames pass these through at exit) *)
  mutable f_child_minor : float array;
  mutable f_child_promoted : float array;
  mutable f_child_major : float array;
  mutable f_child_mcol : int array;
  mutable f_child_jcol : int array;
  (* deltas accumulated across completed top-level frames *)
  mutable total_minor : float;
  mutable total_promoted : float;
  mutable total_major : float;
  mutable total_mcol : int;
  mutable total_jcol : int;
}

(* Placeholder for unset [r_children] slots; overwritten by [new_row]
   before any lookup can reach the slot.  Allocated fresh per slot — a
   shared top-level table would be cross-domain-reachable mutable state
   (lint T1) once a sweep worker captures a profiling sink. *)
let dummy_children () : (string, int) Hashtbl.t = Hashtbl.create 1

let create () =
  {
    rows = 0;
    r_name = Array.make 16 "";
    r_parent = Array.make 16 (-1);
    r_path = Array.make 16 "";
    r_depth = Array.make 16 0;
    r_count = Array.make 16 0;
    r_self_minor = Array.make 16 0.0;
    r_cum_minor = Array.make 16 0.0;
    r_self_promoted = Array.make 16 0.0;
    r_cum_promoted = Array.make 16 0.0;
    r_self_major = Array.make 16 0.0;
    r_cum_major = Array.make 16 0.0;
    r_self_mcol = Array.make 16 0;
    r_cum_mcol = Array.make 16 0;
    r_self_jcol = Array.make 16 0;
    r_cum_jcol = Array.make 16 0;
    r_children = Array.init 16 (fun _ -> dummy_children ());
    roots = Hashtbl.create 8;
    depth = 0;
    f_row = Array.make 64 0;
    f_detailed = Array.make 64 false;
    f_minor0 = Array.make 64 0.0;
    f_promoted0 = Array.make 64 0.0;
    f_major0 = Array.make 64 0.0;
    f_mcol0 = Array.make 64 0;
    f_jcol0 = Array.make 64 0;
    f_child_minor = Array.make 64 0.0;
    f_child_promoted = Array.make 64 0.0;
    f_child_major = Array.make 64 0.0;
    f_child_mcol = Array.make 64 0;
    f_child_jcol = Array.make 64 0;
    total_minor = 0.0;
    total_promoted = 0.0;
    total_major = 0.0;
    total_mcol = 0;
    total_jcol = 0;
  }

let grow_i a n =
  let b = Array.make n 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_f a n =
  let b = Array.make n 0.0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_b a n =
  let b = Array.make n false in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_s a n =
  let b = Array.make n "" in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_h a n =
  let b = Array.init n (fun _ -> dummy_children ()) in
  Array.blit a 0 b 0 (Array.length a);
  b

let ensure_rows t =
  let cap = Array.length t.r_count in
  if t.rows = cap then begin
    let n = cap * 2 in
    t.r_name <- grow_s t.r_name n;
    t.r_parent <- grow_i t.r_parent n;
    t.r_path <- grow_s t.r_path n;
    t.r_depth <- grow_i t.r_depth n;
    t.r_count <- grow_i t.r_count n;
    t.r_self_minor <- grow_f t.r_self_minor n;
    t.r_cum_minor <- grow_f t.r_cum_minor n;
    t.r_self_promoted <- grow_f t.r_self_promoted n;
    t.r_cum_promoted <- grow_f t.r_cum_promoted n;
    t.r_self_major <- grow_f t.r_self_major n;
    t.r_cum_major <- grow_f t.r_cum_major n;
    t.r_self_mcol <- grow_i t.r_self_mcol n;
    t.r_cum_mcol <- grow_i t.r_cum_mcol n;
    t.r_self_jcol <- grow_i t.r_self_jcol n;
    t.r_cum_jcol <- grow_i t.r_cum_jcol n;
    t.r_children <- grow_h t.r_children n
  end

let ensure_stack t =
  let cap = Array.length t.f_row in
  if t.depth = cap then begin
    let n = cap * 2 in
    t.f_row <- grow_i t.f_row n;
    t.f_detailed <- grow_b t.f_detailed n;
    t.f_minor0 <- grow_f t.f_minor0 n;
    t.f_promoted0 <- grow_f t.f_promoted0 n;
    t.f_major0 <- grow_f t.f_major0 n;
    t.f_mcol0 <- grow_i t.f_mcol0 n;
    t.f_jcol0 <- grow_i t.f_jcol0 n;
    t.f_child_minor <- grow_f t.f_child_minor n;
    t.f_child_promoted <- grow_f t.f_child_promoted n;
    t.f_child_major <- grow_f t.f_child_major n;
    t.f_child_mcol <- grow_i t.f_child_mcol n;
    t.f_child_jcol <- grow_i t.f_child_jcol n
  end

let new_row t name parent =
  ensure_rows t;
  let id = t.rows in
  t.rows <- id + 1;
  t.r_name.(id) <- name;
  t.r_parent.(id) <- parent;
  if parent < 0 then begin
    t.r_path.(id) <- name;
    t.r_depth.(id) <- 1
  end
  else begin
    t.r_path.(id) <- t.r_path.(parent) ^ "/" ^ name;
    t.r_depth.(id) <- t.r_depth.(parent) + 1
  end;
  t.r_children.(id) <- Hashtbl.create 8;
  id

(* [try ... with Not_found] rather than [find_opt]: the hit path (the
   overwhelmingly common one) must not allocate a [Some]. *)
let row_for t name =
  let parent = if t.depth = 0 then -1 else t.f_row.(t.depth - 1) in
  let tbl = if parent < 0 then t.roots else t.r_children.(parent) in
  try Hashtbl.find tbl name
  with Not_found ->
    let id = new_row t name parent in
    Hashtbl.add tbl name id;
    id

let open_frame t name ~detailed =
  let id = row_for t name in
  ensure_stack t;
  let k = t.depth in
  t.f_row.(k) <- id;
  t.f_detailed.(k) <- detailed;
  t.f_child_minor.(k) <- 0.0;
  t.f_child_promoted.(k) <- 0.0;
  t.f_child_major.(k) <- 0.0;
  t.f_child_mcol.(k) <- 0;
  t.f_child_jcol.(k) <- 0;
  t.depth <- k + 1;
  k

let enter t name =
  let k = open_frame t name ~detailed:false in
  (* lint: allow d7 — the profiler is the sanctioned GC reader *)
  t.f_minor0.(k) <- Gc.minor_words ()

let enter_detailed t name =
  let k = open_frame t name ~detailed:true in
  (* lint: allow d7 — the profiler is the sanctioned GC reader *)
  let s = Gc.quick_stat () in
  t.f_promoted0.(k) <- s.Gc.promoted_words;
  t.f_major0.(k) <- s.Gc.major_words;
  t.f_mcol0.(k) <- s.Gc.minor_collections;
  t.f_jcol0.(k) <- s.Gc.major_collections;
  (* Minor words come from [Gc.minor_words], NOT [s.Gc.minor_words]: on
     OCaml 5 the quick_stat/counters figure only advances at minor
     collections (the live young-area fill is not added in), which
     quantizes span deltas to whole minor heaps — a phase allocating
     under one heap's worth reads as zero, and self words can go
     negative against precise child frames.  [Gc.minor_words] reads the
     live allocation pointer and is allocation-exact, which is what the
     determinism contract needs; read it last so the quick_stat words
     land in this frame's self, not the span body's measurement. *)
  (* lint: allow d7 — the profiler is the sanctioned GC reader *)
  t.f_minor0.(k) <- Gc.minor_words ()

let exit t =
  if t.depth > 0 then
    if t.f_detailed.(t.depth - 1) then begin
      (* precise minor words first (see enter_detailed), quick_stat for
         the collection-grained metrics after *)
      (* lint: allow d7 — the profiler is the sanctioned GC reader *)
      let minor1 = Gc.minor_words () in
      (* lint: allow d7 — the profiler is the sanctioned GC reader *)
      let s = Gc.quick_stat () in
      let k = t.depth - 1 in
      t.depth <- k;
      let id = t.f_row.(k) in
      let d_minor = minor1 -. t.f_minor0.(k) in
      let d_prom = s.Gc.promoted_words -. t.f_promoted0.(k) in
      let d_major = s.Gc.major_words -. t.f_major0.(k) in
      let d_mcol = s.Gc.minor_collections - t.f_mcol0.(k) in
      let d_jcol = s.Gc.major_collections - t.f_jcol0.(k) in
      t.r_count.(id) <- t.r_count.(id) + 1;
      t.r_cum_minor.(id) <- t.r_cum_minor.(id) +. d_minor;
      t.r_self_minor.(id) <-
        t.r_self_minor.(id) +. (d_minor -. t.f_child_minor.(k));
      t.r_cum_promoted.(id) <- t.r_cum_promoted.(id) +. d_prom;
      t.r_self_promoted.(id) <-
        t.r_self_promoted.(id) +. (d_prom -. t.f_child_promoted.(k));
      t.r_cum_major.(id) <- t.r_cum_major.(id) +. d_major;
      t.r_self_major.(id) <-
        t.r_self_major.(id) +. (d_major -. t.f_child_major.(k));
      t.r_cum_mcol.(id) <- t.r_cum_mcol.(id) + d_mcol;
      t.r_self_mcol.(id) <- t.r_self_mcol.(id) + (d_mcol - t.f_child_mcol.(k));
      t.r_cum_jcol.(id) <- t.r_cum_jcol.(id) + d_jcol;
      t.r_self_jcol.(id) <- t.r_self_jcol.(id) + (d_jcol - t.f_child_jcol.(k));
      if k > 0 then begin
        let j = k - 1 in
        t.f_child_minor.(j) <- t.f_child_minor.(j) +. d_minor;
        t.f_child_promoted.(j) <- t.f_child_promoted.(j) +. d_prom;
        t.f_child_major.(j) <- t.f_child_major.(j) +. d_major;
        t.f_child_mcol.(j) <- t.f_child_mcol.(j) + d_mcol;
        t.f_child_jcol.(j) <- t.f_child_jcol.(j) + d_jcol
      end
      else begin
        t.total_minor <- t.total_minor +. d_minor;
        t.total_promoted <- t.total_promoted +. d_prom;
        t.total_major <- t.total_major +. d_major;
        t.total_mcol <- t.total_mcol + d_mcol;
        t.total_jcol <- t.total_jcol + d_jcol
      end
    end
    else begin
      (* lint: allow d7 — the profiler is the sanctioned GC reader *)
      let minor1 = Gc.minor_words () in
      let k = t.depth - 1 in
      t.depth <- k;
      let id = t.f_row.(k) in
      let d_minor = minor1 -. t.f_minor0.(k) in
      t.r_count.(id) <- t.r_count.(id) + 1;
      t.r_cum_minor.(id) <- t.r_cum_minor.(id) +. d_minor;
      t.r_self_minor.(id) <-
        t.r_self_minor.(id) +. (d_minor -. t.f_child_minor.(k));
      if k > 0 then begin
        (* detailed accumulators pass through to the nearest enclosing
           detailed ancestor untouched: a fine frame measures minor
           words only *)
        let j = k - 1 in
        t.f_child_minor.(j) <- t.f_child_minor.(j) +. d_minor;
        t.f_child_promoted.(j) <- t.f_child_promoted.(j) +. t.f_child_promoted.(k);
        t.f_child_major.(j) <- t.f_child_major.(j) +. t.f_child_major.(k);
        t.f_child_mcol.(j) <- t.f_child_mcol.(j) + t.f_child_mcol.(k);
        t.f_child_jcol.(j) <- t.f_child_jcol.(j) + t.f_child_jcol.(k)
      end
      else begin
        t.total_minor <- t.total_minor +. d_minor;
        t.total_promoted <- t.total_promoted +. t.f_child_promoted.(k);
        t.total_major <- t.total_major +. t.f_child_major.(k);
        t.total_mcol <- t.total_mcol + t.f_child_mcol.(k);
        t.total_jcol <- t.total_jcol + t.f_child_jcol.(k)
      end
    end

let depth t = t.depth

let unwind t ~depth =
  while t.depth > depth do
    exit t
  done

let rows t =
  List.init t.rows (fun id ->
      {
        path = t.r_path.(id);
        depth = t.r_depth.(id);
        count = t.r_count.(id);
        self_minor = t.r_self_minor.(id);
        cum_minor = t.r_cum_minor.(id);
        self_promoted = t.r_self_promoted.(id);
        cum_promoted = t.r_cum_promoted.(id);
        self_major = t.r_self_major.(id);
        cum_major = t.r_cum_major.(id);
        self_minor_collections = t.r_self_mcol.(id);
        cum_minor_collections = t.r_cum_mcol.(id);
        self_major_collections = t.r_self_jcol.(id);
        cum_major_collections = t.r_cum_jcol.(id);
      })

let totals t =
  {
    t_minor = t.total_minor;
    t_promoted = t.total_promoted;
    t_major = t.total_major;
    t_minor_collections = t.total_mcol;
    t_major_collections = t.total_jcol;
  }

let merge ~into src =
  let map = Array.make (max 1 src.rows) (-1) in
  for id = 0 to src.rows - 1 do
    (* a parent row is always created before its children, so
       [map.(parent)] is already resolved when we reach [id] *)
    let parent = src.r_parent.(id) in
    let dparent = if parent < 0 then -1 else map.(parent) in
    let tbl = if dparent < 0 then into.roots else into.r_children.(dparent) in
    let name = src.r_name.(id) in
    let did =
      try Hashtbl.find tbl name
      with Not_found ->
        let d = new_row into name dparent in
        Hashtbl.add tbl name d;
        d
    in
    map.(id) <- did;
    into.r_count.(did) <- into.r_count.(did) + src.r_count.(id);
    into.r_self_minor.(did) <- into.r_self_minor.(did) +. src.r_self_minor.(id);
    into.r_cum_minor.(did) <- into.r_cum_minor.(did) +. src.r_cum_minor.(id);
    into.r_self_promoted.(did) <-
      into.r_self_promoted.(did) +. src.r_self_promoted.(id);
    into.r_cum_promoted.(did) <-
      into.r_cum_promoted.(did) +. src.r_cum_promoted.(id);
    into.r_self_major.(did) <- into.r_self_major.(did) +. src.r_self_major.(id);
    into.r_cum_major.(did) <- into.r_cum_major.(did) +. src.r_cum_major.(id);
    into.r_self_mcol.(did) <- into.r_self_mcol.(did) + src.r_self_mcol.(id);
    into.r_cum_mcol.(did) <- into.r_cum_mcol.(did) + src.r_cum_mcol.(id);
    into.r_self_jcol.(did) <- into.r_self_jcol.(did) + src.r_self_jcol.(id);
    into.r_cum_jcol.(did) <- into.r_cum_jcol.(did) + src.r_cum_jcol.(id)
  done;
  into.total_minor <- into.total_minor +. src.total_minor;
  into.total_promoted <- into.total_promoted +. src.total_promoted;
  into.total_major <- into.total_major +. src.total_major;
  into.total_mcol <- into.total_mcol + src.total_mcol;
  into.total_jcol <- into.total_jcol + src.total_jcol

let allocated_minor_words f =
  (* lint: allow d7 — the profiler is the sanctioned GC reader *)
  let a = Gc.minor_words () in
  f ();
  (* lint: allow d7 — the profiler is the sanctioned GC reader *)
  Gc.minor_words () -. a

(** Span-attributed allocation/GC profiler (DESIGN.md §17).

    A [t] is a mutable call-tree keyed on span names, mirroring
    [Span]'s aggregation but weighted by GC counters instead of wall
    time.  Frames snapshot GC state at enter/exit and roll the deltas
    into per-path self and cumulative totals.  Two frame flavors keep
    hot paths cheap:

    - {b fine} frames ([enter]/[exit]) read only [Gc.minor_words] —
      a few words of profiler overhead per frame — and are what the
      ledger commit path opens around every mutation;
    - {b detailed} frames ([enter_detailed], opened by [Obs.span])
      additionally read [Gc.quick_stat] for promoted/major words and
      collection counts.

    Detailed deltas recorded by a detailed frame attribute to the
    nearest enclosing detailed span: fine frames pass their detailed
    child accumulators through to their parent untouched.

    Determinism contract: minor-word deltas are a deterministic
    function of a deterministic execution and are golden-testable.
    Promoted/major words and collection counts depend on the minor
    heap's phase at run start and are {e not} reproducible run-to-run;
    exporters that promise byte-identity key on minor words only. *)

type t

type row = {
  path : string;  (** '/'-joined span names from the root *)
  depth : int;  (** 1 for root frames *)
  count : int;  (** completed frames at this path *)
  self_minor : float;
  cum_minor : float;  (** minor words: self excludes direct children *)
  self_promoted : float;
  cum_promoted : float;
  self_major : float;
  cum_major : float;
  self_minor_collections : int;
  cum_minor_collections : int;
  self_major_collections : int;
  cum_major_collections : int;
}

type totals = {
  t_minor : float;
  t_promoted : float;
  t_major : float;
  t_minor_collections : int;
  t_major_collections : int;
}

val create : unit -> t

val enter : t -> string -> unit
(** Open a fine frame named [name] under the current frame.  Reads
    [Gc.minor_words] only. *)

val enter_detailed : t -> string -> unit
(** Open a detailed frame: additionally snapshots [Gc.quick_stat]. *)

val exit : t -> unit
(** Close the innermost frame, folding its deltas into its row and its
    parent's child accumulators.  A no-op on an empty stack, so an
    unbalanced [exit] cannot raise out of instrumented code. *)

val depth : t -> int
(** Current open-frame count (0 when idle). *)

val unwind : t -> depth:int -> unit
(** [unwind t ~depth:d] exits frames until [depth t <= d].  Exception
    cleanup for scoped spans: a frame leaked by a raise inside the span
    body is closed (with whatever was allocated up to the raise) rather
    than skewing every later attribution. *)

val rows : t -> row list
(** All rows in first-enter order — deterministic for a deterministic
    execution. *)

val totals : t -> totals
(** Deltas accumulated across completed top-level frames. *)

val merge : into:t -> t -> unit
(** Fold every row of the source profile into [into], matching rows by
    tree position and creating missing ones in the source's row order.
    Totals add.  The source's open frames (if any) are ignored. *)

val allocated_minor_words : (unit -> unit) -> float
(** Minor words allocated while running the thunk, measured with the
    same [Gc.minor_words] read the profiler uses.  The reported delta
    includes the constant cost of the snapshot reads themselves (the
    returned float of [Gc.minor_words] is boxed), so callers comparing
    against "zero" must calibrate against an empty thunk. *)

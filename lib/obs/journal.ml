(* Deterministic decision journal — the third pillar of the
   observability sink beside metrics and spans (DESIGN.md §12).

   Where metrics answer "how much" and spans answer "where did the time
   go", the journal answers "which processors did the heuristic buy and
   WHY": every allocation decision is recorded as a typed event in
   program order, then serialized to canonical JSONL (fixed field
   order, canonical floats via Jsonc, no wall-clock, no hash-order
   iteration).  Two runs of the same deterministic computation produce
   byte-identical journals — `journal verify` pins that, and
   `journal diff` turns any divergence into the first differing
   decision.

   Hot event categories (DES scheduling, LP branching) are bounded by a
   per-journal [depth] so a journal of a long simulation stays
   proportional to the interesting prefix; the cutoff is marked with a
   [Truncated] event and is itself deterministic. *)

type manifest = {
  m_seed : int;
  m_config_hash : string;
  m_heuristic : string;
  m_args : (string * string) list;  (* CLI args, in flag order *)
}

type reject = Demand_exceeded | Link_exceeded | No_config

type probe_kind = Host | Catalog_scan

type event =
  | Phase of { heuristic : string; stage : string }
  | Probe of {
      kind : probe_kind;
      ops : int list;
      ok : bool;
      reject : reject option;
    }
  | Acquire of { gid : int; config : string; members : int list }
  | Add_op of { gid : int; op : int; upgrade : string option }
  | Reject_add of { gid : int; op : int; reject : reject }
  | Merge_groups of { winner : int; loser : int; upgrade : string option }
  | Reject_merge of { winner : int; loser : int; reject : reject }
  | Sell of { gid : int }
  | Reconfig of { gid : int; config : string }
  | Download of {
      group : int;
      object_type : int;
      server : int;
      rule : string;
      candidates : int list;
    }
  | Download_failed of { object_type : int; group : int option; reason : string }
  | Downgrade of { proc : int; from_config : string; to_config : string }
  | Downgrade_stuck of { proc : int; config : string }
  | Outcome of {
      heuristic : string;
      status : string;
      cost : float option;
      n_procs : int option;
      procs : (int * int) list;  (* final processor index -> builder gid *)
    }
  | Lp_branch of { var : int; value : float; floor : float }
  | Lp_incumbent of { objective : float }
  | Lp_bound of { bound : float }
  | Exact_incumbent of { n_procs : int; nodes : int }
  | Sim_dispatch of { t : float; proc : int; op : int; result : int }
  | Sim_flow_start of {
      t : float;
      kind : string;
      src : string;
      dst : int;
      size : float;
    }
  | Sim_flow_done of { t : float; kind : string; src : string; dst : int }
  | Serve_arrival of { app : int; tenant : int; ops : int; t : int }
  | Serve_admit of { app : int; tenant : int; cost : float; n_procs : int }
  | Serve_reject of { app : int; tenant : int; reason : string }
  | Serve_depart of { app : int; tenant : int; refund : float }
  | Serve_evict of { app : int; tenant : int; refund : float }
  | Serve_unknown_depart of { app : int; t : int }
  | Fault_crash of { t : float; victim : int }
  | Fault_capacity of {
      t : float;
      scope : string;
      factor : float;
      duration : float;
    }
  | Fault_rho of { t : float; factor : float; rho : float }
  | Repair_migrate of { op : int; from_proc : int; to_group : int }
  | Repair_rebuy of { group : int; config : string; ops : int list }
  | Repair_done of {
      t : float;
      cost : float;
      migrations : int;
      rebuys : int;
      downtime : float;
    }
  | Repair_infeasible of { t : float; reason : string }
  | Truncated of { category : string }
  | Note of { key : string; value : string }

type t = {
  mutable on : bool;
  mutable depth : int;
  mutable events : event list;  (* record order, reversed *)
  mutable n_events : int;
  mutable manifest : manifest option;
  mutable bounded : (string * int) list;  (* per-category event counts *)
}

let default_depth = 200

let create ?(depth = default_depth) () =
  { on = false; depth; events = []; n_events = 0; manifest = None;
    bounded = [] }

let recording t = t.on

let depth t = t.depth

let enable ?depth t =
  (match depth with Some d -> t.depth <- max 0 d | None -> ());
  t.on <- true

let set_manifest t m = t.manifest <- Some m

let manifest t = t.manifest

let record t ev =
  if t.on then begin
    t.events <- ev :: t.events;
    t.n_events <- t.n_events + 1
  end

let record_bounded t ~category ev =
  if t.on then begin
    let seen =
      match List.assoc_opt category t.bounded with Some n -> n | None -> 0
    in
    if seen < t.depth then begin
      t.bounded <- (category, seen + 1) :: List.remove_assoc category t.bounded;
      record t ev
    end
    else if seen = t.depth then begin
      t.bounded <- (category, seen + 1) :: List.remove_assoc category t.bounded;
      record t (Truncated { category })
    end
  end

let events t = List.rev t.events

let length t = t.n_events

(* Appends [src]'s events after [into]'s, preserving both orders.  The
   caller (Obs.absorb via Par_sweep) invokes this in canonical cell
   order, which is exactly what makes a --jobs N merged journal
   byte-identical to the sequential one. *)
let merge ~into src =
  into.events <- List.rev_append (List.rev src.events) into.events;
  into.n_events <- into.n_events + src.n_events;
  List.iter
    (fun (cat, n) ->
      let prev =
        match List.assoc_opt cat into.bounded with Some p -> p | None -> 0
      in
      into.bounded <- (cat, prev + n) :: List.remove_assoc cat into.bounded)
    src.bounded;
  match into.manifest with
  | Some _ -> ()
  | None -> into.manifest <- src.manifest

(* ------------------------------------------------------------------ *)
(* Canonical JSONL serialization                                       *)

let reject_label = function
  | Demand_exceeded -> "demand"
  | Link_exceeded -> "link"
  | No_config -> "no_config"

let probe_kind_label = function Host -> "host" | Catalog_scan -> "catalog"

let opt_field name render = function
  | None -> []
  | Some v -> [ (name, render v) ]

let manifest_to_json m =
  Jsonc.obj
    [
      ("ev", Jsonc.string "manifest");
      ("seed", Jsonc.int m.m_seed);
      ("config", Jsonc.string m.m_config_hash);
      ("heuristic", Jsonc.string m.m_heuristic);
      ( "args",
        Jsonc.obj (List.map (fun (k, v) -> (k, Jsonc.string v)) m.m_args) );
    ]

let event_to_json ev =
  let tag name fields = Jsonc.obj (("ev", Jsonc.string name) :: fields) in
  match ev with
  | Phase { heuristic; stage } ->
    tag "phase"
      [ ("heuristic", Jsonc.string heuristic); ("stage", Jsonc.string stage) ]
  | Probe { kind; ops; ok; reject } ->
    tag "probe"
      ([
         ("kind", Jsonc.string (probe_kind_label kind));
         ("ops", Jsonc.int_list ops);
         ("ok", Jsonc.bool ok);
       ]
      @ opt_field "reject" (fun r -> Jsonc.string (reject_label r)) reject)
  | Acquire { gid; config; members } ->
    tag "acquire"
      [
        ("gid", Jsonc.int gid);
        ("config", Jsonc.string config);
        ("members", Jsonc.int_list members);
      ]
  | Add_op { gid; op; upgrade } ->
    tag "add"
      ([ ("gid", Jsonc.int gid); ("op", Jsonc.int op) ]
      @ opt_field "upgrade" Jsonc.string upgrade)
  | Reject_add { gid; op; reject } ->
    tag "reject_add"
      [
        ("gid", Jsonc.int gid);
        ("op", Jsonc.int op);
        ("reject", Jsonc.string (reject_label reject));
      ]
  | Merge_groups { winner; loser; upgrade } ->
    tag "merge"
      ([ ("winner", Jsonc.int winner); ("loser", Jsonc.int loser) ]
      @ opt_field "upgrade" Jsonc.string upgrade)
  | Reject_merge { winner; loser; reject } ->
    tag "reject_merge"
      [
        ("winner", Jsonc.int winner);
        ("loser", Jsonc.int loser);
        ("reject", Jsonc.string (reject_label reject));
      ]
  | Sell { gid } -> tag "sell" [ ("gid", Jsonc.int gid) ]
  | Reconfig { gid; config } ->
    tag "reconfig" [ ("gid", Jsonc.int gid); ("config", Jsonc.string config) ]
  | Download { group; object_type; server; rule; candidates } ->
    tag "download"
      [
        ("group", Jsonc.int group);
        ("object", Jsonc.int object_type);
        ("server", Jsonc.int server);
        ("rule", Jsonc.string rule);
        ("candidates", Jsonc.int_list candidates);
      ]
  | Download_failed { object_type; group; reason } ->
    tag "download_failed"
      (("object", Jsonc.int object_type)
       :: (opt_field "group" Jsonc.int group
          @ [ ("reason", Jsonc.string reason) ]))
  | Downgrade { proc; from_config; to_config } ->
    tag "downgrade"
      [
        ("proc", Jsonc.int proc);
        ("from", Jsonc.string from_config);
        ("to", Jsonc.string to_config);
      ]
  | Downgrade_stuck { proc; config } ->
    tag "downgrade_stuck"
      [ ("proc", Jsonc.int proc); ("config", Jsonc.string config) ]
  | Outcome { heuristic; status; cost; n_procs; procs } ->
    tag "outcome"
      ([
         ("heuristic", Jsonc.string heuristic);
         ("status", Jsonc.string status);
       ]
      @ opt_field "cost" Jsonc.float cost
      @ opt_field "procs" Jsonc.int n_procs
      @ [
          ( "groups",
            "["
            ^ String.concat ","
                (List.map
                   (fun (p, g) -> Printf.sprintf "[%d,%d]" p g)
                   procs)
            ^ "]" );
        ])
  | Lp_branch { var; value; floor } ->
    tag "lp_branch"
      [
        ("var", Jsonc.int var);
        ("value", Jsonc.float value);
        ("floor", Jsonc.float floor);
      ]
  | Lp_incumbent { objective } ->
    tag "lp_incumbent" [ ("objective", Jsonc.float objective) ]
  | Lp_bound { bound } -> tag "lp_bound" [ ("bound", Jsonc.float bound) ]
  | Exact_incumbent { n_procs; nodes } ->
    tag "exact_incumbent"
      [ ("procs", Jsonc.int n_procs); ("nodes", Jsonc.int nodes) ]
  | Sim_dispatch { t; proc; op; result } ->
    tag "sim_dispatch"
      [
        ("t", Jsonc.float t);
        ("proc", Jsonc.int proc);
        ("op", Jsonc.int op);
        ("result", Jsonc.int result);
      ]
  | Sim_flow_start { t; kind; src; dst; size } ->
    tag "sim_flow"
      [
        ("t", Jsonc.float t);
        ("kind", Jsonc.string kind);
        ("src", Jsonc.string src);
        ("dst", Jsonc.int dst);
        ("size", Jsonc.float size);
      ]
  | Sim_flow_done { t; kind; src; dst } ->
    tag "sim_flow_done"
      [
        ("t", Jsonc.float t);
        ("kind", Jsonc.string kind);
        ("src", Jsonc.string src);
        ("dst", Jsonc.int dst);
      ]
  | Serve_arrival { app; tenant; ops; t } ->
    tag "serve_arrival"
      [
        ("app", Jsonc.int app);
        ("tenant", Jsonc.int tenant);
        ("ops", Jsonc.int ops);
        ("t", Jsonc.int t);
      ]
  | Serve_admit { app; tenant; cost; n_procs } ->
    tag "serve_admit"
      [
        ("app", Jsonc.int app);
        ("tenant", Jsonc.int tenant);
        ("cost", Jsonc.float cost);
        ("procs", Jsonc.int n_procs);
      ]
  | Serve_reject { app; tenant; reason } ->
    tag "serve_reject"
      [
        ("app", Jsonc.int app);
        ("tenant", Jsonc.int tenant);
        ("reason", Jsonc.string reason);
      ]
  | Serve_depart { app; tenant; refund } ->
    tag "serve_depart"
      [
        ("app", Jsonc.int app);
        ("tenant", Jsonc.int tenant);
        ("refund", Jsonc.float refund);
      ]
  | Serve_evict { app; tenant; refund } ->
    tag "serve_evict"
      [
        ("app", Jsonc.int app);
        ("tenant", Jsonc.int tenant);
        ("refund", Jsonc.float refund);
      ]
  | Serve_unknown_depart { app; t } ->
    tag "serve_unknown_depart" [ ("app", Jsonc.int app); ("t", Jsonc.int t) ]
  | Fault_crash { t; victim } ->
    tag "fault_crash" [ ("t", Jsonc.float t); ("victim", Jsonc.int victim) ]
  | Fault_capacity { t; scope; factor; duration } ->
    tag "fault_capacity"
      [
        ("t", Jsonc.float t);
        ("scope", Jsonc.string scope);
        ("factor", Jsonc.float factor);
        ("duration", Jsonc.float duration);
      ]
  | Fault_rho { t; factor; rho } ->
    tag "fault_rho"
      [
        ("t", Jsonc.float t);
        ("factor", Jsonc.float factor);
        ("rho", Jsonc.float rho);
      ]
  | Repair_migrate { op; from_proc; to_group } ->
    tag "repair_migrate"
      [
        ("op", Jsonc.int op);
        ("from", Jsonc.int from_proc);
        ("to", Jsonc.int to_group);
      ]
  | Repair_rebuy { group; config; ops } ->
    tag "repair_rebuy"
      [
        ("group", Jsonc.int group);
        ("config", Jsonc.string config);
        ("ops", Jsonc.int_list ops);
      ]
  | Repair_done { t; cost; migrations; rebuys; downtime } ->
    tag "repair_done"
      [
        ("t", Jsonc.float t);
        ("cost", Jsonc.float cost);
        ("migrations", Jsonc.int migrations);
        ("rebuys", Jsonc.int rebuys);
        ("downtime", Jsonc.float downtime);
      ]
  | Repair_infeasible { t; reason } ->
    tag "repair_infeasible"
      [ ("t", Jsonc.float t); ("reason", Jsonc.string reason) ]
  | Truncated { category } ->
    tag "truncated" [ ("category", Jsonc.string category) ]
  | Note { key; value } ->
    tag "note" [ ("key", Jsonc.string key); ("value", Jsonc.string value) ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  (match t.manifest with
  | Some m ->
    Buffer.add_string buf (manifest_to_json m);
    Buffer.add_char buf '\n'
  | None -> ());
  List.iter
    (fun ev ->
      Buffer.add_string buf (event_to_json ev);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Run manifests                                                       *)

(* FNV-1a 64 over a canonical configuration rendering: collision
   resistance is irrelevant here — the hash only has to change when the
   configuration does, and be stable when it does not. *)
let hash_hex s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  Printf.sprintf "fnv1a:%016Lx" !h

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)

type divergence = {
  div_line : int;  (* 1-based line number of the first difference *)
  div_left : string option;  (* [None]: this side ended first *)
  div_right : string option;
  div_context : string list;  (* common lines immediately preceding *)
}

let split_lines s =
  (* A trailing newline does not create a phantom empty last line. *)
  let s =
    if String.length s > 0 && s.[String.length s - 1] = '\n' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  if s = "" then [] else String.split_on_char '\n' s

let diff ?(context = 3) a b =
  let la = split_lines a and lb = split_lines b in
  let rec go n recent la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: la', y :: lb' when String.equal x y ->
      let recent = x :: (if List.length recent >= context
                         then List.filteri (fun i _ -> i < context - 1) recent
                         else recent) in
      go (n + 1) recent la' lb'
    | _ ->
      let head = function [] -> None | x :: _ -> Some x in
      Some
        {
          div_line = n;
          div_left = head la;
          div_right = head lb;
          div_context = List.rev recent;
        }
  in
  go 1 [] la lb

(* ------------------------------------------------------------------ *)
(* Explain                                                             *)

(* Decision chain behind one final processor: resolve the processor
   index to its builder group id through the Outcome mapping, close the
   gid set under merges (scanning backwards, so a loser absorbed into a
   tracked winner is tracked from its own acquisition onwards), then
   keep every event that touches the set — plus the per-processor
   events of the later pipeline stages (server selection, downgrade),
   which are indexed by final processor position. *)
let explain ~proc evs =
  let outcome =
    List.find_opt (function Outcome _ -> true | _ -> false) evs
  in
  match outcome with
  | Some (Outcome { procs; _ }) -> (
    match List.assoc_opt proc procs with
    | None -> []
    | Some gid0 ->
      let gids = Hashtbl.create 8 in
      Hashtbl.replace gids gid0 ();
      List.iter
        (function
          | Merge_groups { winner; loser; _ } when Hashtbl.mem gids winner ->
            Hashtbl.replace gids loser ()
          | _ -> ())
        (List.rev evs);
      let tracked g = Hashtbl.mem gids g in
      List.filter
        (fun ev ->
          match ev with
          | Acquire { gid; _ }
          | Add_op { gid; _ }
          | Reject_add { gid; _ }
          | Sell { gid }
          | Reconfig { gid; _ } ->
            tracked gid
          | Merge_groups { winner; loser; _ }
          | Reject_merge { winner; loser; _ } ->
            tracked winner || tracked loser
          | Download { group; _ } -> group = proc
          | Download_failed { group = Some g; _ } -> g = proc
          | Downgrade { proc = p; _ } | Downgrade_stuck { proc = p; _ } ->
            p = proc
          | Outcome _ -> true
          | _ -> false)
        evs)
  | Some _ | None -> []

(** Deterministic decision journal (DESIGN.md §12).

    The third pillar of the observability sink beside {!Metrics} and
    {!Span}: a typed, ordered log of every allocation decision —
    processor purchases, upgrades, merges, downgrades, feasibility probe
    verdicts with rejection reasons, download-plan choices, LP
    branch-and-bound steps and (depth-bounded) DES scheduling events.

    Determinism contract: every recorded field is a pure function of the
    run's inputs (instance, platform, seed, heuristic).  No wall-clock,
    no hash-order iteration, no ambiguous float formatting ({!Jsonc}
    renders canonically) — so {!to_jsonl} of two runs of the same
    deterministic computation is byte-identical, which is what
    [journal verify] pins and what makes [journal diff] meaningful. *)

type manifest = {
  m_seed : int;
  m_config_hash : string;  (** {!hash_hex} of the canonical config rendering *)
  m_heuristic : string;
  m_args : (string * string) list;  (** CLI args, in flag order *)
}

type reject = Demand_exceeded | Link_exceeded | No_config

type probe_kind = Host | Catalog_scan

type event =
  | Phase of { heuristic : string; stage : string }
  | Probe of {
      kind : probe_kind;
      ops : int list;
      ok : bool;
      reject : reject option;
    }
  | Acquire of { gid : int; config : string; members : int list }
  | Add_op of { gid : int; op : int; upgrade : string option }
  | Reject_add of { gid : int; op : int; reject : reject }
  | Merge_groups of { winner : int; loser : int; upgrade : string option }
  | Reject_merge of { winner : int; loser : int; reject : reject }
  | Sell of { gid : int }
  | Reconfig of { gid : int; config : string }
  | Download of {
      group : int;
      object_type : int;
      server : int;
      rule : string;
      candidates : int list;
    }
  | Download_failed of { object_type : int; group : int option; reason : string }
  | Downgrade of { proc : int; from_config : string; to_config : string }
  | Downgrade_stuck of { proc : int; config : string }
  | Outcome of {
      heuristic : string;
      status : string;
      cost : float option;
      n_procs : int option;
      procs : (int * int) list;
          (** final processor index -> builder group id *)
    }
  | Lp_branch of { var : int; value : float; floor : float }
  | Lp_incumbent of { objective : float }
  | Lp_bound of { bound : float }
  | Exact_incumbent of { n_procs : int; nodes : int }
  | Sim_dispatch of { t : float; proc : int; op : int; result : int }
  | Sim_flow_start of {
      t : float;
      kind : string;
      src : string;
      dst : int;
      size : float;
    }
  | Sim_flow_done of { t : float; kind : string; src : string; dst : int }
  | Serve_arrival of { app : int; tenant : int; ops : int; t : int }
      (** application [app] of [tenant] arrives at logical time [t] *)
  | Serve_admit of { app : int; tenant : int; cost : float; n_procs : int }
  | Serve_reject of { app : int; tenant : int; reason : string }
  | Serve_depart of { app : int; tenant : int; refund : float }
  | Serve_evict of { app : int; tenant : int; refund : float }
      (** live application displaced by a capacity loss (crash) *)
  | Serve_unknown_depart of { app : int; t : int }
      (** malformed stream: departure of a never-seen application *)
  | Fault_crash of { t : float; victim : int }
      (** processor [victim] of the current allocation fails at [t] *)
  | Fault_capacity of {
      t : float;
      scope : string;  (** canonical scope label, e.g. ["plink:2-3"] *)
      factor : float;
      duration : float;
    }  (** link degradation, server outage or card jitter window *)
  | Fault_rho of { t : float; factor : float; rho : float }
      (** diurnal demand: target throughput rescaled to [rho] *)
  | Repair_migrate of { op : int; from_proc : int; to_group : int }
      (** displaced operator re-placed on a surviving group *)
  | Repair_rebuy of { group : int; config : string; ops : int list }
      (** replacement processor purchased for displaced operators *)
  | Repair_done of {
      t : float;
      cost : float;  (** total platform cost after the repair *)
      migrations : int;
      rebuys : int;
      downtime : float;  (** detect + migrate + provision latency, s *)
    }
  | Repair_infeasible of { t : float; reason : string }
      (** the post-fault platform cannot host the application *)
  | Truncated of { category : string }
      (** depth cap hit for a bounded category; subsequent events of the
          category are dropped *)
  | Note of { key : string; value : string }

type t

val default_depth : int
(** Default per-category cap for {!record_bounded} (200). *)

val create : ?depth:int -> unit -> t
(** A fresh journal, disabled (not recording) until {!enable}d. *)

val enable : ?depth:int -> t -> unit

val recording : t -> bool

val depth : t -> int

val record : t -> event -> unit
(** No-op unless {!recording}. *)

val record_bounded : t -> category:string -> event -> unit
(** Like {!record} but capped at {!depth} events per [category]; the
    first dropped event of a category records {!Truncated} instead. *)

val set_manifest : t -> manifest -> unit

(* lint: allow t3 — manifest accessor for external tooling over journal files *)
val manifest : t -> manifest option

val events : t -> event list
(** In record order. *)

val length : t -> int

val merge : into:t -> t -> unit
(** Append [src]'s events after [into]'s, preserving both orders; sums
    bounded-category counts; keeps [into]'s manifest when both have one.
    Called in canonical cell order by {!Obs.absorb}, which is what makes
    a [--jobs N] merged journal byte-identical to the sequential one. *)

val hash_hex : string -> string
(** FNV-1a 64-bit hash, rendered ["fnv1a:%016x"] — for
    {!manifest.m_config_hash}. *)

val manifest_to_json : manifest -> string

val event_to_json : event -> string
(** One canonical JSON object per event, fixed field order, tagged
    ["ev"]. *)

val to_jsonl : t -> string
(** Manifest line (when set) followed by one line per event. *)

type divergence = {
  div_line : int;  (** 1-based line number of the first difference *)
  div_left : string option;  (** [None]: this side ended first *)
  div_right : string option;
  div_context : string list;  (** common lines immediately preceding *)
}

val diff : ?context:int -> string -> string -> divergence option
(** First divergent line between two JSONL renderings, with up to
    [context] (default 3) preceding common lines; [None] if equal. *)

val explain : proc:int -> event list -> event list
(** The decision chain behind final processor [proc]: resolves the
    processor to its builder group through the {!Outcome} mapping,
    closes the group set under merges (a group absorbed into a tracked
    one is tracked from its own acquisition onwards), and keeps every
    event touching the set plus [proc]'s download/downgrade events.
    Empty if the journal has no {!Outcome} or no such processor. *)

(* The single blessed time source of the observability layer
   (DESIGN.md §10).  Every wall-clock read in lib/ lives in this file —
   lint rule D3 sanctions exactly bench/ and lib/obs/clock.ml — so the
   determinism story stays auditable: timestamps flow only into span
   [start]/[dur] fields, which the contract marks timing-only.

   [Unix.gettimeofday] is not monotonic under clock steps (NTP), so
   readings are clamped to be non-decreasing; all consumers get elapsed
   microseconds since the first read of the process.  The clamp state is
   domain-local so parallel sweep workers never race on it. *)

let t0 = Unix.gettimeofday ()

(* The clamp state is a flat mutable float cell rather than a
   [float Domain.DLS.key]: [Domain.DLS.set] boxes its float argument,
   and the old code only called it when the clock had advanced past the
   clamp — allocation conditional on wall-clock VALUES.  The allocation
   profiler (DESIGN.md §17) surfaced that as a few spurious words of
   run-to-run span-self noise in otherwise deterministic solves; the
   unboxed [c.v <- t] store makes every call allocate identically. *)
type cell = { mutable v : float }

let last : cell Domain.DLS.key = Domain.DLS.new_key (fun () -> { v = 0.0 })

let elapsed_us () =
  let t = (Unix.gettimeofday () -. t0) *. 1e6 in
  let c = Domain.DLS.get last in
  if t > c.v then c.v <- t;
  c.v

let elapsed_s () = elapsed_us () /. 1e6

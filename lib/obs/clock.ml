(* The single blessed time source of the observability layer
   (DESIGN.md §10).  Every wall-clock read in lib/ lives in this file —
   lint rule D3 sanctions exactly bench/ and lib/obs/clock.ml — so the
   determinism story stays auditable: timestamps flow only into span
   [start]/[dur] fields, which the contract marks timing-only.

   [Unix.gettimeofday] is not monotonic under clock steps (NTP), so
   readings are clamped to be non-decreasing; all consumers get elapsed
   microseconds since the first read of the process.  The clamp state is
   domain-local so parallel sweep workers never race on it. *)

let t0 = Unix.gettimeofday ()
let last : float Domain.DLS.key = Domain.DLS.new_key (fun () -> 0.0)

let elapsed_us () =
  let t = (Unix.gettimeofday () -. t0) *. 1e6 in
  let l = Domain.DLS.get last in
  if t > l then begin
    Domain.DLS.set last t;
    t
  end
  else l

let elapsed_s () = elapsed_us () /. 1e6

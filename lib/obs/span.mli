(** Hierarchical span recorder (DESIGN.md §10).

    [enter]/[exit] bracket a named region; nested regions form a path
    joined with ["/"].  [mark] records an instantaneous event under the
    current path.  The recorded structure — paths, depths, completion
    order — is deterministic for deterministic instrumented work; only
    the timestamps are timing-only.  Spans are appended on [exit], so
    children precede their parents in [events]. *)

type event =
  | Span of {
      name : string;
      path : string;  (** slash-joined ancestry including [name] *)
      depth : int;  (** 1 = top-level *)
      start_us : float;
      dur_us : float;
    }
  | Mark of { name : string; path : string; depth : int; ts_us : float }

type t

val create : unit -> t

val enter : t -> string -> float -> unit
(** [enter t name start_us] opens a span. *)

val exit : t -> float -> unit
(** Close the innermost open span; a no-op when none is open. *)

val mark : t -> string -> float -> unit
(** Record an instant event as a child of the current span. *)

val events : t -> event list
(** Completed spans and marks in completion order. *)

val open_depth : t -> int
(** Number of currently open spans. *)

val paths : t -> (string * int) list
(** Deterministic projection of [events]: (path, depth) with all
    timestamps stripped. *)

type summary = {
  s_path : string;
  s_depth : int;
  s_count : int;
  s_total_us : float;  (** timing-only *)
  s_is_mark : bool;
}

val aggregate : t -> summary list
(** Events grouped by path, in first-completion order. *)

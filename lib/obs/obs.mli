(** Instrumentation facade over a domain-local-but-swappable sink
    (DESIGN.md §10).

    The engines call the guarded entry points ([incr], [span], …)
    unconditionally.  With no sink installed every call is a no-op
    costing one domain-local read; [install] (or [with_sink]) makes the
    same calls record into a {!Metrics} registry and a {!Span} recorder.
    The sink lives in domain-local storage: each {!Domain} records
    independently, and parallel workers hand their recorders back to
    the spawning domain, which folds them in with {!absorb}.

    Determinism contract: recorded {e values} (counters, gauges,
    histogram counts, span paths and order) are deterministic for a
    deterministic computation; span {e durations} and mark timestamps
    are timing-only and must never feed back into results.  Profiled
    minor-word deltas ({!Prof}) are deterministic; promoted/major words
    and collection counts are not (minor-heap phase at run start). *)

type t = {
  metrics : Metrics.t;
  spans : Span.t;
  journal : Journal.t;
  prof : Prof.t option;
}

val create : ?profile:bool -> unit -> t
(** Fresh sink; the journal starts disabled (see {!with_sink}) and the
    allocation profiler is attached only when [~profile:true]. *)

(* lint: allow t3 — recorder lifecycle API for embedders *)
val install : t -> unit
(** Make [t] the current domain's sink. *)

(* lint: allow t3 — recorder lifecycle API for embedders *)
val uninstall : unit -> unit

(* lint: allow t3 — recorder lifecycle API for embedders *)
val active : unit -> t option

val enabled : unit -> bool

val with_sink :
  ?journal:bool -> ?journal_depth:int -> ?profile:bool -> (unit -> 'a) -> 'a * t
(** Run [f] with a fresh sink installed, restoring the previously
    installed sink afterwards (also on exceptions) — nests safely;
    returns [f]'s result and the filled sink.  [?journal] enables
    decision journaling in the fresh sink; when omitted, journaling (and
    its depth) is inherited from the enclosing sink of {e this} domain,
    so nested scopes under a journaling run keep recording.  [?profile]
    likewise defaults to the enclosing sink's profiling state — and an
    inherited profile {e shares} the enclosing sink's {!Prof.t}, so
    frames opened by nested scopes (serve admissions, fault repairs)
    keep accumulating into the one profile of the run. *)

val absorb : t -> unit
(** [absorb r] merges [r]'s metrics into the currently installed sink
    (see {!Metrics.merge}), and — when the installed sink is journaling —
    appends [r]'s journal events (see {!Journal.merge}).  A no-op when
    none is installed.  [r]'s spans are dropped — they are timing-only
    by the determinism contract, and a worker's span tree has no stable
    place in the absorbing domain's.  When both sinks carry a profiler
    and they are distinct objects (a worker's, not a nested scope
    sharing the run's), [r]'s profile rows are folded in with
    {!Prof.merge}. *)

(** {1 Guarded entry points} — no-ops when no sink is installed. *)

val incr : ?by:int -> string -> unit
val add : string -> int -> unit
(** [add name n] = [incr ~by:n name]. *)

val gauge : string -> float -> unit
val observe : ?edges:float array -> string -> float -> unit

val mark : string -> unit
(** Record an instant event under the current span path. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span; exception-safe.  When the
    sink is profiling, the span also opens a {e detailed} {!Prof}
    frame (all five GC metrics), and on exit unwinds any fine frame a
    raise inside [f] may have leaked. *)

(** {1 Profiling entry points}

    The commit-path engines bracket mutations with explicit
    [prof_enter]/[prof_exit] pairs rather than a closure-taking
    wrapper: a closure would allocate even with profiling off, and
    these sites run millions of times per 100k-operator solve.  With
    no sink — or a sink without a profiler — each call is one
    domain-local read and a match, allocating nothing. *)

val profiling : unit -> bool
(** The installed sink, if any, carries an allocation profiler. *)

val prof_enter : string -> unit
(** Open a fine profiler frame (minor words only; see
    {!Prof.enter}). *)

val prof_exit : unit -> unit
(** Close the innermost profiler frame. *)

(** {1 Journal entry points}

    Call sites guard event construction with
    [if Obs.journaling () then Obs.event (...)] so that with no sink —
    or a sink that is not journaling — the cost is one domain-local
    read, with no event allocation. *)

val journaling : unit -> bool
(** The installed sink, if any, is recording decision events. *)

val journal_depth : unit -> int
(** Per-category depth cap of the installed sink's journal
    ({!Journal.default_depth} when none is installed). *)

val event : Journal.event -> unit

val event_bounded : category:string -> Journal.event -> unit
(** {!Journal.record_bounded}: capped per [category] by the journal's
    depth. *)

(** Instrumentation facade over a global-but-swappable sink
    (DESIGN.md §10).

    The engines call the guarded entry points ([incr], [span], …)
    unconditionally.  With no sink installed every call is a no-op
    costing one ref read; [install] (or [with_sink]) makes the same
    calls record into a {!Metrics} registry and a {!Span} recorder.

    Determinism contract: recorded {e values} (counters, gauges,
    histogram counts, span paths and order) are deterministic for a
    deterministic computation; span {e durations} and mark timestamps
    are timing-only and must never feed back into results. *)

type t = { metrics : Metrics.t; spans : Span.t }

val create : unit -> t

val install : t -> unit
(** Make [t] the process-global sink. *)

val uninstall : unit -> unit

val active : unit -> t option

val enabled : unit -> bool

val with_sink : (unit -> 'a) -> 'a * t
(** Run [f] with a fresh sink installed, uninstalling afterwards (also
    on exceptions); returns [f]'s result and the filled sink. *)

(** {1 Guarded entry points} — no-ops when no sink is installed. *)

val incr : ?by:int -> string -> unit
val add : string -> int -> unit
(** [add name n] = [incr ~by:n name]. *)

val gauge : string -> float -> unit
val observe : ?edges:float array -> string -> float -> unit

val mark : string -> unit
(** Record an instant event under the current span path. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span; exception-safe. *)

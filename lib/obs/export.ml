(* Exporters over a filled sink: human-readable text report, metrics
   CSV, and Chrome trace_event JSON (load in chrome://tracing or
   https://ui.perfetto.dev).  The text and CSV forms order everything by
   registry insertion / span completion, so deterministic work exports
   deterministic values; durations and timestamps are timing-only
   (DESIGN.md §10). *)

let fmt_float v = Printf.sprintf "%.6g" v

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let metrics_csv_header = "kind,name,value"

(* One row per counter and gauge; histograms expand to one row per
   bucket (name.le.EDGE / name.overflow) plus name.count and name.sum. *)
let metrics_csv (o : Obs.t) =
  let buf = Buffer.create 1024 in
  let row kind name value =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s\n" kind (csv_escape name) value)
  in
  Buffer.add_string buf (metrics_csv_header ^ "\n");
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter_v c -> row "counter" name (string_of_int c)
      | Metrics.Gauge_v g -> row "gauge" name (fmt_float g)
      | Metrics.Histogram_v h ->
        Array.iteri
          (fun i count ->
            let bucket =
              if i < Array.length h.Metrics.edges then
                Printf.sprintf "%s.le.%s" name (fmt_float h.Metrics.edges.(i))
              else name ^ ".overflow"
            in
            row "histogram" bucket (string_of_int count))
          h.Metrics.counts;
        row "histogram" (name ^ ".count") (string_of_int h.Metrics.observations);
        row "histogram" (name ^ ".sum") (fmt_float h.Metrics.sum))
    (Metrics.snapshot o.Obs.metrics);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Text report                                                         *)

let text_report (o : Obs.t) =
  let buf = Buffer.create 1024 in
  let spans = Span.aggregate o.Obs.spans in
  if spans <> [] then begin
    Buffer.add_string buf "-- spans (count, total ms) --\n";
    List.iter
      (fun s ->
        let indent = String.make (2 * (s.Span.s_depth - 1)) ' ' in
        let leaf =
          match List.rev (String.split_on_char '/' s.Span.s_path) with
          | leaf :: _ -> leaf
          | [] -> s.Span.s_path
        in
        if s.Span.s_is_mark then
          Buffer.add_string buf
            (Printf.sprintf "%s@%-24s x%d\n" indent leaf s.Span.s_count)
        else
          Buffer.add_string buf
            (Printf.sprintf "%s%-25s x%-6d %10.2f ms\n" indent leaf
               s.Span.s_count (s.Span.s_total_us /. 1e3)))
      spans
  end;
  let metrics = Metrics.snapshot o.Obs.metrics in
  let section title keep render =
    let rows = List.filter_map keep metrics in
    if rows <> [] then begin
      Buffer.add_string buf (Printf.sprintf "-- %s --\n" title);
      List.iter (fun r -> Buffer.add_string buf (render r)) rows
    end
  in
  section "counters"
    (fun (n, v) ->
      match v with Metrics.Counter_v c -> Some (n, c) | _ -> None)
    (fun (n, c) -> Printf.sprintf "%-32s %12d\n" n c);
  section "gauges"
    (fun (n, v) -> match v with Metrics.Gauge_v g -> Some (n, g) | _ -> None)
    (fun (n, g) -> Printf.sprintf "%-32s %12s\n" n (fmt_float g));
  section "histograms"
    (fun (n, v) ->
      match v with Metrics.Histogram_v h -> Some (n, h) | _ -> None)
    (fun (n, h) ->
      let cells =
        Array.to_list
          (Array.mapi
             (fun i count ->
               if i < Array.length h.Metrics.edges then
                 Printf.sprintf "<=%s:%d" (fmt_float h.Metrics.edges.(i)) count
               else Printf.sprintf ">:%d" count)
             h.Metrics.counts)
      in
      Printf.sprintf "%-32s n=%d [%s]\n" n h.Metrics.observations
        (String.concat " " cells));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                             *)

(* String escaping is shared with the journal exporter (Jsonc) so both
   emitters have the same — correct — canonical form. *)
let json_ts v = Printf.sprintf "%.3f" v

(* The JSON Array Format of the trace_event spec: one "X" (complete)
   event per span, one "i" (instant) event per mark, and a final "C"
   (counter) event per counter so headline totals show up as tracks. *)
let chrome_trace (o : Obs.t) =
  let buf = Buffer.create 4096 in
  let first = ref true in
  let event fields =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf ("  {" ^ String.concat "," fields ^ "}")
  in
  let str k v = Printf.sprintf "\"%s\":%s" k (Jsonc.string v) in
  let num k v = Printf.sprintf "\"%s\":%s" k v in
  Buffer.add_string buf "[\n";
  event
    [
      str "name" "process_name"; str "ph" "M"; num "pid" "0"; num "tid" "0";
      num "ts" "0"; "\"args\":{\"name\":\"insp\"}";
    ];
  let end_ts = ref 0.0 in
  List.iter
    (fun ev ->
      match ev with
      | Span.Span { name; path; start_us; dur_us; _ } ->
        if start_us +. dur_us > !end_ts then end_ts := start_us +. dur_us;
        event
          [
            str "name" name; str "cat" "span"; str "ph" "X";
            num "ts" (json_ts start_us); num "dur" (json_ts dur_us);
            num "pid" "0"; num "tid" "0";
            Printf.sprintf "\"args\":{\"path\":%s}" (Jsonc.string path);
          ]
      | Span.Mark { name; path; ts_us; _ } ->
        if ts_us > !end_ts then end_ts := ts_us;
        event
          [
            str "name" name; str "cat" "mark"; str "ph" "i";
            num "ts" (json_ts ts_us); num "pid" "0"; num "tid" "0";
            str "s" "t";
            Printf.sprintf "\"args\":{\"path\":%s}" (Jsonc.string path);
          ])
    (Span.events o.Obs.spans);
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter_v c ->
        event
          [
            str "name" name; str "cat" "counter"; str "ph" "C";
            num "ts" (json_ts !end_ts); num "pid" "0";
            Printf.sprintf "\"args\":{\"value\":%d}" c;
          ]
      | Metrics.Gauge_v _ | Metrics.Histogram_v _ -> ())
    (Metrics.snapshot o.Obs.metrics);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let save path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Exporters over a filled sink: human-readable text report, metrics
   CSV, and Chrome trace_event JSON (load in chrome://tracing or
   https://ui.perfetto.dev).  The text and CSV forms order everything by
   registry insertion / span completion, so deterministic work exports
   deterministic values; durations and timestamps are timing-only
   (DESIGN.md §10). *)

let fmt_float v = Printf.sprintf "%.6g" v

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

(* Deterministic percentile estimate over fixed histogram buckets:
   find the bucket holding the p-th observation (target rank p% of n)
   and interpolate linearly between its edges (the lower edge of the
   first bucket is 0).  Ranks landing in the overflow bucket pin to
   the last finite edge — the Prometheus convention — so the estimate
   never invents a value beyond the instrumented range. *)
let percentile (h : Metrics.histogram) p =
  let counts = h.Metrics.counts in
  let edges = h.Metrics.edges in
  let n_edges = Array.length edges in
  let target = p /. 100.0 *. float_of_int h.Metrics.observations in
  let rec go i cum =
    if i >= Array.length counts then edges.(n_edges - 1)
    else
      let cum' = cum + counts.(i) in
      if counts.(i) > 0 && float_of_int cum' >= target then
        if i >= n_edges then edges.(n_edges - 1)
        else
          let lo = if i = 0 then 0.0 else edges.(i - 1) in
          let hi = edges.(i) in
          lo
          +. (target -. float_of_int cum)
             /. float_of_int counts.(i)
             *. (hi -. lo)
      else go (i + 1) cum'
  in
  go 0 0

let metrics_csv_header = "kind,name,value"

(* One row per counter and gauge; histograms expand to one row per
   bucket (name.le.EDGE / name.overflow) plus name.count and name.sum. *)
let metrics_csv (o : Obs.t) =
  let buf = Buffer.create 1024 in
  let row kind name value =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s\n" kind (csv_escape name) value)
  in
  Buffer.add_string buf (metrics_csv_header ^ "\n");
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter_v c -> row "counter" name (string_of_int c)
      | Metrics.Gauge_v g -> row "gauge" name (fmt_float g)
      | Metrics.Histogram_v h ->
        Array.iteri
          (fun i count ->
            let bucket =
              if i < Array.length h.Metrics.edges then
                Printf.sprintf "%s.le.%s" name (fmt_float h.Metrics.edges.(i))
              else name ^ ".overflow"
            in
            row "histogram" bucket (string_of_int count))
          h.Metrics.counts;
        row "histogram" (name ^ ".count") (string_of_int h.Metrics.observations);
        row "histogram" (name ^ ".sum") (fmt_float h.Metrics.sum);
        row "histogram" (name ^ ".p50") (fmt_float (percentile h 50.0));
        row "histogram" (name ^ ".p90") (fmt_float (percentile h 90.0));
        row "histogram" (name ^ ".p99") (fmt_float (percentile h 99.0)))
    (Metrics.snapshot o.Obs.metrics);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Text report                                                         *)

let text_report (o : Obs.t) =
  let buf = Buffer.create 1024 in
  let spans = Span.aggregate o.Obs.spans in
  if spans <> [] then begin
    Buffer.add_string buf "-- spans (count, total ms) --\n";
    List.iter
      (fun s ->
        let indent = String.make (2 * (s.Span.s_depth - 1)) ' ' in
        let leaf =
          match List.rev (String.split_on_char '/' s.Span.s_path) with
          | leaf :: _ -> leaf
          | [] -> s.Span.s_path
        in
        if s.Span.s_is_mark then
          Buffer.add_string buf
            (Printf.sprintf "%s@%-24s x%d\n" indent leaf s.Span.s_count)
        else
          Buffer.add_string buf
            (Printf.sprintf "%s%-25s x%-6d %10.2f ms\n" indent leaf
               s.Span.s_count (s.Span.s_total_us /. 1e3)))
      spans
  end;
  let metrics = Metrics.snapshot o.Obs.metrics in
  let section title keep render =
    let rows = List.filter_map keep metrics in
    if rows <> [] then begin
      Buffer.add_string buf (Printf.sprintf "-- %s --\n" title);
      List.iter (fun r -> Buffer.add_string buf (render r)) rows
    end
  in
  section "counters"
    (fun (n, v) ->
      match v with Metrics.Counter_v c -> Some (n, c) | _ -> None)
    (fun (n, c) -> Printf.sprintf "%-32s %12d\n" n c);
  section "gauges"
    (fun (n, v) -> match v with Metrics.Gauge_v g -> Some (n, g) | _ -> None)
    (fun (n, g) -> Printf.sprintf "%-32s %12s\n" n (fmt_float g));
  section "histograms"
    (fun (n, v) ->
      match v with Metrics.Histogram_v h -> Some (n, h) | _ -> None)
    (fun (n, h) ->
      let cells =
        Array.to_list
          (Array.mapi
             (fun i count ->
               if i < Array.length h.Metrics.edges then
                 Printf.sprintf "<=%s:%d" (fmt_float h.Metrics.edges.(i)) count
               else Printf.sprintf ">:%d" count)
             h.Metrics.counts)
      in
      Printf.sprintf "%-32s n=%d [%s] p50=%s p90=%s p99=%s\n" n
        h.Metrics.observations
        (String.concat " " cells)
        (fmt_float (percentile h 50.0))
        (fmt_float (percentile h 90.0))
        (fmt_float (percentile h 99.0)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Allocation profile                                                  *)

(* Byte-identity contract: [prof_report] and the folded exporters key
   on minor words only — promoted/major words and collection counts
   depend on the minor heap's phase at run start and vary run-to-run
   (DESIGN.md §17).  The full five-metric dump lives in [prof_csv],
   which makes no byte-identity promise. *)

let fold_sep path = String.map (fun c -> if c = '/' then ';' else c) path

let prof_report ?(top = 20) (o : Obs.t) =
  match o.Obs.prof with
  | None -> ""
  | Some p ->
    let rows = Prof.rows p in
    let t = Prof.totals p in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "-- allocation profile (top %d by self minor words) --\n"
         top);
    Buffer.add_string buf
      (Printf.sprintf "run total: %.0f minor words across %d span paths\n"
         t.Prof.t_minor (List.length rows));
    let sorted =
      List.stable_sort
        (fun a b ->
          match Float.compare b.Prof.self_minor a.Prof.self_minor with
          | 0 -> String.compare a.Prof.path b.Prof.path
          | c -> c)
        rows
    in
    let total = if t.Prof.t_minor > 0.0 then t.Prof.t_minor else 1.0 in
    List.iteri
      (fun i r ->
        if i < top && r.Prof.self_minor > 0.0 then
          Buffer.add_string buf
            (Printf.sprintf "%-40s x%-9d %14.0f %6.2f%%   cum %.0f\n"
               r.Prof.path r.Prof.count r.Prof.self_minor
               (100.0 *. r.Prof.self_minor /. total)
               r.Prof.cum_minor))
      sorted;
    Buffer.contents buf

let prof_csv_header =
  "path,depth,count,self_minor,cum_minor,self_promoted,cum_promoted,self_major,cum_major,self_minor_col,cum_minor_col,self_major_col,cum_major_col"

let prof_csv (o : Obs.t) =
  match o.Obs.prof with
  | None -> ""
  | Some p ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (prof_csv_header ^ "\n");
    List.iter
      (fun (r : Prof.row) ->
        Buffer.add_string buf
          (Printf.sprintf "%s,%d,%d,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%d,%d,%d,%d\n"
             (csv_escape r.Prof.path) r.Prof.depth r.Prof.count
             r.Prof.self_minor r.Prof.cum_minor r.Prof.self_promoted
             r.Prof.cum_promoted r.Prof.self_major r.Prof.cum_major
             r.Prof.self_minor_collections r.Prof.cum_minor_collections
             r.Prof.self_major_collections r.Prof.cum_major_collections))
      (Prof.rows p);
    Buffer.contents buf

(* Folded-stack flamegraph lines ([a;b;c weight]) — feed to inferno,
   speedscope or flamegraph.pl.  Alloc flavor weights by self minor
   words; time flavor weights by self microseconds recomputed from the
   span recorder's completion-order (= postorder) event stream. *)
let prof_folded_alloc (o : Obs.t) =
  match o.Obs.prof with
  | None -> ""
  | Some p ->
    let buf = Buffer.create 1024 in
    List.iter
      (fun (r : Prof.row) ->
        if r.Prof.self_minor > 0.0 then
          Buffer.add_string buf
            (Printf.sprintf "%s %.0f\n" (fold_sep r.Prof.path) r.Prof.self_minor))
      (Prof.rows p);
    Buffer.contents buf

let prof_folded_time (o : Obs.t) =
  (* postorder walk with a depth-indexed child accumulator: when a
     span at depth d completes, child.(d+1) holds exactly the summed
     durations of its direct children (each deeper node consumed its
     own children's cell on exit), so self = dur - child.(d+1) *)
  let child = ref (Array.make 16 0.0) in
  let ensure d =
    if d >= Array.length !child then begin
      let b = Array.make (2 * (d + 1)) 0.0 in
      Array.blit !child 0 b 0 (Array.length !child);
      child := b
    end
  in
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Span.Mark _ -> ()
      | Span.Span { path; depth; dur_us; _ } ->
        ensure (depth + 1);
        let self = dur_us -. !child.(depth + 1) in
        !child.(depth + 1) <- 0.0;
        !child.(depth) <- !child.(depth) +. dur_us;
        let cur =
          try Hashtbl.find tbl path
          with Not_found ->
            order := path :: !order;
            0.0
        in
        Hashtbl.replace tbl path (cur +. self))
    (Span.events o.Obs.spans);
  let buf = Buffer.create 1024 in
  List.iter
    (fun path ->
      let v = Hashtbl.find tbl path in
      if v > 0.0 then
        Buffer.add_string buf (Printf.sprintf "%s %.0f\n" (fold_sep path) v))
    (List.rev !order);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                             *)

(* String escaping is shared with the journal exporter (Jsonc) so both
   emitters have the same — correct — canonical form. *)
let json_ts v = Printf.sprintf "%.3f" v

(* The JSON Array Format of the trace_event spec: one "X" (complete)
   event per span, one "i" (instant) event per mark, and a final "C"
   (counter) event per counter so headline totals show up as tracks. *)
let chrome_trace (o : Obs.t) =
  let buf = Buffer.create 4096 in
  let first = ref true in
  let event fields =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf ("  {" ^ String.concat "," fields ^ "}")
  in
  let str k v = Printf.sprintf "\"%s\":%s" k (Jsonc.string v) in
  let num k v = Printf.sprintf "\"%s\":%s" k v in
  Buffer.add_string buf "[\n";
  event
    [
      str "name" "process_name"; str "ph" "M"; num "pid" "0"; num "tid" "0";
      num "ts" "0"; "\"args\":{\"name\":\"insp\"}";
    ];
  let end_ts = ref 0.0 in
  List.iter
    (fun ev ->
      match ev with
      | Span.Span { name; path; start_us; dur_us; _ } ->
        if start_us +. dur_us > !end_ts then end_ts := start_us +. dur_us;
        event
          [
            str "name" name; str "cat" "span"; str "ph" "X";
            num "ts" (json_ts start_us); num "dur" (json_ts dur_us);
            num "pid" "0"; num "tid" "0";
            Printf.sprintf "\"args\":{\"path\":%s}" (Jsonc.string path);
          ]
      | Span.Mark { name; path; ts_us; _ } ->
        if ts_us > !end_ts then end_ts := ts_us;
        event
          [
            str "name" name; str "cat" "mark"; str "ph" "i";
            num "ts" (json_ts ts_us); num "pid" "0"; num "tid" "0";
            str "s" "t";
            Printf.sprintf "\"args\":{\"path\":%s}" (Jsonc.string path);
          ])
    (Span.events o.Obs.spans);
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter_v c ->
        event
          [
            str "name" name; str "cat" "counter"; str "ph" "C";
            num "ts" (json_ts !end_ts); num "pid" "0";
            Printf.sprintf "\"args\":{\"value\":%d}" c;
          ]
      | Metrics.Gauge_v _ | Metrics.Histogram_v _ -> ())
    (Metrics.snapshot o.Obs.metrics);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let save path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(** Exporters over a filled {!Obs.t} sink (DESIGN.md §10).

    Text and CSV order everything by registry insertion / span
    completion, so deterministic instrumented work yields deterministic
    recorded values; durations and timestamps are timing-only. *)

(* lint: allow t3 — CSV schema kept documented next to the exporter *)
val metrics_csv_header : string
(** ["kind,name,value"]. *)

val metrics_csv : Obs.t -> string
(** One row per counter and gauge; histograms expand to one row per
    bucket ([name.le.EDGE], [name.overflow]) plus [name.count],
    [name.sum] and interpolated [name.p50]/[name.p90]/[name.p99]
    summary rows (see {!percentile}). *)

val percentile : Metrics.histogram -> float -> float
(** [percentile h p] estimates the [p]-th percentile (0–100) of a
    histogram by deterministic linear interpolation over its bucket
    edges (lower edge of the first bucket is 0); a rank landing in the
    overflow bucket pins to the last finite edge. *)

val text_report : Obs.t -> string
(** Aggregated span tree (count + total ms per path) followed by
    counters, gauges and histograms (each with p50/p90/p99).  Empty
    sections are omitted. *)

val prof_report : ?top:int -> Obs.t -> string
(** Allocation profile table: the [top] (default 20) span paths by
    self minor words, with counts, %% of the run's total and
    cumulative words.  Keyed on minor words only, so the output is
    byte-identical across same-seed runs (DESIGN.md §17).  [""] when
    the sink carries no profiler. *)

(* lint: allow t3 — CSV schema kept documented next to the exporter *)
val prof_csv_header : string

val prof_csv : Obs.t -> string
(** Every profile row (first-enter order) with all five GC metrics,
    self and cumulative.  Promoted/major words and collection counts
    are {e not} run-to-run reproducible; this export makes no
    byte-identity promise. *)

val prof_folded_alloc : Obs.t -> string
(** Folded-stack flamegraph lines ([a;b;c weight], one per span path
    with positive self minor words, weight = self minor words) —
    inferno / speedscope / flamegraph.pl compatible.  Byte-identical
    across same-seed runs. *)

val prof_folded_time : Obs.t -> string
(** Folded-stack lines weighted by self wall-time in microseconds,
    recomputed from the span recorder; timing-only, so {e not}
    byte-reproducible.  Works on any sink with spans, profiled or
    not. *)

val chrome_trace : Obs.t -> string
(** Chrome [trace_event] JSON Array Format: one ["X"] complete event
    per span, one ["i"] instant event per mark, one final ["C"] counter
    event per counter.  Load in [chrome://tracing] or Perfetto. *)

val save : string -> string -> unit
(** [save path contents] writes [contents] to [path]. *)

(** Exporters over a filled {!Obs.t} sink (DESIGN.md §10).

    Text and CSV order everything by registry insertion / span
    completion, so deterministic instrumented work yields deterministic
    recorded values; durations and timestamps are timing-only. *)

(* lint: allow t3 — CSV schema kept documented next to the exporter *)
val metrics_csv_header : string
(** ["kind,name,value"]. *)

val metrics_csv : Obs.t -> string
(** One row per counter and gauge; histograms expand to one row per
    bucket ([name.le.EDGE], [name.overflow]) plus [name.count] and
    [name.sum]. *)

val text_report : Obs.t -> string
(** Aggregated span tree (count + total ms per path) followed by
    counters, gauges and histograms.  Empty sections are omitted. *)

val chrome_trace : Obs.t -> string
(** Chrome [trace_event] JSON Array Format: one ["X"] complete event
    per span, one ["i"] instant event per mark, one final ["C"] counter
    event per counter.  Load in [chrome://tracing] or Perfetto. *)

val save : string -> string -> unit
(** [save path contents] writes [contents] to [path]. *)

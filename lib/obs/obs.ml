(* Instrumentation facade: a global-but-swappable sink (DESIGN.md §10).

   Call sites in the engines use the guarded entry points below
   unconditionally; with no sink installed each call is one ref read and
   a match — cheap enough for hot loops (feasibility probes, simplex
   pivots, simulator events).  Installing a sink turns the same calls
   into registry updates.  The sink is deliberately process-global: the
   engines thread no handle, so instrumentation never changes an API. *)

type t = { metrics : Metrics.t; spans : Span.t }

let create () = { metrics = Metrics.create (); spans = Span.create () }

let sink : t option ref = ref None

let install s = sink := Some s
let uninstall () = sink := None
let active () = !sink
let enabled () = Option.is_some !sink

let with_sink f =
  let s = create () in
  install s;
  let result = Fun.protect ~finally:uninstall f in
  (result, s)

(* --- guarded instrumentation entry points --- *)

let incr ?by name =
  match !sink with None -> () | Some s -> Metrics.incr ?by s.metrics name

let add name by = incr ~by name

let gauge name v =
  match !sink with None -> () | Some s -> Metrics.set_gauge s.metrics name v

let observe ?edges name v =
  match !sink with
  | None -> ()
  | Some s -> Metrics.observe ?edges s.metrics name v

let mark name =
  match !sink with
  | None -> ()
  | Some s -> Span.mark s.spans name (Clock.elapsed_us ())

let span name f =
  match !sink with
  | None -> f ()
  | Some s ->
    Span.enter s.spans name (Clock.elapsed_us ());
    (* Close over the entered recorder, not the global ref: [f] may
       swap the sink, and enter/exit must stay balanced regardless. *)
    Fun.protect ~finally:(fun () -> Span.exit s.spans (Clock.elapsed_us ())) f

(* Instrumentation facade: a domain-local-but-swappable sink
   (DESIGN.md §10).

   Call sites in the engines use the guarded entry points below
   unconditionally; with no sink installed each call is one domain-local
   read and a match — cheap enough for hot loops (feasibility probes,
   simplex pivots, simulator events).  Installing a sink turns the same
   calls into registry updates.  The sink is deliberately ambient: the
   engines thread no handle, so instrumentation never changes an API.
   It lives in domain-local storage rather than a plain ref so that
   parallel sweep workers (Par_sweep) each record into their own sink
   with no sharing; recorders are merged on the spawning domain via
   [absorb]. *)

type t = {
  metrics : Metrics.t;
  spans : Span.t;
  journal : Journal.t;
  prof : Prof.t option;
}

let create ?(profile = false) () =
  {
    metrics = Metrics.create ();
    spans = Span.create ();
    journal = Journal.create ();
    prof = (if profile then Some (Prof.create ()) else None);
  }

let sink_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install s = Domain.DLS.set sink_key (Some s)
let uninstall () = Domain.DLS.set sink_key None
let active () = Domain.DLS.get sink_key
let enabled () = Option.is_some (active ())

(* [?journal] defaults to inheriting the enclosing sink's journaling
   state, so a nested [with_sink] (Par_sweep cells under a journaling
   CLI run) keeps recording decisions.  Worker domains have no enclosing
   sink in their DLS — Par_sweep captures the flag on the calling domain
   and passes it explicitly. *)
let with_sink ?journal ?journal_depth ?profile f =
  let prev = active () in
  (* [?profile] omitted: inherit the enclosing sink's profiler — the
     same [Prof.t], not a fresh one, so frames opened inside nested
     scopes (serve admissions, fault repairs, the solver under a
     profiled CLI run) accumulate into the run's single profile. *)
  let prof =
    match profile with
    | Some true -> Some (Prof.create ())
    | Some false -> None
    | None -> ( match prev with Some p -> p.prof | None -> None)
  in
  let s =
    {
      metrics = Metrics.create ();
      spans = Span.create ();
      journal = Journal.create ();
      prof;
    }
  in
  let inherit_on =
    match prev with Some p -> Journal.recording p.journal | None -> false
  in
  let on = match journal with Some j -> j | None -> inherit_on in
  if on then begin
    let depth =
      match journal_depth with
      | Some d -> Some d
      | None -> (
        match prev with
        | Some p when Journal.recording p.journal ->
          Some (Journal.depth p.journal)
        | _ -> None)
    in
    Journal.enable ?depth s.journal
  end;
  install s;
  let result =
    Fun.protect ~finally:(fun () -> Domain.DLS.set sink_key prev) f
  in
  (result, s)

let absorb r =
  match active () with
  | None -> ()
  | Some s ->
    Metrics.merge ~into:s.metrics r.metrics;
    if Journal.recording s.journal then Journal.merge ~into:s.journal r.journal;
    (match (s.prof, r.prof) with
    | Some into, Some src when not (into == src) ->
      (* a worker's own profile; a nested scope that inherited the
         run's profiler shares the object and has nothing to fold *)
      Prof.merge ~into src
    | _ -> ())

(* --- guarded instrumentation entry points --- *)

let incr ?by name =
  match active () with
  | None -> ()
  | Some s -> Metrics.incr ?by s.metrics name

let add name by = incr ~by name

let gauge name v =
  match active () with
  | None -> ()
  | Some s -> Metrics.set_gauge s.metrics name v

let observe ?edges name v =
  match active () with
  | None -> ()
  | Some s -> Metrics.observe ?edges s.metrics name v

let mark name =
  match active () with
  | None -> ()
  | Some s -> Span.mark s.spans name (Clock.elapsed_us ())

let span name f =
  match active () with
  | None -> f ()
  | Some s ->
    Span.enter s.spans name (Clock.elapsed_us ());
    (* Profiled spans open a detailed Prof frame.  The pre-enter depth
       is what finally unwinds to: that closes our frame AND any fine
       frame a raise inside [f] leaked, so one exception cannot skew
       every later attribution. *)
    let pdepth =
      match s.prof with
      | None -> 0
      | Some p ->
        let d = Prof.depth p in
        Prof.enter_detailed p name;
        d
    in
    (* Close over the entered recorder, not the global ref: [f] may
       swap the sink, and enter/exit must stay balanced regardless. *)
    Fun.protect
      ~finally:(fun () ->
        (match s.prof with
        | None -> ()
        | Some p -> Prof.unwind p ~depth:pdepth);
        Span.exit s.spans (Clock.elapsed_us ()))
      f

(* --- profiling entry points --- *)

(* Explicit enter/exit pairs, not a closure-taking wrapper: the ledger
   commit path calls these millions of times per 100k solve, and a
   closure would allocate even with profiling off.  Cost when off: one
   DLS read and a match, zero allocation (pinned by the disabled-sink
   audit in test_obs). *)

let profiling () =
  match active () with
  | None -> false
  | Some s -> Option.is_some s.prof

let prof_enter name =
  match active () with
  | Some { prof = Some p; _ } -> Prof.enter p name
  | _ -> ()

let prof_exit () =
  match active () with
  | Some { prof = Some p; _ } -> Prof.exit p
  | _ -> ()

(* --- journal entry points --- *)

(* Engines guard event construction with [if Obs.journaling () then ...]
   so the no-sink (and sink-without-journal) cost is one DLS read and a
   match — same zero-cost contract as the metric entry points. *)
let journaling () =
  match active () with
  | None -> false
  | Some s -> Journal.recording s.journal

let journal_depth () =
  match active () with
  | None -> Journal.default_depth
  | Some s -> Journal.depth s.journal

let event ev =
  match active () with
  | None -> ()
  | Some s -> Journal.record s.journal ev

let event_bounded ~category ev =
  match active () with
  | None -> ()
  | Some s -> Journal.record_bounded s.journal ~category ev

(** Deterministic metric registry (DESIGN.md §10).

    Counters, gauges and fixed-bucket histograms keyed by name.  A
    metric is created on first use with the kind of that first call;
    mixing kinds under one name raises [Invalid_argument].  Snapshots
    list metrics in insertion order, so identical instrumented work
    yields byte-identical snapshots — no clock, no PRNG, no hash-order
    dependence. *)

type histogram = private {
  edges : float array;  (** ascending bucket upper bounds *)
  counts : int array;
      (** one count per edge ([v <= edge], first match) plus a final
          overflow bucket *)
  mutable observations : int;
  mutable sum : float;
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram

type t

val create : unit -> t

(* lint: allow t3 — documented default histogram edges *)
val default_edges : float array
(** Buckets used when [observe] is not given explicit edges:
    1, 2, 5, 10, 20, 50, 100, 500 (plus overflow). *)

val incr : ?by:int -> t -> string -> unit
(** Bump a monotonic counter (created at 0). *)

val set_gauge : t -> string -> float -> unit
(** Record the latest value of a gauge. *)

val observe : ?edges:float array -> t -> string -> float -> unit
(** Add one observation to a histogram.  [edges] is consulted only on
    the histogram's first observation and must be strictly ascending
    and non-empty. *)

val counter : t -> string -> int option
(* lint: allow t3 — metrics API completeness (counter/gauge pair) *)
val gauge : t -> string -> float option

val merge : into:t -> t -> unit
(** [merge ~into src] folds every metric of [src] into [into], in
    [src]'s insertion order: counters add (registering at 0 if absent,
    so name order is preserved), gauges overwrite (last writer wins, as
    in sequential execution), histograms add bucket-wise.  Raises
    [Invalid_argument] on a kind mismatch or on histograms with
    different edges.  [src] is not modified. *)

val snapshot : t -> (string * value) list
(** All metrics, in insertion order. *)

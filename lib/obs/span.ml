(* Hierarchical span recorder.  The recorded *structure* — paths,
   nesting depth, completion order, marks — is deterministic for a
   deterministic computation; only the [start_us]/[dur_us]/[ts_us]
   timestamps (fed by Clock) are timing-only (DESIGN.md §10).

   Spans are recorded on exit, so children precede their parent in the
   event list; Chrome's trace viewer reconstructs nesting from the
   timestamps, and [aggregate] groups by full path. *)

type event =
  | Span of {
      name : string;
      path : string;
      depth : int;  (* 1 = top-level *)
      start_us : float;
      dur_us : float;
    }
  | Mark of { name : string; path : string; depth : int; ts_us : float }

type t = {
  mutable stack : (string * float) list;  (* open spans: name, start *)
  mutable events : event list;  (* completion order, reversed *)
}

let create () = { stack = []; events = [] }

let path_of stack = String.concat "/" (List.rev_map fst stack)

let enter t name start_us = t.stack <- (name, start_us) :: t.stack

let exit t end_us =
  match t.stack with
  | [] -> ()  (* unbalanced exit: drop rather than raise mid-unwind *)
  | (name, start_us) :: rest ->
    let path = path_of t.stack in
    let depth = List.length t.stack in
    t.stack <- rest;
    t.events <-
      Span { name; path; depth; start_us; dur_us = end_us -. start_us }
      :: t.events

let mark t name ts_us =
  let path = path_of ((name, ts_us) :: t.stack) in
  let depth = List.length t.stack + 1 in
  t.events <- Mark { name; path; depth; ts_us } :: t.events

let events t = List.rev t.events

let open_depth t = List.length t.stack

(* Deterministic projection: (path, depth) per event in completion
   order, timestamps stripped. *)
let paths t =
  List.rev_map
    (function
      | Span { path; depth; _ } -> (path, depth)
      | Mark { path; depth; _ } -> (path, depth))
    t.events

type summary = {
  s_path : string;
  s_depth : int;
  s_count : int;
  s_total_us : float;
  s_is_mark : bool;
}

(* Group events by path, keeping first-appearance order (in completion
   order).  Counts and paths are deterministic; totals are timing. *)
let aggregate t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun ev ->
      let path, depth, dur, is_mark =
        match ev with
        | Span { path; depth; dur_us; _ } -> (path, depth, dur_us, false)
        | Mark { path; depth; _ } -> (path, depth, 0.0, true)
      in
      match Hashtbl.find_opt tbl path with
      | Some s ->
        Hashtbl.replace tbl path
          { s with s_count = s.s_count + 1; s_total_us = s.s_total_us +. dur }
      | None ->
        order := path :: !order;
        Hashtbl.replace tbl path
          {
            s_path = path;
            s_depth = depth;
            s_count = 1;
            s_total_us = dur;
            s_is_mark = is_mark;
          })
    (events t);
  List.rev_map
    (fun path ->
      match Hashtbl.find_opt tbl path with
      | Some s -> s
      | None -> assert false (* order only lists inserted paths *))
    !order

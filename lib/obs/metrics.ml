(* Deterministic metric registry: counters, gauges and fixed-bucket
   histograms keyed by name, reported in *insertion order* so that two
   runs performing the same instrumented work produce byte-identical
   snapshots.  No clock, no PRNG: every recorded value is a pure
   function of the instrumented computation (DESIGN.md §10). *)

type histogram = {
  edges : float array;  (* ascending bucket upper bounds *)
  counts : int array;  (* length = edges + 1; last bucket is overflow *)
  mutable observations : int;
  mutable sum : float;
}

type metric =
  | Counter of { mutable count : int }
  | Gauge of { mutable value : float }
  | Histogram of histogram

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable names : string list;  (* insertion order, reversed *)
}

let create () = { tbl = Hashtbl.create 32; names = [] }

(* Values observed before the first bucket edge would silently vanish
   without the implicit overflow bucket; edges cover the small-count
   regimes the engines record (probe batches, pivots, group sizes). *)
let default_edges = [| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 500.0 |]

let register t name metric =
  Hashtbl.replace t.tbl name metric;
  t.names <- name :: t.names

let kind_error name = invalid_arg ("Metrics: kind mismatch for " ^ name)

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c.count <- c.count + by
  | Some (Gauge _ | Histogram _) -> kind_error name
  | None -> register t name (Counter { count = by })

let set_gauge t name v =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g.value <- v
  | Some (Counter _ | Histogram _) -> kind_error name
  | None -> register t name (Gauge { value = v })

let bucket_of edges v =
  let n = Array.length edges in
  let rec find i = if i >= n || v <= edges.(i) then i else find (i + 1) in
  find 0

let observe ?edges t name v =
  let h =
    match Hashtbl.find_opt t.tbl name with
    | Some (Histogram h) -> h
    | Some (Counter _ | Gauge _) -> kind_error name
    | None ->
      let edges =
        match edges with Some e -> Array.copy e | None -> default_edges
      in
      if Array.length edges = 0 then
        invalid_arg "Metrics.observe: empty bucket edges";
      for i = 1 to Array.length edges - 1 do
        if edges.(i) <= edges.(i - 1) then
          invalid_arg "Metrics.observe: bucket edges must be ascending"
      done;
      let h =
        {
          edges;
          counts = Array.make (Array.length edges + 1) 0;
          observations = 0;
          sum = 0.0;
        }
      in
      register t name (Histogram h);
      h
  in
  let b = bucket_of h.edges v in
  h.counts.(b) <- h.counts.(b) + 1;
  h.observations <- h.observations + 1;
  h.sum <- h.sum +. v

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> Some c.count
  | Some (Gauge _ | Histogram _) | None -> None

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> Some g.value
  | Some (Counter _ | Histogram _) | None -> None

(* Merge is what makes domain-parallel sweeps equivalent to sequential
   ones: each cell records into its own registry and the runner absorbs
   them in canonical cell order, so the merged registry's insertion
   order — and therefore the snapshot — is independent of how the work
   was scheduled.  Counters merge even at 0 so name registration (and
   with it insertion order) is preserved. *)
let merge ~into src =
  List.iter
    (fun name ->
      match Hashtbl.find_opt src.tbl name with
      | None -> assert false (* names only ever grows with tbl *)
      | Some (Counter c) -> incr ~by:c.count into name
      | Some (Gauge g) -> set_gauge into name g.value
      | Some (Histogram h) -> (
        match Hashtbl.find_opt into.tbl name with
        | Some (Histogram h') ->
          if h'.edges <> h.edges then
            invalid_arg ("Metrics.merge: histogram edges mismatch for " ^ name);
          Array.iteri (fun i c -> h'.counts.(i) <- h'.counts.(i) + c) h.counts;
          h'.observations <- h'.observations + h.observations;
          h'.sum <- h'.sum +. h.sum
        | Some (Counter _ | Gauge _) -> kind_error name
        | None ->
          register into name
            (Histogram
               {
                 edges = Array.copy h.edges;
                 counts = Array.copy h.counts;
                 observations = h.observations;
                 sum = h.sum;
               })))
    (List.rev src.names)

let snapshot t =
  List.rev_map
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Counter c) -> (name, Counter_v c.count)
      | Some (Gauge g) -> (name, Gauge_v g.value)
      | Some (Histogram h) -> (name, Histogram_v h)
      | None -> assert false (* names only ever grows with tbl *))
    t.names

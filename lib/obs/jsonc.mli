(** Canonical JSON fragment encoders (DESIGN.md §12).

    One escaping and one float rendering shared by every JSON emitter in
    the observability layer, so exporter output is a pure function of
    the exported values — the property the journal's byte-identity
    contract ({!Journal}) and the Chrome trace's well-formedness both
    rest on. *)

(* lint: allow t3 — escaping primitive exposed for custom serializers *)
val escape : string -> string
(** JSON string-body escaping: quote, backslash, control characters. *)

val string : string -> string
(** Quoted, escaped JSON string literal. *)

val int : int -> string

val bool : bool -> string

val float : float -> string
(** Deterministic shortest form: integers render as ["42"], other
    finite values as the shortest of [%.12g]/[%.17g] that round-trips
    bit-exactly; non-finite values render as the tagged strings
    ["nan"], ["inf"], ["-inf"]. *)

val int_list : int list -> string
(** ["[1,2,3]"]. *)

val obj : (string * string) list -> string
(** Object literal from pre-rendered field values, in the given field
    order (no sorting — field order is part of the canonical form). *)

(** Fault-scenario execution: walk a {!Scenario} timeline against a
    deployed allocation, repairing and measuring as faults land.

    - {b Processor crashes} invoke the {!Repair} loop against the
      residual capacity; an irreparable crash (the deliberately
      overloaded case) stops the walk with [infeasible_at] set rather
      than silently degrading.  Burst crashes at one instant are
      repaired sequentially.
    - {b Capacity faults} (link degradation, server outage, card
      jitter) are replayed through the discrete-event runtime as
      {!Insp_sim.Runtime.disruption} windows, measuring the throughput
      dip and the recovery time from the raw root-completion
      timestamps.
    - {b Demand shifts} ([Rho_demand]) rebuild the application at
      [factor] x the original rho; if the deployed mapping no longer
      passes the constraint checker the engine redeploys from scratch
      with the spec's heuristic.

    Every decision is journaled ([Fault_crash], [Fault_capacity],
    [Fault_rho], [Repair_migrate], [Repair_rebuy], [Repair_done],
    [Repair_infeasible]); solver and simulator chatter runs under
    journal-suppressed sinks.  Equal inputs give byte-identical
    journals. *)

type spec = {
  detect_s : float;  (** failure-detection latency charged per repair *)
  migrate_s : float;  (** downtime charged per migrated operator *)
  provision_s : float;  (** downtime charged per rebought processor *)
  max_procs : int option;  (** cap on the repaired processor count *)
  allow_rebuy : bool;  (** false = migration-only repair *)
  measure : bool;  (** false skips the DES replay of capacity faults *)
  slice_s : float;  (** post-restoration DES observation window (s) *)
  heuristic : Insp_heuristics.Solve.heuristic;  (** for rho redeploys *)
}

val make_spec :
  ?detect_s:float ->
  ?migrate_s:float ->
  ?provision_s:float ->
  ?max_procs:int ->
  ?allow_rebuy:bool ->
  ?measure:bool ->
  ?slice_s:float ->
  ?heuristic:Insp_heuristics.Solve.heuristic ->
  unit ->
  spec
(** Defaults: detect 1 s, migrate 0.5 s/op, provision 5 s/proc, no
    processor cap, rebuy allowed, DES measurement on with a 10 s
    observation window, Subtree-bottom-up for redeploys. *)

type episode = {
  ep_t : float;
  ep_label : string;  (** {!Scenario.scope_label} of the reduced fault *)
  ep_downtime : float;
  ep_cost : float;  (** signed re-allocation spend for this episode *)
  ep_migrations : int;
  ep_rebuys : int;
  ep_dip : float option;
      (** worst in-window throughput, as a fraction of rho (measured
          capacity faults only) *)
  ep_recovery : float option;
      (** seconds after restoration until throughput regains 90% of
          rho; [None] when not measured or not regained in the window *)
}

type report = {
  episodes : episode list;  (** timeline order *)
  total_downtime : float;
  total_realloc_cost : float;
  final_cost : float;
  final_procs : int;
  worst_dip : float option;
  infeasible_at : float option;
      (** the instant an irreparable fault stopped the walk, if any *)
  n_crashes : int;
  n_capacity : int;
  n_rho : int;
}

val run :
  spec ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  Insp_mapping.Alloc.t ->
  Scenario.timed list ->
  report
(** Walk the timeline in order.  Raw generator indices are reduced
    modulo the current processor / server count at each event.  The
    walk stops at the first irreparable fault. *)

val pp_report : Format.formatter -> report -> unit

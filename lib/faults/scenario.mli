(** Deterministic, seed-driven fault scenario generator.

    A scenario is a typed timeline of infrastructure faults — processor
    crashes (possibly in correlated bursts, sharing the burst-size draw
    with {!Insp_serve.Stream}), link degradations, data-server outages,
    network-card bandwidth jitter and diurnal demand (rho) shifts — as
    a pure function of its {!spec}: one PRNG, a fixed draw order per
    event, ascending times by construction.  Two calls to {!generate}
    with equal specs return equal timelines. *)

type fault =
  | Proc_crash of { victim : int }
      (** raw draw; the engine reduces it modulo the current processor
          count, which repairs keep changing *)
  | Link_degrade of { a : int; b : int; factor : float; duration : float }
      (** processor pair link at [factor] of nominal (raw endpoint
          draws, engine-reduced; equal endpoints are skipped) *)
  | Server_outage of { server : int; duration : float }
      (** data-server card effectively down *)
  | Card_jitter of { proc : int; factor : float; duration : float }
      (** one processor's card at [factor] of nominal *)
  | Rho_demand of { factor : float }
      (** target throughput rescaled to [factor] x the original rho *)

type timed = { at : float; fault : fault }

type spec = {
  seed : int;
  horizon : float;  (** mean timeline extent (s) *)
  n_events : int;  (** scheduled events; crash bursts may expand them *)
  n_servers : int;  (** bound for server-outage draws *)
  mean_burst : int;  (** crash burst sizes, see {!Insp_serve.Stream.burst_size} *)
  crash_w : int;  (** integer draw weights, fixed order *)
  degrade_w : int;
  outage_w : int;
  jitter_w : int;
  rho_w : int;
}

val make :
  ?horizon:float ->
  ?n_events:int ->
  ?n_servers:int ->
  ?mean_burst:int ->
  ?crash_w:int ->
  ?degrade_w:int ->
  ?outage_w:int ->
  ?jitter_w:int ->
  ?rho_w:int ->
  seed:int ->
  unit ->
  spec
(** Defaults: horizon 200 s, 12 events over 6 servers, no bursts,
    weights crash 4 / degrade 2 / outage 1 / jitter 2 / rho 1.
    Validates ranges. *)

val generate : spec -> timed list
(** The timeline, ascending in [at] (ties keep draw order). *)

val scope_label : fault -> string
(** Canonical label for journals and tables, e.g. ["plink:2-3"],
    ["server:1"], ["card:0"], ["crash:4"], ["rho"]. *)

(* lint: allow t3 — debugging printer *)
val pp_timed : Format.formatter -> timed -> unit

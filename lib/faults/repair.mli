(** Re-allocation of displaced operators after processor failures.

    Given a feasible allocation and a set of failed processor indices,
    the repair loop rebuilds the placement against residual capacity:
    survivors keep their processors (re-acquired into an
    {!Insp_heuristics.Builder} in index order), and each displaced
    operator is re-placed in ascending id order — first by migration
    onto a surviving processor (as-is, then allowing a configuration
    upgrade), and only then, when permitted, by buying a replacement
    processor ("rebuy").  The repaired mapping goes through the same
    server-selection / downgrade / checker pipeline as a fresh solve,
    so an [Ok] outcome always satisfies the paper's constraints
    (1)–(5).

    An overloaded post-crash platform is reported as [Error] with the
    checker's explanation — never silently degraded.

    Builder probing runs under a journal-suppressed sink (metrics still
    merge up); only the repair decisions themselves are journaled:
    {!Insp_obs.Journal.Repair_migrate} and
    {!Insp_obs.Journal.Repair_rebuy}, in placement order. *)

type outcome = {
  alloc : Insp_mapping.Alloc.t;  (** repaired, checker-feasible *)
  cost_before : float;  (** full pre-crash platform cost *)
  cost_after : float;  (** repaired platform cost *)
  realloc_cost : float;
      (** [cost_after - (cost_before - cost of failed processors)]: what
          the repair spent on top of the surviving capacity (upgrades
          and rebuys, minus downgrade refunds) *)
  migrations : int;  (** operators moved onto surviving processors *)
  rebuys : int;  (** replacement processors bought *)
  downgrades : int;  (** processors downgraded after re-placement *)
}

val run :
  ?max_procs:int ->
  ?allow_rebuy:bool ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  Insp_mapping.Alloc.t ->
  failed:int list ->
  (outcome, string) result
(** [run app platform alloc ~failed] repairs [alloc] after losing the
    processors in [failed] (indices into [alloc], deduplicated; raises
    [Invalid_argument] out of range).  [?allow_rebuy] (default [true])
    permits buying replacements; [?max_procs] caps the repaired
    processor count when rebuying.  Deterministic: equal inputs give
    equal outcomes and equal journals. *)

module App = Insp_tree.App
module Platform = Insp_platform.Platform
module Catalog = Insp_platform.Catalog
module Alloc = Insp_mapping.Alloc
module Check = Insp_mapping.Check
module Cost = Insp_mapping.Cost
module Builder = Insp_heuristics.Builder
module Server_select = Insp_heuristics.Server_select
module Downgrade = Insp_heuristics.Downgrade
module Obs = Insp_obs.Obs
module Journal = Insp_obs.Journal

type outcome = {
  alloc : Alloc.t;
  cost_before : float;
  cost_after : float;
  realloc_cost : float;
  migrations : int;
  rebuys : int;
  downgrades : int;
}

type action =
  | A_migrate of { op : int; from_proc : int; to_group : int }
  | A_rebuy of { group : int; config : Catalog.config; op : int }

(* Place one displaced operator: first into a surviving group as-is,
   then allowing a configuration upgrade, finally — when permitted — on
   a freshly bought replacement processor. *)
let place b ~allow_rebuy ~max_procs op =
  let gids = Builder.group_ids b in
  let rec try_plain = function
    | [] -> None
    | g :: rest -> if Builder.try_add b g op then Some (`Mig g) else try_plain rest
  in
  let rec try_upgrade = function
    | [] -> None
    | g :: rest ->
      if Builder.try_add_upgrade b g op then Some (`Mig g) else try_upgrade rest
  in
  match try_plain gids with
  | Some _ as r -> r
  | None -> (
    match try_upgrade gids with
    | Some _ as r -> r
    | None ->
      let under_budget =
        match max_procs with
        | Some m -> List.length gids < m
        | None -> true
      in
      if not (allow_rebuy && under_budget) then None
      else
        match Builder.cheapest_hosting b ~members:[ op ] () with
        | None -> None
        | Some config -> (
          match Builder.acquire b ~config ~members:[ op ] with
          | Ok gid -> Some (`Buy (gid, config))
          | Error _ -> None))

let validate_failed n_procs failed =
  let failed = List.sort_uniq compare failed in
  List.iter
    (fun u ->
      if u < 0 || u >= n_procs then
        invalid_arg "Repair.run: failed processor index out of range")
    failed;
  failed

let run ?max_procs ?(allow_rebuy = true) app platform alloc ~failed =
  let n_procs = Alloc.n_procs alloc in
  let failed = validate_failed n_procs failed in
  let is_failed u = List.mem u failed in
  let catalog = platform.Platform.catalog in
  let cost_before = Cost.of_alloc catalog alloc in
  let failed_cost =
    let per = Cost.per_proc catalog alloc in
    List.fold_left (fun s u -> s +. per.(u)) 0.0 failed
  in
  (* Rebuild the placement on the nominal platform: survivors keep
     their processors (re-acquired in index order, so group ids are
     deterministic), then each displaced operator is re-placed in
     ascending id order.  The builder's probe/ledger chatter runs under
     a journal-suppressed sink — only the Repair_* decisions below are
     journaled, mirroring the Serve solve_quietly pattern. *)
  let work () =
    let b = Builder.create app platform in
    let actions = ref [] in
    let survivors_ok = ref None in
    for u = 0 to n_procs - 1 do
      if !survivors_ok = None && not (is_failed u) then begin
        let p = Alloc.proc alloc u in
        match
          Builder.acquire b ~config:p.Alloc.config ~members:p.Alloc.operators
        with
        | Ok _ -> ()
        | Error msg ->
          survivors_ok := Some (Printf.sprintf "survivor %d re-acquire: %s" u msg)
      end
    done;
    match !survivors_ok with
    | Some msg -> Error msg
    | None ->
      let displaced =
        List.concat_map (fun u -> Alloc.operators_of alloc u) failed
        |> List.sort compare
      in
      let from_proc =
        let tbl = Array.make (App.n_operators app) (-1) in
        List.iter
          (fun u -> List.iter (fun op -> tbl.(op) <- u) (Alloc.operators_of alloc u))
          failed;
        tbl
      in
      let rec place_all = function
        | [] -> Ok ()
        | op :: rest -> (
          match place b ~allow_rebuy ~max_procs op with
          | Some (`Mig g) ->
            actions :=
              A_migrate { op; from_proc = from_proc.(op); to_group = g }
              :: !actions;
            place_all rest
          | Some (`Buy (g, config)) ->
            actions := A_rebuy { group = g; config; op } :: !actions;
            place_all rest
          | None ->
            Error
              (Printf.sprintf
                 "no residual capacity for operator %d (rebuy %s)" op
                 (if allow_rebuy then "exhausted" else "disabled")))
      in
      match place_all displaced with
      | Error _ as e -> e
      | Ok () -> (
        match Builder.finalize b with
        | Error msg -> Error ("finalize: " ^ msg)
        | Ok (groups, configs) -> (
          match Server_select.sophisticated app platform ~groups with
          | Error msg -> Error ("server selection: " ^ msg)
          | Ok downloads ->
            let raw = Alloc.of_groups ~configs ~groups ~downloads in
            let final = Downgrade.run app platform raw in
            let downgrades = ref 0 in
            for u = 0 to Alloc.n_procs final - 1 do
              if
                Catalog.label (Alloc.proc raw u).Alloc.config
                <> Catalog.label (Alloc.proc final u).Alloc.config
              then incr downgrades
            done;
            (match Check.check app platform final with
            | [] -> Ok (final, List.rev !actions, !downgrades)
            | violations ->
              Error ("repaired mapping infeasible:\n" ^ Check.explain violations))))
  in
  let result, sink = Obs.with_sink ~journal:false work in
  Obs.absorb sink;
  match result with
  | Error _ as e ->
    Obs.incr "faults.repair.infeasible";
    e
  | Ok (final, actions, downgrades) ->
    let migrations = ref 0 and rebuys = ref 0 in
    List.iter
      (fun a ->
        match a with
        | A_migrate { op; from_proc; to_group } ->
          incr migrations;
          if Obs.journaling () then
            Obs.event (Journal.Repair_migrate { op; from_proc; to_group })
        | A_rebuy { group; config; op } ->
          incr rebuys;
          if Obs.journaling () then
            Obs.event
              (Journal.Repair_rebuy
                 { group; config = Catalog.label config; ops = [ op ] }))
      actions;
    Obs.incr "faults.repair.ok";
    Obs.incr ~by:!migrations "faults.repair.migrations";
    Obs.incr ~by:!rebuys "faults.repair.rebuys";
    let cost_after = Cost.of_alloc catalog final in
    Ok
      {
        alloc = final;
        cost_before;
        cost_after;
        realloc_cost = cost_after -. (cost_before -. failed_cost);
        migrations = !migrations;
        rebuys = !rebuys;
        downgrades;
      }

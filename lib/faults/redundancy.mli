(** Redundancy-aware placement: buy spare capacity so that {e any}
    K-processor failure can be repaired by migration alone — the root
    keeps its target throughput rho without waiting on re-provisioning.

    {!harden} grows the allocation with spare processors until every
    K-subset of failures passes the migration-only {!Repair} loop
    (checker-feasible repaired mapping), then downgrades each spare to
    the cheapest catalog configuration preserving the property.  The
    resulting cost against the unhardened base quantifies the
    cost-of-resilience frontier ({!frontier}).  Fully deterministic. *)

type hardened = {
  alloc : Insp_mapping.Alloc.t;
      (** base allocation plus spare processors (appended, empty) *)
  k : int;
  spares : int;
  base_cost : float;  (** cost of the unhardened allocation *)
  cost : float;  (** cost including spares *)
}

val harden :
  ?k:int ->
  ?max_spares:int ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  Insp_mapping.Alloc.t ->
  (hardened, string) result
(** [harden app platform alloc] (defaults [k = 1], [max_spares = 8]).
    [Error] when the property is still violated after [max_spares]
    spares.  [k = 0] verifies plain feasibility and buys nothing. *)

val frontier :
  ?k_max:int ->
  ?max_spares:int ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  Insp_mapping.Alloc.t ->
  (int * (hardened, string) result) list
(** [harden] at every K in [0..k_max] (default 1), ascending. *)

val survives :
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  Insp_mapping.Alloc.t ->
  failed:int list ->
  bool
(** Does a migration-only repair of these failures succeed? *)

val subsets : k:int -> int -> int list list
(** All [k]-subsets of [{0..n-1}], lexicographic.  Exposed for the
    property tests. *)

(* lint: allow t3 — exhaustive-search probe used by tests and tooling *)
val first_failing :
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  Insp_mapping.Alloc.t ->
  k:int ->
  int list option
(** First (lex) failure set a migration-only repair cannot absorb. *)

module Prng = Insp_util.Prng
module Stream = Insp_serve.Stream

type fault =
  | Proc_crash of { victim : int }
  | Link_degrade of { a : int; b : int; factor : float; duration : float }
  | Server_outage of { server : int; duration : float }
  | Card_jitter of { proc : int; factor : float; duration : float }
  | Rho_demand of { factor : float }

type timed = { at : float; fault : fault }

type spec = {
  seed : int;
  horizon : float;
  n_events : int;
  n_servers : int;
  mean_burst : int;
  crash_w : int;
  degrade_w : int;
  outage_w : int;
  jitter_w : int;
  rho_w : int;
}

let make ?(horizon = 200.0) ?(n_events = 12) ?(n_servers = 6)
    ?(mean_burst = 1) ?(crash_w = 4) ?(degrade_w = 2) ?(outage_w = 1)
    ?(jitter_w = 2) ?(rho_w = 1) ~seed () =
  if horizon <= 0.0 then invalid_arg "Scenario.make: horizon <= 0";
  if n_events < 0 then invalid_arg "Scenario.make: n_events < 0";
  if n_servers < 1 then invalid_arg "Scenario.make: n_servers < 1";
  if mean_burst < 1 then invalid_arg "Scenario.make: mean_burst < 1";
  if crash_w < 0 || degrade_w < 0 || outage_w < 0 || jitter_w < 0 || rho_w < 0
  then invalid_arg "Scenario.make: negative weight";
  if crash_w + degrade_w + outage_w + jitter_w + rho_w = 0 then
    invalid_arg "Scenario.make: all weights zero";
  {
    seed; horizon; n_events; n_servers; mean_burst; crash_w; degrade_w;
    outage_w; jitter_w; rho_w;
  }

(* Fault kinds are drawn by integer weight in a fixed order, so the
   timeline is a pure function of the spec.  Victim / link endpoints
   are drawn as raw integers: the engine reduces them modulo the
   processor count of the *current* allocation, which the generator
   cannot know (repairs change it). *)
let draw_fault spec rng =
  let total =
    spec.crash_w + spec.degrade_w + spec.outage_w + spec.jitter_w + spec.rho_w
  in
  let k = Prng.int rng total in
  if k < spec.crash_w then `Crash
  else if k < spec.crash_w + spec.degrade_w then
    `Degrade
      (Link_degrade
         {
           a = Prng.int rng 1_000_000;
           b = Prng.int rng 1_000_000;
           factor = Prng.float_range rng 0.2 0.8;
           duration = Prng.float_range rng 2.0 10.0;
         })
  else if k < spec.crash_w + spec.degrade_w + spec.outage_w then
    `Degrade
      (Server_outage
         {
           server = Prng.int rng spec.n_servers;
           duration = Prng.float_range rng 2.0 8.0;
         })
  else if k < spec.crash_w + spec.degrade_w + spec.outage_w + spec.jitter_w
  then
    `Degrade
      (Card_jitter
         {
           proc = Prng.int rng 1_000_000;
           factor = Prng.float_range rng 0.3 0.9;
           duration = Prng.float_range rng 1.0 6.0;
         })
  else `Degrade (Rho_demand { factor = Prng.float_range rng 0.5 2.0 })

let generate spec =
  let rng = Prng.create spec.seed in
  (* Uniform gaps with mean [horizon / (n_events + 1)] keep the bulk of
     the timeline inside the horizon without a draw-order-perturbing
     rejection loop. *)
  let mean_gap = spec.horizon /. float_of_int (spec.n_events + 1) in
  let now = ref 0.0 in
  let acc = ref [] in
  for _ = 1 to spec.n_events do
    now := !now +. Prng.float_range rng 0.0 (2.0 *. mean_gap);
    match draw_fault spec rng with
    | `Crash ->
      (* Correlated failures: a rack loss takes several processors at
         the same instant.  Burst sizing is shared with the arrival
         stream generator. *)
      let b = Stream.burst_size rng ~mean:spec.mean_burst in
      for _ = 1 to b do
        acc :=
          { at = !now; fault = Proc_crash { victim = Prng.int rng 1_000_000 } }
          :: !acc
      done
    | `Degrade fault -> acc := { at = !now; fault } :: !acc
  done;
  List.rev !acc

let scope_label = function
  | Proc_crash { victim } -> Printf.sprintf "crash:%d" victim
  | Link_degrade { a; b; _ } -> Printf.sprintf "plink:%d-%d" a b
  | Server_outage { server; _ } -> Printf.sprintf "server:%d" server
  | Card_jitter { proc; _ } -> Printf.sprintf "card:%d" proc
  | Rho_demand _ -> "rho"

let pp_timed ppf { at; fault } =
  match fault with
  | Proc_crash { victim } ->
    Format.fprintf ppf "t=%.2f crash victim=%d" at victim
  | Link_degrade { a; b; factor; duration } ->
    Format.fprintf ppf "t=%.2f degrade plink %d-%d x%.2f for %.1fs" at a b
      factor duration
  | Server_outage { server; duration } ->
    Format.fprintf ppf "t=%.2f outage server=%d for %.1fs" at server duration
  | Card_jitter { proc; factor; duration } ->
    Format.fprintf ppf "t=%.2f jitter card=%d x%.2f for %.1fs" at proc factor
      duration
  | Rho_demand { factor } -> Format.fprintf ppf "t=%.2f rho x%.2f" at factor

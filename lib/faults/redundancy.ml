module Platform = Insp_platform.Platform
module Catalog = Insp_platform.Catalog
module Alloc = Insp_mapping.Alloc
module Cost = Insp_mapping.Cost
module Obs = Insp_obs.Obs

(* All k-subsets of {0..n-1}, lexicographic. *)
let subsets ~k n =
  let rec go lo k =
    if k = 0 then [ [] ]
    else if lo >= n then []
    else
      List.map (fun s -> lo :: s) (go (lo + 1) (k - 1)) @ go (lo + 1) k
  in
  if k < 0 then invalid_arg "Redundancy.subsets: k < 0";
  go 0 k

let survives app platform alloc ~failed =
  match Repair.run ~allow_rebuy:false app platform alloc ~failed with
  | Ok _ -> true
  | Error _ -> false

let first_failing app platform alloc ~k =
  List.find_opt
    (fun failed -> not (survives app platform alloc ~failed))
    (subsets ~k (Alloc.n_procs alloc))

let with_spare alloc config =
  Alloc.make
    (Array.append (Alloc.procs alloc)
       [| { Alloc.config; operators = []; downloads = [] } |])

type hardened = {
  alloc : Alloc.t;
  k : int;
  spares : int;
  base_cost : float;
  cost : float;
}

let harden ?(k = 1) ?(max_spares = 8) app platform alloc =
  if k < 0 then invalid_arg "Redundancy.harden: k < 0";
  if max_spares < 0 then invalid_arg "Redundancy.harden: max_spares < 0";
  let catalog = platform.Platform.catalog in
  let base_cost = Cost.of_alloc catalog alloc in
  let all_survive a = first_failing app platform a ~k = None in
  (* Grow with top-of-catalog spares until every k-failure is
     repairable by migration alone... *)
  let rec grow a spares =
    if all_survive a then Ok (a, spares)
    else if spares >= max_spares then
      Error
        (Printf.sprintf "not %d-resilient after %d spares" k max_spares)
    else grow (with_spare a (Catalog.best catalog)) (spares + 1)
  in
  match grow alloc 0 with
  | Error _ as e -> e
  | Ok (a, spares) ->
    (* ...then cheapen each spare to the least-cost configuration that
       preserves the property (configs are sorted by increasing cost,
       so the first survivor is the cheapest; the top config is known
       to work). *)
    let n0 = Alloc.n_procs alloc in
    let best = ref a in
    for u = n0 to n0 + spares - 1 do
      let rec try_cfgs = function
        | [] -> ()
        | c :: rest ->
          let cand = Alloc.with_config !best u c in
          if all_survive cand then best := cand else try_cfgs rest
      in
      try_cfgs (Catalog.configs catalog)
    done;
    Obs.incr ~by:spares "faults.redundancy.spares";
    Ok { alloc = !best; k; spares; base_cost; cost = Cost.of_alloc catalog !best }

let frontier ?(k_max = 1) ?max_spares app platform alloc =
  List.init (k_max + 1) (fun k ->
      (k, harden ~k ?max_spares app platform alloc))

module App = Insp_tree.App
module Platform = Insp_platform.Platform
module Servers = Insp_platform.Servers
module Alloc = Insp_mapping.Alloc
module Check = Insp_mapping.Check
module Cost = Insp_mapping.Cost
module Solve = Insp_heuristics.Solve
module Runtime = Insp_sim.Runtime
module Obs = Insp_obs.Obs
module Journal = Insp_obs.Journal

type spec = {
  detect_s : float;
  migrate_s : float;
  provision_s : float;
  max_procs : int option;
  allow_rebuy : bool;
  measure : bool;
  slice_s : float;
  heuristic : Solve.heuristic;
}

let default_heuristic =
  match Solve.find "sbu" with
  | Some h -> h
  | None -> invalid_arg "Faults.Engine: sbu heuristic missing"

let make_spec ?(detect_s = 1.0) ?(migrate_s = 0.5) ?(provision_s = 5.0)
    ?max_procs ?(allow_rebuy = true) ?(measure = true) ?(slice_s = 10.0)
    ?heuristic () =
  if detect_s < 0.0 || migrate_s < 0.0 || provision_s < 0.0 then
    invalid_arg "Engine.make_spec: negative delay";
  if slice_s <= 0.0 then invalid_arg "Engine.make_spec: slice_s <= 0";
  let heuristic =
    match heuristic with Some h -> h | None -> default_heuristic
  in
  { detect_s; migrate_s; provision_s; max_procs; allow_rebuy; measure;
    slice_s; heuristic }

type episode = {
  ep_t : float;
  ep_label : string;
  ep_downtime : float;
  ep_cost : float;
  ep_migrations : int;
  ep_rebuys : int;
  ep_dip : float option;
  ep_recovery : float option;
}

type report = {
  episodes : episode list;
  total_downtime : float;
  total_realloc_cost : float;
  final_cost : float;
  final_procs : int;
  worst_dip : float option;
  infeasible_at : float option;
  n_crashes : int;
  n_capacity : int;
  n_rho : int;
}

let quietly f =
  let r, sink = Obs.with_sink ~journal:false f in
  Obs.absorb sink;
  r

let one_line s = String.map (fun c -> if c = '\n' then ' ' else c) s

(* Raw generator draws are reduced against the *current* topology: the
   processor count changes as repairs rebuy or shed processors. *)
let normalize alloc platform fault =
  let n = Alloc.n_procs alloc in
  let n_srv = Servers.n_servers platform.Platform.servers in
  match fault with
  | Scenario.Proc_crash { victim } ->
    Scenario.Proc_crash { victim = victim mod n }
  | Scenario.Link_degrade { a; b; factor; duration } ->
    Scenario.Link_degrade { a = a mod n; b = b mod n; factor; duration }
  | Scenario.Server_outage { server; duration } ->
    Scenario.Server_outage { server = server mod n_srv; duration }
  | Scenario.Card_jitter { proc; factor; duration } ->
    Scenario.Card_jitter { proc = proc mod n; factor; duration }
  | Scenario.Rho_demand _ as f -> f

(* A full server outage is modelled as 5% residual capacity rather than
   a hard zero: flows keep draining (slowly), so the DES horizon always
   terminates. *)
let outage_factor = 0.05

let runtime_scope fault =
  match fault with
  | Scenario.Link_degrade { a; b; factor; duration } ->
    if a = b then None
    else Some (Runtime.Proc_link (a, b), factor, duration)
  | Scenario.Server_outage { server; duration } ->
    Some (Runtime.Server_card server, outage_factor, duration)
  | Scenario.Card_jitter { proc; factor; duration } ->
    Some (Runtime.Proc_card proc, factor, duration)
  | Scenario.Proc_crash _ | Scenario.Rho_demand _ -> None

(* Bucketed root-completion throughput around a disruption window:
   [dip] is the worst bucket inside the window, normalized to rho;
   [recovery] is how long after restoration the first >= 90% bucket
   appears.  Buckets are sized so a nominal bucket holds ~2 results. *)
let dip_and_recovery ~rho ~from_t ~until_t ~horizon times =
  let w = Float.max 1.0 (2.0 /. rho) in
  let nb = max 1 (int_of_float (Float.ceil (horizon /. w))) in
  let buckets = Array.make nb 0 in
  Array.iter
    (fun t ->
      let i = int_of_float (t /. w) in
      if i >= 0 && i < nb then buckets.(i) <- buckets.(i) + 1)
    times;
  let norm i = float_of_int buckets.(i) /. (w *. rho) in
  let b0 = max 0 (int_of_float (from_t /. w)) in
  let b1 = min (nb - 1) (int_of_float (until_t /. w)) in
  let dip = ref infinity in
  for i = b0 to b1 do
    dip := Float.min !dip (norm i)
  done;
  let dip = if !dip = infinity then None else Some !dip in
  let rec find i =
    if i >= nb then None
    else if norm i >= 0.9 then
      Some (Float.max 0.0 ((float_of_int i *. w) -. until_t))
    else find (i + 1)
  in
  (dip, find (max 0 (int_of_float (Float.ceil (until_t /. w)))))

let run spec app0 platform alloc0 timeline =
  let catalog = platform.Platform.catalog in
  let rho0 = App.rho app0 in
  let app = ref app0 in
  let alloc = ref alloc0 in
  let episodes = ref [] in
  let infeasible_at = ref None in
  let n_crashes = ref 0 and n_capacity = ref 0 and n_rho = ref 0 in
  let push ep = episodes := ep :: !episodes in
  let blank at label =
    { ep_t = at; ep_label = label; ep_downtime = 0.0; ep_cost = 0.0;
      ep_migrations = 0; ep_rebuys = 0; ep_dip = None; ep_recovery = None }
  in
  let crash at victim =
    incr n_crashes;
    Obs.incr "faults.crash";
    if Obs.journaling () then Obs.event (Journal.Fault_crash { t = at; victim });
    match
      Repair.run ?max_procs:spec.max_procs ~allow_rebuy:spec.allow_rebuy !app
        platform !alloc ~failed:[ victim ]
    with
    | Ok o ->
      alloc := o.Repair.alloc;
      let downtime =
        spec.detect_s
        +. (spec.migrate_s *. float_of_int o.Repair.migrations)
        +. (spec.provision_s *. float_of_int o.Repair.rebuys)
      in
      if Obs.journaling () then
        Obs.event
          (Journal.Repair_done
             {
               t = at;
               cost = o.Repair.realloc_cost;
               migrations = o.Repair.migrations;
               rebuys = o.Repair.rebuys;
               downtime;
             });
      push
        {
          (blank at (Printf.sprintf "crash:%d" victim)) with
          ep_downtime = downtime;
          ep_cost = o.Repair.realloc_cost;
          ep_migrations = o.Repair.migrations;
          ep_rebuys = o.Repair.rebuys;
        }
    | Error reason ->
      if Obs.journaling () then
        Obs.event
          (Journal.Repair_infeasible { t = at; reason = one_line reason });
      infeasible_at := Some at
  in
  let rho_shift at factor =
    incr n_rho;
    Obs.incr "faults.rho";
    let rho = rho0 *. factor in
    if Obs.journaling () then
      Obs.event (Journal.Fault_rho { t = at; factor; rho });
    app :=
      App.make ~rho ~base_work:(App.base_work !app)
        ~work_factor:(App.work_factor !app) ~tree:(App.tree !app)
        ~objects:(App.objects !app) ~alpha:(App.alpha !app) ();
    if Check.check !app platform !alloc = [] then push (blank at "rho")
    else begin
      (* The deployed mapping no longer sustains the new demand: redeploy
         from scratch (sell old, buy new) with the spec's heuristic. *)
      let old_cost = Cost.of_alloc catalog !alloc in
      match quietly (fun () -> Solve.run ~seed:0 spec.heuristic !app platform) with
      | Ok o ->
        alloc := o.Solve.alloc;
        let moved = App.n_operators !app in
        let downtime =
          spec.detect_s +. (spec.migrate_s *. float_of_int moved)
        in
        let cost = o.Solve.cost -. old_cost in
        if Obs.journaling () then
          Obs.event
            (Journal.Repair_done
               { t = at; cost; migrations = moved; rebuys = 0; downtime });
        push
          {
            (blank at "rho:redeploy") with
            ep_downtime = downtime;
            ep_cost = cost;
            ep_migrations = moved;
          }
      | Error f ->
        if Obs.journaling () then
          Obs.event
            (Journal.Repair_infeasible
               { t = at; reason = Solve.failure_message f });
        infeasible_at := Some at
    end
  in
  let capacity at fault factor duration =
    incr n_capacity;
    Obs.incr "faults.capacity";
    let label = Scenario.scope_label fault in
    if Obs.journaling () then
      Obs.event (Journal.Fault_capacity { t = at; scope = label; factor; duration });
    let dip, recovery =
      if not spec.measure then (None, None)
      else
        match runtime_scope fault with
        | None -> (None, None)
        | Some (scope, d_factor, duration) ->
          let settle = 4.0 in
          let horizon = settle +. duration +. spec.slice_s in
          let d =
            { Runtime.d_scope = scope; d_from = settle;
              d_until = settle +. duration; d_factor }
          in
          let rep =
            quietly (fun () ->
                Runtime.run ~horizon ~disruptions:[ d ] !app platform !alloc)
          in
          dip_and_recovery ~rho:(App.rho !app) ~from_t:settle
            ~until_t:(settle +. duration) ~horizon
            rep.Runtime.root_completions
    in
    push { (blank at label) with ep_dip = dip; ep_recovery = recovery }
  in
  let handle { Scenario.at; fault } =
    match normalize !alloc platform fault with
    | Scenario.Proc_crash { victim } -> crash at victim
    | Scenario.Rho_demand { factor } -> rho_shift at factor
    | Scenario.Link_degrade { factor; duration; _ } as f ->
      capacity at f factor duration
    | Scenario.Server_outage { duration; _ } as f ->
      capacity at f outage_factor duration
    | Scenario.Card_jitter { factor; duration; _ } as f ->
      capacity at f factor duration
  in
  let rec walk = function
    | [] -> ()
    | ev :: rest ->
      if !infeasible_at = None then begin
        handle ev;
        walk rest
      end
  in
  walk timeline;
  let episodes = List.rev !episodes in
  let worst_dip =
    List.fold_left
      (fun acc ep ->
        match (acc, ep.ep_dip) with
        | None, d -> d
        | d, None -> d
        | Some a, Some b -> Some (Float.min a b))
      None episodes
  in
  {
    episodes;
    total_downtime = List.fold_left (fun s e -> s +. e.ep_downtime) 0.0 episodes;
    total_realloc_cost = List.fold_left (fun s e -> s +. e.ep_cost) 0.0 episodes;
    final_cost = Cost.of_alloc catalog !alloc;
    final_procs = Alloc.n_procs !alloc;
    worst_dip;
    infeasible_at = !infeasible_at;
    n_crashes = !n_crashes;
    n_capacity = !n_capacity;
    n_rho = !n_rho;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>episodes: %d (%d crash, %d capacity, %d rho)@,\
     total downtime: %.1f s@,\
     re-allocation cost: $%.0f@,\
     final platform: %d processors, $%.0f@,"
    (List.length r.episodes) r.n_crashes r.n_capacity r.n_rho r.total_downtime
    r.total_realloc_cost r.final_procs r.final_cost;
  (match r.worst_dip with
  | Some d -> Format.fprintf ppf "worst throughput dip: %.0f%% of rho@," (100.0 *. d)
  | None -> ());
  (match r.infeasible_at with
  | Some t -> Format.fprintf ppf "INFEASIBLE at t=%.1f@," t
  | None -> ());
  Format.fprintf ppf "@]"

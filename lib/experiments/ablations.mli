(** Ablation studies for the design choices DESIGN.md documents as
    deviations from (or refinements of) the paper's text, plus the
    paper's replication-level discussion.

    Each ablation returns a rendered text table; the bench harness runs
    all of them after the main experiments. *)

val replication : ?seeds:int list -> ?copy_ranges:(int * int) list -> unit -> Figure.t
(** Paper §5 (last paragraph): the level of replication of basic objects
    on servers "has little or no effect" on the heuristics' performance.
    Sweeps the number of copies per object. *)

(* lint: allow t3 — ablation entry point, invoked manually when regenerating figure data *)
val grouping_rounds : ?seeds:int list -> ?ns:int list -> unit -> string
(** Iterative grouping fallback (DESIGN deviation 2): success rate and
    SBU cost with 1 round (the paper's single pairing) vs 8 rounds, as N
    grows.  One round loses feasibility at large N. *)

(* lint: allow t3 — ablation entry point, invoked manually when regenerating figure data *)
val merge_sweeps :
  ?seeds:int list ->
  ?cases:(int * Insp_workload.Config.size_regime) list ->
  unit ->
  string
(** Comm-Greedy merge sweeps (DESIGN deviation 3): cost with and without
    the case-(iii) re-sweep. *)

(* lint: allow t3 — ablation entry point, invoked manually when regenerating figure data *)
val downgrade_step : ?seeds:int list -> ?ns:int list -> unit -> string
(** The paper's downgrade step: cost of each heuristic with and without
    replacing provisioned processors by the cheapest sufficient model. *)

(* lint: allow t3 — ablation entry point, invoked manually when regenerating figure data *)
val server_selection :
  ?seeds:int list ->
  ?cases:(int * Insp_workload.Config.size_regime) list ->
  unit ->
  string
(** Random vs sophisticated (three-loop) server selection under the SBU
    placement: success rates and costs. *)

val all : (string * (quick:bool -> string)) list
(** [(id, render)] for every ablation: replication, grouping-rounds,
    merge-sweeps, downgrade, server-selection. *)

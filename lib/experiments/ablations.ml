module Config = Insp_workload.Config
module Instance = Insp_workload.Instance
module Solve = Insp_heuristics.Solve
module Builder = Insp_heuristics.Builder
module Common = Insp_heuristics.Common
module H_comm_greedy = Insp_heuristics.H_comm_greedy
module Server_select = Insp_heuristics.Server_select
module Downgrade = Insp_heuristics.Downgrade
module Alloc = Insp_mapping.Alloc
module Check = Insp_mapping.Check
module Cost = Insp_mapping.Cost
module Platform = Insp_platform.Platform
module Table = Insp_util.Table
module Stats = Insp_util.Stats
module Prng = Insp_util.Prng

let default_seeds = [ 1; 2; 3; 4; 5 ]

let find_h key = List.find (fun h -> h.Solve.key = key) Solve.all

let mean_and_successes runs =
  let ok = List.filter_map Fun.id runs in
  let mean =
    if ok = [] then "-" else Printf.sprintf "%.0f" (Stats.mean ok)
  in
  (mean, Printf.sprintf "%d/%d" (List.length ok) (List.length runs))

(* ------------------------------------------------------------------ *)
(* Replication level (paper §5 last paragraph)                         *)

let replication ?(seeds = default_seeds)
    ?(copy_ranges = [ (1, 1); (1, 2); (2, 2); (3, 3); (4, 4) ]) () =
  let points =
    List.map
      (fun (min_copies, max_copies) ->
        let config =
          Config.make ~n_operators:60 ~alpha:0.9 ~min_copies ~max_copies ()
        in
        let runs =
          List.map
            (fun seed ->
              let inst = Instance.generate { config with Config.seed } in
              Solve.run_all ~seed inst.Instance.app inst.Instance.platform)
            seeds
        in
        let cells =
          List.map
            (fun h ->
              let costs =
                List.filter_map
                  (fun per_seed ->
                    match List.assq_opt h per_seed with
                    | Some (Ok o) -> Some o.Solve.cost
                    | Some (Error _) | None -> None)
                  runs
              in
              ( h.Solve.name,
                Figure.cell_of_costs ~attempts:(List.length seeds) costs ))
            Solve.all
        in
        {
          Figure.x = float_of_int (min_copies + max_copies) /. 2.0;
          cells;
        })
      copy_ranges
  in
  {
    Figure.id = "replication";
    title =
      "influence of basic-object replication (N=60, alpha=0.9; x = mean \
       copies per object)";
    xlabel = "copies";
    points;
    notes =
      [ "paper \u{00a7}5: the replication level has little or no effect in \
         general" ];
  }

(* ------------------------------------------------------------------ *)
(* Iterative grouping fallback                                         *)

let grouping_rounds ?(seeds = default_seeds) ?(ns = [ 60; 100; 140 ]) () =
  let table =
    Table.create
      ~title:
        "[ablation] iterative grouping fallback (SBU): 1 round (paper) vs 8"
      [
        ("N", Table.Right);
        ("feasible (1 round)", Table.Right);
        ("cost (1 round)", Table.Right);
        ("feasible (8 rounds)", Table.Right);
        ("cost (8 rounds)", Table.Right);
      ]
  in
  let sbu = find_h "sbu" in
  List.iter
    (fun n ->
      let run rounds seed =
        let inst =
          Instance.generate (Config.make ~n_operators:n ~alpha:0.9 ~seed ())
        in
        Common.with_collapse_rounds rounds (fun () ->
            match Solve.run ~seed sbu inst.Instance.app inst.Instance.platform with
            | Ok o -> Some o.Solve.cost
            | Error _ -> None)
      in
      let one = List.map (run 1) seeds in
      let eight = List.map (run 8) seeds in
      let m1, s1 = mean_and_successes one in
      let m8, s8 = mean_and_successes eight in
      Table.add_row table [ string_of_int n; s1; m1; s8; m8 ])
    ns;
  Table.render table

(* ------------------------------------------------------------------ *)
(* Comm-Greedy merge sweeps                                            *)

let merge_sweeps ?(seeds = default_seeds)
    ?(cases = [ (20, Config.Small); (60, Config.Small); (30, Config.Large) ])
    () =
  let table =
    Table.create
      ~title:"[ablation] Comm-Greedy case-(iii) merge sweeps: off vs on"
      [
        ("N", Table.Right);
        ("sizes", Table.Left);
        ("cost (no sweeps)", Table.Right);
        ("cost (sweeps)", Table.Right);
        ("saving", Table.Right);
      ]
  in
  let comm = find_h "comm" in
  List.iter
    (fun (n, sizes) ->
      let size_name =
        match sizes with
        | Config.Small -> "small"
        | Config.Large -> "large"
        | Config.Custom_sizes (lo, hi) -> Printf.sprintf "custom(%g..%g)" lo hi
      in
      let run enabled seed =
        let inst =
          Instance.generate
            (Config.make ~n_operators:n ~alpha:0.9 ~sizes ~seed ())
        in
        H_comm_greedy.with_merge_sweeps enabled (fun () ->
            match Solve.run ~seed comm inst.Instance.app inst.Instance.platform with
            | Ok o -> Some o.Solve.cost
            | Error _ -> None)
      in
      let off = List.filter_map (run false) seeds in
      let on = List.filter_map (run true) seeds in
      match (off, on) with
      | [], _ | _, [] ->
        Table.add_row table [ string_of_int n; size_name; "-"; "-"; "-" ]
      | _ ->
        let m_off = Stats.mean off and m_on = Stats.mean on in
        Table.add_row table
          [
            string_of_int n;
            size_name;
            Printf.sprintf "%.0f" m_off;
            Printf.sprintf "%.0f" m_on;
            Printf.sprintf "%.1f%%" (100.0 *. (m_off -. m_on) /. m_off);
          ])
    cases;
  Table.render table

(* ------------------------------------------------------------------ *)
(* Downgrade step                                                      *)

(* Re-run the pipeline without the downgrade and compare. *)
let solve_without_downgrade h seed app platform =
  let rng = Prng.create seed in
  match h.Solve.run rng app platform with
  | Error _ -> None
  | Ok builder -> (
    match Builder.finalize builder with
    | Error _ -> None
    | Ok (groups, configs) -> (
      let selection =
        if h.Solve.randomized then Server_select.random rng app platform ~groups
        else Server_select.sophisticated app platform ~groups
      in
      match selection with
      | Error _ -> None
      | Ok downloads -> (
        let alloc = Alloc.of_groups ~configs ~groups ~downloads in
        match Check.check app platform alloc with
        | [] -> Some (Cost.of_alloc platform.Platform.catalog alloc)
        | _ -> None)))

let downgrade_step ?(seeds = default_seeds) ?(ns = [ 60 ]) () =
  let table =
    Table.create
      ~title:
        "[ablation] the downgrade step (N=60, alpha=0.9): provisioned vs \
         downgraded cost"
      [
        ("heuristic", Table.Left);
        ("no downgrade", Table.Right);
        ("with downgrade", Table.Right);
        ("saving", Table.Right);
      ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun h ->
          let raw =
            List.filter_map
              (fun seed ->
                let inst =
                  Instance.generate
                    (Config.make ~n_operators:n ~alpha:0.9 ~seed ())
                in
                solve_without_downgrade h seed inst.Instance.app
                  inst.Instance.platform)
              seeds
          in
          let down =
            List.filter_map
              (fun seed ->
                let inst =
                  Instance.generate
                    (Config.make ~n_operators:n ~alpha:0.9 ~seed ())
                in
                match
                  Solve.run ~seed h inst.Instance.app inst.Instance.platform
                with
                | Ok o -> Some o.Solve.cost
                | Error _ -> None)
              seeds
          in
          match (raw, down) with
          | [], _ | _, [] ->
            Table.add_row table [ h.Solve.name; "-"; "-"; "-" ]
          | _ ->
            let m_raw = Stats.mean raw and m_down = Stats.mean down in
            Table.add_row table
              [
                h.Solve.name;
                Printf.sprintf "%.0f" m_raw;
                Printf.sprintf "%.0f" m_down;
                Printf.sprintf "%.1f%%" (100.0 *. (m_raw -. m_down) /. m_raw);
              ])
        Solve.all)
    ns;
  Table.render table

(* ------------------------------------------------------------------ *)
(* Server selection                                                    *)

let server_selection ?(seeds = default_seeds)
    ?(cases = [ (60, Config.Small); (40, Config.Large) ]) () =
  let table =
    Table.create
      ~title:
        "[ablation] server selection under SBU placement: random vs \
         three-loop"
      [
        ("N", Table.Right);
        ("sizes", Table.Left);
        ("random ok", Table.Right);
        ("random cost", Table.Right);
        ("3-loop ok", Table.Right);
        ("3-loop cost", Table.Right);
      ]
  in
  let sbu = find_h "sbu" in
  let variant select seed inst =
    let app = inst.Instance.app and platform = inst.Instance.platform in
    match sbu.Solve.run (Prng.create seed) app platform with
    | Error _ -> None
    | Ok builder -> (
      match Builder.finalize builder with
      | Error _ -> None
      | Ok (groups, configs) -> (
        match select app platform groups with
        | Error _ -> None
        | Ok downloads -> (
          let alloc = Alloc.of_groups ~configs ~groups ~downloads in
          let alloc = Downgrade.run app platform alloc in
          match Check.check app platform alloc with
          | [] -> Some (Cost.of_alloc platform.Platform.catalog alloc)
          | _ -> None)))
  in
  List.iter
    (fun (n, sizes) ->
      let size_name =
        match sizes with
        | Config.Small -> "small"
        | Config.Large -> "large"
        | Config.Custom_sizes (lo, hi) -> Printf.sprintf "custom(%g..%g)" lo hi
      in
      let config = Config.make ~n_operators:n ~alpha:0.9 ~sizes () in
      let runs select =
        List.map
          (fun seed ->
            let inst = Instance.generate { config with Config.seed } in
            variant select seed inst)
          seeds
      in
      let rnd =
        runs (fun app platform groups ->
            Server_select.random (Prng.create 99) app platform ~groups)
      in
      let soph =
        runs (fun app platform groups ->
            Server_select.sophisticated app platform ~groups)
      in
      let m_r, s_r = mean_and_successes rnd in
      let m_s, s_s = mean_and_successes soph in
      Table.add_row table [ string_of_int n; size_name; s_r; m_r; s_s; m_s ])
    cases;
  Table.render table

(* ------------------------------------------------------------------ *)

let all =
  [
    ( "ablation-grouping",
      fun ~quick ->
        let seeds = if quick then [ 1; 2 ] else default_seeds in
        let ns = if quick then [ 60 ] else [ 60; 100; 140 ] in
        grouping_rounds ~seeds ~ns () );
    ( "ablation-sweeps",
      fun ~quick ->
        let seeds = if quick then [ 1; 2 ] else default_seeds in
        let cases =
          if quick then [ (30, Config.Large) ]
          else [ (20, Config.Small); (60, Config.Small); (30, Config.Large) ]
        in
        merge_sweeps ~seeds ~cases () );
    ( "ablation-downgrade",
      fun ~quick ->
        let seeds = if quick then [ 1; 2 ] else default_seeds in
        downgrade_step ~seeds () );
    ( "ablation-selection",
      fun ~quick ->
        let seeds = if quick then [ 1; 2 ] else default_seeds in
        server_selection ~seeds () );
  ]

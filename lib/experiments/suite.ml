module Config = Insp_workload.Config
module Instance = Insp_workload.Instance
module Solve = Insp_heuristics.Solve
module Exact = Insp_lp.Exact
module Cost = Insp_mapping.Cost
module Runtime = Insp_sim.Runtime
module Table = Insp_util.Table
module Obs = Insp_obs.Obs

let default_seeds = [ 1; 2; 3; 4; 5 ]

let heuristic_names = List.map (fun h -> h.Solve.name) Solve.all

(* One sweep cell: every heuristic on one seed of one configuration.
   This is the unit Par_sweep distributes across domains. *)
let solve_cell ?(instance_of = Instance.generate) config seed =
  Obs.span "sweep.seed" (fun () ->
      let inst = instance_of { config with Config.seed } in
      Solve.run_all ~seed inst.Instance.app inst.Instance.platform)

(* Regroup per-seed heuristic outcomes into one Figure cell per
   heuristic. *)
let group_cells ~seeds runs =
  List.map
    (fun name ->
      let costs =
        List.filter_map
          (fun per_seed ->
            match
              List.find_opt (fun (h, _) -> h.Solve.name = name) per_seed
            with
            | Some (_, Ok o) -> Some o.Solve.cost
            | Some (_, Error _) | None -> None)
          runs
      in
      (name, Figure.cell_of_costs ~attempts:(List.length seeds) costs))
    heuristic_names

let cells_for ?instance_of config ~seeds =
  group_cells ~seeds
    (Par_sweep.map (fun seed -> solve_cell ?instance_of config seed) seeds)

let sweep_n ~id ~title ~seeds ~ns ~config_of =
  (* Flatten the (n, seed) grid into one cell list so a parallel run
     keeps every worker busy across point boundaries; results come back
     in canonical grid order and are sliced per point. *)
  let runs =
    List.concat_map (fun n -> List.map (fun seed -> (n, seed)) seeds) ns
    |> Par_sweep.map (fun (n, seed) -> solve_cell (config_of n) seed)
    |> Array.of_list
  in
  let k = List.length seeds in
  let points =
    List.mapi
      (fun pi n ->
        {
          Figure.x = float_of_int n;
          cells =
            group_cells ~seeds (List.init k (fun si -> runs.((pi * k) + si)));
        })
      ns
  in
  {
    Figure.id;
    title;
    xlabel = "N";
    points;
    notes =
      [ Printf.sprintf "mean cost ($) over %d seeds; '-' = fewer than half \
                        the seeds feasible" (List.length seeds) ];
  }

let default_ns = [ 20; 40; 60; 80; 100; 120; 140 ]

let fig2a ?(seeds = default_seeds) ?(ns = default_ns) () =
  sweep_n ~id:"fig2a"
    ~title:"cost vs N (alpha=0.9, high frequency, small objects)" ~seeds ~ns
    ~config_of:(fun n -> Config.make ~n_operators:n ~alpha:0.9 ())

let fig2b ?(seeds = default_seeds) ?(ns = default_ns) () =
  sweep_n ~id:"fig2b"
    ~title:"cost vs N (alpha=1.7, high frequency, small objects)" ~seeds ~ns
    ~config_of:(fun n -> Config.make ~n_operators:n ~alpha:1.7 ())

let default_alphas =
  [ 0.5; 0.8; 1.1; 1.3; 1.5; 1.6; 1.7; 1.8; 1.9; 2.0; 2.2; 2.5 ]

let fig3 ?(seeds = default_seeds) ?(alphas = default_alphas) ?(n = 60) () =
  let points =
    List.map
      (fun alpha ->
        {
          Figure.x = alpha;
          cells =
            cells_for (Config.make ~n_operators:n ~alpha ()) ~seeds;
        })
      alphas
  in
  {
    Figure.id = (if n = 60 then "fig3" else Printf.sprintf "fig3-n%d" n);
    title =
      Printf.sprintf
        "cost vs alpha (N=%d, high frequency, small objects)" n;
    xlabel = "alpha";
    points;
    notes =
      [
        "expected shape: flat, then rising past a first threshold, then \
         infeasible past a second";
      ];
  }

let large_objects ?(seeds = default_seeds)
    ?(ns = [ 10; 20; 30; 40; 45; 50; 60 ]) () =
  sweep_n ~id:"large"
    ~title:"cost vs N (large objects 450-530 MB, alpha=0.9, rho=0.1)" ~seeds
    ~ns
    ~config_of:(fun n ->
      Config.make ~n_operators:n ~alpha:0.9 ~sizes:Config.Large ())

let low_frequency ?(seeds = default_seeds) ?(ns = default_ns) () =
  sweep_n ~id:"lowfreq"
    ~title:"cost vs N (alpha=0.9, LOW frequency 1/50s, small objects)" ~seeds
    ~ns
    ~config_of:(fun n ->
      Config.make ~n_operators:n ~alpha:0.9 ~freq:Config.Low ())

let rate_sweep ?(seeds = default_seeds)
    ?(periods = [ 2.0; 5.0; 10.0; 20.0; 50.0 ]) ?(n = 60) () =
  let base = Config.make ~n_operators:n ~alpha:0.9 () in
  let points =
    List.map
      (fun period ->
        let instance_of config =
          (* Same tree/sizes/servers per seed; only the frequency
             varies. *)
          Instance.with_frequency (Instance.generate config) (1.0 /. period)
        in
        { Figure.x = period; cells = cells_for ~instance_of base ~seeds })
      periods
  in
  {
    Figure.id = "rates";
    title =
      Printf.sprintf
        "cost vs download period (N=%d, alpha=0.9, small objects)" n;
    xlabel = "period (s)";
    points;
    notes =
      [
        "trees are held fixed per seed across periods; expected: cost \
         decreases with the period and stabilises beyond ~10 s";
      ];
  }

(* Homogeneous platform used for the exactness comparison: fastest CPU,
   1250 MB/s NIC. *)
let homogeneous_instance config =
  Instance.homogeneous (Instance.generate config) ~cpu_index:4 ~nic_index:3

let ilp_compare ?(seeds = default_seeds) ?(ns = [ 5; 8; 11; 14; 17; 20 ]) () =
  let points =
    List.map
      (fun n ->
        let config = Config.make ~n_operators:n ~alpha:0.9 () in
        let heuristic_cells =
          cells_for ~instance_of:homogeneous_instance config ~seeds
        in
        let exact_runs =
          Par_sweep.map
            (fun seed ->
              let inst = homogeneous_instance { config with Config.seed } in
              let catalog =
                inst.Instance.platform.Insp_platform.Platform.catalog
              in
              let bound = Cost.lower_bound_cost inst.Instance.app catalog in
              let exact =
                match
                  Exact.solve ~node_limit:400_000 inst.Instance.app
                    inst.Instance.platform
                with
                | Ok r -> Some r.Exact.cost
                | Error _ -> None
              in
              (bound, exact))
            seeds
        in
        (* Reversed like the sequential accumulator builds them, so the
           per-cell float folds are unchanged. *)
        let bound_costs = ref (List.rev_map fst exact_runs) in
        let exact_costs = ref (List.rev (List.filter_map snd exact_runs)) in
        let attempts = List.length seeds in
        {
          Figure.x = float_of_int n;
          cells =
            heuristic_cells
            @ [
                ("Exact", Figure.cell_of_costs ~attempts !exact_costs);
                ("Bound", Figure.cell_of_costs ~attempts !bound_costs);
              ];
        })
      ns
  in
  {
    Figure.id = "ilp";
    title =
      "heuristics vs exact optimum (homogeneous platform: fastest CPU, \
       1250 MB/s NIC)";
    xlabel = "N";
    points;
    notes =
      [
        "'Exact' = branch-and-bound optimum (CPLEX substitute); 'Bound' = \
         quick lower bound";
      ];
  }

let rewrite ?(seeds = default_seeds) ?(ns = [ 8; 12; 16; 20 ]) ?(alpha = 1.4)
    () =
  let module Rewrite = Insp_rewrite.Rewrite in
  let module App = Insp_tree.App in
  let module Prng = Insp_util.Prng in
  let sbu = List.find (fun h -> h.Solve.key = "sbu") Solve.all in
  let points =
    List.map
      (fun n ->
        let run_shapes seed =
          let config = Config.make ~n_operators:n ~alpha ~seed () in
          let inst = Instance.generate config in
          let base_app = inst.Instance.app in
          let platform = inst.Instance.platform in
          let evaluate tree =
            let app =
              App.make ~rho:config.Config.rho
                ~base_work:config.Config.base_work
                ~work_factor:config.Config.work_factor ~tree
                ~objects:(App.objects base_app) ~alpha ()
            in
            match Solve.run ~seed sbu app platform with
            | Ok o -> Some o.Solve.cost
            | Error _ -> None
          in
          let original = App.tree base_app in
          let optimized, opt_cost =
            Rewrite.optimize (Prng.create seed) ~evaluate original
          in
          ignore optimized;
          [
            ("Left-deep", evaluate (Rewrite.left_deep_of original));
            ("Original", evaluate original);
            ("Balanced", evaluate (Rewrite.balanced_of original));
            ("Hill-climbed", opt_cost);
          ]
        in
        let per_seed = Par_sweep.map run_shapes seeds in
        let attempts = List.length seeds in
        let cell name =
          let costs =
            List.filter_map (fun run -> Option.join (List.assoc_opt name run))
              per_seed
          in
          (name, Figure.cell_of_costs ~attempts costs)
        in
        {
          Figure.x = float_of_int n;
          cells =
            [ cell "Left-deep"; cell "Original"; cell "Balanced";
              cell "Hill-climbed" ];
        })
      ns
  in
  {
    Figure.id = "rewrite";
    title =
      Printf.sprintf
        "mutable applications: provisioning cost by tree shape (alpha=%.1f, \
         same leaf multiset, SBU)" alpha;
    xlabel = "N";
    points;
    notes =
      [
        "extension of the paper's future work (§6): associative/commutative \
         operator rearrangement";
      ];
  }

let sharing ?(seeds = default_seeds) ?(n_apps_list = [ 1; 2; 3; 4; 5 ])
    ?(n = 30) () =
  let module MW = Insp_multi.Multi_workload in
  let module Dag = Insp_multi.Dag in
  let module Cse = Insp_multi.Cse in
  let module DP = Insp_multi.Dag_place in
  let points =
    List.map
      (fun n_apps ->
        let run build seed =
          let apps, platform = MW.instance ~seed ~n_apps ~n_operators:n in
          match DP.run (build apps) platform with
          | Ok o -> Some o.DP.cost
          | Error _ -> None
        in
        let collect build =
          List.filter_map Fun.id (Par_sweep.map (run build) seeds)
        in
        let attempts = List.length seeds in
        {
          Figure.x = float_of_int n_apps;
          cells =
            [
              ( "No sharing",
                Figure.cell_of_costs ~attempts (collect Dag.of_apps) );
              ( "CSE sharing",
                Figure.cell_of_costs ~attempts (collect Cse.share_apps) );
            ];
        })
      n_apps_list
  in
  {
    Figure.id = "sharing";
    title =
      Printf.sprintf
        "multi-application allocation: independent trees vs shared \
         sub-expressions (N=%d per application)" n;
    xlabel = "applications";
    points;
    notes =
      [
        "extension of the paper's future work (§6); correlated queries \
         share sub-expression pools";
      ];
  }

let sim_validation ?(seeds = [ 1; 2; 3 ]) ?(ns = [ 20; 60 ]) () =
  let sbu = List.find (fun h -> h.Solve.key = "sbu") Solve.all in
  let table =
    Table.create ~title:"[simcheck] discrete-event validation of SBU mappings"
      [
        ("N", Table.Right);
        ("seed", Table.Right);
        ("procs", Table.Right);
        ("target rho", Table.Right);
        ("achieved", Table.Right);
        ("sustains", Table.Left);
      ]
  in
  let rows =
    List.concat_map (fun n -> List.map (fun seed -> (n, seed)) seeds) ns
    |> Par_sweep.map (fun (n, seed) ->
           let config = Config.make ~n_operators:n ~alpha:0.9 ~seed () in
           let inst = Instance.generate config in
           match
             Solve.run ~seed sbu inst.Instance.app inst.Instance.platform
           with
           | Error _ ->
             [ string_of_int n; string_of_int seed; "-"; "-"; "-"; "infeasible" ]
           | Ok o ->
             (* Horizon long enough to dominate the pipeline-fill
                transient of deep mappings. *)
             let r =
               Runtime.run ~horizon:240.0 inst.Instance.app
                 inst.Instance.platform o.Solve.alloc
             in
             [
               string_of_int n;
               string_of_int seed;
               string_of_int o.Solve.n_procs;
               Printf.sprintf "%.2f" r.Runtime.target_throughput;
               Printf.sprintf "%.3f" r.Runtime.achieved_throughput;
               (if Runtime.sustains_target r then "yes" else "NO");
             ])
  in
  List.iter (Table.add_row table) rows;
  Table.render table

let serve_tenancy ?(seeds = [ 1; 2; 3 ]) ?(n_apps = 1000) () =
  let module Serve = Insp_serve.Serve in
  let module Stream = Insp_serve.Stream in
  (* Budget and card scale chosen so both shared resources bind on the
     default stream: the processor budget and (scaled) server cards each
     cause a visible share of the rejections. *)
  let variants =
    [
      ("static", Serve.Static_slicing, false);
      ("shared", Serve.Shared, false);
      ("shared+reopt", Serve.Shared, true);
    ]
  in
  let grid =
    List.concat_map
      (fun v -> List.map (fun seed -> (v, seed)) seeds)
      variants
  in
  let totals =
    Par_sweep.map
      (fun ((_, tenancy, reoptimize), seed) ->
        let spec = Stream.make ~n_apps ~seed () in
        let params =
          Serve.make_params
            ~base:(Config.make ~n_operators:60 ~seed ())
            ~tenancy ~proc_budget:128 ~card_scale:0.08 ~reoptimize ()
        in
        Serve.totals (Serve.run params (Stream.events spec)))
      grid
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "[serve] online multi-tenant service: %d-application streams, \
            mean over seeds {%s}"
           n_apps
           (String.concat "," (List.map string_of_int seeds)))
      [
        ("model", Table.Left);
        ("admitted", Table.Right);
        ("rejected", Table.Right);
        ("reject %", Table.Right);
        ("net cost ($)", Table.Right);
      ]
  in
  List.iter
    (fun (label, _, _) ->
      let mine =
        List.filter_map
          (fun (((l, _, _), _), tot) ->
            if l = label then Some tot else None)
          (List.combine grid totals)
      in
      let k = float_of_int (List.length mine) in
      let meanf f = List.fold_left (fun a s -> a +. f s) 0.0 mine /. k in
      Table.add_row table
        [
          label;
          Printf.sprintf "%.1f"
            (meanf (fun s -> float_of_int s.Insp_serve.Serve.admitted));
          Printf.sprintf "%.1f"
            (meanf (fun s -> float_of_int s.Insp_serve.Serve.rejected));
          Printf.sprintf "%.1f"
            (meanf (fun s -> 100.0 *. Serve.rejection_rate s));
          Printf.sprintf "%.0f" (meanf (fun s -> s.Insp_serve.Serve.net_cost));
        ])
    variants;
  Table.render table

let faults_resilience ?(seeds = [ 1; 2; 3 ]) ?(n = 40) ?(n_events = 10) () =
  let module Scenario = Insp_faults.Scenario in
  let module Engine = Insp_faults.Engine in
  let module Redundancy = Insp_faults.Redundancy in
  let sbu = List.find (fun h -> h.Solve.key = "sbu") Solve.all in
  let runs =
    Par_sweep.map
      (fun seed ->
        let config = Config.make ~n_operators:n ~alpha:0.9 ~seed () in
        let inst = Instance.generate config in
        match Solve.run ~seed sbu inst.Instance.app inst.Instance.platform with
        | Error _ -> (seed, None)
        | Ok o ->
          let timeline =
            Scenario.generate (Scenario.make ~seed ~n_events ~mean_burst:2 ())
          in
          let report =
            Engine.run (Engine.make_spec ()) inst.Instance.app
              inst.Instance.platform o.Solve.alloc timeline
          in
          let frontier =
            Redundancy.frontier ~k_max:2 inst.Instance.app
              inst.Instance.platform o.Solve.alloc
          in
          (seed, Some (o, report, frontier)))
      seeds
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "[faults] crash/repair resilience of SBU mappings, N=%d, \
            %d-event timelines"
           n n_events)
      [
        ("seed", Table.Right);
        ("procs", Table.Right);
        ("episodes", Table.Right);
        ("crashes", Table.Right);
        ("downtime (s)", Table.Right);
        ("realloc ($)", Table.Right);
        ("worst dip", Table.Right);
        ("status", Table.Left);
      ]
  in
  List.iter
    (fun (seed, cell) ->
      match cell with
      | None ->
        Table.add_row table
          [ string_of_int seed; "-"; "-"; "-"; "-"; "-"; "-"; "infeasible" ]
      | Some (o, r, _) ->
        Table.add_row table
          [
            string_of_int seed;
            string_of_int o.Solve.n_procs;
            string_of_int (List.length r.Engine.episodes);
            string_of_int r.Engine.n_crashes;
            Printf.sprintf "%.1f" r.Engine.total_downtime;
            Printf.sprintf "%.0f" r.Engine.total_realloc_cost;
            (match r.Engine.worst_dip with
            | Some d -> Printf.sprintf "%.0f%%" (100.0 *. d)
            | None -> "-");
            (match r.Engine.infeasible_at with
            | Some t -> Printf.sprintf "infeasible@%.0f" t
            | None -> "ok");
          ])
    runs;
  (* Cost-of-resilience frontier: platform cost after hardening against
     any K simultaneous crashes with migration-only repair. *)
  let points =
    List.map
      (fun k ->
        let costs =
          List.filter_map
            (fun (_, cell) ->
              match cell with
              | None -> None
              | Some (_, _, frontier) -> (
                match List.find_opt (fun (k', _) -> k' = k) frontier with
                | Some (_, Ok h) -> Some h.Redundancy.cost
                | Some (_, Error _) | None -> None))
            runs
        in
        {
          Figure.x = float_of_int k;
          cells =
            [ ("SBU+spares", Figure.cell_of_costs ~attempts:(List.length seeds) costs) ];
        })
      [ 0; 1; 2 ]
  in
  let fig =
    {
      Figure.id = "faults-k";
      title =
        Printf.sprintf
          "cost of K-failure resilience (migration-only repair), N=%d" n;
      xlabel = "K";
      points;
      notes =
        [
          "spares are bought at the top configuration, then downgraded to \
           the cheapest preserving K-resilience";
        ];
    }
  in
  Table.render table ^ "\n" ^ Figure.render fig

let all_ids =
  [ "fig2a"; "fig2b"; "fig3"; "fig3-n20"; "large"; "lowfreq"; "rates";
    "ilp"; "sharing"; "rewrite"; "replication"; "serve"; "simcheck";
    "faults" ]

let run_by_id ?(quick = false) ?(seed = 1) ?(jobs = 1) id =
  let seeds = List.init (if quick then 2 else 5) (fun i -> seed + i) in
  let ns = if quick then [ 20; 60 ] else default_ns in
  Par_sweep.with_jobs jobs @@ fun () ->
  Obs.span ("experiment." ^ id) @@ fun () ->
  match id with
  | "fig2a" -> Some (Figure.render (fig2a ~seeds ~ns ()))
  | "fig2b" -> Some (Figure.render (fig2b ~seeds ~ns ()))
  | "fig3" ->
    let alphas = if quick then [ 0.9; 1.7; 2.0 ] else default_alphas in
    Some (Figure.render (fig3 ~seeds ~alphas ()))
  | "fig3-n20" ->
    let alphas = if quick then [ 0.9; 1.9; 2.3 ] else default_alphas in
    Some (Figure.render (fig3 ~seeds ~alphas ~n:20 ()))
  | "large" ->
    let ns = if quick then [ 20; 45; 60 ] else [ 10; 20; 30; 40; 45; 50; 60 ] in
    Some (Figure.render (large_objects ~seeds ~ns ()))
  | "lowfreq" -> Some (Figure.render (low_frequency ~seeds ~ns ()))
  | "rates" ->
    let periods = if quick then [ 2.0; 50.0 ] else [ 2.0; 5.0; 10.0; 20.0; 50.0 ] in
    Some (Figure.render (rate_sweep ~seeds ~periods ()))
  | "ilp" ->
    let ns = if quick then [ 5; 8 ] else [ 5; 8; 11; 14; 17; 20 ] in
    Some (Figure.render (ilp_compare ~seeds ~ns ()))
  | "rewrite" ->
    let ns = if quick then [ 8; 12 ] else [ 8; 12; 16; 20 ] in
    Some (Figure.render (rewrite ~seeds ~ns ()))
  | "sharing" ->
    let n_apps_list = if quick then [ 1; 3 ] else [ 1; 2; 3; 4; 5 ] in
    Some (Figure.render (sharing ~seeds ~n_apps_list ()))
  | "replication" ->
    let copy_ranges =
      if quick then [ (1, 1); (3, 3) ]
      else [ (1, 1); (1, 2); (2, 2); (3, 3); (4, 4) ]
    in
    Some (Figure.render (Ablations.replication ~seeds ~copy_ranges ()))
  | "serve" ->
    let n_apps = if quick then 120 else 1000 in
    let seeds = List.init (if quick then 1 else 3) (fun i -> seed + i) in
    Some (serve_tenancy ~seeds ~n_apps ())
  | "simcheck" ->
    let ns = if quick then [ 20 ] else [ 20; 60 ] in
    let seeds = List.init (if quick then 1 else 3) (fun i -> seed + i) in
    Some (sim_validation ~seeds ~ns ())
  | "faults" ->
    let n = if quick then 20 else 40 in
    let n_events = if quick then 6 else 10 in
    let seeds = List.init (if quick then 1 else 3) (fun i -> seed + i) in
    Some (faults_resilience ~seeds ~n ~n_events ())
  | _ -> None

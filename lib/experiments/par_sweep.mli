(** Deterministic domain-parallel sweep runner.

    Experiment sweeps decompose into independent (configuration, seed)
    cells.  {!map} runs those cells across [jobs] {!Domain} workers
    while guaranteeing output {e identical} to a sequential run:

    - {b static partition} — cell [i] belongs to worker [i mod jobs];
      no work stealing, no scheduling dependence;
    - {b per-cell observability} — every cell runs under its own fresh
      {!Insp_obs.Obs} sink (even at [jobs = 1], so the two regimes have
      the same semantics); the recorders are absorbed into the caller's
      sink in canonical cell order after all workers join, making merged
      metrics independent of the worker count;
    - {b per-cell PRNG streams} — {!map_seeded} derives one SplitMix64
      stream per {e cell} (not per worker) by splitting a master
      generator in cell order on the calling domain.

    Result lists preserve item order.  This module is the only
    sanctioned [Domain.spawn] site in the library (lint rule D4) —
    route any parallelism through it.

    See DESIGN.md §11. *)

(* lint: allow t3 — documented default for manual sweep parallelism *)
val default_jobs : unit -> int
(** Ambient worker count for {!map} when [?jobs] is omitted; 1 unless
    inside {!with_jobs}.  Domain-local. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** [with_jobs n f] runs [f] with the ambient worker count set to [n]
    (restored afterwards, also on exceptions).  This is how [--jobs]
    reaches sweep internals without threading a parameter through every
    experiment builder.  Raises [Invalid_argument] if [n < 1]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] is [List.map f items], computed by [jobs]
    domains (clamped to the number of items).  [f] must be safe to run
    on a fresh domain and must not depend on ambient mutable state
    other than the observability sink.  If any cell raises, all workers
    are still joined and the lowest-indexed cell's exception is
    re-raised.  Defaults to {!default_jobs}. *)

val map_seeded :
  ?jobs:int -> seed:int -> (Insp_util.Prng.t -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map}, but hands cell [i] its own generator, split from
    [Prng.create seed] in cell order — streams depend only on [seed]
    and the cell index, never on [jobs]. *)

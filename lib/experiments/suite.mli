(** The reproduced experiments — one entry per table/figure of the
    paper's evaluation (§5), plus the §5 text-only experiments and an
    extra simulator cross-validation.  See DESIGN.md §4 for the
    experiment index and EXPERIMENTS.md for paper-vs-measured notes.

    Every experiment averages over several seeds; deterministic given
    the seed list. *)

(* lint: allow t3 — experiment preset kept for manual runs *)
val default_seeds : int list
(** [1..5]. *)

val fig2a : ?seeds:int list -> ?ns:int list -> unit -> Figure.t
(** Figure 2(a): cost vs N, alpha = 0.9, high frequency, small objects. *)

val fig2b : ?seeds:int list -> ?ns:int list -> unit -> Figure.t
(** Figure 2(b): same, alpha = 1.7. *)

val fig3 : ?seeds:int list -> ?alphas:float list -> ?n:int -> unit -> Figure.t
(** Figure 3: cost vs alpha at fixed N (default 60, the paper's figure;
    N = 20 reproduces the §5 text's threshold discussion). *)

val large_objects : ?seeds:int list -> ?ns:int list -> unit -> Figure.t
(** §5 text: large objects (450-530 MB); feasibility collapses beyond
    N ~ 45. *)

(* lint: allow t3 — experiment preset kept for manual runs *)
val low_frequency : ?seeds:int list -> ?ns:int list -> unit -> Figure.t
(** §5 text: low download frequency (1/50 s); mappings mostly unchanged,
    cheaper network cards. *)

(* lint: allow t3 — experiment preset kept for manual runs *)
val rate_sweep : ?seeds:int list -> ?periods:float list -> ?n:int -> unit -> Figure.t
(** §5 text: influence of the download rate; frequencies below 1/10 s
    stop affecting the solution.  The x axis is the refresh period in
    seconds; the tree is held fixed per seed across frequencies. *)

val ilp_compare : ?seeds:int list -> ?ns:int list -> unit -> Figure.t
(** §5 last experiment: heuristics vs the exact optimum (our
    branch-and-bound standing in for CPLEX) on a homogeneous platform,
    plus the quick lower bound.  Extra series: "Exact" and "Bound". *)

val rewrite : ?seeds:int list -> ?ns:int list -> ?alpha:float -> unit -> Figure.t
(** Extension (paper §6 future work): mutable applications.  For the
    same leaf multiset, provisioning cost (SBU) of the left-deep chain,
    the original random shape, the balanced tree and a hill-climbed
    shape; series over tree size. *)

val sharing : ?seeds:int list -> ?n_apps_list:int list -> ?n:int -> unit -> Figure.t
(** Extension (paper §6 future work): concurrent correlated applications
    placed with and without common-subexpression sharing; series
    "No sharing" and "CSE sharing", x = number of applications. *)

(* lint: allow t3 — experiment preset kept for manual runs *)
val serve_tenancy : ?seeds:int list -> ?n_apps:int -> unit -> string
(** Extension (online service): static slicing vs shared substrate vs
    shared-with-reoptimization on the {!Insp_serve} event stream;
    reports mean admitted/rejected counts, rejection rate and net cost
    over the seed list.  Rendered as its own table. *)

val sim_validation : ?seeds:int list -> ?ns:int list -> unit -> string
(** Extra (not in the paper): every feasible Subtree-bottom-up mapping is
    executed in the discrete-event runtime; reports achieved vs target
    throughput.  Rendered as its own table. *)

(* lint: allow t3 — experiment preset kept for manual runs *)
val faults_resilience :
  ?seeds:int list -> ?n:int -> ?n_events:int -> unit -> string
(** Extension (fault injection): SBU mappings driven through seeded
    fault timelines ({!Insp_faults}); reports per-seed downtime,
    re-allocation cost and worst measured throughput dip, plus the
    K in {0,1} cost-of-resilience frontier figure. *)

val all_ids : string list
(** In DESIGN.md order: fig2a fig2b fig3 fig3-n20 large lowfreq rates ilp
    sharing rewrite replication serve simcheck faults. *)

val run_by_id : ?quick:bool -> ?seed:int -> ?jobs:int -> string -> string option
(** Rendered experiment output; [quick] shrinks seeds and sweep points
    (used by tests).  [seed] (default 1) is the base of the consecutive
    seed list ([seed .. seed+4], or [seed .. seed+1] when quick), so the
    default reproduces {!default_seeds}.  [jobs] (default 1) is the
    {!Par_sweep} worker count — the rendered output and merged metrics
    are identical for every value.  Runs under an [experiment.<id>]
    observability span.  [None] for an unknown id. *)

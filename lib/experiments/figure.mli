(** Data model and rendering for reproduced paper figures.

    A figure is a family of series (one per heuristic) over an x axis
    (tree size N, computation factor alpha, download frequency...).  Each
    point is the mean cost over the seeds whose run was feasible;
    a point is reported missing ([None]) when fewer than half the seeds
    produced a feasible mapping — mirroring the paper's curves that stop
    where "almost no feasible mapping can be found". *)

type cell = {
  mean_cost : float option;
  successes : int;
  attempts : int;
}

type point = { x : float; cells : (string * cell) list }

type t = {
  id : string;  (** e.g. "fig2a" *)
  title : string;
  xlabel : string;
  points : point list;
  notes : string list;
}

val cell_of_costs : attempts:int -> float list -> cell
(** Mean over the feasible costs; [mean_cost = None] when
    [2 * successes < attempts]. *)

val render : t -> string
(** Aligned text table followed by a CSV block. *)

(* lint: allow t3 — alternative CSV export kept alongside the JSON figure path *)
val to_csv : t -> Insp_util.Csv.t

val series_names : t -> string list
(** Column order of the first point. *)

val winner_counts : t -> (string * int) list
(** Per heuristic: at how many x points it achieves the (strictly)
    lowest plotted mean cost.  Used to summarise rankings. *)

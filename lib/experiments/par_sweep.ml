module Obs = Insp_obs.Obs
module Prng = Insp_util.Prng

let jobs_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 1)

let default_jobs () = Domain.DLS.get jobs_key

let with_jobs n f =
  if n < 1 then invalid_arg "Par_sweep.with_jobs: jobs < 1";
  let prev = Domain.DLS.get jobs_key in
  Domain.DLS.set jobs_key n;
  Fun.protect ~finally:(fun () -> Domain.DLS.set jobs_key prev) f

let map ?jobs f items =
  let jobs =
    match jobs with
    | Some j -> if j < 1 then invalid_arg "Par_sweep.map: jobs < 1" else j
    | None -> default_jobs ()
  in
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  (* Every cell runs under its own fresh sink regardless of [jobs]:
     sequential and parallel runs record the exact same metrics, and
     workers never share a registry.  Cell spans are dropped by
     [Obs.absorb] (timing-only contract). *)
  (* Journal inheritance must be captured here, on the calling domain:
     worker domains have no enclosing sink in their DLS, so [with_sink]'s
     inherit-from-prev default would silently disable journaling for
     every cell a spawned worker runs. *)
  let journal = Obs.journaling () in
  let journal_depth = Obs.journal_depth () in
  (* Profiling is captured here for the same reason; workers get their
     own fresh Prof.t (explicit [~profile], never shared across
     domains), and [Obs.absorb] folds worker rows back in canonical
     cell order, keeping the merged profile independent of [jobs]. *)
  let profile = Obs.profiling () in
  let run_cell i =
    try Ok (Obs.with_sink ~journal ~journal_depth ~profile (fun () -> f items.(i)))
    with e -> Error (i, e)
  in
  let results = Array.make n None in
  let store = List.iter (fun (i, r) -> results.(i) <- Some r) in
  if jobs = 1 then
    for i = 0 to n - 1 do
      results.(i) <- Some (run_cell i)
    done
  else begin
    (* Static stride partition: cell i -> worker (i mod jobs).  Worker 0
       is the calling domain, so [jobs] means [jobs] busy domains
       total. *)
    let worker w () =
      let acc = ref [] in
      let i = ref w in
      while !i < n do
        acc := (!i, run_cell !i) :: !acc;
        i := !i + jobs
      done;
      !acc
    in
    let spawned = List.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    store (worker 0 ());
    (* Cell exceptions are carried as values, so joins only raise on a
       crashed worker loop — and every domain is joined either way. *)
    List.iter (fun d -> store (Domain.join d)) spawned
  end;
  (* Absorb recorders into the caller's sink in canonical cell order —
     this is what makes merged metrics independent of [jobs] — then
     surface the lowest-indexed failure, if any. *)
  let failed = ref None in
  let out =
    Array.map
      (fun r ->
        match r with
        | None -> assert false (* every index is stored exactly once *)
        | Some (Ok (v, recorder)) ->
          Obs.absorb recorder;
          Some v
        | Some (Error (i, e)) ->
          (match !failed with
          | Some (j, _) when j <= i -> ()
          | _ -> failed := Some (i, e));
          None)
      results
  in
  match !failed with
  | Some (_, e) -> raise e
  | None ->
    Array.to_list (Array.map (function Some v -> v | None -> assert false) out)

let map_seeded ?jobs ~seed f items =
  let master = Prng.create seed in
  (* Split in cell order on the calling domain: stream i is a function
     of (seed, i) only, never of the worker layout. *)
  let cells = List.map (fun item -> (Prng.split master, item)) items in
  map ?jobs (fun (prng, item) -> f prng item) cells

(** Catalog of basic-object types.

    A basic object is a continuously-updated piece of data (a sensor
    stream, a database relation fragment) identified by its type index.
    Each type [k] has a size [delta_k] in MB and a refresh frequency
    [f_k] in 1/s; a processor using the object must download it at rate
    [rate_k = delta_k * f_k] MB/s (paper §2.1). *)

type t

val make : sizes:float array -> freqs:float array -> t
(** Arrays must have equal positive length, sizes strictly positive,
    frequencies strictly positive. *)

val uniform_freq : sizes:float array -> freq:float -> t
(** All types share one download frequency (the paper's high/low
    regimes). *)

val count : t -> int
(** Number of object types. *)

val size : t -> int -> float
(** [size t k] is [delta_k] in MB. *)

val freq : t -> int -> float
(** [freq t k] is [f_k] in 1/s. *)

val rate : t -> int -> float
(** [rate t k = delta_k * f_k] in MB/s — bandwidth consumed on every
    network card and link the object crosses. *)

val with_freq : t -> float -> t
(** Same sizes, new uniform frequency (used by the download-rate sweep
    experiment). *)

(* lint: allow t3 — model accessor completing the Objects API *)
val sizes : t -> float array
(** Copy of the size array. *)

(* lint: allow t3 — debugging printer *)
val pp : Format.formatter -> t -> unit

(** Graphviz export of operator trees, for documentation and debugging. *)

(* lint: allow t3 — Graphviz export for manual inspection *)
val of_tree : Optree.t -> string
(** DOT digraph with operators as boxes and object leaves as ellipses. *)

val of_app : App.t -> string
(** Same, with each operator annotated by [w_i] and [delta_i]. *)

val save : string -> string -> unit
(** [save dot path] writes the DOT text to [path]. *)

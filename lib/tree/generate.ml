module Prng = Insp_util.Prng

(* Two worklist passes replace the old spec-recursive construction in
   O(n) heap with no call stack proportional to the tree height, while
   reproducing its trees byte-for-byte on every seed.  That demands two
   *different* orders: the recursive original evaluated
   [Op (build left, build right)] under OCaml's right-to-left argument
   order, so every right subtree consumed PRNG draws before its left
   sibling (split first, then the whole right subtree, then the left) —
   but [of_spec] then numbered operators in left-first preorder over the
   finished spec.  The draw pass below walks right-subtree-first
   allocating temporary ids; the numbering pass re-walks left-first
   preorder to produce the final ids.  A node input is encoded as a
   temporary id (>= 0) or an object leaf ([-1 - k]).  The split point is
   uniform, which yields a healthy mix of skewed and balanced shapes. *)
let random_shape rng ~n_operators ~n_object_types =
  if n_operators < 1 then invalid_arg "Generate.random_shape: n_operators >= 1";
  if n_object_types < 1 then
    invalid_arg "Generate.random_shape: n_object_types >= 1";
  (* Draw pass: task = (budget, parent temp id, is left input).  n = 0
     is a bare object leaf.  Right task pushed on top so it pops (and
     draws) first, like the recursive original. *)
  let left_in = Array.make n_operators 0 in
  let right_in = Array.make n_operators 0 in
  let set_input t ~is_left v =
    if is_left then left_in.(t) <- v else right_in.(t) <- v
  in
  let next = ref 0 in
  let stack = ref [ (n_operators, -1, false) ] in
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | (n, par, is_left) :: rest ->
      stack := rest;
      if n = 0 then begin
        let k = Prng.int rng n_object_types in
        (* par >= 0: the root task has n >= 1 *)
        set_input par ~is_left (-1 - k)
      end
      else begin
        let id = !next in
        incr next;
        if par >= 0 then set_input par ~is_left id;
        let left_ops = Prng.int rng n in
        let right_ops = n - 1 - left_ops in
        stack := (right_ops, id, false) :: (left_ops, id, true) :: !stack
      end
  done;
  (* Numbering pass: left-first preorder over the temp nodes (temp id 0
     is the root).  Left child pushed on top so it pops first; children
     and leaves therefore accumulate in left-right order once
     reversed. *)
  let parent = Array.make n_operators None in
  let children = Array.make n_operators [] in
  let leaves = Array.make n_operators [] in
  let fresh = ref 0 in
  let stack = ref [ (0, -1) ] in
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | (t, par) :: rest ->
      stack := rest;
      let id = !fresh in
      incr fresh;
      if par >= 0 then parent.(id) <- Some par;
      let handle v =
        if v < 0 then leaves.(id) <- (-1 - v) :: leaves.(id)
        else children.(id) <- v :: children.(id)
      in
      handle left_in.(t);
      handle right_in.(t);
      (* children currently holds temp ids in right-left order; pushing
         in that order puts the left child on top of the stack. *)
      List.iter (fun c -> stack := (c, id) :: !stack) children.(id);
      children.(id) <- []
  done;
  (* Rebuild the children lists in final-id space: every non-root node
     pops after its parent, so parents are final by then, and the
     left-first preorder means a parent's children pop in left-right
     order with ascending final ids. *)
  for id = n_operators - 1 downto 1 do
    match parent.(id) with
    | Some p -> children.(p) <- id :: children.(p)
    | None -> assert false
  done;
  for i = 0 to n_operators - 1 do
    leaves.(i) <- List.rev leaves.(i)
  done;
  Optree.of_arrays ~n_object_types ~parent ~children ~leaves

let balanced_shape ~n_operators ~n_object_types =
  if n_operators < 1 then invalid_arg "Generate.balanced_shape: n_operators >= 1";
  if n_object_types < 1 then
    invalid_arg "Generate.balanced_shape: n_object_types >= 1";
  let next_obj = ref 0 in
  let leaf () =
    let k = !next_obj mod n_object_types in
    incr next_obj;
    Optree.Obj k
  in
  let rec build n =
    if n = 0 then leaf ()
    else begin
      let left_ops = (n - 1) / 2 in
      Optree.Op (build left_ops, build (n - 1 - left_ops))
    end
  in
  Optree.of_spec ~n_object_types (build n_operators)

let random_left_deep rng ~n_operators ~n_object_types =
  if n_operators < 1 then
    invalid_arg "Generate.random_left_deep: n_operators >= 1";
  let objects =
    Array.init (n_operators + 1) (fun _ -> Prng.int rng n_object_types)
  in
  (* left_deep infers the object-type count from the labels; rebuild the
     spec here so the declared catalog keeps its full width. *)
  let rec build i =
    if i = n_operators - 1 then
      Optree.Op (Optree.Obj objects.(i), Optree.Obj objects.(i + 1))
    else Optree.Op (build (i + 1), Optree.Obj objects.(i))
  in
  Optree.of_spec ~n_object_types (build 0)

let random_sizes rng ~n_object_types ~lo ~hi =
  if lo <= 0.0 || hi < lo then invalid_arg "Generate.random_sizes: bad range";
  Array.init n_object_types (fun _ -> Prng.float_range rng lo hi)

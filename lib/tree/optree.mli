(** Operator-tree structure (paper §2.1).

    Internal nodes are operators; leaves are references to basic-object
    types.  The tree is binary: each operator has at most two inputs in
    total, counting both operator children and object leaves
    ([|Leaf(i)| + |Ch(i)| <= 2]).  Several leaves may reference the same
    object type.

    Operators are identified by dense integer ids [0 .. n_operators-1];
    id assignment is in preorder from the root, so the root is always
    operator [0]. *)

type spec =
  | Obj of int  (** a leaf: basic-object type index *)
  | Op1 of spec  (** unary operator *)
  | Op of spec * spec  (** binary operator *)

type node = private {
  id : int;
  parent : int option;  (** [None] for the root *)
  children : int list;  (** operator children ids (Ch(i)), <= 2 *)
  leaves : int list;  (** basic-object type indices (Leaf(i)), <= 2 *)
}

type t

val of_spec : n_object_types:int -> spec -> t
(** Builds a tree from a spec.  Raises [Invalid_argument] if the spec
    root is a bare object, or if any object index is outside
    [\[0, n_object_types)]. *)

val of_arrays :
  n_object_types:int ->
  parent:int option array ->
  children:int list array ->
  leaves:int list array ->
  t
(** Builds a tree directly from per-operator arrays (index = operator
    id), for generators that assemble large trees without a recursive
    {!spec}.  Runs {!validate} and raises [Invalid_argument] on any
    structural violation (including non-preorder ids). *)

val n_operators : t -> int

val n_object_types : t -> int

val root : t -> int
(** Always [0]. *)

(* lint: allow t3 — constructor completing the tree-building API *)
val node : t -> int -> node

val parent : t -> int -> int option

val children : t -> int -> int list

val leaves : t -> int -> int list
(** Object types the operator downloads directly (Leaf(i)). *)

val is_al_operator : t -> int -> bool
(** True when the operator has at least one object leaf ("almost-leaf"
    operator, paper §2.1). *)

val al_operators : t -> int list
(** In increasing id order. *)

val preorder : t -> int list
(** Root first. *)

val postorder : t -> int list
(** Children before parents; the root is last. *)

val depth : t -> int -> int
(** Distance from the root (root has depth 0). *)

val height : t -> int
(** Maximum operator depth. *)

val object_popularity : t -> int array
(** [popularity.(k)] = number of operators whose leaf set contains object
    type [k] (paper's Object-Grouping popularity count).  Multiple leaves
    of the same type under one operator count once. *)

val leaf_instances : t -> (int * int) list
(** All [(operator, object_type)] leaf pairs, one per leaf occurrence. *)

val subtree : t -> int -> int list
(** All operator ids in the subtree rooted at the given operator
    (inclusive), in preorder. *)

val to_spec : t -> spec
(** Inverse of {!of_spec} up to id assignment and input order (object
    leaves are listed before operator children): rebuilding with
    [of_spec] yields the same computation with the same shape. *)

val validate : t -> (unit, string) result
(** Re-checks all structural invariants (binary arity, parent/child
    symmetry, preorder ids, reachability).  Used by tests. *)

val left_deep : n_operators:int -> objects:int array -> t
(** Builds a left-deep tree (paper Fig. 1(b)): operator [i] has operator
    [i+1] as its left input (except the deepest, which has two object
    leaves) and one object leaf.  [objects] supplies the leaf object
    types from the root's leaf downward and must have length
    [n_operators + 1].  Requires [n_operators >= 1]. *)

val pp : Format.formatter -> t -> unit

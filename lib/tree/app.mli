(** A complete application: operator tree + object catalog + cost model.

    Following the paper's simulation methodology (§5), the computation
    amount of operator [i] with inputs [l] and [r] is
    [w_i = (delta_l + delta_r)^alpha] Mops, and its output size is
    [delta_i = delta_l + delta_r] MB, where an input's [delta] is either
    the basic object's size or the child operator's output size.  The
    target throughput is [rho] results per second (the paper fixes
    [rho = 1]). *)

type t

val make :
  ?rho:float ->
  ?base_work:float ->
  ?work_factor:float ->
  tree:Optree.t ->
  objects:Objects.t ->
  alpha:float ->
  unit ->
  t
(** Computes [w_i] and [delta_i] bottom-up with
    [w_i = base_work + work_factor * (delta_l + delta_r)^alpha].
    [base_work] (default 0) is a fixed per-operator overhead;
    [work_factor] (default 1) converts MB^alpha to Mops.  The paper's
    formula is the special case (0, 1); the workload generator uses
    calibrated values to anchor per-processor operator capacity and the
    alpha feasibility thresholds (see DESIGN.md §3).  Raises
    [Invalid_argument] if the tree references object types beyond the
    catalog, if [rho], [alpha] or [work_factor] is not strictly
    positive, or if [base_work] is negative. *)

val tree : t -> Optree.t
val objects : t -> Objects.t
val alpha : t -> float
val base_work : t -> float
val work_factor : t -> float
val rho : t -> float
(** Required application throughput (results/s). *)

val n_operators : t -> int

val work : t -> int -> float
(** [work t i] = [w_i] in Mops per result. *)

val output_size : t -> int -> float
(** [output_size t i] = [delta_i] in MB per result. *)

(* lint: allow t3 — model accessor completing the App API *)
val input_size : t -> int -> float
(** Sum of the operator's input sizes (equals [delta_i] under the paper's
    additive output model). *)

val comm_volume : t -> int -> float
(** [comm_volume t i] = [rho * delta_i]: the MB/s that flow from operator
    [i] to its parent when they sit on different processors. *)

val download_rate : t -> int -> float
(** [download_rate t k] = [rate_k] for object type [k] (MB/s). *)

val edge_weight : t -> int -> float
(** Communication weight of the tree edge between operator [i] and its
    parent: [rho * delta_i]; the root has weight [0].  Used by heuristics
    to rank "most demanding communication requirements". *)

val total_work : t -> float
(** Sum of all [w_i] (Mops per result). *)

val total_leaf_mass : t -> float
(** Sum over leaf instances of the object sizes (MB); with additive
    outputs this equals the root's output size. *)

val heaviest_operator : t -> int
(** Operator id with the largest [w_i]. *)

(* lint: allow t3 — debugging printer *)
val pp : Format.formatter -> t -> unit

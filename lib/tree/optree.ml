type spec =
  | Obj of int
  | Op1 of spec
  | Op of spec * spec

type node = {
  id : int;
  parent : int option;
  children : int list;
  leaves : int list;
}

type t = { nodes : node array; n_object_types : int }

(* Ids are assigned in preorder: an operator gets the next free id, then
   its left subtree is numbered, then its right subtree. *)
let of_spec ~n_object_types spec =
  (match spec with
  | Obj _ -> invalid_arg "Optree.of_spec: root must be an operator"
  | Op1 _ | Op _ -> ());
  let acc = ref [] in
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let check_obj k =
    if k < 0 || k >= n_object_types then
      invalid_arg "Optree.of_spec: object type out of range";
    k
  in
  (* Returns (children_ids, leaf_types) contribution of a child spec. *)
  let rec build parent s =
    let id = fresh () in
    let sub_children = ref [] in
    let sub_leaves = ref [] in
    let handle_input input =
      match input with
      | Obj k -> sub_leaves := check_obj k :: !sub_leaves
      | Op1 _ | Op _ ->
        let child_id = build (Some id) input in
        sub_children := child_id :: !sub_children
    in
    (match s with
    | Obj _ -> assert false
    | Op1 a -> handle_input a
    | Op (a, b) ->
      handle_input a;
      handle_input b);
    acc :=
      {
        id;
        parent;
        children = List.rev !sub_children;
        leaves = List.rev !sub_leaves;
      }
      :: !acc;
    id
  in
  let root_id = build None spec in
  assert (root_id = 0);
  let nodes =
    match !acc with
    | [] -> assert false (* build always pushes at least the root *)
    | first :: _ -> Array.make !next first
  in
  List.iter (fun n -> nodes.(n.id) <- n) !acc;
  { nodes; n_object_types }

let n_operators t = Array.length t.nodes
let n_object_types t = t.n_object_types
let root _ = 0
let node t i = t.nodes.(i)
let parent t i = t.nodes.(i).parent
let children t i = t.nodes.(i).children
let leaves t i = t.nodes.(i).leaves
let is_al_operator t i = t.nodes.(i).leaves <> []

let al_operators t =
  Array.to_list t.nodes
  |> List.filter_map (fun n -> if n.leaves <> [] then Some n.id else None)

(* The traversals are iterative with an explicit stack: the recursive
   versions cost O(n · height) in list appends and risk stack overflow
   on the 100k-operator scale instances. *)
let preorder_from t start =
  let acc = ref [] in
  let stack = ref [ start ] in
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | i :: rest ->
      acc := i :: !acc;
      (* children in order on top: the leftmost is processed first *)
      stack := t.nodes.(i).children @ rest
  done;
  List.rev !acc

let preorder t = preorder_from t 0

let postorder t =
  (* Reverse of a walk that emits each node before its children and
     visits the children right to left: pushing the children in order
     makes the rightmost pop first, and prepending to [acc] reverses the
     emission. *)
  let acc = ref [] in
  let stack = ref [ 0 ] in
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | i :: rest ->
      acc := i :: !acc;
      stack := List.rev_append t.nodes.(i).children rest
  done;
  !acc

let depth t i =
  let rec up acc = function
    | None -> acc
    | Some p -> up (acc + 1) (parent t p)
  in
  up 0 (parent t i)

let height t =
  Array.fold_left (fun acc n -> max acc (depth t n.id)) 0 t.nodes

let object_popularity t =
  let pop = Array.make t.n_object_types 0 in
  Array.iter
    (fun n ->
      List.sort_uniq compare n.leaves
      |> List.iter (fun k -> pop.(k) <- pop.(k) + 1))
    t.nodes;
  pop

let leaf_instances t =
  Array.to_list t.nodes
  |> List.concat_map (fun n -> List.map (fun k -> (n.id, k)) n.leaves)

let subtree t i = preorder_from t i

let to_spec t =
  let rec build i =
    let nd = t.nodes.(i) in
    let inputs =
      List.map (fun k -> Obj k) nd.leaves
      @ List.map build nd.children
    in
    match inputs with
    | [ a ] -> Op1 a
    | [ a; b ] -> Op (a, b)
    | _ -> assert false (* arity checked at construction *)
  in
  build 0

let validate t =
  let n = Array.length t.nodes in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec check i =
    if i >= n then Ok ()
    else begin
      let nd = t.nodes.(i) in
      if nd.id <> i then fail "node %d stores id %d" i nd.id
      else if List.length nd.children + List.length nd.leaves > 2 then
        fail "node %d has arity > 2" i
      else if
        List.exists (fun k -> k < 0 || k >= t.n_object_types) nd.leaves
      then fail "node %d references an unknown object type" i
      else if
        List.exists
          (fun c -> c < 0 || c >= n || t.nodes.(c).parent <> Some i)
          nd.children
      then fail "node %d has asymmetric child links" i
      else check (i + 1)
    end
  in
  match check 0 with
  | Error _ as e -> e
  | Ok () ->
    if n = 0 then Error "empty tree"
    else if t.nodes.(0).parent <> None then Error "root has a parent"
    else begin
      let visited = List.sort_uniq compare (preorder t) in
      if List.length visited <> n then
        Error "tree is not fully reachable from the root"
      else Ok ()
    end

(* Direct array constructor for generators that build large trees
   without going through a recursive [spec] (DESIGN.md §16): [of_spec]
   recursion is bounded by the tree height, which a pathological shape
   can push to the operator count. *)
let of_arrays ~n_object_types ~parent ~children ~leaves =
  let n = Array.length parent in
  if n = 0 then invalid_arg "Optree.of_arrays: empty tree";
  if Array.length children <> n || Array.length leaves <> n then
    invalid_arg "Optree.of_arrays: array lengths disagree";
  let nodes =
    Array.init n (fun id ->
        { id; parent = parent.(id); children = children.(id);
          leaves = leaves.(id) })
  in
  let t = { nodes; n_object_types } in
  match validate t with
  | Ok () -> t
  | Error e -> invalid_arg ("Optree.of_arrays: " ^ e)

let left_deep ~n_operators ~objects =
  if n_operators < 1 then invalid_arg "Optree.left_deep: need >= 1 operator";
  if Array.length objects <> n_operators + 1 then
    invalid_arg "Optree.left_deep: need n_operators + 1 leaf objects";
  (* objects.(0) is the root's own leaf, objects.(n_operators) is the
     second leaf of the deepest operator. *)
  let rec build i =
    if i = n_operators - 1 then Op (Obj objects.(i), Obj objects.(i + 1))
    else Op (build (i + 1), Obj objects.(i))
  in
  let n_object_types =
    1 + Array.fold_left max 0 objects
  in
  of_spec ~n_object_types (build 0)

let pp ppf t =
  let rec go indent i =
    let nd = t.nodes.(i) in
    Format.fprintf ppf "%sn%d" indent i;
    if nd.leaves <> [] then
      Format.fprintf ppf " [%s]"
        (String.concat ", "
           (List.map (fun k -> Printf.sprintf "o%d" k) nd.leaves));
    Format.fprintf ppf "@ ";
    List.iter (go (indent ^ "  ")) nd.children
  in
  Format.fprintf ppf "@[<v>";
  go "" 0;
  Format.fprintf ppf "@]"

(* Bottom-up effect inference over the call graph (DESIGN.md §14).

   Tarjan's algorithm emits strongly connected components callees-first,
   so one pass over the condensation is the fixpoint: every member of an
   SCC is assigned the union of the whole component's direct facts plus
   the (already final) summaries of its out-of-component callees.

   Witnesses are kept deterministic: when several call chains reach the
   same fact, the shortest chain wins, ties broken lexicographically. *)

module SMap = Map.Make (String)

type level = Pure | Mutates_local | Mutates_escaping | Nondet | Io

let level_name = function
  | Pure -> "pure"
  | Mutates_local -> "mutates-local"
  | Mutates_escaping -> "mutates-escaping"
  | Nondet -> "nondet"
  | Io -> "io"

let level_rank = function
  | Pure -> 0
  | Mutates_local -> 1
  | Mutates_escaping -> 2
  | Nondet -> 3
  | Io -> 4

let compare_level a b = Int.compare (level_rank a) (level_rank b)

type touch = {
  g : string;
  g_kind : string;
  t_at : Callgraph.site;
  via : string list;
  t_write : bool;
  t_allowed : Rule.t list;
}

type witness = {
  w_label : string;
  w_at : Callgraph.site;
  w_via : string list;
  w_allowed : Rule.t list;
}

type summary = {
  s_level : level;
  touched : touch list;
  nondet : witness option;
  io : witness option;
}

type t = { summaries : summary SMap.t }

let pure_summary = { s_level = Pure; touched = []; nondet = None; io = None }

let summary t id = SMap.find_opt id t.summaries

(* ------------------------------------------------------------------ *)
(* Deterministic merge helpers                                          *)

let compare_via a b = List.compare String.compare a b

let better_witness a b =
  let c = Int.compare (List.length a.w_via) (List.length b.w_via) in
  if c < 0 then a
  else if c > 0 then b
  else
    let c = compare_via a.w_via b.w_via in
    if c < 0 then a
    else if c > 0 then b
    else
      let c = String.compare a.w_label b.w_label in
      if c < 0 then a
      else if c > 0 then b
      else if Callgraph.compare_site a.w_at b.w_at <= 0 then a
      else b

let merge_witness a b =
  match (a, b) with
  | None, w | w, None -> w
  | Some a, Some b -> Some (better_witness a b)

(* Per-global dedupe: a write beats a read, then the shortest chain. *)
let better_touch a b =
  if a.t_write <> b.t_write then if a.t_write then a else b
  else
    let c = Int.compare (List.length a.via) (List.length b.via) in
    if c < 0 then a
    else if c > 0 then b
    else
      let c = compare_via a.via b.via in
      if c < 0 then a
      else if c > 0 then b
      else if Callgraph.compare_site a.t_at b.t_at <= 0 then a
      else b

let merge_touches ts =
  let m =
    List.fold_left
      (fun m t ->
        SMap.update t.g
          (function None -> Some t | Some prev -> Some (better_touch prev t))
          m)
      SMap.empty ts
  in
  SMap.bindings m |> List.map snd

(* ------------------------------------------------------------------ *)
(* Tarjan SCC, emitted callees-first                                    *)

let sccs ~succ ids =
  let index = Hashtbl.create 256 in
  let lowlink = Hashtbl.create 256 in
  let on_stack = Hashtbl.create 256 in
  let stack = ref [] in
  let next = ref 0 in
  let out = ref [] in
  let rec strong v =
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          let lv = Hashtbl.find lowlink v and lw = Hashtbl.find lowlink w in
          if lw < lv then Hashtbl.replace lowlink v lw
        end
        else if Hashtbl.find_opt on_stack w = Some true then begin
          let lv = Hashtbl.find lowlink v and iw = Hashtbl.find index w in
          if iw < lv then Hashtbl.replace lowlink v iw
        end)
      (succ v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) ids;
  List.rev !out

(* ------------------------------------------------------------------ *)

let analyze (cg : Callgraph.t) =
  let decls =
    List.fold_left
      (fun m (d : Callgraph.decl) ->
        if SMap.mem d.id m then m else SMap.add d.id d m)
      SMap.empty cg.decls
  in
  let mutable_kind id =
    match SMap.find_opt id decls with
    | Some d -> d.Callgraph.mutable_def
    | None -> None
  in
  let succ id =
    match SMap.find_opt id decls with
    | None -> []
    | Some d ->
      List.filter_map
        (fun (r : Callgraph.gref) ->
          if SMap.mem r.target decls then Some r.target else None)
        d.refs
      |> List.sort_uniq String.compare
  in
  let ids = List.map (fun (d : Callgraph.decl) -> d.id) cg.decls in
  let components = sccs ~succ ids in
  let summaries = ref SMap.empty in
  let final id =
    match SMap.find_opt id !summaries with Some s -> s | None -> pure_summary
  in
  (* Direct facts of one declaration. *)
  let direct (d : Callgraph.decl) =
    let touches =
      List.filter_map
        (fun (r : Callgraph.gref) ->
          let kind = mutable_kind r.target in
          if r.write || kind <> None then
            Some
              {
                g = r.target;
                g_kind =
                  (match kind with Some k -> k | None -> "mutated state");
                t_at = r.at;
                via = [];
                t_write = r.write;
                t_allowed = r.r_allowed;
              }
          else None)
        d.refs
    in
    let witness_of (e : Callgraph.event) =
      {
        w_label = Callgraph.prim_label e.prim;
        w_at = e.at;
        w_via = [];
        w_allowed = e.e_allowed;
      }
    in
    let nondet =
      List.fold_left
        (fun acc (e : Callgraph.event) ->
          match e.prim with
          | Callgraph.Hash_iter _ | Callgraph.Random_use _
          | Callgraph.Wall_clock _ ->
            merge_witness acc (Some (witness_of e))
          | _ -> acc)
        None d.events
    in
    let io =
      List.fold_left
        (fun acc (e : Callgraph.event) ->
          match e.prim with
          | Callgraph.Print _ -> merge_witness acc (Some (witness_of e))
          | _ -> acc)
        None d.events
    in
    let mut_local =
      List.exists
        (fun (e : Callgraph.event) ->
          match e.prim with Callgraph.Mutate _ -> true | _ -> false)
        d.events
    in
    (touches, nondet, io, mut_local)
  in
  List.iter
    (fun component ->
      let members = List.sort String.compare component in
      let in_scc id = List.mem id members in
      (* Facts owned by each member: its direct facts plus what it
         inherits from out-of-component callees (whose summaries are
         final).  [owner] lets other members of the same component
         prepend the owner to the chain. *)
      let owned =
        List.map
          (fun id ->
            match SMap.find_opt id decls with
            | None -> (id, ([], None, None, false))
            | Some d ->
              let touches, nondet, io, mut_local = direct d in
              let inherited =
                succ id
                |> List.filter (fun c -> not (in_scc c))
                |> List.map (fun c ->
                       let s = final c in
                       ( List.map (fun t -> { t with via = c :: t.via }) s.touched,
                         Option.map
                           (fun w -> { w with w_via = c :: w.w_via })
                           s.nondet,
                         Option.map
                           (fun w -> { w with w_via = c :: w.w_via })
                           s.io ))
              in
              let touches =
                touches @ List.concat_map (fun (t, _, _) -> t) inherited
              in
              let nondet =
                List.fold_left
                  (fun acc (_, w, _) -> merge_witness acc w)
                  nondet inherited
              in
              let io =
                List.fold_left
                  (fun acc (_, _, w) -> merge_witness acc w)
                  io inherited
              in
              (id, (touches, nondet, io, mut_local)))
          members
      in
      List.iter
        (fun id ->
          let touches =
            List.concat_map
              (fun (owner, (ts, _, _, _)) ->
                if owner = id then ts
                else List.map (fun t -> { t with via = owner :: t.via }) ts)
              owned
          in
          let nondet =
            List.fold_left
              (fun acc (owner, (_, w, _, _)) ->
                let w =
                  if owner = id then w
                  else Option.map (fun w -> { w with w_via = owner :: w.w_via }) w
                in
                merge_witness acc w)
              None owned
          in
          let io =
            List.fold_left
              (fun acc (owner, (_, _, w, _)) ->
                let w =
                  if owner = id then w
                  else Option.map (fun w -> { w with w_via = owner :: w.w_via }) w
                in
                merge_witness acc w)
              None owned
          in
          let mut_local =
            List.exists
              (fun (owner, (_, _, _, m)) -> owner = id && m)
              owned
          in
          let touched = merge_touches touches in
          let s_level =
            if io <> None then Io
            else if nondet <> None then Nondet
            else if List.exists (fun t -> t.t_write) touched then
              Mutates_escaping
            else if mut_local then Mutates_local
            else Pure
          in
          summaries := SMap.add id { s_level; touched; nondet; io } !summaries)
        members)
    components;
  { summaries = !summaries }

(* The whole-program rules T1–T3 (DESIGN.md §14), evaluated on the
   {!Callgraph} + {!Effects} substrate.  Pure: loading and build-tree
   concerns live in {!Cmt_loader} / {!Driver}. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

let fmt_chain = function
  | [] -> ""
  | via -> Printf.sprintf " (via %s)" (String.concat " -> " via)

let decl_index (cg : Callgraph.t) =
  List.fold_left
    (fun m (d : Callgraph.decl) ->
      if SMap.mem d.Callgraph.id m then m else SMap.add d.Callgraph.id d m)
    SMap.empty cg.Callgraph.decls

(* ------------------------------------------------------------------ *)
(* T1: static race — a spawned closure reaches top-level mutable state  *)

let t1 (cg : Callgraph.t) (eff : Effects.t) =
  let decls = decl_index cg in
  let mutable_kind id =
    match SMap.find_opt id decls with
    | Some d -> d.Callgraph.mutable_def
    | None -> None
  in
  let decl_allows id rule =
    match SMap.find_opt id decls with
    | Some d -> List.mem rule d.Callgraph.d_allowed
    | None -> false
  in
  let touches_of_spawn (d : Callgraph.decl) (s : Callgraph.spawn) =
    let direct =
      List.filter_map
        (fun (r : Callgraph.gref) ->
          let kind = mutable_kind r.Callgraph.target in
          if r.Callgraph.write || kind <> None then
            Some
              {
                Effects.g = r.Callgraph.target;
                g_kind =
                  (match kind with Some k -> k | None -> "mutated state");
                t_at = r.Callgraph.at;
                via = [];
                t_write = r.Callgraph.write;
                t_allowed = r.Callgraph.r_allowed;
              }
          else None)
        s.Callgraph.body
    in
    let transitive =
      List.concat_map
        (fun (r : Callgraph.gref) ->
          match Effects.summary eff r.Callgraph.target with
          | None -> []
          | Some sm ->
            List.map
              (fun (t : Effects.touch) ->
                { t with Effects.via = r.Callgraph.target :: t.Effects.via })
              sm.Effects.touched)
        s.Callgraph.body
    in
    (* An opaque closure (a let-bound worker function we cannot resolve)
       may run any code of the enclosing declaration: fall back to the
       declaration's whole footprint. *)
    let fallback =
      if not s.Callgraph.opaque then []
      else
        match Effects.summary eff d.Callgraph.id with
        | None -> []
        | Some sm -> sm.Effects.touched
    in
    direct @ transitive @ fallback
  in
  List.concat_map
    (fun (d : Callgraph.decl) ->
      List.concat_map
        (fun (s : Callgraph.spawn) ->
          if List.mem Rule.T1 s.Callgraph.s_allowed then []
          else
            let touches = touches_of_spawn d s in
            (* dedupe per global, deterministically *)
            let by_g =
              List.fold_left
                (fun m (t : Effects.touch) ->
                  SMap.update t.Effects.g
                    (function
                      | None -> Some t
                      | Some prev ->
                        Some
                          (if
                             Effects.
                               (prev.t_write = t.t_write
                               && List.length t.via < List.length prev.via)
                             || ((not prev.Effects.t_write) && t.Effects.t_write)
                           then t
                           else prev))
                    m)
                SMap.empty touches
            in
            SMap.bindings by_g
            |> List.filter_map (fun (g, (t : Effects.touch)) ->
                   if
                     mutable_kind g = Some "Atomic.t"
                     (* Atomic is the sanctioned cross-domain cell *)
                     || List.mem Rule.T1 t.Effects.t_allowed
                     || decl_allows g Rule.T1
                   then None
                   else
                     Some
                       {
                         Rule.rule = Rule.T1;
                         file = s.Callgraph.at.Callgraph.file;
                         line = s.Callgraph.at.Callgraph.line;
                         col = s.Callgraph.at.Callgraph.col;
                         message =
                           Printf.sprintf
                             "Domain.spawn closure reaches top-level mutable \
                              state %s (%s)%s: cross-domain %s races; keep \
                              per-domain state in the closure and merge after \
                              join"
                             g t.Effects.g_kind
                             (fmt_chain t.Effects.via)
                             (if t.Effects.t_write then "write" else "access");
                       }))
        d.Callgraph.spawns)
    cg.Callgraph.decls

(* ------------------------------------------------------------------ *)
(* T2: determinism taint on engine-library entry points                 *)

let t2 (cg : Callgraph.t) (eff : Effects.t) =
  let decls = decl_index cg in
  List.filter_map
    (fun (e : Callgraph.export) ->
      let id = Callgraph.node_id ~unit_name:e.Callgraph.e_unit e.Callgraph.e_name in
      match SMap.find_opt id decls with
      | None -> None
      | Some d ->
        if not (Engine.engine_library d.Callgraph.at.Callgraph.file) then None
        else if
          List.mem Rule.T2 e.Callgraph.e_allowed
          || List.mem Rule.T2 d.Callgraph.d_allowed
        then None
        else (
          match Effects.summary eff id with
          | None | Some { Effects.nondet = None; _ } -> None
          | Some { Effects.nondet = Some w; _ } ->
            if List.mem Rule.T2 w.Effects.w_allowed then None
            else
              Some
                {
                  Rule.rule = Rule.T2;
                  file = d.Callgraph.at.Callgraph.file;
                  line = d.Callgraph.at.Callgraph.line;
                  col = d.Callgraph.at.Callgraph.col;
                  message =
                    Printf.sprintf
                      "exported %s reaches nondeterministic %s%s at %s:%d: \
                       engine outputs must be bit-reproducible — \
                       canonicalize with a sort, draw from the seeded Rng, \
                       or suppress with a justification"
                      id w.Effects.w_label
                      (fmt_chain w.Effects.w_via)
                      w.Effects.w_at.Callgraph.file w.Effects.w_at.Callgraph.line;
                }))
    cg.Callgraph.exports

(* ------------------------------------------------------------------ *)
(* T3: dead exports                                                     *)

let t3 (cg : Callgraph.t) =
  (* every (target, referencing unit) pair in the graph *)
  let referenced =
    List.fold_left
      (fun acc (d : Callgraph.decl) ->
        List.fold_left
          (fun acc (r : Callgraph.gref) ->
            SSet.add (r.Callgraph.target ^ "\x00" ^ d.Callgraph.unit_name) acc)
          acc d.Callgraph.refs)
      SSet.empty cg.Callgraph.decls
  in
  let used_elsewhere (e : Callgraph.export) =
    let id = Callgraph.node_id ~unit_name:e.Callgraph.e_unit e.Callgraph.e_name in
    SSet.exists
      (fun key ->
        match String.index_opt key '\x00' with
        | None -> false
        | Some i ->
          String.sub key 0 i = id
          && String.sub key (i + 1) (String.length key - i - 1)
             <> e.Callgraph.e_unit)
      referenced
  in
  List.filter_map
    (fun (e : Callgraph.export) ->
      if
        (not (Filename.check_suffix e.Callgraph.e_at.Callgraph.file ".mli"))
        || List.mem Rule.T3 e.Callgraph.e_allowed
        || used_elsewhere e
      then None
      else
        Some
          {
            Rule.rule = Rule.T3;
            file = e.Callgraph.e_at.Callgraph.file;
            line = e.Callgraph.e_at.Callgraph.line;
            col = e.Callgraph.e_at.Callgraph.col;
            message =
              Printf.sprintf
                "%s is exported by the .mli but referenced by no other \
                 compilation unit: narrow the interface, or keep it with \
                 (* lint: allow t3 *) and a reason"
                (Callgraph.node_id ~unit_name:e.Callgraph.e_unit
                   e.Callgraph.e_name);
          })
    cg.Callgraph.exports

(* ------------------------------------------------------------------ *)

let analyze (cg : Callgraph.t) =
  let eff = Effects.analyze cg in
  t1 cg eff @ t2 cg eff @ t3 cg
  |> List.sort_uniq (fun a b ->
         let c = Rule.compare_finding a b in
         if c <> 0 then c
         else String.compare a.Rule.message b.Rule.message)

(** Suppression syntax for [insp_lint].

    Two forms, both naming rules by id (case-insensitive, comma- or
    space-separated):

    - attribute, scoping to an expression / binding / structure item:
      {[ (Option.get x [@lint.allow "p1"]) ]}
      {[ let hot () = Sys.time () [@@lint.allow "d3"] ]}
    - comment, scoping to the comment's own line {e and} the next line:
      {[ (* lint: allow f1 — exact-zero reset is the property under test *)
         assert (Ledger.nic_load t u = 0.0) ]}

    Unknown tokens after [allow] (e.g. trailing prose set off by a dash)
    are ignored, so directives can carry a justification inline. *)

type t
(** Comment directives scanned from one source file. *)

val scan : string -> t
(** Lexes the raw source (strings, char literals and nested comments are
    handled) and collects every [lint: allow …] comment directive. *)

val allows : t -> line:int -> Rule.t -> bool
(** Is the rule suppressed at this (1-based) line by a comment
    directive? *)

val rules_of_attributes : Parsetree.attributes -> Rule.t list
(** Rules named by [[@lint.allow "…"]] attributes, if any. *)

(** File walking, baseline handling and report formatting for
    [insp_lint] — everything between {!Engine.lint_file} /
    {!Deep.analyze} and the process exit code.

    Paths in findings are normalized to repo-relative form (leading
    ["./"]/["../"] segments dropped), so the committed baseline and the
    reports agree whether the driver runs from the repo root, from
    dune's sandbox, or from [_build/default/test]. *)

type format = Text | Csv | Json

type config = {
  format : format;
  baseline : string option;  (** path to the baseline file, if any *)
  update_baseline : bool;
      (** rewrite the baseline with the current findings and exit 0 *)
  roots : string list;  (** files or directories to lint *)
  only : string list option;
      (** [--quick]: normalized paths to restrict linting to; entries
          may be directories (they select everything beneath them) *)
  deep : bool;
      (** also run the whole-program T1–T3 pass over the typedtrees
          under [cmt_root] (DESIGN.md §14) *)
  cmt_root : string;  (** where to look for [.cmt]/[.cmti] files *)
  allow_stale : bool;
      (** tolerate sources newer than their typedtree (used by the
          [dune runtest] rule, whose dependencies guarantee freshness;
          without it staleness is an exit-2 diagnostic) *)
}

val normalize : string -> string
(** Drop empty, ["."] and [".."] path segments: ["../lib/x.ml"] →
    ["lib/x.ml"]. *)

val paths_of_porcelain : string list -> string list
(** Normalized paths from [git status --porcelain] output: modified,
    added {e and} untracked entries; renames yield their new name;
    untracked directories stay as one entry selecting their subtree.
    Sorted, deduplicated. *)

(* lint: allow t3 — public walking primitive behind lint_roots; useful from the toplevel *)
val collect : string list -> string list
(** Every [*.ml] under the given files/directories, depth-first with
    sorted directory entries (deterministic order); directories whose
    name starts with ['.'] or ['_'], or ends with [_fixtures] (the test
    suite's deliberately-dirty corpora), are skipped. *)

val lint_roots : ?only:string list -> string list -> Rule.finding list
(** Collect and lint; findings carry normalized paths and are sorted. *)

val load_baseline : string -> string list
(** Baseline keys ({!Rule.baseline_key}) from a file; blank lines and
    [#] comments are ignored.  A missing file is an empty baseline. *)

val apply_baseline : keys:string list -> Rule.finding list -> Rule.finding list
(** The findings whose key is not grandfathered. *)

val run : config -> int
(** Lint (both passes when [deep]), print new findings on stdout in the
    configured format, and return the exit code: 0 clean (or baseline
    updated), 1 new findings, 2 on IO/parse errors, missing or stale
    typedtrees. *)

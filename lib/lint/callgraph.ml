(* Cross-module value-level call graph over the typedtrees of one build
   universe (DESIGN.md §14).

   Node ids are ["Unit.value"] strings (["Insp_mapping__Ledger.probe"],
   nested modules as ["Unit.Sub.value"]) and every list in the output is
   sorted, so the graph — and everything computed from it — is a pure
   function of the build tree.

   Resolution is two-phase.  Phase 1 indexes, per unit: every top-level
   value ident by its unique stamp (exact, so local shadowing cannot
   misattribute a reference), and every top-level [module X = Path]
   alias.  Phase 2 walks each binding body; a [Path.t] whose head is a
   persistent ident is chased through the alias tables (dune's generated
   wrapper modules are themselves units full of aliases, so
   [Insp_mapping.Ledger.probe] lands on [Insp_mapping__Ledger.probe]),
   and a bare local ident is matched by stamp. *)

type site = { file : string; line : int; col : int }

let compare_site a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Int.compare a.col b.col

type prim =
  | Hash_iter of string
  | Random_use of string
  | Wall_clock of string
  | Print of string
  | Mutate of string

let prim_label = function
  | Hash_iter s | Random_use s | Wall_clock s | Print s | Mutate s -> s

type event = { prim : prim; at : site; e_allowed : Rule.t list }
type gref = { target : string; at : site; write : bool; r_allowed : Rule.t list }

type spawn = {
  at : site;
  s_allowed : Rule.t list;
  body : gref list;
  opaque : bool;
}

type decl = {
  id : string;
  unit_name : string;
  val_name : string;
  at : site;
  mutable_def : string option;
  refs : gref list;
  events : event list;
  spawns : spawn list;
  d_allowed : Rule.t list;
}

type export = {
  e_unit : string;
  e_name : string;
  e_at : site;
  e_allowed : Rule.t list;
}

type t = { decls : decl list; exports : export list }

let node_id ~unit_name name = unit_name ^ "." ^ name

(* ------------------------------------------------------------------ *)
(* Path plumbing                                                       *)

let rec flatten_path p =
  match p with
  | Path.Pident id -> [ (Ident.global id, Ident.name id) ]
  | Path.Pdot (p, s) -> flatten_path p @ [ (false, s) ]
  | Path.Papply (a, _) -> flatten_path a
  | Path.Pextra_ty (p, _) -> flatten_path p

(* Stdlib-normalized segment list, so [Stdlib.Random.int] and
   [Random.int] (via the pervasives alias) compare equal — same
   convention as the parsetree engine. *)
let strip_stdlib = function "Stdlib" :: rest when rest <> [] -> rest | segs -> segs

let default_read path =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Primitive classification (on Stdlib-normalized segments)            *)

let classify_prim segs =
  match segs with
  | [ "Hashtbl"; (("fold" | "iter" | "to_seq" | "to_seq_keys" | "to_seq_values") as fn) ]
    ->
    Some (Hash_iter ("Hashtbl." ^ fn))
  | [ "Sys"; "time" ] -> Some (Wall_clock "Sys.time")
  | [ "Unix"; (("time" | "gettimeofday") as fn) ] ->
    Some (Wall_clock ("Unix." ^ fn))
  | [ ("print_string" | "print_endline" | "print_newline" | "print_char"
      | "print_bytes" | "print_int" | "print_float" | "prerr_string"
      | "prerr_endline") ]
  | [ "Printf"; ("printf" | "eprintf") ]
  | [ "Format"; ("printf" | "eprintf" | "print_string" | "print_newline") ] ->
    Some (Print (String.concat "." segs))
  | _ -> None

(* [Random.*] needs its own arm: any value of the module taints. *)
let classify_random segs =
  match segs with
  | "Random" :: _ :: _ -> Some (Random_use (String.concat "." segs))
  | _ -> None

(* Mutation primitives: applying one of these to a top-level value is a
   write to escaping state; to anything else, a local mutation. *)
let is_mutation segs =
  match segs with
  | [ (":=" | "incr" | "decr") ] -> true
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace") ]
  | [ "Array"; ("set" | "fill" | "blit" | "unsafe_set" | "sort" | "fast_sort" | "stable_sort") ]
  | [ "Bytes"; ("set" | "fill" | "blit" | "unsafe_set") ]
  | [ "Buffer"; ("add_string" | "add_char" | "add_bytes" | "add_buffer"
                | "clear" | "reset" | "truncate") ]
  | [ "Queue"; ("push" | "add" | "pop" | "take" | "clear" | "transfer") ]
  | [ "Stack"; ("push" | "pop" | "clear") ]
  | [ "Atomic"; ("set" | "exchange" | "compare_and_set" | "fetch_and_add"
                | "incr" | "decr") ] ->
    true
  | _ -> false

let is_spawn segs =
  match segs with [ "Domain"; ("spawn" | "spawn_on") ] -> true | _ -> false

let is_sort segs =
  match segs with
  | [ "List"; ("sort" | "sort_uniq" | "stable_sort" | "fast_sort") ] -> true
  | _ -> false

(* Mutable top-level state: does this binding body construct a ref, an
   array, a table, a mutable record…?  Chases let-bodies and sequences
   so [let t = let n = size () in Array.make n 0] is still caught. *)
let rec mutable_construct (e : Typedtree.expression) =
  let open Typedtree in
  match e.exp_desc with
  | Texp_array _ -> Some "array literal"
  | Texp_record { fields; _ }
    when Array.exists
           (fun ((ld : Types.label_description), _) ->
             ld.lbl_mut = Asttypes.Mutable)
           fields ->
    Some "record with mutable fields"
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
    match strip_stdlib (List.map snd (flatten_path p)) with
    | [ "ref" ] -> Some "ref"
    | [ "Hashtbl"; "create" ] -> Some "Hashtbl.t"
    | [ "Array"; ("make" | "init" | "create_float" | "of_list" | "copy") ] ->
      Some "array"
    | [ "Bytes"; ("create" | "make" | "of_string") ] -> Some "bytes"
    | [ "Buffer"; "create" ] -> Some "Buffer.t"
    | [ "Queue"; "create" ] -> Some "Queue.t"
    | [ "Stack"; "create" ] -> Some "Stack.t"
    | [ "Atomic"; "make" ] -> Some "Atomic.t"
    | _ -> None)
  | Texp_let (_, _, body) -> mutable_construct body
  | Texp_sequence (_, body) -> mutable_construct body
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Phase 1: per-unit symbol tables                                      *)

type mod_target = Self of string | Alias of string list
(* [Self "Sub"]: a real structure of this unit; [Alias segs]: a module
   alias, rooted at a compilation unit name. *)

type unit_index = {
  u_name : string;
  u_src : string option;
  u_intf_src : string option;
  values : (string, string) Hashtbl.t;  (* Ident.unique_name -> qualified val *)
  modules : (string, mod_target) Hashtbl.t;  (* Ident.unique_name -> target *)
  aliases : (string, string list) Hashtbl.t;  (* module name -> rooted segs *)
  mutable bindings :
    (string * Typedtree.value_binding * site * string option) list;
    (* qualified name, binding, site, mutable kind — reverse order *)
}

let site_of_loc ~file (loc : Location.t) =
  let pos = loc.Location.loc_start in
  {
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
  }

let rec pattern_vars (p : Typedtree.pattern) acc =
  let open Typedtree in
  match p.pat_desc with
  | Tpat_var (id, name) -> (id, name.Location.txt) :: acc
  | Tpat_alias (p, id, name) -> pattern_vars p ((id, name.Location.txt) :: acc)
  | Tpat_tuple ps -> List.fold_left (fun acc p -> pattern_vars p acc) acc ps
  | Tpat_construct (_, _, ps, _) ->
    List.fold_left (fun acc p -> pattern_vars p acc) acc ps
  | Tpat_record (fields, _) ->
    List.fold_left (fun acc (_, _, p) -> pattern_vars p acc) acc fields
  | Tpat_array ps -> List.fold_left (fun acc p -> pattern_vars p acc) acc ps
  | Tpat_or (a, b, _) -> pattern_vars b (pattern_vars a acc)
  | Tpat_variant (_, Some p, _) | Tpat_lazy p -> pattern_vars p acc
  | _ -> acc

(* Root an alias target: a path whose head is persistent is already
   rooted; a local head is chased through this unit's own module map. *)
let root_alias idx path =
  match flatten_path path with
  | [] -> None
  | (true, head) :: rest -> Some (head :: List.map snd rest)
  | (false, _) :: _ -> (
    match path with
    | Path.Pident id | Path.Pdot (Path.Pident id, _) -> (
      let tail =
        match path with Path.Pdot (_, s) -> [ s ] | _ -> []
      in
      match Hashtbl.find_opt idx.modules (Ident.unique_name id) with
      | Some (Alias segs) -> Some (segs @ tail)
      | Some (Self _) | None -> None)
    | _ -> None)

let rec index_structure idx ~prefix (str : Typedtree.structure) =
  let open Typedtree in
  let qualify name = if prefix = "" then name else prefix ^ "." ^ name in
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let vars = List.rev (pattern_vars vb.vb_pat []) in
            let file = match idx.u_src with Some s -> s | None -> "" in
            let at = site_of_loc ~file vb.vb_loc in
            match vars with
            | [] ->
              (* [let () = …] initialization code: a synthetic root. *)
              let name = qualify (Printf.sprintf "<init:%d>" at.line) in
              idx.bindings <- (name, vb, at, None) :: idx.bindings
            | vars ->
              let kind = mutable_construct vb.vb_expr in
              List.iter
                (fun (id, name) ->
                  let q = qualify name in
                  Hashtbl.replace idx.values (Ident.unique_name id) q;
                  idx.bindings <- (q, vb, at, kind) :: idx.bindings)
                vars)
          vbs
      | Tstr_module mb -> index_module idx ~prefix ~qualify mb
      | Tstr_recmodule mbs -> List.iter (index_module idx ~prefix ~qualify) mbs
      | _ -> ())
    str.str_items

and index_module idx ~prefix ~qualify (mb : Typedtree.module_binding) =
  let open Typedtree in
  match mb.mb_id with
  | None -> ()
  | Some id -> (
    let name = Ident.name id in
    let rec strip me =
      match me.mod_desc with Tmod_constraint (me, _, _, _) -> strip me | _ -> me
    in
    match (strip mb.mb_expr).mod_desc with
    | Tmod_ident (p, _) -> (
      match root_alias idx p with
      | Some segs ->
        Hashtbl.replace idx.modules (Ident.unique_name id) (Alias segs);
        if prefix = "" then Hashtbl.replace idx.aliases name segs
      | None -> ())
    | Tmod_structure str ->
      Hashtbl.replace idx.modules (Ident.unique_name id) (Self (qualify name));
      index_structure idx ~prefix:(qualify name) str
    | _ -> ())

(* ------------------------------------------------------------------ *)
(* Phase 2: body walks with cross-unit resolution                       *)

type universe = {
  by_unit : (string, unit_index) Hashtbl.t;
  read_source : string -> string option;
  suppress_cache : (string, Suppress.t) Hashtbl.t;
}

let suppress_for uni file =
  match Hashtbl.find_opt uni.suppress_cache file with
  | Some s -> s
  | None ->
    let s =
      match uni.read_source file with
      | Some src -> Suppress.scan src
      | None -> Suppress.scan ""
    in
    Hashtbl.replace uni.suppress_cache file s;
    s

(* Chase a rooted segment list through the per-unit alias tables down to
   [(unit, value)].  Depth-bounded: alias cycles cannot diverge. *)
let resolve_rooted uni segs =
  let rec go depth segs =
    if depth > 32 then None
    else
      match segs with
      | [] | [ _ ] -> None
      | unit_name :: rest -> (
        match Hashtbl.find_opt uni.by_unit unit_name with
        | None -> None
        | Some _ -> (
          let descend unit_name rest =
            match rest with
            | [] -> None
            | [ v ] -> Some (node_id ~unit_name v)
            | m :: tail -> (
              let aliases =
                match Hashtbl.find_opt uni.by_unit unit_name with
                | Some idx -> Hashtbl.find_opt idx.aliases m
                | None -> None
              in
              match aliases with
              | Some target -> go (depth + 1) (target @ tail)
              | None ->
                (* a real nested module: the id is the qualified name *)
                Some (node_id ~unit_name (String.concat "." rest)))
          in
          descend unit_name rest))
  in
  go 0 segs

type walk_ctx = {
  uni : universe;
  idx : unit_index;
  file : string;
  suppress : Suppress.t;
  intf_wall_ok : bool;  (* wall-clock sanctioned file (bench/, obs clock) *)
  rand_ok : bool;  (* lib/util PRNG internals *)
  mutable sort_depth : int;
  mutable allow_stack : Rule.t list list;
  mutable w_refs : gref list;
  mutable w_events : event list;
  mutable w_spawns : spawn list;
  mutable w_opaque : bool;
  record_spawns : bool;
}

let allowed_at ctx line =
  let stack = List.concat ctx.allow_stack in
  List.filter
    (fun r -> List.mem r stack || Suppress.allows ctx.suppress ~line r)
    Rule.all

(* Resolve one [Texp_ident] to a node id, if it lands in the universe. *)
let resolve_ident ctx path =
  match path with
  | Path.Pident id when not (Ident.global id) -> (
    match Hashtbl.find_opt ctx.idx.values (Ident.unique_name id) with
    | Some q -> Some (node_id ~unit_name:ctx.idx.u_name q)
    | None -> None)
  | _ -> (
    match flatten_path path with
    | (true, head) :: rest ->
      resolve_rooted ctx.uni (head :: List.map snd rest)
    | (false, hname) :: rest -> (
      (* local head: a module alias or a real local submodule *)
      let head_ident =
        let rec head p =
          match p with
          | Path.Pident id -> Some id
          | Path.Pdot (p, _) -> head p
          | Path.Papply (a, _) -> head a
          | Path.Pextra_ty (p, _) -> head p
        in
        head path
      in
      ignore hname;
      match head_ident with
      | None -> None
      | Some id -> (
        match Hashtbl.find_opt ctx.idx.modules (Ident.unique_name id) with
        | Some (Alias segs) ->
          resolve_rooted ctx.uni (segs @ List.map snd rest)
        | Some (Self prefix) ->
          Some
            (node_id ~unit_name:ctx.idx.u_name
               (String.concat "." (prefix :: List.map snd rest)))
        | None -> None))
    | [] -> None)

let normalized_segs path = strip_stdlib (List.map snd (flatten_path path))

let head_path (e : Typedtree.expression) =
  let open Typedtree in
  let rec go e =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> Some p
    | Texp_apply (f, _) -> go f
    | _ -> None
  in
  go e

let applies_sort (e : Typedtree.expression) =
  let open Typedtree in
  match e.exp_desc with
  | Texp_apply (f, args) -> (
    let arg_sorts (_, a) =
      match a with
      | Some a -> (
        match head_path a with
        | Some p -> is_sort (normalized_segs p)
        | None -> false)
      | None -> false
    in
    match head_path f with
    | Some p -> (
      match normalized_segs p with
      | [ ("|>" | "@@") ] -> List.exists arg_sorts args
      | segs -> is_sort segs)
    | None -> false)
  | _ -> false

(* Is this expression a local identifier of arrow type that we cannot
   resolve to a top-level value?  Inside a spawned closure that means
   the closure can run code we cannot enumerate (a let-bound worker
   function), so the caller falls back to the enclosing declaration's
   whole footprint. *)
let unresolved_local_fn ctx (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident ((Path.Pident id as p), _, _)
    when not (Ident.global id) ->
    resolve_ident ctx p = None
    && (match Types.get_desc e.Typedtree.exp_type with
       | Types.Tarrow _ -> true
       | _ -> false)
  | _ -> false

let record_ref ctx ~write ~at path =
  match resolve_ident ctx path with
  | None -> ()
  | Some target ->
    ctx.w_refs <-
      { target; at; write; r_allowed = allowed_at ctx at.line } :: ctx.w_refs

let fresh_sub_ctx ctx =
  {
    ctx with
    w_refs = [];
    w_events = [];
    w_spawns = [];
    w_opaque = false;
    record_spawns = false;
    sort_depth = ctx.sort_depth;
    allow_stack = ctx.allow_stack;
  }

let rec walk_expr ctx (e : Typedtree.expression) =
  let open Typedtree in
  let at = site_of_loc ~file:ctx.file e.exp_loc in
  let push_attrs attrs k =
    match Suppress.rules_of_attributes attrs with
    | [] -> k ()
    | allows ->
      ctx.allow_stack <- allows :: ctx.allow_stack;
      k ();
      (match ctx.allow_stack with
      | [] -> ()
      | _ :: rest -> ctx.allow_stack <- rest)
  in
  push_attrs e.exp_attributes (fun () ->
      (match e.exp_desc with
      | Texp_ident (p, _, _) -> (
        record_ref ctx ~write:false ~at p;
        let segs = normalized_segs p in
        let ev prim =
          ctx.w_events <-
            { prim; at; e_allowed = allowed_at ctx at.line } :: ctx.w_events
        in
        match classify_prim segs with
        | Some (Hash_iter _ as prim) -> if ctx.sort_depth = 0 then ev prim
        | Some (Wall_clock _ as prim) -> if not ctx.intf_wall_ok then ev prim
        | Some prim -> ev prim
        | None -> (
          match classify_random segs with
          | Some prim -> if not ctx.rand_ok then ev prim
          | None -> ()))
      | Texp_setfield (target, _, _, _) -> (
        match target.exp_desc with
        | Texp_ident (p, _, _) when resolve_ident ctx p <> None ->
          record_ref ctx ~write:true ~at p
        | _ ->
          ctx.w_events <-
            { prim = Mutate "<- (field set)"; at; e_allowed = allowed_at ctx at.line }
            :: ctx.w_events)
      | Texp_apply (f, args) -> (
        match head_path f with
        | None -> ()
        | Some fp -> (
          let segs = normalized_segs fp in
          (* Domain.spawn: collect the closure's own footprint. *)
          if is_spawn segs && ctx.record_spawns then begin
            match
              List.filter_map
                (fun (lbl, a) ->
                  match (lbl, a) with
                  | Asttypes.Nolabel, Some a -> Some a
                  | _ -> None)
                args
            with
            | closure :: _ ->
              let sub = fresh_sub_ctx ctx in
              walk_expr sub closure;
              ctx.w_spawns <-
                {
                  at;
                  s_allowed = allowed_at ctx at.line;
                  body = sub.w_refs;
                  opaque = sub.w_opaque;
                }
                :: ctx.w_spawns
            | [] -> ()
          end;
          if is_mutation segs then
            match
              List.filter_map
                (fun (lbl, a) ->
                  match (lbl, a) with
                  | Asttypes.Nolabel, Some a -> Some a
                  | _ -> None)
                args
            with
            | first :: _ -> (
              match first.exp_desc with
              | Texp_ident (p, _, _) when resolve_ident ctx p <> None ->
                record_ref ctx ~write:true
                  ~at:(site_of_loc ~file:ctx.file first.exp_loc)
                  p
              | _ ->
                ctx.w_events <-
                  {
                    prim = Mutate (String.concat "." segs);
                    at;
                    e_allowed = allowed_at ctx at.line;
                  }
                  :: ctx.w_events)
            | [] -> ()))
      | _ -> ());
      if unresolved_local_fn ctx e then ctx.w_opaque <- true;
      let sorts = applies_sort e in
      if sorts then ctx.sort_depth <- ctx.sort_depth + 1;
      let it =
        {
          Tast_iterator.default_iterator with
          expr = (fun _ e -> walk_expr ctx e);
        }
      in
      Tast_iterator.default_iterator.expr it e;
      if sorts then ctx.sort_depth <- ctx.sort_depth - 1)

(* ------------------------------------------------------------------ *)
(* Exports (from the .cmti signature)                                   *)

let exports_of_unit uni (u : Cmt_loader.unit_info) =
  match (u.Cmt_loader.intf, u.Cmt_loader.intf_src) with
  | Some sg, Some intf_src ->
    let suppress = suppress_for uni intf_src in
    List.filter_map
      (fun (item : Typedtree.signature_item) ->
        match item.Typedtree.sig_desc with
        | Typedtree.Tsig_value vd ->
          let at = site_of_loc ~file:intf_src vd.Typedtree.val_loc in
          let from_attrs =
            Suppress.rules_of_attributes vd.Typedtree.val_attributes
          in
          let e_allowed =
            List.filter
              (fun r ->
                List.mem r from_attrs || Suppress.allows suppress ~line:at.line r)
              Rule.all
          in
          Some
            {
              e_unit = u.Cmt_loader.name;
              e_name = Ident.name vd.Typedtree.val_id;
              e_at = at;
              e_allowed;
            }
        | _ -> None)
      sg.Typedtree.sig_items
  | _ -> []

(* ------------------------------------------------------------------ *)

let build ?(read_source = default_read) (loaded : Cmt_loader.t) =
  let uni =
    {
      by_unit = Hashtbl.create 128;
      read_source;
      suppress_cache = Hashtbl.create 128;
    }
  in
  (* Phase 1: indexes. *)
  let indexes =
    List.filter_map
      (fun (u : Cmt_loader.unit_info) ->
        let idx =
          {
            u_name = u.Cmt_loader.name;
            u_src = u.Cmt_loader.src;
            u_intf_src = u.Cmt_loader.intf_src;
            values = Hashtbl.create 64;
            modules = Hashtbl.create 16;
            aliases = Hashtbl.create 16;
            bindings = [];
          }
        in
        (match u.Cmt_loader.impl with
        | Some str -> index_structure idx ~prefix:"" str
        | None -> ());
        if not (Hashtbl.mem uni.by_unit idx.u_name) then
          Hashtbl.replace uni.by_unit idx.u_name idx
        else begin
          (* duplicate wrapper units: merge alias tables *)
          match Hashtbl.find_opt uni.by_unit idx.u_name with
          | Some prev ->
            Hashtbl.iter
              (fun k v ->
                if not (Hashtbl.mem prev.aliases k) then
                  Hashtbl.replace prev.aliases k v)
              idx.aliases
          | None -> ()
        end;
        if u.Cmt_loader.impl = None then None else Some idx)
      loaded.Cmt_loader.units
  in
  (* Phase 2: walk bodies. *)
  let decls =
    List.concat_map
      (fun idx ->
        match idx.u_src with
        | None -> []
        | Some file ->
          let suppress = suppress_for uni file in
          let walk_binding (qname, (vb : Typedtree.value_binding), at, kind) =
            let ctx =
              {
                uni;
                idx;
                file;
                suppress;
                intf_wall_ok = Engine.wall_clock_sanctioned file;
                rand_ok = Engine.under_lib_util file;
                sort_depth = 0;
                allow_stack = [];
                w_refs = [];
                w_events = [];
                w_spawns = [];
                w_opaque = false;
                record_spawns = true;
              }
            in
            let vb_allows = Suppress.rules_of_attributes vb.Typedtree.vb_attributes in
            if vb_allows <> [] then ctx.allow_stack <- [ vb_allows ];
            walk_expr ctx vb.Typedtree.vb_expr;
            let d_allowed =
              List.filter
                (fun r ->
                  List.mem r vb_allows || Suppress.allows suppress ~line:at.line r)
                Rule.all
            in
            {
              id = node_id ~unit_name:idx.u_name qname;
              unit_name = idx.u_name;
              val_name = qname;
              at;
              mutable_def = kind;
              refs = List.rev ctx.w_refs;
              events = List.rev ctx.w_events;
              spawns = List.rev ctx.w_spawns;
              d_allowed;
            }
          in
          List.rev_map walk_binding idx.bindings)
      indexes
  in
  let decls =
    List.sort (fun a b -> String.compare a.id b.id) decls
  in
  let exports =
    List.concat_map (exports_of_unit uni) loaded.Cmt_loader.units
    |> List.sort (fun a b ->
           let c = String.compare a.e_unit b.e_unit in
           if c <> 0 then c else String.compare a.e_name b.e_name)
  in
  { decls; exports }

let find t id = List.find_opt (fun d -> d.id = id) t.decls

type format = Text | Csv | Json

type config = {
  format : format;
  baseline : string option;
  update_baseline : bool;
  roots : string list;
  only : string list option;
  deep : bool;
  cmt_root : string;
  allow_stale : bool;
}

let normalize path =
  String.split_on_char '/' path
  |> List.filter (fun s -> s <> "" && s <> "." && s <> "..")
  |> String.concat "/"

(* [e] selects [f] when equal, or when [e] is a directory prefix —
   porcelain reports untracked directories as a single ["dir/"] entry. *)
let selects e f = f = e || String.starts_with ~prefix:(e ^ "/") f

let paths_of_porcelain lines =
  List.filter_map
    (fun line ->
      if String.length line < 4 then None
      else
        let path = String.sub line 3 (String.length line - 3) in
        (* renames: "R  old -> new"; keep the new name *)
        let path =
          match String.index_opt path '>' with
          | Some i when i >= 2 && String.sub path (i - 2) 3 = " ->" ->
            String.sub path (i + 2) (String.length path - i - 2)
          | _ -> path
        in
        let path = String.trim path in
        let path =
          (* git quotes paths with special characters *)
          if
            String.length path >= 2
            && path.[0] = '"'
            && path.[String.length path - 1] = '"'
          then String.sub path 1 (String.length path - 2)
          else path
        in
        if path = "" then None else Some (normalize path))
    lines
  |> List.sort_uniq String.compare

(* Dot/underscore prefixes are build products; the [*_fixtures] suffix
   is the test suite's scratch corpora of deliberately-dirty sources
   (see Cmt_loader.find_files, which skips them for the same reason). *)
let hidden name =
  String.length name > 0
  && (name.[0] = '.' || name.[0] = '_' || Filename.check_suffix name "_fixtures")

let collect roots =
  let rec walk acc path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.filter (fun n -> not (hidden n))
      |> List.fold_left (fun acc n -> walk acc (Filename.concat path n)) acc
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  List.fold_left walk [] roots |> List.rev

let lint_roots ?only roots =
  let files = collect roots in
  let files =
    match only with
    | None -> files
    | Some allow ->
      List.filter
        (fun f ->
          let f = normalize f in
          List.exists (fun e -> selects e f) allow)
        files
  in
  List.concat_map
    (fun path -> Engine.lint_file ~display:(normalize path) path)
    files
  |> List.sort Rule.compare_finding

(* The deep pass analyzes the whole build universe; findings are then
   narrowed to the requested roots (and [--quick] selection) so the two
   passes agree about what is in scope. *)
let deep_findings cfg =
  if not cfg.deep then []
  else begin
    let loaded = Cmt_loader.load ~root:cfg.cmt_root () in
    (match loaded.Cmt_loader.stale with
    | [] -> ()
    | stale when not cfg.allow_stale ->
      raise
        (Cmt_loader.Cmt_error
           (Printf.sprintf
              "stale typedtrees (source newer than its .cmt): %s — rebuild \
               with `dune build @check` (or `make lint-deep`)"
              (String.concat ", " stale)))
    | _ -> ());
    let in_roots =
      let roots = List.map normalize cfg.roots in
      fun file -> List.exists (fun r -> selects r file) roots
    in
    let selected file =
      match cfg.only with
      | None -> true
      | Some allow -> List.exists (fun e -> selects e file) allow
    in
    Deep.analyze (Callgraph.build loaded)
    |> List.filter (fun f -> in_roots f.Rule.file && selected f.Rule.file)
  end

let load_baseline path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match In_channel.input_line ic with
          | None -> List.rev acc
          | Some line ->
            let line = String.trim line in
            if line = "" || line.[0] = '#' then go acc
            else
              (* Key = first two whitespace-separated fields
                 ("RULE file:line:col"); anything after is commentary. *)
              let key =
                match String.split_on_char ' ' line with
                | rule :: site :: _ -> rule ^ " " ^ site
                | _ -> line
              in
              go (key :: acc)
        in
        go [])
  end

let apply_baseline ~keys findings =
  List.filter (fun f -> not (List.mem (Rule.baseline_key f) keys)) findings

let write_baseline path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        "# insp_lint baseline: grandfathered findings, one per line.\n\
         # Format: RULE file:line:col [commentary].  Regenerate with\n\
         # insp_lint --update-baseline; shrink it, never grow it.\n";
      List.iter
        (fun f ->
          Printf.fprintf oc "%s %s\n" (Rule.baseline_key f) f.Rule.message)
        findings)

let print_findings fmt findings =
  (match fmt with
  | Text | Json -> ()
  | Csv -> print_endline Rule.csv_header);
  List.iter
    (fun f ->
      match fmt with
      | Text -> Format.printf "%a@." Rule.pp_text f
      | Csv -> Format.printf "%a@." Rule.pp_csv f
      | Json -> Format.printf "%a@." Rule.pp_json f)
    findings

let run cfg =
  let all () =
    let shallow = lint_roots ?only:cfg.only cfg.roots in
    let deep = deep_findings cfg in
    List.sort Rule.compare_finding (shallow @ deep)
  in
  match all () with
  | exception Engine.Parse_error msg ->
    prerr_endline ("insp_lint: " ^ msg);
    2
  | exception Cmt_loader.Cmt_error msg ->
    prerr_endline ("insp_lint: " ^ msg);
    2
  | exception Sys_error msg ->
    prerr_endline ("insp_lint: " ^ msg);
    2
  | findings ->
    if cfg.update_baseline then begin
      match cfg.baseline with
      | None ->
        prerr_endline "insp_lint: --update-baseline needs --baseline FILE";
        2
      | Some path ->
        write_baseline path findings;
        Printf.eprintf "insp_lint: wrote %d finding(s) to %s\n"
          (List.length findings) path;
        0
    end
    else begin
      let keys =
        match cfg.baseline with None -> [] | Some p -> load_baseline p
      in
      let fresh = apply_baseline ~keys findings in
      print_findings cfg.format fresh;
      if fresh = [] then 0
      else begin
        Printf.eprintf
          "insp_lint: %d new finding(s) (%d grandfathered in the baseline)\n"
          (List.length fresh)
          (List.length findings - List.length fresh);
        1
      end
    end

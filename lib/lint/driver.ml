type format = Text | Csv

type config = {
  format : format;
  baseline : string option;
  update_baseline : bool;
  roots : string list;
  only : string list option;
}

let normalize path =
  String.split_on_char '/' path
  |> List.filter (fun s -> s <> "" && s <> "." && s <> "..")
  |> String.concat "/"

let hidden name =
  String.length name > 0 && (name.[0] = '.' || name.[0] = '_')

let collect roots =
  let rec walk acc path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.filter (fun n -> not (hidden n))
      |> List.fold_left (fun acc n -> walk acc (Filename.concat path n)) acc
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  List.fold_left walk [] roots |> List.rev

let lint_roots ?only roots =
  let files = collect roots in
  let files =
    match only with
    | None -> files
    | Some allow ->
      List.filter (fun f -> List.mem (normalize f) allow) files
  in
  List.concat_map
    (fun path -> Engine.lint_file ~display:(normalize path) path)
    files
  |> List.sort Rule.compare_finding

let load_baseline path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match In_channel.input_line ic with
          | None -> List.rev acc
          | Some line ->
            let line = String.trim line in
            if line = "" || line.[0] = '#' then go acc
            else
              (* Key = first two whitespace-separated fields
                 ("RULE file:line:col"); anything after is commentary. *)
              let key =
                match String.split_on_char ' ' line with
                | rule :: site :: _ -> rule ^ " " ^ site
                | _ -> line
              in
              go (key :: acc)
        in
        go [])
  end

let apply_baseline ~keys findings =
  List.filter (fun f -> not (List.mem (Rule.baseline_key f) keys)) findings

let write_baseline path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        "# insp_lint baseline: grandfathered findings, one per line.\n\
         # Format: RULE file:line:col [commentary].  Regenerate with\n\
         # insp_lint --update-baseline; shrink it, never grow it.\n";
      List.iter
        (fun f ->
          Printf.fprintf oc "%s %s\n" (Rule.baseline_key f) f.Rule.message)
        findings)

let print_findings fmt findings =
  (match fmt with
  | Text -> ()
  | Csv -> print_endline Rule.csv_header);
  List.iter
    (fun f ->
      match fmt with
      | Text -> Format.printf "%a@." Rule.pp_text f
      | Csv -> Format.printf "%a@." Rule.pp_csv f)
    findings

let run cfg =
  match lint_roots ?only:cfg.only cfg.roots with
  | exception Engine.Parse_error msg ->
    prerr_endline ("insp_lint: " ^ msg);
    2
  | exception Sys_error msg ->
    prerr_endline ("insp_lint: " ^ msg);
    2
  | findings ->
    if cfg.update_baseline then begin
      match cfg.baseline with
      | None ->
        prerr_endline "insp_lint: --update-baseline needs --baseline FILE";
        2
      | Some path ->
        write_baseline path findings;
        Printf.eprintf "insp_lint: wrote %d finding(s) to %s\n"
          (List.length findings) path;
        0
    end
    else begin
      let keys =
        match cfg.baseline with None -> [] | Some p -> load_baseline p
      in
      let fresh = apply_baseline ~keys findings in
      print_findings cfg.format fresh;
      if fresh = [] then 0
      else begin
        Printf.eprintf
          "insp_lint: %d new finding(s) (%d grandfathered in the baseline)\n"
          (List.length fresh)
          (List.length findings - List.length fresh);
        1
      end
    end

open Parsetree

type scope = Lib | Bin | Bench | Test

let path_parts file =
  String.split_on_char '/' file
  |> List.filter (fun s -> s <> "" && s <> "." && s <> "..")

let scope_of_file file =
  match path_parts file with
  | "bin" :: _ -> Bin
  | "bench" :: _ -> Bench
  | "test" :: _ -> Test
  | _ -> Lib

let under_lib_util file =
  match path_parts file with "lib" :: "util" :: _ -> true | _ -> false

(* D3 sanctioned locations — wall-clock reads are legitimate exactly
   where timing is the point: the bench harness, and the one blessed
   monotonic clock module the observability layer funnels every
   timestamp through (DESIGN.md §10). *)
let wall_clock_sanctioned file =
  match path_parts file with
  | "bench" :: _ -> true
  | [ "lib"; "obs"; "clock.ml" ] -> true
  | _ -> false

(* D4 sanctioned location — domain spawning is legitimate exactly in the
   deterministic sweep runner, which owns the static partition, the
   per-worker sinks and the canonical-order merge (DESIGN.md §11).
   Anywhere else a spawn is an unmanaged interleaving. *)
let domain_spawn_sanctioned file =
  match path_parts file with
  | [ "lib"; "experiments"; "par_sweep.ml" ] -> true
  | _ -> false

(* D5 scope — the engine libraries whose decisions the journal records.
   Printing is legitimate in the presentation layers (bin/, bench/,
   test/, lib/experiments' figure/table rendering, lib/util's Table):
   the rule only fires inside the engines, where stdout output would be
   decision data bypassing Obs.Journal. *)
let decision_output_scoped file =
  match path_parts file with
  | "lib" :: ("heuristics" | "lp" | "sim" | "faults") :: _ -> true
  | _ -> false

(* D6 scope — engine libraries whose outputs (violation lists, probes,
   journals, allocations) must be bit-reproducible.  Elsewhere D2's
   weaker "only when building a list" test applies; inside these
   libraries ANY unsorted Hashtbl iteration is sanctioned, because even
   a float sum accumulated in hash order changes observable bits. *)
let engine_library file =
  match path_parts file with
  | "lib" :: ("mapping" | "heuristics" | "lp" | "sim" | "serve" | "faults") :: _
    -> true
  | _ -> false

let hash_order_scoped = engine_library

(* D7 scope — GC state reads are legitimate exactly in the allocation
   profiler, which owns snapshot placement and the determinism
   contract for the deltas (DESIGN.md §17), and in bench/, where raw
   Gc reads are the measurement.  Anywhere else in library code a
   [Gc.*] call is either untracked attribution (route it through
   Obs.prof_enter/prof_exit) or a behavioural GC knob no engine should
   be turning. *)
let gc_read_sanctioned file =
  match path_parts file with
  | "bench" :: _ -> true
  | [ "lib"; "obs"; "prof.ml" ] -> true
  | _ -> false

(* P3 scope — the libraries on the 100k-operator data path, where an
   O(n) list search inside a loop turns the whole pass quadratic.  The
   arena/SoA refactor (DESIGN.md §16) indexes this state by dense int
   id; new code reaching for an assoc list must either do the same or
   justify the bounded scan with an explicit suppression. *)
let linear_scan_scoped file =
  match path_parts file with
  | "lib" :: ("mapping" | "heuristics" | "sim") :: _ -> true
  | _ -> false

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)

(* Identifier path with any [Stdlib] qualifier dropped, so
   [Stdlib.Random.int] and [Random.int] compare equal. *)
let ident_path (lid : Longident.t) =
  match Longident.flatten lid with
  | "Stdlib" :: rest -> rest
  | path -> path

let rec head_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (ident_path txt)
  | Pexp_apply (f, _) -> head_ident f
  | _ -> None

let is_sort_path = function
  | [ "List"; ("sort" | "sort_uniq" | "stable_sort" | "fast_sort") ] -> true
  | _ -> false

(* Does this expression sort something — directly ([List.sort cmp e]) or
   through a pipe ([e |> List.sort cmp], [List.sort cmp @@ e])?  Any
   Hashtbl iteration underneath it is considered canonicalized. *)
let applies_sort e =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
    let arg_sorts (_, a) =
      match head_ident a with Some p -> is_sort_path p | None -> false
    in
    match head_ident f with
    | Some [ ("|>" | "@@") ] -> List.exists arg_sorts args
    | Some p -> is_sort_path p
    | None -> false)
  | _ -> false

let hashtbl_iteration = function
  | [ "Hashtbl"; (("fold" | "iter" | "to_seq" | "to_seq_keys" | "to_seq_values") as fn) ]
    ->
    Some fn
  | _ -> None

let is_list_builder = function
  | [ "@" ]
  | [ "List"; ("append" | "cons" | "rev_append" | "of_seq") ] ->
    true
  | _ -> false

(* Does the subtree build a list?  [::] (covers list literals), [@] and
   friends.  This is what makes a Hashtbl iteration order-sensitive for
   rule D2: folding into a float or emitting side effects keyed by
   content is order-insensitive and passes. *)
let builds_list e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it x ->
          (match x.pexp_desc with
          | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) ->
            found := true
          | Pexp_ident { txt; _ } when is_list_builder (ident_path txt) ->
            found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it x);
    }
  in
  it.expr it e;
  !found

(* F1 operands: float literals and fields of the Demand.t / Ledger
   records that carry accumulated float state. *)
let float_fields =
  [
    "compute";
    "download";
    "comm_in";
    "comm_out";
    "need_rate";
    "dl_rate";
    "out_w";
    "in_w";
    "l_load";
  ]

let rec floaty_operand e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> Some "a float literal"
  | Pexp_field (_, { txt; _ }) -> (
    match List.rev (ident_path txt) with
    | f :: _ when List.mem f float_fields ->
      Some (Printf.sprintf "float field '%s'" f)
    | _ -> None)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> floaty_operand e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, arg) ])
    when ident_path txt = [ "~-." ] || ident_path txt = [ "~-" ] ->
    floaty_operand arg
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)

type ctx = {
  file : string;
  scope : scope;
  lib_util : bool;
  wall_ok : bool;
  domain_ok : bool;
  decision_scoped : bool;
  hash_scoped : bool;
  scan_scoped : bool;
  gc_scoped : bool;
  suppress : Suppress.t;
  mutable sort_depth : int;
  mutable allow_stack : Rule.t list list;
  mutable findings : Rule.finding list;
}

let report ctx rule (loc : Location.t) message =
  let pos = loc.loc_start in
  let line = pos.Lexing.pos_lnum in
  let col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol in
  let suppressed =
    List.exists (List.mem rule) ctx.allow_stack
    || Suppress.allows ctx.suppress ~line rule
  in
  if not suppressed then
    ctx.findings <-
      { Rule.rule; file = ctx.file; line; col; message } :: ctx.findings

let check_ident ctx loc path =
  (match path with
  | "Random" :: _ when not ctx.lib_util ->
    report ctx Rule.D1
      loc
      (Printf.sprintf
         "use of %s: Stdlib.Random is nondeterministic; use the seeded \
          Insp_util.Prng"
         (String.concat "." path))
  | _ -> ());
  (match path with
  | [ "Sys"; "time" ] | [ "Unix"; "time" ] | [ "Unix"; "gettimeofday" ]
    when not ctx.wall_ok ->
    report ctx Rule.D3 loc
      (Printf.sprintf
         "wall-clock read %s is nondeterministic; timing belongs in bench/ \
          or the blessed Insp_obs.Clock"
         (String.concat "." path))
  | _ -> ());
  (match path with
  | ( [ ("print_string" | "print_endline" | "print_newline" | "print_char"
       | "print_bytes" | "print_int" | "print_float") ]
    | [ "Printf"; "printf" ]
    | [ "Format"; ("printf" | "print_string" | "print_newline") ] )
    when ctx.decision_scoped ->
    report ctx Rule.D5 loc
      (Printf.sprintf
         "direct printing (%s) in an engine library; decision output must \
          go through Obs.Journal events"
         (String.concat "." path))
  | _ -> ());
  (match path with
  | "Gc" :: _ when ctx.gc_scoped ->
    report ctx Rule.D7 loc
      (Printf.sprintf
         "GC state read %s in library code; only the allocation profiler \
          (lib/obs/prof.ml) samples Gc — bracket the work with \
          Obs.prof_enter/prof_exit instead"
         (String.concat "." path))
  | _ -> ());
  (match path with
  | [ "Domain"; ("spawn" | "spawn_on") ] when not ctx.domain_ok ->
    report ctx Rule.D4 loc
      (Printf.sprintf
         "%s outside the sweep runner; route parallelism through \
          Insp_experiments.Par_sweep so partitioning and merge order stay \
          deterministic"
         (String.concat "." path))
  | _ -> ());
  (match path with
  | ([ "List"; ("hd" | "nth") ] | [ "Option"; "get" ]) when ctx.scope = Lib ->
    report ctx Rule.P1 loc
      (Printf.sprintf
         "partial call %s may raise; match totally or justify a suppression"
         (String.concat "." path))
  | _ -> ());
  match path with
  | [ "List";
      (( "assoc" | "assoc_opt" | "mem_assoc" | "remove_assoc" | "find"
       | "find_opt" | "find_map" ) as fn) ]
    when ctx.scan_scoped ->
    report ctx Rule.P3 loc
      (Printf.sprintf
         "List.%s is a linear scan in a hot-path library; index by int id \
          (arena/SoA column) or justify the bounded scan with a suppression"
         fn)
  | _ -> ()

let check_expr ctx e =
  (match e.pexp_desc with
  | Pexp_ident { txt; loc } -> check_ident ctx loc (ident_path txt)
  | _ -> ());
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
    (match head_ident f with
    | Some path -> (
      match hashtbl_iteration path with
      | Some fn when ctx.sort_depth = 0 && ctx.hash_scoped ->
        (* D6 subsumes D2 in engine scope: report once. *)
        report ctx Rule.D6 e.pexp_loc
          (Printf.sprintf
             "Hashtbl.%s iterates in hash order inside an engine library; \
              iterate a key-sorted snapshot or pipe the result through \
              List.sort"
             fn)
      | Some fn
        when ctx.sort_depth = 0
             && List.exists (fun (_, a) -> builds_list a) args ->
        report ctx Rule.D2 e.pexp_loc
          (Printf.sprintf
             "Hashtbl.%s builds a list in hash-iteration order; pipe the \
              result through List.sort / List.sort_uniq"
             fn)
      | _ -> ())
    | None -> ());
    match (f.pexp_desc, args) with
    | Pexp_ident { txt; _ }, (_, a) :: (_, b) :: _
      when List.mem (ident_path txt) [ [ "=" ]; [ "<>" ]; [ "compare" ] ] -> (
      match
        match floaty_operand a with
        | Some _ as found -> found
        | None -> floaty_operand b
      with
      | Some what ->
        report ctx Rule.F1 e.pexp_loc
          (Printf.sprintf
             "%s on %s; use a tolerance (Insp_util.Stats.approx_eq or the \
              checker's 1e-9 slack)"
             (String.concat "." (ident_path txt))
             what)
      | None -> ())
    | _ -> ())
  | _ -> ()

let make_iterator ctx =
  let open Ast_iterator in
  let push attrs k =
    match Suppress.rules_of_attributes attrs with
    | [] -> k ()
    | allows ->
      ctx.allow_stack <- allows :: ctx.allow_stack;
      k ();
      (match ctx.allow_stack with
      | [] -> ()
      | _ :: rest -> ctx.allow_stack <- rest)
  in
  let expr it e =
    push e.pexp_attributes (fun () ->
        check_expr ctx e;
        let sorts = applies_sort e in
        if sorts then ctx.sort_depth <- ctx.sort_depth + 1;
        default_iterator.expr it e;
        if sorts then ctx.sort_depth <- ctx.sort_depth - 1)
  in
  let structure_item it si =
    let attrs =
      match si.pstr_desc with
      | Pstr_eval (_, attrs) -> attrs
      | Pstr_attribute a -> [ a ]
      | _ -> []
    in
    push attrs (fun () -> default_iterator.structure_item it si)
  in
  let value_binding it vb =
    push vb.pvb_attributes (fun () -> default_iterator.value_binding it vb)
  in
  { default_iterator with expr; structure_item; value_binding }

let lint_source ~file source =
  let suppress = Suppress.scan source in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  let structure =
    try Parse.implementation lexbuf
    with _ -> raise (Parse_error (file ^ ": not a parseable OCaml implementation"))
  in
  let ctx =
    {
      file;
      scope = scope_of_file file;
      lib_util = under_lib_util file;
      wall_ok = wall_clock_sanctioned file;
      domain_ok = domain_spawn_sanctioned file;
      decision_scoped = decision_output_scoped file;
      hash_scoped = hash_order_scoped file;
      scan_scoped = linear_scan_scoped file;
      gc_scoped = scope_of_file file = Lib && not (gc_read_sanctioned file);
      suppress;
      sort_depth = 0;
      allow_stack = [];
      findings = [];
    }
  in
  let it = make_iterator ctx in
  it.structure it structure;
  List.sort Rule.compare_finding ctx.findings

let p2_finding ~file =
  {
    Rule.rule = Rule.P2;
    file;
    line = 1;
    col = 0;
    message =
      Printf.sprintf "missing interface %s — every lib module ships an .mli"
        (Filename.remove_extension (Filename.basename file) ^ ".mli");
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?display path =
  let display = match display with Some d -> d | None -> path in
  let source = read_file path in
  let findings = lint_source ~file:display source in
  let wants_mli =
    scope_of_file display = Lib && Filename.check_suffix path ".ml"
  in
  if
    wants_mli
    && (not (Sys.file_exists (Filename.remove_extension path ^ ".mli")))
    && (not (Suppress.allows (Suppress.scan source) ~line:1 Rule.P2))
  then List.sort Rule.compare_finding (p2_finding ~file:display :: findings)
  else findings

(** Bottom-up effect inference over the {!Callgraph} (DESIGN.md §14).

    Every top-level declaration is summarized into a point on the
    effect lattice

    {v pure < mutates-local < mutates-escaping < nondet < io v}

    by a single callees-first pass over the strongly connected
    components of the call graph (mutual recursion is the fixpoint case:
    all members of a component share the union of the component's
    facts).

    Summaries carry {e witnesses} — the concrete primitive occurrence
    and the call chain that reaches it — chosen deterministically
    (shortest chain, ties broken lexicographically), so analysis output
    is byte-stable across runs.

    Scope notes: [mutates-local] does not propagate to callers (a callee
    mutating its own state leaves the caller's summary untouched), while
    touches of top-level mutable state, nondeterminism and IO do. *)

type level = Pure | Mutates_local | Mutates_escaping | Nondet | Io

val level_name : level -> string
(** ["pure"], ["mutates-local"], ["mutates-escaping"], ["nondet"],
    ["io"]. *)

val compare_level : level -> level -> int
(** Lattice order, [Pure] lowest. *)

type touch = {
  g : string;  (** node id of the top-level mutable state *)
  g_kind : string;  (** ["ref"], ["Hashtbl.t"], … or ["mutated state"] *)
  t_at : Callgraph.site;  (** the direct touching reference *)
  via : string list;  (** call chain from the summarized decl, nearest first *)
  t_write : bool;
  t_allowed : Rule.t list;  (** suppressions in force at the touch site *)
}

type witness = {
  w_label : string;  (** primitive name, e.g. ["Random.int"] *)
  w_at : Callgraph.site;
  w_via : string list;
  w_allowed : Rule.t list;
}

type summary = {
  s_level : level;
  touched : touch list;  (** deduped per global, sorted by node id *)
  nondet : witness option;
  io : witness option;
}

type t

val analyze : Callgraph.t -> t

val summary : t -> string -> summary option
(** By declaration node id; [None] for unknown ids. *)

(** The whole-program rules (DESIGN.md §14), evaluated over the
    {!Callgraph} and {!Effects} substrate:

    - {b T1} static race: a [Domain.spawn] closure transitively reaches
      top-level mutable state (refs, tables, arrays…).  [Atomic.t] cells
      are exempt (they are the sanctioned cross-domain primitive), and a
      closure that mentions an unresolvable local function is treated
      conservatively as the whole enclosing declaration.
    - {b T2} determinism taint: a value exported by an engine-library
      interface ({!Engine.engine_library}) transitively reaches a
      nondeterministic primitive.  The finding names the witness chain
      and the primitive's site.
    - {b T3} dead export: an [.mli]-declared value referenced by no
      {e other} compilation unit in the build universe.

    Suppressions ([(* lint: allow t1 *)] comments, [[@lint.allow]]
    attributes) are honoured at the spawn site, the touch site or the
    state's defining binding (T1); at the export, the entry definition
    or the primitive occurrence (T2); and at the [val] item (T3). *)

val analyze : Callgraph.t -> Rule.finding list
(** All T1/T2/T3 findings, sorted by {!Rule.compare_finding} and
    deduplicated. *)

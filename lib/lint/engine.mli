(** The AST analysis core of [insp_lint].

    Files are parsed with the compiler's own untyped parser
    ([compiler-libs.common]: {!Parse.implementation}) and walked with
    {!Ast_iterator}; no external dependency and no typing pass.  All
    checks are therefore {e syntactic} approximations of the semantic
    disciplines they guard — deliberate: they run on every
    [dune runtest] and must be fast and dependency-free.  See
    DESIGN.md §9 for the rule definitions. *)

type scope = Lib | Bin | Bench | Test
(** Which part of the repo a file belongs to; rules are scoped
    (P1/P2 fire only in [Lib], D3 is exempt in [Bench], D1 is exempt
    under [lib/util]).  Unknown roots are treated as [Lib] — the
    strictest scope. *)

(* lint: allow t3 — rule-predicate surface documented in DESIGN; kept for tooling *)
val scope_of_file : string -> scope
(** From the leading path segment after dropping ["."]/[".."]
    components, so ["../lib/foo.ml"] and ["lib/foo.ml"] agree. *)

val under_lib_util : string -> bool
(** D1's exemption: the seeded PRNG internals under [lib/util]. *)

val wall_clock_sanctioned : string -> bool
(** D3's (and T2's) sanction: wall-clock reads are legitimate exactly in
    [bench/] and the blessed [lib/obs/clock.ml]. *)

(* lint: allow t3 — rule-predicate surface documented in DESIGN; kept for tooling *)
val domain_spawn_sanctioned : string -> bool
(** D4's sanction: [lib/experiments/par_sweep.ml] only. *)

val engine_library : string -> bool
(** The engine libraries whose outputs must be bit-reproducible —
    [lib/{mapping,heuristics,lp,sim,serve,faults}].  Scope of D6 and of
    the interprocedural T2 entry-point taint (DESIGN.md §14). *)

exception Parse_error of string
(** Raised when a file does not lex/parse as an OCaml implementation. *)

val lint_source : file:string -> string -> Rule.finding list
(** Run every AST rule (D1, D2, D3, D4, F1, P1) on one implementation
    source.  [file] is the path used for scoping and reporting; the
    source itself is taken from the string, so tests can lint inline
    fixtures.  Comment and attribute suppressions are honoured.
    Findings are sorted by {!Rule.compare_finding}. *)

(* lint: allow t3 — rule-predicate surface documented in DESIGN; kept for tooling *)
val p2_finding : file:string -> Rule.finding
(** The finding P2 reports (at line 1) for a [lib/**/*.ml] with no
    matching [.mli].  Existence checking lives in {!Driver}. *)

val lint_file : ?display:string -> string -> Rule.finding list
(** Read [path] from disk and lint it; [display] (default the path
    itself) is the name used in findings.  Adds the P2 check: a [Lib]
    implementation with no sibling [.mli] on disk yields
    {!p2_finding} unless line 1 carries a suppression. *)

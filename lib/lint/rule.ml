type t = D1 | D2 | D3 | D4 | D5 | D6 | D7 | F1 | P1 | P2 | P3 | T1 | T2 | T3

let all = [ D1; D2; D3; D4; D5; D6; D7; F1; P1; P2; P3; T1; T2; T3 ]

let id = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | D5 -> "D5"
  | D6 -> "D6"
  | D7 -> "D7"
  | F1 -> "F1"
  | P1 -> "P1"
  | P2 -> "P2"
  | P3 -> "P3"
  | T1 -> "T1"
  | T2 -> "T2"
  | T3 -> "T3"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "d1" -> Some D1
  | "d2" -> Some D2
  | "d3" -> Some D3
  | "d4" -> Some D4
  | "d5" -> Some D5
  | "d6" -> Some D6
  | "d7" -> Some D7
  | "f1" -> Some F1
  | "p1" -> Some P1
  | "p2" -> Some P2
  | "p3" -> Some P3
  | "t1" -> Some T1
  | "t2" -> Some T2
  | "t3" -> Some T3
  | _ -> None

let synopsis = function
  | D1 -> "Stdlib.Random is nondeterministic; use the seeded Insp_util.Prng"
  | D2 -> "Hashtbl iteration order is arbitrary; sort results built from it"
  | D3 ->
    "wall-clock reads are nondeterministic; timing belongs in bench/ or the \
     blessed Insp_obs.Clock"
  | D4 ->
    "Domain.spawn outside the deterministic sweep runner \
     (Insp_experiments.Par_sweep) risks nondeterministic interleavings"
  | D5 ->
    "direct printing inside an engine library; decision output must go \
     through Obs.Journal"
  | D6 ->
    "unsorted Hashtbl iteration inside an engine library; iterate a \
     key-sorted snapshot so hash order cannot reach observable state"
  | D7 ->
    "GC state read outside the allocation profiler; attribution goes \
     through Obs.prof_enter/prof_exit so lib/obs/prof.ml stays the one \
     sanctioned Gc reader"
  | F1 -> "float equality/compare needs a tolerance (Insp_util.Stats.approx_eq)"
  | P1 -> "partial stdlib call may raise; match totally or suppress with a reason"
  | P2 -> "every lib module ships an explicit interface (.mli)"
  | P3 ->
    "linear list search (List.assoc/List.find family) in a hot-path library; \
     index by int id (arena/SoA column, array) or justify the bounded scan"
  | T1 ->
    "static race: a Domain.spawn closure transitively reaches top-level \
     mutable state shared across domains"
  | T2 ->
    "determinism taint: an engine-library entry point transitively reaches \
     a nondeterministic primitive (hash-order iteration, Random, wall clock)"
  | T3 ->
    "dead export: an .mli-declared value referenced by no other compilation \
     unit"

type finding = {
  rule : t;
  file : string;
  line : int;
  col : int;
  message : string;
}

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (id a.rule) (id b.rule)

let pp_text ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col (id f.rule)
    f.message

let csv_escape s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') s
  in
  if not needs_quote then s
  else "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""

let csv_header = "rule,file,line,col,message"

let pp_csv ppf f =
  Format.fprintf ppf "%s,%s,%d,%d,%s" (id f.rule) (csv_escape f.file) f.line
    f.col (csv_escape f.message)

(* One canonical-JSON object per finding (Obs.Jsonc escaping and field
   order), so CI and editors can consume reports line-by-line without
   parsing the text format. *)
let to_json f =
  Insp_obs.Jsonc.obj
    [
      ("rule", Insp_obs.Jsonc.string (id f.rule));
      ("file", Insp_obs.Jsonc.string f.file);
      ("line", Insp_obs.Jsonc.int f.line);
      ("col", Insp_obs.Jsonc.int f.col);
      ("message", Insp_obs.Jsonc.string f.message);
    ]

let pp_json ppf f = Format.pp_print_string ppf (to_json f)

let baseline_key f = Printf.sprintf "%s %s:%d:%d" (id f.rule) f.file f.line f.col

(* Locate and read the [.cmt]/[.cmti] typedtrees dune leaves under
   [_build] (DESIGN.md §14).

   The walk is deliberately different from {!Driver.collect}: dune's
   object directories are hidden ([.insp_mapping.objs/byte/…]), so dot-
   and underscore-prefixed directories are descended into here, not
   skipped.  Everything downstream (callgraph node order, findings) is
   keyed on sorted unit names and repo-relative source paths, so the
   analysis output is a pure function of the build tree's contents. *)

exception Cmt_error of string

type unit_info = {
  name : string;
  src : string option;
  intf_src : string option;
  impl : Typedtree.structure option;
  intf : Typedtree.signature option;
}

type t = { units : unit_info list; stale : string list }

let normalize path =
  String.split_on_char '/' path
  |> List.filter (fun s -> s <> "" && s <> "." && s <> "..")
  |> String.concat "/"

(* The test suite compiles deliberately racy/nondeterministic scratch
   universes under [*_fixtures] directories; they are not part of any
   real build universe and must never leak into a repo-wide scan. *)
let fixture_dir name = Filename.check_suffix name "_fixtures"

let find_files root =
  let acc = ref [] in
  let rec walk path =
    match Sys.is_directory path with
    | true ->
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.filter (fun n -> not (fixture_dir n))
      |> List.iter (fun n -> walk (Filename.concat path n))
    | false ->
      if
        Filename.check_suffix path ".cmt" || Filename.check_suffix path ".cmti"
      then acc := path :: !acc
    | exception Sys_error _ -> ()
  in
  if Sys.file_exists root then walk root;
  List.sort String.compare !acc

(* The [src] recorded in a cmt is relative to dune's workspace root
   (["lib/mapping/ledger.ml"]); absolute paths (hand-run ocamlc) are
   kept as-is minus normalization. *)
let source_of_cmt (info : Cmt_format.cmt_infos) =
  match info.cmt_sourcefile with
  | None -> None
  | Some s -> Some (if Filename.is_relative s then normalize s else s)

let read path =
  match Cmt_format.read_cmt path with
  | info -> Some info
  | exception Sys_error msg -> raise (Cmt_error msg)
  | exception _ ->
    raise (Cmt_error (path ^ ": unreadable .cmt (wrong compiler version?)"))

let mtime path = try Some (Unix.stat path).Unix.st_mtime with Unix.Unix_error _ -> None

let load ?(src_root = ".") ~root () =
  let files = find_files root in
  if files = [] then
    raise
      (Cmt_error
         (Printf.sprintf
            "no .cmt/.cmti files under %s — build first (dune build @check, \
             or `make lint-deep`)"
            root));
  let stale = ref [] in
  let units =
    List.filter_map
      (fun path ->
        match read path with
        | None -> None
        | Some info ->
          let src = source_of_cmt info in
          (* A source newer than its typedtree means the analysis would
             report against code that is no longer there. *)
          (match src with
          | Some s when Filename.is_relative s -> (
            let on_disk = Filename.concat src_root s in
            match (mtime on_disk, mtime path) with
            | Some src_t, Some cmt_t when src_t > cmt_t ->
              stale := s :: !stale
            | _ -> ())
          | _ -> ());
          let impl, intf =
            match info.cmt_annots with
            | Cmt_format.Implementation str -> (Some str, None)
            | Cmt_format.Interface sg -> (None, Some sg)
            | _ -> (None, None)
          in
          if impl = None && intf = None then None
          else
            Some
              {
                name = info.cmt_modname;
                src = (if intf = None then src else None);
                intf_src = (if intf = None then None else src);
                impl;
                intf;
              })
      files
  in
  (* Pair each unit's .cmt with its .cmti and drop duplicates (the same
     alias wrapper can be compiled once per executable directory). *)
  let tbl = Hashtbl.create 128 in
  let names = ref [] in
  List.iter
    (fun u ->
      match Hashtbl.find_opt tbl u.name with
      | None ->
        Hashtbl.replace tbl u.name u;
        names := u.name :: !names
      | Some prev ->
        let merged =
          {
            name = u.name;
            src = (match prev.src with Some _ -> prev.src | None -> u.src);
            intf_src =
              (match prev.intf_src with Some _ -> prev.intf_src | None -> u.intf_src);
            impl = (match prev.impl with Some _ -> prev.impl | None -> u.impl);
            intf = (match prev.intf with Some _ -> prev.intf | None -> u.intf);
          }
        in
        Hashtbl.replace tbl u.name merged)
    units;
  let units =
    List.sort String.compare !names
    |> List.filter_map (fun n -> Hashtbl.find_opt tbl n)
  in
  { units; stale = List.sort_uniq String.compare !stale }

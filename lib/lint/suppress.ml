(* Comment directives are invisible to the parsetree, so they are
   recovered with a small hand lexer over the raw source.  The lexer
   only needs to be sound about what is and is not a comment: it tracks
   double-quoted strings (with escapes), quoted-string literals
   ({id|…|id}), char literals and comment nesting. *)

type t = (int * Rule.t list) list
(* (line, allowed rules) for each directive; a directive covers its own
   line and the following one.  Files are small, assoc list is fine. *)

let directive_rules text =
  (* [text] is the body of one comment; extract rules after
     "lint: allow".  Tokens that do not name a rule (justification
     prose) end or interrupt the list harmlessly. *)
  let lower = String.lowercase_ascii text in
  let find_sub start sub =
    let n = String.length lower and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub lower i m = sub then Some (i + m)
      else go (i + 1)
    in
    go start
  in
  match find_sub 0 "lint:" with
  | None -> []
  | Some after_colon -> (
    match find_sub after_colon "allow" with
    | None -> []
    | Some after_allow ->
      let rest = String.sub lower after_allow (String.length lower - after_allow) in
      let tokens =
        String.map (function ',' | ';' | '\t' | '\n' -> ' ' | c -> c) rest
        |> String.split_on_char ' '
        |> List.filter (fun s -> s <> "")
      in
      let rec take acc = function
        | [] -> List.rev acc
        | tok :: rest -> (
          match Rule.of_string tok with
          | Some r -> take (r :: acc) rest
          | None -> List.rev acc)
      in
      take [] tokens)

let scan source =
  let n = String.length source in
  let directives = ref [] in
  let line = ref 1 in
  let bump c = if c = '\n' then incr line in
  let i = ref 0 in
  let peek k = if !i + k < n then Some source.[!i + k] else None in
  (* Skip a double-quoted string starting at !i (source.[!i] = '"'). *)
  let skip_string () =
    bump source.[!i];
    incr i;
    let rec go () =
      if !i < n then begin
        let c = source.[!i] in
        bump c;
        incr i;
        match c with
        | '\\' ->
          if !i < n then begin
            bump source.[!i];
            incr i
          end;
          go ()
        | '"' -> ()
        | _ -> go ()
      end
    in
    go ()
  in
  (* Skip {id|…|id} starting at '{'.  Returns false if not actually a
     quoted string (plain record brace). *)
  let skip_quoted_string () =
    let j = ref (!i + 1) in
    while
      !j < n
      && (match source.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
    do
      incr j
    done;
    if !j < n && source.[!j] = '|' then begin
      let id = String.sub source (!i + 1) (!j - !i - 1) in
      let closing = "|" ^ id ^ "}" in
      let m = String.length closing in
      let rec go k =
        if k + m > n then n
        else if String.sub source k m = closing then k + m
        else k + 1 |> go
      in
      let stop = go (!j + 1) in
      while !i < stop do
        bump source.[!i];
        incr i
      done;
      true
    end
    else false
  in
  (* Skip a comment starting at "(*"; records any directive it holds.
     Handles nesting and strings inside comments. *)
  let rec skip_comment () =
    let start_line = !line in
    let buf = Buffer.create 64 in
    bump source.[!i];
    incr i;
    bump source.[!i];
    incr i;
    let rec go depth =
      if !i >= n then ()
      else
        match (source.[!i], peek 1) with
        | '(', Some '*' ->
          bump source.[!i];
          incr i;
          bump source.[!i];
          incr i;
          go (depth + 1)
        | '*', Some ')' ->
          bump source.[!i];
          incr i;
          bump source.[!i];
          incr i;
          if depth > 0 then go (depth - 1)
        | '"', _ ->
          skip_string ();
          go depth
        | c, _ ->
          Buffer.add_char buf c;
          bump c;
          incr i;
          go depth
    in
    go 0;
    match directive_rules (Buffer.contents buf) with
    | [] -> ()
    | rules -> directives := (start_line, rules) :: !directives
  and step () =
    if !i < n then begin
      (match (source.[!i], peek 1) with
      | '(', Some '*' -> skip_comment ()
      | '"', _ -> skip_string ()
      | '{', _ ->
        if not (skip_quoted_string ()) then begin
          bump source.[!i];
          incr i
        end
      | '\'', _ -> (
        (* Char literal ('x', '\n', '\123') vs type variable ('a).
           Only skip as a literal when it closes with a quote. *)
        match (peek 1, peek 2, peek 3) with
        | Some '\\', _, _ ->
          let j = ref (!i + 2) in
          while !j < n && source.[!j] <> '\'' do
            incr j
          done;
          while !i <= !j && !i < n do
            bump source.[!i];
            incr i
          done
        | Some _, Some '\'', _ ->
          bump source.[!i];
          incr i;
          bump source.[!i];
          incr i;
          bump source.[!i];
          incr i
        | _ ->
          bump source.[!i];
          incr i)
      | c, _ ->
        bump c;
        incr i);
      step ()
    end
  in
  step ();
  !directives

let allows t ~line rule =
  List.exists
    (fun (l, rules) -> (l = line || l + 1 = line) && List.mem rule rules)
    t

let rules_of_attributes attrs =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "lint.allow" then []
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
          String.map (function ',' -> ' ' | c -> c) s
          |> String.split_on_char ' '
          |> List.filter_map Rule.of_string
        | _ -> [])
    attrs

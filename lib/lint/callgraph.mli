(** Cross-module value-level call graph over one build universe's
    typedtrees (DESIGN.md §14) — the shared substrate of the T1–T3
    whole-program rules.

    Node ids are ["Unit.value"] strings ([Insp_mapping__Ledger.probe];
    values of nested modules as ["Unit.Sub.value"]).  Every list in the
    result is sorted, so the graph is a deterministic function of the
    build tree.

    Reference resolution is exact where the typedtree is: local idents
    are matched by unique stamp (shadowing cannot misattribute), and
    dotted paths are chased through [module X = Path] aliases — both
    in-file abbreviations and dune's generated wrapper units — down to
    the defining compilation unit. *)

type site = { file : string; line : int; col : int }
(** Repo-relative source position (the cmt records workspace-relative
    files, which is what findings report). *)

val compare_site : site -> site -> int

type prim =
  | Hash_iter of string
      (** hash-order iteration not under a same-expression sort
          canonicalization (mirrors the parsetree D2 exemption) *)
  | Random_use of string  (** any [Random.*] value *)
  | Wall_clock of string  (** [Sys.time], [Unix.gettimeofday], … *)
  | Print of string  (** stdout/stderr writes *)
  | Mutate of string
      (** a mutation primitive applied to non-top-level (local) state *)

val prim_label : prim -> string
(** The primitive's display name, e.g. ["Hashtbl.fold"]. *)

type event = { prim : prim; at : site; e_allowed : Rule.t list }
(** One primitive occurrence inside a binding body, with the rules
    suppressed at that site (comment directives and [[@lint.allow]]
    attributes in scope). *)

type gref = { target : string; at : site; write : bool; r_allowed : Rule.t list }
(** A resolved reference to another top-level value.  [write] marks
    mutation-primitive applications ([x := …], [Hashtbl.replace t …])
    and field sets whose subject is the target. *)

type spawn = {
  at : site;
  s_allowed : Rule.t list;
  body : gref list;  (** the spawned closure's own resolved references *)
  opaque : bool;
      (** the closure mentions a local function we cannot resolve, so
          its footprint is under-approximated; consumers must fall back
          to the enclosing declaration's whole footprint *)
}
(** A [Domain.spawn] application site. *)

type decl = {
  id : string;  (** node id, ["Unit.value"] *)
  unit_name : string;
  val_name : string;  (** possibly dotted for nested modules *)
  at : site;
  mutable_def : string option;
      (** [Some kind] when the binding constructs mutable state at top
          level — ["ref"], ["array"], ["Hashtbl.t"], … *)
  refs : gref list;
  events : event list;
  spawns : spawn list;
  d_allowed : Rule.t list;  (** suppressions scoped to the whole binding *)
}
(** One top-level value binding (or [let () = …] initializer, named
    ["<init:LINE>"]). *)

type export = {
  e_unit : string;
  e_name : string;
  e_at : site;  (** position of the [val] item in the [.mli] *)
  e_allowed : Rule.t list;
}
(** One [val] declared by a unit's interface — T3's subjects. *)

type t = { decls : decl list; exports : export list }
(** [decls] sorted by id; [exports] by (unit, name). *)

val node_id : unit_name:string -> string -> string

val build : ?read_source:(string -> string option) -> Cmt_loader.t -> t
(** Build the graph.  [read_source] fetches a repo-relative source for
    comment-suppression scanning (defaults to reading the file from the
    current directory; returning [None] just disables comment
    directives for that file). *)

val find : t -> string -> decl option

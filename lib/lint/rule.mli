(** The rule catalog of [insp_lint] and its finding type.

    Each rule guards one of the determinism / float-hygiene disciplines
    the reproduction depends on (DESIGN.md §9): bit-reproducible seeded
    runs and the ledger/oracle float contract.  Rules are identified by
    a short id ([D1] … [P2]) that is also the token accepted by the
    suppression syntax ([[@lint.allow "d2"]] or [(* lint: allow d2 *)]). *)

type t =
  | D1  (** no [Stdlib.Random] outside [lib/util] PRNG internals *)
  | D2  (** Hashtbl iteration feeding a list must be canonicalized *)
  | D3  (** no wall-clock reads ([Sys.time], [Unix.gettimeofday]) outside [bench/] *)
  | D4  (** no [Domain.spawn] outside [lib/experiments/par_sweep.ml] *)
  | D5
      (** no direct printing ([print_*], [Printf.printf], [Format.printf])
          in the engine libraries [lib/heuristics], [lib/lp], [lib/sim] —
          decision output goes through [Obs.Journal] *)
  | D6
      (** no unsorted [Hashtbl.fold]/[iter]/[to_seq] in the engine
          libraries [lib/mapping], [lib/heuristics], [lib/lp], [lib/sim],
          [lib/serve], [lib/faults] — even an order-insensitive-looking fold (a float
          sum) changes observable bits with hash order; iterate a
          key-sorted snapshot instead.  Strictly stronger than [D2]
          inside that scope (and reported instead of it). *)
  | D7
      (** no [Gc.*] reads in library code — only the allocation
          profiler [lib/obs/prof.ml] may sample GC state; engines
          wanting attribution bracket work with
          [Obs.prof_enter]/[Obs.prof_exit] (same shape as [D3]'s
          clock sanction) *)
  | F1  (** no [=]/[<>]/polymorphic [compare] on float literals or known float fields *)
  | P1  (** no partial stdlib calls ([List.hd], [List.nth], [Option.get]) in [lib/] *)
  | P2  (** every [lib/**/*.ml] has a matching [.mli] *)
  | P3
      (** no linear list search ([List.assoc]/[List.find] families) in
          the hot-path libraries [lib/{mapping,heuristics,sim}] — the
          100k-operator data path indexes by dense int id (arena/SoA
          columns); a bounded scan (catalog, heuristic registry,
          O(degree) probe deltas) is kept with
          [(* lint: allow p3 — reason *)] *)
  | T1
      (** {e typedtree, whole-program}: no [Domain.spawn] closure may
          transitively reach top-level mutable state (refs, arrays,
          [Hashtbl]s, mutable record fields) — workers sharing a global
          is a data race the per-file rules cannot see (DESIGN.md §14) *)
  | T2
      (** {e typedtree, whole-program}: no engine-library entry point
          ([.mli]-exported value of [lib/{mapping,heuristics,lp,sim,
          serve,faults}]) may transitively reach a nondeterministic primitive —
          hash-order iteration, [Stdlib.Random], a wall-clock read.
          The semantic, interprocedural closure of D1/D3/D6. *)
  | T3
      (** {e typedtree, whole-program}: every [.mli]-declared value under
          [lib/] must be referenced from at least one other compilation
          unit (the whole build universe counts: lib, bin, bench, test,
          examples) *)

val all : t list
(** In report order: D1, D2, D3, D4, D5, D6, D7, F1, P1, P2, P3, T1,
    T2, T3. *)

val id : t -> string
(** Upper-case id, e.g. ["D2"]. *)

val of_string : string -> t option
(** Case-insensitive; trims whitespace.  ["d2"] and ["D2"] both work. *)

val synopsis : t -> string
(** One-line description used by [--help] and DESIGN.md. *)

type finding = {
  rule : t;
  file : string;  (** repo-relative path as reported *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  message : string;
}

val compare_finding : finding -> finding -> int
(** Report order: file, then line, then column, then rule id. *)

val pp_text : Format.formatter -> finding -> unit
(** [file:line:col: [RULE] message] — the golden format tested in
    [test/test_lint.ml]. *)

val pp_csv : Format.formatter -> finding -> unit
(** One CSV record [rule,file,line,col,message] with RFC-4180 quoting. *)

val csv_header : string

val to_json : finding -> string
(** One canonical-JSON object
    [{"rule":…,"file":…,"line":…,"col":…,"message":…}] per finding
    ({!Insp_obs.Jsonc} escaping, fixed field order) — the [--format
    json] line format. *)

val pp_json : Format.formatter -> finding -> unit

val baseline_key : finding -> string
(** Stable key used by the baseline file: ["RULE file:line:col"]. *)

(** Discovery and decoding of the [.cmt]/[.cmti] typedtrees dune emits
    under [_build] — the input of the whole-program analyses (T1–T3,
    DESIGN.md §14).

    Unlike the per-file parsetree pass, which re-parses sources, the
    deep pass reuses the compiler's own elaborated, type-resolved trees:
    identifier references arrive as fully resolved [Path.t]s, so
    cross-module reasoning needs no name resolution of its own. *)

exception Cmt_error of string
(** Raised on unreadable files (wrong compiler version, IO errors) and
    when no [.cmt] exists under the root at all — both are exit-2
    conditions for the driver, with the message explaining the fix
    ([dune build @check] / [make lint-deep]). *)

type unit_info = {
  name : string;  (** compilation unit name, e.g. [Insp_mapping__Ledger] *)
  src : string option;
      (** implementation source, repo-relative (["lib/mapping/ledger.ml"]);
          dune-generated alias modules report their [.ml-gen] file *)
  intf_src : string option;  (** interface source ([.mli]), when one exists *)
  impl : Typedtree.structure option;  (** from the [.cmt] *)
  intf : Typedtree.signature option;  (** from the [.cmti] *)
}

type t = {
  units : unit_info list;  (** sorted by unit name; [.cmt]/[.cmti] paired *)
  stale : string list;
      (** sources strictly newer than their typedtree — the build is out
          of date and findings would point at vanished code *)
}

(* lint: allow t3 — kept exported for symmetry with Driver.normalize and toplevel use *)
val normalize : string -> string
(** Drop empty/["."]/[".."] segments, as {!Driver.normalize}. *)

val find_files : string -> string list
(** Every [.cmt]/[.cmti] under the root, sorted; descends into dune's
    hidden object directories.  Directories named [*_fixtures] are
    skipped — they hold the test suite's deliberately-dirty synthetic
    universes. *)

val load : ?src_root:string -> root:string -> unit -> t
(** Read every typedtree under [root].  [src_root] (default ["."]) is
    where sources are checked for staleness; a missing source (e.g. a
    generated [.ml-gen] seen from the repo root) is simply not checked. *)

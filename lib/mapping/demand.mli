(** Resource demand of a group of operators placed together on one
    processor.

    This is the arithmetic shared by the placement heuristics, the
    downgrade step and the constraint checker, so that "does this group
    fit on that configuration?" is answered identically everywhere.

    For a group [g] of operators of application [app]:
    - [compute]  = sum of [rho * w_i] over [g] (Mops/s) — constraint (1)
      rearranged as [compute <= s_u];
    - [download] = sum of [rate_k] over the *distinct* object types in
      [Leaf(g)] (an object needed by several co-located operators is
      downloaded once, paper §2.3);
    - [comm_in]  = sum of [rho * delta_j] over operator children [j] of
      members of [g] with [j] outside [g];
    - [comm_out] = sum of [rho * delta_i] over members [i] of [g] whose
      parent exists and lies outside [g].

    The NIC load is [download + comm_in + comm_out] — constraint (2). *)

type t = {
  compute : float;
  download : float;
  comm_in : float;
  comm_out : float;
}

(* lint: allow t3 — identity element of the demand monoid *)
val zero : t

val nic : t -> float
(** [download + comm_in + comm_out]. *)

val of_group : Insp_tree.App.t -> int list -> t
(** Demand of a set of operators placed together.  Duplicate ids are
    ignored. *)

val of_operator : Insp_tree.App.t -> int -> t
(** Demand of a singleton group. *)

val distinct_objects : Insp_tree.App.t -> int list -> int list
(** Distinct object types in [Leaf(g)], sorted. *)

val fits :
  Insp_platform.Catalog.config -> t -> bool
(** Capacity test: [compute <= speed] and [nic <= bandwidth], with a
    relative tolerance of 1e-9. *)

val max_crossing_edge : Insp_tree.App.t -> int list -> float
(** Largest single tree-edge flow (MB/s) crossing the group boundary —
    a necessary lower bound on the processor-to-processor link bandwidth
    (constraint (5)). *)

(* lint: allow t3 — debugging printer *)
val pp : Format.formatter -> t -> unit

module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Platform = Insp_platform.Platform
module Servers = Insp_platform.Servers

type violation =
  | Unassigned_operator of int
  | Missing_download of { proc : int; object_type : int }
  | Extraneous_download of { proc : int; object_type : int }
  | Duplicate_download of { proc : int; object_type : int }
  | Not_held of { proc : int; object_type : int; server : int }
  | Compute_overload of { proc : int; load : float; capacity : float }
  | Nic_overload of { proc : int; load : float; capacity : float }
  | Server_card_overload of { server : int; load : float; capacity : float }
  | Server_link_overload of {
      server : int;
      proc : int;
      load : float;
      capacity : float;
    }
  | Proc_link_overload of {
      proc_a : int;
      proc_b : int;
      load : float;
      capacity : float;
    }

let tolerance = 1e-9

let exceeds load capacity = load > capacity *. (1.0 +. tolerance) +. tolerance

let proc_demand app alloc u = Demand.of_group app (Alloc.operators_of alloc u)

let proc_download_rate app alloc u =
  List.fold_left
    (fun acc (k, _) -> acc +. App.download_rate app k)
    0.0
    (Alloc.downloads_of alloc u)

let pair_flow app alloc u v =
  let tree = App.tree app in
  let rho = App.rho app in
  let flow_into host other =
    (* Children of operators on [host] that live on [other]. *)
    List.fold_left
      (fun acc i ->
        List.fold_left
          (fun acc j ->
            if Alloc.assignment alloc j = Some other then
              acc +. (rho *. App.output_size app j)
            else acc)
          acc (Optree.children tree i))
      0.0
      (Alloc.operators_of alloc host)
  in
  flow_into u v +. flow_into v u

let structural_violations app platform alloc =
  let servers = platform.Platform.servers in
  let acc = ref [] in
  let add v = acc := v :: !acc in
  for i = 0 to App.n_operators app - 1 do
    if Alloc.assignment alloc i = None then add (Unassigned_operator i)
  done;
  for u = 0 to Alloc.n_procs alloc - 1 do
    let needed = Demand.distinct_objects app (Alloc.operators_of alloc u) in
    let planned = Alloc.downloads_of alloc u in
    let planned_types = List.map fst planned in
    List.iter
      (fun k ->
        if not (List.mem k planned_types) then
          add (Missing_download { proc = u; object_type = k }))
      needed;
    List.iter
      (fun (k, l) ->
        if not (List.mem k needed) then
          add (Extraneous_download { proc = u; object_type = k });
        if
          l < 0
          || l >= Servers.n_servers servers
          || not (Servers.holds servers l k)
        then add (Not_held { proc = u; object_type = k; server = l }))
      planned;
    (* The same object type downloaded from several servers doubles its
       NIC load; the plan is malformed even when each entry is valid. *)
    List.iter
      (fun k ->
        if List.length (List.filter (fun k' -> k' = k) planned_types) > 1
        then add (Duplicate_download { proc = u; object_type = k }))
      (List.sort_uniq compare planned_types)
  done;
  List.rev !acc

let capacity_violations app platform alloc =
  let servers = platform.Platform.servers in
  let n_procs = Alloc.n_procs alloc in
  let acc = ref [] in
  let add v = acc := v :: !acc in
  (* Constraints (1) and (2), per processor.  The NIC download term uses
     the actual download plan, which coincides with the demand's distinct
     object set once the plan is structurally valid. *)
  for u = 0 to n_procs - 1 do
    let p = Alloc.proc alloc u in
    let d = proc_demand app alloc u in
    let config = p.Alloc.config in
    if exceeds d.Demand.compute config.cpu.speed then
      add
        (Compute_overload
           { proc = u; load = d.Demand.compute; capacity = config.cpu.speed });
    let nic_load =
      proc_download_rate app alloc u +. d.Demand.comm_in +. d.Demand.comm_out
    in
    if exceeds nic_load config.nic.bandwidth then
      add
        (Nic_overload
           { proc = u; load = nic_load; capacity = config.nic.bandwidth })
  done;
  (* Constraints (3) and (4), per server (and per server-processor
     link). *)
  for l = 0 to Servers.n_servers servers - 1 do
    let total = ref 0.0 in
    for u = 0 to n_procs - 1 do
      let link_load =
        List.fold_left
          (fun acc (k, l') ->
            if l' = l then acc +. App.download_rate app k else acc)
          0.0
          (Alloc.downloads_of alloc u)
      in
      total := !total +. link_load;
      if exceeds link_load platform.Platform.server_link then
        add
          (Server_link_overload
             {
               server = l;
               proc = u;
               load = link_load;
               capacity = platform.Platform.server_link;
             })
    done;
    if exceeds !total (Servers.card servers l) then
      add
        (Server_card_overload
           { server = l; load = !total; capacity = Servers.card servers l })
  done;
  (* Constraint (5), per processor pair: one pass over the tree edges
     instead of probing all O(procs²) pairs through [pair_flow].  Each
     directed accumulator receives its contributions in exactly the
     order [pair_flow u v] summed them (hosts in ascending index order,
     members in list order, children in tree order), so the reported
     loads are bit-identical; pairs no edge touches carry zero flow and
     can never exceed the non-negative capacity. *)
  let tree = App.tree app in
  let rho = App.rho app in
  (* Directed pairs are encoded as [u * n_procs + v]: the encoding is
     monotone in lexicographic (u, v) order (v < n_procs), so sorting
     the encoded undirected pairs visits them in the same order as
     sorting the tuples — and int keys keep the hot inner loop free of
     tuple allocation and polymorphic-hash traversal. *)
  let enc u v = (u * n_procs) + v in
  let into : (int, float) Hashtbl.t = Hashtbl.create (4 * n_procs) in
  let pairs = ref [] in
  for u = 0 to n_procs - 1 do
    List.iter
      (fun i ->
        List.iter
          (fun j ->
            match Alloc.assignment alloc j with
            | Some v when v <> u ->
              if
                (not (Hashtbl.mem into (enc u v)))
                && not (Hashtbl.mem into (enc v u))
              then pairs := enc (min u v) (max u v) :: !pairs;
              let prev =
                Option.value ~default:0.0 (Hashtbl.find_opt into (enc u v))
              in
              Hashtbl.replace into (enc u v)
                (prev +. (rho *. App.output_size app j))
            | _ -> ())
          (Optree.children tree i))
      (Alloc.operators_of alloc u)
  done;
  List.iter
    (fun key ->
      let u = key / n_procs and v = key mod n_procs in
      let directed a b =
        Option.value ~default:0.0 (Hashtbl.find_opt into (enc a b))
      in
      let flow = directed u v +. directed v u in
      if exceeds flow platform.Platform.proc_link then
        add
          (Proc_link_overload
             {
               proc_a = u;
               proc_b = v;
               load = flow;
               capacity = platform.Platform.proc_link;
             }))
    (List.sort_uniq compare !pairs);
  List.rev !acc

let check app platform alloc =
  let structural = structural_violations app platform alloc in
  structural @ capacity_violations app platform alloc

let is_feasible app platform alloc = check app platform alloc = []

let pp_violation ppf = function
  | Unassigned_operator i -> Format.fprintf ppf "operator n%d is unassigned" i
  | Missing_download { proc; object_type } ->
    Format.fprintf ppf "P%d misses a download source for o%d" proc object_type
  | Extraneous_download { proc; object_type } ->
    Format.fprintf ppf "P%d downloads o%d which no hosted operator needs" proc
      object_type
  | Duplicate_download { proc; object_type } ->
    Format.fprintf ppf
      "P%d downloads o%d from more than one server (NIC load double-counted)"
      proc object_type
  | Not_held { proc; object_type; server } ->
    Format.fprintf ppf "P%d downloads o%d from S%d which does not hold it" proc
      object_type server
  | Compute_overload { proc; load; capacity } ->
    Format.fprintf ppf "P%d compute overload: %.1f > %.1f Mops/s" proc load
      capacity
  | Nic_overload { proc; load; capacity } ->
    Format.fprintf ppf "P%d NIC overload: %.1f > %.1f MB/s" proc load capacity
  | Server_card_overload { server; load; capacity } ->
    Format.fprintf ppf "S%d card overload: %.1f > %.1f MB/s" server load
      capacity
  | Server_link_overload { server; proc; load; capacity } ->
    Format.fprintf ppf "link S%d->P%d overload: %.1f > %.1f MB/s" server proc
      load capacity
  | Proc_link_overload { proc_a; proc_b; load; capacity } ->
    Format.fprintf ppf "link P%d<->P%d overload: %.1f > %.1f MB/s" proc_a
      proc_b load capacity

let explain = function
  | [] -> "feasible"
  | violations ->
    String.concat "\n"
      (List.map (Format.asprintf "%a" pp_violation) violations)

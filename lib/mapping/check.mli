(** Validation of an allocation against the paper's constraints (1)–(5)
    plus structural well-formedness.

    The checker is the single source of truth for feasibility: every
    heuristic solution and every exact solution is passed through it in
    tests, and the discrete-event simulator is validated against its
    verdicts. *)

type violation =
  | Unassigned_operator of int
      (** an operator of the application has no processor *)
  | Missing_download of { proc : int; object_type : int }
      (** a processor hosts an al-operator but has no source for one of
          its objects *)
  | Extraneous_download of { proc : int; object_type : int }
      (** a download of an object no hosted operator needs *)
  | Duplicate_download of { proc : int; object_type : int }
      (** the same object type appears more than once in a processor's
          download plan (different servers), double-counting its NIC
          load *)
  | Not_held of { proc : int; object_type : int; server : int }
      (** download points at a server that does not carry the object *)
  | Compute_overload of { proc : int; load : float; capacity : float }
      (** constraint (1) *)
  | Nic_overload of { proc : int; load : float; capacity : float }
      (** constraint (2) *)
  | Server_card_overload of { server : int; load : float; capacity : float }
      (** constraint (3) *)
  | Server_link_overload of {
      server : int;
      proc : int;
      load : float;
      capacity : float;
    }  (** constraint (4) *)
  | Proc_link_overload of {
      proc_a : int;
      proc_b : int;
      load : float;
      capacity : float;
    }  (** constraint (5) *)

val check :
  Insp_tree.App.t -> Insp_platform.Platform.t -> Alloc.t -> violation list
(** All violations, structural first.  Empty list = feasible. *)

(* lint: allow t3 — documented oracle entry point for external validity checks *)
val is_feasible :
  Insp_tree.App.t -> Insp_platform.Platform.t -> Alloc.t -> bool

val proc_demand : Insp_tree.App.t -> Alloc.t -> int -> Demand.t
(** Demand of processor [u]'s operator group (same arithmetic the
    heuristics use). *)

val proc_download_rate : Insp_tree.App.t -> Alloc.t -> int -> float
(** MB/s of basic-object downloads entering processor [u] according to
    its download plan. *)

val pair_flow : Insp_tree.App.t -> Alloc.t -> int -> int -> float
(** Total MB/s exchanged between two distinct processors over their
    link: child-to-parent flows in both directions (constraint (5)'s
    left-hand side). *)

val pp_violation : Format.formatter -> violation -> unit

val explain : violation list -> string
(** Multi-line human-readable report ("feasible" when empty). *)

(** A candidate solution: the processors bought, the operator assignment
    [a : N -> P] and the download plan [DL(u)] (paper §2.3). *)

type proc = {
  config : Insp_platform.Catalog.config;  (** purchased configuration *)
  operators : int list;  (** a-bar(u): operators mapped here, sorted *)
  downloads : (int * int) list;
      (** DL(u): (object type, server) pairs, sorted; normally one entry
          per object type.  Exact duplicate pairs are collapsed on
          construction; the same object type from two different servers
          is representable but flagged by the checker
          ([Check.Duplicate_download]). *)
}

type t

val make : proc array -> t
(** Builds an allocation from processor descriptions.  Raises
    [Invalid_argument] when an operator appears on two processors.
    Exact duplicate download entries are deduplicated. *)

val of_groups :
  configs:Insp_platform.Catalog.config array ->
  groups:int list array ->
  downloads:(int * int) list array ->
  t
(** Convenience constructor from parallel arrays. *)

val n_procs : t -> int

val proc : t -> int -> proc

val procs : t -> proc array

val assignment : t -> int -> int option
(** [assignment t i] is the processor index hosting operator [i], if
    assigned. *)

val operators_of : t -> int -> int list
(** Operators on processor [u] (a-bar(u)). *)

val downloads_of : t -> int -> (int * int) list

val n_operators_assigned : t -> int

val all_downloads : t -> (int * int * int) list
(** All [(proc, object_type, server)] triples. *)

val with_config : t -> int -> Insp_platform.Catalog.config -> t
(** Functional update of one processor's configuration (downgrade
    step). *)

val with_configs : t -> Insp_platform.Catalog.config array -> t
(** Replaces every processor's configuration in one structural copy —
    the downgrade pass over a large allocation would otherwise pay one
    O(procs) array copy per processor.  The array is indexed by
    processor and must cover all of them. *)

val with_downloads : t -> (int * int) list array -> t
(** Replaces every processor's download plan (server-selection step).
    The array is indexed by processor. *)

val pp : Format.formatter -> t -> unit

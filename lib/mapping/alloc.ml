type proc = {
  config : Insp_platform.Catalog.config;
  operators : int list;
  downloads : (int * int) list;
}

type t = { procs : proc array; assign : (int, int) Hashtbl.t }

let normalize_proc p =
  let operators = List.sort_uniq compare p.operators in
  if List.length operators <> List.length p.operators then
    invalid_arg "Alloc.make: duplicate operator on one processor";
  (* Exact duplicate (object, server) entries are collapsed: they would
     double-count the same stream.  Two entries for the same object from
     different servers are kept — the checker flags them as
     [Duplicate_download] so the NIC double-count is visible instead of
     silently rejected here. *)
  let downloads = List.sort_uniq compare p.downloads in
  { p with operators; downloads }

let make procs =
  let procs = Array.map normalize_proc procs in
  let assign = Hashtbl.create 64 in
  Array.iteri
    (fun u p ->
      List.iter
        (fun i ->
          if Hashtbl.mem assign i then
            invalid_arg "Alloc.make: operator assigned to two processors";
          Hashtbl.add assign i u)
        p.operators)
    procs;
  { procs; assign }

let of_groups ~configs ~groups ~downloads =
  let n = Array.length configs in
  if Array.length groups <> n || Array.length downloads <> n then
    invalid_arg "Alloc.of_groups: array length mismatch";
  make
    (Array.init n (fun u ->
         { config = configs.(u); operators = groups.(u); downloads = downloads.(u) }))

let n_procs t = Array.length t.procs
let proc t u = t.procs.(u)
let procs t = Array.copy t.procs
let assignment t i = Hashtbl.find_opt t.assign i
let operators_of t u = t.procs.(u).operators
let downloads_of t u = t.procs.(u).downloads
let n_operators_assigned t = Hashtbl.length t.assign

let all_downloads t =
  let acc = ref [] in
  Array.iteri
    (fun u p -> List.iter (fun (k, l) -> acc := (u, k, l) :: !acc) p.downloads)
    t.procs;
  List.rev !acc

let with_config t u config =
  let procs = Array.copy t.procs in
  procs.(u) <- { procs.(u) with config };
  { t with procs }

let with_configs t configs =
  if Array.length configs <> Array.length t.procs then
    invalid_arg "Alloc.with_configs: array length mismatch";
  let procs = Array.mapi (fun u p -> { p with config = configs.(u) }) t.procs in
  { t with procs }

let with_downloads t downloads =
  if Array.length downloads <> Array.length t.procs then
    invalid_arg "Alloc.with_downloads: array length mismatch";
  let procs =
    Array.mapi
      (fun u p -> normalize_proc { p with downloads = downloads.(u) })
      t.procs
  in
  { t with procs }

let pp ppf t =
  Format.fprintf ppf "@[<v>%d processors@ " (Array.length t.procs);
  Array.iteri
    (fun u p ->
      Format.fprintf ppf "P%d (%a): ops {%s}, downloads {%s}@ " u
        Insp_platform.Catalog.pp_config p.config
        (String.concat ", " (List.map string_of_int p.operators))
        (String.concat ", "
           (List.map
              (fun (k, l) -> Printf.sprintf "o%d<-S%d" k l)
              p.downloads)))
    t.procs;
  Format.fprintf ppf "@]"

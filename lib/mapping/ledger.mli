(** Incremental demand/feasibility ledger.

    Maintains, as mutable state, every quantity the from-scratch checker
    {!Check.check} derives from an allocation: per-processor compute,
    communication and download loads, per-server card and link loads,
    and per-processor-pair flows.  Mutations ({!add_operator},
    {!remove_operator}, {!add_download}, …) cost O(degree) — the number
    of tree edges and object leaves touching the edited operator — where
    the from-scratch path recomputes O(|group|²) sums per probe.

    {!Check.check} remains the oracle: {!assert_consistent} materialises
    the ledger as an {!Alloc.t}, runs the oracle, and fails loudly if
    the two violation sets diverge (float loads compared within 1e-6
    relative tolerance — incremental sums may differ from the oracle's
    in the last bits).  Aggregates are reset to exact zero whenever
    their contributing-entry count drops to zero, so float drift cannot
    accumulate across long edit sequences.

    Processor ids are ledger-assigned and stable; they are *not*
    compacted when processors are removed.  {!to_alloc} maps live
    processors, in increasing id order, to dense [Alloc] indices. *)

type t

type proc_id = int

(** Result of a hypothetical edit: the would-be demand of the probed
    processor and the would-be *total* flow of every processor pair the
    edit changes (only changed pairs are listed; unchanged pairs keep
    their already-validated totals). *)
type probe = { demand : Demand.t; pair_flows : (proc_id * float) list }

val create : Insp_tree.App.t -> Insp_platform.Platform.t -> t

val add_proc : t -> Insp_platform.Catalog.config -> proc_id
val remove_proc : t -> proc_id -> unit
(** Releases all hosted operators and download entries, then deletes the
    processor. *)

val n_procs : t -> int
val proc_ids : t -> proc_id list
(** Live processors, increasing id order. *)

val mem_proc : t -> proc_id -> bool
val config : t -> proc_id -> Insp_platform.Catalog.config
val set_config : t -> proc_id -> Insp_platform.Catalog.config -> unit
val operators_of : t -> proc_id -> int list
(** Sorted. *)

val downloads_of : t -> proc_id -> (int * int) list
(** Sorted (object type, server) pairs; one entry per distinct pair. *)

val assignment : t -> int -> proc_id option

val generation : t -> proc_id -> int
(** Monotone per-processor change stamp: bumped by every mutation that
    can alter an observable quantity of the processor — membership and
    download edits, config changes, and pair-flow updates caused by a
    {e neighbour's} membership edit.  A cached probe verdict keyed by
    [(id, generation)] of the involved processors is therefore valid
    exactly while the stamps are unchanged (the candidate-queue
    invalidation protocol, DESIGN.md §16). *)

val add_operator : t -> proc_id -> int -> unit
(** O(degree).  Raises [Invalid_argument] if already assigned. *)

val remove_operator : t -> int -> unit
(** O(degree).  Raises [Invalid_argument] if not assigned. *)

val add_download : t -> proc_id -> obj:int -> server:int -> unit
(** O(1) amortised.  Exact duplicate (obj, server) entries are collapsed
    (mirroring {!Alloc.make}); the same object from a second server is
    recorded and will surface as [Check.Duplicate_download].  Servers
    outside the platform range are recorded too (they surface as
    [Check.Not_held] and still load the processor's NIC, like the
    oracle). *)

val remove_download : t -> proc_id -> obj:int -> server:int -> unit
(** No-op when the entry is absent. *)

val merge : t -> winner:proc_id -> loser:proc_id -> unit
(** Moves every operator of [loser] onto [winner] and deletes [loser].
    O(sum of moved operators' degrees). *)

val demand : t -> proc_id -> Demand.t
(** Current demand of the processor's operator group (download term =
    distinct needed objects, like {!Demand.of_group}). *)

val compute_load : t -> proc_id -> float
val nic_load : t -> proc_id -> float
(** Checker semantics: planned download rate (which may double-count
    duplicated object types) + comm in + comm out. *)

val card_load : t -> int -> float
(** Aggregate planned download load (MB/s) against one server's card.
    This is the per-server footprint a multi-tenant service must reclaim
    when an application departs.  Raises [Invalid_argument] for servers
    outside the platform range. *)

val pair_flow : t -> proc_id -> proc_id -> float

val probe_add : t -> proc_id -> int -> probe
(** Would-be state after assigning one unassigned operator.  O(degree);
    does not mutate. *)

val probe_merge : t -> winner:proc_id -> loser:proc_id -> probe
(** Would-be state of [winner] after absorbing [loser].  [pair_flows]
    lists the merged totals towards every third-party neighbour.
    O(neighbour count); does not mutate. *)

val violations : t -> Check.violation list
(** Complete violation list, equivalent to running {!Check.check} on
    {!to_alloc} (processor indices are ledger ids).  O(live state), not
    O(procs²). *)

val violations_touching : t -> proc_id list -> Check.violation list
(** Violations anchored at the given processors: their structural
    download problems, constraints (1)/(2)/(4), the card constraint (3)
    of every server they download from, and constraint (5) for every
    pair they participate in.  Does not scan for unassigned operators.
    O(size of the touched state). *)

val of_alloc : Insp_tree.App.t -> Insp_platform.Platform.t -> Alloc.t -> t
(** Replays an allocation; processor ids coincide with [Alloc] indices. *)

(* lint: allow t3 — documented bridge to the allocation view *)
val to_alloc : t -> Alloc.t
(** Live processors in increasing id order. *)

val assert_consistent : t -> unit
(** Cross-validates against the {!Check.check} oracle on {!to_alloc};
    raises [Failure] with both violation lists rendered on divergence.
    Intended for tests and debugging — it runs the full from-scratch
    check. *)

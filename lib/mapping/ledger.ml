module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform
module Servers = Insp_platform.Servers
module Arena = Insp_util.Arena
module Obs = Insp_obs.Obs
module Imap = Map.Make (Int)

(* Commit-path allocation attribution (DESIGN.md §17): every mutation
   and probe below brackets its body with Obs.prof_enter/prof_exit —
   explicit pairs, not a closure wrapper, so the unprofiled hot path
   (millions of probes per 100k solve) allocates nothing extra.
   Argument guards raise before the enter; each function has a single
   exit point after its last mutation. *)

type proc_id = int

(* Directional flow over one processor pair.  [out_w] sums rho*delta of
   tree edges whose child lives on the owning processor and whose parent
   lives on the neighbour; [in_w] is the opposite direction.  [edges]
   counts contributing tree edges so the entry can be dropped exactly
   when it empties (killing float drift). *)
type flow = { out_w : float; in_w : float; edges : int }

let no_flow = { out_w = 0.0; in_w = 0.0; edges = 0 }

(* Structure-of-arrays processor state: every per-processor quantity is
   an [Arena] column keyed by the processor id.  Scalar loads live in
   unboxed float columns; the keyed interior tables (needed objects,
   download plan, pair flows) are int-keyed persistent maps whose
   ascending-key iteration replaces the old sort-a-Hashtbl-snapshot
   sweeps — same observable order, no per-query sort. *)
type t = {
  app : App.t;
  platform : Platform.t;
  arena : Arena.t;  (* processor id allocator + generation stamps *)
  config : Catalog.config Arena.col;
  members : int list Arena.col;  (* sorted *)
  compute : Arena.fcol;
  comm_in : Arena.fcol;
  comm_out : Arena.fcol;
  needs : int Imap.t Arena.col;  (* object type -> #hosted operators needing it *)
  need_rate : Arena.fcol;  (* download rate of the distinct needed objects *)
  dls : int list Imap.t Arena.col;  (* object type -> sorted distinct servers *)
  dl_rate : Arena.fcol;  (* total planned download rate (MB/s) *)
  dl_entries : int Arena.col;
  flows : flow Imap.t Arena.col;
  assign : proc_id option array;
  card_load : float array;  (* per-server aggregate download load *)
  card_entries : int array;
  link_load : Arena.fcol array;  (* per server: processor -> link load *)
  link_entries : int Arena.col array;
}

type probe = { demand : Demand.t; pair_flows : (proc_id * float) list }

let create app platform =
  let n_servers = Servers.n_servers platform.Platform.servers in
  {
    app;
    platform;
    arena = Arena.create ();
    config = Arena.col (Catalog.cheapest platform.Platform.catalog);
    members = Arena.col [];
    compute = Arena.fcol 0.0;
    comm_in = Arena.fcol 0.0;
    comm_out = Arena.fcol 0.0;
    needs = Arena.col Imap.empty;
    need_rate = Arena.fcol 0.0;
    dls = Arena.col Imap.empty;
    dl_rate = Arena.fcol 0.0;
    dl_entries = Arena.col 0;
    flows = Arena.col Imap.empty;
    assign = Array.make (App.n_operators app) None;
    card_load = Array.make n_servers 0.0;
    card_entries = Array.make n_servers 0;
    link_load = Array.init n_servers (fun _ -> Arena.fcol 0.0);
    link_entries = Array.init n_servers (fun _ -> Arena.col 0);
  }

let check_live t u =
  if not (Arena.is_live t.arena u) then invalid_arg "Ledger: dead processor id"

let n_procs t = Arena.n_live t.arena
let proc_ids t = Arena.live_ids t.arena
let mem_proc t u = Arena.is_live t.arena u
let generation t u = Arena.generation t.arena u

(* Every mutation of a processor's observable state bumps its stamp, so
   cached probe verdicts keyed by (id, generation) invalidate exactly
   when the probed state could have changed — including flow updates
   caused by a *neighbour's* membership edit. *)
let bump t u = Arena.touch t.arena u

let config t u =
  check_live t u;
  Arena.get t.config u

let set_config t u cfg =
  check_live t u;
  Arena.set t.config u cfg;
  bump t u

let operators_of t u =
  check_live t u;
  Arena.get t.members u

let assignment t i = t.assign.(i)

let downloads_list t u =
  List.concat_map
    (fun (k, ls) -> List.map (fun l -> (k, l)) ls)
    (Imap.bindings (Arena.get t.dls u))

let downloads_of t u =
  check_live t u;
  downloads_list t u

let add_proc t cfg =
  let id = Arena.alloc t.arena in
  Arena.set t.config id cfg;
  Arena.set t.members id [];
  Arena.fset t.compute id 0.0;
  Arena.fset t.comm_in id 0.0;
  Arena.fset t.comm_out id 0.0;
  Arena.set t.needs id Imap.empty;
  Arena.fset t.need_rate id 0.0;
  Arena.set t.dls id Imap.empty;
  Arena.fset t.dl_rate id 0.0;
  Arena.set t.dl_entries id 0;
  Arena.set t.flows id Imap.empty;
  id

(* ------------------------------------------------------------------ *)
(* Sorted member-list helpers                                          *)

let rec insert_sorted i = function
  | [] -> [ i ]
  | x :: rest when x < i -> x :: insert_sorted i rest
  | l -> i :: l

let uniq_leaves tree i = List.sort_uniq compare (Optree.leaves tree i)

(* ------------------------------------------------------------------ *)
(* Pair-flow bookkeeping                                               *)

let flow_of t u v =
  match Imap.find_opt v (Arena.get t.flows u) with
  | Some f -> f
  | None -> no_flow

(* Record one tree edge whose child lives on [child_proc] and whose
   parent lives on [parent_proc], carrying [w] MB/s. *)
let add_edge_flow t ~child_proc ~parent_proc w =
  let fc = flow_of t child_proc parent_proc in
  let fp = flow_of t parent_proc child_proc in
  Arena.set t.flows child_proc
    (Imap.add parent_proc
       { fc with out_w = fc.out_w +. w; edges = fc.edges + 1 }
       (Arena.get t.flows child_proc));
  Arena.set t.flows parent_proc
    (Imap.add child_proc
       { fp with in_w = fp.in_w +. w; edges = fp.edges + 1 }
       (Arena.get t.flows parent_proc));
  bump t child_proc;
  bump t parent_proc

let remove_edge_flow t ~child_proc ~parent_proc w =
  let fc = flow_of t child_proc parent_proc in
  let fp = flow_of t parent_proc child_proc in
  let fc = { fc with out_w = fc.out_w -. w; edges = fc.edges - 1 } in
  let fp = { fp with in_w = fp.in_w -. w; edges = fp.edges - 1 } in
  Arena.set t.flows child_proc
    (if fc.edges <= 0 then Imap.remove parent_proc (Arena.get t.flows child_proc)
     else Imap.add parent_proc fc (Arena.get t.flows child_proc));
  Arena.set t.flows parent_proc
    (if fp.edges <= 0 then Imap.remove child_proc (Arena.get t.flows parent_proc)
     else Imap.add child_proc fp (Arena.get t.flows parent_proc));
  bump t child_proc;
  bump t parent_proc

let pair_flow t u v =
  match Imap.find_opt v (Arena.get t.flows u) with
  | Some f -> f.out_w +. f.in_w
  | None -> 0.0

(* ------------------------------------------------------------------ *)
(* Operator placement deltas                                           *)

let add_operator t u i =
  if t.assign.(i) <> None then
    invalid_arg "Ledger.add_operator: operator already assigned";
  check_live t u;
  Obs.prof_enter "ledger.add_op";
  let app = t.app in
  let tree = App.tree app in
  let rho = App.rho app in
  Arena.fset t.compute u
    (Arena.fget t.compute u +. (rho *. App.work app i));
  List.iter
    (fun c ->
      let w = rho *. App.output_size app c in
      match t.assign.(c) with
      | Some v when v = u ->
        (* edge (c -> i) becomes internal: c no longer sends out *)
        Arena.fset t.comm_out u (Arena.fget t.comm_out u -. w)
      | other -> (
        Arena.fset t.comm_in u (Arena.fget t.comm_in u +. w);
        match other with
        | Some v -> add_edge_flow t ~child_proc:v ~parent_proc:u w
        | None -> ()))
    (Optree.children tree i);
  (match Optree.parent tree i with
  | None -> ()
  | Some pr -> (
    let w = rho *. App.output_size app i in
    match t.assign.(pr) with
    | Some v when v = u -> Arena.fset t.comm_in u (Arena.fget t.comm_in u -. w)
    | other -> (
      Arena.fset t.comm_out u (Arena.fget t.comm_out u +. w);
      match other with
      | Some v -> add_edge_flow t ~child_proc:u ~parent_proc:v w
      | None -> ())));
  let needs = ref (Arena.get t.needs u) in
  List.iter
    (fun k ->
      let c = Option.value ~default:0 (Imap.find_opt k !needs) in
      if c = 0 then
        Arena.fset t.need_rate u
          (Arena.fget t.need_rate u +. App.download_rate app k);
      needs := Imap.add k (c + 1) !needs)
    (uniq_leaves tree i);
  Arena.set t.needs u !needs;
  Arena.set t.members u (insert_sorted i (Arena.get t.members u));
  t.assign.(i) <- Some u;
  bump t u;
  Obs.prof_exit ()

let remove_operator t i =
  match t.assign.(i) with
  | None -> invalid_arg "Ledger.remove_operator: operator not assigned"
  | Some u ->
    Obs.prof_enter "ledger.remove_op";
    let app = t.app in
    let tree = App.tree app in
    let rho = App.rho app in
    Arena.fset t.compute u
      (Arena.fget t.compute u -. (rho *. App.work app i));
    List.iter
      (fun c ->
        let w = rho *. App.output_size app c in
        match t.assign.(c) with
        | Some v when v = u ->
          (* edge (c -> i) becomes crossing again: c sends out *)
          Arena.fset t.comm_out u (Arena.fget t.comm_out u +. w)
        | other -> (
          Arena.fset t.comm_in u (Arena.fget t.comm_in u -. w);
          match other with
          | Some v -> remove_edge_flow t ~child_proc:v ~parent_proc:u w
          | None -> ()))
      (Optree.children tree i);
    (match Optree.parent tree i with
    | None -> ()
    | Some pr -> (
      let w = rho *. App.output_size app i in
      match t.assign.(pr) with
      | Some v when v = u ->
        Arena.fset t.comm_in u (Arena.fget t.comm_in u +. w)
      | other -> (
        Arena.fset t.comm_out u (Arena.fget t.comm_out u -. w);
        match other with
        | Some v -> remove_edge_flow t ~child_proc:u ~parent_proc:v w
        | None -> ())));
    let needs = ref (Arena.get t.needs u) in
    List.iter
      (fun k ->
        match Imap.find_opt k !needs with
        | Some 1 ->
          needs := Imap.remove k !needs;
          Arena.fset t.need_rate u
            (if Imap.is_empty !needs then 0.0
             else Arena.fget t.need_rate u -. App.download_rate app k)
        | Some c -> needs := Imap.add k (c - 1) !needs
        | None -> assert false)
      (uniq_leaves tree i);
    Arena.set t.needs u !needs;
    Arena.set t.members u
      (List.filter (fun x -> x <> i) (Arena.get t.members u));
    t.assign.(i) <- None;
    if Arena.get t.members u = [] then begin
      (* Exact reset: an empty group carries exactly zero load, so any
         accumulated float drift dies here. *)
      Arena.fset t.compute u 0.0;
      Arena.fset t.comm_in u 0.0;
      Arena.fset t.comm_out u 0.0
    end;
    bump t u;
    Obs.prof_exit ()

(* ------------------------------------------------------------------ *)
(* Download-plan deltas                                                *)

let valid_server t l =
  l >= 0 && l < Servers.n_servers t.platform.Platform.servers

let add_download t u ~obj:k ~server:l =
  check_live t u;
  Obs.prof_enter "ledger.add_download";
  let dls = Arena.get t.dls u in
  let servers = Option.value ~default:[] (Imap.find_opt k dls) in
  if not (List.mem l servers) then begin
    (* exact duplicate (k, l) entries are collapsed, mirroring Alloc *)
    Arena.set t.dls u (Imap.add k (List.sort compare (l :: servers)) dls);
    let rate = App.download_rate t.app k in
    Arena.fset t.dl_rate u (Arena.fget t.dl_rate u +. rate);
    Arena.set t.dl_entries u (Arena.get t.dl_entries u + 1);
    if valid_server t l then begin
      t.card_load.(l) <- t.card_load.(l) +. rate;
      t.card_entries.(l) <- t.card_entries.(l) + 1;
      Arena.fset t.link_load.(l) u (Arena.fget t.link_load.(l) u +. rate);
      Arena.set t.link_entries.(l) u (Arena.get t.link_entries.(l) u + 1)
    end;
    bump t u
  end;
  Obs.prof_exit ()

let remove_download t u ~obj:k ~server:l =
  check_live t u;
  Obs.prof_enter "ledger.remove_download";
  let dls = Arena.get t.dls u in
  (match Imap.find_opt k dls with
  | Some servers when List.mem l servers ->
    let servers' = List.filter (fun x -> x <> l) servers in
    Arena.set t.dls u
      (if servers' = [] then Imap.remove k dls else Imap.add k servers' dls);
    let rate = App.download_rate t.app k in
    Arena.set t.dl_entries u (Arena.get t.dl_entries u - 1);
    Arena.fset t.dl_rate u
      (if Arena.get t.dl_entries u = 0 then 0.0
       else Arena.fget t.dl_rate u -. rate);
    if valid_server t l then begin
      t.card_entries.(l) <- t.card_entries.(l) - 1;
      t.card_load.(l) <-
        (if t.card_entries.(l) = 0 then 0.0 else t.card_load.(l) -. rate);
      let entries = Arena.get t.link_entries.(l) u - 1 in
      Arena.set t.link_entries.(l) u entries;
      Arena.fset t.link_load.(l) u
        (if entries <= 0 then 0.0 else Arena.fget t.link_load.(l) u -. rate)
    end;
    bump t u
  | Some _ | None -> ());
  Obs.prof_exit ()

let remove_proc t u =
  check_live t u;
  List.iter (fun i -> remove_operator t i) (Arena.get t.members u);
  List.iter
    (fun (k, l) -> remove_download t u ~obj:k ~server:l)
    (downloads_list t u);
  Arena.free t.arena u;
  Arena.reset t.config u;
  Arena.reset t.members u;
  Arena.set t.needs u Imap.empty;
  Arena.set t.dls u Imap.empty;
  Arena.set t.flows u Imap.empty

(* ------------------------------------------------------------------ *)
(* Demand queries and probes                                           *)

let needed_objects t u =
  List.map fst (Imap.bindings (Arena.get t.needs u))

let demand t u =
  check_live t u;
  {
    Demand.compute = Arena.fget t.compute u;
    download = Arena.fget t.need_rate u;
    comm_in = Arena.fget t.comm_in u;
    comm_out = Arena.fget t.comm_out u;
  }

let nic_load t u =
  check_live t u;
  Arena.fget t.dl_rate u +. Arena.fget t.comm_in u +. Arena.fget t.comm_out u

let compute_load t u =
  check_live t u;
  Arena.fget t.compute u

let card_load t l =
  if not (valid_server t l) then invalid_arg "Ledger.card_load: bad server";
  t.card_load.(l)

(* Accumulate [w] against key [v] in a tiny assoc list. *)
let acc_flow acc v w =
  (* lint: allow p3 — probe deltas touch O(degree) neighbours, not O(procs) *)
  let prev = Option.value ~default:0.0 (List.assoc_opt v acc) in
  (v, prev +. w) :: List.remove_assoc v acc
[@@lint.allow "p3"]

let probe_add t u i =
  if t.assign.(i) <> None then
    invalid_arg "Ledger.probe_add: operator already assigned";
  check_live t u;
  Obs.prof_enter "ledger.probe_add";
  let app = t.app in
  let tree = App.tree app in
  let rho = App.rho app in
  let compute = Arena.fget t.compute u +. (rho *. App.work app i) in
  let comm_in = ref (Arena.fget t.comm_in u) in
  let comm_out = ref (Arena.fget t.comm_out u) in
  let deltas = ref [] in
  List.iter
    (fun c ->
      let w = rho *. App.output_size app c in
      match t.assign.(c) with
      | Some v when v = u -> comm_out := !comm_out -. w
      | other -> (
        comm_in := !comm_in +. w;
        match other with
        | Some v -> deltas := acc_flow !deltas v w
        | None -> ()))
    (Optree.children tree i);
  (match Optree.parent tree i with
  | None -> ()
  | Some pr -> (
    let w = rho *. App.output_size app i in
    match t.assign.(pr) with
    | Some v when v = u -> comm_in := !comm_in -. w
    | other -> (
      comm_out := !comm_out +. w;
      match other with
      | Some v -> deltas := acc_flow !deltas v w
      | None -> ())));
  let needs = Arena.get t.needs u in
  let download =
    List.fold_left
      (fun acc k ->
        if Imap.mem k needs then acc else acc +. App.download_rate app k)
      (Arena.fget t.need_rate u)
      (uniq_leaves tree i)
  in
  let r =
    {
      demand =
        { Demand.compute; download; comm_in = !comm_in; comm_out = !comm_out };
      pair_flows = List.map (fun (v, dw) -> (v, pair_flow t u v +. dw)) !deltas;
    }
  in
  Obs.prof_exit ();
  r

let probe_merge t ~winner ~loser =
  if winner = loser then invalid_arg "Ledger.probe_merge: same processor";
  check_live t winner;
  check_live t loser;
  Obs.prof_enter "ledger.probe_merge";
  let out_wl, in_wl =
    match Imap.find_opt loser (Arena.get t.flows winner) with
    | Some f -> (f.out_w, f.in_w)
    | None -> (0.0, 0.0)
  in
  let compute = Arena.fget t.compute winner +. Arena.fget t.compute loser in
  (* Edges between winner and loser become internal: subtract each
     direction from the side that counted it. *)
  let comm_in =
    Arena.fget t.comm_in winner -. in_wl
    +. (Arena.fget t.comm_in loser -. out_wl)
  in
  let comm_out =
    Arena.fget t.comm_out winner -. out_wl
    +. (Arena.fget t.comm_out loser -. in_wl)
  in
  (* Ascending-key map iteration keeps the float sum and the pair_flows
     order independent of construction history — a probe must hash
     identically across runs and across ledgers that reached the same
     state differently. *)
  let winner_needs = Arena.get t.needs winner in
  let download =
    Imap.fold
      (fun k _ acc ->
        if Imap.mem k winner_needs then acc
        else acc +. App.download_rate t.app k)
      (Arena.get t.needs loser)
      (Arena.fget t.need_rate winner)
  in
  let third_party =
    let acc = ref [] in
    let collect u =
      Imap.iter
        (fun v f ->
          if v <> winner && v <> loser then
            acc := acc_flow !acc v (f.out_w +. f.in_w))
        (Arena.get t.flows u)
    in
    collect winner;
    collect loser;
    !acc
  in
  let r =
    {
      demand = { Demand.compute; download; comm_in; comm_out };
      pair_flows = third_party;
    }
  in
  Obs.prof_exit ();
  r

let merge t ~winner ~loser =
  if winner = loser then invalid_arg "Ledger.merge: same processor";
  Obs.prof_enter "ledger.merge";
  let moved = operators_of t loser in
  List.iter (fun i -> remove_operator t i) moved;
  remove_proc t loser;
  List.iter (fun i -> add_operator t winner i) moved;
  Obs.prof_exit ()

(* ------------------------------------------------------------------ *)
(* Violations                                                          *)

let tolerance = 1e-9
let exceeds load capacity = load > (capacity *. (1.0 +. tolerance)) +. tolerance

(* Violations anchored at one processor: structural download checks plus
   constraints (1), (2) and (4) for its own links.  O(degree of the
   processor's state). *)
let proc_violations t u acc =
  let servers = t.platform.Platform.servers in
  let add v = acc := v :: !acc in
  let needs = Arena.get t.needs u in
  let dls = Arena.get t.dls u in
  List.iter
    (fun k ->
      if not (Imap.mem k dls) then
        add (Check.Missing_download { proc = u; object_type = k }))
    (needed_objects t u);
  List.iter
    (fun (k, l) ->
      if not (Imap.mem k needs) then
        add (Check.Extraneous_download { proc = u; object_type = k });
      if not (valid_server t l) || not (Servers.holds servers l k) then
        add (Check.Not_held { proc = u; object_type = k; server = l }))
    (downloads_list t u);
  Imap.iter
    (fun k ls ->
      if List.length ls > 1 then
        add (Check.Duplicate_download { proc = u; object_type = k }))
    dls;
  let config = Arena.get t.config u in
  let compute = Arena.fget t.compute u in
  if exceeds compute config.Catalog.cpu.Catalog.speed then
    add
      (Check.Compute_overload
         { proc = u; load = compute; capacity = config.Catalog.cpu.Catalog.speed });
  let nic =
    Arena.fget t.dl_rate u +. Arena.fget t.comm_in u +. Arena.fget t.comm_out u
  in
  if exceeds nic config.Catalog.nic.Catalog.bandwidth then
    add
      (Check.Nic_overload
         { proc = u; load = nic; capacity = config.Catalog.nic.Catalog.bandwidth });
  Imap.iter
    (fun _ ls ->
      List.iter
        (fun l ->
          if valid_server t l && Arena.get t.link_entries.(l) u > 0 then begin
            let load = Arena.fget t.link_load.(l) u in
            if exceeds load t.platform.Platform.server_link then
              add
                (Check.Server_link_overload
                   {
                     server = l;
                     proc = u;
                     load;
                     capacity = t.platform.Platform.server_link;
                   })
          end)
        ls)
    dls

let server_card_violations t servers_touched acc =
  let add v = acc := v :: !acc in
  List.iter
    (fun l ->
      if exceeds t.card_load.(l) (Servers.card t.platform.Platform.servers l)
      then
        add
          (Check.Server_card_overload
             {
               server = l;
               load = t.card_load.(l);
               capacity = Servers.card t.platform.Platform.servers l;
             }))
    servers_touched

let pair_violations t us acc =
  let add v = acc := v :: !acc in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun u ->
      if mem_proc t u then
        Imap.iter
          (fun v f ->
            let a = min u v and b = max u v in
            if not (Hashtbl.mem seen (a, b)) then begin
              Hashtbl.replace seen (a, b) ();
              let total = f.out_w +. f.in_w in
              if exceeds total t.platform.Platform.proc_link then
                add
                  (Check.Proc_link_overload
                     {
                       proc_a = a;
                       proc_b = b;
                       load = total;
                       capacity = t.platform.Platform.proc_link;
                     })
            end)
          (Arena.get t.flows u))
    us

(* Duplicate-entry-free: Server_link_overload for (l, u) is only emitted
   once per pair because the dls table maps each object type once. *)
let dedup_link_overloads vs =
  let seen = Hashtbl.create 16 in
  List.filter
    (function
      | Check.Server_link_overload { server; proc; _ } ->
        if Hashtbl.mem seen (server, proc) then false
        else begin
          Hashtbl.replace seen (server, proc) ();
          true
        end
      | _ -> true)
    vs

let violations_touching t us =
  let us = List.sort_uniq compare us in
  let acc = ref [] in
  List.iter (fun u -> if mem_proc t u then proc_violations t u acc) us;
  let servers_touched =
    List.concat_map
      (fun u ->
        if mem_proc t u then
          List.concat_map
            (fun (_, ls) -> List.filter (valid_server t) ls)
            (Imap.bindings (Arena.get t.dls u))
        else [])
      us
    |> List.sort_uniq compare
  in
  server_card_violations t servers_touched acc;
  pair_violations t us acc;
  dedup_link_overloads (List.rev !acc)

let violations t =
  let acc = ref [] in
  for i = 0 to App.n_operators t.app - 1 do
    if t.assign.(i) = None then acc := Check.Unassigned_operator i :: !acc
  done;
  let ids = proc_ids t in
  List.iter (fun u -> proc_violations t u acc) ids;
  let all_servers =
    List.init (Servers.n_servers t.platform.Platform.servers) Fun.id
  in
  server_card_violations t all_servers acc;
  pair_violations t ids acc;
  dedup_link_overloads (List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Conversions and the oracle cross-check                              *)

let of_alloc app platform alloc =
  Obs.prof_enter "ledger.of_alloc";
  let t = create app platform in
  for u = 0 to Alloc.n_procs alloc - 1 do
    let id = add_proc t (Alloc.proc alloc u).Alloc.config in
    assert (id = u)
  done;
  for u = 0 to Alloc.n_procs alloc - 1 do
    List.iter (fun i -> add_operator t u i) (Alloc.operators_of alloc u)
  done;
  for u = 0 to Alloc.n_procs alloc - 1 do
    List.iter
      (fun (k, l) -> add_download t u ~obj:k ~server:l)
      (Alloc.downloads_of alloc u)
  done;
  Obs.prof_exit ();
  t

let to_alloc t =
  let ids = proc_ids t in
  Alloc.make
    (Array.of_list
       (List.map
          (fun u ->
            {
              Alloc.config = Arena.get t.config u;
              operators = Arena.get t.members u;
              downloads = downloads_list t u;
            })
          ids))

(* Multiset comparison of violation lists: identical constructors and
   integer sites; float loads equal within a relative tolerance (the
   incremental sums may differ from the oracle's in the last bits). *)
let rank = function
  | Check.Unassigned_operator _ -> 0
  | Check.Missing_download _ -> 1
  | Check.Extraneous_download _ -> 2
  | Check.Duplicate_download _ -> 3
  | Check.Not_held _ -> 4
  | Check.Compute_overload _ -> 5
  | Check.Nic_overload _ -> 6
  | Check.Server_card_overload _ -> 7
  | Check.Server_link_overload _ -> 8
  | Check.Proc_link_overload _ -> 9

let site = function
  | Check.Unassigned_operator i -> (i, 0, 0)
  | Check.Missing_download { proc; object_type } -> (proc, object_type, 0)
  | Check.Extraneous_download { proc; object_type } -> (proc, object_type, 0)
  | Check.Duplicate_download { proc; object_type } -> (proc, object_type, 0)
  | Check.Not_held { proc; object_type; server } -> (proc, object_type, server)
  | Check.Compute_overload { proc; _ } -> (proc, 0, 0)
  | Check.Nic_overload { proc; _ } -> (proc, 0, 0)
  | Check.Server_card_overload { server; _ } -> (server, 0, 0)
  | Check.Server_link_overload { server; proc; _ } -> (server, proc, 0)
  | Check.Proc_link_overload { proc_a; proc_b; _ } -> (proc_a, proc_b, 0)

let loads = function
  | Check.Compute_overload { load; capacity; _ }
  | Check.Nic_overload { load; capacity; _ }
  | Check.Server_card_overload { load; capacity; _ }
  | Check.Server_link_overload { load; capacity; _ }
  | Check.Proc_link_overload { load; capacity; _ } -> Some (load, capacity)
  | _ -> None

let float_close a b =
  Float.abs (a -. b)
  <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let same_violation a b =
  rank a = rank b
  && site a = site b
  &&
  match (loads a, loads b) with
  | Some (la, ca), Some (lb, cb) -> float_close la lb && float_close ca cb
  | None, None -> true
  | _ -> false

let sort_violations vs =
  List.sort (fun a b -> compare (rank a, site a) (rank b, site b)) vs

let equal_violations va vb =
  List.length va = List.length vb
  && List.for_all2 same_violation (sort_violations va) (sort_violations vb)

let assert_consistent t =
  let alloc = to_alloc t in
  let oracle = Check.check t.app t.platform alloc in
  (* Translate ledger processor ids to the dense indices [to_alloc]
     assigned them. *)
  let ids = proc_ids t in
  let index = Hashtbl.create 16 in
  List.iteri (fun idx id -> Hashtbl.replace index id idx) ids;
  let tr u = match Hashtbl.find_opt index u with Some i -> i | None -> u in
  let translate = function
    | Check.Missing_download { proc; object_type } ->
      Check.Missing_download { proc = tr proc; object_type }
    | Check.Extraneous_download { proc; object_type } ->
      Check.Extraneous_download { proc = tr proc; object_type }
    | Check.Duplicate_download { proc; object_type } ->
      Check.Duplicate_download { proc = tr proc; object_type }
    | Check.Not_held { proc; object_type; server } ->
      Check.Not_held { proc = tr proc; object_type; server }
    | Check.Compute_overload r ->
      Check.Compute_overload { r with proc = tr r.proc }
    | Check.Nic_overload r -> Check.Nic_overload { r with proc = tr r.proc }
    | Check.Server_link_overload r ->
      Check.Server_link_overload { r with proc = tr r.proc }
    | Check.Proc_link_overload r ->
      let a = tr r.proc_a and b = tr r.proc_b in
      Check.Proc_link_overload
        { r with proc_a = min a b; proc_b = max a b }
    | (Check.Unassigned_operator _ | Check.Server_card_overload _) as v -> v
  in
  let mine = List.map translate (violations t) in
  if not (equal_violations mine oracle) then
    failwith
      (Printf.sprintf
         "Ledger.assert_consistent: divergence from Check.check\n\
          ledger (%d):\n%s\noracle (%d):\n%s"
         (List.length mine)
         (Check.explain (sort_violations mine))
         (List.length oracle)
         (Check.explain (sort_violations oracle)))

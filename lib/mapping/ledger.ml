module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform
module Servers = Insp_platform.Servers

type proc_id = int

(* Directional flow over one processor pair.  [out_w] sums rho*delta of
   tree edges whose child lives on the owning processor and whose parent
   lives on the neighbour; [in_w] is the opposite direction.  [edges]
   counts contributing tree edges so the entry can be dropped exactly
   when it empties (killing float drift). *)
type flow = { mutable out_w : float; mutable in_w : float; mutable edges : int }

type link = { mutable l_load : float; mutable l_entries : int }

type pinfo = {
  mutable config : Catalog.config;
  mutable members : int list;  (* sorted *)
  mutable compute : float;
  mutable comm_in : float;
  mutable comm_out : float;
  needs : (int, int) Hashtbl.t;  (* object type -> #hosted operators needing it *)
  mutable need_rate : float;  (* download rate of the distinct needed objects *)
  dls : (int, int list) Hashtbl.t;  (* object type -> sorted distinct servers *)
  mutable dl_rate : float;  (* total planned download rate (MB/s) *)
  mutable dl_entries : int;
  flows : (proc_id, flow) Hashtbl.t;
}

type t = {
  app : App.t;
  platform : Platform.t;
  procs : (proc_id, pinfo) Hashtbl.t;
  assign : proc_id option array;
  mutable next_id : int;
  card_load : float array;  (* per-server aggregate download load *)
  card_entries : int array;
  links : (int * proc_id, link) Hashtbl.t;  (* (server, proc) link load *)
}

type probe = { demand : Demand.t; pair_flows : (proc_id * float) list }

let create app platform =
  let n_servers = Servers.n_servers platform.Platform.servers in
  {
    app;
    platform;
    procs = Hashtbl.create 32;
    assign = Array.make (App.n_operators app) None;
    next_id = 0;
    card_load = Array.make n_servers 0.0;
    card_entries = Array.make n_servers 0;
    links = Hashtbl.create 64;
  }

let proc t u =
  match Hashtbl.find_opt t.procs u with
  | Some p -> p
  | None -> invalid_arg "Ledger: dead processor id"

let n_procs t = Hashtbl.length t.procs

let proc_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.procs [] |> List.sort compare

(* Deterministic iteration: hash order must never reach an observable
   output (violation lists, probes, float sums), so every fold/iter over
   a live table below goes through a key-sorted snapshot.  Lint rule D6
   enforces this discipline in engine libraries. *)
let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mem_proc t u = Hashtbl.mem t.procs u
let config t u = (proc t u).config
let set_config t u cfg = (proc t u).config <- cfg
let operators_of t u = (proc t u).members
let assignment t i = t.assign.(i)
let downloads_list p =
  Hashtbl.fold (fun k ls acc -> List.map (fun l -> (k, l)) ls @ acc) p.dls []
  |> List.sort compare

let downloads_of t u = downloads_list (proc t u)

let add_proc t cfg =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.procs id
    {
      config = cfg;
      members = [];
      compute = 0.0;
      comm_in = 0.0;
      comm_out = 0.0;
      needs = Hashtbl.create 8;
      need_rate = 0.0;
      dls = Hashtbl.create 8;
      dl_rate = 0.0;
      dl_entries = 0;
      flows = Hashtbl.create 8;
    };
  id

(* ------------------------------------------------------------------ *)
(* Sorted member-list helpers                                          *)

let rec insert_sorted i = function
  | [] -> [ i ]
  | x :: rest when x < i -> x :: insert_sorted i rest
  | l -> i :: l

let uniq_leaves tree i = List.sort_uniq compare (Optree.leaves tree i)

(* ------------------------------------------------------------------ *)
(* Pair-flow bookkeeping                                               *)

let flow_entry p v =
  match Hashtbl.find_opt p.flows v with
  | Some f -> f
  | None ->
    let f = { out_w = 0.0; in_w = 0.0; edges = 0 } in
    Hashtbl.replace p.flows v f;
    f

(* Record one tree edge whose child lives on [child_proc] and whose
   parent lives on [parent_proc], carrying [w] MB/s. *)
let add_edge_flow t ~child_proc ~parent_proc w =
  let pc = proc t child_proc and pp = proc t parent_proc in
  let fc = flow_entry pc parent_proc and fp = flow_entry pp child_proc in
  fc.out_w <- fc.out_w +. w;
  fc.edges <- fc.edges + 1;
  fp.in_w <- fp.in_w +. w;
  fp.edges <- fp.edges + 1

let remove_edge_flow t ~child_proc ~parent_proc w =
  let pc = proc t child_proc and pp = proc t parent_proc in
  let fc = flow_entry pc parent_proc and fp = flow_entry pp child_proc in
  fc.out_w <- fc.out_w -. w;
  fc.edges <- fc.edges - 1;
  fp.in_w <- fp.in_w -. w;
  fp.edges <- fp.edges - 1;
  if fc.edges <= 0 then Hashtbl.remove pc.flows parent_proc;
  if fp.edges <= 0 then Hashtbl.remove pp.flows child_proc

let pair_flow t u v =
  match Hashtbl.find_opt (proc t u).flows v with
  | Some f -> f.out_w +. f.in_w
  | None -> 0.0

(* ------------------------------------------------------------------ *)
(* Operator placement deltas                                           *)

let add_operator t u i =
  if t.assign.(i) <> None then
    invalid_arg "Ledger.add_operator: operator already assigned";
  let p = proc t u in
  let app = t.app in
  let tree = App.tree app in
  let rho = App.rho app in
  p.compute <- p.compute +. (rho *. App.work app i);
  List.iter
    (fun c ->
      let w = rho *. App.output_size app c in
      match t.assign.(c) with
      | Some v when v = u ->
        (* edge (c -> i) becomes internal: c no longer sends out *)
        p.comm_out <- p.comm_out -. w
      | other -> (
        p.comm_in <- p.comm_in +. w;
        match other with
        | Some v -> add_edge_flow t ~child_proc:v ~parent_proc:u w
        | None -> ()))
    (Optree.children tree i);
  (match Optree.parent tree i with
  | None -> ()
  | Some pr -> (
    let w = rho *. App.output_size app i in
    match t.assign.(pr) with
    | Some v when v = u -> p.comm_in <- p.comm_in -. w
    | other -> (
      p.comm_out <- p.comm_out +. w;
      match other with
      | Some v -> add_edge_flow t ~child_proc:u ~parent_proc:v w
      | None -> ())));
  List.iter
    (fun k ->
      let c = Option.value ~default:0 (Hashtbl.find_opt p.needs k) in
      if c = 0 then p.need_rate <- p.need_rate +. App.download_rate app k;
      Hashtbl.replace p.needs k (c + 1))
    (uniq_leaves tree i);
  p.members <- insert_sorted i p.members;
  t.assign.(i) <- Some u

let remove_operator t i =
  match t.assign.(i) with
  | None -> invalid_arg "Ledger.remove_operator: operator not assigned"
  | Some u ->
    let p = proc t u in
    let app = t.app in
    let tree = App.tree app in
    let rho = App.rho app in
    p.compute <- p.compute -. (rho *. App.work app i);
    List.iter
      (fun c ->
        let w = rho *. App.output_size app c in
        match t.assign.(c) with
        | Some v when v = u ->
          (* edge (c -> i) becomes crossing again: c sends out *)
          p.comm_out <- p.comm_out +. w
        | other -> (
          p.comm_in <- p.comm_in -. w;
          match other with
          | Some v -> remove_edge_flow t ~child_proc:v ~parent_proc:u w
          | None -> ()))
      (Optree.children tree i);
    (match Optree.parent tree i with
    | None -> ()
    | Some pr -> (
      let w = rho *. App.output_size app i in
      match t.assign.(pr) with
      | Some v when v = u -> p.comm_in <- p.comm_in +. w
      | other -> (
        p.comm_out <- p.comm_out -. w;
        match other with
        | Some v -> remove_edge_flow t ~child_proc:u ~parent_proc:v w
        | None -> ())));
    List.iter
      (fun k ->
        match Hashtbl.find_opt p.needs k with
        | Some 1 ->
          Hashtbl.remove p.needs k;
          p.need_rate <-
            (if Hashtbl.length p.needs = 0 then 0.0
             else p.need_rate -. App.download_rate app k)
        | Some c -> Hashtbl.replace p.needs k (c - 1)
        | None -> assert false)
      (uniq_leaves tree i);
    p.members <- List.filter (fun x -> x <> i) p.members;
    t.assign.(i) <- None;
    if p.members = [] then begin
      (* Exact reset: an empty group carries exactly zero load, so any
         accumulated float drift dies here. *)
      p.compute <- 0.0;
      p.comm_in <- 0.0;
      p.comm_out <- 0.0
    end

(* ------------------------------------------------------------------ *)
(* Download-plan deltas                                                *)

let valid_server t l =
  l >= 0 && l < Servers.n_servers t.platform.Platform.servers

let add_download t u ~obj:k ~server:l =
  let p = proc t u in
  let servers = Option.value ~default:[] (Hashtbl.find_opt p.dls k) in
  if not (List.mem l servers) then begin
    (* exact duplicate (k, l) entries are collapsed, mirroring Alloc *)
    Hashtbl.replace p.dls k (List.sort compare (l :: servers));
    let rate = App.download_rate t.app k in
    p.dl_rate <- p.dl_rate +. rate;
    p.dl_entries <- p.dl_entries + 1;
    if valid_server t l then begin
      t.card_load.(l) <- t.card_load.(l) +. rate;
      t.card_entries.(l) <- t.card_entries.(l) + 1;
      match Hashtbl.find_opt t.links (l, u) with
      | Some lk ->
        lk.l_load <- lk.l_load +. rate;
        lk.l_entries <- lk.l_entries + 1
      | None -> Hashtbl.replace t.links (l, u) { l_load = rate; l_entries = 1 }
    end
  end

let remove_download t u ~obj:k ~server:l =
  let p = proc t u in
  match Hashtbl.find_opt p.dls k with
  | Some servers when List.mem l servers ->
    let servers' = List.filter (fun x -> x <> l) servers in
    if servers' = [] then Hashtbl.remove p.dls k
    else Hashtbl.replace p.dls k servers';
    let rate = App.download_rate t.app k in
    p.dl_entries <- p.dl_entries - 1;
    p.dl_rate <- (if p.dl_entries = 0 then 0.0 else p.dl_rate -. rate);
    if valid_server t l then begin
      t.card_entries.(l) <- t.card_entries.(l) - 1;
      t.card_load.(l) <-
        (if t.card_entries.(l) = 0 then 0.0 else t.card_load.(l) -. rate);
      match Hashtbl.find_opt t.links (l, u) with
      | Some lk ->
        lk.l_entries <- lk.l_entries - 1;
        if lk.l_entries <= 0 then Hashtbl.remove t.links (l, u)
        else lk.l_load <- lk.l_load -. rate
      | None -> assert false
    end
  | Some _ | None -> ()

let remove_proc t u =
  let p = proc t u in
  List.iter (fun i -> remove_operator t i) p.members;
  List.iter (fun (k, l) -> remove_download t u ~obj:k ~server:l)
    (downloads_list p);
  Hashtbl.remove t.procs u

(* ------------------------------------------------------------------ *)
(* Demand queries and probes                                           *)

let needed_objects p =
  Hashtbl.fold (fun k _ acc -> k :: acc) p.needs [] |> List.sort compare

let demand t u =
  let p = proc t u in
  {
    Demand.compute = p.compute;
    download = p.need_rate;
    comm_in = p.comm_in;
    comm_out = p.comm_out;
  }

let nic_load t u =
  let p = proc t u in
  p.dl_rate +. p.comm_in +. p.comm_out

let compute_load t u = (proc t u).compute

let card_load t l =
  if not (valid_server t l) then invalid_arg "Ledger.card_load: bad server";
  t.card_load.(l)

(* Accumulate [w] against key [v] in a tiny assoc list. *)
let acc_flow acc v w =
  let prev = Option.value ~default:0.0 (List.assoc_opt v acc) in
  (v, prev +. w) :: List.remove_assoc v acc

let probe_add t u i =
  if t.assign.(i) <> None then
    invalid_arg "Ledger.probe_add: operator already assigned";
  let p = proc t u in
  let app = t.app in
  let tree = App.tree app in
  let rho = App.rho app in
  let compute = p.compute +. (rho *. App.work app i) in
  let comm_in = ref p.comm_in and comm_out = ref p.comm_out in
  let deltas = ref [] in
  List.iter
    (fun c ->
      let w = rho *. App.output_size app c in
      match t.assign.(c) with
      | Some v when v = u -> comm_out := !comm_out -. w
      | other -> (
        comm_in := !comm_in +. w;
        match other with
        | Some v -> deltas := acc_flow !deltas v w
        | None -> ()))
    (Optree.children tree i);
  (match Optree.parent tree i with
  | None -> ()
  | Some pr -> (
    let w = rho *. App.output_size app i in
    match t.assign.(pr) with
    | Some v when v = u -> comm_in := !comm_in -. w
    | other -> (
      comm_out := !comm_out +. w;
      match other with
      | Some v -> deltas := acc_flow !deltas v w
      | None -> ())));
  let download =
    List.fold_left
      (fun acc k ->
        if Hashtbl.mem p.needs k then acc
        else acc +. App.download_rate app k)
      p.need_rate (uniq_leaves tree i)
  in
  {
    demand = { Demand.compute; download; comm_in = !comm_in; comm_out = !comm_out };
    pair_flows =
      List.map (fun (v, dw) -> (v, pair_flow t u v +. dw)) !deltas;
  }

let probe_merge t ~winner ~loser =
  if winner = loser then invalid_arg "Ledger.probe_merge: same processor";
  let pw = proc t winner and pl = proc t loser in
  let out_wl, in_wl =
    match Hashtbl.find_opt pw.flows loser with
    | Some f -> (f.out_w, f.in_w)
    | None -> (0.0, 0.0)
  in
  let compute = pw.compute +. pl.compute in
  (* Edges between winner and loser become internal: subtract each
     direction from the side that counted it. *)
  let comm_in = pw.comm_in -. in_wl +. (pl.comm_in -. out_wl) in
  let comm_out = pw.comm_out -. out_wl +. (pl.comm_out -. in_wl) in
  (* Key-sorted snapshots keep the float sum and the pair_flows order
     independent of hash state — a probe must hash identically across
     runs and across ledgers that reached the same state differently. *)
  let download =
    List.fold_left
      (fun acc (k, _) ->
        if Hashtbl.mem pw.needs k then acc else acc +. App.download_rate t.app k)
      pw.need_rate (sorted_bindings pl.needs)
  in
  let third_party =
    let acc = ref [] in
    let collect tbl =
      List.iter
        (fun (v, f) ->
          if v <> winner && v <> loser then
            acc := acc_flow !acc v (f.out_w +. f.in_w))
        (sorted_bindings tbl)
    in
    collect pw.flows;
    collect pl.flows;
    !acc
  in
  {
    demand = { Demand.compute; download; comm_in; comm_out };
    pair_flows = third_party;
  }

let merge t ~winner ~loser =
  if winner = loser then invalid_arg "Ledger.merge: same processor";
  let moved = (proc t loser).members in
  List.iter (fun i -> remove_operator t i) moved;
  remove_proc t loser;
  List.iter (fun i -> add_operator t winner i) moved

(* ------------------------------------------------------------------ *)
(* Violations                                                          *)

let tolerance = 1e-9
let exceeds load capacity = load > (capacity *. (1.0 +. tolerance)) +. tolerance

(* Violations anchored at one processor: structural download checks plus
   constraints (1), (2) and (4) for its own links.  O(degree of the
   processor's state). *)
let proc_violations t u acc =
  let servers = t.platform.Platform.servers in
  let p = proc t u in
  let add v = acc := v :: !acc in
  let needed = needed_objects p in
  List.iter
    (fun k ->
      if not (Hashtbl.mem p.dls k) then
        add (Check.Missing_download { proc = u; object_type = k }))
    needed;
  List.iter
    (fun (k, l) ->
      if not (Hashtbl.mem p.needs k) then
        add (Check.Extraneous_download { proc = u; object_type = k });
      if not (valid_server t l) || not (Servers.holds servers l k) then
        add (Check.Not_held { proc = u; object_type = k; server = l }))
    (downloads_list p);
  List.iter
    (fun (k, ls) ->
      if List.length ls > 1 then
        add (Check.Duplicate_download { proc = u; object_type = k }))
    (sorted_bindings p.dls);
  let config = p.config in
  if exceeds p.compute config.Catalog.cpu.Catalog.speed then
    add
      (Check.Compute_overload
         { proc = u; load = p.compute; capacity = config.Catalog.cpu.Catalog.speed });
  let nic = p.dl_rate +. p.comm_in +. p.comm_out in
  if exceeds nic config.Catalog.nic.Catalog.bandwidth then
    add
      (Check.Nic_overload
         { proc = u; load = nic; capacity = config.Catalog.nic.Catalog.bandwidth });
  List.iter
    (fun (_, ls) ->
      List.iter
        (fun l ->
          if valid_server t l then
            match Hashtbl.find_opt t.links (l, u) with
            | Some lk when exceeds lk.l_load t.platform.Platform.server_link ->
              add
                (Check.Server_link_overload
                   {
                     server = l;
                     proc = u;
                     load = lk.l_load;
                     capacity = t.platform.Platform.server_link;
                   })
            | Some _ | None -> ())
        ls)
    (sorted_bindings p.dls)

let server_card_violations t servers_touched acc =
  let add v = acc := v :: !acc in
  List.iter
    (fun l ->
      if exceeds t.card_load.(l) (Servers.card t.platform.Platform.servers l)
      then
        add
          (Check.Server_card_overload
             {
               server = l;
               load = t.card_load.(l);
               capacity = Servers.card t.platform.Platform.servers l;
             }))
    servers_touched

let pair_violations t us acc =
  let add v = acc := v :: !acc in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun u ->
      if mem_proc t u then
        List.iter
          (fun (v, f) ->
            let a = min u v and b = max u v in
            if not (Hashtbl.mem seen (a, b)) then begin
              Hashtbl.replace seen (a, b) ();
              let total = f.out_w +. f.in_w in
              if exceeds total t.platform.Platform.proc_link then
                add
                  (Check.Proc_link_overload
                     {
                       proc_a = a;
                       proc_b = b;
                       load = total;
                       capacity = t.platform.Platform.proc_link;
                     })
            end)
          (sorted_bindings (proc t u).flows))
    us

(* Duplicate-entry-free: Server_link_overload for (l, u) is only emitted
   once per pair because the dls table maps each object type once. *)
let dedup_link_overloads vs =
  let seen = Hashtbl.create 16 in
  List.filter
    (function
      | Check.Server_link_overload { server; proc; _ } ->
        if Hashtbl.mem seen (server, proc) then false
        else begin
          Hashtbl.replace seen (server, proc) ();
          true
        end
      | _ -> true)
    vs

let violations_touching t us =
  let us = List.sort_uniq compare us in
  let acc = ref [] in
  List.iter (fun u -> if mem_proc t u then proc_violations t u acc) us;
  let servers_touched =
    List.concat_map
      (fun u ->
        if mem_proc t u then
          List.concat_map
            (fun (_, ls) -> List.filter (valid_server t) ls)
            (sorted_bindings (proc t u).dls)
        else [])
      us
    |> List.sort_uniq compare
  in
  server_card_violations t servers_touched acc;
  pair_violations t us acc;
  dedup_link_overloads (List.rev !acc)

let violations t =
  let acc = ref [] in
  for i = 0 to App.n_operators t.app - 1 do
    if t.assign.(i) = None then acc := Check.Unassigned_operator i :: !acc
  done;
  let ids = proc_ids t in
  List.iter (fun u -> proc_violations t u acc) ids;
  let all_servers =
    List.init (Servers.n_servers t.platform.Platform.servers) Fun.id
  in
  server_card_violations t all_servers acc;
  pair_violations t ids acc;
  dedup_link_overloads (List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Conversions and the oracle cross-check                              *)

let of_alloc app platform alloc =
  let t = create app platform in
  for u = 0 to Alloc.n_procs alloc - 1 do
    let id = add_proc t (Alloc.proc alloc u).Alloc.config in
    assert (id = u)
  done;
  for u = 0 to Alloc.n_procs alloc - 1 do
    List.iter (fun i -> add_operator t u i) (Alloc.operators_of alloc u)
  done;
  for u = 0 to Alloc.n_procs alloc - 1 do
    List.iter
      (fun (k, l) -> add_download t u ~obj:k ~server:l)
      (Alloc.downloads_of alloc u)
  done;
  t

let to_alloc t =
  let ids = proc_ids t in
  Alloc.make
    (Array.of_list
       (List.map
          (fun u ->
            let p = proc t u in
            {
              Alloc.config = p.config;
              operators = p.members;
              downloads = downloads_list p;
            })
          ids))

(* Multiset comparison of violation lists: identical constructors and
   integer sites; float loads equal within a relative tolerance (the
   incremental sums may differ from the oracle's in the last bits). *)
let rank = function
  | Check.Unassigned_operator _ -> 0
  | Check.Missing_download _ -> 1
  | Check.Extraneous_download _ -> 2
  | Check.Duplicate_download _ -> 3
  | Check.Not_held _ -> 4
  | Check.Compute_overload _ -> 5
  | Check.Nic_overload _ -> 6
  | Check.Server_card_overload _ -> 7
  | Check.Server_link_overload _ -> 8
  | Check.Proc_link_overload _ -> 9

let site = function
  | Check.Unassigned_operator i -> (i, 0, 0)
  | Check.Missing_download { proc; object_type } -> (proc, object_type, 0)
  | Check.Extraneous_download { proc; object_type } -> (proc, object_type, 0)
  | Check.Duplicate_download { proc; object_type } -> (proc, object_type, 0)
  | Check.Not_held { proc; object_type; server } -> (proc, object_type, server)
  | Check.Compute_overload { proc; _ } -> (proc, 0, 0)
  | Check.Nic_overload { proc; _ } -> (proc, 0, 0)
  | Check.Server_card_overload { server; _ } -> (server, 0, 0)
  | Check.Server_link_overload { server; proc; _ } -> (server, proc, 0)
  | Check.Proc_link_overload { proc_a; proc_b; _ } -> (proc_a, proc_b, 0)

let loads = function
  | Check.Compute_overload { load; capacity; _ }
  | Check.Nic_overload { load; capacity; _ }
  | Check.Server_card_overload { load; capacity; _ }
  | Check.Server_link_overload { load; capacity; _ }
  | Check.Proc_link_overload { load; capacity; _ } -> Some (load, capacity)
  | _ -> None

let float_close a b =
  Float.abs (a -. b)
  <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let same_violation a b =
  rank a = rank b
  && site a = site b
  &&
  match (loads a, loads b) with
  | Some (la, ca), Some (lb, cb) -> float_close la lb && float_close ca cb
  | None, None -> true
  | _ -> false

let sort_violations vs =
  List.sort (fun a b -> compare (rank a, site a) (rank b, site b)) vs

let equal_violations va vb =
  List.length va = List.length vb
  && List.for_all2 same_violation (sort_violations va) (sort_violations vb)

let assert_consistent t =
  let alloc = to_alloc t in
  let oracle = Check.check t.app t.platform alloc in
  (* Translate ledger processor ids to the dense indices [to_alloc]
     assigned them. *)
  let ids = proc_ids t in
  let index = Hashtbl.create 16 in
  List.iteri (fun idx id -> Hashtbl.replace index id idx) ids;
  let tr u = match Hashtbl.find_opt index u with Some i -> i | None -> u in
  let translate = function
    | Check.Missing_download { proc; object_type } ->
      Check.Missing_download { proc = tr proc; object_type }
    | Check.Extraneous_download { proc; object_type } ->
      Check.Extraneous_download { proc = tr proc; object_type }
    | Check.Duplicate_download { proc; object_type } ->
      Check.Duplicate_download { proc = tr proc; object_type }
    | Check.Not_held { proc; object_type; server } ->
      Check.Not_held { proc = tr proc; object_type; server }
    | Check.Compute_overload r ->
      Check.Compute_overload { r with proc = tr r.proc }
    | Check.Nic_overload r -> Check.Nic_overload { r with proc = tr r.proc }
    | Check.Server_link_overload r ->
      Check.Server_link_overload { r with proc = tr r.proc }
    | Check.Proc_link_overload r ->
      let a = tr r.proc_a and b = tr r.proc_b in
      Check.Proc_link_overload
        { r with proc_a = min a b; proc_b = max a b }
    | (Check.Unassigned_operator _ | Check.Server_card_overload _) as v -> v
  in
  let mine = List.map translate (violations t) in
  if not (equal_violations mine oracle) then
    failwith
      (Printf.sprintf
         "Ledger.assert_consistent: divergence from Check.check\n\
          ledger (%d):\n%s\noracle (%d):\n%s"
         (List.length mine)
         (Check.explain (sort_violations mine))
         (List.length oracle)
         (Check.explain (sort_violations oracle)))

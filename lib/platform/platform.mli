(** The complete target platform: purchase catalog, fixed data servers and
    interconnect bandwidths.

    The interconnect is a fully connected graph: every server-to-processor
    link has bandwidth [server_link] ([bs_l], uniform as in the paper's
    "1 GB link" setup), every processor-to-processor link has bandwidth
    [proc_link] ([bp]).  Units: MB/s. *)

type t = {
  catalog : Catalog.t;
  servers : Servers.t;
  server_link : float;  (** [bs]: server -> processor link bandwidth *)
  proc_link : float;  (** [bp]: processor <-> processor link bandwidth *)
}

val make :
  catalog:Catalog.t ->
  servers:Servers.t ->
  ?server_link:float ->
  ?proc_link:float ->
  unit ->
  t
(** Links default to 1000 MB/s (the paper's uniform 1 GB links). *)

val paper_default :
  Insp_util.Prng.t ->
  ?n_servers:int ->
  ?n_object_types:int ->
  ?min_copies:int ->
  ?max_copies:int ->
  unit ->
  t
(** The paper's §5 platform: 6 servers with 10 GB/s cards (10000 MB/s),
    15 object types randomly distributed, 1000 MB/s links, Dell 2008
    purchase catalog. *)

val homogeneous : t -> cpu_index:int -> nic_index:int -> t
(** Same platform with the catalog restricted to one configuration
    (CONSTR-HOM). *)

(* lint: allow t3 — debugging printer *)
val pp : Format.formatter -> t -> unit

(** Processor purchase catalog (paper Table 1).

    A processor is a chassis plus one CPU option and one network-card
    option.  The paper prices Intel PowerEdge R900 configurations (Dell,
    March 2008): a fixed chassis cost of $7,548, five CPU upgrade levels
    and five NIC upgrade levels.  The heterogeneous case where all
    combinations can be bought is CONSTR-LAN; restricting the catalog to
    a single CPU and NIC option gives CONSTR-HOM.

    Units: CPU speeds in Mops/s (paper "GHz" x 1000), NIC bandwidths in
    MB/s (paper Gbps x 125), costs in dollars. *)

type cpu = { speed : float; cpu_cost : float }
type nic = { bandwidth : float; nic_cost : float }
type config = { cpu : cpu; nic : nic }

type t

val make : chassis_cost:float -> cpus:cpu array -> nics:nic array -> t
(** Options must be non-empty, sorted strictly increasing in capacity,
    and strictly increasing in cost. *)

val dell_2008 : t
(** The exact Table 1 catalog. *)

val homogeneous : t -> cpu_index:int -> nic_index:int -> t
(** Restriction of a catalog to a single configuration (CONSTR-HOM). *)

val chassis_cost : t -> float
val cpus : t -> cpu array
val nics : t -> nic array

val is_homogeneous : t -> bool

val config_cost : t -> config -> float
(** chassis + CPU upgrade + NIC upgrade. *)

val best : t -> config
(** Fastest CPU with the widest NIC (the "most expensive processor" the
    heuristics provision before downgrading). *)

val cheapest : t -> config
(** Slowest CPU with the narrowest NIC. *)

val configs : t -> config list
(** All CPU x NIC combinations, sorted by increasing cost (ties: slower
    CPU first). *)

val cheapest_satisfying : t -> speed:float -> bandwidth:float -> config option
(** Least-cost configuration with [cpu.speed >= speed] and
    [nic.bandwidth >= bandwidth]; [None] when even {!best} does not
    qualify. *)

val fits : config -> speed:float -> bandwidth:float -> bool
(** Capacity test used both by provisioning and by downgrading. *)

val label : config -> string
(** Compact stable identifier, e.g. ["cpu11720/nic125"] — used by the
    decision journal, where configurations are compared and rendered as
    strings. *)

val pp_config : Format.formatter -> config -> unit
val pp : Format.formatter -> t -> unit

type cpu = { speed : float; cpu_cost : float }
type nic = { bandwidth : float; nic_cost : float }
type config = { cpu : cpu; nic : nic }

type t = { chassis_cost : float; cpus : cpu array; nics : nic array }

let check_sorted name capacity cost options =
  let n = Array.length options in
  if n = 0 then invalid_arg ("Catalog.make: empty " ^ name ^ " options");
  for i = 1 to n - 1 do
    if capacity options.(i) <= capacity options.(i - 1) then
      invalid_arg ("Catalog.make: " ^ name ^ " capacities must increase");
    if cost options.(i) <= cost options.(i - 1) then
      invalid_arg ("Catalog.make: " ^ name ^ " costs must increase")
  done

let make ~chassis_cost ~cpus ~nics =
  if chassis_cost < 0.0 then invalid_arg "Catalog.make: negative chassis cost";
  check_sorted "CPU" (fun c -> c.speed) (fun c -> c.cpu_cost) cpus;
  check_sorted "NIC" (fun c -> c.bandwidth) (fun c -> c.nic_cost) nics;
  { chassis_cost; cpus = Array.copy cpus; nics = Array.copy nics }

(* Paper Table 1.  Speeds: GHz x 1000 -> Mops/s.  Bandwidths:
   Gbps x 125 -> MB/s.  Costs are the upgrade price over the $7,548
   chassis. *)
let dell_2008 =
  make ~chassis_cost:7548.0
    ~cpus:
      [|
        { speed = 11720.0; cpu_cost = 0.0 };
        { speed = 19200.0; cpu_cost = 1550.0 };
        { speed = 25600.0; cpu_cost = 2399.0 };
        { speed = 38400.0; cpu_cost = 3949.0 };
        { speed = 46880.0; cpu_cost = 5299.0 };
      |]
    ~nics:
      [|
        { bandwidth = 125.0; nic_cost = 0.0 };
        { bandwidth = 250.0; nic_cost = 399.0 };
        { bandwidth = 500.0; nic_cost = 1197.0 };
        { bandwidth = 1250.0; nic_cost = 2800.0 };
        { bandwidth = 2500.0; nic_cost = 5999.0 };
      |]

let homogeneous t ~cpu_index ~nic_index =
  if cpu_index < 0 || cpu_index >= Array.length t.cpus then
    invalid_arg "Catalog.homogeneous: cpu_index out of range";
  if nic_index < 0 || nic_index >= Array.length t.nics then
    invalid_arg "Catalog.homogeneous: nic_index out of range";
  {
    chassis_cost = t.chassis_cost;
    cpus = [| t.cpus.(cpu_index) |];
    nics = [| t.nics.(nic_index) |];
  }

let chassis_cost t = t.chassis_cost
let cpus t = Array.copy t.cpus
let nics t = Array.copy t.nics

let is_homogeneous t = Array.length t.cpus = 1 && Array.length t.nics = 1

let config_cost t config =
  t.chassis_cost +. config.cpu.cpu_cost +. config.nic.nic_cost

let best t =
  {
    cpu = t.cpus.(Array.length t.cpus - 1);
    nic = t.nics.(Array.length t.nics - 1);
  }

let cheapest t = { cpu = t.cpus.(0); nic = t.nics.(0) }

let configs t =
  let all = ref [] in
  Array.iter
    (fun cpu -> Array.iter (fun nic -> all := { cpu; nic } :: !all) t.nics)
    t.cpus;
  List.sort
    (fun a b ->
      let c = compare (config_cost t a) (config_cost t b) in
      if c <> 0 then c else compare a.cpu.speed b.cpu.speed)
    !all

let fits config ~speed ~bandwidth =
  config.cpu.speed >= speed && config.nic.bandwidth >= bandwidth

let cheapest_satisfying t ~speed ~bandwidth =
  List.find_opt (fun c -> fits c ~speed ~bandwidth) (configs t)

let label c = Printf.sprintf "cpu%.0f/nic%.0f" c.cpu.speed c.nic.bandwidth

let pp_config ppf c =
  Format.fprintf ppf "cpu %.0f Mops/s + nic %.0f MB/s" c.cpu.speed
    c.nic.bandwidth

let pp ppf t =
  Format.fprintf ppf "@[<v>chassis $%.0f@ " t.chassis_cost;
  Array.iter
    (fun c -> Format.fprintf ppf "cpu %.0f Mops/s  +$%.0f@ " c.speed c.cpu_cost)
    t.cpus;
  Array.iter
    (fun n ->
      Format.fprintf ppf "nic %.0f MB/s  +$%.0f@ " n.bandwidth n.nic_cost)
    t.nics;
  Format.fprintf ppf "@]"

module Obs = Insp_obs.Obs

type relation = Le | Eq | Ge

type constr = { coeffs : float array; relation : relation; bound : float }

type problem = {
  objective : float array;
  constraints : constr list;
  maximize : bool;
}

type solution = { values : float array; objective_value : float }

type outcome = Optimal of solution | Infeasible | Unbounded

let tolerance = 1e-9

(* Mutable tableau: rows 0..m-1 are constraints, row m is the objective
   (reduced costs), column [cols] is the right-hand side. *)
type tableau = {
  a : float array array;  (* (m+1) x (cols+1) *)
  basis : int array;  (* m entries: which column is basic in each row *)
  m : int;
  cols : int;
}

let pivot t ~row ~col =
  Obs.incr "lp.simplex.pivot";
  let piv = t.a.(row).(col) in
  let r = t.a.(row) in
  for j = 0 to t.cols do
    r.(j) <- r.(j) /. piv
  done;
  for i = 0 to t.m do
    if i <> row then begin
      let factor = t.a.(i).(col) in
      if Float.abs factor > 0.0 then begin
        let ri = t.a.(i) in
        for j = 0 to t.cols do
          ri.(j) <- ri.(j) -. (factor *. r.(j))
        done
      end
    end
  done;
  t.basis.(row) <- col

(* Bland's rule: entering = lowest-index column with a negative reduced
   cost; leaving = min-ratio row, ties broken by lowest basis index. *)
let rec iterate ?(allowed = fun _ -> true) t =
  let obj = t.a.(t.m) in
  let entering = ref (-1) in
  (try
     for j = 0 to t.cols - 1 do
       if allowed j && obj.(j) < -.tolerance then begin
         entering := j;
         raise Exit
       end
     done
   with Exit -> ());
  if !entering < 0 then `Optimal
  else begin
    let col = !entering in
    let best_row = ref (-1) in
    let best_ratio = ref infinity in
    for i = 0 to t.m - 1 do
      let aij = t.a.(i).(col) in
      if aij > tolerance then begin
        let ratio = t.a.(i).(t.cols) /. aij in
        if
          ratio < !best_ratio -. tolerance
          || (Float.abs (ratio -. !best_ratio) <= tolerance
             && !best_row >= 0
             && t.basis.(i) < t.basis.(!best_row))
        then begin
          best_row := i;
          best_ratio := ratio
        end
      end
    done;
    if !best_row < 0 then `Unbounded
    else begin
      pivot t ~row:!best_row ~col;
      iterate ~allowed t
    end
  end

let solve problem =
  Obs.incr "lp.simplex.solve";
  let n = Array.length problem.objective in
  List.iter
    (fun c ->
      if Array.length c.coeffs <> n then
        invalid_arg "Simplex.solve: ragged constraint row")
    problem.constraints;
  let constraints =
    (* Normalise to non-negative right-hand sides. *)
    List.map
      (fun c ->
        if c.bound < 0.0 then
          {
            coeffs = Array.map (fun x -> -.x) c.coeffs;
            bound = -.c.bound;
            relation =
              (match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
          }
        else c)
      problem.constraints
  in
  let m = List.length constraints in
  let n_slack =
    List.length
      (List.filter (fun c -> c.relation <> Eq) constraints)
  in
  let n_artificial =
    List.length (List.filter (fun c -> c.relation <> Le) constraints)
  in
  let cols = n + n_slack + n_artificial in
  let a = Array.make_matrix (m + 1) (cols + 1) 0.0 in
  let basis = Array.make m (-1) in
  let slack_base = n in
  let artificial_base = n + n_slack in
  let next_slack = ref 0 in
  let next_artificial = ref 0 in
  List.iteri
    (fun i c ->
      Array.blit c.coeffs 0 a.(i) 0 n;
      a.(i).(cols) <- c.bound;
      (match c.relation with
      | Le ->
        let s = slack_base + !next_slack in
        incr next_slack;
        a.(i).(s) <- 1.0;
        basis.(i) <- s
      | Ge ->
        let s = slack_base + !next_slack in
        incr next_slack;
        a.(i).(s) <- -1.0;
        let art = artificial_base + !next_artificial in
        incr next_artificial;
        a.(i).(art) <- 1.0;
        basis.(i) <- art
      | Eq ->
        let art = artificial_base + !next_artificial in
        incr next_artificial;
        a.(i).(art) <- 1.0;
        basis.(i) <- art))
    constraints;
  let t = { a; basis; m; cols } in
  (* Phase 1: minimise the sum of artificial variables. *)
  let outcome_phase1 =
    if n_artificial = 0 then `Optimal
    else begin
      for j = artificial_base to cols - 1 do
        t.a.(m).(j) <- 1.0
      done;
      (* Price out the artificial basics. *)
      for i = 0 to m - 1 do
        if t.basis.(i) >= artificial_base then
          for j = 0 to cols do
            t.a.(m).(j) <- t.a.(m).(j) -. t.a.(i).(j)
          done
      done;
      iterate t
    end
  in
  match outcome_phase1 with
  | `Unbounded -> Infeasible (* phase 1 is bounded below by 0 *)
  | `Optimal ->
    let phase1_value = -.t.a.(m).(cols) in
    if n_artificial > 0 && phase1_value > 1e-6 then Infeasible
    else begin
      (* Drive any residual artificial variables out of the basis. *)
      for i = 0 to m - 1 do
        if t.basis.(i) >= artificial_base then begin
          let found = ref (-1) in
          (try
             for j = 0 to artificial_base - 1 do
               if Float.abs t.a.(i).(j) > 1e-7 then begin
                 found := j;
                 raise Exit
               end
             done
           with Exit -> ());
          if !found >= 0 then pivot t ~row:i ~col:!found
          (* else the row is redundant; harmless to keep *)
        end
      done;
      (* Phase 2 objective. *)
      let sign = if problem.maximize then -1.0 else 1.0 in
      for j = 0 to cols do
        t.a.(m).(j) <- 0.0
      done;
      for j = 0 to n - 1 do
        t.a.(m).(j) <- sign *. problem.objective.(j)
      done;
      for i = 0 to m - 1 do
        let b = t.basis.(i) in
        if b < n then begin
          let cost = sign *. problem.objective.(b) in
          if Float.abs cost > 0.0 then
            for j = 0 to cols do
              t.a.(m).(j) <- t.a.(m).(j) -. (cost *. t.a.(i).(j))
            done
        end
      done;
      let allowed j = j < artificial_base in
      match iterate ~allowed t with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let values = Array.make n 0.0 in
        for i = 0 to m - 1 do
          if t.basis.(i) < n then values.(t.basis.(i)) <- t.a.(i).(cols)
        done;
        let objective_value =
          Array.to_list values
          |> List.mapi (fun j v -> problem.objective.(j) *. v)
          |> List.fold_left ( +. ) 0.0
        in
        Optimal { values; objective_value }
    end

let check_feasible problem point =
  let n = Array.length problem.objective in
  Array.length point = n
  && Array.for_all (fun v -> v >= -1e-6) point
  && List.for_all
       (fun c ->
         let lhs = ref 0.0 in
         for j = 0 to n - 1 do
           lhs := !lhs +. (c.coeffs.(j) *. point.(j))
         done;
         match c.relation with
         | Le -> !lhs <= c.bound +. 1e-6
         | Ge -> !lhs >= c.bound -. 1e-6
         | Eq -> Float.abs (!lhs -. c.bound) <= 1e-6)
       problem.constraints

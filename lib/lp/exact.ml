module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform
module Alloc = Insp_mapping.Alloc
module Check = Insp_mapping.Check
module Cost = Insp_mapping.Cost
module Demand = Insp_mapping.Demand
module Server_select = Insp_heuristics.Server_select
module Obs = Insp_obs.Obs
module Journal = Insp_obs.Journal

type result = {
  n_procs : int;
  cost : float;
  alloc : Alloc.t;
  proven : bool;
  nodes : int;
}

let ceil_div x y = int_of_float (Float.ceil (x /. y -. 1e-9))

let lower_bound_procs app platform =
  max 1 (Cost.lower_bound_processors app platform.Platform.catalog)

let solve ?(node_limit = 2_000_000) ?max_groups app platform =
  let catalog = platform.Platform.catalog in
  if not (Catalog.is_homogeneous catalog) then
    Error "Exact.solve: platform must be homogeneous (CONSTR-HOM)"
  else begin
    let config = Catalog.cheapest catalog in
    let speed = config.Catalog.cpu.Catalog.speed in
    let proc_cost = Catalog.config_cost catalog config in
    let tree = App.tree app in
    let n = App.n_operators app in
    let order = Array.of_list (Optree.preorder tree) in
    let max_groups = match max_groups with Some m -> m | None -> n in
    let rho = App.rho app in
    (* Suffix sums of remaining work along the assignment order, for the
       compute-based bound. *)
    let remaining = Array.make (n + 1) 0.0 in
    for pos = n - 1 downto 0 do
      remaining.(pos) <- remaining.(pos + 1) +. (rho *. App.work app order.(pos))
    done;
    let groups = Array.make max_groups [] in
    let assign = Array.make n (-1) in
    let best : result option ref = ref None in
    let nodes = ref 0 in
    let truncated = ref false in
    let flow_between g h =
      let one_way src =
        List.fold_left
          (fun acc i ->
            match Optree.parent tree i with
            | Some p when List.mem p h -> acc +. (rho *. App.output_size app i)
            | Some _ | None -> acc)
          0.0 src
      in
      one_way g +. one_way h
    in
    let fits_with op gid =
      let candidate = op :: groups.(gid) in
      Demand.fits config (Demand.of_group app candidate)
      &&
      let ok = ref true in
      for other = 0 to max_groups - 1 do
        if other <> gid && groups.(other) <> [] then
          if
            flow_between candidate groups.(other)
            > platform.Platform.proc_link +. 1e-9
          then ok := false
      done;
      !ok
    in
    let try_complete n_used =
      let live = Array.sub groups 0 n_used in
      match
        Server_select.sophisticated app platform ~groups:live
      with
      | Error _ -> ()
      | Ok downloads ->
        let alloc =
          Alloc.of_groups
            ~configs:(Array.make n_used config)
            ~groups:live ~downloads
        in
        if Check.check app platform alloc = [] then begin
          let cost = float_of_int n_used *. proc_cost in
          match !best with
          | Some b when b.cost <= cost -> ()
          | _ ->
            Obs.mark "lp.exact.incumbent";
            Obs.gauge "lp.exact.incumbent" (float_of_int n_used);
            if Obs.journaling () then
              Obs.event_bounded ~category:"lp"
                (Journal.Exact_incumbent { n_procs = n_used; nodes = !nodes });
            best :=
              Some
                {
                  n_procs = n_used;
                  cost;
                  alloc;
                  proven = false;
                  nodes = !nodes;
                }
        end
    in
    let best_procs () =
      match !best with Some b -> b.n_procs | None -> max_groups + 1
    in
    let rec dfs pos n_used =
      if !nodes >= node_limit then truncated := true
      else begin
        incr nodes;
        Obs.incr "lp.exact.node";
        if pos = n then try_complete n_used
        else begin
          let bound = n_used + max 0 (ceil_div remaining.(pos) speed - n_used) in
          (* bound = processors already open plus at least enough for the
             remaining work; conservative but cheap. *)
          if bound >= best_procs () then Obs.incr "lp.exact.pruned"
          else begin
            let op = order.(pos) in
            (* Existing groups first, then (canonically) one new group. *)
            for gid = 0 to n_used - 1 do
              if best_procs () > n_used && fits_with op gid then begin
                groups.(gid) <- op :: groups.(gid);
                assign.(op) <- gid;
                dfs (pos + 1) n_used;
                groups.(gid) <- List.tl groups.(gid);
                assign.(op) <- -1
              end
            done;
            if
              n_used < max_groups
              && n_used + 1 < best_procs ()
              && fits_with op n_used
            then begin
              groups.(n_used) <- [ op ];
              assign.(op) <- n_used;
              dfs (pos + 1) (n_used + 1);
              groups.(n_used) <- [];
              assign.(op) <- -1
            end
          end
        end
      end
    in
    dfs 0 0;
    match !best with
    | None ->
      if !truncated then Error "Exact.solve: node limit reached, no solution"
      else Error "Exact.solve: no feasible solution exists"
    | Some b -> Ok { b with proven = not !truncated; nodes = !nodes }
  end

module Obs = Insp_obs.Obs
module Journal = Insp_obs.Journal

type t = {
  problem : Simplex.problem;
  integer_vars : int list;
}

type status = Proven | NodeLimit

type result = {
  solution : Simplex.solution option;
  bound : float;
  status : status;
  nodes_explored : int;
}

let integrality_tolerance = 1e-6

let fractional_var t (sol : Simplex.solution) =
  List.find_opt
    (fun j ->
      let v = sol.values.(j) in
      Float.abs (v -. Float.round v) > integrality_tolerance)
    t.integer_vars

let unit_row n j coeff =
  let coeffs = Array.make n 0.0 in
  coeffs.(j) <- coeff;
  coeffs

let relaxation_bound t =
  match Simplex.solve t.problem with
  | Simplex.Optimal s -> Some s.objective_value
  | Simplex.Infeasible | Simplex.Unbounded -> None

let solve ?(node_limit = 100_000) t =
  let n = Array.length t.problem.objective in
  let maximize = t.problem.maximize in
  let better a b = if maximize then a > b else a < b in
  let best : Simplex.solution option ref = ref None in
  let nodes = ref 0 in
  let truncated = ref false in
  let rec explore extra =
    if !nodes >= node_limit then truncated := true
    else begin
      incr nodes;
      Obs.incr "lp.bb.node";
      let problem =
        { t.problem with Simplex.constraints = t.problem.constraints @ extra }
      in
      match Simplex.solve problem with
      | Simplex.Infeasible -> Obs.incr "lp.bb.pruned.infeasible"
      | Simplex.Unbounded ->
        (* An unbounded relaxation cannot be pruned; treat as truncation
           (only happens on degenerate inputs). *)
        truncated := true
      | Simplex.Optimal sol -> (
        let dominated =
          match !best with
          | Some b ->
            not (better sol.objective_value b.Simplex.objective_value)
          | None -> false
        in
        if dominated then Obs.incr "lp.bb.pruned.bound"
        else
          match fractional_var t sol with
          | None ->
            best := Some sol;
            Obs.mark "lp.bb.incumbent";
            Obs.gauge "lp.bb.incumbent" sol.objective_value;
            if Obs.journaling () then
              Obs.event_bounded ~category:"lp"
                (Journal.Lp_incumbent { objective = sol.objective_value })
          | Some j ->
            let v = sol.values.(j) in
            let lo = Float.floor v in
            if Obs.journaling () then
              Obs.event_bounded ~category:"lp"
                (Journal.Lp_branch { var = j; value = v; floor = lo });
            explore
              ({ Simplex.coeffs = unit_row n j 1.0; relation = Simplex.Le;
                 bound = lo }
              :: extra);
            explore
              ({ Simplex.coeffs = unit_row n j 1.0; relation = Simplex.Ge;
                 bound = lo +. 1.0 }
              :: extra))
    end
  in
  explore [];
  let bound =
    match (!best, !truncated) with
    | Some s, false -> s.Simplex.objective_value
    | _ -> (
      match relaxation_bound t with
      | Some b -> b
      | None -> if maximize then neg_infinity else infinity)
  in
  Obs.gauge "lp.bb.bound" bound;
  if Obs.journaling () then Obs.event (Journal.Lp_bound { bound });
  {
    solution = !best;
    bound;
    status = (if !truncated then NodeLimit else Proven);
    nodes_explored = !nodes;
  }

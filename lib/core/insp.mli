(** In-Network Stream Processing — resource allocation toolkit.

    Umbrella module re-exporting the whole library.  A reproduction of
    Benoit, Casanova, Rehn-Sonigo & Robert, "Resource Allocation
    Strategies for Constructive In-Network Stream Processing"
    (APDCM/IPDPS 2009).

    Typical use:

    {[
      let config = Insp.Config.make ~n_operators:60 ~alpha:0.9 () in
      let inst = Insp.Instance.generate config in
      match Insp.solve inst with
      | Ok outcome -> Format.printf "cost $%.0f@." outcome.Insp.Solve.cost
      | Error f -> prerr_endline (Insp.Solve.failure_message f)
    ]} *)

val version : string

(** {1 Utilities} *)

module Prng = Insp_util.Prng
module Stats = Insp_util.Stats
module Table = Insp_util.Table
module Csv = Insp_util.Csv
module Heap = Insp_util.Heap
module Union_find = Insp_util.Union_find
module Arena = Insp_util.Arena

(** {1 Application model} *)

module Objects = Insp_tree.Objects
module Optree = Insp_tree.Optree
module App = Insp_tree.App
module Generate = Insp_tree.Generate
module Tree_metrics = Insp_tree.Metrics
module Dot = Insp_tree.Dot

(** {1 Platform model} *)

module Catalog = Insp_platform.Catalog
module Servers = Insp_platform.Servers
module Platform = Insp_platform.Platform

(** {1 Mapping model} *)

module Alloc = Insp_mapping.Alloc
module Demand = Insp_mapping.Demand
module Check = Insp_mapping.Check
module Ledger = Insp_mapping.Ledger
module Cost = Insp_mapping.Cost

(** {1 Heuristics} *)

module Builder = Insp_heuristics.Builder
module Solve = Insp_heuristics.Solve
module Server_select = Insp_heuristics.Server_select
module Downgrade = Insp_heuristics.Downgrade

(** {1 Exact solvers / LP substrate} *)

module Simplex = Insp_lp.Simplex
module Milp = Insp_lp.Milp
module Ilp_model = Insp_lp.Ilp_model
module Exact = Insp_lp.Exact

(** {1 Simulation} *)

module Fair_share = Insp_sim.Fair_share
module Fair_share_inc = Insp_sim.Fair_share_inc
module Runtime = Insp_sim.Runtime

(** {1 Observability}

    Deterministic tracing, metrics and profiling ({!Obs} is the guarded
    facade; install a sink to start recording).  See DESIGN.md §10. *)

module Obs = Insp_obs.Obs
module Obs_metrics = Insp_obs.Metrics
module Obs_span = Insp_obs.Span
module Obs_export = Insp_obs.Export
module Obs_journal = Insp_obs.Journal
module Obs_jsonc = Insp_obs.Jsonc
module Obs_prof = Insp_obs.Prof

(** {1 Multi-application extension (paper §6 future work)} *)

module Dag = Insp_multi.Dag
module Cse = Insp_multi.Cse
module Dag_check = Insp_multi.Dag_check
module Dag_place = Insp_multi.Dag_place
module Multi_workload = Insp_multi.Multi_workload
module Dag_runtime = Insp_multi.Dag_runtime

(** {1 Mutable-application extension (paper §6 future work)} *)

module Rewrite = Insp_rewrite.Rewrite

(** {1 Online multi-tenant allocation service} *)

module Serve = Insp_serve.Serve
module Serve_stream = Insp_serve.Stream

(** {1 Fault injection, repair and redundancy} *)

module Fault_scenario = Insp_faults.Scenario
module Fault_repair = Insp_faults.Repair
module Fault_engine = Insp_faults.Engine
module Redundancy = Insp_faults.Redundancy

(** {1 Workloads and experiments} *)

module Config = Insp_workload.Config
module Instance = Insp_workload.Instance
module Figure = Insp_experiments.Figure
module Suite = Insp_experiments.Suite
module Par_sweep = Insp_experiments.Par_sweep

(** {1 Entry points} *)

val solve :
  ?seed:int -> Instance.t -> (Solve.outcome, Solve.failure) result
(** Solve an instance with the paper's best heuristic
    (Subtree-bottom-up), falling back to every other heuristic in the
    paper's recommended order and returning the cheapest feasible
    outcome. *)

val simulate :
  ?window:int ->
  ?horizon:float ->
  ?warmup:float ->
  ?kernel:Fair_share_inc.kernel ->
  Instance.t ->
  Alloc.t ->
  Runtime.report
(** Validate then execute a mapping in the discrete-event runtime.
    [kernel] selects the fair-share solver (default [`Incremental]). *)

(** Parameters of one random instance, following the paper's simulation
    methodology (§5) with the calibration of DESIGN.md §3. *)

type size_regime =
  | Small  (** 5–30 MB *)
  | Large  (** 450–530 MB *)
  | Custom_sizes of float * float
      (** explicit [lo, hi] MB range — the scale instances use tiny
          objects so very large trees stay hostable on the paper's
          catalog *)

type freq_regime =
  | High  (** one download every 2 s *)
  | Low  (** one download every 50 s *)
  | Custom of float  (** downloads per second *)

type t = {
  n_operators : int;
  alpha : float;
  sizes : size_regime;
  freq : freq_regime;
  n_object_types : int;  (** paper: 15 *)
  n_servers : int;  (** paper: 6 *)
  min_copies : int;  (** replication lower bound, paper default 1 *)
  max_copies : int;  (** replication upper bound *)
  rho : float;  (** target throughput, results/s *)
  base_work : float;  (** Mops, DESIGN.md calibration *)
  work_factor : float;  (** Mops/MB^alpha *)
  seed : int;
}

val default : t
(** N=60, alpha=0.9, small sizes, high frequency, 15 object types over 6
    servers with 1–2 copies, rho=1, calibrated work constants, seed 1. *)

val make :
  ?alpha:float ->
  ?sizes:size_regime ->
  ?freq:freq_regime ->
  ?n_object_types:int ->
  ?n_servers:int ->
  ?min_copies:int ->
  ?max_copies:int ->
  ?rho:float ->
  ?base_work:float ->
  ?work_factor:float ->
  ?seed:int ->
  n_operators:int ->
  unit ->
  t
(** [default] with overrides.  When [sizes] is [Large] and [rho] is not
    given, rho defaults to 0.1 (DESIGN.md §3). *)

val scale : ?seed:int -> n_operators:int -> unit -> t
(** Scale-calibrated preset for very large trees (DESIGN.md §16):
    [Custom_sizes (0.001, 0.005)] MB objects and [base_work] 2000 Mops
    keep a 10k–100k-operator tree hostable on the unchanged paper
    platform (the root's output, which carries the whole leaf mass,
    stays under the 1000 MB/s processor link up to N ~ 300k). *)

val size_range : size_regime -> float * float
(** Raises [Invalid_argument] on a [Custom_sizes] range with [lo <= 0]
    or [hi < lo]. *)

val frequency : freq_regime -> float

val pp : Format.formatter -> t -> unit

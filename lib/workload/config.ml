type size_regime = Small | Large | Custom_sizes of float * float

type freq_regime = High | Low | Custom of float

type t = {
  n_operators : int;
  alpha : float;
  sizes : size_regime;
  freq : freq_regime;
  n_object_types : int;
  n_servers : int;
  min_copies : int;
  max_copies : int;
  rho : float;
  base_work : float;
  work_factor : float;
  seed : int;
}

let default =
  {
    n_operators = 60;
    alpha = 0.9;
    sizes = Small;
    freq = High;
    n_object_types = 15;
    n_servers = 6;
    min_copies = 1;
    max_copies = 2;
    rho = 1.0;
    base_work = 8000.0;
    work_factor = 0.19;
    seed = 1;
  }

let make ?(alpha = default.alpha) ?(sizes = default.sizes)
    ?(freq = default.freq) ?(n_object_types = default.n_object_types)
    ?(n_servers = default.n_servers) ?(min_copies = default.min_copies)
    ?(max_copies = default.max_copies) ?rho ?(base_work = default.base_work)
    ?(work_factor = default.work_factor) ?(seed = default.seed) ~n_operators
    () =
  let rho =
    match (rho, sizes) with
    | Some r, _ -> r
    | None, (Small | Custom_sizes _) -> 1.0
    | None, Large -> 0.1
  in
  {
    n_operators;
    alpha;
    sizes;
    freq;
    n_object_types;
    n_servers;
    min_copies;
    max_copies;
    rho;
    base_work;
    work_factor;
    seed;
  }

let size_range = function
  | Small -> (5.0, 30.0)
  | Large -> (450.0, 530.0)
  | Custom_sizes (lo, hi) ->
    if lo <= 0.0 || hi < lo then invalid_arg "Config.size_range: bad range";
    (lo, hi)

(* Scale preset (DESIGN.md §16): object sizes and base work shrunk so
   that the aggregate data stream of a tree orders of magnitude larger
   than the paper's 60–200 operators still fits the unchanged dell_2008
   catalog and the 1000 MB/s processor link.  The root operator's output
   carries the whole leaf mass (~0.003 MB x (N+1) in expectation), which
   stays under the processor link up to N ~ 300k, and one operator costs
   ~2000 Mops x rho, ~23 per top-catalog CPU. *)
let scale ?(seed = default.seed) ~n_operators () =
  make ~sizes:(Custom_sizes (0.001, 0.005)) ~base_work:2000.0 ~seed
    ~n_operators ()

let frequency = function
  | High -> 0.5
  | Low -> 0.02
  | Custom f ->
    if f <= 0.0 then invalid_arg "Config.frequency: non-positive frequency";
    f

let pp ppf t =
  let size_name =
    match t.sizes with
    | Small -> "small"
    | Large -> "large"
    | Custom_sizes (lo, hi) -> Printf.sprintf "custom(%g..%g)" lo hi
  in
  Format.fprintf ppf
    "N=%d alpha=%.2f sizes=%s freq=%.3f/s rho=%.2f objects=%d servers=%d \
     copies=%d..%d seed=%d"
    t.n_operators t.alpha size_name (frequency t.freq) t.rho t.n_object_types
    t.n_servers t.min_copies t.max_copies t.seed

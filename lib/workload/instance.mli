(** A generated problem instance: application plus platform. *)

type t = {
  config : Config.t;
  app : Insp_tree.App.t;
  platform : Insp_platform.Platform.t;
}

val generate : Config.t -> t
(** Deterministic in [config.seed]: the seed is split into independent
    streams for tree shape, object sizes and server placement, so e.g.
    changing the frequency regime does not perturb the generated tree. *)

type gen_error =
  | Operator_count_out_of_range of { requested : int; limit : int }
      (** [n_operators] outside [1, limit] — the generator's arrays
          cannot represent the tree *)
  | Operator_exceeds_catalog of {
      operator : int;
      work : float;
      nic : float;
      cpu_limit : float;
      nic_limit : float;
    }
      (** a single operator's demand exceeds the catalog's largest
          configuration, so no allocation can exist: the requested
          operator count overflows what the platform can host under the
          configured object sizes *)

val gen_error_message : gen_error -> string

val generate_checked : Config.t -> (t, gen_error) result
(** {!generate} with the unsolvable-by-construction cases turned into
    typed errors instead of downstream asserts or guaranteed heuristic
    failures: the operator count must be representable, and every
    operator alone must fit the catalog's best configuration (a
    necessary condition for any feasible allocation).  Deterministic in
    [config.seed] like {!generate}. *)

val generate_batch : Config.t -> seeds:int list -> t list
(** Same configuration across several seeds (for averaging). *)

val with_frequency : t -> float -> t
(** Same tree, same sizes, same servers; only the download frequency
    changes (the paper's download-rate sweep). *)

val homogeneous : t -> cpu_index:int -> nic_index:int -> t
(** Restrict the platform catalog (CONSTR-HOM) keeping everything else. *)

val pp : Format.formatter -> t -> unit

module Prng = Insp_util.Prng
module App = Insp_tree.App
module Objects = Insp_tree.Objects
module Generate = Insp_tree.Generate
module Platform = Insp_platform.Platform
module Catalog = Insp_platform.Catalog
module Demand = Insp_mapping.Demand

type t = {
  config : Config.t;
  app : App.t;
  platform : Platform.t;
}

let build_app config ~tree ~sizes ~freq =
  let objects = Objects.uniform_freq ~sizes ~freq in
  App.make ~rho:config.Config.rho ~base_work:config.Config.base_work
    ~work_factor:config.Config.work_factor ~tree ~objects
    ~alpha:config.Config.alpha ()

let generate (config : Config.t) =
  let master = Prng.create config.seed in
  let tree_rng = Prng.split master in
  let size_rng = Prng.split master in
  let server_rng = Prng.split master in
  let tree =
    Generate.random_shape tree_rng ~n_operators:config.n_operators
      ~n_object_types:config.n_object_types
  in
  let lo, hi = Config.size_range config.sizes in
  let sizes =
    Generate.random_sizes size_rng ~n_object_types:config.n_object_types ~lo
      ~hi
  in
  let app = build_app config ~tree ~sizes ~freq:(Config.frequency config.freq) in
  let platform =
    Platform.paper_default server_rng ~n_servers:config.n_servers
      ~n_object_types:config.n_object_types ~min_copies:config.min_copies
      ~max_copies:config.max_copies ()
  in
  { config; app; platform }

type gen_error =
  | Operator_count_out_of_range of { requested : int; limit : int }
  | Operator_exceeds_catalog of {
      operator : int;
      work : float;
      nic : float;
      cpu_limit : float;
      nic_limit : float;
    }

let gen_error_message = function
  | Operator_count_out_of_range { requested; limit } ->
    Printf.sprintf "operator count %d outside the generatable range [1, %d]"
      requested limit
  | Operator_exceeds_catalog { operator; work; nic; cpu_limit; nic_limit } ->
    Printf.sprintf
      "operator n%d alone (%.1f Mops/s compute, %.1f MB/s NIC) exceeds the \
       platform catalog's largest configuration (%.1f Mops/s, %.1f MB/s): \
       no allocation can exist"
      operator work nic cpu_limit nic_limit

let generate_checked (config : Config.t) =
  let limit = Sys.max_array_length - 1 in
  if config.Config.n_operators < 1 || config.Config.n_operators > limit then
    Error
      (Operator_count_out_of_range
         { requested = config.Config.n_operators; limit })
  else begin
    let t = generate config in
    let best = Catalog.best t.platform.Platform.catalog in
    (* Necessary feasibility condition: every operator alone must fit
       the catalog's largest machine.  An operator count too large for
       the configured object sizes concentrates the whole stream on the
       root and trips this (the paper's parameters support a few hundred
       operators; the scale preset supports ~300k). *)
    let rec scan i =
      if i >= App.n_operators t.app then Ok t
      else begin
        let d = Demand.of_operator t.app i in
        if Demand.fits best d then scan (i + 1)
        else
          Error
            (Operator_exceeds_catalog
               {
                 operator = i;
                 work = d.Demand.compute;
                 nic = Demand.nic d;
                 cpu_limit = best.Catalog.cpu.Catalog.speed;
                 nic_limit = best.Catalog.nic.Catalog.bandwidth;
               })
      end
    in
    scan 0
  end

let generate_batch config ~seeds =
  List.map (fun seed -> generate { config with Config.seed }) seeds

let with_frequency t freq =
  if freq <= 0.0 then invalid_arg "Instance.with_frequency: non-positive";
  let objects = Objects.with_freq (App.objects t.app) freq in
  let app =
    App.make ~rho:t.config.Config.rho ~base_work:t.config.Config.base_work
      ~work_factor:t.config.Config.work_factor ~tree:(App.tree t.app) ~objects
      ~alpha:t.config.Config.alpha ()
  in
  { t with app; config = { t.config with Config.freq = Config.Custom freq } }

let homogeneous t ~cpu_index ~nic_index =
  { t with platform = Platform.homogeneous t.platform ~cpu_index ~nic_index }

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@ %a@]" Config.pp t.config
    Insp_tree.Metrics.pp
    (Insp_tree.Metrics.compute t.app)

module App = Insp_tree.App
module Optree = Insp_tree.Optree

(* Children groups ordered by decreasing edge weight towards [op]; a
   group hosting both children is listed once with the heavier edge. *)
let child_groups b app op =
  let tree = App.tree app in
  let weighted =
    List.fold_left
      (fun acc c ->
        match Builder.assignment b c with
        | None -> acc
        | Some gid ->
          let w = App.rho app *. App.output_size app c in
          (* the accumulator holds the O(degree) child groups of one
             operator, not all live groups *)
          let prev =
            (try List.assoc gid acc with Not_found -> 0.0) [@lint.allow "p3"]
          in
          ((gid, Float.max w prev) :: List.remove_assoc gid acc
           [@lint.allow "p3"]))
      []
      (Optree.children tree op)
  in
  List.sort (fun (_, wa) (_, wb) -> compare wb wa) weighted |> List.map fst

(* One merge pass over a processor group, in the paper's spirit: "the
   heuristic first tries to allocate as many parent operators of the
   currently assigned operators to this processor".  An unassigned parent
   is added directly; a parent already sitting on another processor drags
   its whole processor in (returning it to the store on success).
   Returns true when the group changed. *)
let absorb_parents b app gid =
  let tree = App.tree app in
  let progressed = ref false in
  let rec pass () =
    let changed =
      List.exists
        (fun m ->
          match Optree.parent tree m with
          | None -> false
          | Some p -> (
            match Builder.assignment b p with
            | None -> Builder.try_add b gid p
            | Some other when other <> gid -> Builder.try_absorb b gid other
            | Some _ -> false))
        (Builder.members b gid)
    in
    if changed then begin
      progressed := true;
      pass ()
    end
  in
  pass ();
  !progressed

let run _rng app platform =
  let b = Builder.create app platform in
  let tree = App.tree app in
  let rec assign_al = function
    | [] -> Ok ()
    | op :: rest -> (
      match Common.acquire_for b ~style:`Best [ op ] with
      | Ok _ -> assign_al rest
      | Error e -> Error e)
  in
  (* Deepest al-operators first, so merging proceeds bottom-up. *)
  let al_ops =
    Optree.al_operators tree
    |> List.sort (fun a b ->
           let c = compare (Optree.depth tree b) (Optree.depth tree a) in
           if c <> 0 then c else compare a b)
  in
  match assign_al al_ops with
  | Error e -> Error e
  | Ok () ->
    (* Bottom-up merge rounds: visit processors deepest-member-first and
       let each absorb the parents of its operators; repeat while any
       processor still grows (a merge can unlock further merges). *)
    let deepest_member gid =
      List.fold_left
        (fun acc m -> max acc (Optree.depth tree m))
        0 (Builder.members b gid)
    in
    let rec merge_rounds () =
      let by_depth =
        List.sort
          (fun ga gb -> compare (deepest_member gb) (deepest_member ga))
          (Builder.group_ids b)
      in
      let changed =
        List.fold_left
          (fun acc gid ->
            (* A group can have been absorbed earlier in this round. *)
            if List.mem gid (Builder.group_ids b) then
              absorb_parents b app gid || acc
            else acc)
          false by_depth
      in
      if changed then merge_rounds ()
    in
    merge_rounds ();
    (* Operators whose parents could not be absorbed anywhere get fresh
       processors, children first so each can join a child's group.  The
       grouping fallback can sell a processor and release its operators,
       so loop until the pool drains (bounded to guarantee
       termination). *)
    let budget = ref ((App.n_operators app * App.n_operators app) + 16) in
    (* Final consolidation ("possibly returning some processors"): fold
       leftover small processors into any processor with spare capacity,
       smallest first, preferring tree-adjacent hosts so communication
       stays internal. *)
    let consolidate () =
      let adjacent ga gb =
        let members_a = Builder.members b ga in
        List.exists
          (fun m ->
            (match Optree.parent tree m with
            | Some p -> Builder.assignment b p = Some gb
            | None -> false)
            || List.exists
                 (fun c -> Builder.assignment b c = Some gb)
                 (Optree.children tree m))
          members_a
      in
      let rec pass () =
        let by_size =
          List.sort
            (fun ga gb ->
              compare
                (List.length (Builder.members b ga))
                (List.length (Builder.members b gb)))
            (Builder.group_ids b)
        in
        let merged =
          List.exists
            (fun loser ->
              List.mem loser (Builder.group_ids b)
              && (let hosts =
                    List.filter (fun g -> g <> loser) (Builder.group_ids b)
                  in
                  let adj, rest =
                    List.partition (fun g -> adjacent g loser) hosts
                  in
                  List.exists
                    (fun winner -> Builder.try_absorb b winner loser)
                    (adj @ rest)))
            by_size
        in
        if merged then pass ()
      in
      pass ()
    in
    let rec place () =
      match
        List.filter
          (fun i -> Builder.assignment b i = None)
          (Optree.postorder tree)
      with
      | [] ->
        consolidate ();
        Ok b
      | op :: _ ->
        decr budget;
        if !budget <= 0 then
          Error "placement did not converge (grouping fallback oscillates)"
        else begin
          let hosted =
            List.exists
              (fun gid -> Builder.try_add b gid op)
              (child_groups b app op)
          in
          if hosted then begin
            (match Builder.assignment b op with
            | Some gid -> ignore (absorb_parents b app gid)
            | None -> assert false (* hosted: try_add just placed op *));
            place ()
          end
          else
            match Common.acquire_with_grouping b ~style:`Best op with
            | Ok gid ->
              ignore (absorb_parents b app gid);
              place ()
            | Error e -> Error e
        end
    in
    place ()

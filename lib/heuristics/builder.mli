(** Mutable placement state shared by all operator-placement heuristics.

    A builder tracks a set of {e groups} — processors being provisioned,
    each with a configuration and a set of operators — plus the
    operator-to-group assignment.  Every mutation is guarded by the exact
    final-state capacity test: a group's demand ({!Insp_mapping.Demand})
    only decreases when other operators join their neighbours later, so a
    check that passes during construction still passes at validation
    time.

    Groups are backed by an {!Insp_mapping.Ledger}: probes
    ({!try_add}, {!try_absorb} and the upgrade variants) are answered
    from incrementally maintained per-group loads and pair flows in
    O(degree of the probed operator), not by recomputing the group
    demand from scratch.  Pair flows (constraint (5)) are only checked
    where the mutation changes them; unchanged pairs stay feasible by
    construction, so the decisions are the same as checking every
    group. *)

type t

type group_id = int

val create : Insp_tree.App.t -> Insp_platform.Platform.t -> t

val app : t -> Insp_tree.App.t
val platform : t -> Insp_platform.Platform.t

(* lint: allow t3 — accessor completing the builder record API *)
val ledger : t -> Insp_mapping.Ledger.t
(** The backing ledger (group ids = ledger processor ids).  Exposed for
    diagnostics and consistency tests; mutate through the builder. *)

val group_ids : t -> group_id list
(** Live groups, in acquisition order. *)

val members : t -> group_id -> int list
(* lint: allow t3 — accessor completing the builder record API *)
val config : t -> group_id -> Insp_platform.Catalog.config
val assignment : t -> int -> group_id option
val unassigned : t -> int list
(** Operators not yet placed, increasing id order. *)

val all_assigned : t -> bool

(* lint: allow t3 — accessor completing the builder record API *)
val demand : t -> group_id -> Insp_mapping.Demand.t

val can_host :
  t ->
  config:Insp_platform.Catalog.config ->
  members:int list ->
  ?ignore_groups:group_id list ->
  unit ->
  bool
(** Would a processor with [config] hosting exactly [members] satisfy its
    compute and NIC capacity and keep every link flow towards the other
    live groups (minus [ignore_groups]) within [proc_link]? *)

val cheapest_hosting :
  t -> members:int list -> ?ignore_groups:group_id list -> unit ->
  Insp_platform.Catalog.config option
(** Cheapest catalog configuration passing {!can_host}; [None] if even
    the best configuration fails. *)

val acquire :
  t -> config:Insp_platform.Catalog.config -> members:int list ->
  (group_id, string) result
(** Buys a new processor for [members] (all currently unassigned).
    Fails without mutating when {!can_host} rejects. *)

val try_add : t -> group_id -> int -> bool
(** Attempts to place one unassigned operator on an existing group,
    keeping the group's configuration.  Returns [false] (no mutation)
    when it does not fit. *)

val try_absorb : t -> group_id -> group_id -> bool
(** [try_absorb t winner loser] moves every operator of [loser] onto
    [winner] (keeping [winner]'s configuration) and sells [loser].
    Returns [false] without mutating when the union does not fit. *)

val try_add_upgrade : t -> group_id -> int -> bool
(** Like {!try_add}, but allowed to exchange the group's processor for
    the cheapest configuration hosting the extended group (constructive
    setting: the old unit is sold back).  Never downgrades below what the
    extended group needs. *)

val try_absorb_upgrade : t -> group_id -> group_id -> bool
(** Like {!try_absorb}, but the winner may be exchanged for the cheapest
    configuration hosting the merged group. *)

(* lint: allow t3 — mutator completing the builder API surface *)
val release_operator : t -> int -> unit
(** Unassigns one operator; sells its group if that leaves it empty. *)

val sell : t -> group_id -> unit
(** Returns the processor to the store; all its operators become
    unassigned again. *)

(* lint: allow t3 — mutator completing the builder API surface *)
val sell_if_empty : t -> group_id -> unit

(* lint: allow t3 — mutator completing the builder API surface *)
val set_config : t -> group_id -> Insp_platform.Catalog.config -> unit
(** Unchecked configuration swap (used by tests); prefer
    {!Downgrade.run} on finished allocations. *)

val finalize : t -> (int list array * Insp_platform.Catalog.config array, string) result
(** Compacted groups and configurations, in acquisition order.  Fails if
    any operator is still unassigned. *)

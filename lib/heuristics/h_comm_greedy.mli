(** The Comm-Greedy operator-placement heuristic (paper §4.1).

    Tree edges are treated in non-increasing communication weight
    [rho * delta_child].  For each edge the two endpoint operators are
    grouped on one processor whenever possible:

    - both unassigned: buy the cheapest processor hosting both, falling
      back to one most-expensive processor for each endpoint;
    - one assigned: try to fit the other on the same processor, else buy
      it a most-expensive processor;
    - both assigned to different processors: try to merge the two groups
      onto either processor and sell the other; keep the current
      assignment if neither direction fits. *)

val run :
  Insp_util.Prng.t ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  (Builder.t, string) result

val with_merge_sweeps : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the case-(iii) merge sweeps toggled (false = the
    paper's literal one-pass edge processing).  For the ablation bench;
    restores the previous value on exit.  Not thread-safe. *)

val with_probe_cache : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the merge sweeps' generation-stamped failed-probe
    cache toggled (false = re-probe every cross-processor edge on every
    sweep, the legacy behaviour; the committed merges are identical
    either way).  For the equivalence suite and the ablation bench;
    restores the previous value on exit.  Not thread-safe. *)

module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform
module Demand = Insp_mapping.Demand
module Ledger = Insp_mapping.Ledger
module Obs = Insp_obs.Obs
module Journal = Insp_obs.Journal

(* Every feasibility probe reports to the observability sink: a total
   ("heur.probe") plus its outcome ("heur.probe.hit"/".miss"), so probe
   complexity and ledger acceptance rates are visible per run
   (DESIGN.md §10).  With no sink installed these are no-ops. *)
let count_probe ok =
  Obs.incr "heur.probe";
  Obs.incr (if ok then "heur.probe.hit" else "heur.probe.miss");
  ok

(* Probe verdict with the rejection reason, preserving the original
   short-circuit order (demand first, flows only when demand fits) so
   probe counts and work done are unchanged.  [flows] is a thunk because
   some call sites compute pairwise flows lazily. *)
let verdict_of fits_demand flows_ok' =
  if not fits_demand then (false, Some Journal.Demand_exceeded)
  else if not (flows_ok' ()) then (false, Some Journal.Link_exceeded)
  else (true, None)

type group_id = int

(* Groups live in the ledger: one ledger processor per group.  The
   builder only adds the acquisition order and the probe/commit
   discipline on top.  All feasibility probes are incremental —
   O(degree) per probed operator — instead of recomputing
   [Demand.of_group] (O(|group|²)) and pairwise flows against every
   group (O(P·|group|)) per probe. *)
type t = {
  app : App.t;
  platform : Platform.t;
  ledger : Ledger.t;
  mutable order : group_id list;  (* acquisition order, reversed *)
}

let create app platform =
  { app; platform; ledger = Ledger.create app platform; order = [] }

let app t = t.app
let platform t = t.platform
let ledger t = t.ledger

let group_ids t = List.rev t.order

let check_live t gid =
  if not (Ledger.mem_proc t.ledger gid) then
    invalid_arg "Builder: dead group id"

let members t gid =
  check_live t gid;
  Ledger.operators_of t.ledger gid

let config t gid =
  check_live t gid;
  Ledger.config t.ledger gid

let assignment t i = Ledger.assignment t.ledger i

let unassigned t =
  let acc = ref [] in
  for i = App.n_operators t.app - 1 downto 0 do
    if Ledger.assignment t.ledger i = None then acc := i :: !acc
  done;
  !acc

let all_assigned t =
  let n = App.n_operators t.app in
  let rec go i = i >= n || (Ledger.assignment t.ledger i <> None && go (i + 1)) in
  go 0

let demand t gid =
  check_live t gid;
  Ledger.demand t.ledger gid

let tolerance = 1e-9
let leq value capacity = value <= (capacity *. (1.0 +. tolerance)) +. tolerance

let flows_ok t flows =
  List.for_all (fun (_, f) -> leq f t.platform.Platform.proc_link) flows

(* Pairwise flows of a hypothetical member set towards existing groups,
   grouped by group.  Only groups adjacent to [members] through a tree
   edge can carry flow, so only those are visited — the previous
   implementation recomputed the flow against every live group. *)
let candidate_flows t ~members ~ignore_groups =
  let tree = App.tree t.app in
  let rho = App.rho t.app in
  let acc = ref [] in
  (* lint: allow p3 — the delta assoc list holds the O(degree) groups
     adjacent to [members], never all live groups *)
  let bump v w =
    if not (List.mem v ignore_groups) then begin
      let prev = Option.value ~default:0.0 (List.assoc_opt v !acc) in
      acc := (v, prev +. w) :: List.remove_assoc v !acc
    end
  [@@lint.allow "p3"]
  in
  List.iter
    (fun m ->
      List.iter
        (fun c ->
          match Ledger.assignment t.ledger c with
          | Some v -> bump v (rho *. App.output_size t.app c)
          | None -> ())
        (Optree.children tree m);
      match Optree.parent tree m with
      | Some p -> (
        match Ledger.assignment t.ledger p with
        | Some v -> bump v (rho *. App.output_size t.app m)
        | None -> ())
      | None -> ())
    members;
  !acc

(* The probe/commit wrappers below carry "ledger."-tier profiling
   frames (Obs.prof_enter/prof_exit, free without a profiling sink):
   they ARE the commit path, and the from-scratch demand/flow work they
   do around the ledger calls would otherwise surface as anonymous
   phase self-allocation in prof reports (DESIGN.md §17). *)

let can_host t ~config ~members ?(ignore_groups = []) () =
  Obs.prof_enter "ledger.probe_host";
  let d = Demand.of_group t.app members in
  let ok, reject =
    verdict_of (Demand.fits config d) (fun () ->
        flows_ok t (candidate_flows t ~members ~ignore_groups))
  in
  if Obs.journaling () then
    Obs.event (Journal.Probe { kind = Journal.Host; ops = members; ok; reject });
  let r = count_probe ok in
  Obs.prof_exit ();
  r

let cheapest_hosting t ~members ?(ignore_groups = []) () =
  Obs.prof_enter "ledger.catalog_scan";
  (* Demand and flows are config-independent: compute them once and scan
     the catalog with the cheap capacity test only. *)
  let d = Demand.of_group t.app members in
  let flows_fit = flows_ok t (candidate_flows t ~members ~ignore_groups) in
  let found =
    if not flows_fit then None
    else
      (* lint: allow p3 — catalog scan is bounded by the config count *)
      List.find_opt
        (fun cfg -> Demand.fits cfg d)
        (Catalog.configs t.platform.Platform.catalog)
  in
  if Obs.journaling () then begin
    let reject =
      if found <> None then None
      else if not flows_fit then Some Journal.Link_exceeded
      else Some Journal.No_config
    in
    Obs.event
      (Journal.Probe
         { kind = Journal.Catalog_scan; ops = members; ok = found <> None;
           reject })
  end;
  ignore (count_probe (found <> None));
  Obs.prof_exit ();
  found

let acquire t ~config ~members =
  List.iter
    (fun i ->
      if Ledger.assignment t.ledger i <> None then
        invalid_arg "Builder.acquire: operator already assigned")
    members;
  if not (can_host t ~config ~members ()) then
    Error
      (Printf.sprintf "cannot host operators {%s} on the requested processor"
         (String.concat ", " (List.map string_of_int members)))
  else begin
    Obs.prof_enter "ledger.acquire";
    let gid = Ledger.add_proc t.ledger config in
    List.iter (fun i -> Ledger.add_operator t.ledger gid i) members;
    t.order <- gid :: t.order;
    Obs.incr "heur.acquire";
    if Obs.journaling () then
      Obs.event
        (Journal.Acquire { gid; config = Catalog.label config; members });
    Obs.prof_exit ();
    Ok gid
  end

let count_try_add ok =
  Obs.incr (if ok then "heur.try_add.ok" else "heur.try_add.reject");
  ok

let count_absorb ok =
  Obs.incr (if ok then "heur.absorb.ok" else "heur.absorb.reject");
  ok

let try_add t gid op =
  if Ledger.assignment t.ledger op <> None then
    invalid_arg "Builder.try_add: operator already assigned";
  check_live t gid;
  Obs.prof_enter "ledger.try_add";
  let probe = Ledger.probe_add t.ledger gid op in
  let ok, reject =
    verdict_of
      (Demand.fits (Ledger.config t.ledger gid) probe.Ledger.demand)
      (fun () -> flows_ok t probe.Ledger.pair_flows)
  in
  ignore (count_probe ok);
  if Obs.journaling () then
    Obs.event
      (match reject with
      | None -> Journal.Add_op { gid; op; upgrade = None }
      | Some reject -> Journal.Reject_add { gid; op; reject });
  let r =
    if ok then begin
      Ledger.add_operator t.ledger gid op;
      count_try_add true
    end
    else count_try_add false
  in
  Obs.prof_exit ();
  r

let sell t gid =
  check_live t gid;
  Ledger.remove_proc t.ledger gid;
  t.order <- List.filter (fun id -> id <> gid) t.order;
  Obs.incr "heur.sell";
  if Obs.journaling () then Obs.event (Journal.Sell { gid })

let try_absorb t winner loser =
  if winner = loser then invalid_arg "Builder.try_absorb: same group";
  check_live t winner;
  check_live t loser;
  Obs.prof_enter "ledger.try_absorb";
  let probe = Ledger.probe_merge t.ledger ~winner ~loser in
  let ok, reject =
    verdict_of
      (Demand.fits (Ledger.config t.ledger winner) probe.Ledger.demand)
      (fun () -> flows_ok t probe.Ledger.pair_flows)
  in
  ignore (count_probe ok);
  if Obs.journaling () then
    Obs.event
      (match reject with
      | None -> Journal.Merge_groups { winner; loser; upgrade = None }
      | Some reject -> Journal.Reject_merge { winner; loser; reject });
  let r =
    if ok then begin
      Ledger.merge t.ledger ~winner ~loser;
      t.order <- List.filter (fun id -> id <> loser) t.order;
      count_absorb true
    end
    else count_absorb false
  in
  Obs.prof_exit ();
  r

(* Returns the cheapest hosting configuration plus the rejection reason
   when there is none (for the journal). *)
let cheapest_for t probe =
  let flows_fit = flows_ok t probe.Ledger.pair_flows in
  let found =
    if not flows_fit then None
    else
      (* lint: allow p3 — catalog scan is bounded by the config count *)
      List.find_opt
        (fun cfg -> Demand.fits cfg probe.Ledger.demand)
        (Catalog.configs t.platform.Platform.catalog)
  in
  ignore (count_probe (found <> None));
  let reject =
    if found <> None then None
    else if not flows_fit then Some Journal.Link_exceeded
    else Some Journal.No_config
  in
  (found, reject)

let try_add_upgrade t gid op =
  if Ledger.assignment t.ledger op <> None then
    invalid_arg "Builder.try_add_upgrade: operator already assigned";
  check_live t gid;
  let probe = Ledger.probe_add t.ledger gid op in
  match cheapest_for t probe with
  | None, reject ->
    if Obs.journaling () then begin
      match reject with
      | Some reject -> Obs.event (Journal.Reject_add { gid; op; reject })
      | None -> ()
    end;
    count_try_add false
  | Some cfg, _ ->
    Ledger.add_operator t.ledger gid op;
    Ledger.set_config t.ledger gid cfg;
    if Obs.journaling () then
      Obs.event
        (Journal.Add_op { gid; op; upgrade = Some (Catalog.label cfg) });
    count_try_add true

let try_absorb_upgrade t winner loser =
  if winner = loser then invalid_arg "Builder.try_absorb_upgrade: same group";
  check_live t winner;
  check_live t loser;
  let probe = Ledger.probe_merge t.ledger ~winner ~loser in
  match cheapest_for t probe with
  | None, reject ->
    if Obs.journaling () then begin
      match reject with
      | Some reject -> Obs.event (Journal.Reject_merge { winner; loser; reject })
      | None -> ()
    end;
    count_absorb false
  | Some cfg, _ ->
    Ledger.merge t.ledger ~winner ~loser;
    Ledger.set_config t.ledger winner cfg;
    t.order <- List.filter (fun id -> id <> loser) t.order;
    if Obs.journaling () then
      Obs.event
        (Journal.Merge_groups
           { winner; loser; upgrade = Some (Catalog.label cfg) });
    count_absorb true

let sell_if_empty t gid =
  if Ledger.mem_proc t.ledger gid && Ledger.operators_of t.ledger gid = []
  then sell t gid

let release_operator t op =
  match Ledger.assignment t.ledger op with
  | None -> ()
  | Some gid ->
    Ledger.remove_operator t.ledger op;
    sell_if_empty t gid

let set_config t gid cfg =
  check_live t gid;
  Ledger.set_config t.ledger gid cfg;
  if Obs.journaling () then
    Obs.event (Journal.Reconfig { gid; config = Catalog.label cfg })

let finalize t =
  if not (all_assigned t) then
    Error "placement incomplete: some operators remain unassigned"
  else begin
    let ids = group_ids t in
    let groups = Array.of_list (List.map (members t) ids) in
    let configs = Array.of_list (List.map (config t) ids) in
    Array.iter
      (fun g ->
        Obs.observe "heur.group.size" (float_of_int (List.length g)))
      groups;
    Ok (groups, configs)
  end

module App = Insp_tree.App
module Demand = Insp_mapping.Demand
module Catalog = Insp_platform.Catalog

(* Ablation knob: fall back to the legacy scan-everything loop (resort
   the unassigned pool every round, probe every candidate during fill).
   The queue path commits the exact same placement sequence; only the
   probe/journal noise of certainly-infeasible candidates differs.  Not
   thread-safe. *)
let candidate_queue_enabled = ref true

let with_candidate_queue enabled f =
  let saved = !candidate_queue_enabled in
  candidate_queue_enabled := enabled;
  Fun.protect ~finally:(fun () -> candidate_queue_enabled := saved) f

let run_scan _rng app platform =
  let b = Builder.create app platform in
  (* The grouping fallback can sell a processor and release its
     operators, so bound the number of rounds to guarantee
     termination. *)
  let budget = ref ((App.n_operators app * App.n_operators app) + 16) in
  let rec loop () =
    match Common.by_work_desc app (Builder.unassigned b) with
    | [] -> Ok b
    | heaviest :: _ ->
      decr budget;
      if !budget <= 0 then
        Error "placement did not converge (grouping fallback oscillates)"
      else (
        match Common.acquire_with_grouping b ~style:`Best heaviest with
        | Error e -> Error e
        | Ok gid ->
          Common.fill b gid (Common.by_work_desc app (Builder.unassigned b));
          loop ())
  in
  loop ()

(* Same tolerance/comparison as Demand.fits, so the compute-capacity
   fast-forward below skips a candidate exactly when the probe would
   reject it on the compute branch. *)
let tolerance = 1e-9

let leq value capacity = value <= (capacity *. (1.0 +. tolerance)) +. tolerance

(* Candidate-queue variant: the round seeds come from a lazy-deletion
   max-heap stamped with per-operator resurrection generations, and the
   fill walk follows the static work-descending permutation through a
   path-compressed rank walker, binary-searching past the prefix whose
   compute demand alone already exceeds the group's remaining CPU
   capacity (those candidates are rejected by the probe without reading
   any other state, so skipping them cannot change the placement).
   Candidates that pass the fast-forward are probed exactly like the
   scan path, in the same order, so the commit sequence — and therefore
   the resulting allocation — is identical. *)
let run_queue _rng app platform =
  let b = Builder.create app platform in
  let n = App.n_operators app in
  let rho = App.rho app in
  (* Static fill order: work desc, id asc — Common.by_work_desc's
     comparator over the full operator set.  Works are prefetched into a
     float array so the comparator stays unboxed ([Float.compare] on
     float-array reads compiles to a primitive comparison); the
     polymorphic-compare version boxed two floats per comparison, which
     the allocation profile showed as ~10M minor words of anonymous
     placement self at N=100k. *)
  let w = Array.init n (App.work app) in
  let perm = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Float.compare w.(b) w.(a) in
      if c <> 0 then c else Int.compare a b)
    perm;
  (* pos_work.(pos) is the probe's compute contribution of the operator
     at that rank: the same float expression Ledger.probe_add adds. *)
  let pos_work = Array.map (fun i -> rho *. w.(i)) perm in
  let rank = Cand_queue.Rank.of_order perm in
  let alive i = Builder.assignment b i = None in
  (* ver.(i) bumps on every assignment-status change of operator i; a
     seed entry is valid only while its stored stamp is current, so an
     operator assigned after being enqueued can never win a pop, and a
     resurrected operator re-enters with a fresh stamp. *)
  let ver = Array.make n 0 in
  let seeds = Cand_queue.create () in
  Array.iter
    (fun i -> Cand_queue.push seeds ~score:(App.work app i) ~tie:i ~gen:0 i)
    perm;
  let note_assigned i = ver.(i) <- ver.(i) + 1 in
  let first_fit c speed from =
    if from >= n then n
    else if leq (c +. pos_work.(from)) speed then from
    else begin
      (* works are non-increasing along the rank, so (c +. work) is
         non-increasing and the fit predicate is monotone: binary-search
         the first position that fits. *)
      let lo = ref from and hi = ref n in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if leq (c +. pos_work.(mid)) speed then hi := mid else lo := mid
      done;
      !hi
    end
  in
  let fill gid =
    let speed = (Builder.config b gid).Catalog.cpu.Catalog.speed in
    let pos = ref 0 in
    while !pos < n do
      let c = (Builder.demand b gid).Demand.compute in
      let p = Cand_queue.Rank.first rank ~alive (first_fit c speed !pos) in
      if p >= n then pos := n
      else begin
        let op = Cand_queue.Rank.element rank p in
        if Builder.try_add b gid op then note_assigned op;
        pos := p + 1
      end
    done
  in
  let budget = ref ((n * n) + 16) in
  let rec loop () =
    match Cand_queue.pop_valid seeds ~gen_of:(fun i -> ver.(i)) with
    | None -> Ok b
    | Some heaviest ->
      decr budget;
      if !budget <= 0 then
        Error "placement did not converge (grouping fallback oscillates)"
      else begin
        let sold = ref false in
        let on_release op =
          sold := true;
          ver.(op) <- ver.(op) + 1;
          Cand_queue.push seeds ~score:(App.work app op) ~tie:op
            ~gen:ver.(op) op
        in
        match Common.acquire_with_grouping ~on_release b ~style:`Best heaviest with
        | Error e -> Error e
        | Ok gid ->
          (* a sell resurrected operators: the rank walker's dead-prefix
             compression no longer holds. *)
          if !sold then Cand_queue.Rank.reset rank;
          List.iter note_assigned (Builder.members b gid);
          fill gid;
          loop ()
      end
  in
  loop ()

let run rng app platform =
  if !candidate_queue_enabled then run_queue rng app platform
  else run_scan rng app platform

module App = Insp_tree.App
module Platform = Insp_platform.Platform
module Servers = Insp_platform.Servers
module Demand = Insp_mapping.Demand
module Prng = Insp_util.Prng
module Obs = Insp_obs.Obs
module Journal = Insp_obs.Journal

type plan = (int * int) list array

let tolerance = 1e-9

(* Mutable capacity state during selection. *)
type state = {
  rate : int -> float;
  servers : Servers.t;
  card_left : float array;  (* per server *)
  link_left : float array array;  (* server x group *)
  needs : (int * int) list ref;  (* (group, object) still unassigned *)
  chosen : (int * int) list array;  (* result under construction *)
}

let init_generic ~n_groups ~rate ~servers ~server_link ~needs =
  let n_servers = Servers.n_servers servers in
  {
    rate;
    servers;
    card_left = Array.init n_servers (fun l -> Servers.card servers l);
    link_left = Array.init n_servers (fun _ -> Array.make n_groups server_link);
    needs = ref needs;
    chosen = Array.make n_groups [];
  }

let init app platform ~groups =
  let needs =
    Array.to_list
      (Array.mapi
         (fun u ops ->
           List.map (fun k -> (u, k)) (Demand.distinct_objects app ops))
         groups)
    |> List.concat
  in
  init_generic ~n_groups:(Array.length groups)
    ~rate:(App.download_rate app)
    ~servers:platform.Platform.servers
    ~server_link:platform.Platform.server_link ~needs

let can_provide st l u k =
  let rate = st.rate k in
  Servers.holds st.servers l k
  && st.card_left.(l) +. tolerance >= rate
  && st.link_left.(l).(u) +. tolerance >= rate

let assign st u k l =
  let rate = st.rate k in
  st.card_left.(l) <- st.card_left.(l) -. rate;
  st.link_left.(l).(u) <- st.link_left.(l).(u) -. rate;
  st.chosen.(u) <- (k, l) :: st.chosen.(u);
  st.needs := List.filter (fun need -> need <> (u, k)) !(st.needs)

let finish st = Array.map (List.sort compare) st.chosen

(* One Download event per committed (group, object) pair, tagged with
   the rule that chose the server and the candidate set it chose from;
   one Download_failed when a rule proves the need unservable.  Guarded:
   with no journaling sink neither the event nor the candidate list is
   built. *)
let note_download u k l ~rule ~candidates =
  if Obs.journaling () then
    Obs.event
      (Journal.Download
         { group = u; object_type = k; server = l; rule;
           candidates = candidates () })

let note_failed u k reason =
  if Obs.journaling () then
    Obs.event
      (Journal.Download_failed { object_type = k; group = Some u; reason })

let random rng app platform ~groups =
  let st = init app platform ~groups in
  let rec loop () =
    match !(st.needs) with
    | [] -> Ok (finish st)
    | (u, k) :: _ -> (
      let capable =
        List.filter (fun l -> can_provide st l u k)
          (Servers.providers st.servers k)
      in
      match capable with
      | [] ->
        let msg =
          Printf.sprintf "no server can still provide o%d to processor %d" k u
        in
        note_failed u k msg;
        Error msg
      | _ ->
        let l = Prng.choose_list rng capable in
        note_download u k l ~rule:"random" ~candidates:(fun () -> capable);
        assign st u k l;
        loop ())
  in
  loop ()

(* The three rules each visit "the groups still needing object k".  The
   legacy implementation rescanned (and on every assignment re-filtered)
   the whole needs list, turning selection into O(needs²); here the
   needs are bucketed per object once, assignment flips an
   assigned-flag, and a rule visit filters one bucket by the flags —
   every pending entry is touched O(1) times per rule.  Bucket order is
   the needs-list order restricted to the object, exactly what the
   legacy List.filter produced, so the visit order — and the journal —
   is unchanged. *)
let sophisticated_core st =
  let exception Failed of string in
  let all_needs = !(st.needs) in
  let objects_in_needs = List.sort_uniq compare (List.map snd all_needs) in
  let bucket : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (u, k) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt bucket k) in
      Hashtbl.replace bucket k (u :: prev))
    all_needs;
  List.iter
    (fun k -> Hashtbl.replace bucket k (List.rev (Hashtbl.find bucket k)))
    objects_in_needs;
  let assigned : (int * int, unit) Hashtbl.t =
    Hashtbl.create (List.length all_needs)
  in
  let pending_count : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun k ->
      Hashtbl.replace pending_count k (List.length (Hashtbl.find bucket k)))
    objects_in_needs;
  let n_pending k = Option.value ~default:0 (Hashtbl.find_opt pending_count k) in
  let needing k =
    List.filter
      (fun u -> not (Hashtbl.mem assigned (u, k)))
      (Option.value ~default:[] (Hashtbl.find_opt bucket k))
  in
  let assign_need u k l =
    let rate = st.rate k in
    st.card_left.(l) <- st.card_left.(l) -. rate;
    st.link_left.(l).(u) <- st.link_left.(l).(u) -. rate;
    st.chosen.(u) <- (k, l) :: st.chosen.(u);
    Hashtbl.replace assigned (u, k) ();
    Hashtbl.replace pending_count k (n_pending k - 1)
  in
  try
    (* Loop 1: forced downloads of single-server objects. *)
    List.iter
      (fun (k, l) ->
        List.iter
          (fun u ->
            if can_provide st l u k then begin
              note_download u k l ~rule:"exclusive" ~candidates:(fun () -> [ l ]);
              assign_need u k l
            end
            else
              let msg =
                Printf.sprintf
                  "exclusive server S%d cannot sustain all downloads of o%d" l k
              in
              note_failed u k msg;
              raise (Failed msg))
          (needing k))
      (Servers.exclusive_objects st.servers);
    (* Loop 2: saturate single-object servers. *)
    List.iter
      (fun l ->
        match Servers.objects_on st.servers l with
        | [ k ] ->
          List.iter
            (fun u ->
              if can_provide st l u k then begin
                note_download u k l ~rule:"single_object"
                  ~candidates:(fun () -> [ l ]);
                assign_need u k l
              end)
            (needing k)
        | _ -> ())
      (Servers.single_object_servers st.servers);
    (* Loop 3: remaining needs, objects in decreasing nbP / nbS. *)
    let remaining_objects =
      List.filter (fun k -> n_pending k > 0) objects_in_needs
    in
    let ratio k =
      let nb_p = n_pending k in
      let nb_s =
        (* Links are per processor, so judge a server's ability by its
           remaining card capacity. *)
        List.length
          (List.filter
             (fun l -> st.card_left.(l) +. tolerance >= st.rate k)
             (Servers.providers st.servers k))
      in
      if nb_s = 0 then infinity else float_of_int nb_p /. float_of_int nb_s
    in
    let ordered =
      List.map (fun k -> (k, ratio k)) remaining_objects
      |> List.sort (fun (a, ra) (b, rb) ->
             let c = compare rb ra in
             if c <> 0 then c else compare a b)
      |> List.map fst
    in
    List.iter
      (fun k ->
        List.iter
          (fun u ->
            let best =
              Servers.providers st.servers k
              |> List.filter (fun l -> can_provide st l u k)
              |> List.sort (fun a b ->
                     let key l =
                       Float.min st.card_left.(l) st.link_left.(l).(u)
                     in
                     let c = compare (key b) (key a) in
                     if c <> 0 then c else compare a b)
            in
            match best with
            | l :: _ ->
              note_download u k l ~rule:"ratio" ~candidates:(fun () -> best);
              assign_need u k l
            | [] ->
              let msg =
                Printf.sprintf
                  "no server has bandwidth left to provide o%d to processor %d"
                  k u
              in
              note_failed u k msg;
              raise (Failed msg))
          (needing k))
      ordered;
    Ok (finish st)
  with Failed msg -> Error msg

let sophisticated app platform ~groups =
  sophisticated_core (init app platform ~groups)

let sophisticated_generic ~n_groups ~rate ~servers ~server_link ~needs =
  sophisticated_core
    (init_generic ~n_groups ~rate ~servers ~server_link ~needs)

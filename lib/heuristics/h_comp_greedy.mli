(** The Comp-Greedy operator-placement heuristic (paper §4.1).

    Operators are treated in non-increasing computational demand [w_i].
    Each round buys the most expensive processor for the heaviest
    unassigned operator (with the Random heuristic's grouping fallback if
    it does not fit), then fills the remaining capacity with further
    unassigned operators in non-increasing [w_i] order.

    The default implementation drives both the round seeds and the fill
    walk from candidate queues (DESIGN.md §16): a lazy-deletion heap
    with generation stamps picks each round's heaviest unassigned
    operator, and the fill walk follows the static work-descending rank
    with a path-compressed dead-skip plus a binary-search fast-forward
    past compute-infeasible candidates.  The placement it commits is
    identical to the legacy scan (same probes accepted, same order);
    only probes that are certain to be rejected are skipped. *)

val run :
  Insp_util.Prng.t ->
  Insp_tree.App.t ->
  Insp_platform.Platform.t ->
  (Builder.t, string) result

val with_candidate_queue : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the candidate-queue implementation toggled (false =
    the legacy scan-everything loop).  For the equivalence suite and the
    ablation bench; restores the previous value on exit.  Not
    thread-safe. *)

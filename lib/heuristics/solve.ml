module App = Insp_tree.App
module Platform = Insp_platform.Platform
module Alloc = Insp_mapping.Alloc
module Check = Insp_mapping.Check
module Cost = Insp_mapping.Cost
module Prng = Insp_util.Prng
module Obs = Insp_obs.Obs

type heuristic = {
  name : string;
  key : string;
  run :
    Prng.t -> App.t -> Platform.t -> (Builder.t, string) result;
  randomized : bool;
}

let all =
  [
    { name = "Random"; key = "random"; run = H_random.run; randomized = true };
    {
      name = "Comp-Greedy";
      key = "comp";
      run = H_comp_greedy.run;
      randomized = false;
    };
    {
      name = "Comm-Greedy";
      key = "comm";
      run = H_comm_greedy.run;
      randomized = false;
    };
    {
      name = "Subtree-bottom-up";
      key = "sbu";
      run = H_subtree.run;
      randomized = false;
    };
    {
      name = "Object-Grouping";
      key = "objgroup";
      run = H_object_grouping.run;
      randomized = false;
    };
    {
      name = "Object-Availability";
      key = "objavail";
      run = H_object_availability.run;
      randomized = false;
    };
  ]

let find ident =
  let ident = String.lowercase_ascii ident in
  List.find_opt
    (fun h -> h.key = ident || String.lowercase_ascii h.name = ident)
    all

type outcome = { alloc : Alloc.t; cost : float; n_procs : int }

type failure =
  | Placement of string
  | Server_selection of string
  | Validation of string

let failure_message = function
  | Placement m -> "placement failed: " ^ m
  | Server_selection m -> "server selection failed: " ^ m
  | Validation m -> "validation failed: " ^ m

let run ?(seed = 0) heuristic app platform =
  (* One span per pipeline stage; the counter pair records the overall
     outcome so sweep-level failure rates show up in metric exports. *)
  let count result =
    Obs.incr
      (match result with Ok _ -> "heur.solve.ok" | Error _ -> "heur.solve.fail");
    result
  in
  Obs.span ("solve." ^ heuristic.key) (fun () ->
      let rng = Prng.create seed in
      match Obs.span "placement" (fun () -> heuristic.run rng app platform) with
      | Error msg -> count (Error (Placement msg))
      | Ok builder -> (
        match Builder.finalize builder with
        | Error msg -> count (Error (Placement msg))
        | Ok (groups, configs) -> (
          let selection =
            Obs.span "server_select" (fun () ->
                if heuristic.randomized then
                  Server_select.random rng app platform ~groups
                else Server_select.sophisticated app platform ~groups)
          in
          match selection with
          | Error msg -> count (Error (Server_selection msg))
          | Ok downloads -> (
            let alloc = Alloc.of_groups ~configs ~groups ~downloads in
            let alloc =
              Obs.span "downgrade" (fun () -> Downgrade.run app platform alloc)
            in
            match Obs.span "check" (fun () -> Check.check app platform alloc) with
            | [] ->
              count
                (Ok
                   {
                     alloc;
                     cost = Cost.of_alloc platform.Platform.catalog alloc;
                     n_procs = Alloc.n_procs alloc;
                   })
            | violations -> count (Error (Validation (Check.explain violations)))))))

let run_all ?(seed = 0) app platform =
  List.map (fun h -> (h, run ~seed h app platform)) all

module App = Insp_tree.App
module Platform = Insp_platform.Platform
module Alloc = Insp_mapping.Alloc
module Check = Insp_mapping.Check
module Cost = Insp_mapping.Cost
module Prng = Insp_util.Prng
module Obs = Insp_obs.Obs
module Journal = Insp_obs.Journal

type heuristic = {
  name : string;
  key : string;
  run :
    Prng.t -> App.t -> Platform.t -> (Builder.t, string) result;
  randomized : bool;
}

let all =
  [
    { name = "Random"; key = "random"; run = H_random.run; randomized = true };
    {
      name = "Comp-Greedy";
      key = "comp";
      run = H_comp_greedy.run;
      randomized = false;
    };
    {
      name = "Comm-Greedy";
      key = "comm";
      run = H_comm_greedy.run;
      randomized = false;
    };
    {
      name = "Subtree-bottom-up";
      key = "sbu";
      run = H_subtree.run;
      randomized = false;
    };
    {
      name = "Object-Grouping";
      key = "objgroup";
      run = H_object_grouping.run;
      randomized = false;
    };
    {
      name = "Object-Availability";
      key = "objavail";
      run = H_object_availability.run;
      randomized = false;
    };
  ]

let find ident =
  let ident = String.lowercase_ascii ident in
  (* lint: allow p3 — registry lookup over the paper's six heuristics *)
  List.find_opt
    (fun h -> h.key = ident || String.lowercase_ascii h.name = ident)
    all

type outcome = { alloc : Alloc.t; cost : float; n_procs : int }

type failure =
  | Placement of string
  | Server_selection of string
  | Validation of string

let failure_message = function
  | Placement m -> "placement failed: " ^ m
  | Server_selection m -> "server selection failed: " ^ m
  | Validation m -> "validation failed: " ^ m

let run ?(seed = 0) heuristic app platform =
  (* One span per pipeline stage; the counter pair records the overall
     outcome so sweep-level failure rates show up in metric exports. *)
  let count result =
    Obs.incr
      (match result with Ok _ -> "heur.solve.ok" | Error _ -> "heur.solve.fail");
    result
  in
  (* Journal guard computed once: [phase]/[failed] cost nothing when the
     installed sink is not journaling. *)
  let jn = Obs.journaling () in
  let phase stage =
    if jn then Obs.event (Journal.Phase { heuristic = heuristic.key; stage })
  in
  let failed status =
    if jn then
      Obs.event
        (Journal.Outcome
           {
             heuristic = heuristic.key;
             status;
             cost = None;
             n_procs = None;
             procs = [];
           })
  in
  Obs.span ("solve." ^ heuristic.key) (fun () ->
      let rng = Prng.create seed in
      phase "placement";
      match Obs.span "placement" (fun () -> heuristic.run rng app platform) with
      | Error msg ->
        failed "placement_failed";
        count (Error (Placement msg))
      | Ok builder -> (
        match Builder.finalize builder with
        | Error msg ->
          failed "placement_failed";
          count (Error (Placement msg))
        | Ok (groups, configs) -> (
          phase "server_select";
          let selection =
            Obs.span "server_select" (fun () ->
                if heuristic.randomized then
                  Server_select.random rng app platform ~groups
                else Server_select.sophisticated app platform ~groups)
          in
          match selection with
          | Error msg ->
            failed "server_select_failed";
            count (Error (Server_selection msg))
          | Ok downloads -> (
            let alloc = Alloc.of_groups ~configs ~groups ~downloads in
            phase "downgrade";
            let alloc =
              Obs.span "downgrade" (fun () -> Downgrade.run app platform alloc)
            in
            phase "check";
            match Obs.span "check" (fun () -> Check.check app platform alloc) with
            | [] ->
              let cost = Cost.of_alloc platform.Platform.catalog alloc in
              let n_procs = Alloc.n_procs alloc in
              if jn then
                (* [finalize] lists groups in acquisition order, which is
                   the processor index order of [Alloc.of_groups] — so
                   processor [i] came from builder group [group_ids.(i)],
                   the link [explain] follows back into builder events. *)
                Obs.event
                  (Journal.Outcome
                     {
                       heuristic = heuristic.key;
                       status = "feasible";
                       cost = Some cost;
                       n_procs = Some n_procs;
                       procs =
                         List.mapi
                           (fun i gid -> (i, gid))
                           (Builder.group_ids builder);
                     });
              count (Ok { alloc; cost; n_procs })
            | violations ->
              failed "infeasible";
              count (Error (Validation (Check.explain violations)))))))

let run_all ?(seed = 0) app platform =
  List.map (fun h -> (h, run ~seed h app platform)) all

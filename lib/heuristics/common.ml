module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform

type style = [ `Best | `Cheapest ]

let comm_partner app op =
  let tree = App.tree app in
  let rho = App.rho app in
  let candidates =
    List.map
      (fun c -> (c, rho *. App.output_size app c))
      (Optree.children tree op)
    @
    match Optree.parent tree op with
    | None -> []
    | Some p -> [ (p, rho *. App.output_size app op) ]
  in
  match candidates with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun (bi, bw) (i, w) -> if w > bw then (i, w) else (bi, bw))
        first rest
    in
    Some (fst best)

let by_work_desc app ops =
  List.sort
    (fun a b ->
      let c = compare (App.work app b) (App.work app a) in
      if c <> 0 then c else compare a b)
    ops

let fill b gid candidates =
  List.iter
    (fun op ->
      if Builder.assignment b op = None then ignore (Builder.try_add b gid op))
    candidates

let best_config b = Catalog.best (Builder.platform b).Platform.catalog

let acquire_for b ~style members =
  let config =
    match style with
    | `Best ->
      let c = best_config b in
      if Builder.can_host b ~config:c ~members () then Some c else None
    | `Cheapest -> Builder.cheapest_hosting b ~members ()
  in
  match config with
  | Some config -> Builder.acquire b ~config ~members
  | None ->
    Error
      (Printf.sprintf "no processor can host operators {%s}"
         (String.concat ", " (List.map string_of_int members)))

(* Most communication-demanding neighbour (over tree edges) of a member
   set, excluding the members themselves. *)
let heaviest_outside_neighbor app members =
  let tree = App.tree app in
  let rho = App.rho app in
  let in_set i = List.mem i members in
  let best = ref None in
  let consider cand weight =
    match !best with
    | Some (_, w) when w >= weight -> ()
    | Some _ | None -> best := Some (cand, weight)
  in
  List.iter
    (fun m ->
      List.iter
        (fun c ->
          if not (in_set c) then consider c (rho *. App.output_size app c))
        (Optree.children tree m);
      match Optree.parent tree m with
      | Some p when not (in_set p) -> consider p (rho *. App.output_size app m)
      | Some _ | None -> ())
    members;
  Option.map fst !best

(* The grouping step applied iteratively: each round pulls in the member
   set's most communication-demanding neighbour (selling the neighbour's
   processor if it had one) until the set fits on one processor.  The
   paper describes a single pairing round; iterating is its natural
   completion and is required when a chain of tree edges each exceeds the
   processor-link bandwidth, which forces more than two operators onto
   one machine.  The round budget is a mutable knob so the ablation
   bench can measure the paper's single-round variant. *)
let collapse_rounds = ref 8

let with_collapse_rounds n f =
  if n < 1 then invalid_arg "Common.with_collapse_rounds: n >= 1";
  let saved = !collapse_rounds in
  collapse_rounds := n;
  Fun.protect ~finally:(fun () -> collapse_rounds := saved) f

let acquire_with_grouping ?(on_release = fun _ -> ()) b ~style op =
  let app = Builder.app b in
  let rec grow members rounds =
    match acquire_for b ~style members with
    | Ok gid -> Ok gid
    | Error e ->
      if rounds <= 0 then Error e
      else (
        match heaviest_outside_neighbor app members with
        | None -> Error e
        | Some neighbor ->
          (match Builder.assignment b neighbor with
          | Some gid ->
            let released = Builder.members b gid in
            Builder.sell b gid;
            List.iter on_release released
          | None -> ());
          grow (neighbor :: members) (rounds - 1))
  in
  grow [ op ] !collapse_rounds

let object_set app i =
  List.sort_uniq compare (Optree.leaves (App.tree app) i)

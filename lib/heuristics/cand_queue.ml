type 'a entry = { score : float; tie : int; gen : int; v : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let size q = q.len
let is_empty q = q.len = 0

(* Max-queue: higher score first, ties by lower [tie].  Scores are
   operator works — finite, never NaN. *)
let before a b = a.score > b.score || (a.score = b.score && a.tie < b.tie)

let swap q i j =
  let tmp = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.data.(i) q.data.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let first = ref i in
  if left < q.len && before q.data.(left) q.data.(!first) then first := left;
  if right < q.len && before q.data.(right) q.data.(!first) then first := right;
  if !first <> i then begin
    swap q i !first;
    sift_down q !first
  end

let push q ~score ~tie ~gen v =
  let entry = { score; tie; gen; v } in
  let cap = Array.length q.data in
  if q.len = cap then begin
    let data = Array.make (max 8 (2 * cap)) entry in
    Array.blit q.data 0 data 0 q.len;
    q.data <- data
  end;
  q.data.(q.len) <- entry;
  q.len <- q.len + 1;
  sift_up q (q.len - 1)

let pop q =
  if q.len = 0 then None
  else begin
    let e = q.data.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.data.(0) <- q.data.(q.len);
      sift_down q 0
    end;
    Some (e.v, e.gen)
  end

let rec pop_valid q ~gen_of =
  match pop q with
  | None -> None
  | Some (v, gen) -> if gen_of v = gen then Some v else pop_valid q ~gen_of

(* ------------------------------------------------------------------ *)

module Rank = struct
  type t = { order : int array; nxt : int array }

  let of_order order =
    { order = Array.copy order; nxt = Array.init (Array.length order) Fun.id }

  let length t = Array.length t.order
  let element t pos = t.order.(pos)

  let reset t = Array.iteri (fun i _ -> t.nxt.(i) <- i) t.nxt

  let first t ~alive pos =
    let n = Array.length t.order in
    let p = ref pos in
    let stop = ref false in
    (* Chase [nxt] jumps and dead singles until an alive element (or the
       end).  [nxt.(i) = j > i] certifies that positions i..j-1 held dead
       elements when the jump was written; [reset] must be called if a
       dead element can come back to life. *)
    while not !stop do
      if !p >= n then stop := true
      else begin
        let q = t.nxt.(!p) in
        if q > !p then p := q
        else if alive t.order.(!p) then stop := true
        else p := !p + 1
      end
    done;
    let res = !p in
    (* Path compression: point the whole chased chain at the result. *)
    let q = ref pos in
    while !q < res && !q < n do
      let step =
        let k = t.nxt.(!q) in
        if k > !q then k else !q + 1
      in
      t.nxt.(!q) <- res;
      q := step
    done;
    res
end

module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform
module Alloc = Insp_mapping.Alloc
module Check = Insp_mapping.Check
module Demand = Insp_mapping.Demand
module Obs = Insp_obs.Obs
module Journal = Insp_obs.Journal

let run app platform alloc =
  let catalog = platform.Platform.catalog in
  (* Catalog.cheapest_satisfying rebuilds and sorts the config list on
     every call; the list is invariant across processors, so build it
     once for the whole pass. *)
  let configs = Catalog.configs catalog in
  let cheapest_satisfying ~speed ~bandwidth =
    (* lint: allow p3 — catalog scan is bounded by the config count *)
    List.find_opt (fun c -> Catalog.fits c ~speed ~bandwidth) configs
  in
  let n = Alloc.n_procs alloc in
  (* A processor's demand and download rate depend only on its operator
     group and download plan, never on any configuration, so the
     per-processor decisions are independent: collect them into one
     array and rebuild the allocation with a single structural copy
     instead of one O(procs) copy per step.  Journal events and counters
     fire in the same per-processor order as the stepwise version. *)
  let chosen = Array.init n (fun u -> (Alloc.proc alloc u).Alloc.config) in
  for u = 0 to n - 1 do
    Obs.incr "heur.downgrade.step";
    let d = Check.proc_demand app alloc u in
    let nic_load =
      Check.proc_download_rate app alloc u
      +. d.Demand.comm_in +. d.Demand.comm_out
    in
    match cheapest_satisfying ~speed:d.Demand.compute ~bandwidth:nic_load with
    | Some config ->
      Obs.incr "heur.downgrade.fitted";
      if Obs.journaling () then begin
        (* Labels, not float fields, decide "changed" — string
           equality keeps float comparison out of the decision. *)
        let from_config = Catalog.label chosen.(u) in
        let to_config = Catalog.label config in
        if not (String.equal from_config to_config) then
          Obs.event (Journal.Downgrade { proc = u; from_config; to_config })
      end;
      chosen.(u) <- config
    | None ->
      (* keep the provisioned config; checker will flag *)
      Obs.incr "heur.downgrade.stuck";
      if Obs.journaling () then
        Obs.event
          (Journal.Downgrade_stuck
             { proc = u; config = Catalog.label chosen.(u) })
  done;
  Alloc.with_configs alloc chosen

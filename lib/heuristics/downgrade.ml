module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform
module Alloc = Insp_mapping.Alloc
module Check = Insp_mapping.Check
module Demand = Insp_mapping.Demand
module Obs = Insp_obs.Obs
module Journal = Insp_obs.Journal

let run app platform alloc =
  let catalog = platform.Platform.catalog in
  let n = Alloc.n_procs alloc in
  let rec shrink alloc u =
    if u >= n then alloc
    else begin
      Obs.incr "heur.downgrade.step";
      let d = Check.proc_demand app alloc u in
      let nic_load =
        Check.proc_download_rate app alloc u
        +. d.Demand.comm_in +. d.Demand.comm_out
      in
      let alloc =
        match
          Catalog.cheapest_satisfying catalog ~speed:d.Demand.compute
            ~bandwidth:nic_load
        with
        | Some config ->
          Obs.incr "heur.downgrade.fitted";
          if Obs.journaling () then begin
            (* Labels, not float fields, decide "changed" — string
               equality keeps float comparison out of the decision. *)
            let from_config = Catalog.label (Alloc.proc alloc u).Alloc.config in
            let to_config = Catalog.label config in
            if not (String.equal from_config to_config) then
              Obs.event (Journal.Downgrade { proc = u; from_config; to_config })
          end;
          Alloc.with_config alloc u config
        | None ->
          (* keep the provisioned config; checker will flag *)
          Obs.incr "heur.downgrade.stuck";
          if Obs.journaling () then
            Obs.event
              (Journal.Downgrade_stuck
                 {
                   proc = u;
                   config = Catalog.label (Alloc.proc alloc u).Alloc.config;
                 });
          alloc
      in
      shrink alloc (u + 1)
    end
  in
  shrink alloc 0

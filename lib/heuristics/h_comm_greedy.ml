module App = Insp_tree.App
module Optree = Insp_tree.Optree
module Ledger = Insp_mapping.Ledger

(* All parent edges, heaviest communication first. *)
let edges_by_weight_desc app =
  let tree = App.tree app in
  let edges = ref [] in
  for i = 0 to App.n_operators app - 1 do
    match Optree.parent tree i with
    | None -> ()
    | Some p -> edges := (i, p, App.rho app *. App.output_size app i) :: !edges
  done;
  List.sort
    (fun (a, _, wa) (b, _, wb) ->
      let c = compare wb wa in
      if c <> 0 then c else compare a b)
    !edges

let place_pair b i p =
  match Common.acquire_for b ~style:`Cheapest [ i; p ] with
  | Ok _ -> Ok ()
  | Error _ -> (
    match Common.acquire_for b ~style:`Best [ i ] with
    | Error e -> Error e
    | Ok _ -> (
      match Common.acquire_for b ~style:`Best [ p ] with
      | Error e -> Error e
      | Ok _ -> Ok ()))

(* "Attempts to accommodate the other operator as well": in the
   constructive setting the host processor may be exchanged for a larger
   model that fits both. *)
let place_single_next_to b ~host ~op =
  if Builder.try_add_upgrade b host op then Ok ()
  else
    match Common.acquire_for b ~style:`Best [ op ] with
    | Ok _ -> Ok ()
    | Error e -> Error e

(* Ablation knob: disable the merge sweeps to measure the paper's
   literal one-pass edge processing.  Not thread-safe. *)
let merge_sweeps_enabled = ref true

let with_merge_sweeps enabled f =
  let saved = !merge_sweeps_enabled in
  merge_sweeps_enabled := enabled;
  Fun.protect ~finally:(fun () -> merge_sweeps_enabled := saved) f

(* Ablation knob: disable the per-edge failed-probe cache below and
   re-probe every cross-processor edge on every sweep, like the legacy
   implementation.  Not thread-safe. *)
let probe_cache_enabled = ref true

let with_probe_cache enabled f =
  let saved = !probe_cache_enabled in
  probe_cache_enabled := enabled;
  Fun.protect ~finally:(fun () -> probe_cache_enabled := saved) f

(* Case (iii) of the paper: for edges whose endpoints ended up on two
   different processors, try to accommodate both groups on one processor
   and sell the other.  Processing edges heaviest-first means both
   endpoints are rarely assigned when an edge is first visited, so the
   merge case is swept repeatedly until it stops firing.

   Re-probing an edge whose endpoint groups have not changed since both
   merge directions last failed must fail again: the absorb verdict
   depends only on the two groups' ledger state (loads, flows, needs)
   and the static catalog, every observable change of which bumps the
   groups' generation stamps (Ledger.generation).  Caching the failed
   [(group, stamp)] pair per edge therefore skips exactly the probes
   that cannot fire, making each quiescent sweep O(live edges) instead
   of O(edges × probe). *)
let merge_sweeps b app edges =
  let led = Builder.ledger b in
  let edges = Array.of_list edges in
  let failed = Array.make (Array.length edges) (-1, -1, -1, -1) in
  let use_cache = !probe_cache_enabled in
  let rec sweep budget =
    if budget > 0 then begin
      let changed = ref false in
      Array.iteri
        (fun idx (i, p, _) ->
          match (Builder.assignment b i, Builder.assignment b p) with
          | Some gi, Some gp when gi <> gp ->
            let key =
              (gi, Ledger.generation led gi, gp, Ledger.generation led gp)
            in
            if use_cache && failed.(idx) = key then ()
            else if
              Builder.try_absorb_upgrade b gi gp
              || Builder.try_absorb_upgrade b gp gi
            then changed := true
            else failed.(idx) <- key
          | _ -> ())
        edges;
      if !changed then sweep (budget - 1)
    end
  in
  sweep (App.n_operators app)

let run _rng app platform =
  let b = Builder.create app platform in
  let rec handle = function
    | [] -> Ok ()
    | (i, p, _) :: rest -> (
      let step =
        match (Builder.assignment b i, Builder.assignment b p) with
        | None, None -> place_pair b i p
        | Some gi, None -> place_single_next_to b ~host:gi ~op:p
        | None, Some gp -> place_single_next_to b ~host:gp ~op:i
        | Some gi, Some gp ->
          if gi <> gp then
            ignore
              (Builder.try_absorb_upgrade b gi gp
              || Builder.try_absorb_upgrade b gp gi);
          Ok ()
      in
      match step with Error e -> Error e | Ok () -> handle rest)
  in
  let edges = edges_by_weight_desc app in
  match handle edges with
  | Error e -> Error e
  | Ok () -> (
    if !merge_sweeps_enabled then merge_sweeps b app edges;
    (* Only a single-operator tree has no edges; place any leftover. *)
    match Builder.unassigned b with
    | [] -> Ok b
    | leftover -> (
      let rec place = function
        | [] -> Ok b
        | op :: rest -> (
          match Common.acquire_for b ~style:`Cheapest [ op ] with
          | Ok _ -> place rest
          | Error e -> Error e)
      in
      match place leftover with Ok b -> Ok b | Error e -> Error e))

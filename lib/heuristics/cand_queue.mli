(** Candidate priority queues for the greedy heuristics (DESIGN.md §16).

    Two structures back the queue-based greedy loops:

    {b Lazy-deletion heap with generation stamps} ([t]): a max-queue of
    scored candidates.  Instead of deleting a candidate when the ledger
    state it was scored against changes, the mutation bumps the
    candidate's {e current} generation counter; {!pop_valid} silently
    discards popped entries whose stored stamp is stale.  Invalidation
    is therefore O(1) per touched candidate (bump + optional re-push
    with the new stamp) — no heap surgery — and a stale candidate can
    never win a pop.

    {b Static rank walker} ([Rank]): the greedy fill order of
    Comp-Greedy is a {e static} permutation (operators by non-increasing
    work).  [Rank] walks it skipping dead (already-assigned) elements in
    near-constant amortised time via path-compressed skip pointers —
    the "successor with deletion" structure.  Compression assumes
    monotone deletion; {!Rank.reset} forgets it when a sell resurrects
    operators. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> score:float -> tie:int -> gen:int -> 'a -> unit
(** Insert with priority (score descending, then [tie] ascending) and
    the candidate's generation stamp at push time. *)

val pop : 'a t -> ('a * int) option
(** Highest-priority entry with its stored stamp, stale or not. *)

val pop_valid : 'a t -> gen_of:('a -> int) -> 'a option
(** Pops until an entry whose stored stamp equals [gen_of] of its value;
    stale entries are discarded permanently (their candidate was
    re-pushed with the newer stamp if still relevant). *)

module Rank : sig
  type t

  val of_order : int array -> t
  (** The elements in priority order (copied). *)

  val length : t -> int

  val element : t -> int -> int
  (** Element at a position of the order. *)

  val first : t -> alive:(int -> bool) -> int -> int
  (** [first t ~alive pos] — smallest position [>= pos] whose element is
      alive, or [length t]; compresses skip pointers over the dead
      prefix it crossed. *)

  val reset : t -> unit
  (** Invalidate all compression (call after a dead element was brought
      back to life). *)
end

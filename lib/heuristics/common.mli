(** Helpers shared by the placement heuristics. *)

type style = [ `Best | `Cheapest ]
(** Which configuration a heuristic provisions when buying a processor:
    the catalog's most expensive one (later downgraded) or the cheapest
    one that can host the operators. *)

(* lint: allow t3 — mirrors the paper's operator-pairing notation; kept for parity *)
val comm_partner : Insp_tree.App.t -> int -> int option
(** The neighbour (operator child or parent) of an operator with the most
    demanding communication requirement on the connecting tree edge;
    [None] for an isolated root with no operator children. *)

val by_work_desc : Insp_tree.App.t -> int list -> int list
(** Sort operators by non-increasing [w_i] (ties by id for
    determinism). *)

val fill : Builder.t -> Builder.group_id -> int list -> unit
(** [fill b gid candidates] greedily [try_add]s each still-unassigned
    candidate, in order. *)

val acquire_for :
  Builder.t -> style:style -> int list -> (Builder.group_id, string) result
(** Buys one processor of the requested style for the given unassigned
    operators; fails without mutating when no configuration can host
    them. *)

val acquire_with_grouping :
  ?on_release:(int -> unit) ->
  Builder.t -> style:style -> int -> (Builder.group_id, string) result
(** The paper's grouping fallback (Random / Comp-Greedy), applied
    iteratively: buy a processor for [op]; while that fails, pull in the
    candidate set's most communication-demanding neighbour — selling the
    neighbour's current processor if it had one (its co-located operators
    return to the unassigned pool) — and retry, up to a bounded number of
    rounds.  Iteration (vs the paper's single pairing) is required when a
    chain of tree edges each exceeds the processor-link bandwidth.
    [on_release] is called once per operator returned to the unassigned
    pool by a sell, after the sell committed — the candidate-queue
    heuristics use it to re-stamp and re-enqueue resurrected
    candidates. *)

val object_set : Insp_tree.App.t -> int -> int list
(** Distinct object types operator [i] downloads. *)

val with_collapse_rounds : int -> (unit -> 'a) -> 'a
(** Run a thunk with the grouping fallback limited to the given number
    of rounds (1 = the paper's single pairing step; default 8).  For the
    ablation bench; restores the previous value on exit.  Not
    thread-safe. *)

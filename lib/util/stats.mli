(** Descriptive statistics over float samples.

    Used by the experiment harness to aggregate heuristic costs over random
    seeds, and by the simulator to summarise measured throughput. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
}

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val variance : float list -> float
(** Unbiased sample variance; 0 when fewer than two samples. *)

val stddev : float list -> float

val minimum : float list -> float
(** Requires a non-empty list. *)

val maximum : float list -> float
(** Requires a non-empty list. *)

val median : float list -> float
(** Requires a non-empty list; averages the two middle elements for even
    lengths. *)

val percentile : float -> float list -> float
(** [percentile p samples] with [p] in [\[0, 100\]], linear interpolation
    between closest ranks.  Requires a non-empty list. *)

val summarize : float list -> summary
(** Requires a non-empty list. *)

val pp_summary : Format.formatter -> summary -> unit

val geometric_mean : float list -> float
(** Requires all samples strictly positive; 1.0 on the empty list. *)

val approx_eq : ?rel:float -> ?abs:float -> float -> float -> bool
(** Tolerant float equality:
    [|a - b| <= max (abs, rel * max |a| |b|)] with [rel = 1e-9] and
    [abs = 1e-12] by default — the tolerance regime of the feasibility
    checker (DESIGN.md §8).  This is the helper lint rule F1 points to
    instead of [=]/[<>]/polymorphic [compare] on float data. *)

(** Descriptive statistics over float samples.

    Used by the experiment harness to aggregate heuristic costs over random
    seeds, and by the simulator to summarise measured throughput. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
}

val mean : float list -> float
(** Arithmetic mean.  Raises [Invalid_argument] on the empty list — the
    same contract as every other aggregate here, so an empty sample set
    fails loudly instead of reading as a zero cost. *)

val variance : float list -> float
(** Unbiased sample variance (n-1 denominator).  Raises
    [Invalid_argument] on the empty list; returns 0 for a single sample
    (the estimator is undefined at n = 1, and 0 is the conventional
    "no observed spread" answer). *)

val stddev : float list -> float
(** [sqrt (variance samples)]; same domain as {!variance}. *)

val sorted : float list -> float array
(** Fresh array of the samples in ascending order via [Float.compare],
    so NaN has a specified position (before every number) rather than
    the unspecified result polymorphic compare gives on floats. *)

val minimum : float list -> float
(** Requires a non-empty list. *)

val maximum : float list -> float
(** Requires a non-empty list. *)

val median : float list -> float
(** Requires a non-empty list; averages the two middle elements for even
    lengths. *)

val percentile : float -> float list -> float
(** [percentile p samples] with [p] in [\[0, 100\]], linear interpolation
    between closest ranks.  Requires a non-empty, NaN-free list (raises
    [Invalid_argument] otherwise). *)

val summarize : float list -> summary
(** Requires a non-empty, NaN-free list (raises [Invalid_argument]
    otherwise). *)

(* lint: allow t3 — debugging printer *)
val pp_summary : Format.formatter -> summary -> unit

val geometric_mean : float list -> float
(** Requires a non-empty list of strictly positive samples; raises
    [Invalid_argument] otherwise. *)

(* lint: allow t3 — float-comparison helper documented in DESIGN *)
val approx_eq : ?rel:float -> ?abs:float -> float -> float -> bool
(** Tolerant float equality:
    [|a - b| <= max (abs, rel * max |a| |b|)] with [rel = 1e-9] and
    [abs = 1e-12] by default — the tolerance regime of the feasibility
    checker (DESIGN.md §8).  This is the helper lint rule F1 points to
    instead of [=]/[<>]/polymorphic [compare] on float data. *)

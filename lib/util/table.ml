type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : (string * align) list;
  mutable rows : row list;  (* reverse order *)
}

let create ?title headers = { title; headers; rows = [] }

let add_row t cells =
  let width = List.length t.headers in
  let n = List.length cells in
  if n > width then invalid_arg "Table.add_row: too many cells";
  let padded =
    if n = width then cells else cells @ List.init (width - n) (fun _ -> "")
  in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let missing = width - n in
    match align with
    | Left -> s ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ s
    | Center ->
      let left = missing / 2 in
      String.make left ' ' ^ s ^ String.make (missing - left) ' '

let render t =
  (* Arrays for anything indexed per-column: positional access is total
     here because [add_row] pads every row to the header width. *)
  let headers = Array.of_list (List.map fst t.headers) in
  let aligns = Array.of_list (List.map snd t.headers) in
  let rows = List.rev t.rows in
  let cell_rows =
    List.filter_map
      (function Cells c -> Some (Array.of_list c) | Separator -> None)
      rows
  in
  let widths =
    Array.mapi
      (fun i h ->
        List.fold_left
          (fun acc cells -> max acc (String.length cells.(i)))
          (String.length h) cell_rows)
      headers
  in
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_cells cells aligns =
    Buffer.add_char buf '|';
    Array.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | None -> ()
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n');
  rule ();
  emit_cells headers (Array.map (fun _ -> Center) headers);
  rule ();
  List.iter
    (function
      | Cells cells -> emit_cells (Array.of_list cells) aligns
      | Separator -> rule ())
    rows;
  rule ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_float ?(decimals = 2) x =
  if Float.is_finite x then Printf.sprintf "%.*f" decimals x else "-"

let cell_opt_float ?(decimals = 2) = function
  | None -> "-"
  | Some x -> cell_float ~decimals x

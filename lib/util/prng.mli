(** Deterministic pseudo-random number generator (SplitMix64).

    All randomness in the library flows through this module so that every
    simulation is reproducible from a single integer seed.  The generator
    is splittable: {!split} derives an independent stream, which lets the
    workload generator hand isolated sub-streams to tree generation,
    object-size drawing, and server placement without them interfering. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] advances [t] once and returns a statistically independent
    generator seeded from the drawn value. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] draws uniformly from [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] draws uniformly from [\[lo, hi)].  Requires
    [lo <= hi]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)].  Requires
    [bound > 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] draws uniformly from the inclusive range
    [\[lo, hi\]].  Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin flip. *)

val choose : t -> 'a array -> 'a
(** [choose t arr] picks a uniformly random element.  Requires a
    non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** [choose_list t l] picks a uniformly random element.  Requires a
    non-empty list. *)

(* lint: allow t3 — seeded shuffle kept for workload generators *)
val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Returns a shuffled copy of the list. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)].  Requires [0 <= k <= n]. *)

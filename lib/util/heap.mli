(** Mutable binary min-heap keyed by float priority.

    Backs the discrete-event simulator's event queue: keys are event
    timestamps, payloads are events.  Ties are broken by insertion order
    so the simulation is deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val peek : 'a t -> (float * 'a) option
(** Smallest key, without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the entry with the smallest key; among equal keys
    the earliest-inserted entry is returned first. *)

(* lint: allow t3 — container API completeness *)
val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive: all entries in ascending key (then insertion)
    order. *)

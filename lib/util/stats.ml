type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

(* One empty-list contract for the whole module: every aggregate raises
   [Invalid_argument "Stats.<fn>: empty list"].  A silent 0.0 (the old
   [mean]/[variance] behaviour) turns a "no feasible seeds" bug into a
   plausible-looking number downstream. *)
let nonempty name = function
  | [] -> invalid_arg ("Stats." ^ name ^ ": empty list")
  | _ -> ()

(* NaN poisons every aggregate silently (comparisons are all false, sums
   are NaN); the summary entry points reject it loudly instead. *)
let reject_nan name samples =
  if List.exists Float.is_nan samples then
    invalid_arg ("Stats." ^ name ^ ": NaN sample")

let mean samples =
  nonempty "mean" samples;
  List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples)

let variance samples =
  nonempty "variance" samples;
  let n = List.length samples in
  (* A single sample carries no spread information: the unbiased
     estimator is undefined (n - 1 = 0); by convention we return 0. *)
  if n < 2 then 0.0
  else begin
    let m = mean samples in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 samples in
    sq /. float_of_int (n - 1)
  end

let stddev samples = sqrt (variance samples)

let fold_nonempty name f = function
  | [] -> invalid_arg ("Stats." ^ name ^ ": empty list")
  | x :: rest -> List.fold_left f x rest

let minimum samples = fold_nonempty "minimum" Float.min samples
let maximum samples = fold_nonempty "maximum" Float.max samples

(* Float.compare, not polymorphic compare: gives NaN a specified total
   order (NaN sorts below everything) instead of the unspecified result
   polymorphic compare produces on boxed floats. *)
let sorted samples =
  let arr = Array.of_list samples in
  Array.sort Float.compare arr;
  arr

let median samples =
  nonempty "median" samples;
  let arr = sorted samples in
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2)
  else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let percentile p samples =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  nonempty "percentile" samples;
  reject_nan "percentile" samples;
  let arr = sorted samples in
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let summarize samples =
  nonempty "summarize" samples;
  reject_nan "summarize" samples;
  {
    count = List.length samples;
    mean = mean samples;
    stddev = stddev samples;
    min = minimum samples;
    max = maximum samples;
    median = median samples;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g"
    s.count s.mean s.stddev s.min s.median s.max

let geometric_mean samples =
  nonempty "geometric_mean" samples;
  let log_sum =
    List.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive sample";
        acc +. log x)
      0.0 samples
  in
  exp (log_sum /. float_of_int (List.length samples))

let approx_eq ?(rel = 1e-9) ?(abs = 1e-12) a b =
  let d = Float.abs (a -. b) in
  d <= abs || d <= rel *. Float.max (Float.abs a) (Float.abs b)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean = function
  | [] -> 0.0
  | samples ->
    List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples)

let variance samples =
  let n = List.length samples in
  if n < 2 then 0.0
  else begin
    let m = mean samples in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 samples in
    sq /. float_of_int (n - 1)
  end

let stddev samples = sqrt (variance samples)

let fold_nonempty name f = function
  | [] -> invalid_arg ("Stats." ^ name ^ ": empty list")
  | x :: rest -> List.fold_left f x rest

let minimum samples = fold_nonempty "minimum" Float.min samples
let maximum samples = fold_nonempty "maximum" Float.max samples

let sorted samples =
  let arr = Array.of_list samples in
  Array.sort compare arr;
  arr

let median samples =
  match samples with
  | [] -> invalid_arg "Stats.median: empty list"
  | _ ->
    let arr = sorted samples in
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2)
    else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let percentile p samples =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  match samples with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ ->
    let arr = sorted samples in
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let frac = rank -. float_of_int lo in
      arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
    end

let summarize samples =
  match samples with
  | [] -> invalid_arg "Stats.summarize: empty list"
  | _ ->
    {
      count = List.length samples;
      mean = mean samples;
      stddev = stddev samples;
      min = minimum samples;
      max = maximum samples;
      median = median samples;
    }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g"
    s.count s.mean s.stddev s.min s.median s.max

let geometric_mean = function
  | [] -> 1.0
  | samples ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive sample";
          acc +. log x)
        0.0 samples
    in
    exp (log_sum /. float_of_int (List.length samples))

let approx_eq ?(rel = 1e-9) ?(abs = 1e-12) a b =
  let d = Float.abs (a -. b) in
  d <= abs || d <= rel *. Float.max (Float.abs a) (Float.abs b)

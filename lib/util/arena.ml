type t = {
  mutable next : int;
  mutable live : bool array;  (* indexed by id, grown geometrically *)
  mutable gen : int array;  (* per-id generation stamp *)
  mutable n_live : int;
}

let create ?(capacity = 16) () =
  let capacity = max 1 capacity in
  { next = 0; live = Array.make capacity false; gen = Array.make capacity 0;
    n_live = 0 }

let n_ids t = t.next
let n_live t = t.n_live

let ensure t id =
  let cap = Array.length t.live in
  if id >= cap then begin
    let cap' = max (id + 1) (2 * cap) in
    let live = Array.make cap' false in
    Array.blit t.live 0 live 0 cap;
    t.live <- live;
    let gen = Array.make cap' 0 in
    Array.blit t.gen 0 gen 0 cap;
    t.gen <- gen
  end

let alloc t =
  let id = t.next in
  t.next <- id + 1;
  ensure t id;
  t.live.(id) <- true;
  t.n_live <- t.n_live + 1;
  id

let check t id =
  if id < 0 || id >= t.next || not t.live.(id) then
    invalid_arg "Arena: dead id"

let is_live t id = id >= 0 && id < t.next && t.live.(id)

let free t id =
  check t id;
  t.live.(id) <- false;
  t.gen.(id) <- t.gen.(id) + 1;
  t.n_live <- t.n_live - 1

let generation t id =
  check t id;
  t.gen.(id)

let touch t id =
  check t id;
  t.gen.(id) <- t.gen.(id) + 1

let iter_live t f =
  for id = 0 to t.next - 1 do
    if t.live.(id) then f id
  done

let live_ids t =
  let acc = ref [] in
  for id = t.next - 1 downto 0 do
    if t.live.(id) then acc := id :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Columns                                                             *)

type 'a col = { mutable data : 'a array; default : 'a }

let col ?(capacity = 16) default =
  { data = Array.make (max 1 capacity) default; default }

let col_ensure c id =
  let cap = Array.length c.data in
  if id >= cap then begin
    let data = Array.make (max (id + 1) (2 * cap)) c.default in
    Array.blit c.data 0 data 0 cap;
    c.data <- data
  end

let get c id = if id < Array.length c.data then c.data.(id) else c.default

let set c id v =
  col_ensure c id;
  c.data.(id) <- v

let reset c id = if id < Array.length c.data then c.data.(id) <- c.default

(* Float columns: a monomorphic wrapper so the backing array is an
   unboxed float array. *)
type fcol = { mutable fdata : float array; fdefault : float }

let fcol ?(capacity = 16) fdefault =
  { fdata = Array.make (max 1 capacity) fdefault; fdefault }

let fcol_ensure c id =
  let cap = Array.length c.fdata in
  if id >= cap then begin
    let data = Array.make (max (id + 1) (2 * cap)) c.fdefault in
    Array.blit c.fdata 0 data 0 cap;
    c.fdata <- data
  end

let fget c id = if id < Array.length c.fdata then c.fdata.(id) else c.fdefault

let fset c id v =
  fcol_ensure c id;
  c.fdata.(id) <- v

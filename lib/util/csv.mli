(** Minimal CSV emission (RFC 4180 quoting) for experiment series.

    Each reproduced figure is also emitted as a CSV block so the series
    can be re-plotted outside the repository. *)

type t

val create : string list -> t
(** [create header] starts a CSV document with the given column names. *)

val add_row : t -> string list -> unit
(** Appends a data row; the row may have any width. *)

val add_floats : t -> float list -> unit
(** Appends a row of floats formatted with ["%.6g"]; NaN renders empty. *)

val to_string : t -> string
(** Serialises header plus rows, quoting fields that contain commas,
    quotes or newlines. *)

(* lint: allow t3 — file-writing counterpart of to_string, kept for scripts *)
val save : t -> string -> unit
(** [save t path] writes {!to_string} to [path]. *)

type t = { parent : int array; rank : int array; count : int array }

let create n =
  {
    parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    count = Array.make n 1;
  }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    let small, big =
      if t.rank.(ra) < t.rank.(rb) then (ra, rb) else (rb, ra)
    in
    t.parent.(small) <- big;
    if t.rank.(small) = t.rank.(big) then t.rank.(big) <- t.rank.(big) + 1;
    t.count.(big) <- t.count.(big) + t.count.(small);
    big
  end

let same t a b = find t a = find t b

let size t i = t.count.(find t i)

(* Canonical order by construction — no hash iteration anywhere near a
   seeded experiment (lint rule D2).  Bucketing by root with a downward
   loop leaves each group ascending; groups are then ordered by smallest
   member, which is each bucket's head. *)
let groups t =
  let n = Array.length t.parent in
  let buckets = Array.make n [] in
  for i = n - 1 downto 0 do
    let r = find t i in
    buckets.(r) <- i :: buckets.(r)
  done;
  let smallest = function [] -> max_int | m :: _ -> m in
  Array.to_list buckets
  |> List.filter (fun g -> g <> [])
  |> List.sort (fun a b -> Int.compare (smallest a) (smallest b))

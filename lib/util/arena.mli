(** Dense id allocator with structure-of-arrays column views.

    The hot data model of the solver keys everything by small integer
    ids (operators, processors, servers).  An arena hands out ids
    monotonically — ids are {e never reused}, so a freed processor id
    stays dead forever and journals referring to it stay unambiguous —
    and owns the per-id bookkeeping the columns index into.  A column
    ([col]/[fcol]) is a growable flat array defaulted on first touch;
    [fcol] is monomorphic so OCaml unboxes the backing float array.

    Each id carries a {e generation stamp}, bumped by {!touch} and
    {!free}.  Cached derived state (a feasibility probe, a scored
    candidate) records the stamp it was computed at; a stale stamp means
    the cache entry must be dropped (the lazy-deletion discipline of
    [Insp_heuristics.Cand_queue]).  See DESIGN.md §16. *)

type t

val create : ?capacity:int -> unit -> t

val alloc : t -> int
(** Fresh id, one greater than the previous allocation (dense preorder:
    the [n]-th call returns [n - 1]). *)

val free : t -> int -> unit
(** Kills the id (and bumps its generation).  The id is never handed out
    again. *)

val is_live : t -> int -> bool

val n_ids : t -> int
(** Total ids ever allocated (the exclusive upper bound of the id
    space). *)

val n_live : t -> int

val live_ids : t -> int list
(** Ascending. *)

val iter_live : t -> (int -> unit) -> unit
(** Ascending id order — safe to feed observable output (lint D6). *)

val generation : t -> int -> int
(** Current stamp of a live id. *)

val touch : t -> int -> unit
(** Bump the stamp: the id's associated state changed and any cached
    view of it is now stale. *)

(** {1 Columns} *)

type 'a col

val col : ?capacity:int -> 'a -> 'a col
(** [col default] — every id reads [default] until written. *)

val get : 'a col -> int -> 'a
val set : 'a col -> int -> 'a -> unit

val reset : 'a col -> int -> unit
(** Write the default back (used when an id dies). *)

type fcol
(** Unboxed float column. *)

val fcol : ?capacity:int -> float -> fcol
val fget : fcol -> int -> float
val fset : fcol -> int -> float -> unit

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finaliser (Steele, Lea & Flood, OOPSLA'14). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next_int64 t }

(* 53 uniform mantissa bits, as in Java's SplittableRandom. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t lo hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (next_int64 t) mask) in
    let r = v mod bound in
    if v - r + (bound - 1) < 0 then draw () else r
  in
  draw ()

let int_range t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | _ :: _ ->
    (* Same index as [List.nth l (int t (length l))], so the stream of
       PRNG draws — and every seeded experiment — is unchanged. *)
    let arr = Array.of_list l in
    arr.(int t (Array.length arr))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_list t l =
  let arr = Array.of_list l in
  shuffle_in_place t arr;
  Array.to_list arr

let sample_without_replacement t k n =
  assert (0 <= k && k <= n);
  let arr = Array.init n (fun i -> i) in
  shuffle_in_place t arr;
  Array.to_list (Array.sub arr 0 k)

(** Persistent multi-tenant allocation service (ROADMAP item 1).

    Holds one platform and the set of admitted applications across a
    deterministic event stream ({!Stream}) of arrivals and departures.
    On arrival the service solves the application against the scope's
    {e residual} platform (an existing heuristic on a capacity-reduced
    copy), re-validates the proposed allocation through a fresh
    {!Insp_mapping.Ledger} probe, and admits or rejects with a journaled
    reason.  On departure the application's capacity returns to the pool
    and a resale fraction of its cost is refunded; optionally the
    tenant's survivors are re-optimized against the freed capacity.

    Two tenancy models:
    - {!Static_slicing} — every tenant owns a fixed 1/n partition of the
      processor budget and of each server card;
    - {!Shared} — one pool, first-come first-served.

    Shared finite resources are the platform-wide processor budget and
    the per-server card bandwidth.  Link bandwidths are modelled
    per-application (as in the one-shot paper setting) and are not
    contended between applications.

    Determinism: residuals are recomputed from the ordered map of
    admitted applications on every query, never kept as mutable float
    accumulators — so admit-then-depart restores byte-identical state,
    and equal seeds give byte-identical journals and dumps. *)

type tenancy = Static_slicing | Shared

val tenancy_label : tenancy -> string
(** ["static"] / ["shared"]. *)

type params = {
  base : Insp_workload.Config.t;
      (** workload template; [n_operators] and [seed] are overridden per
          application, [seed] also generates the service platform *)
  tenancy : tenancy;
  n_tenants : int;
  proc_budget : int;
      (** maximum concurrently allocated processors, platform-wide *)
  card_scale : float;
      (** server card bandwidths are multiplied by this at platform
          creation; the paper's calibration provisions cards for one
          application, so values well below 1 make cards a contended
          resource under co-tenancy *)
  heuristic : Insp_heuristics.Solve.heuristic;
  resale : float;  (** fraction of cost refunded on departure, in [0,1] *)
  reoptimize : bool;
      (** re-solve the departing tenant's survivors after each
          departure: strictly cheaper allocations are adopted as
          sell-old + buy-new; equal-cost allocations that lower the
          scope's worst card utilization are adopted as free rebalances
          (making room for future arrivals) *)
}

val make_params :
  ?base:Insp_workload.Config.t ->
  ?tenancy:tenancy ->
  ?n_tenants:int ->
  ?proc_budget:int ->
  ?card_scale:float ->
  ?heuristic:Insp_heuristics.Solve.heuristic ->
  ?resale:float ->
  ?reoptimize:bool ->
  unit ->
  params
(** Defaults: {!Insp_workload.Config.default} base, [Shared], 4 tenants,
    budget 96, card_scale 1, Subtree-bottom-up, resale 0.5, no
    re-optimization. *)

type t

exception Unknown_departure of { app : int; t : int }
(** Raised (after journaling {!Insp_obs.Journal.Serve_unknown_depart})
    by {!handle} on a departure whose application id never arrived —
    a malformed stream, distinct from the benign departure of a
    rejected or evicted application. *)

val create : params -> t
(** Generates the service platform from [params.base] (deterministic in
    [base.seed]); no applications admitted yet. *)

val run : params -> Stream.event list -> t
(** {!create} then {!handle} each event in order. *)

val handle : t -> Stream.event -> unit
(** Process one event.  Arrivals admit or reject (and count both);
    departures of admitted applications release capacity and refund;
    departures of previously seen but no-longer-live applications
    (rejected on arrival, or evicted by {!crash}) are no-ops.  Raises
    [Invalid_argument] on malformed streams (duplicate arrival, tenant
    out of range) and {!Unknown_departure} on a departure of a
    never-seen application id. *)

(** {1 Capacity loss} *)

type crash_outcome = {
  evicted : int list;  (** ascending app ids displaced by the crash *)
  readmitted : int list;
      (** the subset re-admitted against the shrunken pool *)
}

val crash : t -> procs_lost:int -> crash_outcome
(** Destroy [procs_lost] processors of the platform budget.  Every
    scope over its shrunken budget evicts its newest live applications
    (journaled {!Insp_obs.Journal.Serve_evict}, refunded at the resale
    fraction) until it fits; evicted applications are then re-admitted
    in ascending id order where the residual still accommodates them
    (journaled as ordinary admits/rejects).  Deterministic: equal
    states and equal [procs_lost] give equal outcomes.  Raises
    [Invalid_argument] on a negative [procs_lost]. *)

val params : t -> params
(* lint: allow t3 — service introspection accessor *)
val platform : t -> Insp_platform.Platform.t
val n_live : t -> int

(** {1 Residual capacity}

    For [Shared] tenancy the [tenant] argument is irrelevant (any value
    selects the one pool); for [Static_slicing] it selects the tenant's
    partition.  [?excluding] drops one admitted application from the
    usage sum (the re-optimization viewpoint). *)

val residual_cards : ?excluding:int -> t -> tenant:int -> float array
(** Per-server card bandwidth remaining in the scope.  Never negative
    (beyond float re-summation noise) when the stream is well-formed —
    the property pinned by the serve loop tests. *)

val residual_procs : ?excluding:int -> t -> tenant:int -> int
(** Processors remaining in the scope's budget. *)

(** {1 Accounting} *)

type reject_reason = R_placement | R_proc_budget | R_ledger

(* lint: allow t3 — service introspection accessor *)
val reject_label : reject_reason -> string

type account = {
  mutable purchased : float;
  mutable refunded : float;
  mutable admitted : int;
  mutable rejected : int;
  mutable departed : int;
}

(* lint: allow t3 — service introspection accessor *)
val account : t -> int -> account
(** The tenant's running account (live view, mutated by {!handle}). *)

type tenant_summary = {
  tenant : int;  (** -1 in {!totals} *)
  purchased : float;
  refunded : float;
  net_cost : float;  (** purchased - refunded *)
  admitted : int;
  rejected : int;
  departed : int;
  live : int;
}

val summary : t -> tenant_summary list
(** One entry per tenant, tenant order. *)

val totals : t -> tenant_summary
(** Sum over tenants, [tenant = -1]. *)

val rejection_rate : tenant_summary -> float
(** [rejected / (admitted + rejected)]; 0 when no arrivals. *)

(** {1 Canonical dumps} *)

val dump_resources : t -> string
(** Admitted applications and residual capacities, canonically rendered
    (ordered map iteration, {!Insp_obs.Jsonc} floats).  Byte-identical
    across runs with equal seeds; restored byte-identically by an
    admit-then-depart pair. *)

val dump_state : t -> string
(** {!dump_resources} plus per-tenant account lines. *)

(** Deterministic, seeded event stream of application arrivals and
    departures — the workload of the multi-tenant allocation service
    ({!Serve}).

    The stream is a pure function of its {!spec}: one PRNG, a fixed
    per-application draw order, and a total sort key over events.  Two
    calls to {!events} with equal specs return equal lists. *)

type spec = {
  seed : int;
  n_apps : int;
  n_tenants : int;
  min_operators : int;  (** inclusive *)
  max_operators : int;  (** inclusive *)
  mean_gap : int;
      (** arrival gaps are uniform over [0, 2*mean_gap) logical ticks *)
  mean_lifetime : int;
      (** lifetimes are uniform over [1, 2*mean_lifetime] ticks *)
  mean_burst : int;
      (** correlated arrivals: burst sizes are uniform over
          [1, 2*mean_burst - 1], and in-burst applications arrive at
          the same tick.  1 (the default) disables bursts and draws
          nothing, keeping legacy streams byte-identical. *)
}

(* lint: allow t3 — documented default stream configuration *)
val default : spec
(** 1000 applications, 4 tenants, 6–24 operators, mean gap 2, mean
    lifetime 90, no bursts, seed 1. *)

val make :
  ?n_apps:int ->
  ?n_tenants:int ->
  ?min_operators:int ->
  ?max_operators:int ->
  ?mean_gap:int ->
  ?mean_lifetime:int ->
  ?mean_burst:int ->
  seed:int ->
  unit ->
  spec
(** {!default} with overrides; validates ranges. *)

val burst_size : Insp_util.Prng.t -> mean:int -> int
(** One correlated-burst size draw: uniform over [1, 2*mean - 1] (a
    mean of 1 returns 1 without consuming randomness).  Shared with the
    fault-timeline generator's crash bursts. *)

type event =
  | Arrival of {
      app : int;  (** dense id, 0-based in arrival order *)
      tenant : int;
      n_operators : int;
      app_seed : int;  (** seeds the instance generator and the solver *)
      t : int;  (** logical arrival tick *)
    }
  | Departure of { app : int; t : int }

val time : event -> int

val events : spec -> event list
(** The full stream, sorted by (time, departures-first, app id) — a
    departure at tick [T] frees capacity before an arrival at [T] is
    admitted.  Every application departs exactly once, strictly after
    its arrival. *)

(* lint: allow t3 — debugging printer *)
val pp_event : Format.formatter -> event -> unit

module Prng = Insp_util.Prng
module Catalog = Insp_platform.Catalog
module Platform = Insp_platform.Platform
module Servers = Insp_platform.Servers
module Ledger = Insp_mapping.Ledger
module Solve = Insp_heuristics.Solve
module Config = Insp_workload.Config
module Instance = Insp_workload.Instance
module Obs = Insp_obs.Obs
module Journal = Insp_obs.Journal
module Jsonc = Insp_obs.Jsonc
module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

exception Unknown_departure of { app : int; t : int }

type tenancy = Static_slicing | Shared

let tenancy_label = function
  | Static_slicing -> "static"
  | Shared -> "shared"

type params = {
  base : Config.t;
  tenancy : tenancy;
  n_tenants : int;
  proc_budget : int;
  card_scale : float;
  heuristic : Solve.heuristic;
  resale : float;
  reoptimize : bool;
}

let default_heuristic () =
  match Solve.find "sbu" with
  | Some h -> h
  | None -> invalid_arg "Serve: sbu heuristic missing from the registry"

let make_params ?(base = Config.default) ?(tenancy = Shared) ?(n_tenants = 4)
    ?(proc_budget = 96) ?(card_scale = 1.0) ?heuristic ?(resale = 0.5)
    ?(reoptimize = false) () =
  if n_tenants < 1 then invalid_arg "Serve.make_params: n_tenants < 1";
  if proc_budget < 1 then invalid_arg "Serve.make_params: proc_budget < 1";
  if card_scale <= 0.0 then invalid_arg "Serve.make_params: card_scale <= 0";
  if resale < 0.0 || resale > 1.0 then
    invalid_arg "Serve.make_params: resale outside [0, 1]";
  let heuristic =
    match heuristic with Some h -> h | None -> default_heuristic ()
  in
  {
    base; tenancy; n_tenants; proc_budget; card_scale; heuristic; resale;
    reoptimize;
  }

type admitted = {
  a_tenant : int;
  a_ops : int;
  a_seed : int;
  a_cost : float;
  a_n_procs : int;
  a_card_use : (int * float) list;  (* per-server download load, sorted *)
}

type account = {
  mutable purchased : float;
  mutable refunded : float;
  mutable admitted : int;
  mutable rejected : int;
  mutable departed : int;
}

type t = {
  params : params;
  platform : Platform.t;
  mutable live : admitted Imap.t;
  mutable seen : Iset.t;  (* every application id that ever arrived *)
  mutable lost_procs : int;  (* processors destroyed by crashes *)
  accounts : account array;  (* indexed by tenant *)
}

(* The generated platform's card bandwidth is calibrated for one
   application at a time (the paper's one-shot setting); [card_scale]
   shrinks it so that persistent co-tenancy makes cards a contended
   resource rather than leaving the processor budget as the only
   binding constraint. *)
let scale_cards platform scale =
  (* No scale = 1 fast path: multiplying by 1.0 is exact, so the
     rebuilt platform is bit-identical to the original. *)
  let servers = platform.Platform.servers in
  let n = Servers.n_servers servers in
  let n_obj = Servers.n_object_types servers in
  let cards = Array.init n (fun l -> scale *. Servers.card servers l) in
  let holds =
    Array.init n (fun l -> Array.init n_obj (fun k -> Servers.holds servers l k))
  in
  { platform with Platform.servers = Servers.make ~cards ~holds }

let create params =
  let inst = Instance.generate params.base in
  {
    params;
    platform = scale_cards inst.Instance.platform params.card_scale;
    live = Imap.empty;
    seen = Iset.empty;
    lost_procs = 0;
    accounts =
      Array.init params.n_tenants (fun _ ->
          { purchased = 0.0; refunded = 0.0; admitted = 0; rejected = 0;
            departed = 0 });
  }

let params t = t.params
let platform t = t.platform
let n_live t = Imap.cardinal t.live

let account t tenant =
  if tenant < 0 || tenant >= Array.length t.accounts then
    invalid_arg "Serve.account: bad tenant";
  t.accounts.(tenant)

(* ------------------------------------------------------------------ *)
(* Residual capacity                                                   *)

(* Residuals are recomputed from the admitted-application map (an
   ordered Map fold) on every query rather than kept as mutable float
   state: admit-then-depart restores the map exactly, so the residual is
   byte-identical by construction — no [(a +. x) -. x] residue, no
   drift over thousands of events. *)

let in_scope t ~tenant a =
  match t.params.tenancy with
  | Shared -> true
  | Static_slicing -> a.a_tenant = tenant

let scope_card t l =
  let full = Servers.card t.platform.Platform.servers l in
  match t.params.tenancy with
  | Shared -> full
  | Static_slicing -> full /. float_of_int t.params.n_tenants

let scope_proc_budget t =
  (* Crashed processors come off the top of the platform budget before
     any tenant partitioning. *)
  let budget = t.params.proc_budget - t.lost_procs in
  match t.params.tenancy with
  | Shared -> budget
  | Static_slicing -> budget / t.params.n_tenants

let residual_cards ?excluding t ~tenant =
  let n = Servers.n_servers t.platform.Platform.servers in
  let used = Array.make n 0.0 in
  Imap.iter
    (fun id a ->
      if in_scope t ~tenant a && Some id <> excluding then
        List.iter
          (fun (l, x) -> used.(l) <- used.(l) +. x)
          a.a_card_use)
    t.live;
  Array.init n (fun l -> scope_card t l -. used.(l))

let residual_procs ?excluding t ~tenant =
  let used =
    Imap.fold
      (fun id a acc ->
        if in_scope t ~tenant a && Some id <> excluding then acc + a.a_n_procs
        else acc)
      t.live 0
  in
  scope_proc_budget t - used

(* The solver needs a platform whose server cards are the scope's
   residual capacity.  [Servers.make] requires strictly positive cards,
   so exhausted cards are clamped to a vanishing epsilon — any download
   against them then fails feasibility, which is the intended reading. *)
let residual_platform ?excluding t ~tenant =
  let servers = t.platform.Platform.servers in
  let n_obj = Servers.n_object_types servers in
  let cards =
    Array.map (fun c -> Float.max c 1e-9) (residual_cards ?excluding t ~tenant)
  in
  let holds =
    Array.init (Servers.n_servers servers) (fun l ->
        Array.init n_obj (fun k -> Servers.holds servers l k))
  in
  { t.platform with Platform.servers = Servers.make ~cards ~holds }

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

type reject_reason = R_placement | R_proc_budget | R_ledger

let reject_label = function
  | R_placement -> "placement"
  | R_proc_budget -> "proc_budget"
  | R_ledger -> "ledger"

let instance_for t ~n_operators ~app_seed =
  (* Per-application workload drawn from the service's base template;
     the generated per-instance platform is discarded — applications
     share the service platform. *)
  Instance.generate { t.params.base with Config.n_operators; seed = app_seed }

(* The inner solver runs under a journal-suppressed sink: its metrics
   merge up, but its per-decision events would drown the serve-level
   journal (and tie its bytes to solver internals). *)
let solve_quietly t app platform ~seed =
  let result, sink =
    Obs.with_sink ~journal:false (fun () ->
        Solve.run ~seed t.params.heuristic app platform)
  in
  Obs.absorb sink;
  result

let card_use_of ledger ~n_servers =
  List.filter
    (fun (_, x) -> x > 0.0)
    (List.init n_servers (fun l -> (l, Ledger.card_load ledger l)))

let try_admit t ~tenant ~n_operators ~app_seed =
  let inst = instance_for t ~n_operators ~app_seed in
  let app = inst.Instance.app in
  let platform = residual_platform t ~tenant in
  match solve_quietly t app platform ~seed:app_seed with
  | Error _ -> Error R_placement
  | Ok o ->
    if o.Solve.n_procs > residual_procs t ~tenant then Error R_proc_budget
    else begin
      (* Admission probe: replay the proposed allocation into a fresh
         ledger against the residual platform and require a clean
         violation set.  The solver has validated already, so this is
         the service trusting the ledger, not the solver. *)
      let ledger = Ledger.of_alloc app platform o.Solve.alloc in
      match Ledger.violations ledger with
      | _ :: _ -> Error R_ledger
      | [] ->
        let n_servers = Servers.n_servers t.platform.Platform.servers in
        Ok
          {
            a_tenant = tenant;
            a_ops = n_operators;
            a_seed = app_seed;
            a_cost = o.Solve.cost;
            a_n_procs = o.Solve.n_procs;
            a_card_use = card_use_of ledger ~n_servers;
          }
    end

(* ------------------------------------------------------------------ *)
(* Re-optimization of survivors                                        *)

(* Worst per-server card utilization the scope would see if [extra]
   (an application's candidate placement) were added on top of the
   other live applications. *)
let max_utilization ?excluding t ~tenant ~extra =
  let res = residual_cards ?excluding t ~tenant in
  let worst = ref 0.0 in
  Array.iteri
    (fun l r ->
      let cap = scope_card t l in
      let extra_l =
        List.fold_left
          (fun acc (l', x) -> if l' = l then acc +. x else acc)
          0.0 extra
      in
      if cap > 0.0 then
        worst := Float.max !worst ((cap -. r +. extra_l) /. cap))
    res;
  !worst

(* After a departure, each surviving application of the affected tenant
   is re-solved against the residual platform without itself.  A
   strictly cheaper allocation is adopted as sell-old + buy-new; an
   equal-cost allocation that strictly lowers the scope's worst card
   utilization is adopted as a free rebalance (the tenant keeps
   equivalent hardware, downloads move to less-loaded servers, making
   room for future arrivals).  Scoped to one tenant per departure (also
   under Shared tenancy) to bound work. *)
let reoptimize_tenant t ~tenant =
  let members =
    List.filter (fun (_, a) -> a.a_tenant = tenant) (Imap.bindings t.live)
  in
  List.iter
    (fun (id, a) ->
      let inst = instance_for t ~n_operators:a.a_ops ~app_seed:a.a_seed in
      let app = inst.Instance.app in
      let platform = residual_platform ~excluding:id t ~tenant in
      match solve_quietly t app platform ~seed:a.a_seed with
      | Error _ -> ()
      | Ok o ->
        let cheaper = o.Solve.cost +. 1e-9 < a.a_cost in
        let same_cost = Float.abs (o.Solve.cost -. a.a_cost) <= 1e-9 in
        if
          (cheaper || same_cost)
          && o.Solve.n_procs <= residual_procs ~excluding:id t ~tenant
        then begin
          let ledger = Ledger.of_alloc app platform o.Solve.alloc in
          match Ledger.violations ledger with
          | _ :: _ -> ()
          | [] ->
            let n_servers = Servers.n_servers t.platform.Platform.servers in
            let card_use = card_use_of ledger ~n_servers in
            let adopt counter =
              t.live <-
                Imap.add id
                  {
                    a with
                    a_cost = o.Solve.cost;
                    a_n_procs = o.Solve.n_procs;
                    a_card_use = card_use;
                  }
                  t.live;
              Obs.incr counter
            in
            if cheaper then begin
              let acct = t.accounts.(tenant) in
              acct.purchased <- acct.purchased +. o.Solve.cost;
              acct.refunded <- acct.refunded +. (t.params.resale *. a.a_cost);
              adopt "serve.reopt.improved"
            end
            else
              let before =
                max_utilization ~excluding:id t ~tenant ~extra:a.a_card_use
              in
              let after =
                max_utilization ~excluding:id t ~tenant ~extra:card_use
              in
              if after +. 1e-6 < before then adopt "serve.reopt.rebalanced"
        end)
    members

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)

let handle t event =
  match event with
  | Stream.Arrival { app; tenant; n_operators; app_seed; t = tick } ->
    if tenant < 0 || tenant >= t.params.n_tenants then
      invalid_arg "Serve.handle: tenant outside the configured range";
    if Imap.mem app t.live then invalid_arg "Serve.handle: duplicate arrival";
    t.seen <- Iset.add app t.seen;
    Obs.incr "serve.arrival";
    if Obs.journaling () then
      Obs.event
        (Journal.Serve_arrival { app; tenant; ops = n_operators; t = tick });
    (match try_admit t ~tenant ~n_operators ~app_seed with
    | Ok adm ->
      t.live <- Imap.add app adm t.live;
      let acct = t.accounts.(tenant) in
      acct.admitted <- acct.admitted + 1;
      acct.purchased <- acct.purchased +. adm.a_cost;
      Obs.incr "serve.admit";
      if Obs.journaling () then
        Obs.event
          (Journal.Serve_admit
             { app; tenant; cost = adm.a_cost; n_procs = adm.a_n_procs })
    | Error reason ->
      let acct = t.accounts.(tenant) in
      acct.rejected <- acct.rejected + 1;
      Obs.incr "serve.reject";
      Obs.incr ("serve.reject." ^ reject_label reason);
      if Obs.journaling () then
        Obs.event
          (Journal.Serve_reject { app; tenant; reason = reject_label reason }))
  | Stream.Departure { app; t = tick } -> (
    match Imap.find_opt app t.live with
    | None ->
      (* A departure of a rejected or evicted application is a normal
         stream artefact; one for an id that never arrived is a
         malformed stream and must not be silently swallowed. *)
      if not (Iset.mem app t.seen) then begin
        Obs.incr "serve.depart.unknown";
        if Obs.journaling () then
          Obs.event (Journal.Serve_unknown_depart { app; t = tick });
        raise (Unknown_departure { app; t = tick })
      end
    | Some a ->
      t.live <- Imap.remove app t.live;
      let refund = t.params.resale *. a.a_cost in
      let acct = t.accounts.(a.a_tenant) in
      acct.departed <- acct.departed + 1;
      acct.refunded <- acct.refunded +. refund;
      Obs.incr "serve.depart";
      if Obs.journaling () then
        Obs.event (Journal.Serve_depart { app; tenant = a.a_tenant; refund });
      if t.params.reoptimize then reoptimize_tenant t ~tenant:a.a_tenant)

let run params events =
  let t = create params in
  List.iter (handle t) events;
  t

(* ------------------------------------------------------------------ *)
(* Crash: capacity loss, eviction, re-admission                        *)

type crash_outcome = { evicted : int list; readmitted : int list }

let newest_in_scope t ~tenant =
  (* Ascending fold: the last binding kept is the largest (newest) app
     id in the scope — LIFO eviction keeps the oldest tenants stable. *)
  Imap.fold
    (fun id a acc -> if in_scope t ~tenant a then Some (id, a) else acc)
    t.live None

let crash t ~procs_lost =
  if procs_lost < 0 then invalid_arg "Serve.crash: negative procs_lost";
  t.lost_procs <- t.lost_procs + procs_lost;
  Obs.incr "serve.crash";
  let scopes =
    match t.params.tenancy with
    | Shared -> [ 0 ]
    | Static_slicing -> List.init t.params.n_tenants Fun.id
  in
  let evicted = ref [] in
  List.iter
    (fun tenant ->
      let continue_ = ref true in
      while !continue_ && residual_procs t ~tenant < 0 do
        match newest_in_scope t ~tenant with
        | None -> continue_ := false  (* nothing left to evict *)
        | Some (id, a) ->
          t.live <- Imap.remove id t.live;
          let refund = t.params.resale *. a.a_cost in
          let acct = t.accounts.(a.a_tenant) in
          acct.departed <- acct.departed + 1;
          acct.refunded <- acct.refunded +. refund;
          Obs.incr "serve.evict";
          if Obs.journaling () then
            Obs.event
              (Journal.Serve_evict { app = id; tenant = a.a_tenant; refund });
          evicted := (id, a) :: !evicted
      done)
    scopes;
  (* Re-admission in ascending id order against the shrunken pool: an
     evicted application gets back exactly the solve its parameters
     deterministically produce on the new residual. *)
  let evicted = List.sort (fun (a, _) (b, _) -> compare a b) !evicted in
  let readmitted =
    List.filter_map
      (fun (id, a) ->
        match
          try_admit t ~tenant:a.a_tenant ~n_operators:a.a_ops
            ~app_seed:a.a_seed
        with
        | Ok adm ->
          t.live <- Imap.add id adm t.live;
          let acct = t.accounts.(a.a_tenant) in
          acct.admitted <- acct.admitted + 1;
          acct.purchased <- acct.purchased +. adm.a_cost;
          Obs.incr "serve.readmit";
          if Obs.journaling () then
            Obs.event
              (Journal.Serve_admit
                 {
                   app = id;
                   tenant = a.a_tenant;
                   cost = adm.a_cost;
                   n_procs = adm.a_n_procs;
                 });
          Some id
        | Error reason ->
          let acct = t.accounts.(a.a_tenant) in
          acct.rejected <- acct.rejected + 1;
          Obs.incr "serve.reject";
          Obs.incr ("serve.reject." ^ reject_label reason);
          if Obs.journaling () then
            Obs.event
              (Journal.Serve_reject
                 {
                   app = id;
                   tenant = a.a_tenant;
                   reason = reject_label reason;
                 });
          None)
      evicted
  in
  { evicted = List.map fst evicted; readmitted }

(* ------------------------------------------------------------------ *)
(* Summaries and canonical dumps                                       *)

type tenant_summary = {
  tenant : int;  (** -1 in {!totals} *)
  purchased : float;
  refunded : float;
  net_cost : float;
  admitted : int;
  rejected : int;
  departed : int;
  live : int;
}

let summary_of (t : t) tenant (acct : account) =
  let live =
    Imap.fold
      (fun _ a acc -> if a.a_tenant = tenant then acc + 1 else acc)
      t.live 0
  in
  {
    tenant;
    purchased = acct.purchased;
    refunded = acct.refunded;
    net_cost = acct.purchased -. acct.refunded;
    admitted = acct.admitted;
    rejected = acct.rejected;
    departed = acct.departed;
    live;
  }

let summary t =
  List.init (Array.length t.accounts) (fun tenant ->
      summary_of t tenant t.accounts.(tenant))

let totals t =
  List.fold_left
    (fun acc s ->
      {
        tenant = -1;
        purchased = acc.purchased +. s.purchased;
        refunded = acc.refunded +. s.refunded;
        net_cost = acc.net_cost +. s.net_cost;
        admitted = acc.admitted + s.admitted;
        rejected = acc.rejected + s.rejected;
        departed = acc.departed + s.departed;
        live = acc.live + s.live;
      })
    {
      tenant = -1;
      purchased = 0.0;
      refunded = 0.0;
      net_cost = 0.0;
      admitted = 0;
      rejected = 0;
      departed = 0;
      live = 0;
    }
    (summary t)

let rejection_rate s =
  let total = s.admitted + s.rejected in
  if total = 0 then 0.0 else float_of_int s.rejected /. float_of_int total

(* Canonical renderings: Map iteration order and Jsonc float form make
   both dumps pure functions of the state — the byte-identity anchor of
   `insp_cli serve --verify` and the restore property test. *)

let render_cards cards =
  String.concat ";"
    (List.map (fun (l, x) -> Printf.sprintf "%d:%s" l (Jsonc.float x)) cards)

let dump_resources (t : t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "tenancy %s tenants %d proc_budget %d live %d\n"
       (tenancy_label t.params.tenancy)
       t.params.n_tenants t.params.proc_budget (n_live t));
  Imap.iter
    (fun id a ->
      Buffer.add_string buf
        (Printf.sprintf "app %d tenant %d ops %d seed %d procs %d cost %s cards [%s]\n"
           id a.a_tenant a.a_ops a.a_seed a.a_n_procs (Jsonc.float a.a_cost)
           (render_cards a.a_card_use)))
    t.live;
  let scopes =
    match t.params.tenancy with
    | Shared -> [ 0 ]
    | Static_slicing -> List.init t.params.n_tenants Fun.id
  in
  List.iter
    (fun tenant ->
      let cards =
        Array.to_list (residual_cards t ~tenant)
        |> List.mapi (fun l c -> (l, c))
      in
      Buffer.add_string buf
        (Printf.sprintf "residual scope %d procs %d cards [%s]\n" tenant
           (residual_procs t ~tenant)
           (render_cards cards)))
    scopes;
  Buffer.contents buf

let dump_state t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (dump_resources t);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "account tenant %d purchased %s refunded %s net %s admitted %d \
            rejected %d departed %d live %d\n"
           s.tenant (Jsonc.float s.purchased) (Jsonc.float s.refunded)
           (Jsonc.float s.net_cost) s.admitted s.rejected s.departed s.live))
    (summary t);
  Buffer.contents buf

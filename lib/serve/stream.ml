module Prng = Insp_util.Prng

type spec = {
  seed : int;
  n_apps : int;
  n_tenants : int;
  min_operators : int;
  max_operators : int;
  mean_gap : int;
  mean_lifetime : int;
  mean_burst : int;
}

let default =
  {
    seed = 1;
    n_apps = 1000;
    n_tenants = 4;
    min_operators = 6;
    max_operators = 24;
    mean_gap = 2;
    mean_lifetime = 90;
    mean_burst = 1;
  }

let make ?(n_apps = default.n_apps) ?(n_tenants = default.n_tenants)
    ?(min_operators = default.min_operators)
    ?(max_operators = default.max_operators) ?(mean_gap = default.mean_gap)
    ?(mean_lifetime = default.mean_lifetime)
    ?(mean_burst = default.mean_burst) ~seed () =
  if n_apps < 0 then invalid_arg "Stream.make: n_apps < 0";
  if n_tenants < 1 then invalid_arg "Stream.make: n_tenants < 1";
  if min_operators < 1 || max_operators < min_operators then
    invalid_arg "Stream.make: bad operator range";
  if mean_gap < 0 || mean_lifetime < 1 then
    invalid_arg "Stream.make: bad timing parameters";
  if mean_burst < 1 then invalid_arg "Stream.make: mean_burst < 1";
  { seed; n_apps; n_tenants; min_operators; max_operators; mean_gap;
    mean_lifetime; mean_burst }

(* Correlated-burst size: uniform over [1, 2*mean - 1], so the mean is
   [mean] and a mean of 1 degenerates to the constant 1.  Shared with
   the fault-timeline generator (crash bursts). *)
let burst_size rng ~mean =
  if mean < 1 then invalid_arg "Stream.burst_size: mean < 1";
  if mean = 1 then 1 else 1 + Prng.int rng ((2 * mean) - 1)

type event =
  | Arrival of {
      app : int;
      tenant : int;
      n_operators : int;
      app_seed : int;
      t : int;
    }
  | Departure of { app : int; t : int }

let time = function Arrival { t; _ } -> t | Departure { t; _ } -> t

(* Sort key: time, then departures before arrivals (capacity freed at
   tick T is available to an application arriving at the same tick),
   then app id.  Every component is deterministic, so the order is. *)
let event_key = function
  | Departure { t; app } -> (t, 0, app)
  | Arrival { t; app; _ } -> (t, 1, app)

let events spec =
  let rng = Prng.create spec.seed in
  let now = ref 0 in
  let acc = ref [] in
  (* Applications still to arrive in the current burst (beyond the one
     being drawn).  With [mean_burst = 1] no burst draw ever happens and
     the stream is byte-identical to the pre-burst generator. *)
  let in_burst = ref 0 in
  for app = 0 to spec.n_apps - 1 do
    (* One fixed draw order per application keeps the stream stable:
       inserting an application shifts later ones wholesale instead of
       scrambling their parameters. *)
    let gap =
      if !in_burst > 0 then begin
        decr in_burst;
        0
      end
      else begin
        if spec.mean_burst > 1 then
          in_burst := burst_size rng ~mean:spec.mean_burst - 1;
        if spec.mean_gap = 0 then 0 else Prng.int rng (2 * spec.mean_gap)
      end
    in
    let tenant = Prng.int rng spec.n_tenants in
    let n_operators =
      Prng.int_range rng spec.min_operators spec.max_operators
    in
    let lifetime = 1 + Prng.int rng (2 * spec.mean_lifetime) in
    let app_seed = Prng.int rng 1_000_000 in
    now := !now + gap;
    acc :=
      Departure { app; t = !now + lifetime }
      :: Arrival { app; tenant; n_operators; app_seed; t = !now }
      :: !acc
  done;
  List.sort (fun a b -> compare (event_key a) (event_key b)) !acc

let pp_event ppf = function
  | Arrival { app; tenant; n_operators; app_seed; t } ->
    Format.fprintf ppf "t=%d arrive app=%d tenant=%d ops=%d seed=%d" t app
      tenant n_operators app_seed
  | Departure { app; t } -> Format.fprintf ppf "t=%d depart app=%d" t app

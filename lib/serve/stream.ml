module Prng = Insp_util.Prng

type spec = {
  seed : int;
  n_apps : int;
  n_tenants : int;
  min_operators : int;
  max_operators : int;
  mean_gap : int;
  mean_lifetime : int;
}

let default =
  {
    seed = 1;
    n_apps = 1000;
    n_tenants = 4;
    min_operators = 6;
    max_operators = 24;
    mean_gap = 2;
    mean_lifetime = 90;
  }

let make ?(n_apps = default.n_apps) ?(n_tenants = default.n_tenants)
    ?(min_operators = default.min_operators)
    ?(max_operators = default.max_operators) ?(mean_gap = default.mean_gap)
    ?(mean_lifetime = default.mean_lifetime) ~seed () =
  if n_apps < 0 then invalid_arg "Stream.make: n_apps < 0";
  if n_tenants < 1 then invalid_arg "Stream.make: n_tenants < 1";
  if min_operators < 1 || max_operators < min_operators then
    invalid_arg "Stream.make: bad operator range";
  if mean_gap < 0 || mean_lifetime < 1 then
    invalid_arg "Stream.make: bad timing parameters";
  { seed; n_apps; n_tenants; min_operators; max_operators; mean_gap;
    mean_lifetime }

type event =
  | Arrival of {
      app : int;
      tenant : int;
      n_operators : int;
      app_seed : int;
      t : int;
    }
  | Departure of { app : int; t : int }

let time = function Arrival { t; _ } -> t | Departure { t; _ } -> t

(* Sort key: time, then departures before arrivals (capacity freed at
   tick T is available to an application arriving at the same tick),
   then app id.  Every component is deterministic, so the order is. *)
let event_key = function
  | Departure { t; app } -> (t, 0, app)
  | Arrival { t; app; _ } -> (t, 1, app)

let events spec =
  let rng = Prng.create spec.seed in
  let now = ref 0 in
  let acc = ref [] in
  for app = 0 to spec.n_apps - 1 do
    (* One fixed draw order per application keeps the stream stable:
       inserting an application shifts later ones wholesale instead of
       scrambling their parameters. *)
    let gap = if spec.mean_gap = 0 then 0 else Prng.int rng (2 * spec.mean_gap) in
    let tenant = Prng.int rng spec.n_tenants in
    let n_operators =
      Prng.int_range rng spec.min_operators spec.max_operators
    in
    let lifetime = 1 + Prng.int rng (2 * spec.mean_lifetime) in
    let app_seed = Prng.int rng 1_000_000 in
    now := !now + gap;
    acc :=
      Departure { app; t = !now + lifetime }
      :: Arrival { app; tenant; n_operators; app_seed; t = !now }
      :: !acc
  done;
  List.sort (fun a b -> compare (event_key a) (event_key b)) !acc

let pp_event ppf = function
  | Arrival { app; tenant; n_operators; app_seed; t } ->
    Format.fprintf ppf "t=%d arrive app=%d tenant=%d ops=%d seed=%d" t app
      tenant n_operators app_seed
  | Departure { app; t } -> Format.fprintf ppf "t=%d depart app=%d" t app

(* Tests for the insp_obs observability layer: registry determinism
   under interleaved spans, histogram bucket edges, exporter
   well-formedness (Chrome trace JSON, metrics CSV), and a counter
   regression pinning the solver's feasibility-probe count. *)

module Obs = Insp.Obs
module Metrics = Insp.Obs_metrics
module Span = Insp.Obs_span
module Export = Insp.Obs_export

(* A deterministic instrumented workload mixing nested spans, marks,
   counters, gauges and histograms. *)
let workload () =
  Obs.span "outer" (fun () ->
      for i = 1 to 5 do
        Obs.incr "n";
        Obs.span "inner" (fun () ->
            Obs.observe "h" (float_of_int (3 * i));
            Obs.mark "tick")
      done;
      Obs.span "tail" (fun () -> Obs.incr ~by:4 "n"));
  Obs.gauge "g" 2.5

(* ------------------------------------------------------------------ *)
(* Facade guarding                                                     *)

let test_disabled_noop () =
  Alcotest.(check bool) "no sink" false (Obs.enabled ());
  (* With no sink installed the guarded calls must be inert no-ops. *)
  Obs.incr "x";
  Obs.gauge "y" 1.0;
  Obs.observe "z" 2.0;
  Obs.mark "m";
  Alcotest.(check int) "span passes through" 7 (Obs.span "s" (fun () -> 7));
  Alcotest.(check bool) "still no sink" false (Obs.enabled ())

let test_with_sink_restores () =
  let value, r = Obs.with_sink (fun () -> Obs.incr "c"; 11) in
  Alcotest.(check int) "result" 11 value;
  Alcotest.(check (option int)) "recorded" (Some 1)
    (Metrics.counter r.Obs.metrics "c");
  Alcotest.(check bool) "uninstalled after" false (Obs.enabled ())

let test_span_exception_safe () =
  let value, r =
    Obs.with_sink (fun () ->
        try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> 42)
  in
  Alcotest.(check int) "exception propagated" 42 value;
  Alcotest.(check int) "span closed" 0 (Span.open_depth r.Obs.spans);
  Alcotest.(check (list (pair string int)))
    "span recorded" [ ("boom", 1) ] (Span.paths r.Obs.spans)

(* ------------------------------------------------------------------ *)
(* Registry determinism                                                *)

let test_registry_deterministic () =
  let (), a = Obs.with_sink workload in
  let (), b = Obs.with_sink workload in
  (* Recorded values and structure are byte-identical across runs; only
     timestamps (not exported by metrics_csv/paths) may differ. *)
  Alcotest.(check string) "identical CSV" (Export.metrics_csv a)
    (Export.metrics_csv b);
  Alcotest.(check (list (pair string int)))
    "identical span paths" (Span.paths a.Obs.spans) (Span.paths b.Obs.spans);
  (* Events appear in completion order: a mark records immediately, so
     it precedes its enclosing span; children precede parents. *)
  Alcotest.(check (list (pair string int)))
    "span structure"
    (List.concat
       (List.init 5 (fun _ ->
            [ ("outer/inner/tick", 3); ("outer/inner", 2) ]))
    @ [ ("outer/tail", 2); ("outer", 1) ])
    (Span.paths a.Obs.spans)

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

let test_histogram_bucket_edges () =
  let (), r =
    Obs.with_sink (fun () ->
        List.iter
          (Obs.observe ~edges:[| 1.0; 2.0; 5.0 |] "h")
          [ 0.5; 1.0; 1.5; 2.0; 5.0; 7.0 ])
  in
  match Metrics.snapshot r.Obs.metrics with
  | [ ("h", Metrics.Histogram_v h) ] ->
    (* Bucket rule is [v <= edge], first match: edge-exact observations
       land in their own bucket, strictly-greater ones spill over. *)
    Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 1 |]
      h.Metrics.counts;
    Alcotest.(check int) "observations" 6 h.Metrics.observations;
    Helpers.alco_float "sum" 17.0 h.Metrics.sum
  | _ -> Alcotest.fail "expected exactly one histogram"

(* Direct check of the linear-interpolation rule behind the
   p50/p90/p99 exporter rows: ranks inside a bucket interpolate between
   its edges (lower edge of bucket 0 is 0), ranks in the overflow
   bucket pin to the last finite edge. *)
let test_percentile_interpolation () =
  let (), r =
    Obs.with_sink (fun () ->
        List.iter
          (Obs.observe ~edges:[| 1.0; 2.0; 5.0 |] "h")
          [ 0.5; 1.0; 1.5; 2.0; 5.0; 7.0 ])
  in
  match Metrics.snapshot r.Obs.metrics with
  | [ ("h", Metrics.Histogram_v h) ] ->
    Helpers.alco_float "p0 at lower edge" 0.0 (Export.percentile h 0.0);
    Helpers.alco_float "p50 interpolates" 1.5 (Export.percentile h 50.0);
    Helpers.alco_float "p90 pins to last edge" 5.0 (Export.percentile h 90.0);
    Helpers.alco_float "p100 pins to last edge" 5.0
      (Export.percentile h 100.0)
  | _ -> Alcotest.fail "expected exactly one histogram"

let test_histogram_rejects_bad_edges () =
  let raises f =
    match Obs.with_sink f with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "descending edges rejected" true
    (raises (fun () -> Obs.observe ~edges:[| 2.0; 1.0 |] "h" 0.5));
  Alcotest.(check bool) "kind mismatch rejected" true
    (raises (fun () ->
         Obs.incr "mixed";
         Obs.observe "mixed" 1.0))

(* ------------------------------------------------------------------ *)
(* Metrics.merge conflict detection                                    *)

(* The happy path (worker registries folded into the caller's sink) is
   covered by the Par_sweep suites; these pin the failure modes, which
   must raise rather than silently corrupt a merged registry. *)
let test_merge_conflicts_rejected () =
  let filled f =
    let (), r = Obs.with_sink f in
    r
  in
  let merge_raises into src =
    match Metrics.merge ~into:into.Obs.metrics src.Obs.metrics with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  let h_coarse = filled (fun () -> Obs.observe ~edges:[| 1.0; 2.0 |] "h" 0.5) in
  let h_fine =
    filled (fun () -> Obs.observe ~edges:[| 1.0; 2.0; 5.0 |] "h" 0.5)
  in
  Alcotest.(check bool) "histogram edge mismatch rejected" true
    (merge_raises h_coarse h_fine);
  let counter = filled (fun () -> Obs.incr "m") in
  let gauge = filled (fun () -> Obs.gauge "m" 1.0) in
  Alcotest.(check bool) "counter/gauge kind mismatch rejected" true
    (merge_raises counter gauge);
  Alcotest.(check bool) "gauge/counter kind mismatch rejected" true
    (merge_raises gauge counter);
  (* Same name, same shape merges fine — the conflicts above are about
     incompatible registrations, not name reuse. *)
  let c2 = filled (fun () -> Obs.incr ~by:2 "m") in
  Metrics.merge ~into:counter.Obs.metrics c2.Obs.metrics;
  Alcotest.(check (option int)) "compatible merge sums" (Some 3)
    (Metrics.counter counter.Obs.metrics "m")

(* ------------------------------------------------------------------ *)
(* CSV export golden                                                   *)

let test_metrics_csv_golden () =
  let (), r =
    Obs.with_sink (fun () ->
        Obs.incr "alpha";
        Obs.incr ~by:2 "alpha";
        Obs.gauge "g" 1.5;
        Obs.observe ~edges:[| 1.0; 2.0 |] "h" 0.5;
        Obs.observe "h" 2.0;
        Obs.observe "h" 9.0)
  in
  Alcotest.(check string) "golden CSV"
    "kind,name,value\n\
     counter,alpha,3\n\
     gauge,g,1.5\n\
     histogram,h.le.1,1\n\
     histogram,h.le.2,1\n\
     histogram,h.overflow,1\n\
     histogram,h.count,3\n\
     histogram,h.sum,11.5\n\
     histogram,h.p50,1.5\n\
     histogram,h.p90,2\n\
     histogram,h.p99,2\n"
    (Export.metrics_csv r)

(* ------------------------------------------------------------------ *)
(* Chrome trace JSON well-formedness                                   *)

(* Minimal recursive-descent JSON parser — enough to validate exporter
   output without a JSON dependency (the repo deliberately has none). *)
type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let rec skip_ws () =
    if
      !pos < n
      && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false)
    then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents buf
      | '\\' ->
        advance ();
        let c = peek () in
        advance ();
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          pos := !pos + 4;
          Buffer.add_char buf '?'
        | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numeric c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && numeric s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> J_num f
    | None -> fail "bad number"
  in
  let literal text v =
    let l = String.length text in
    if !pos + l <= n && String.sub s !pos l = text then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (advance (); J_obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((key, v) :: acc)
          | '}' -> advance (); List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        J_obj (members [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (advance (); J_arr [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements (v :: acc)
          | ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        J_arr (elements [])
      end
    | '"' -> J_str (parse_string ())
    | 't' -> literal "true" (J_bool true)
    | 'f' -> literal "false" (J_bool false)
    | 'n' -> literal "null" J_null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj key =
  match obj with J_obj kvs -> List.assoc_opt key kvs | _ -> None

let str_field obj key =
  match field obj key with Some (J_str s) -> Some s | _ -> None

let test_chrome_trace_wellformed () =
  let (), r = Obs.with_sink workload in
  let trace = Export.chrome_trace r in
  match parse_json trace with
  | exception Bad_json msg -> Alcotest.fail ("trace is not valid JSON: " ^ msg)
  | J_arr (meta :: events) ->
    Alcotest.(check (option string))
      "leads with process metadata" (Some "M") (str_field meta "ph");
    Alcotest.(check bool) "has events" true (events <> []);
    let seen = Hashtbl.create 4 in
    List.iter
      (fun ev ->
        (match str_field ev "name" with
        | Some _ -> ()
        | None -> Alcotest.fail "event without a name");
        let numeric key =
          match field ev key with
          | Some (J_num _) -> ()
          | _ -> Alcotest.fail (Printf.sprintf "missing numeric %S" key)
        in
        match str_field ev "ph" with
        | Some "X" ->
          Hashtbl.replace seen "X" ();
          numeric "ts";
          numeric "dur";
          (match field ev "args" with
          | Some args when str_field args "path" <> None -> ()
          | _ -> Alcotest.fail "span without args.path")
        | Some "i" ->
          Hashtbl.replace seen "i" ();
          numeric "ts";
          Alcotest.(check (option string)) "instant scope" (Some "t")
            (str_field ev "s")
        | Some "C" ->
          Hashtbl.replace seen "C" ();
          numeric "ts";
          (match field ev "args" with
          | Some args when field args "value" <> None -> ()
          | _ -> Alcotest.fail "counter without args.value")
        | other ->
          Alcotest.fail
            (Printf.sprintf "unexpected phase %S"
               (Option.value ~default:"<none>" other)))
      events;
    List.iter
      (fun ph ->
        Alcotest.(check bool)
          (Printf.sprintf "emits %S events" ph)
          true (Hashtbl.mem seen ph))
      [ "X"; "i"; "C" ]
  | _ -> Alcotest.fail "trace is not a JSON array"

(* ------------------------------------------------------------------ *)
(* Chrome trace escaping                                                *)

(* Span and mark names flow into JSON string positions; a quote or
   backslash in a name must survive the round trip (shared Jsonc
   escaping, DESIGN.md §12). *)
let test_chrome_trace_escaping () =
  let hostile = {|a "quoted\name|} ^ "\twith\ncontrols" in
  let (), r =
    Obs.with_sink (fun () ->
        Obs.span hostile (fun () -> Obs.mark hostile);
        Obs.incr hostile)
  in
  let trace = Export.chrome_trace r in
  match parse_json trace with
  | exception Bad_json msg -> Alcotest.fail ("trace is not valid JSON: " ^ msg)
  | J_arr events ->
    let names =
      List.filter_map (fun ev -> str_field ev "name") events
    in
    Alcotest.(check bool) "hostile name survives the round trip" true
      (List.mem hostile names)
  | _ -> Alcotest.fail "trace is not a JSON array"

(* ------------------------------------------------------------------ *)
(* Solver probe-count regression                                       *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Snapshots the solver's probe/outcome counters on a fixed 20-operator
   instance against a golden file.  A change in the probing strategy (or
   the ledger's hit/miss behaviour) shows up as a reviewable diff of
   test/probe_counts.golden instead of a magic-number edit: regenerate
   by pasting the "actual" rendering the failure prints. *)
let test_probe_count_regression () =
  let inst =
    Insp.Instance.generate
      (Insp.Config.make ~n_operators:20 ~alpha:0.9 ~seed:1 ())
  in
  let _, r =
    Obs.with_sink (fun () ->
        Insp.Solve.run_all ~seed:1 inst.Insp.Instance.app
          inst.Insp.Instance.platform)
  in
  let counter name = Metrics.counter r.Obs.metrics name in
  let snapshot =
    String.concat ""
      (List.map
         (fun name ->
           Printf.sprintf "%s %d\n" name
             (Option.value ~default:0 (counter name)))
         [
           "heur.probe"; "heur.probe.hit"; "heur.probe.miss"; "heur.acquire";
           "heur.solve.ok";
         ])
  in
  Alcotest.(check string)
    "probe counter snapshot matches test/probe_counts.golden"
    (read_file "probe_counts.golden") snapshot;
  let hits = Option.value ~default:0 (counter "heur.probe.hit") in
  let misses = Option.value ~default:0 (counter "heur.probe.miss") in
  Alcotest.(check (option int)) "hits + misses = probes" (Some (hits + misses))
    (counter "heur.probe")

(* ------------------------------------------------------------------ *)
(* Allocation profiler (Obs.Prof)                                      *)

module Prof = Insp.Obs_prof

(* One profiled comp-greedy solve of the scale preset (small N keeps the
   test quick; the bench alloc.100k row covers the full size). *)
let profiled_scale_solve () =
  let inst =
    match
      Insp.Instance.generate_checked (Insp.Config.scale ~n_operators:2000 ())
    with
    | Ok t -> t
    | Error e -> failwith (Insp.Instance.gen_error_message e)
  in
  let outcome, r =
    Obs.with_sink ~profile:true (fun () ->
        Insp.Solve.run ~seed:1
          (Option.get (Insp.Solve.find "comp"))
          inst.Insp.Instance.app inst.Insp.Instance.platform)
  in
  (match outcome with
  | Ok _ -> ()
  | Error f -> failwith (Insp.Solve.failure_message f));
  r

(* Minor-word deltas are a deterministic function of a deterministic
   execution (DESIGN.md §17): the minor-words-keyed exports must be
   byte-identical across two same-seed runs.  (prof_csv additionally
   carries promoted/major columns, which depend on minor-heap phase at
   run start and make no such promise.) *)
let test_prof_deterministic () =
  let a = profiled_scale_solve () in
  let b = profiled_scale_solve () in
  Alcotest.(check string) "identical prof_report" (Export.prof_report a)
    (Export.prof_report b);
  Alcotest.(check string) "identical folded alloc stacks"
    (Export.prof_folded_alloc a)
    (Export.prof_folded_alloc b)

(* Attribution granularity: within the commit path (the placement phase
   subtree) the ledger.* spans must carry at least 80% of the self minor
   words — anonymous phase self cannot direct flattening work. *)
let test_prof_commit_path_attribution () =
  let r = profiled_scale_solve () in
  let p = Option.get r.Obs.prof in
  let segs (row : Prof.row) = String.split_on_char '/' row.Prof.path in
  let is_ledger row =
    List.exists
      (fun seg -> String.length seg >= 7 && String.sub seg 0 7 = "ledger.")
      (segs row)
  in
  let total, ledger =
    List.fold_left
      (fun (t, l) row ->
        if List.mem "placement" (segs row) then
          ( t +. row.Prof.self_minor,
            if is_ledger row then l +. row.Prof.self_minor else l )
        else (t, l))
      (0.0, 0.0) (Prof.rows p)
  in
  Alcotest.(check bool) "commit path has ledger rows" true
    (Float.compare ledger 0.0 > 0);
  let share = ledger /. total in
  if Float.compare share 0.8 < 0 then
    Alcotest.failf "ledger self share of the commit path is %.1f%% (< 80%%)"
      (100.0 *. share)

(* With no sink installed the profiling entry points must not allocate:
   both loops below pay the identical constant cost of the bracketing
   [Gc.minor_words] reads inside [allocated_minor_words], so the two
   measurements are equal exactly when the 10k guarded calls allocate
   nothing.  Audited with Prof's own primitive. *)
let test_prof_disabled_zero_alloc () =
  Alcotest.(check bool) "no sink" false (Obs.enabled ());
  let body () =
    for _ = 1 to 10_000 do
      Obs.prof_enter "audit";
      Obs.prof_exit ();
      ignore (Obs.span "audit" (fun () -> 0))
    done
  in
  (* Warm-up: first calls may fault in DLS state. *)
  body ();
  let empty = Prof.allocated_minor_words (fun () -> ()) in
  let guarded = Prof.allocated_minor_words body in
  if Float.compare guarded empty <> 0 then
    Alcotest.failf
      "disabled profiling calls allocated %.0f words over 10k iterations"
      (guarded -. empty)

(* Folded-stack regression for the 20-operator reference instance, the
   alloc analogue of probe_counts.golden: a change in commit-path
   allocation shows up as a reviewable diff of test/alloc_counts.golden.
   Regenerate by pasting the "actual" rendering the failure prints. *)
let test_alloc_count_regression () =
  let inst =
    Insp.Instance.generate
      (Insp.Config.make ~n_operators:20 ~alpha:0.9 ~seed:1 ())
  in
  let solve () =
    Obs.with_sink ~profile:true (fun () ->
        Insp.Solve.run_all ~seed:1 inst.Insp.Instance.app
          inst.Insp.Instance.platform)
  in
  (* One discarded warm-up run so one-time initialisation (the clock's
     domain-local clamp cell, lazy toplevel values) is not attributed to
     the measured run — the golden records steady-state counts. *)
  ignore (solve ());
  let _, r = solve () in
  Alcotest.(check string)
    "folded alloc stacks match test/alloc_counts.golden"
    (read_file "alloc_counts.golden")
    (Export.prof_folded_alloc r)

let () =
  Alcotest.run "obs"
    [
      ( "facade",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "with_sink restores" `Quick
            test_with_sink_restores;
          Alcotest.test_case "span exception-safe" `Quick
            test_span_exception_safe;
        ] );
      ( "registry",
        [
          Alcotest.test_case "deterministic across runs" `Quick
            test_registry_deterministic;
          Alcotest.test_case "histogram bucket edges" `Quick
            test_histogram_bucket_edges;
          Alcotest.test_case "percentile interpolation" `Quick
            test_percentile_interpolation;
          Alcotest.test_case "rejects bad edges and kind mixes" `Quick
            test_histogram_rejects_bad_edges;
          Alcotest.test_case "merge rejects conflicting registries" `Quick
            test_merge_conflicts_rejected;
        ] );
      ( "export",
        [
          Alcotest.test_case "metrics CSV golden" `Quick
            test_metrics_csv_golden;
          Alcotest.test_case "Chrome trace well-formed" `Quick
            test_chrome_trace_wellformed;
          Alcotest.test_case "Chrome trace escaping round-trip" `Quick
            test_chrome_trace_escaping;
        ] );
      ( "prof",
        [
          Alcotest.test_case "deterministic exports across runs" `Quick
            test_prof_deterministic;
          Alcotest.test_case "commit-path ledger attribution" `Quick
            test_prof_commit_path_attribution;
          Alcotest.test_case "disabled entry points allocate nothing" `Quick
            test_prof_disabled_zero_alloc;
        ] );
      ( "regression",
        [
          Alcotest.test_case "ledger probe count" `Quick
            test_probe_count_regression;
          Alcotest.test_case "ledger alloc counts" `Quick
            test_alloc_count_regression;
        ] );
    ]

(* Tests for the simulation substrate: max-min fair sharing and the
   discrete-event runtime, including cross-validation against the
   analytic constraint checker. *)

module Fair_share = Insp.Fair_share
module Runtime = Insp.Runtime
module Solve = Insp.Solve
module Alloc = Insp.Alloc
module Check = Insp.Check
module Catalog = Insp.Catalog

let qtest = Helpers.qtest

(* ------------------------------------------------------------------ *)
(* Fair share                                                          *)

let test_single_flow_min_cap () =
  let rates =
    Fair_share.compute ~caps:[| 10.0; 4.0; 7.0 |]
      ~membership:[| [ 0; 1; 2 ] |]
  in
  Helpers.alco_float "min of caps" 4.0 rates.(0)

let test_equal_split () =
  let rates =
    Fair_share.compute ~caps:[| 9.0 |] ~membership:[| [ 0 ]; [ 0 ]; [ 0 ] |]
  in
  Array.iter (fun r -> Helpers.alco_float "third" 3.0 r) rates

let test_progressive_filling () =
  (* Two flows share link 0 (cap 10); flow 1 also crosses link 1 (cap
     3).  Max-min: flow1 = 3, flow0 = 7. *)
  let rates =
    Fair_share.compute ~caps:[| 10.0; 3.0 |]
      ~membership:[| [ 0 ]; [ 0; 1 ] |]
  in
  Helpers.alco_float "constrained flow" 3.0 rates.(1);
  Helpers.alco_float "unconstrained takes rest" 7.0 rates.(0)

let test_fair_share_zero_cap () =
  let rates =
    Fair_share.compute ~caps:[| 0.0 |] ~membership:[| [ 0 ]; [ 0 ] |]
  in
  Array.iter (fun r -> Helpers.alco_float "starved" 0.0 r) rates

(* Hand-computed golden topologies: the water-filling worked out on
   paper, then pinned exactly. *)

let test_golden_shared_nic () =
  (* Three flows leave one shared NIC (cap 30 MB/s); each also crosses
     its own ample link (cap 100).  The NIC is the only bottleneck:
     30 / 3 = 10 each. *)
  let caps = [| 30.0; 100.0; 100.0; 100.0 |] in
  let membership = [| [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ] |] in
  let rates = Fair_share.compute ~caps ~membership in
  Array.iter (fun r -> Helpers.alco_float "equal thirds" 10.0 r) rates;
  Alcotest.(check bool) "max-min" true
    (Fair_share.is_max_min ~caps ~membership ~rates)

let test_golden_asymmetric_links () =
  (* Same shared NIC (cap 30), but flow 0 also crosses a 5 MB/s link.
     First fill freezes flow 0 at 5; the NIC's remaining 25 splits
     between flows 1 and 2: 12.5 each. *)
  let caps = [| 30.0; 5.0 |] in
  let membership = [| [ 0; 1 ]; [ 0 ]; [ 0 ] |] in
  let rates = Fair_share.compute ~caps ~membership in
  Helpers.alco_float "capped by own link" 5.0 rates.(0);
  Helpers.alco_float "splits the rest (flow 1)" 12.5 rates.(1);
  Helpers.alco_float "splits the rest (flow 2)" 12.5 rates.(2);
  Alcotest.(check bool) "max-min" true
    (Fair_share.is_max_min ~caps ~membership ~rates)

let fair_share_gen =
  QCheck.make
    ~print:(fun (seed, nf, nc) -> Printf.sprintf "seed=%d f=%d c=%d" seed nf nc)
    QCheck.Gen.(triple (0 -- 5000) (1 -- 12) (1 -- 6))

let fair_share_is_max_min =
  qtest ~count:300 "progressive filling yields max-min fairness"
    fair_share_gen (fun (seed, n_flows, n_caps) ->
      let rng = Insp.Prng.create seed in
      let caps =
        Array.init n_caps (fun _ -> Insp.Prng.float_range rng 1.0 20.0)
      in
      let membership =
        Array.init n_flows (fun _ ->
            let k = Insp.Prng.int_range rng 1 n_caps in
            Insp.Prng.sample_without_replacement rng k n_caps)
      in
      let rates = Fair_share.compute ~caps ~membership in
      Fair_share.is_max_min ~caps ~membership ~rates)

(* Regression coverage for the clamp in [Fair_share.compute]: when a
   frozen flow spans several constraints that saturate at (almost) the
   same share, float rounding used to drive [remaining] slightly
   negative, which later surfaced as a negative rate for an unrelated
   flow.  Caps are engineered so every constraint saturates at the same
   per-flow share, perturbed in the last few bits. *)
let fair_share_clamp_near_saturated =
  qtest ~count:200 "max-min holds on near-saturated overlapping constraints"
    fair_share_gen (fun (seed, n_flows, n_caps) ->
      let rng = Insp.Prng.create seed in
      let membership =
        Array.init n_flows (fun _ ->
            let k = Insp.Prng.int_range rng 1 n_caps in
            Insp.Prng.sample_without_replacement rng k n_caps)
      in
      let crossing = Array.make n_caps 0 in
      Array.iter
        (List.iter (fun c -> crossing.(c) <- crossing.(c) + 1))
        membership;
      let share = Insp.Prng.float_range rng 0.1 10.0 in
      let caps =
        Array.init n_caps (fun c ->
            let jitter =
              1.0 +. (1e-15 *. float_of_int (Insp.Prng.int_range rng (-4) 4))
            in
            share *. float_of_int (max 1 crossing.(c)) *. jitter)
      in
      let rates = Fair_share.compute ~caps ~membership in
      Array.for_all (fun r -> r >= 0.0) rates
      && Fair_share.is_max_min ~caps ~membership ~rates)

let fair_share_conserves =
  qtest ~count:300 "no constraint oversubscribed" fair_share_gen
    (fun (seed, n_flows, n_caps) ->
      let rng = Insp.Prng.create seed in
      let caps =
        Array.init n_caps (fun _ -> Insp.Prng.float_range rng 1.0 20.0)
      in
      let membership =
        Array.init n_flows (fun _ ->
            let k = Insp.Prng.int_range rng 1 n_caps in
            Insp.Prng.sample_without_replacement rng k n_caps)
      in
      let rates = Fair_share.compute ~caps ~membership in
      let load = Array.make n_caps 0.0 in
      Array.iteri
        (fun f ms -> List.iter (fun c -> load.(c) <- load.(c) +. rates.(f)) ms)
        membership;
      Array.for_all2 (fun l c -> l <= c +. 1e-6) load caps)

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)

let sbu = List.find (fun h -> h.Solve.key = "sbu") Solve.all

let test_runtime_tiny_feasible () =
  let app = Helpers.tiny_app () in
  let platform = Helpers.tiny_platform () in
  match Solve.run ~seed:1 sbu app platform with
  | Error f -> Alcotest.fail (Solve.failure_message f)
  | Ok o ->
    let r = Runtime.run app platform o.Solve.alloc in
    Alcotest.(check bool) "sustains rho" true (Runtime.sustains_target r);
    Alcotest.(check bool) "made results" true (r.Runtime.results_completed > 0);
    Alcotest.(check bool) "downloads delivered" true
      (r.Runtime.download_delivered >= 0.95 *. r.Runtime.download_ideal)

let test_runtime_deterministic () =
  let inst = Helpers.instance ~n:15 ~seed:5 () in
  match Solve.run ~seed:5 sbu inst.Insp.Instance.app inst.Insp.Instance.platform with
  | Error f -> Alcotest.fail (Solve.failure_message f)
  | Ok o ->
    let run () =
      Runtime.run inst.Insp.Instance.app inst.Insp.Instance.platform
        o.Solve.alloc
    in
    let a = run () and b = run () in
    Alcotest.(check int) "same events" a.Runtime.events b.Runtime.events;
    Helpers.alco_float "same throughput" a.Runtime.achieved_throughput
      b.Runtime.achieved_throughput

let test_runtime_detects_compute_overload () =
  (* Downgrade every processor to the cheapest model: compute and NIC
     overload must show up as lost throughput. *)
  let inst = Helpers.instance ~n:25 ~alpha:1.2 ~seed:9 () in
  let app = inst.Insp.Instance.app in
  let platform = inst.Insp.Instance.platform in
  match Solve.run ~seed:9 sbu app platform with
  | Error f -> Alcotest.fail (Solve.failure_message f)
  | Ok o ->
    let broken = ref o.Solve.alloc in
    for u = 0 to Alloc.n_procs o.Solve.alloc - 1 do
      broken := Alloc.with_config !broken u (Catalog.cheapest Catalog.dell_2008)
    done;
    Alcotest.(check bool) "checker rejects" true
      (Check.check app platform !broken <> []);
    let r = Runtime.run app platform !broken in
    Alcotest.(check bool) "throughput collapses" true
      (r.Runtime.achieved_throughput < 0.9 *. r.Runtime.target_throughput)

let test_runtime_rejects_partial_alloc () =
  let app = Helpers.tiny_app () in
  let platform = Helpers.tiny_platform () in
  let partial =
    Alloc.make
      [|
        {
          Alloc.config = Catalog.best Catalog.dell_2008;
          operators = [ 0; 1 ];
          downloads = [ (0, 0); (1, 0) ];
        };
      |]
  in
  Alcotest.check_raises "unassigned rejected"
    (Invalid_argument "Runtime.run: unassigned operator") (fun () ->
      ignore (Runtime.run app platform partial))

(* The headline cross-validation: checker-feasible => simulator
   sustains the target throughput. *)
let feasible_mappings_sustain_rho =
  qtest ~count:20 "checker-feasible mappings sustain rho in simulation"
    Helpers.instance_case (fun case ->
      let inst = Helpers.instance_of_case case in
      let app = inst.Insp.Instance.app in
      let platform = inst.Insp.Instance.platform in
      match Solve.run ~seed:2 sbu app platform with
      | Error _ -> true
      | Ok o ->
        let r = Runtime.run ~horizon:240.0 app platform o.Solve.alloc in
        Runtime.sustains_target r)

let () =
  Alcotest.run "sim"
    [
      ( "fair_share",
        [
          Alcotest.test_case "single flow" `Quick test_single_flow_min_cap;
          Alcotest.test_case "equal split" `Quick test_equal_split;
          Alcotest.test_case "progressive filling" `Quick
            test_progressive_filling;
          Alcotest.test_case "zero cap" `Quick test_fair_share_zero_cap;
          Alcotest.test_case "golden: shared NIC" `Quick
            test_golden_shared_nic;
          Alcotest.test_case "golden: asymmetric links" `Quick
            test_golden_asymmetric_links;
          fair_share_is_max_min;
          fair_share_clamp_near_saturated;
          fair_share_conserves;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "tiny feasible sustains" `Quick
            test_runtime_tiny_feasible;
          Alcotest.test_case "deterministic" `Quick test_runtime_deterministic;
          Alcotest.test_case "detects overload" `Quick
            test_runtime_detects_compute_overload;
          Alcotest.test_case "rejects partial alloc" `Quick
            test_runtime_rejects_partial_alloc;
          feasible_mappings_sustain_rho;
        ] );
    ]
